# Pre-merge gate for cghti. `make ci` is the check every change must
# pass before merging (see ROADMAP.md); the individual targets are
# usable on their own.

GO ?= go

.PHONY: ci build vet fmt test race fuzz bench benchall

ci: build vet fmt race fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; turn any output into a failure.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# The explicit -timeout keeps a hung cancellation path from stalling CI
# for the 10-minute default.
race:
	$(GO) test -race -timeout 5m ./...

# Short fuzz smoke: each native fuzz target runs briefly so a parser
# regression that panics or hangs on malformed input fails the gate.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 5s ./internal/bench
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 5s ./internal/vparse

# Simulation/pipeline benchmarks, recorded as BENCH_sim.json so runs
# can be committed and diffed (see cmd/benchjson).
bench:
	$(GO) test -run '^$$' -bench 'Sim|Generate' -benchmem ./... | $(GO) run ./cmd/benchjson -out BENCH_sim.json
	@echo "wrote BENCH_sim.json"

benchall:
	$(GO) test -run '^$$' -bench . -benchmem ./...
