# Pre-merge gate for cghti. `make ci` is the check every change must
# pass before merging (see ROADMAP.md); the individual targets are
# usable on their own.

GO ?= go

.PHONY: ci build vet fmt test race fuzz modcheck smoke scalesmoke recoversmoke batchsmoke fleetsmoke bench benchall

ci: build vet fmt modcheck race fuzz smoke scalesmoke recoversmoke batchsmoke fleetsmoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; turn any output into a failure.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# The module must stay stdlib-only, two ways: `go list -m all` reports
# exactly one module (cghti itself) when no third-party dependency has
# crept into go.mod, and the transitive import graph of every package —
# including the cmd/ tools like htload — resolves to stdlib or cghti
# packages only (catches a vendored or replace-directive smuggle that
# the module count would miss).
modcheck:
	@mods=$$($(GO) list -m all | wc -l); if [ "$$mods" -ne 1 ]; then \
		echo "module is no longer stdlib-only:"; $(GO) list -m all; exit 1; fi
	@ext=$$($(GO) list -deps -f '{{if not .Standard}}{{.ImportPath}}{{end}}' ./... | grep -v '^cghti' || true); \
	if [ -n "$$ext" ]; then \
		echo "non-stdlib imports outside the module:"; echo "$$ext"; exit 1; fi

# The explicit -timeout keeps a hung cancellation path from stalling CI
# for the 10-minute default. The executor and artifact store are named
# explicitly (with -count=1) so the cache/taint concurrency paths are
# always exercised under the race detector, never served from the test
# cache.
race:
	$(GO) test -race -timeout 5m ./...
	$(GO) test -race -count=1 -timeout 5m ./internal/pipeline ./internal/artifact ./internal/serve ./internal/obs ./internal/journal ./internal/iofault ./internal/sim ./cmd/htload

# Short fuzz smoke: each native fuzz target runs briefly so a parser
# regression that panics or hangs on malformed input fails the gate.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 5s ./internal/bench
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 5s ./internal/vparse
	$(GO) test -run '^$$' -fuzz '^FuzzJournalReplay$$' -fuzztime 5s ./internal/journal

# End-to-end daemon check: build the real htserved binary, run a c17
# generation job over HTTP, SIGTERM, and require a clean drain. Always
# -count=1 so the process-lifecycle path is actually executed.
smoke:
	$(GO) test -run '^TestSmoke$$' -count=1 -timeout 5m ./cmd/htserved

# Partitioned scale-path smoke: a 10⁴-gate hierarchical SoC through the
# full pipeline with fanout-cone partitioning on, under the race
# detector. Always -count=1 so the partition worker pools actually run.
scalesmoke:
	$(GO) test -race -run '^TestScaleSmoke$$' -count=1 -timeout 5m .

# Kill-and-recover drill: build htserved, submit a keyed burst, SIGKILL
# it mid-burst, restart over the same journal dir, and require every
# accepted job terminal plus idempotent resubmit dedup. Always -count=1
# so the crash/recovery path is actually executed.
recoversmoke:
	$(GO) test -run '^TestRecoverSmoke$$' -count=1 -timeout 5m ./cmd/htserved

# Shared-simulation smoke: 8 concurrent mixed jobs on an in-process
# daemon whose pattern blocks multiplex onto shared batched engines
# must produce byte-identical results to the same jobs run serially on
# exclusive engines. Under the race detector, always -count=1, so the
# batcher's dispatcher/withdrawal paths are actually executed.
batchsmoke:
	$(GO) test -race -run '^TestBatchSmoke$$' -count=1 -timeout 5m ./internal/serve

# Two-process fleet drill: build htserved, start two peered daemons,
# and require the fleet contracts over real process boundaries — one
# Idempotency-Key submitted to both nodes lands on one job at the ring
# owner, a forced-local rerun on the cold node hits the remote artifact
# tier, and both drain cleanly on SIGTERM. Always -count=1 so the
# cross-process paths are actually executed.
fleetsmoke:
	$(GO) test -run '^TestFleetSmoke$$' -count=1 -timeout 5m ./cmd/htserved

# Simulation/pipeline benchmarks, recorded as BENCH_sim.json so runs
# can be committed and diffed (see cmd/benchjson). The artifact-cache
# benchmark (cold vs warm Generate) lands in its own BENCH_pipeline.json
# so the warm-run speedup is tracked independently of kernel changes.
bench:
	$(GO) test -run '^$$' -bench 'Sim|Generate' -benchmem ./... | $(GO) run ./cmd/benchjson -out BENCH_sim.json
	@echo "wrote BENCH_sim.json"
	$(GO) test -run '^$$' -bench 'PipelineCache' -benchmem . | $(GO) run ./cmd/benchjson -out BENCH_pipeline.json
	@echo "wrote BENCH_pipeline.json"
	$(GO) run ./cmd/htload -jobs 120 -concurrency 8 -out BENCH_serve.json
	$(GO) run ./cmd/htload -mixed -jobs 96 -concurrency 8 -sim-batch-words -1 -append -out BENCH_serve.json
	$(GO) run ./cmd/htload -mixed -jobs 96 -concurrency 8 -append -out BENCH_serve.json
	$(GO) run ./cmd/htload -fleet 3 -mixed -jobs 96 -concurrency 8 -append -out BENCH_serve.json
	@echo "wrote BENCH_serve.json"
	$(GO) test -run '^$$' -bench 'Scale' -benchtime 1x -benchmem -timeout 60m . | $(GO) run ./cmd/benchjson -out BENCH_scale.json
	@echo "wrote BENCH_scale.json"

benchall:
	$(GO) test -run '^$$' -bench . -benchmem ./...
