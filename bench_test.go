// Benchmarks regenerating each figure/table of the paper at reduced
// scale, plus ablation benchmarks for the design decisions DESIGN.md
// calls out. Run all with:
//
//	go test -bench=. -benchmem
//
// Paper-scale regeneration lives in cmd/htbench (-full).
package cghti_test

import (
	"math/rand"
	"strings"
	"testing"

	"cghti"
	"cghti/internal/atpg"
	"cghti/internal/baselines"
	"cghti/internal/compat"
	"cghti/internal/detect"
	"cghti/internal/equiv"
	"cghti/internal/experiments"
	"cghti/internal/faultsim"
	"cghti/internal/features"
	"cghti/internal/gen"
	"cghti/internal/netlist"
	"cghti/internal/obs"
	"cghti/internal/opt"
	"cghti/internal/rare"
	"cghti/internal/sim"
	"cghti/internal/trojan"
	"cghti/internal/vparse"
)

// benchOpts keeps experiment benchmarks at laptop scale: two small
// circuits per iteration.
func benchOpts(seed int64) experiments.Options {
	return experiments.Options{Circuits: []string{"c432", "s298"}, Seed: seed}
}

func BenchmarkFig2RareNodeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(benchOpts(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3VectorSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(benchOpts(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Detection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(benchOpts(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3InsertionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(benchOpts(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4Subgraphs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(benchOpts(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5AreaOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(benchOpts(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// --- pipeline-stage component benchmarks ---

// benchCircuit is the shared c880-class workload for component benches.
func benchCircuit(b *testing.B) *netlist.Netlist {
	b.Helper()
	n, err := gen.Benchmark("c880")
	if err != nil {
		b.Fatal(err)
	}
	return n
}

func benchRare(b *testing.B, n *netlist.Netlist) *rare.Set {
	b.Helper()
	rs, err := rare.Extract(n, rare.Config{Vectors: 2000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return rs
}

func BenchmarkRareExtraction10k(b *testing.B) {
	n := benchCircuit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rare.Extract(n, rare.Config{Vectors: 10000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompatGraphBuild(b *testing.B) {
	n := benchCircuit(b)
	rs := benchRare(b, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compat.Build(n, rs, compat.BuildConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCliqueMining(b *testing.B) {
	n := benchCircuit(b)
	rs := benchRare(b, n)
	g, err := compat.Build(n, rs, compat.BuildConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FindCliques(compat.MineConfig{MinSize: 5, MaxCliques: 100, Seed: int64(i)})
	}
}

func BenchmarkFullPipelineGenerate(b *testing.B) {
	n := benchCircuit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cghti.Generate(n, cghti.Config{
			RareVectors: 2000, MinTriggerNodes: 8, Instances: 5, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateObservability quantifies the cost of the always-on
// instrumentation on the paper's reference circuit (c2670): "bare" runs
// Generate with no sink and no caller trace (counters and the internal
// trace still active — the shipping default), "noop-sink" adds a
// subscribed no-op progress sink and a caller-owned trace. The two must
// stay within ~2% of each other; a larger gap means an instrumentation
// point has crept into a hot loop.
func BenchmarkGenerateObservability(b *testing.B) {
	n, err := gen.Benchmark("c2670")
	if err != nil {
		b.Fatal(err)
	}
	cfg := cghti.Config{RareVectors: 2000, MinTriggerNodes: 8, Instances: 5}
	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := cfg
			c.Seed = int64(i)
			if _, err := cghti.Generate(n, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("noop-sink", func(b *testing.B) {
		sink := obs.FuncSink(func(obs.Event) {})
		for i := 0; i < b.N; i++ {
			c := cfg
			c.Seed = int64(i)
			c.Trace = obs.NewTrace()
			c.Progress = sink
			if _, err := cghti.Generate(n, c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMEROGeneration(b *testing.B) {
	n := benchCircuit(b)
	rs := benchRare(b, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := detect.MERO(n, rs, detect.MEROConfig{N: 5, RandomVectors: 300, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNDATPGGeneration(b *testing.B) {
	n := benchCircuit(b)
	rs := benchRare(b, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := detect.NDATPG(n, rs, detect.NDATPGConfig{N: 2, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectionEvaluate(b *testing.B) {
	n := benchCircuit(b)
	res, err := cghti.Generate(n, cghti.Config{RareVectors: 2000, MinTriggerNodes: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	tgt := res.Benchmarks[0].Target(n)
	ts := detect.RandomTestSet(n, 10000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := detect.Evaluate(tgt, ts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks (design decisions from DESIGN.md) ---

// BenchmarkAblationValidation compares the per-instance cost of
// obtaining a validated trigger set via the compatibility graph
// (graph built once, then each clique comes validation-free) against
// the random-subset + simulation-validation baseline (which pays the
// validation search for every instance). This is the microcosm of
// Table III.
func BenchmarkAblationValidation(b *testing.B) {
	n := benchCircuit(b)
	rs := benchRare(b, n)
	b.Run("compat-graph", func(b *testing.B) {
		g, err := compat.Build(n, rs, compat.BuildConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := g.FindCliques(compat.MineConfig{MinSize: 8, MaxCliques: 1, Seed: int64(i)}); len(got) == 0 {
				b.Fatal("no clique")
			}
		}
	})
	b.Run("random-validate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := baselines.RandomInsert(n, rs, baselines.RandomConfig{
				Q: 8, ValidationVectors: 50000, MaxSubsets: 10, Seed: int64(i),
			})
			// Failure to validate is the expected (and costly) outcome.
			if err != nil {
				var ve *baselines.ValidationError
				if !asValidation(err, &ve) {
					b.Fatal(err)
				}
			}
		}
	})
}

func asValidation(err error, out **baselines.ValidationError) bool {
	ve, ok := err.(*baselines.ValidationError)
	if ok {
		*out = ve
	}
	return ok
}

// BenchmarkAblationSimulation compares 64-way bit-parallel simulation
// against the scalar reference for the same number of vectors.
func BenchmarkAblationSimulation(b *testing.B) {
	n := benchCircuit(b)
	const vectors = 1024
	b.Run("packed", func(b *testing.B) {
		p, err := sim.NewPacked(n, vectors/64)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Randomize(rng)
			p.Run()
		}
	})
	b.Run("scalar", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		in := map[netlist.GateID]uint8{}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for v := 0; v < vectors; v++ {
				for _, id := range n.CombInputs() {
					in[id] = uint8(rng.Intn(2))
				}
				if _, err := sim.Eval(n, in); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationBacktrace compares SCOAP-guided PODEM backtrace with
// the naive first-X-input policy over the same rare-node workload.
func BenchmarkAblationBacktrace(b *testing.B) {
	n := benchCircuit(b)
	rs := benchRare(b, n)
	nodes := rs.All()
	if len(nodes) > 50 {
		nodes = nodes[:50]
	}
	run := func(b *testing.B, naive bool) {
		eng, err := atpg.NewEngine(n)
		if err != nil {
			b.Fatal(err)
		}
		eng.NaiveBacktrace = naive
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			aborts := 0
			for _, node := range nodes {
				if _, res := eng.Justify(node.ID, node.RareValue); res == atpg.Abort {
					aborts++
				}
			}
			b.ReportMetric(float64(aborts), "aborts/op")
			b.ReportMetric(float64(eng.Stats.Backtracks)/float64(i+1), "backtracks/op")
		}
	}
	b.Run("scoap-guided", func(b *testing.B) { run(b, false) })
	b.Run("naive", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationCliqueMiner compares greedy randomized mining against
// exact Bron–Kerbosch enumeration on the same graph (small cap so the
// exact miner terminates).
func BenchmarkAblationCliqueMiner(b *testing.B) {
	n, err := gen.Benchmark("c432")
	if err != nil {
		b.Fatal(err)
	}
	rs, err := rare.Extract(n, rare.Config{Vectors: 2000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	g, err := compat.Build(n, rs, compat.BuildConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.FindCliques(compat.MineConfig{MinSize: 4, MaxCliques: 50, Seed: int64(i)})
		}
	})
	b.Run("bron-kerbosch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.EnumerateExact(4, 50)
		}
	})
}

// BenchmarkFaultSim measures parallel-pattern stuck-at fault simulation
// (512 vectors over the full fault list of a c880-class circuit).
func BenchmarkFaultSim(b *testing.B) {
	n := benchCircuit(b)
	rng := rand.New(rand.NewSource(1))
	inputs := n.CombInputs()
	vectors := make([][]bool, 512)
	for i := range vectors {
		v := make([]bool, len(inputs))
		for j := range v {
			v[j] = rng.Intn(2) == 1
		}
		vectors[i] = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := faultsim.Run(n, vectors, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCOTD measures the structural SCOAP-outlier analysis.
func BenchmarkCOTD(b *testing.B) {
	n := benchCircuit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := detect.COTD(n, detect.COTDConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptDedup measures structural deduplication on a c880-class
// netlist (the htgen -dedup blending pass).
func BenchmarkOptDedup(b *testing.B) {
	n := benchCircuit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := opt.Dedup(n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEquivalenceProof measures the miter + structural reduction +
// PODEM pipeline proving a dedup'd c880-class netlist equivalent.
func BenchmarkEquivalenceProof(b *testing.B) {
	n := benchCircuit(b)
	dd, _, err := opt.Dedup(n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := equiv.Check(n, dd, equiv.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict != equiv.Equivalent {
			b.Fatalf("verdict %v", res.Verdict)
		}
	}
}

// BenchmarkVerilogRoundTrip measures write + parse of a c880-class
// netlist through the structural Verilog path.
func BenchmarkVerilogRoundTrip(b *testing.B) {
	n := benchCircuit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := cghti.WriteVerilog(&sb, n); err != nil {
			b.Fatal(err)
		}
		if _, err := vparse.ParseString(sb.String(), "rt"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureExtraction measures the MIMIC-style feature pass.
func BenchmarkFeatureExtraction(b *testing.B) {
	n := benchCircuit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := features.Extract(n, features.Config{Vectors: 2048, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTriggerInsertion isolates Algorithm 3 (trigger synthesis +
// netlist splicing) from the analysis stages.
func BenchmarkTriggerInsertion(b *testing.B) {
	n := benchCircuit(b)
	res, err := cghti.Generate(n, cghti.Config{RareVectors: 2000, MinTriggerNodes: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	clique := res.Benchmarks[0].Clique
	nodes := clique.Nodes(res.Graph)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := trojan.InsertInstance(n, nodes, clique.Cube, 0,
			trojan.InsertSpec{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
