package cghti

import (
	"bytes"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"cghti/internal/obs"
)

// benchBytes serializes every emitted benchmark, in order, to one byte
// stream — the equality currency of the cache-correctness tests.
func benchBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, b := range res.Benchmarks {
		if err := WriteBench(&buf, b.Netlist); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Len() == 0 {
		t.Fatal("no benchmark bytes produced")
	}
	return buf.Bytes()
}

// The stages the artifact cache is expected to replace on a warm run.
var cacheableStages = []string{StageRareExtract, StageCubeGen, StageGraphEdges, StageCliqueMine}

func TestCachedRunMatchesUncached(t *testing.T) {
	n := robustCircuit(t)
	cfg := smallConfig(11)

	plain, err := Generate(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.CachedStages) != 0 {
		t.Fatalf("uncached run reported CachedStages %v", plain.CachedStages)
	}

	cfg.Cache = NewCache(0, 0)
	cold, err := Generate(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.CachedStages) != 0 {
		t.Fatalf("cold run reported CachedStages %v", cold.CachedStages)
	}
	warm, err := Generate(n, cfg)
	if err != nil {
		t.Fatal(err)
	}

	want := benchBytes(t, plain)
	if !bytes.Equal(benchBytes(t, cold), want) {
		t.Fatal("cold cached run differs from uncached run")
	}
	if !bytes.Equal(benchBytes(t, warm), want) {
		t.Fatal("warm cached run differs from uncached run")
	}
	for _, s := range cacheableStages {
		if !slices.Contains(warm.CachedStages, s) {
			t.Errorf("warm run did not serve %s from cache (CachedStages=%v)", s, warm.CachedStages)
		}
	}
}

func TestWarmRunSkipsStagesInTrace(t *testing.T) {
	n := robustCircuit(t)
	cfg := smallConfig(12)
	cfg.Cache = NewCache(0, 0)

	runWithTrace := func() *Result {
		c := cfg
		c.Trace = obs.NewTrace()
		res, err := Generate(n, c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	cold := runWithTrace()
	warm := runWithTrace()

	spanNames := func(res *Result) []string {
		root := res.Trace.Find(StageGenerate)
		if root == nil {
			t.Fatal("no generate root span")
		}
		var names []string
		for _, sp := range root.Children() {
			names = append(names, sp.Name())
		}
		return names
	}

	coldSpans := spanNames(cold)
	for _, s := range cacheableStages {
		if !slices.Contains(coldSpans, s) {
			t.Errorf("cold run trace lacks %s (spans=%v)", s, coldSpans)
		}
	}
	warmSpans := spanNames(warm)
	for _, s := range cacheableStages {
		if slices.Contains(warmSpans, s) {
			t.Errorf("warm run still ran %s (spans=%v)", s, warmSpans)
		}
	}
	// What did run must still be traced: levelize and insertion.
	for _, s := range []string{StageLevelize, StageInsert} {
		if !slices.Contains(warmSpans, s) {
			t.Errorf("warm run trace lacks %s (spans=%v)", s, warmSpans)
		}
	}
	// And the stage-time accounting reflects the skips.
	if warm.Times.RareExtract != 0 {
		t.Errorf("warm run charged %v to rare_extract", warm.Times.RareExtract)
	}
}

func TestPoisonedDiskCacheRecomputes(t *testing.T) {
	n := robustCircuit(t)
	cfg := smallConfig(13)
	dir := t.TempDir()

	// Seed the disk tier through a private cache instance (DirCache would
	// pin a process-wide memory tier that defeats the corruption test).
	seed := NewCache(0, 0)
	if err := seed.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	cfg.Cache = seed
	clean, err := Generate(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no disk entries written (err=%v)", err)
	}

	// Poison every entry: flip a payload byte so the stored hash no
	// longer matches.
	for _, path := range entries {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-1] ^= 0xFF
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// A fresh memory tier over the poisoned directory must detect every
	// corruption, recompute, and still produce identical output.
	fresh := NewCache(0, 0)
	if err := fresh.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	cfg.Cache = fresh
	cfg.Trace = obs.NewTrace()
	res, err := Generate(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CachedStages) != 0 {
		t.Fatalf("poisoned cache served stages %v", res.CachedStages)
	}
	if root := cfg.Trace.Find(StageRareExtract); root == nil {
		t.Fatal("rare_extract did not rerun after cache poisoning")
	}
	if !bytes.Equal(benchBytes(t, res), benchBytes(t, clean)) {
		t.Fatal("recomputed output differs from the clean run")
	}
}

func TestCacheDirConfig(t *testing.T) {
	n := robustCircuit(t)
	cfg := smallConfig(14)
	cfg.CacheDir = filepath.Join(t.TempDir(), "artifacts")

	if _, err := Generate(n, cfg); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(cfg.CacheDir, "*"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("CacheDir wrote no entries (err=%v)", err)
	}
	res, err := Generate(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CachedStages) == 0 {
		t.Fatal("second CacheDir run served nothing from cache")
	}
}

func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	n := robustCircuit(t)
	var want []byte
	for _, workers := range []int{1, 4, 0} {
		cfg := smallConfig(15)
		cfg.Workers = workers
		res, err := Generate(n, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := benchBytes(t, res)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d produced different benchmarks than workers=1", workers)
		}
	}
}

func TestCacheEntriesSharedAcrossWorkerCounts(t *testing.T) {
	// Workers is excluded from fingerprints, so a serial run must warm
	// the cache for a parallel one.
	n := robustCircuit(t)
	cfg := smallConfig(16)
	cfg.Cache = NewCache(0, 0)
	cfg.Workers = 1
	if _, err := Generate(n, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	res, err := Generate(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CachedStages) == 0 {
		t.Fatal("worker count leaked into the fingerprint chain")
	}
}
