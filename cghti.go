// Package cghti is the public API of the Compatibility Graph assisted
// Hardware Trojan insertion framework — a from-scratch reproduction of
// "Compatibility Graph Assisted Automatic Hardware Trojan Insertion
// Framework" (DATE 2025).
//
// The pipeline, exactly as the paper's Section III describes it:
//
//  1. parse/levelize a gate-level netlist (Section III-A);
//  2. extract rare nodes with functional simulation over a random
//     vector set (Algorithm 1);
//  3. generate one PODEM excitation cube per rare node and connect
//     pairwise-compatible cubes into the compatibility graph
//     (Algorithm 2);
//  4. mine complete subgraphs (cliques) — each is a validation-free
//     trigger-node set;
//  5. synthesize bias-alternating trigger logic over a clique and splice
//     it into the netlist with an XOR payload (Section III-D,
//     Algorithm 3).
//
// Quick start:
//
//	n, _ := cghti.Circuit("c2670")
//	res, _ := cghti.Generate(n, cghti.Config{MinTriggerNodes: 25, Instances: 10})
//	for _, b := range res.Benchmarks {
//	    cghti.WriteBenchFile("out/"+b.Netlist.Name+".bench", b.Netlist)
//	}
package cghti

import (
	"io"

	"cghti/internal/bench"
	"cghti/internal/gen"
	"cghti/internal/netlist"
)

// Re-exported core types, so example and tool code can use the facade
// without importing internal packages directly.
type (
	// Netlist is a gate-level circuit (see internal/netlist).
	Netlist = netlist.Netlist
	// GateID identifies a gate within a Netlist.
	GateID = netlist.GateID
	// GateType enumerates primitive cells.
	GateType = netlist.GateType
)

// Circuit returns a benchmark circuit by ISCAS name ("c17", "c2670",
// "s13207", ...). c17/s27 are the exact published circuits, c6288 is a
// real 16×16 array multiplier, and the remaining names are seeded
// stand-ins matched to the published PI/PO/DFF/gate counts (the ISCAS
// suites are not redistributable here; see DESIGN.md).
func Circuit(name string) (*Netlist, error) { return gen.Benchmark(name) }

// CircuitNames lists every name Circuit accepts.
func CircuitNames() []string { return gen.Names() }

// PaperCircuits lists the eight circuits of the paper's evaluation, in
// table column order.
func PaperCircuits() []string { return gen.PaperCircuits() }

// ParseBench reads a netlist in ISCAS .bench format.
func ParseBench(r io.Reader, name string) (*Netlist, error) { return bench.Parse(r, name) }

// ParseBenchFile reads a .bench file.
func ParseBenchFile(path string) (*Netlist, error) { return bench.ParseFile(path) }

// ParseBenchString parses .bench text.
func ParseBenchString(src, name string) (*Netlist, error) { return bench.ParseString(src, name) }

// CompactNetlist is the arena (CSR) netlist form: typed parallel arrays
// instead of per-gate structs, with fanin/fanout edges in two shared
// index arenas. It is what the streaming parser emits and what the
// scale path (partitioned rare extraction, cube generation, edge
// construction) consumes directly.
type CompactNetlist = netlist.Compact

// CompactOf converts a pointer-form netlist to the arena form.
func CompactOf(n *Netlist) *CompactNetlist { return netlist.CompactOf(n) }

// ParseBenchStream reads .bench input line-by-line into the arena form
// without materializing the whole file or per-gate structs — the parser
// for SoC-scale (10⁶–10⁷ gate) netlists. Produces the same circuit as
// ParseBench followed by CompactOf.
func ParseBenchStream(r io.Reader, name string) (*CompactNetlist, error) {
	return bench.ParseStream(r, name)
}

// ParseBenchFileStream is ParseBenchStream over a file.
func ParseBenchFileStream(path string) (*CompactNetlist, error) {
	return bench.ParseFileStream(path)
}

// WriteBench writes a netlist in .bench format.
func WriteBench(w io.Writer, n *Netlist) error { return bench.Write(w, n) }

// WriteBenchFile writes a netlist to a .bench file.
func WriteBenchFile(path string, n *Netlist) error { return bench.WriteFile(path, n) }

// WriteVerilog writes a netlist as structural Verilog (for synthesis
// flows).
func WriteVerilog(w io.Writer, n *Netlist) error { return bench.WriteVerilog(w, n) }

// WriteVerilogFile writes structural Verilog to a file.
func WriteVerilogFile(path string, n *Netlist) error { return bench.WriteVerilogFile(path, n) }
