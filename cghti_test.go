package cghti

import (
	"math/rand"
	"strings"
	"testing"

	"cghti/internal/netlist"
	"cghti/internal/sim"
	"cghti/internal/trojan"
)

// smallConfig keeps facade tests fast.
func smallConfig(seed int64) Config {
	return Config{
		RareVectors:   3000,
		RareThreshold: 0.25,
		Instances:     3,
		Seed:          seed,
	}
}

func generateSmall(t *testing.T, seed int64) *Result {
	t.Helper()
	n, err := Circuit("c432")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generate(n, smallConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGenerateEndToEnd(t *testing.T) {
	res := generateSmall(t, 1)
	if len(res.Benchmarks) == 0 {
		t.Fatal("no benchmarks emitted")
	}
	for _, b := range res.Benchmarks {
		if err := b.Netlist.Validate(); err != nil {
			t.Fatalf("%s: %v", b.Netlist.Name, err)
		}
		if !strings.HasPrefix(b.Netlist.Name, "c432_ht") {
			t.Fatalf("unexpected infected name %q", b.Netlist.Name)
		}
		if len(b.Clique.Vertices) < 2 {
			t.Fatal("clique below MinTriggerNodes")
		}
	}
	if res.Times.Total <= 0 || res.Times.RareExtract <= 0 {
		t.Fatalf("stage times not recorded: %+v", res.Times)
	}
}

func TestGenerateVerify(t *testing.T) {
	res := generateSmall(t, 2)
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestProveDormant(t *testing.T) {
	res := generateSmall(t, 10)
	for _, b := range res.Benchmarks {
		if err := b.ProveDormant(res.Base); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := generateSmall(t, 3)
	b := generateSmall(t, 3)
	if len(a.Benchmarks) != len(b.Benchmarks) {
		t.Fatal("same seed, different instance count")
	}
	for i := range a.Benchmarks {
		if a.Benchmarks[i].Netlist.NumGates() != b.Benchmarks[i].Netlist.NumGates() {
			t.Fatal("same seed, different netlists")
		}
	}
}

func TestTriggerRange(t *testing.T) {
	res := generateSmall(t, 4)
	min, max, ok := res.TriggerRange()
	if !ok {
		t.Fatal("TriggerRange not ok despite emitted benchmarks")
	}
	if min < 2 || max < min {
		t.Fatalf("TriggerRange = %d..%d", min, max)
	}
	empty := &Result{}
	if min, max, ok := empty.TriggerRange(); ok || min != 0 || max != 0 {
		t.Fatalf("empty TriggerRange = %d..%d ok=%v, want 0..0 false", min, max, ok)
	}
}

func TestAreaOverheadPositive(t *testing.T) {
	res := generateSmall(t, 5)
	o, err := res.AreaOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if o <= 0 || o > 60 {
		t.Fatalf("area overhead = %v%%, implausible", o)
	}
}

func TestBenchmarkTarget(t *testing.T) {
	res := generateSmall(t, 6)
	b := res.Benchmarks[0]
	tgt := b.Target(res.Base)
	if tgt.Activation != 1 {
		t.Fatalf("activation = %d, want 1", tgt.Activation)
	}
	if tgt.Infected.Gates[tgt.TriggerOut].Name != b.Instance.TriggerOut {
		t.Fatal("target trigger net mismatch")
	}
}

// TestGeneratedTrojanFunctional re-runs the core functional check
// through the public API: the clique cube fires the trigger; random
// non-firing vectors keep outputs identical.
func TestGeneratedTrojanFunctional(t *testing.T) {
	res := generateSmall(t, 7)
	b := res.Benchmarks[0]
	rng := rand.New(rand.NewSource(1))
	filled := b.Clique.Cube.Fill(rng)
	in := map[netlist.GateID]uint8{}
	for i, id := range res.Graph.InputIDs {
		if filled[i] {
			in[id] = 1
		} else {
			in[id] = 0
		}
	}
	vals, err := sim.Eval(b.Netlist, in)
	if err != nil {
		t.Fatal(err)
	}
	if vals[b.Netlist.MustLookup(b.Instance.TriggerOut)] != 1 {
		t.Fatal("cube does not fire the generated trojan")
	}
}

func TestGenerateNoRareNodes(t *testing.T) {
	// A buffer chain has no rare nodes at any sane threshold.
	n, err := ParseBenchString(`
INPUT(a)
OUTPUT(y)
b1 = BUFF(a)
y = NOT(b1)
`, "bufchain")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(n, Config{RareVectors: 500, RareThreshold: 0.05, Seed: 1}); err == nil {
		t.Fatal("expected a no-rare-nodes error")
	}
}

func TestGenerateImpossibleQ(t *testing.T) {
	n, err := Circuit("c17")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Generate(n, Config{RareVectors: 2000, RareThreshold: 0.3,
		MinTriggerNodes: 50, Seed: 1})
	if err == nil {
		t.Fatal("expected a no-clique error on c17 with q=50")
	}
}

func TestCircuitNames(t *testing.T) {
	names := CircuitNames()
	if len(names) < 10 {
		t.Fatalf("only %d circuit names", len(names))
	}
	for _, want := range PaperCircuits() {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("paper circuit %s not in CircuitNames", want)
		}
	}
}

func TestBenchRoundTripThroughFacade(t *testing.T) {
	n, err := Circuit("c17")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteBench(&sb, n); err != nil {
		t.Fatal(err)
	}
	back, err := ParseBenchString(sb.String(), "c17")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumGates() != n.NumGates() {
		t.Fatal("facade round trip changed the netlist")
	}
	var vb strings.Builder
	if err := WriteVerilog(&vb, n); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vb.String(), "module c17") {
		t.Fatal("facade verilog writer broken")
	}
}

func TestGenerateWithLeakPayload(t *testing.T) {
	n, err := Circuit("c432")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(8)
	cfg.Payload = trojan.PayloadLeakToOutput
	res, err := Generate(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Benchmarks {
		if len(b.Netlist.POs) != len(n.POs)+1 {
			t.Fatal("leak payload did not add a PO")
		}
	}
}

func TestGenerateActiveLow(t *testing.T) {
	n, err := Circuit("c432")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(9)
	cfg.ActiveLow = true
	res, err := Generate(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt := res.Benchmarks[0].Target(res.Base)
	if tgt.Activation != 0 {
		t.Fatalf("active-low activation = %d, want 0", tgt.Activation)
	}
}

// TestGeneratePartitionsIdentical is the facade-level scale-path
// contract: Config.Partitions changes engine layout and adjacency
// representation, never results. The emitted infected netlists must be
// byte-identical to the whole-netlist run.
func TestGeneratePartitionsIdentical(t *testing.T) {
	n, err := Circuit("soc:4000:13")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		RareVectors:   3000,
		RareThreshold: 0.2,
		MaxRareNodes:  48,
		Instances:     2,
		Seed:          7,
	}
	render := func(res *Result) []string {
		var out []string
		for _, b := range res.Benchmarks {
			var sb strings.Builder
			if err := WriteBench(&sb, b.Netlist); err != nil {
				t.Fatal(err)
			}
			out = append(out, sb.String())
		}
		return out
	}
	ref, err := Generate(n.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	refOut := render(ref)
	for _, parts := range []int{3, 8} {
		pcfg := cfg
		pcfg.Partitions = parts
		pcfg.Workers = 4
		res, err := Generate(n.Clone(), pcfg)
		if err != nil {
			t.Fatal(err)
		}
		got := render(res)
		if len(got) != len(refOut) {
			t.Fatalf("partitions=%d: %d benchmarks, want %d", parts, len(got), len(refOut))
		}
		for i := range refOut {
			if got[i] != refOut[i] {
				t.Fatalf("partitions=%d: benchmark %d differs from unpartitioned run", parts, i)
			}
		}
	}
}
