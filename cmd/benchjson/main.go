// Command benchjson converts `go test -bench` text output into a JSON
// document, so benchmark runs can be committed and diffed (BENCH_sim.json
// at the repo root is produced this way by `make bench`).
//
// Usage:
//
//	go test -run '^$' -bench 'Sim|Generate' -benchmem ./... | benchjson -out BENCH_sim.json
//
// Lines that are not benchmark results (pkg headers, PASS/ok, logs) are
// ignored, except that "cpu:" and "pkg:" headers annotate the following
// results. Each result line of the form
//
//	BenchmarkName/sub-8   	 100	  1234 ns/op	 99 B/op	 1 allocs/op	 5.0 patterns/s
//
// becomes one JSON entry carrying every "value unit" pair.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Package string             `json:"package,omitempty"`
	Iters   int64              `json:"iterations"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the file layout. Baseline is never written by this tool; when
// the output file already exists, its baseline block is carried over, so
// a hand-recorded reference point survives `make bench` refreshes.
type Doc struct {
	GeneratedAt string          `json:"generated_at"`
	GoVersion   string          `json:"go_version"`
	GOOS        string          `json:"goos"`
	GOARCH      string          `json:"goarch"`
	NumCPU      int             `json:"num_cpu"`
	CPU         string          `json:"cpu,omitempty"`
	Baseline    json.RawMessage `json:"baseline,omitempty"`
	Results     []Result        `json:"results"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	doc := Doc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		// Echo the raw stream so the make target still shows progress.
		fmt.Fprintln(os.Stderr, line)
		if r, ok := parseLine(line, pkg); ok {
			doc.Results = append(doc.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *out != "" {
		if prev, err := os.ReadFile(*out); err == nil {
			var old Doc
			if json.Unmarshal(prev, &old) == nil {
				doc.Baseline = old.Baseline
			}
		}
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line. The layout is
// name, iteration count, then repeating "value unit" pairs.
func parseLine(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Name:    trimProcSuffix(fields[0]),
		Package: pkg,
		Iters:   iters,
		Metrics: map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = val
			continue
		}
		r.Metrics[unit] = val
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	if r.NsPerOp == 0 && r.Metrics == nil {
		return Result{}, false
	}
	return r, true
}

// trimProcSuffix drops the "-8" GOMAXPROCS suffix go test appends.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
