// Command htbench regenerates the figures and tables of the paper's
// evaluation section.
//
// Usage:
//
//	htbench                      # every experiment, quick scale
//	htbench -exp fig2            # one experiment
//	htbench -exp table3 -full    # paper-scale parameters (slow)
//	htbench -circuits c432,s298  # restrict the circuit set
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cghti/internal/artifact"
	"cghti/internal/cli"
	"cghti/internal/experiments"
	"cghti/internal/obs"
)

const tool = "htbench"

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: fig2, fig3, table2, table3, table4, table5 or all")
		full       = flag.Bool("full", false, "paper-scale parameters (10k vectors, 100 instances, MERO N=1000)")
		circuits   = flag.String("circuits", "", "comma-separated circuit list (default: the paper's eight)")
		seed       = flag.Int64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "simulation/ATPG goroutine budget (0 = all CPUs, 1 = serial; tables are identical)")
		cacheDir   = flag.String("cache-dir", "", "persist pipeline artifacts (rare sets, compatibility graphs) here; experiments that revisit a circuit with identical parameters reuse the work")
		report     = flag.String("report", "", "write a JSON run report (per-experiment spans + counters) to this file")
		timeout    = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit); completed experiments still land in the partial -report")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()
	if err := cli.StartProfiles(*cpuprofile, *memprofile); err != nil {
		cli.Fatal(tool, err)
	}
	defer cli.StopProfiles()

	opts := experiments.Options{
		Full:    *full,
		Seed:    *seed,
		Workers: *workers,
		Out:     os.Stdout,
	}
	if *circuits != "" {
		opts.Circuits = strings.Split(*circuits, ",")
	}
	if *cacheDir != "" {
		cache, err := artifact.DirCache(*cacheDir)
		if err != nil {
			cli.Fatal(tool, err)
		}
		opts.Cache = cache
	}

	runners := map[string]func(experiments.Options) (time.Duration, error){
		"fig2": func(o experiments.Options) (time.Duration, error) {
			r, err := experiments.Fig2(o)
			return elapsed(r, err), err
		},
		"fig3": func(o experiments.Options) (time.Duration, error) {
			r, err := experiments.Fig3(o)
			return elapsed(r, err), err
		},
		"table2": func(o experiments.Options) (time.Duration, error) {
			r, err := experiments.Table2(o)
			return elapsed(r, err), err
		},
		"table3": func(o experiments.Options) (time.Duration, error) {
			r, err := experiments.Table3(o)
			return elapsed(r, err), err
		},
		"table4": func(o experiments.Options) (time.Duration, error) {
			r, err := experiments.Table4(o)
			return elapsed(r, err), err
		},
		"table5": func(o experiments.Options) (time.Duration, error) {
			r, err := experiments.Table5(o)
			return elapsed(r, err), err
		},
	}
	order := []string{"fig2", "fig3", "table2", "table3", "table4", "table5"}

	selected := order
	if *exp != "all" {
		if _, ok := runners[*exp]; !ok {
			cli.Fatalf(tool, "unknown experiment %q (have %v, all)", *exp, order)
		}
		selected = []string{*exp}
	}
	snap0 := obs.Default().Snapshot()
	trace := obs.NewTrace()
	ctx, stop := cli.Context(*timeout)
	defer stop()

	// writeReport serializes whatever the trace and counters hold right
	// now; the abort paths call it too, so experiments that finished
	// before a ^C or -timeout still land in the report.
	writeReport := func(extra map[string]any) {
		if *report == "" {
			return
		}
		rep := obs.NewReport(tool, trace, obs.Default().Snapshot().Delta(snap0))
		rep.Args = os.Args[1:]
		rep.Extra = extra
		if err := rep.WriteFile(*report); err != nil {
			cli.Fatal(tool, err)
		}
		fmt.Println("run report written to", *report)
	}

	var done []string
	for _, name := range selected {
		if err := ctx.Err(); err != nil {
			writeReport(map[string]any{"completed": done, "aborted_before": name})
			cli.Fatalf(tool, "aborted before %s: %w", name, err)
		}
		sp := trace.Start(name)
		d, err := runners[name](opts)
		if err != nil {
			sp.Abort()
			writeReport(map[string]any{"completed": done, "failed": name})
			cli.Fatalf(tool, "%s: %w", name, err)
		}
		sp.End()
		done = append(done, name)
		fmt.Printf("[%s done in %v]\n\n", name, d.Round(time.Millisecond))
	}
	writeReport(map[string]any{"completed": done})
}

// elapsed extracts the Elapsed field common to every result type.
func elapsed(r any, err error) time.Duration {
	if err != nil {
		return 0
	}
	switch v := r.(type) {
	case *experiments.Fig2Result:
		return v.Elapsed
	case *experiments.Fig3Result:
		return v.Elapsed
	case *experiments.Table2Result:
		return v.Elapsed
	case *experiments.Table3Result:
		return v.Elapsed
	case *experiments.Table4Result:
		return v.Elapsed
	case *experiments.Table5Result:
		return v.Elapsed
	}
	return 0
}
