// Command htbench regenerates the figures and tables of the paper's
// evaluation section.
//
// Usage:
//
//	htbench                      # every experiment, quick scale
//	htbench -exp fig2            # one experiment
//	htbench -exp table3 -full    # paper-scale parameters (slow)
//	htbench -circuits c432,s298  # restrict the circuit set
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cghti/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig2, fig3, table2, table3, table4, table5 or all")
		full     = flag.Bool("full", false, "paper-scale parameters (10k vectors, 100 instances, MERO N=1000)")
		circuits = flag.String("circuits", "", "comma-separated circuit list (default: the paper's eight)")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	opts := experiments.Options{
		Full: *full,
		Seed: *seed,
		Out:  os.Stdout,
	}
	if *circuits != "" {
		opts.Circuits = strings.Split(*circuits, ",")
	}

	runners := map[string]func(experiments.Options) (time.Duration, error){
		"fig2": func(o experiments.Options) (time.Duration, error) {
			r, err := experiments.Fig2(o)
			return elapsed(r, err), err
		},
		"fig3": func(o experiments.Options) (time.Duration, error) {
			r, err := experiments.Fig3(o)
			return elapsed(r, err), err
		},
		"table2": func(o experiments.Options) (time.Duration, error) {
			r, err := experiments.Table2(o)
			return elapsed(r, err), err
		},
		"table3": func(o experiments.Options) (time.Duration, error) {
			r, err := experiments.Table3(o)
			return elapsed(r, err), err
		},
		"table4": func(o experiments.Options) (time.Duration, error) {
			r, err := experiments.Table4(o)
			return elapsed(r, err), err
		},
		"table5": func(o experiments.Options) (time.Duration, error) {
			r, err := experiments.Table5(o)
			return elapsed(r, err), err
		},
	}
	order := []string{"fig2", "fig3", "table2", "table3", "table4", "table5"}

	selected := order
	if *exp != "all" {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "htbench: unknown experiment %q (have %v, all)\n", *exp, order)
			os.Exit(2)
		}
		selected = []string{*exp}
	}
	for _, name := range selected {
		d, err := runners[name](opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "htbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", name, d.Round(time.Millisecond))
	}
}

// elapsed extracts the Elapsed field common to every result type.
func elapsed(r any, err error) time.Duration {
	if err != nil {
		return 0
	}
	switch v := r.(type) {
	case *experiments.Fig2Result:
		return v.Elapsed
	case *experiments.Fig3Result:
		return v.Elapsed
	case *experiments.Table2Result:
		return v.Elapsed
	case *experiments.Table3Result:
		return v.Elapsed
	case *experiments.Table4Result:
		return v.Elapsed
	case *experiments.Table5Result:
		return v.Elapsed
	}
	return 0
}
