// Command htdetect evaluates HT-infected netlists against the three
// logic-testing detection schemes (Random, MERO, ND-ATPG).
//
// Usage:
//
//	htdetect -golden c2670.bench -infected c2670_ht0.bench -trigger ht0_trig4
//	htdetect -golden g.bench -infected bad.bench -trigger t1 -scheme mero -n 100
//
// The tool reports, per scheme, whether the trigger fired (TC) and
// whether an output difference was observed (DC), with the first firing
// vector index. With -report it writes a JSON run report (one span per
// scheme plus pattern-budget counters); -cpuprofile / -memprofile
// capture pprof profiles.
package main

import (
	"flag"
	"fmt"
	"os"

	"cghti"
	"cghti/internal/artifact"
	"cghti/internal/cli"
	"cghti/internal/detect"
	"cghti/internal/faultsim"
	"cghti/internal/obs"
	"cghti/internal/rare"
)

const tool = "htdetect"

func main() {
	var (
		goldenPath   = flag.String("golden", "", "golden .bench netlist")
		infectedPath = flag.String("infected", "", "HT-infected .bench netlist")
		trigger      = flag.String("trigger", "", "trigger net name in the infected netlist")
		activation   = flag.Int("activation", 1, "trigger value that fires the payload (0 or 1)")
		scheme       = flag.String("scheme", "all", "detection scheme: random, mero, ndatpg, cotd or all")
		faultCov     = flag.Bool("faultcov", false, "also report stuck-at fault coverage of each test set on the golden circuit")
		patterns     = flag.Int("patterns", 100000, "random-scheme pattern count")
		meroN        = flag.Int("n", 1000, "MERO / ND-ATPG N parameter")
		meroPool     = flag.Int("pool", 100000, "MERO random pool size")
		theta        = flag.Float64("theta", 0.20, "rareness threshold for MERO/ND-ATPG rare nodes")
		vectors      = flag.Int("vectors", 10000, "rare-node extraction vector count")
		seed         = flag.Int64("seed", 1, "random seed")
		workers      = flag.Int("workers", 0, "simulation/ATPG goroutine budget (0 = all CPUs, 1 = serial; output is identical)")
		cacheDir     = flag.String("cache-dir", "", "persist the rare-node extraction artifact here; reruns against the same golden netlist and parameters skip the simulation sweep")
		report       = flag.String("report", "", "write a JSON run report (per-scheme spans + counters) to this file")
		timeout      = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit); a timed-out or interrupted run still writes its partial -report")
		cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	if *goldenPath == "" || *infectedPath == "" || *trigger == "" {
		cli.Fatalf(tool, "-golden, -infected and -trigger are required")
	}
	if err := cli.StartProfiles(*cpuprofile, *memprofile); err != nil {
		cli.Fatal(tool, err)
	}
	defer cli.StopProfiles()

	snap0 := obs.Default().Snapshot()
	trace := obs.NewTrace()
	ctx, stop := cli.Context(*timeout)
	defer stop()

	// writeReport serializes whatever the trace and counters hold right
	// now; fatal paths call it too, so an interrupted or timed-out run
	// still leaves a valid partial report behind.
	writeReport := func(extra map[string]any) {
		if *report == "" {
			return
		}
		rep := obs.NewReport(tool, trace, obs.Default().Snapshot().Delta(snap0))
		rep.Args = os.Args[1:]
		rep.Extra = extra
		if err := rep.WriteFile(*report); err != nil {
			cli.Fatal(tool, err)
		}
		fmt.Println("run report written to", *report)
	}
	fatal := func(err error) {
		writeReport(map[string]any{"scheme": *scheme, "aborted": true})
		cli.Fatal(tool, err)
	}

	golden, err := cghti.ParseBenchFile(*goldenPath)
	if err != nil {
		cli.Fatal(tool, err)
	}
	infected, err := cghti.ParseBenchFile(*infectedPath)
	if err != nil {
		cli.Fatal(tool, err)
	}
	trigID, ok := infected.Lookup(*trigger)
	if !ok {
		cli.Fatalf(tool, "trigger net %q not found in %s", *trigger, *infectedPath)
	}
	tgt := detect.Target{
		Golden:     golden,
		Infected:   infected,
		TriggerOut: trigID,
		Activation: uint8(*activation & 1),
	}

	needRare := *scheme == "all" || *scheme == "mero" || *scheme == "ndatpg"
	var rs *rare.Set
	if needRare {
		var cache *artifact.Cache
		if *cacheDir != "" {
			if cache, err = artifact.DirCache(*cacheDir); err != nil {
				cli.Fatal(tool, err)
			}
		}
		sp := trace.Start("rare_extract")
		rs, err = rare.ExtractCached(ctx, cache, golden, rare.Config{Vectors: *vectors, Threshold: *theta, Seed: *seed, Workers: *workers})
		if err != nil {
			sp.Abort()
			fatal(err)
		}
		sp.End()
		fmt.Printf("%s: %d rare nodes at θ=%.0f%%\n", golden.Name, rs.Len(), *theta*100)
	}

	run := func(name string, ts *detect.TestSet) {
		out, err := detect.EvaluateContext(ctx, tgt, ts, detect.EvalConfig{Workers: *workers})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-8s %6d vectors  triggered=%-5v (first %d)  detected=%-5v (first %d)\n",
			name, ts.Len(), out.Triggered, out.FirstTrigger, out.Detected, out.FirstDetect)
		if *faultCov {
			cov, err := faultsim.RunContext(ctx, golden, ts.Vectors, nil, *workers)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("         stuck-at fault coverage on golden: %.1f%% (%d/%d)\n",
				cov.Percent(), cov.Detected, cov.Total)
		}
	}

	if *scheme == "all" || *scheme == "random" {
		sp := trace.Start("random")
		run("random", detect.RandomTestSet(golden, *patterns, *seed))
		sp.End()
	}
	if *scheme == "all" || *scheme == "mero" {
		sp := trace.Start("mero")
		ts, err := detect.MEROContext(ctx, golden, rs, detect.MEROConfig{N: *meroN, RandomVectors: *meroPool, Seed: *seed, Workers: *workers})
		if err != nil {
			sp.Abort()
			fatal(err)
		}
		run("mero", ts)
		sp.End()
	}
	if *scheme == "all" || *scheme == "ndatpg" {
		sp := trace.Start("ndatpg")
		n := *meroN
		if n > 10 {
			n = 5 // ND-ATPG's N is per rare event; cap the default
		}
		ts, err := detect.NDATPGContext(ctx, golden, rs, detect.NDATPGConfig{N: n, Seed: *seed, Workers: *workers})
		if err != nil {
			sp.Abort()
			fatal(err)
		}
		run("ndatpg", ts)
		sp.End()
	}
	if *scheme == "all" || *scheme == "cotd" {
		sp := trace.Start("cotd")
		rep, err := detect.COTD(infected, detect.COTDConfig{})
		if err != nil {
			sp.Abort()
			fatal(err)
		}
		fmt.Printf("%-8s structural analysis  flagged=%-5v suspicious=%d threshold=%.0f\n",
			"cotd", rep.Flagged, len(rep.Suspicious), rep.Threshold)
		for i, id := range rep.Suspicious {
			if i >= 5 {
				fmt.Printf("         ... and %d more\n", len(rep.Suspicious)-5)
				break
			}
			fmt.Printf("         suspicious net %s (score %.0f)\n",
				infected.Gates[id].Name, rep.Scores[id])
		}
		sp.End()
	}

	writeReport(map[string]any{
		"golden":   golden.Name,
		"infected": infected.Name,
		"trigger":  *trigger,
		"scheme":   *scheme,
	})
}
