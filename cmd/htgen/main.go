// Command htgen generates Hardware Trojan benchmarks with the
// compatibility-graph insertion framework.
//
// Usage:
//
//	htgen -circuit c2670 -q 25 -n 10 -out ./out
//	htgen -bench mydesign.bench -q 10 -n 5 -theta 0.2 -vectors 10000 -out ./out
//	htgen -circuit c2670 -q 8 -report run.json -v
//
// For every emitted instance the tool writes <name>.bench (and with
// -verilog also <name>.v) plus a <name>.trigger file recording the
// trigger nodes, victim net and activation cube. With -report it also
// writes a JSON run report (per-stage span trace + counter deltas);
// with -v it streams stage progress to stderr; -cpuprofile /
// -memprofile capture pprof profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cghti"
	"cghti/internal/cli"
	"cghti/internal/obs"
	"cghti/internal/opt"
	"cghti/internal/trojan"
	"cghti/internal/vparse"
)

const tool = "htgen"

func main() {
	var (
		circuit    = flag.String("circuit", "", "built-in benchmark circuit name (see -list)")
		benchIn    = flag.String("bench", "", "path to a .bench netlist to infect (overrides -circuit)")
		outDir     = flag.String("out", "ht_out", "output directory")
		q          = flag.Int("q", 8, "minimum number of trigger nodes per instance")
		n          = flag.Int("n", 1, "number of HT instances to generate")
		theta      = flag.Float64("theta", 0.20, "rareness threshold θ_RN (fraction of |V|)")
		vectors    = flag.Int("vectors", 10000, "random vector count |V| for rare-node extraction")
		faninK     = flag.Int("k", 4, "max fanin of trigger-tree gates")
		seed       = flag.Int64("seed", 1, "random seed")
		workers    = flag.Int("workers", 0, "simulation/ATPG goroutine budget (0 = all CPUs, 1 = serial; output is identical)")
		partitions = flag.Int("partitions", 0, "fanout-cone partition count for the million-gate scale path (0/1 = whole-netlist engines; output is identical)")
		payload    = flag.String("payload", "flip", "trojan effect: flip (invert victim), leak (new output), force (jam victim)")
		verilog    = flag.Bool("verilog", false, "also emit structural Verilog")
		check      = flag.Bool("check", true, "re-prove every instance's activation cube before writing")
		list       = flag.Bool("list", false, "list built-in circuits and exit")
		maxNodes   = flag.Int("max-rare", 0, "cap PODEM cube generation to the rarest K nodes (0 = all)")
		timebomb   = flag.Int("timebomb", 0, "convert each instance to a sequential time bomb with this many counter bits (0 = off)")
		dedup      = flag.Bool("dedup", false, "run structural deduplication after insertion (blends trojan gates with functional logic)")
		cacheDir   = flag.String("cache-dir", "", "persist pipeline artifacts (rare sets, cubes, graphs) here; warm reruns with identical parameters skip the expensive stages")
		report     = flag.String("report", "", "write a JSON run report (span trace + counters) to this file")
		timeout    = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit); a timed-out or interrupted run still writes its partial -report")
		verbose    = flag.Bool("v", false, "stream stage progress to stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	if *list {
		for _, name := range cghti.CircuitNames() {
			fmt.Println(name)
		}
		return
	}
	if err := cli.StartProfiles(*cpuprofile, *memprofile); err != nil {
		cli.Fatal(tool, err)
	}
	defer cli.StopProfiles()

	snap0 := obs.Default().Snapshot()
	trace := obs.NewTrace()
	ctx, stop := cli.Context(*timeout)
	defer stop()

	// writeReport serializes whatever the trace and counters hold right
	// now. The error paths call it too, so an interrupted or timed-out
	// run still leaves a valid partial report behind.
	writeReport := func(extra map[string]any) {
		if *report == "" {
			return
		}
		rep := obs.NewReport(tool, trace, obs.Default().Snapshot().Delta(snap0))
		rep.Args = os.Args[1:]
		rep.Extra = extra
		if err := rep.WriteFile(*report); err != nil {
			cli.Fatal(tool, err)
		}
		fmt.Println("run report written to", *report)
	}

	base, err := loadInput(*benchIn, *circuit)
	if err != nil {
		cli.Fatal(tool, err)
	}

	cfg := cghti.Config{
		RareVectors:     *vectors,
		RareThreshold:   *theta,
		MinTriggerNodes: *q,
		Instances:       *n,
		FaninK:          *faninK,
		MaxRareNodes:    *maxNodes,
		Seed:            *seed,
		Workers:         *workers,
		Partitions:      *partitions,
		CacheDir:        *cacheDir,
		Trace:           trace,
	}
	if *verbose {
		cfg.Progress = obs.TextSink(os.Stderr)
	}
	switch *payload {
	case "flip", "":
		cfg.Payload = trojan.PayloadFlip
	case "leak":
		cfg.Payload = trojan.PayloadLeakToOutput
	case "force":
		cfg.Payload = trojan.PayloadForce
	default:
		cli.Fatalf(tool, "unknown payload %q (flip, leak, force)", *payload)
	}
	res, err := cghti.GenerateContext(ctx, base, cfg)
	if err != nil {
		extra := map[string]any{"circuit": base.Name, "aborted": true}
		if se, ok := cghti.AsStageError(err); ok {
			extra["failed_stage"] = se.Stage
		}
		writeReport(extra)
		cli.Fatal(tool, err)
	}
	for _, d := range res.Degraded {
		fmt.Fprintf(os.Stderr, "%s: warning: stage %s degraded (%s): %v\n", tool, d.Stage, d.Detail, d.Err)
	}
	if len(res.CachedStages) > 0 {
		fmt.Printf("served from cache: %s\n", strings.Join(res.CachedStages, ", "))
	}
	if *check {
		sp := trace.Start("verify")
		if err := res.Verify(); err != nil {
			cli.Fatalf(tool, "activation-cube verification failed: %w", err)
		}
		sp.End()
	}

	sp := trace.Start("write_outputs")
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		cli.Fatal(tool, err)
	}
	fmt.Printf("%s: %d rare nodes, %d graph vertices, %d cliques mined\n",
		base.Name, res.RareSet.Len(), res.Graph.NumVertices(), len(res.Cliques))
	for _, b := range res.Benchmarks {
		if *timebomb > 0 {
			tb, err := trojan.InsertTimeBomb(b.Netlist, b.Instance, trojan.TimeBombSpec{CounterBits: *timebomb})
			if err != nil {
				cli.Fatal(tool, err)
			}
			fmt.Printf("  time bomb: %d-bit counter, armed net %s\n", tb.CounterBits, tb.Armed)
		}
		out := b.Netlist
		if *dedup {
			blended, dres, err := opt.Dedup(out)
			if err != nil {
				cli.Fatal(tool, err)
			}
			fmt.Printf("  dedup: %s\n", dres)
			out = blended
		}
		path := filepath.Join(*outDir, out.Name+".bench")
		if err := cghti.WriteBenchFile(path, out); err != nil {
			cli.Fatal(tool, err)
		}
		if *verilog {
			if err := cghti.WriteVerilogFile(filepath.Join(*outDir, out.Name+".v"), out); err != nil {
				cli.Fatal(tool, err)
			}
		}
		if err := writeTriggerReport(*outDir, res, b); err != nil {
			cli.Fatal(tool, err)
		}
		fmt.Printf("  %s: q=%d, trigger=%s, victim=%s, payload=%s, est. activation prob %.3g\n",
			path, len(b.Clique.Vertices), b.Instance.TriggerOut,
			b.Instance.Victim, b.Instance.Payload, b.Instance.Trigger.ActivationProb)
	}
	sp.End()
	min, max, _ := res.TriggerRange()
	overhead, err := res.AreaOverhead()
	if err != nil {
		cli.Fatal(tool, err)
	}
	fmt.Printf("trigger nodes %d-%d, worst-case area overhead %.2f%%, total time %v\n",
		min, max, overhead, res.Times.Total)

	extra := map[string]any{
		"circuit":        base.Name,
		"rare_nodes":     res.RareSet.Len(),
		"graph_vertices": res.Graph.NumVertices(),
		"graph_edges":    res.Graph.NumEdges(),
		"cliques":        len(res.Cliques),
		"instances":      len(res.Benchmarks),
		"trigger_q_min":  min,
		"trigger_q_max":  max,
	}
	if len(res.CachedStages) > 0 {
		extra["cached_stages"] = res.CachedStages
	}
	if len(res.Degraded) > 0 {
		stages := make([]string, len(res.Degraded))
		for i, d := range res.Degraded {
			stages[i] = d.Stage
		}
		extra["degraded_stages"] = stages
	}
	writeReport(extra)
}

func loadInput(benchPath, circuit string) (*cghti.Netlist, error) {
	switch {
	case strings.HasSuffix(benchPath, ".v"):
		return vparse.ParseFile(benchPath)
	case benchPath != "":
		return cghti.ParseBenchFile(benchPath)
	case circuit != "":
		return cghti.Circuit(circuit)
	}
	return nil, fmt.Errorf("one of -bench or -circuit is required (try -list)")
}

func writeTriggerReport(dir string, res *cghti.Result, b cghti.Benchmark) error {
	f, err := os.Create(filepath.Join(dir, b.Netlist.Name+".trigger"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# trojan instance %d of %s\n", b.Instance.Index, res.Base.Name)
	fmt.Fprintf(f, "trigger_out %s\n", b.Instance.TriggerOut)
	fmt.Fprintf(f, "payload %s %s\n", b.Instance.Payload, b.Instance.PayloadGate)
	fmt.Fprintf(f, "victim %s\n", b.Instance.Victim)
	fmt.Fprintf(f, "activation_cube %s\n", b.Clique.Cube)
	for _, node := range b.Clique.Nodes(res.Graph) {
		fmt.Fprintf(f, "trigger_node %s rare_value %d prob %.5f\n",
			res.Base.Gates[node.ID].Name, node.RareValue, node.Prob)
	}
	return nil
}
