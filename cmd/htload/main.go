// Command htload is the serving-path load generator: it drives N
// trojan-generation jobs against an htserved daemon at a fixed
// concurrency, waits for each job over its SSE event stream, and
// records client-observed end-to-end latency percentiles plus
// throughput as BENCH_serve.json — the same committed-and-diffed shape
// as BENCH_sim.json and BENCH_pipeline.json (see cmd/benchjson).
//
// Usage:
//
//	htload -jobs 120 -concurrency 8 -out BENCH_serve.json
//	htload -addr 127.0.0.1:8080 -jobs 500 -concurrency 16
//
// With -addr empty (the default) htload self-hosts: it starts an
// in-process serve.Server on a loopback port, runs the load through
// real HTTP, and drains it afterwards — so `make bench` needs no
// daemon orchestration. Point -addr at a running htserved to load-test
// a real deployment instead.
//
// A 429 (queue full) is backpressure, not an error: the submitter backs
// off and retries, so the daemon's bounded queue shapes the arrival
// rate exactly as it would for a real client fleet.
//
// With -fleet N (self-hosted only) htload boots N peered nodes and
// round-robins submissions over them: non-owner nodes forward by the
// consistent-hash ring, forwarded jobs are awaited at the node the
// X-Cghti-Owner response header names, and the recorded leg gains
// forwarded_jobs / remote_artifact_hits / forward_fallbacks metrics.
// Pair it with -mixed — the ring shards by netlist fingerprint, so a
// single-circuit fleet run funnels every job to one owner.
//
// With -crash-retry each submit carries a deterministic Idempotency-Key
// and transport errors retry the whole submit/await loop instead of
// failing the job — pointed at a journaled htserved that is being
// killed and restarted, the run rides through the crash: resubmits of
// already-accepted work are deduped by the daemon (200 + original job
// ID) rather than run twice. The final report then lists the daemon's
// terminal job-status counts from GET /v1/jobs.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cghti/internal/bench"
	"cghti/internal/cli"
	"cghti/internal/gen"
	"cghti/internal/serve"
)

const tool = "htload"

// loadConfig is one load run's shape.
type loadConfig struct {
	Addr        string // daemon address; empty self-hosts
	Jobs        int
	Concurrency int
	Circuit     string
	Seed        int64
	Workers     int // self-hosted pool size
	Queue       int // self-hosted queue depth
	Timeout     time.Duration
	// Mixed runs the fleet workload the batching simulator service is
	// built for: jobs round-robin over a few base circuits, so
	// concurrent jobs share compiled programs and their pattern blocks
	// pack into shared engines. The run records the achieved lane fill
	// and patterns/s-per-core from the daemon's counters.
	Mixed bool
	// SimBatchWords configures the self-hosted daemon's shared engine
	// width (ignored with -addr): 0 default, negative disables batching
	// — the exclusive-engine baseline the batched mixed run is compared
	// against in BENCH_serve.json.
	SimBatchWords int
	// CrashRetry sends an Idempotency-Key per job and retries submits
	// through transport errors (a daemon restart mid-run), relying on
	// the daemon's dedupe for exactly-once submission.
	CrashRetry bool
	// Fleet self-hosts this many peered nodes instead of one (ignored
	// with -addr): submissions round-robin over the fleet, non-owner
	// nodes forward by the consistent-hash ring, and the run records
	// forwarded-job and remote-artifact-tier activity. Pairs naturally
	// with -mixed — the ring shards by netlist fingerprint, so a
	// single-circuit fleet run funnels every job to one owner.
	Fleet int
}

// jsonResult mirrors cmd/benchjson's Result so BENCH_serve.json diffs
// with the same tooling as the other BENCH files.
type jsonResult struct {
	Name    string             `json:"name"`
	Package string             `json:"package,omitempty"`
	Iters   int64              `json:"iterations"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// jsonDoc mirrors cmd/benchjson's Doc. Baseline is carried over from an
// existing output file, never written fresh.
type jsonDoc struct {
	GeneratedAt string          `json:"generated_at"`
	GoVersion   string          `json:"go_version"`
	GOOS        string          `json:"goos"`
	GOARCH      string          `json:"goarch"`
	NumCPU      int             `json:"num_cpu"`
	Baseline    json.RawMessage `json:"baseline,omitempty"`
	Results     []jsonResult    `json:"results"`
}

func main() {
	var (
		addr        = flag.String("addr", "", "htserved address (host:port); empty self-hosts an in-process daemon")
		jobs        = flag.Int("jobs", 120, "total jobs to run")
		concurrency = flag.Int("concurrency", 8, "concurrent submitters")
		circuit     = flag.String("circuit", "c17", "catalog circuit for the generate jobs")
		seed        = flag.Int64("seed", 1, "base seed; job i uses seed+i so runs are deterministic and uncached")
		workers     = flag.Int("workers", serve.DefaultWorkers, "self-hosted pool size (ignored with -addr)")
		queue       = flag.Int("queue", serve.DefaultQueueDepth, "self-hosted queue depth (ignored with -addr)")
		timeout     = flag.Duration("timeout", 5*time.Minute, "whole-run deadline")
		out         = flag.String("out", "BENCH_serve.json", "output file (stdout if \"-\")")
		crashRetry  = flag.Bool("crash-retry", false, "send Idempotency-Keys and retry submits through daemon restarts")
		mixed       = flag.Bool("mixed", false, "fleet workload: jobs round-robin over a few base circuits (ignores -circuit); records lane_fill and patterns/s-per-core")
		batchWords  = flag.Int("sim-batch-words", 0, "self-hosted daemon's shared engine width (0 = default, negative = exclusive engines; ignored with -addr)")
		appendOut   = flag.Bool("append", false, "append this run's result to an existing -out file instead of replacing it")
		fleet       = flag.Int("fleet", 0, "self-host this many peered nodes and round-robin submissions over them (ignored with -addr)")
	)
	flag.Parse()

	cfg := loadConfig{
		Addr: *addr, Jobs: *jobs, Concurrency: *concurrency,
		Circuit: *circuit, Seed: *seed, Workers: *workers,
		Queue: *queue, Timeout: *timeout, CrashRetry: *crashRetry,
		Mixed: *mixed, SimBatchWords: *batchWords, Fleet: *fleet,
	}
	doc, err := run(cfg)
	if err != nil {
		cli.Fatal(tool, err)
	}
	if *out == "-" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			cli.Fatal(tool, err)
		}
		return
	}
	if err := writeDoc(*out, doc, *appendOut); err != nil {
		cli.Fatal(tool, err)
	}
	r := doc.Results[len(doc.Results)-1]
	fmt.Fprintf(os.Stderr, "%s: %s: %d jobs, p50 %.1fms p90 %.1fms p99 %.1fms, %.1f jobs/s, %d errors\n",
		tool, r.Name, r.Iters, r.Metrics["p50_ms"], r.Metrics["p90_ms"], r.Metrics["p99_ms"],
		r.Metrics["jobs_per_s"], int(r.Metrics["errors"]))
}

// run executes one load run and builds the result document.
func run(cfg loadConfig) (*jsonDoc, error) {
	if cfg.Jobs <= 0 || cfg.Concurrency <= 0 {
		return nil, fmt.Errorf("need positive -jobs and -concurrency")
	}
	// The mixed fleet cycles a few base circuits so concurrent jobs
	// share compiled programs — the shape the batching simulator
	// service packs best. A plain run drives one circuit.
	circuits := []string{cfg.Circuit}
	if cfg.Mixed {
		circuits = []string{"c17", "s27", "c432"}
	}
	texts := make([]string, len(circuits))
	for i, name := range circuits {
		n, err := gen.Benchmark(name)
		if err != nil {
			return nil, err
		}
		var sb strings.Builder
		if err := bench.Write(&sb, n); err != nil {
			return nil, err
		}
		texts[i] = sb.String()
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()

	var bases []string
	switch {
	case cfg.Addr != "":
		bases = []string{"http://" + cfg.Addr}
	case cfg.Fleet > 1:
		addrs, stop, err := selfHostFleet(cfg)
		if err != nil {
			return nil, err
		}
		defer stop()
		for _, a := range addrs {
			bases = append(bases, "http://"+a)
		}
	default:
		srv, stop, err := selfHost(cfg)
		if err != nil {
			return nil, err
		}
		defer stop()
		bases = []string{"http://" + srv}
	}
	base := bases[0] // metrics + job-status endpoint; in-process nodes share one registry

	lat := make([]time.Duration, cfg.Jobs)
	var failures atomic.Int64
	var retries atomic.Int64
	var replays atomic.Int64
	jobCh := make(chan int)
	var wg sync.WaitGroup
	client := &http.Client{} // no client timeout: SSE streams outlive any fixed cap; ctx bounds the run
	snap0 := counterSnapshot(ctx, client, base)
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobCh {
				k := i % len(circuits)
				// Round-robin the entry point, with a drift term so a
				// fleet the same size as the circuit cycle still pairs
				// every circuit with every entry node — otherwise each
				// circuit would always enter at one fixed node and the
				// leg would measure only one of local-owner/forwarded.
				b := (i + i/len(circuits)) % len(bases)
				d, err := runJob(ctx, client, bases[b], circuits[k], texts[k], cfg, i, &retries, &replays)
				if err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "%s: job %d: %v\n", tool, i, err)
					continue
				}
				lat[i] = d
			}
		}()
	}
	for i := 0; i < cfg.Jobs; i++ {
		select {
		case jobCh <- i:
		case <-ctx.Done():
			close(jobCh)
			wg.Wait()
			return nil, fmt.Errorf("run deadline hit after %d/%d jobs", i, cfg.Jobs)
		}
	}
	close(jobCh)
	wg.Wait()
	elapsed := time.Since(start)

	ok := lat[:0:0]
	for _, d := range lat {
		if d > 0 {
			ok = append(ok, d)
		}
	}
	if len(ok) == 0 {
		return nil, errors.New("every job failed")
	}
	sort.Slice(ok, func(a, b int) bool { return ok[a] < ok[b] })
	var sum time.Duration
	for _, d := range ok {
		sum += d
	}
	workload := cfg.Circuit
	if cfg.Mixed {
		workload = "mixed"
	}
	name := fmt.Sprintf("ServeLoad/%s/jobs=%d/conc=%d", workload, cfg.Jobs, cfg.Concurrency)
	if cfg.Addr == "" && cfg.SimBatchWords < 0 {
		name += "/excl" // the exclusive-engine baseline leg
	}
	if cfg.Addr == "" && cfg.Fleet > 1 {
		name += fmt.Sprintf("/fleet=%d", cfg.Fleet)
	}
	metrics := map[string]float64{
		"p50_ms":       ms(nearestRank(ok, 0.50)),
		"p90_ms":       ms(nearestRank(ok, 0.90)),
		"p99_ms":       ms(nearestRank(ok, 0.99)),
		"jobs_per_s":   float64(len(ok)) / elapsed.Seconds(),
		"errors":       float64(failures.Load()),
		"retries_429":  float64(retries.Load()),
		"idem_replays": float64(replays.Load()),
	}
	// Fleet-efficiency metrics from the daemon's own counters: how full
	// the shared simulation engines ran, and the aggregate simulation
	// throughput normalized per core. Skipped when either snapshot was
	// unavailable (e.g. a remote daemon that restarted mid-run).
	if snap1 := counterSnapshot(ctx, client, base); snap0 != nil && snap1 != nil {
		fill := snap1["sim.batch_fill"] - snap0["sim.batch_fill"]
		capacity := snap1["sim.batch_capacity"] - snap0["sim.batch_capacity"]
		if capacity > 0 {
			metrics["lane_fill"] = fill / capacity
		}
		vectors := snap1["sim.packed_vectors"] - snap0["sim.packed_vectors"]
		if vectors > 0 {
			metrics["patterns_per_s_per_core"] = vectors / elapsed.Seconds() / float64(runtime.NumCPU())
		}
		// Fleet activity: how many submissions crossed nodes, how often
		// the sharded artifact tier paid off, and whether any forwards
		// degraded to local execution. In-process fleet nodes share the
		// default metrics registry, so node 0's snapshot covers them all.
		if cfg.Addr == "" && cfg.Fleet > 1 {
			metrics["forwarded_jobs"] = snap1["serve.forwarded_jobs"] - snap0["serve.forwarded_jobs"]
			metrics["remote_artifact_hits"] = snap1["artifact.remote_hits"] - snap0["artifact.remote_hits"]
			metrics["forward_fallbacks"] = snap1["serve.forward_fallbacks"] - snap0["serve.forward_fallbacks"]
		}
	}
	doc := &jsonDoc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Results: []jsonResult{{
			Name:    name,
			Package: "cghti/cmd/htload",
			Iters:   int64(len(ok)),
			NsPerOp: float64(sum.Nanoseconds()) / float64(len(ok)),
			Metrics: metrics,
		}},
	}
	reportJobStatuses(ctx, client, base)
	return doc, nil
}

// counterSnapshot fetches the daemon's counter values from
// /metrics.json; nil when the endpoint is unreachable.
func counterSnapshot(ctx context.Context, client *http.Client, base string) map[string]float64 {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics.json", nil)
	if err != nil {
		return nil
	}
	resp, err := client.Do(hr)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var doc struct {
		Counters map[string]float64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil
	}
	return doc.Counters
}

// reportJobStatuses prints the daemon's terminal job-status counts from
// GET /v1/jobs — in crash-retry runs this is the ground truth that
// every submitted job reached a terminal state exactly once.
func reportJobStatuses(ctx context.Context, client *http.Client, base string) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs?limit=1000", nil)
	if err != nil {
		return
	}
	resp, err := client.Do(hr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: jobs listing: %v\n", tool, err)
		return
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []struct {
			Status string `json:"status"`
		} `json:"jobs"`
		Total int `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return
	}
	counts := map[string]int{}
	for _, j := range list.Jobs {
		counts[j.Status]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	fmt.Fprintf(os.Stderr, "%s: daemon job statuses (%d total): %s\n", tool, list.Total, strings.Join(parts, " "))
}

// selfHost starts an in-process daemon on a loopback port and returns
// its address plus a stop function that drains it.
func selfHost(cfg loadConfig) (addr string, stop func(), err error) {
	s := serve.New(serve.Config{Workers: cfg.Workers, QueueDepth: cfg.Queue, SimBatchWords: cfg.SimBatchWords})
	s.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	return ln.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		s.Drain(ctx)
	}, nil
}

// selfHostFleet starts cfg.Fleet in-process daemons on loopback ports,
// each advertising itself with the others as peers. All listeners are
// bound before any Server is built so every node knows the full member
// set up front — the rings agree from the first request.
func selfHostFleet(cfg loadConfig) (addrs []string, stop func(), err error) {
	n := cfg.Fleet
	lns := make([]net.Listener, n)
	addrs = make([]string, n)
	for i := range lns {
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			for _, prev := range lns[:i] {
				prev.Close()
			}
			return nil, nil, lerr
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	srvs := make([]*serve.Server, n)
	https := make([]*http.Server, n)
	for i := range srvs {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		s := serve.New(serve.Config{
			Workers: cfg.Workers, QueueDepth: cfg.Queue,
			SimBatchWords: cfg.SimBatchWords,
			Peers:         peers, Advertise: addrs[i],
		})
		s.Start()
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(lns[i])
		srvs[i], https[i] = s, hs
	}
	return addrs, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for i := range srvs {
			https[i].Shutdown(ctx)
			srvs[i].Drain(ctx)
		}
	}, nil
}

// runJob submits one generate job and waits for its terminal status
// over the SSE event stream. The returned duration is client-observed:
// from the first submit attempt (including any 429 backoff — queue wait
// the client experienced) to the result event.
//
// In crash-retry mode the submit carries a deterministic
// Idempotency-Key and the whole submit/await loop retries through
// transport errors: a daemon restart mid-run drops connections, but the
// resubmit is deduped server-side (200 + the original job ID), so the
// job still runs exactly once.
func runJob(ctx context.Context, client *http.Client, base, circuit, benchText string, cfg loadConfig, i int, retries, replays *atomic.Int64) (time.Duration, error) {
	req := serve.GenerateRequest{
		Bench:           benchText,
		Name:            circuit,
		Seed:            cfg.Seed + int64(i), // distinct seeds: real pipeline work per job, no warm-cache shortcut
		Instances:       1,
		MinTriggerNodes: 2,
		RareVectors:     200,
		RareThreshold:   0.4,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for {
		d, err := submitAndAwait(ctx, client, base, body, cfg, i, start, retries, replays)
		if err != nil && cfg.CrashRetry && isTransient(err) && ctx.Err() == nil {
			select {
			case <-time.After(100 * time.Millisecond):
				continue
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}
		return d, err
	}
}

// isTransient reports whether an error is worth a crash-retry: anything
// transport-level (connection refused/reset during a daemon restart, a
// stream cut mid-read) rather than a definitive server answer.
func isTransient(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var oe *net.OpError
	if errors.As(err, &oe) {
		return true
	}
	s := err.Error()
	return strings.Contains(s, "connection refused") ||
		strings.Contains(s, "connection reset") ||
		strings.Contains(s, "EOF") ||
		strings.Contains(s, "ended without a result")
}

// submitAndAwait is one submit + SSE-await pass.
func submitAndAwait(ctx context.Context, client *http.Client, base string, body []byte, cfg loadConfig, i int, start time.Time, retries, replays *atomic.Int64) (time.Duration, error) {
	var id string
	for {
		hr, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/generate", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		hr.Header.Set("Content-Type", "application/json")
		if cfg.CrashRetry {
			hr.Header.Set("Idempotency-Key", fmt.Sprintf("htload-%d-%d", cfg.Seed, i))
		}
		resp, err := client.Do(hr)
		if err != nil {
			return 0, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			resp.Body.Close()
			retries.Add(1)
			select {
			case <-time.After(25 * time.Millisecond):
				continue
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}
		// 202 = fresh accept; 200 = idempotent replay of a job the
		// daemon already has (possibly from before a restart).
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			msg, _ := decodeError(resp)
			resp.Body.Close()
			return 0, fmt.Errorf("submit: status %d: %s", resp.StatusCode, msg)
		}
		if resp.StatusCode == http.StatusOK {
			replays.Add(1)
		}
		// A forwarded submission names its owner: job IDs are per-node,
		// so status and events for this job live there, not here.
		if owner := resp.Header.Get(serve.OwnerHeader); owner != "" {
			base = "http://" + owner
		}
		var sub struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&sub)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		id = sub.ID
		break
	}

	status, errMsg, err := awaitResult(ctx, client, base, id)
	if err != nil {
		return 0, err
	}
	if status != string(serve.StatusDone) {
		return 0, fmt.Errorf("job %s finished %s: %s", id, status, errMsg)
	}
	return time.Since(start), nil
}

// awaitResult tails the job's SSE stream until the terminal "result"
// event. The stream replays missed events on connect, so there is no
// submit/subscribe race to lose the result to.
func awaitResult(ctx context.Context, client *http.Client, base, id string) (status, errMsg string, err error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return "", "", err
	}
	resp, err := client.Do(hr)
	if err != nil {
		return "", "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := decodeError(resp)
		return "", "", fmt.Errorf("events: status %d: %s", resp.StatusCode, msg)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: ") && event == "result":
			var res struct {
				Status string `json:"status"`
				Error  string `json:"error"`
			}
			if err := json.Unmarshal([]byte(line[len("data: "):]), &res); err != nil {
				return "", "", err
			}
			return res.Status, res.Error, nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", "", err
	}
	return "", "", fmt.Errorf("job %s event stream ended without a result", id)
}

func decodeError(resp *http.Response) (string, error) {
	var e struct {
		Error string `json:"error"`
	}
	err := json.NewDecoder(resp.Body).Decode(&e)
	return e.Error, err
}

// nearestRank is the nearest-rank percentile on a sorted slice.
func nearestRank(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// writeDoc writes the document, carrying over an existing file's
// baseline block the way cmd/benchjson does. With appendTo the
// existing file's results are kept and this run's results are added
// after them — how `make bench` accumulates the exclusive-baseline and
// batched legs of the mixed fleet comparison into one BENCH_serve.json.
func writeDoc(path string, doc *jsonDoc, appendTo bool) error {
	if prev, err := os.ReadFile(path); err == nil {
		var old jsonDoc
		if json.Unmarshal(prev, &old) == nil {
			if len(old.Baseline) > 0 {
				doc.Baseline = old.Baseline
			}
			if appendTo {
				doc.Results = append(old.Results, doc.Results...)
			}
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}
