package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestLoadRunEndToEnd drives a small self-hosted load run — real HTTP,
// real SSE completion — and checks the recorded document: every job
// succeeded, the percentiles are populated and ordered, and the file
// written matches the benchjson layout.
func TestLoadRunEndToEnd(t *testing.T) {
	cfg := loadConfig{
		Jobs:        12,
		Concurrency: 4,
		Circuit:     "c17",
		Seed:        100,
		Workers:     4,
		Queue:       8,
		Timeout:     2 * time.Minute,
	}
	doc, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(doc.Results))
	}
	r := doc.Results[0]
	if r.Iters != int64(cfg.Jobs) {
		t.Fatalf("iterations = %d, want %d (some jobs failed)", r.Iters, cfg.Jobs)
	}
	if got := r.Metrics["errors"]; got != 0 {
		t.Fatalf("errors = %v, want 0", got)
	}
	p50, p90, p99 := r.Metrics["p50_ms"], r.Metrics["p90_ms"], r.Metrics["p99_ms"]
	if p50 <= 0 {
		t.Fatalf("p50 = %v, want > 0", p50)
	}
	if p90 < p50 || p99 < p90 {
		t.Fatalf("percentiles out of order: p50 %v p90 %v p99 %v", p50, p90, p99)
	}
	if r.Metrics["jobs_per_s"] <= 0 {
		t.Fatalf("jobs_per_s = %v, want > 0", r.Metrics["jobs_per_s"])
	}
	if r.NsPerOp <= 0 {
		t.Fatalf("ns_per_op = %v, want > 0", r.NsPerOp)
	}

	// The written file parses back as the benchjson document shape, and
	// an existing baseline block survives a rewrite.
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := os.WriteFile(path, []byte(`{"baseline":{"note":"keep"},"results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeDoc(path, doc, false); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back jsonDoc
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || back.Results[0].Name != r.Name {
		t.Fatalf("written doc round-trip mismatch: %+v", back.Results)
	}
	if string(back.Baseline) == "" {
		t.Fatal("existing baseline block was not carried over")
	}

	// Append mode keeps the existing results and adds the new run after
	// them — how `make bench` accumulates the exclusive and batched legs
	// into one document.
	doc2 := &jsonDoc{Results: []jsonResult{{Name: "second"}}}
	if err := writeDoc(path, doc2, true); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back = jsonDoc{}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 2 || back.Results[0].Name != r.Name || back.Results[1].Name != "second" {
		t.Fatalf("append round-trip mismatch: %+v", back.Results)
	}
	if string(back.Baseline) == "" {
		t.Fatal("baseline block was not carried through append")
	}
}

// TestNearestRank pins the percentile estimator.
func TestNearestRank(t *testing.T) {
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * time.Millisecond
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.90, 90 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := nearestRank(sorted, tc.q); got != tc.want {
			t.Errorf("nearestRank(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := nearestRank(nil, 0.5); got != 0 {
		t.Errorf("nearestRank(nil) = %v, want 0", got)
	}
}
