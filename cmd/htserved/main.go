// Command htserved is the long-running job daemon: it accepts .bench
// trojan-generation and detection jobs over HTTP and runs them on a
// bounded worker pool sharing one artifact cache.
//
// Usage:
//
//	htserved -addr :8080 -workers 4 -queue 16 -cache-dir /var/cache/cghti
//
// Endpoints:
//
//	POST /v1/generate          submit a generation job (JSON body; 202 + job id)
//	POST /v1/detect            submit a detection job
//	GET  /v1/jobs              list retained jobs (?status=, ?limit=)
//	GET  /v1/jobs/{id}         poll a job's status, result and per-job report
//	GET  /v1/jobs/{id}/events  stream the job's progress as Server-Sent Events
//	GET  /healthz              200 + queue/worker occupancy, 503 while draining
//	GET  /metrics              Prometheus text exposition (counters, gauges,
//	                           latency histograms)
//	GET  /metrics.json         the pre-Prometheus JSON metrics shape
//	GET  /v1/artifacts/{fp}    serve one cache entry to a fleet peer (framed)
//	PUT  /v1/artifacts/{fp}    accept one framed cache entry (verified first)
//
// With -peers the daemon joins a fleet: submissions are consistent-hash
// sharded by netlist fingerprint (a non-owner node proxies the request,
// preserving Idempotency-Key, so identical submissions dedupe fleet-wide
// against the owner's journal; an unreachable owner degrades to local
// execution), and the artifact cache gains a remote tier that fetches
// entries peers already computed — hash-verified before use.
//
// A full queue rejects submits with 429 and a Retry-After header derived
// from the observed queue-wait p50 (clamped to [1, 30] seconds). On
// SIGINT/SIGTERM the daemon stops accepting work, gives in-flight jobs
// -drain-grace to finish (then cancels them), and writes a final run
// report to -report (or stderr).
//
// With -journal-dir the daemon keeps a write-ahead log of job lifecycle
// events: every accepted job is journaled (with its request payload)
// and fsynced before the 202, so a crash — kill -9 included — loses no
// accepted work. On restart the journal is replayed: finished jobs come
// back queryable, interrupted jobs are re-enqueued (idempotently — the
// artifact cache makes redone stage work cheap), and a job that has
// crashed the process -max-attempts times is parked as "poisoned".
// Clients may send an Idempotency-Key header with a submit; retrying
// the same key returns the original job (200) instead of a duplicate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cghti/internal/artifact"
	"cghti/internal/cli"
	"cghti/internal/journal"
	"cghti/internal/serve"
)

const tool = "htserved"

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers     = flag.Int("workers", serve.DefaultWorkers, "job worker-pool size (max concurrent jobs)")
		queue       = flag.Int("queue", serve.DefaultQueueDepth, "accepted-but-not-started job backlog; beyond it submits get 429")
		jobTimeout  = flag.Duration("job-timeout", serve.DefaultJobTimeout, "per-job deadline cap (requests may ask for less)")
		jobWorkers  = flag.Int("job-workers", 1, "per-job simulation/ATPG goroutine budget")
		cacheDir    = flag.String("cache-dir", "", "persist the shared artifact cache here (memory-only if empty)")
		report      = flag.String("report", "", "write the final drain report to this file (stderr if empty)")
		drainGrace  = flag.Duration("drain-grace", 30*time.Second, "how long in-flight jobs may keep running after SIGTERM before being canceled")
		journalDir  = flag.String("journal-dir", "", "persist the job journal here and recover it on boot (no durability if empty)")
		maxAttempts = flag.Int("max-attempts", serve.DefaultMaxAttempts, "poison a job after this many crash-interrupted attempts")
		batchWords  = flag.Int("sim-batch-words", 0, "shared simulation engine width in 64-pattern words (0 = default, negative = exclusive engines per block)")
		peers       = flag.String("peers", "", "comma-separated peer node addresses (host:port); enables fleet mode: job sharding + remote artifact tier")
		advertise   = flag.String("advertise", "", "this node's own address as peers reach it (places the node on the ring; defaults to -addr)")
	)
	flag.Parse()

	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	adv := *advertise
	if adv == "" && len(peerList) > 0 {
		adv = *addr
	}

	var cache *artifact.Cache
	if *cacheDir != "" {
		c, err := artifact.DirCache(*cacheDir)
		if err != nil {
			cli.Fatal(tool, err)
		}
		cache = c
	}
	var jnl *journal.Journal
	if *journalDir != "" {
		j, err := journal.Open(*journalDir, journal.Options{})
		if err != nil {
			cli.Fatal(tool, err)
		}
		jnl = j
		defer jnl.Close()
	}
	srv := serve.New(serve.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		JobTimeout:    *jobTimeout,
		JobWorkers:    *jobWorkers,
		Cache:         cache,
		Journal:       jnl,
		MaxAttempts:   *maxAttempts,
		SimBatchWords: *batchWords,
		Peers:         peerList,
		Advertise:     adv,
	})
	if rec, err := srv.Recover(); err != nil {
		cli.Fatal(tool, err)
	} else if rec != nil {
		fmt.Fprintf(os.Stderr, "%s: %s\n", tool, rec)
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "%s: listening on %s (%d workers, queue %d)\n", tool, *addr, *workers, *queue)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		cli.Fatal(tool, err)
	case <-sigCtx.Done():
	}

	fmt.Fprintf(os.Stderr, "%s: draining (grace %v)\n", tool, *drainGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	rep := srv.Drain(drainCtx)

	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "%s: shutdown: %v\n", tool, err)
	}

	if rep != nil {
		if *report != "" {
			if err := rep.WriteFile(*report); err != nil {
				cli.Fatal(tool, err)
			}
			fmt.Fprintf(os.Stderr, "%s: drain report written to %s\n", tool, *report)
		} else if err := rep.WriteJSON(os.Stderr); err != nil {
			cli.Fatal(tool, err)
		}
	}
	fmt.Fprintf(os.Stderr, "%s: drained cleanly\n", tool)
}
