// Command htserved is the long-running job daemon: it accepts .bench
// trojan-generation and detection jobs over HTTP and runs them on a
// bounded worker pool sharing one artifact cache.
//
// Usage:
//
//	htserved -addr :8080 -workers 4 -queue 16 -cache-dir /var/cache/cghti
//
// Endpoints:
//
//	POST /v1/generate          submit a generation job (JSON body; 202 + job id)
//	POST /v1/detect            submit a detection job
//	GET  /v1/jobs              list retained jobs (?status=, ?limit=)
//	GET  /v1/jobs/{id}         poll a job's status, result and per-job report
//	GET  /v1/jobs/{id}/events  stream the job's progress as Server-Sent Events
//	GET  /healthz              200 + queue/worker occupancy, 503 while draining
//	GET  /metrics              Prometheus text exposition (counters, gauges,
//	                           latency histograms)
//	GET  /metrics.json         the pre-Prometheus JSON metrics shape
//
// A full queue rejects submits with 429 and a Retry-After header. On
// SIGINT/SIGTERM the daemon stops accepting work, gives in-flight jobs
// -drain-grace to finish (then cancels them), and writes a final run
// report to -report (or stderr).
//
// With -journal-dir the daemon keeps a write-ahead log of job lifecycle
// events: every accepted job is journaled (with its request payload)
// and fsynced before the 202, so a crash — kill -9 included — loses no
// accepted work. On restart the journal is replayed: finished jobs come
// back queryable, interrupted jobs are re-enqueued (idempotently — the
// artifact cache makes redone stage work cheap), and a job that has
// crashed the process -max-attempts times is parked as "poisoned".
// Clients may send an Idempotency-Key header with a submit; retrying
// the same key returns the original job (200) instead of a duplicate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cghti/internal/artifact"
	"cghti/internal/cli"
	"cghti/internal/journal"
	"cghti/internal/serve"
)

const tool = "htserved"

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers     = flag.Int("workers", serve.DefaultWorkers, "job worker-pool size (max concurrent jobs)")
		queue       = flag.Int("queue", serve.DefaultQueueDepth, "accepted-but-not-started job backlog; beyond it submits get 429")
		jobTimeout  = flag.Duration("job-timeout", serve.DefaultJobTimeout, "per-job deadline cap (requests may ask for less)")
		jobWorkers  = flag.Int("job-workers", 1, "per-job simulation/ATPG goroutine budget")
		cacheDir    = flag.String("cache-dir", "", "persist the shared artifact cache here (memory-only if empty)")
		report      = flag.String("report", "", "write the final drain report to this file (stderr if empty)")
		drainGrace  = flag.Duration("drain-grace", 30*time.Second, "how long in-flight jobs may keep running after SIGTERM before being canceled")
		journalDir  = flag.String("journal-dir", "", "persist the job journal here and recover it on boot (no durability if empty)")
		maxAttempts = flag.Int("max-attempts", serve.DefaultMaxAttempts, "poison a job after this many crash-interrupted attempts")
		batchWords  = flag.Int("sim-batch-words", 0, "shared simulation engine width in 64-pattern words (0 = default, negative = exclusive engines per block)")
	)
	flag.Parse()

	var cache *artifact.Cache
	if *cacheDir != "" {
		c, err := artifact.DirCache(*cacheDir)
		if err != nil {
			cli.Fatal(tool, err)
		}
		cache = c
	}
	var jnl *journal.Journal
	if *journalDir != "" {
		j, err := journal.Open(*journalDir, journal.Options{})
		if err != nil {
			cli.Fatal(tool, err)
		}
		jnl = j
		defer jnl.Close()
	}
	srv := serve.New(serve.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		JobTimeout:    *jobTimeout,
		JobWorkers:    *jobWorkers,
		Cache:         cache,
		Journal:       jnl,
		MaxAttempts:   *maxAttempts,
		SimBatchWords: *batchWords,
	})
	if rec, err := srv.Recover(); err != nil {
		cli.Fatal(tool, err)
	} else if rec != nil {
		fmt.Fprintf(os.Stderr, "%s: %s\n", tool, rec)
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "%s: listening on %s (%d workers, queue %d)\n", tool, *addr, *workers, *queue)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		cli.Fatal(tool, err)
	case <-sigCtx.Done():
	}

	fmt.Fprintf(os.Stderr, "%s: draining (grace %v)\n", tool, *drainGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	rep := srv.Drain(drainCtx)

	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "%s: shutdown: %v\n", tool, err)
	}

	if rep != nil {
		if *report != "" {
			if err := rep.WriteFile(*report); err != nil {
				cli.Fatal(tool, err)
			}
			fmt.Fprintf(os.Stderr, "%s: drain report written to %s\n", tool, *report)
		} else if err := rep.WriteJSON(os.Stderr); err != nil {
			cli.Fatal(tool, err)
		}
	}
	fmt.Fprintf(os.Stderr, "%s: drained cleanly\n", tool)
}
