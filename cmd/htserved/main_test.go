package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"cghti"
)

// TestSmoke is the end-to-end daemon check `make smoke` runs: build
// the real binary, start it, submit a c17 generation job over HTTP,
// poll it to completion, SIGTERM the process, and require a clean
// drain (exit 0 with a final report on stderr).
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and runs the real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "htserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Pick a free port, then hand it to the daemon.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	reportPath := filepath.Join(dir, "report.json")
	cmd := exec.Command(bin,
		"-addr", addr,
		"-workers", "2",
		"-queue", "4",
		"-cache-dir", filepath.Join(dir, "cache"),
		"-report", reportPath,
		"-drain-grace", "20s",
	)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	waitHealthy(t, base)

	n, err := cghti.Circuit("c17")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := cghti.WriteBench(&sb, n); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"bench":             sb.String(),
		"name":              "c17",
		"seed":              1,
		"instances":         1,
		"min_trigger_nodes": 2,
		"rare_vectors":      200,
		"rare_threshold":    0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202 (stderr: %s)", resp.StatusCode, stderr.String())
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	status := pollSmokeJob(t, base, sub.ID)
	if status != "done" {
		t.Fatalf("job status = %q, want done (stderr: %s)", status, stderr.String())
	}

	// SIGTERM must drain cleanly: exit 0 and a final report on disk.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exit := make(chan error, 1)
	go func() { exit <- cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit within 30s of SIGTERM\n%s", stderr.String())
	}
	rep, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("final report missing: %v", err)
	}
	var repJSON map[string]any
	if err := json.Unmarshal(rep, &repJSON); err != nil {
		t.Fatalf("final report is not JSON: %v", err)
	}
	if repJSON["tool"] != "htserved" {
		t.Fatalf("report tool = %v, want htserved", repJSON["tool"])
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

func pollSmokeJob(t *testing.T, base, id string) string {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch view.Status {
		case "done", "failed", "canceled":
			if view.Error != "" {
				return fmt.Sprintf("%s (%s)", view.Status, view.Error)
			}
			return view.Status
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return ""
}
