package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"cghti"
)

// TestSmoke is the end-to-end daemon check `make smoke` runs: build
// the real binary, start it, submit a c17 generation job over HTTP,
// poll it to completion, SIGTERM the process, and require a clean
// drain (exit 0 with a final report on stderr).
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and runs the real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "htserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Pick a free port, then hand it to the daemon.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	reportPath := filepath.Join(dir, "report.json")
	cmd := exec.Command(bin,
		"-addr", addr,
		"-workers", "2",
		"-queue", "4",
		"-cache-dir", filepath.Join(dir, "cache"),
		"-report", reportPath,
		"-drain-grace", "20s",
	)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	waitHealthy(t, base)

	n, err := cghti.Circuit("c17")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := cghti.WriteBench(&sb, n); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"bench":             sb.String(),
		"name":              "c17",
		"seed":              1,
		"instances":         1,
		"min_trigger_nodes": 2,
		"rare_vectors":      200,
		"rare_threshold":    0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202 (stderr: %s)", resp.StatusCode, stderr.String())
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	status := pollSmokeJob(t, base, sub.ID)
	if status != "done" {
		t.Fatalf("job status = %q, want done (stderr: %s)", status, stderr.String())
	}

	// SIGTERM must drain cleanly: exit 0 and a final report on disk.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exit := make(chan error, 1)
	go func() { exit <- cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit within 30s of SIGTERM\n%s", stderr.String())
	}
	rep, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("final report missing: %v", err)
	}
	var repJSON map[string]any
	if err := json.Unmarshal(rep, &repJSON); err != nil {
		t.Fatalf("final report is not JSON: %v", err)
	}
	if repJSON["tool"] != "htserved" {
		t.Fatalf("report tool = %v, want htserved", repJSON["tool"])
	}
}

// TestFleetSmoke is the end-to-end fleet check `make fleetsmoke` runs:
// build the real binary, start TWO peered daemons, and require the
// fleet contracts to hold over real process boundaries — the same
// Idempotency-Key submitted to both nodes lands on one job at the ring
// owner, a forced-local rerun on the cold node pulls its artifacts
// from the warm peer (remote-tier hit in the cold node's own metrics),
// and both processes drain cleanly on SIGTERM.
func TestFleetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet smoke test builds and runs the real binary twice")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "htserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Reserve both ports first so each daemon can name the other as a
	// peer on its command line.
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}

	cmds := make([]*exec.Cmd, 2)
	stderrs := make([]*bytes.Buffer, 2)
	for i := range cmds {
		cmd := exec.Command(bin,
			"-addr", addrs[i],
			"-peers", addrs[1-i],
			"-workers", "2",
			"-queue", "8",
			"-drain-grace", "20s",
		)
		stderrs[i] = &bytes.Buffer{}
		cmd.Stderr = stderrs[i]
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		defer cmd.Process.Kill()
		cmds[i] = cmd
	}
	for i := range addrs {
		waitHealthy(t, "http://"+addrs[i])
	}

	n, err := cghti.Circuit("c17")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := cghti.WriteBench(&sb, n); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"bench":             sb.String(),
		"name":              "c17",
		"seed":              1,
		"instances":         1,
		"min_trigger_nodes": 2,
		"rare_vectors":      200,
		"rare_threshold":    0.4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Keyed dedup across nodes: the same key submitted to BOTH daemons
	// must resolve to one job. Whichever node we hit, the submission is
	// routed to the ring owner; the owner's journal dedupes the second.
	submit := func(base string, headers map[string]string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+"/v1/generate", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		for k, v := range headers {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var sub struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
		resp.Body.Close()
		return resp, sub.ID
	}
	key := map[string]string{"Idempotency-Key": "fleet-smoke-dedup"}
	resp1, id1 := submit("http://"+addrs[0], key)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first keyed submit status = %d, want 202\n%s", resp1.StatusCode, stderrs[0].String())
	}
	// The job lives at the ring owner: the forwarding node names it in
	// X-Cghti-Owner; absence means node 0 owned it itself.
	owner := resp1.Header.Get("X-Cghti-Owner")
	if owner == "" {
		owner = addrs[0]
	}
	resp2, id2 := submit("http://"+addrs[1], key)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("duplicate keyed submit status = %d, want 200 (replay)\n%s", resp2.StatusCode, stderrs[1].String())
	}
	if resp2.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatal("duplicate keyed submit not marked Idempotency-Replayed")
	}
	if id1 == "" || id1 != id2 {
		t.Fatalf("keyed submits returned different jobs: %q vs %q", id1, id2)
	}
	if status := pollSmokeJob(t, "http://"+owner, id1); status != "done" {
		t.Fatalf("deduped job status = %q, want done", status)
	}

	// Remote artifact tier across processes: force the SAME work to run
	// locally on the node that did not execute it (X-Cghti-Forwarded
	// suppresses forwarding). Its cache is cold, so its stage lookups
	// must hit the warm peer — visible in its own process's metrics.
	cold := addrs[1]
	if owner == addrs[1] {
		cold = addrs[0]
	}
	hitsBefore := counterValue(t, "http://"+cold, "artifact.remote_hits")
	resp3, id3 := submit("http://"+cold, map[string]string{"X-Cghti-Forwarded": "1"})
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("forced-local submit status = %d, want 202", resp3.StatusCode)
	}
	if status := pollSmokeJob(t, "http://"+cold, id3); status != "done" {
		t.Fatalf("forced-local job status = %q, want done", status)
	}
	hitsAfter := counterValue(t, "http://"+cold, "artifact.remote_hits")
	if hitsAfter <= hitsBefore {
		t.Fatalf("cold node artifact.remote_hits = %v before, %v after — expected remote-tier hits from the warm peer", hitsBefore, hitsAfter)
	}

	// Both daemons must drain cleanly.
	for i, cmd := range cmds {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		exit := make(chan error, 1)
		go func() { exit <- cmd.Wait() }()
		select {
		case err := <-exit:
			if err != nil {
				t.Fatalf("node %d exited non-zero after SIGTERM: %v\n%s", i, err, stderrs[i].String())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("node %d did not exit within 30s of SIGTERM\n%s", i, stderrs[i].String())
		}
	}
}

// counterValue reads one counter from a daemon's /metrics.json.
func counterValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Counters map[string]float64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc.Counters[name]
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

func pollSmokeJob(t *testing.T, base, id string) string {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch view.Status {
		case "done", "failed", "canceled":
			if view.Error != "" {
				return fmt.Sprintf("%s (%s)", view.Status, view.Error)
			}
			return view.Status
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return ""
}
