package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"cghti"
)

// syncBuffer is a mutex-guarded bytes.Buffer: exec's pipe-copier
// goroutine writes it while the test reads it, so a bare Buffer races.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startDaemon launches the built binary with a journal + cache dir and
// returns the process plus its stderr buffer.
func startDaemon(t *testing.T, bin, addr, journalDir, cacheDir string) (*exec.Cmd, *syncBuffer) {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-workers", "1",
		"-queue", "16",
		"-journal-dir", journalDir,
		"-cache-dir", cacheDir,
		"-drain-grace", "30s",
	)
	stderr := new(syncBuffer)
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd, stderr
}

// TestRecoverSmoke is the kill-and-recover drill `make recoversmoke`
// runs: build the real binary, submit a burst of keyed jobs, SIGKILL
// the daemon mid-burst (no drain, no warning — the crash the journal
// exists for), restart it over the same journal and cache dirs, and
// require that every accepted job reaches a terminal state, that a
// keyed resubmit is deduped to the original job ID (no duplicate side
// effects), and that the successor reported a recovery on boot.
func TestRecoverSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("recover smoke builds and runs (and kills) the real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "htserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	journalDir := filepath.Join(dir, "journal")
	cacheDir := filepath.Join(dir, "cache")

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd1, stderr1 := startDaemon(t, bin, addr, journalDir, cacheDir)
	defer cmd1.Process.Kill()
	base := "http://" + addr
	waitHealthy(t, base)

	// Submit a burst of slow-ish jobs (one worker, a non-toy circuit →
	// a real backlog) so the kill lands with work queued and running.
	n, err := cghti.Circuit("c1908")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := cghti.WriteBench(&sb, n); err != nil {
		t.Fatal(err)
	}
	const jobs = 8
	ids := make([]string, jobs)
	var submitBodies [jobs][]byte
	for i := 0; i < jobs; i++ {
		body, err := json.Marshal(map[string]any{
			"bench":             sb.String(),
			"name":              "c1908",
			"seed":              i + 1,
			"instances":         1,
			"min_trigger_nodes": 2,
			"rare_vectors":      500,
			"rare_threshold":    0.4,
		})
		if err != nil {
			t.Fatal(err)
		}
		submitBodies[i] = body
		ids[i] = submitKeyed(t, base, body, smokeKey(i), http.StatusAccepted, stderr1)
	}

	// SIGKILL: no drain, no journal close. Everything not yet terminal
	// is mid-flight state only the journal remembers.
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()

	// Successor over the same journal + cache.
	cmd2, stderr2 := startDaemon(t, bin, addr, journalDir, cacheDir)
	defer cmd2.Process.Kill()
	waitHealthy(t, base)
	if !strings.Contains(stderr2.String(), fmt.Sprintf("recovered %d jobs", jobs)) {
		t.Fatalf("successor boot log has no recovery report covering all %d jobs:\n%s", jobs, stderr2.String())
	}

	// Every submitted job must reach a terminal state — the accepted
	// work survived the kill.
	for i, id := range ids {
		status := pollSmokeJob(t, base, id)
		if status != "done" {
			t.Fatalf("job %d (%s) after recovery = %q, want done (stderr: %s)", i, id, status, stderr2.String())
		}
	}

	// Idempotent resubmit: same key, same body → 200 + the ORIGINAL job
	// ID, not a rerun.
	gotID := submitKeyed(t, base, submitBodies[0], smokeKey(0), http.StatusOK, stderr2)
	if gotID != ids[0] {
		t.Fatalf("keyed resubmit returned %s, want original %s", gotID, ids[0])
	}

	// No duplicate side effects: the daemon holds exactly `jobs` jobs,
	// all done.
	resp, err := http.Get(base + "/v1/jobs?status=done&limit=100")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs  []struct{ ID string } `json:"jobs"`
		Total int                   `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if list.Total != jobs {
		t.Fatalf("done jobs after recovery = %d, want %d (duplicates or losses)", list.Total, jobs)
	}

	// Clean SIGTERM exit for the successor.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exit := make(chan error, 1)
	go func() { exit <- cmd2.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("successor exited non-zero after SIGTERM: %v\n%s", err, stderr2.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("successor did not exit within 60s of SIGTERM\n%s", stderr2.String())
	}
}

func smokeKey(i int) string { return fmt.Sprintf("smoke-key-%d", i) }

// submitKeyed posts one generate body with an Idempotency-Key and
// requires the given status, returning the job ID.
func submitKeyed(t *testing.T, base string, body []byte, key string, wantStatus int, stderr *syncBuffer) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/generate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		raw, _ := json.Marshal(resp.Header)
		t.Fatalf("submit status = %d, want %d (headers %s, stderr: %s)", resp.StatusCode, wantStatus, raw, stderr.String())
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub.ID
}
