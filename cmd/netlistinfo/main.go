// Command netlistinfo inspects gate-level netlists: statistics, logic
// levels, rare-node summaries, SCOAP ranges and format conversion.
//
// Usage:
//
//	netlistinfo -circuit c2670
//	netlistinfo -bench design.bench -rare -scoap
//	netlistinfo -circuit c2670 -rare -json | jq .rare.count
//	netlistinfo -circuit c17 -to-verilog c17.v -to-bench c17.bench
//
// With -json the statistics (and the -rare / -scoap summaries, when
// requested) are emitted as one JSON object on stdout, machine-readable
// alongside the htgen/htdetect run reports; status notes go to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cghti"
	"cghti/internal/cli"
	"cghti/internal/features"
	"cghti/internal/netlist"
	"cghti/internal/rare"
	"cghti/internal/scoap"
	"cghti/internal/vparse"
)

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// printLevels renders the per-level gate counts as a compact histogram:
// one row per level up to 32 levels, then 32 buckets of merged levels.
func printLevels(hist []int) {
	if hist == nil {
		fmt.Println("levels: netlist is cyclic")
		return
	}
	peak := 0
	for _, c := range hist {
		if c > peak {
			peak = c
		}
	}
	buckets := len(hist)
	per := 1
	if buckets > 32 {
		per = (buckets + 31) / 32
		buckets = (len(hist) + per - 1) / per
	}
	fmt.Printf("levels 0..%d (%d gates/row max):\n", len(hist)-1, peak)
	for b := 0; b < buckets; b++ {
		total := 0
		for l := b * per; l < (b+1)*per && l < len(hist); l++ {
			total += hist[l]
		}
		bar := 0
		if peak > 0 {
			bar = total * 40 / (peak * per)
		}
		lo, hi := b*per, (b+1)*per-1
		if hi >= len(hist) {
			hi = len(hist) - 1
		}
		label := fmt.Sprintf("%d", lo)
		if hi > lo {
			label = fmt.Sprintf("%d-%d", lo, hi)
		}
		fmt.Printf("  %8s %8d %s\n", label, total, strings.Repeat("#", bar))
	}
}

const tool = "netlistinfo"

// jsonRareNode is one rare node in -json output.
type jsonRareNode struct {
	Name      string  `json:"name"`
	RareValue uint8   `json:"rare_value"`
	Prob      float64 `json:"prob"`
}

// jsonOut is the -json document: netlist statistics plus the optional
// analysis sections.
type jsonOut struct {
	Name     string         `json:"name"`
	Gates    int            `json:"gates"`
	Cells    int            `json:"cells"`
	PIs      int            `json:"pis"`
	POs      int            `json:"pos"`
	DFFs     int            `json:"dffs"`
	Depth    int32          `json:"depth"`
	MaxFanin int            `json:"max_fanin"`
	ByType   map[string]int `json:"by_type"`
	// Edges is the fanin connection count (fanout mirrors not
	// double-counted); the byte figures estimate resident memory of the
	// pointer form and the CSR arena form.
	Edges        int   `json:"edges"`
	PointerBytes int64 `json:"pointer_bytes"`
	CompactBytes int64 `json:"compact_bytes"`
	// Levels is the gate count per logic level (index = level),
	// present with -levels.
	Levels []int `json:"levels,omitempty"`
	Rare   *struct {
		Theta   float64        `json:"theta"`
		Vectors int            `json:"vectors"`
		Count   int            `json:"count"`
		Total   int            `json:"total_nodes"`
		RN1     int            `json:"rn1"`
		RN0     int            `json:"rn0"`
		Rarest  []jsonRareNode `json:"rarest"`
	} `json:"rare,omitempty"`
	Scoap *struct {
		MaxControllability int64 `json:"max_controllability"`
		MaxObservability   int64 `json:"max_observability"`
	} `json:"scoap,omitempty"`
}

func main() {
	var (
		circuit    = flag.String("circuit", "", "built-in benchmark circuit name")
		benchIn    = flag.String("bench", "", "path to a .bench netlist (overrides -circuit)")
		showRare   = flag.Bool("rare", false, "extract and summarize rare nodes")
		showLevels = flag.Bool("levels", false, "print the gate count per logic level")
		showScoap  = flag.Bool("scoap", false, "compute SCOAP testability ranges")
		theta      = flag.Float64("theta", 0.20, "rareness threshold")
		vectors    = flag.Int("vectors", 10000, "rare-node extraction vectors")
		seed       = flag.Int64("seed", 1, "random seed")
		toBench    = flag.String("to-bench", "", "write the netlist to this .bench file")
		toVerilog  = flag.String("to-verilog", "", "write the netlist to this Verilog file")
		featCSV    = flag.String("features", "", "write per-net ML features (MIMIC-style) to this CSV file")
		jsonMode   = flag.Bool("json", false, "emit statistics as JSON on stdout")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()
	if err := cli.StartProfiles(*cpuprofile, *memprofile); err != nil {
		cli.Fatal(tool, err)
	}
	defer cli.StopProfiles()

	// In JSON mode stdout carries exactly one JSON document; status
	// notes move to stderr.
	notes := io.Writer(os.Stdout)
	if *jsonMode {
		notes = os.Stderr
	}

	var (
		n   *cghti.Netlist
		err error
	)
	switch {
	case strings.HasSuffix(*benchIn, ".v"):
		n, err = vparse.ParseFile(*benchIn)
	case *benchIn != "":
		n, err = cghti.ParseBenchFile(*benchIn)
	case *circuit != "":
		n, err = cghti.Circuit(*circuit)
	default:
		err = fmt.Errorf("one of -bench (.bench or .v) or -circuit is required")
	}
	if err != nil {
		cli.Fatal(tool, err)
	}
	if err := n.Validate(); err != nil {
		cli.Fatal(tool, err)
	}
	stats := n.ComputeStats()
	doc := jsonOut{
		Name:     stats.Name,
		Gates:    stats.Gates,
		Cells:    stats.Cells,
		PIs:      stats.PIs,
		POs:      stats.POs,
		DFFs:     stats.DFFs,
		Depth:    stats.Depth,
		MaxFanin: stats.MaxFanin,
		ByType:   make(map[string]int, len(stats.ByType)),
	}
	for gt, count := range stats.ByType {
		doc.ByType[gt.String()] = count
	}
	c := netlist.CompactOf(n)
	doc.Edges = n.NumEdges()
	doc.PointerBytes = n.EstimatedBytes()
	doc.CompactBytes = c.EstimatedBytes()
	if *showLevels {
		doc.Levels = c.LevelHistogram()
	}
	if !*jsonMode {
		fmt.Println(stats)
		fmt.Printf("%d edges; est. memory %s pointer form, %s compact form\n",
			doc.Edges, fmtBytes(doc.PointerBytes), fmtBytes(doc.CompactBytes))
		if *showLevels {
			printLevels(doc.Levels)
		}
	}

	if *showRare {
		rs, err := rare.Extract(n, rare.Config{Vectors: *vectors, Threshold: *theta, Seed: *seed})
		if err != nil {
			cli.Fatal(tool, err)
		}
		show := rs.All()
		if len(show) > 10 {
			show = show[:10]
		}
		if *jsonMode {
			doc.Rare = &struct {
				Theta   float64        `json:"theta"`
				Vectors int            `json:"vectors"`
				Count   int            `json:"count"`
				Total   int            `json:"total_nodes"`
				RN1     int            `json:"rn1"`
				RN0     int            `json:"rn0"`
				Rarest  []jsonRareNode `json:"rarest"`
			}{
				Theta: *theta, Vectors: *vectors, Count: rs.Len(),
				Total: rs.TotalNodes, RN1: len(rs.RN1), RN0: len(rs.RN0),
			}
			for _, node := range show {
				doc.Rare.Rarest = append(doc.Rare.Rarest, jsonRareNode{
					Name: n.Gates[node.ID].Name, RareValue: node.RareValue, Prob: node.Prob,
				})
			}
		} else {
			fmt.Printf("rare nodes at θ=%.0f%% over %d vectors: %d of %d (%.1f%%), RN1=%d RN0=%d\n",
				*theta*100, *vectors, rs.Len(), rs.TotalNodes,
				100*float64(rs.Len())/float64(rs.TotalNodes), len(rs.RN1), len(rs.RN0))
			for _, node := range show {
				fmt.Printf("  %-20s rare value %d, p=%.4f\n",
					n.Gates[node.ID].Name, node.RareValue, node.Prob)
			}
		}
	}

	if *showScoap {
		m, err := scoap.Compute(n)
		if err != nil {
			cli.Fatal(tool, err)
		}
		var maxCC, maxCO int64
		for i := range n.Gates {
			for _, v := range []int64{m.CC0[i], m.CC1[i]} {
				if v > maxCC && v < scoap.Inf {
					maxCC = v
				}
			}
			if m.CO[i] > maxCO && m.CO[i] < scoap.Inf {
				maxCO = m.CO[i]
			}
		}
		if *jsonMode {
			doc.Scoap = &struct {
				MaxControllability int64 `json:"max_controllability"`
				MaxObservability   int64 `json:"max_observability"`
			}{MaxControllability: maxCC, MaxObservability: maxCO}
		} else {
			fmt.Printf("SCOAP: max finite controllability %d, max finite observability %d\n", maxCC, maxCO)
		}
	}

	if *jsonMode {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			cli.Fatal(tool, err)
		}
	}

	if *toBench != "" {
		if err := cghti.WriteBenchFile(*toBench, n); err != nil {
			cli.Fatal(tool, err)
		}
		fmt.Fprintln(notes, "wrote", *toBench)
	}
	if *toVerilog != "" {
		if err := cghti.WriteVerilogFile(*toVerilog, n); err != nil {
			cli.Fatal(tool, err)
		}
		fmt.Fprintln(notes, "wrote", *toVerilog)
	}
	if *featCSV != "" {
		vecs, err := features.Extract(n, features.Config{Vectors: *vectors, Seed: *seed})
		if err != nil {
			cli.Fatal(tool, err)
		}
		if err := features.WriteCSVFile(*featCSV, vecs); err != nil {
			cli.Fatal(tool, err)
		}
		fmt.Fprintf(notes, "wrote %s (%d nets x 12 features)\n", *featCSV, len(vecs))
	}
}
