// Command netlistinfo inspects gate-level netlists: statistics, logic
// levels, rare-node summaries, SCOAP ranges and format conversion.
//
// Usage:
//
//	netlistinfo -circuit c2670
//	netlistinfo -bench design.bench -rare -scoap
//	netlistinfo -circuit c2670 -rare -json | jq .rare.count
//	netlistinfo -circuit c17 -to-verilog c17.v -to-bench c17.bench
//
// With -json the statistics (and the -rare / -scoap summaries, when
// requested) are emitted as one JSON object on stdout, machine-readable
// alongside the htgen/htdetect run reports; status notes go to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cghti"
	"cghti/internal/cli"
	"cghti/internal/features"
	"cghti/internal/rare"
	"cghti/internal/scoap"
	"cghti/internal/vparse"
)

const tool = "netlistinfo"

// jsonRareNode is one rare node in -json output.
type jsonRareNode struct {
	Name      string  `json:"name"`
	RareValue uint8   `json:"rare_value"`
	Prob      float64 `json:"prob"`
}

// jsonOut is the -json document: netlist statistics plus the optional
// analysis sections.
type jsonOut struct {
	Name     string         `json:"name"`
	Gates    int            `json:"gates"`
	Cells    int            `json:"cells"`
	PIs      int            `json:"pis"`
	POs      int            `json:"pos"`
	DFFs     int            `json:"dffs"`
	Depth    int32          `json:"depth"`
	MaxFanin int            `json:"max_fanin"`
	ByType   map[string]int `json:"by_type"`
	Rare     *struct {
		Theta   float64        `json:"theta"`
		Vectors int            `json:"vectors"`
		Count   int            `json:"count"`
		Total   int            `json:"total_nodes"`
		RN1     int            `json:"rn1"`
		RN0     int            `json:"rn0"`
		Rarest  []jsonRareNode `json:"rarest"`
	} `json:"rare,omitempty"`
	Scoap *struct {
		MaxControllability int64 `json:"max_controllability"`
		MaxObservability   int64 `json:"max_observability"`
	} `json:"scoap,omitempty"`
}

func main() {
	var (
		circuit    = flag.String("circuit", "", "built-in benchmark circuit name")
		benchIn    = flag.String("bench", "", "path to a .bench netlist (overrides -circuit)")
		showRare   = flag.Bool("rare", false, "extract and summarize rare nodes")
		showScoap  = flag.Bool("scoap", false, "compute SCOAP testability ranges")
		theta      = flag.Float64("theta", 0.20, "rareness threshold")
		vectors    = flag.Int("vectors", 10000, "rare-node extraction vectors")
		seed       = flag.Int64("seed", 1, "random seed")
		toBench    = flag.String("to-bench", "", "write the netlist to this .bench file")
		toVerilog  = flag.String("to-verilog", "", "write the netlist to this Verilog file")
		featCSV    = flag.String("features", "", "write per-net ML features (MIMIC-style) to this CSV file")
		jsonMode   = flag.Bool("json", false, "emit statistics as JSON on stdout")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()
	if err := cli.StartProfiles(*cpuprofile, *memprofile); err != nil {
		cli.Fatal(tool, err)
	}
	defer cli.StopProfiles()

	// In JSON mode stdout carries exactly one JSON document; status
	// notes move to stderr.
	notes := io.Writer(os.Stdout)
	if *jsonMode {
		notes = os.Stderr
	}

	var (
		n   *cghti.Netlist
		err error
	)
	switch {
	case strings.HasSuffix(*benchIn, ".v"):
		n, err = vparse.ParseFile(*benchIn)
	case *benchIn != "":
		n, err = cghti.ParseBenchFile(*benchIn)
	case *circuit != "":
		n, err = cghti.Circuit(*circuit)
	default:
		err = fmt.Errorf("one of -bench (.bench or .v) or -circuit is required")
	}
	if err != nil {
		cli.Fatal(tool, err)
	}
	if err := n.Validate(); err != nil {
		cli.Fatal(tool, err)
	}
	stats := n.ComputeStats()
	doc := jsonOut{
		Name:     stats.Name,
		Gates:    stats.Gates,
		Cells:    stats.Cells,
		PIs:      stats.PIs,
		POs:      stats.POs,
		DFFs:     stats.DFFs,
		Depth:    stats.Depth,
		MaxFanin: stats.MaxFanin,
		ByType:   make(map[string]int, len(stats.ByType)),
	}
	for gt, count := range stats.ByType {
		doc.ByType[gt.String()] = count
	}
	if !*jsonMode {
		fmt.Println(stats)
	}

	if *showRare {
		rs, err := rare.Extract(n, rare.Config{Vectors: *vectors, Threshold: *theta, Seed: *seed})
		if err != nil {
			cli.Fatal(tool, err)
		}
		show := rs.All()
		if len(show) > 10 {
			show = show[:10]
		}
		if *jsonMode {
			doc.Rare = &struct {
				Theta   float64        `json:"theta"`
				Vectors int            `json:"vectors"`
				Count   int            `json:"count"`
				Total   int            `json:"total_nodes"`
				RN1     int            `json:"rn1"`
				RN0     int            `json:"rn0"`
				Rarest  []jsonRareNode `json:"rarest"`
			}{
				Theta: *theta, Vectors: *vectors, Count: rs.Len(),
				Total: rs.TotalNodes, RN1: len(rs.RN1), RN0: len(rs.RN0),
			}
			for _, node := range show {
				doc.Rare.Rarest = append(doc.Rare.Rarest, jsonRareNode{
					Name: n.Gates[node.ID].Name, RareValue: node.RareValue, Prob: node.Prob,
				})
			}
		} else {
			fmt.Printf("rare nodes at θ=%.0f%% over %d vectors: %d of %d (%.1f%%), RN1=%d RN0=%d\n",
				*theta*100, *vectors, rs.Len(), rs.TotalNodes,
				100*float64(rs.Len())/float64(rs.TotalNodes), len(rs.RN1), len(rs.RN0))
			for _, node := range show {
				fmt.Printf("  %-20s rare value %d, p=%.4f\n",
					n.Gates[node.ID].Name, node.RareValue, node.Prob)
			}
		}
	}

	if *showScoap {
		m, err := scoap.Compute(n)
		if err != nil {
			cli.Fatal(tool, err)
		}
		var maxCC, maxCO int64
		for i := range n.Gates {
			for _, v := range []int64{m.CC0[i], m.CC1[i]} {
				if v > maxCC && v < scoap.Inf {
					maxCC = v
				}
			}
			if m.CO[i] > maxCO && m.CO[i] < scoap.Inf {
				maxCO = m.CO[i]
			}
		}
		if *jsonMode {
			doc.Scoap = &struct {
				MaxControllability int64 `json:"max_controllability"`
				MaxObservability   int64 `json:"max_observability"`
			}{MaxControllability: maxCC, MaxObservability: maxCO}
		} else {
			fmt.Printf("SCOAP: max finite controllability %d, max finite observability %d\n", maxCC, maxCO)
		}
	}

	if *jsonMode {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			cli.Fatal(tool, err)
		}
	}

	if *toBench != "" {
		if err := cghti.WriteBenchFile(*toBench, n); err != nil {
			cli.Fatal(tool, err)
		}
		fmt.Fprintln(notes, "wrote", *toBench)
	}
	if *toVerilog != "" {
		if err := cghti.WriteVerilogFile(*toVerilog, n); err != nil {
			cli.Fatal(tool, err)
		}
		fmt.Fprintln(notes, "wrote", *toVerilog)
	}
	if *featCSV != "" {
		vecs, err := features.Extract(n, features.Config{Vectors: *vectors, Seed: *seed})
		if err != nil {
			cli.Fatal(tool, err)
		}
		if err := features.WriteCSVFile(*featCSV, vecs); err != nil {
			cli.Fatal(tool, err)
		}
		fmt.Fprintf(notes, "wrote %s (%d nets x 12 features)\n", *featCSV, len(vecs))
	}
}
