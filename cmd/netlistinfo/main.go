// Command netlistinfo inspects gate-level netlists: statistics, logic
// levels, rare-node summaries, SCOAP ranges and format conversion.
//
// Usage:
//
//	netlistinfo -circuit c2670
//	netlistinfo -bench design.bench -rare -scoap
//	netlistinfo -circuit c17 -to-verilog c17.v -to-bench c17.bench
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cghti"
	"cghti/internal/features"
	"cghti/internal/rare"
	"cghti/internal/scoap"
	"cghti/internal/vparse"
)

func main() {
	var (
		circuit   = flag.String("circuit", "", "built-in benchmark circuit name")
		benchIn   = flag.String("bench", "", "path to a .bench netlist (overrides -circuit)")
		showRare  = flag.Bool("rare", false, "extract and summarize rare nodes")
		showScoap = flag.Bool("scoap", false, "compute SCOAP testability ranges")
		theta     = flag.Float64("theta", 0.20, "rareness threshold")
		vectors   = flag.Int("vectors", 10000, "rare-node extraction vectors")
		seed      = flag.Int64("seed", 1, "random seed")
		toBench   = flag.String("to-bench", "", "write the netlist to this .bench file")
		toVerilog = flag.String("to-verilog", "", "write the netlist to this Verilog file")
		featCSV   = flag.String("features", "", "write per-net ML features (MIMIC-style) to this CSV file")
	)
	flag.Parse()

	var (
		n   *cghti.Netlist
		err error
	)
	switch {
	case strings.HasSuffix(*benchIn, ".v"):
		n, err = vparse.ParseFile(*benchIn)
	case *benchIn != "":
		n, err = cghti.ParseBenchFile(*benchIn)
	case *circuit != "":
		n, err = cghti.Circuit(*circuit)
	default:
		err = fmt.Errorf("one of -bench (.bench or .v) or -circuit is required")
	}
	if err != nil {
		fatal(err)
	}
	if err := n.Validate(); err != nil {
		fatal(err)
	}
	fmt.Println(n.ComputeStats())

	if *showRare {
		rs, err := rare.Extract(n, rare.Config{Vectors: *vectors, Threshold: *theta, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("rare nodes at θ=%.0f%% over %d vectors: %d of %d (%.1f%%), RN1=%d RN0=%d\n",
			*theta*100, *vectors, rs.Len(), rs.TotalNodes,
			100*float64(rs.Len())/float64(rs.TotalNodes), len(rs.RN1), len(rs.RN0))
		show := rs.All()
		if len(show) > 10 {
			show = show[:10]
		}
		for _, node := range show {
			fmt.Printf("  %-20s rare value %d, p=%.4f\n",
				n.Gates[node.ID].Name, node.RareValue, node.Prob)
		}
	}

	if *showScoap {
		m, err := scoap.Compute(n)
		if err != nil {
			fatal(err)
		}
		var maxCC, maxCO int64
		for i := range n.Gates {
			for _, v := range []int64{m.CC0[i], m.CC1[i]} {
				if v > maxCC && v < scoap.Inf {
					maxCC = v
				}
			}
			if m.CO[i] > maxCO && m.CO[i] < scoap.Inf {
				maxCO = m.CO[i]
			}
		}
		fmt.Printf("SCOAP: max finite controllability %d, max finite observability %d\n", maxCC, maxCO)
	}

	if *toBench != "" {
		if err := cghti.WriteBenchFile(*toBench, n); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *toBench)
	}
	if *toVerilog != "" {
		if err := cghti.WriteVerilogFile(*toVerilog, n); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *toVerilog)
	}
	if *featCSV != "" {
		vecs, err := features.Extract(n, features.Config{Vectors: *vectors, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		if err := features.WriteCSVFile(*featCSV, vecs); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d nets x 12 features)\n", *featCSV, len(vecs))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netlistinfo:", err)
	os.Exit(1)
}
