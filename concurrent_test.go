package cghti

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"cghti/internal/obs"
)

// benchStrings serializes a result's infected netlists so runs can be
// compared byte-for-byte.
func benchStrings(t *testing.T, res *Result) []string {
	t.Helper()
	out := make([]string, 0, len(res.Benchmarks))
	for _, b := range res.Benchmarks {
		var sb strings.Builder
		if err := WriteBench(&sb, b.Netlist); err != nil {
			t.Fatal(err)
		}
		out = append(out, sb.String())
	}
	return out
}

// TestConcurrentGenerateIsolation runs four GenerateContext jobs at
// once over one shared artifact cache, each with its own per-run
// metrics registry, and checks the two properties the daemon depends
// on: every run's report accounts for exactly its own work (no
// bleed-through from concurrent runs), and concurrent results are
// byte-identical to the same seeds run serially. Run under -race this
// also exercises the scoped-registry and cache write paths for data
// races.
func TestConcurrentGenerateIsolation(t *testing.T) {
	n := robustCircuit(t)
	const runs = 4

	// Serial baseline: each seed on its own cold cache.
	want := make([][]string, runs)
	for i := 0; i < runs; i++ {
		cfg := smallConfig(int64(i + 1))
		cfg.Cache = NewCache(0, 0)
		res, err := GenerateContext(context.Background(), n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = benchStrings(t, res)
	}

	// Concurrent pass: one shared cache, one registry per run.
	shared := NewCache(0, 0)
	regs := make([]*Metrics, runs)
	got := make([][]string, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		regs[i] = NewRunMetrics()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := smallConfig(int64(i + 1))
			cfg.Cache = shared
			cfg.Metrics = regs[i]
			res, err := GenerateContext(context.Background(), n, cfg)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = benchStrings(t, res)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}

	for i := 0; i < runs; i++ {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("run %d emitted %d benchmarks concurrently, %d serially", i, len(got[i]), len(want[i]))
		}
		for k := range got[i] {
			if got[i][k] != want[i][k] {
				t.Fatalf("run %d benchmark %d differs between serial and concurrent execution", i, k)
			}
		}
	}

	// Per-run registries hold exactly their own run's work: one rare
	// extraction each, exactly Instances insertions each — not 4x.
	for i, reg := range regs {
		snap := reg.Snapshot()
		if v := snap.Counters["rare.extractions"]; v != 1 {
			t.Fatalf("run %d rare.extractions = %d, want 1 (concurrent bleed?)", i, v)
		}
		instances := int64(smallConfig(0).Instances)
		if v := snap.Counters["trojan.instances_inserted"]; v != instances {
			t.Fatalf("run %d trojan.instances_inserted = %d, want %d", i, v, instances)
		}
		if v := snap.Counters["rare.vectors_simulated"]; v <= 0 {
			t.Fatalf("run %d rare.vectors_simulated = %d, want > 0", i, v)
		}
		// Latency histograms are isolated the same way: each run's
		// registry holds exactly one timing per seed-dependent stage
		// (stages cache-shared across runs would surface as
		// cache_hit_time instead), not the fleet's combined 4.
		for _, h := range []string{"pipeline.stage_time.rare_extract", "pipeline.stage_time.insert"} {
			hs, ok := snap.Histograms[h]
			if !ok {
				t.Fatalf("run %d registry has no %s histogram", i, h)
			}
			if hs.Count != 1 {
				t.Fatalf("run %d %s count = %d, want 1 (concurrent bleed?)", i, h, hs.Count)
			}
		}
	}
}

// TestConcurrentSharedCacheReuse pins the warm-cache path under
// concurrency: identical jobs racing on one cache must all succeed and
// later runs see cached stages, with per-run registries still isolated.
func TestConcurrentSharedCacheReuse(t *testing.T) {
	n := robustCircuit(t)
	shared := NewCache(0, 0)

	// Warm the cache with one serial run.
	cfg := smallConfig(7)
	cfg.Cache = shared
	warm, err := GenerateContext(context.Background(), n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := benchStrings(t, warm)

	const runs = 4
	var wg sync.WaitGroup
	errs := make([]error, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := smallConfig(7)
			cfg.Cache = shared
			cfg.Metrics = NewRunMetrics()
			res, err := GenerateContext(context.Background(), n, cfg)
			if err != nil {
				errs[i] = err
				return
			}
			if len(res.CachedStages) == 0 {
				errs[i] = fmt.Errorf("run %d: no stages served from the warm cache", i)
				return
			}
			bs := benchStrings(t, res)
			for k := range bs {
				if bs[k] != base[k] {
					errs[i] = fmt.Errorf("run %d: benchmark %d differs from the warm run", i, k)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunMetricsMirrorIntoDefault pins the dual-write: a per-run
// registry's increments also land in the process default registry, so
// daemon-style whole-process totals stay complete.
func TestRunMetricsMirrorIntoDefault(t *testing.T) {
	n := robustCircuit(t)
	snap0 := obs.Default().Snapshot()

	cfg := smallConfig(11)
	cfg.Metrics = NewRunMetrics()
	if _, err := GenerateContext(context.Background(), n, cfg); err != nil {
		t.Fatal(err)
	}

	run := cfg.Metrics.Snapshot()
	delta := obs.Default().Snapshot().Delta(snap0)
	for _, name := range []string{"rare.extractions", "trojan.instances_inserted", "rare.vectors_simulated"} {
		if run.Counters[name] <= 0 {
			t.Fatalf("per-run counter %s did not move", name)
		}
		if delta.Counters[name] < run.Counters[name] {
			t.Fatalf("default registry %s = %d, want >= per-run %d (mirror broken)",
				name, delta.Counters[name], run.Counters[name])
		}
	}
	// Histograms follow the same dual-write rule as counters.
	const stageHist = "pipeline.stage_time.rare_extract"
	rh, ok := run.Histograms[stageHist]
	if !ok || rh.Count != 1 {
		t.Fatalf("per-run histogram %s = %+v, want one observation", stageHist, rh)
	}
	dh := delta.Histograms[stageHist]
	if dh.Count < rh.Count {
		t.Fatalf("default registry %s count = %d, want >= per-run %d (histogram mirror broken)",
			stageHist, dh.Count, rh.Count)
	}
}
