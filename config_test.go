package cghti

import (
	"strings"
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string // "" = must be valid
	}{
		{"zero config", Config{}, ""},
		{"sensible config", smallConfig(1), ""},
		{"negative vectors", Config{RareVectors: -1}, "RareVectors"},
		{"negative threshold", Config{RareThreshold: -0.1}, "RareThreshold"},
		{"threshold one", Config{RareThreshold: 1.0}, "RareThreshold"},
		{"threshold above one", Config{RareThreshold: 1.5}, "RareThreshold"},
		{"trigger nodes one", Config{MinTriggerNodes: 1}, "MinTriggerNodes"},
		{"negative trigger nodes", Config{MinTriggerNodes: -3}, "MinTriggerNodes"},
		{"negative instances", Config{Instances: -1}, "Instances"},
		{"fanin one", Config{FaninK: 1}, "FaninK"},
		{"negative fanin", Config{FaninK: -2}, "FaninK"},
		{"negative backtracks", Config{MaxBacktracks: -1}, "MaxBacktracks"},
		{"negative rare cap", Config{MaxRareNodes: -5}, "MaxRareNodes"},
		{"negative clique attempts", Config{CliqueAttempts: -1}, "CliqueAttempts"},
		{"negative workers", Config{Workers: -1}, "Workers"},
		{"negative partitions", Config{Partitions: -1}, "Partitions"},
		{"negative deadline", Config{Deadline: -time.Second}, "Deadline"},
		{"negative stage budget", Config{StageBudgets: map[string]time.Duration{StageCubeGen: -time.Millisecond}}, "StageBudgets"},
		{"zero stage budget ok", Config{StageBudgets: map[string]time.Duration{StageCubeGen: 0}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted a bad %s", tc.field)
			}
			if !strings.Contains(err.Error(), "Config."+tc.field) {
				t.Fatalf("error %q does not name Config.%s", err, tc.field)
			}
		})
	}
}

func TestGenerateRejectsInvalidConfig(t *testing.T) {
	n := robustCircuit(t)
	_, err := Generate(n, Config{RareThreshold: 2})
	if err == nil {
		t.Fatal("Generate accepted RareThreshold=2")
	}
	if !strings.Contains(err.Error(), "Config.RareThreshold") {
		t.Fatalf("error %q does not name the bad field", err)
	}
}
