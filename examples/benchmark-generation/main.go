// Benchmark-generation is the paper's motivating use case: produce a
// large suite of unique HT-infected netlists for evaluating trojan
// detection tools. It generates many instances per circuit across
// several circuits, verifies every activation cube, and writes the
// suite plus a manifest to a directory.
//
// Run with:
//
//	go run ./examples/benchmark-generation [outdir]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cghti"
)

func main() {
	outDir := "/tmp/ht_suite"
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	manifest, err := os.Create(filepath.Join(outDir, "MANIFEST.tsv"))
	if err != nil {
		log.Fatal(err)
	}
	defer manifest.Close()
	fmt.Fprintln(manifest, "circuit\tinstance\tfile\ttrigger_nodes\ttrigger_out\tvictim\test_activation_prob")

	circuits := []string{"c432", "c880", "s298", "s344"}
	perCircuit := 8
	total := 0

	for _, name := range circuits {
		base, err := cghti.Circuit(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cghti.Generate(base, cghti.Config{
			RareVectors:     5000,
			MinTriggerNodes: 6,
			Instances:       perCircuit,
			Seed:            11,
		})
		if err != nil {
			log.Printf("%s: %v (skipped)", name, err)
			continue
		}
		// The compatibility graph guarantees each instance triggers; the
		// explicit re-proof documents that no simulation-based validation
		// pass was needed.
		if err := res.Verify(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		for _, b := range res.Benchmarks {
			file := b.Netlist.Name + ".bench"
			if err := cghti.WriteBenchFile(filepath.Join(outDir, file), b.Netlist); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(manifest, "%s\t%d\t%s\t%d\t%s\t%s\t%.3g\n",
				name, b.Instance.Index, file, len(b.Clique.Vertices),
				b.Instance.TriggerOut, b.Instance.Victim,
				b.Instance.Trigger.ActivationProb)
			total++
		}
		min, max, _ := res.TriggerRange()
		fmt.Printf("%-6s %2d instances, trigger nodes %d-%d, insertion time %v\n",
			name, len(res.Benchmarks), min, max, res.Times.Total)
	}
	fmt.Printf("\nsuite of %d HT-infected netlists written to %s\n", total, outDir)
}
