// Detection-evaluation pits the three logic-testing detection schemes
// (Random, MERO, ND-ATPG) against trojans from two insertion
// frameworks — the small-q Trust-Hub-style comparator and the large-q
// compatibility-graph trojan — on the same circuit, reproducing the
// Table II story at example scale: small-q trojans get caught, the
// proposed ones do not.
//
// Run with:
//
//	go run ./examples/detection-evaluation
package main

import (
	"fmt"
	"log"

	"cghti"
	"cghti/internal/baselines"
	"cghti/internal/detect"
	"cghti/internal/rare"
)

func main() {
	base, err := cghti.Circuit("c880")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("circuit:", base.ComputeStats())

	rs, err := rare.Extract(base, rare.Config{Vectors: 5000, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rare nodes at θ=20%%: %d\n\n", rs.Len())

	// Framework A: Trust-Hub-style comparator, q=4 moderately rare nodes.
	th, err := baselines.TrustHubLike(base, rs, baselines.TrustHubConfig{Q: 4, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	thTarget := detect.Target{
		Golden:     base,
		Infected:   th.Infected,
		TriggerOut: th.Infected.MustLookup(th.TriggerOut),
		Activation: 1,
	}
	fmt.Printf("Trust-Hub-style trojan: q=%d, validated in %d vectors\n",
		len(th.TriggerNodes), th.Stats.VectorsSimulated)

	// Framework B: compatibility-graph trojan with a large clique.
	res, err := cghti.Generate(base, cghti.Config{
		RareVectors:     5000,
		MinTriggerNodes: 10,
		Instances:       1,
		Seed:            5,
	})
	if err != nil {
		log.Fatal(err)
	}
	cg := res.Benchmarks[0]
	cgTarget := cg.Target(base)
	fmt.Printf("compatibility-graph trojan: q=%d, no validation needed (cube proven)\n\n",
		len(cg.Clique.Vertices))

	// Build the three detection test sets once.
	randomTS := detect.RandomTestSet(base, 50000, 7)
	meroTS, err := detect.MERO(base, rs, detect.MEROConfig{N: 20, RandomVectors: 2000, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	ndTS, err := detect.NDATPG(base, rs, detect.NDATPGConfig{N: 3, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %-10s %-28s %-28s\n", "", "vectors", "Trust-Hub-style (q=4)", "compatibility graph (q="+itoa(len(cg.Clique.Vertices))+")")
	for _, row := range []struct {
		name string
		ts   *detect.TestSet
	}{
		{"random patterns", randomTS},
		{"MERO (N=20)", meroTS},
		{"ND-ATPG (N=3)", ndTS},
	} {
		a, err := detect.Evaluate(thTarget, row.ts)
		if err != nil {
			log.Fatal(err)
		}
		b, err := detect.Evaluate(cgTarget, row.ts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %-10d %-28s %-28s\n",
			row.name, row.ts.Len(), verdict(a), verdict(b))
	}
	fmt.Println("\nsmall-q comparator trojans are co-activated by rare-node-aware test")
	fmt.Println("generation; the large-q compatibility-graph trojan evades all three.")
}

func verdict(o detect.Outcome) string {
	switch {
	case o.Detected:
		return fmt.Sprintf("DETECTED (vector %d)", o.FirstDetect)
	case o.Triggered:
		return fmt.Sprintf("triggered only (vector %d)", o.FirstTrigger)
	}
	return "evaded"
}

func itoa(i int) string { return fmt.Sprintf("%d", i) }
