// Quickstart: insert one stealthy Hardware Trojan into a small circuit
// and show the whole paper pipeline end to end — rare nodes,
// compatibility graph, clique, trigger logic, payload — plus the
// validation-free activation proof.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cghti"
	"cghti/internal/netlist"
	"cghti/internal/sim"
)

func main() {
	// c432-class circuit: 36 PIs, 160 gates.
	base, err := cghti.Circuit("c432")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("base circuit:", base.ComputeStats())

	// One call runs Algorithm 1 (rare nodes), Algorithm 2 (PODEM cubes +
	// compatibility graph + cliques) and Algorithm 3 (trigger synthesis
	// + insertion).
	res, err := cghti.Generate(base, cghti.Config{
		RareVectors:     5000, // |V|
		RareThreshold:   0.20, // θ_RN
		MinTriggerNodes: 8,    // q
		Instances:       1,    // N
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}

	b := res.Benchmarks[0]
	fmt.Printf("rare nodes: %d (RN1=%d, RN0=%d)\n",
		res.RareSet.Len(), len(res.RareSet.RN1), len(res.RareSet.RN0))
	fmt.Printf("compatibility graph: %d vertices, %d edges\n",
		res.Graph.NumVertices(), res.Graph.NumEdges())
	fmt.Printf("chosen clique: %d trigger nodes, merged cube %d care bits\n",
		len(b.Clique.Vertices), b.Clique.Cube.CareCount())
	fmt.Printf("trigger logic: %d gates, depth %d, fires %s=1\n",
		b.Instance.Trigger.NumGates(), b.Instance.Trigger.Depth(), b.Instance.TriggerOut)
	fmt.Printf("payload: %s gate %s on victim net %s\n",
		b.Instance.Payload, b.Instance.PayloadGate, b.Instance.Victim)
	fmt.Printf("estimated activation probability: %.3g\n",
		b.Instance.Trigger.ActivationProb)

	// The validation-free guarantee: the clique's merged cube provably
	// drives every trigger node to its rare value (three-valued
	// simulation, no search).
	if err := res.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("activation cube re-proven by three-valued simulation ✓")

	// Demonstrate it concretely: fill the cube's don't-cares and watch
	// the trojan flip the victim's downstream logic.
	rng := rand.New(rand.NewSource(1))
	filled := b.Clique.Cube.Fill(rng)
	in := map[netlist.GateID]uint8{}
	for i, id := range res.Graph.InputIDs {
		if filled[i] {
			in[id] = 1
		} else {
			in[id] = 0
		}
	}
	goldenVals, err := sim.Eval(base, in)
	if err != nil {
		log.Fatal(err)
	}
	infectedVals, err := sim.Eval(b.Netlist, in)
	if err != nil {
		log.Fatal(err)
	}
	diffs := 0
	goldenOuts := base.CombOutputs()
	infectedOuts := b.Netlist.CombOutputs()
	for i := range goldenOuts {
		if goldenVals[goldenOuts[i]] != infectedVals[infectedOuts[i]] {
			diffs++
		}
	}
	fmt.Printf("under the activation vector: trigger=%d, victim %s inverted, %d output(s) corrupted\n",
		infectedVals[b.Netlist.MustLookup(b.Instance.TriggerOut)], b.Instance.Victim, diffs)
	if diffs == 0 {
		fmt.Println("(the flip was logically masked on this particular don't-care fill —")
		fmt.Println(" exactly the stealthy behavior that makes logic-testing detection hard)")
	}

	// Write the infected design for downstream tools.
	if err := cghti.WriteBenchFile("/tmp/quickstart_ht.bench", b.Netlist); err != nil {
		log.Fatal(err)
	}
	fmt.Println("infected netlist written to /tmp/quickstart_ht.bench")
}
