// Timebomb demonstrates the sequential counter payload: a trojan whose
// trigger condition must hold for 2^k - 1 consecutive clock cycles
// before any output is corrupted. It inserts one compatibility-graph
// trojan into a sequential circuit, converts it to a time bomb, and then
// clock-by-clock shows the counter arming and the payload firing.
//
// Run with:
//
//	go run ./examples/timebomb
package main

import (
	"fmt"
	"log"

	"cghti"
	"cghti/internal/sim"
	"cghti/internal/trojan"
)

func main() {
	base, err := cghti.Circuit("s1423")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("base circuit:", base.ComputeStats())

	res, err := cghti.Generate(base, cghti.Config{
		RareVectors:     4000,
		MinTriggerNodes: 10,
		Instances:       1,
		Seed:            21,
	})
	if err != nil {
		log.Fatal(err)
	}
	b := res.Benchmarks[0]
	fmt.Printf("trojan: q=%d trigger nodes, trigger net %s\n",
		len(b.Clique.Vertices), b.Instance.TriggerOut)

	const counterBits = 3
	tb, err := trojan.InsertTimeBomb(b.Netlist, b.Instance, trojan.TimeBombSpec{CounterBits: counterBits})
	if err != nil {
		log.Fatal(err)
	}
	if err := b.Netlist.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("time bomb: %d-bit counter %v, armed net %s\n\n",
		tb.CounterBits, tb.StateGates, tb.Armed)

	// Hold the activation condition and watch the counter count.
	p, err := sim.NewPacked(b.Netlist, 1)
	if err != nil {
		log.Fatal(err)
	}
	cube := b.Clique.Cube
	for i, id := range b.Netlist.CombInputs() {
		if i < cube.Len() && cube.Get(i) == sim.V3One {
			p.SetWord(id, 0, ^uint64(0))
		} else {
			p.SetWord(id, 0, 0)
		}
	}
	trig := b.Netlist.MustLookup(b.Instance.TriggerOut)
	armed := b.Netlist.MustLookup(tb.Armed)
	payload := b.Netlist.MustLookup(b.Instance.PayloadGate)
	victim := b.Netlist.MustLookup(b.Instance.Victim)

	// Holding the trigger across cycles means holding the cube's state
	// bits too (the DFF pseudo-inputs are part of the activation
	// condition); re-force them before every evaluation, exactly like a
	// scan-hold attack. The time-bomb counter DFFs sit beyond the
	// original input list and are left to run free.
	holdCube := func() {
		for i, id := range b.Netlist.CombInputs() {
			if i < cube.Len() && cube.Get(i) != sim.V3X {
				if cube.Get(i) == sim.V3One {
					p.SetWord(id, 0, ^uint64(0))
				} else {
					p.SetWord(id, 0, 0)
				}
			}
		}
	}

	fmt.Println("cycle  trigger  counter  armed  payload==victim")
	for cycle := 0; cycle < (1<<counterBits)+2; cycle++ {
		holdCube()
		p.Run()
		counter := 0
		for bit := len(tb.StateGates) - 1; bit >= 0; bit-- {
			counter <<= 1
			if p.Word(b.Netlist.MustLookup(tb.StateGates[bit]), 0) != 0 {
				counter |= 1
			}
		}
		passthrough := p.Word(payload, 0) == p.Word(victim, 0)
		fmt.Printf("%5d  %7d  %7d  %5d  %v\n",
			cycle, bit01(p.Word(trig, 0)), counter, bit01(p.Word(armed, 0)), passthrough)
		p.Step()
	}
	fmt.Println("\nwhile the counter is below saturation the payload passes the victim")
	fmt.Println("through unchanged; a single-vector tester can hit the trigger condition")
	fmt.Println("and still observe a perfectly healthy circuit.")
}

func bit01(w uint64) int {
	if w != 0 {
		return 1
	}
	return 0
}
