// Triggerlogic reproduces the paper's Figure 1: backward, bias-driven
// construction of a trojan trigger tree. It builds a trigger over eight
// rare nodes (mixed rare values) with 2-input gates and prints each
// level, showing the AND/NOR vs NAND/OR alternation and the rare-value
// alignment of the leaf wiring.
//
// Run with:
//
//	go run ./examples/triggerlogic
package main

import (
	"fmt"
	"log"

	"cghti/internal/netlist"
	"cghti/internal/rare"
	"cghti/internal/trojan"
)

func main() {
	// Eight rare nodes, as in Figure 1: four rare at 1, four rare at 0.
	var nodes []rare.Node
	for i := 0; i < 4; i++ {
		nodes = append(nodes, rare.Node{ID: netlist.GateID(i), RareValue: 1, Prob: 0.06})
	}
	for i := 4; i < 8; i++ {
		nodes = append(nodes, rare.Node{ID: netlist.GateID(i), RareValue: 0, Prob: 0.08})
	}

	trig, err := trojan.BuildTrigger(nodes, trojan.TriggerSpec{FaninK: 2, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := trig.Verify(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trigger over %d rare nodes: %d gates, %d levels, activation value 1\n\n",
		len(nodes), trig.NumGates(), trig.Depth())

	for level := 1; level <= trig.Depth(); level++ {
		fmt.Printf("level %d:\n", level)
		for i := range trig.Gates {
			g := &trig.Gates[i]
			if g.Level != level {
				continue
			}
			fmt.Printf("  gate %-2d %-4v fires with %d", i, g.Type, g.Fires)
			if len(g.LeafInputs) > 0 {
				fmt.Print("  inputs: ")
				for _, leaf := range g.LeafInputs {
					fmt.Printf("rare%d(node %d, p=%.2f) ", leaf.RareValue, leaf.ID, leaf.Prob)
				}
			} else {
				fmt.Printf("  inputs: gates %v", g.ChildGates)
			}
			fmt.Println()
		}
	}

	fmt.Println("\ninvariants shown above:")
	fmt.Println("  - every gate is AND/NOR when it must output 1 rarely, NAND/OR for 0;")
	fmt.Println("  - AND/NAND leaves consume rare-1 nodes, OR/NOR leaves rare-0 nodes;")
	fmt.Printf("  - estimated activation probability: %.3g\n", trig.ActivationProb)
}
