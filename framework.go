package cghti

import (
	"fmt"
	"time"

	"cghti/internal/area"
	"cghti/internal/atpg"
	"cghti/internal/compat"
	"cghti/internal/detect"
	"cghti/internal/equiv"
	"cghti/internal/netlist"
	"cghti/internal/obs"
	"cghti/internal/rare"
	"cghti/internal/sim"
	"cghti/internal/trojan"
)

// Stage names of the Generate pipeline, as they appear in the trace
// (children of the StageGenerate root span) and in progress events.
const (
	StageGenerate    = "generate" // root span wrapping the whole pipeline
	StageLevelize    = "levelize"
	StageRareExtract = "rare_extract"
	StageCubeGen     = "cube_gen"
	StageGraphEdges  = "graph_edges"
	StageCliqueMine  = "clique_mine"
	StageInsert      = "insert"
)

// PipelineStages lists the six pipeline-stage span names in execution
// order (the Section IV-C time decomposition).
var PipelineStages = []string{
	StageLevelize, StageRareExtract, StageCubeGen,
	StageGraphEdges, StageCliqueMine, StageInsert,
}

// Config holds the user-defined properties of the paper's framework: the
// rare-node hyperparameters (θ_RN, |V|), the trigger-node count q, the
// instance count N, and the trojan shape.
type Config struct {
	// RareVectors is |V|, the random simulation budget of Algorithm 1
	// (default 10,000, the paper's Figure 3 choice).
	RareVectors int
	// RareThreshold is θ_RN as a fraction (default 0.20, the paper's
	// Figure 2 choice).
	RareThreshold float64
	// MinTriggerNodes is q: every instance's clique has at least this
	// many rare nodes (default 2).
	MinTriggerNodes int
	// Instances is N, the number of HT-infected netlists to emit
	// (default 1).
	Instances int
	// FaninK bounds trigger-tree gate arity (default 4).
	FaninK int
	// ActiveLow builds triggers that fire at 0 instead of 1.
	ActiveLow bool
	// Payload selects the trojan effect (default: flip a victim net).
	Payload trojan.PayloadKind
	// MaxBacktracks is the PODEM budget per rare node (default 4000).
	MaxBacktracks int
	// MaxRareNodes caps how many rare nodes get PODEM cubes (rarest
	// first; 0 = all). Bounds ATPG time on very large circuits.
	MaxRareNodes int
	// CliqueAttempts bounds the greedy clique-mining restarts (0 =
	// 40 × Instances).
	CliqueAttempts int
	// Seed makes the whole pipeline deterministic.
	Seed int64
	// Workers is the goroutine budget for the parallel stages (rare-node
	// simulation, PODEM cube generation, pairwise edges). 1 = serial,
	// 0 = GOMAXPROCS. The pipeline output is identical for any value.
	Workers int
	// Progress, if non-nil, receives stage-transition and
	// percent-complete events while Generate runs, so long runs on
	// large circuits are not silent. The default is no reporting; the
	// sink may be called from the goroutine running Generate only.
	Progress obs.Sink
	// Trace, if non-nil, receives the pipeline's spans; otherwise
	// Generate creates a fresh trace. Either way the trace is exposed
	// as Result.Trace.
	Trace *obs.Trace
}

func (c Config) withDefaults() Config {
	if c.RareVectors <= 0 {
		c.RareVectors = rare.DefaultVectors
	}
	if c.RareThreshold <= 0 {
		c.RareThreshold = rare.DefaultThreshold
	}
	if c.MinTriggerNodes <= 0 {
		c.MinTriggerNodes = 2
	}
	if c.Instances <= 0 {
		c.Instances = 1
	}
	return c
}

// StageTimes breaks the insertion pipeline down by stage — the
// time-complexity decomposition of the paper's Section IV-C. It is a
// compatibility view derived from the span trace (Result.Trace), which
// is the authoritative record.
type StageTimes struct {
	Levelize    time.Duration // netlist levelization
	RareExtract time.Duration // Algorithm 1
	CubeGen     time.Duration // PODEM cube per rare node
	GraphEdges  time.Duration // pairwise compatibility
	CliqueMine  time.Duration // complete-subgraph mining
	Insert      time.Duration // trigger generation + splicing, all instances
	Total       time.Duration
}

// Benchmark is one emitted HT-infected netlist.
type Benchmark struct {
	// Netlist is the infected circuit (name: <base>_ht<i>).
	Netlist *Netlist
	// Instance records the trojan's structure.
	Instance *trojan.Instance
	// Clique is the trigger-node set the instance was built on.
	Clique compat.Clique
}

// ProveDormant formally verifies the stealth property of this instance:
// with the trigger net constrained to its idle value, the infected
// netlist is proven equivalent to the golden one by the miter-based
// equivalence checker (not sampled — a theorem). It returns an error if
// the proof fails or exceeds its search budget.
func (b *Benchmark) ProveDormant(golden *Netlist) error {
	idle := b.Instance.Trigger.Spec.ActivationValue() ^ 1
	res, err := equiv.Check(golden, b.Netlist, equiv.Options{
		Constraints: map[string]uint8{b.Instance.TriggerOut: idle},
	})
	if err != nil {
		return err
	}
	switch res.Verdict {
	case equiv.Equivalent:
		return nil
	case equiv.Different:
		return fmt.Errorf("cghti: instance %d NOT dormant-equivalent: output %s differs",
			b.Instance.Index, res.DiffOutput)
	default:
		return fmt.Errorf("cghti: instance %d dormant proof aborted", b.Instance.Index)
	}
}

// Target converts the benchmark into a detection-evaluation target
// against its golden netlist.
func (b *Benchmark) Target(golden *Netlist) detect.Target {
	return detect.Target{
		Golden:     golden,
		Infected:   b.Netlist,
		TriggerOut: b.Netlist.MustLookup(b.Instance.TriggerOut),
		Activation: b.Instance.Trigger.Spec.ActivationValue(),
	}
}

// Result is the output of Generate.
type Result struct {
	// Base is the (levelized) input netlist.
	Base *Netlist
	// RareSet is the Algorithm 1 output.
	RareSet *rare.Set
	// Graph is the compatibility graph.
	Graph *compat.Graph
	// Cliques are the mined complete subgraphs (may exceed Instances;
	// instances use the first Instances of them).
	Cliques []compat.Clique
	// Benchmarks are the HT-infected netlists.
	Benchmarks []Benchmark
	// Times is the per-stage timing breakdown (derived from Trace).
	Times StageTimes
	// Trace is the pipeline's span trace: a StageGenerate root span
	// with one child per pipeline stage.
	Trace *obs.Trace
}

// stageRunner emits progress events and records spans for one
// Generate call.
type stageRunner struct {
	sink obs.Sink
	root *obs.Span
}

func (sr *stageRunner) start(name string) *obs.Span {
	obs.Emit(sr.sink, obs.Event{Stage: name, Kind: obs.StageStart})
	return sr.root.Start(name)
}

func (sr *stageRunner) end(s *obs.Span) {
	s.End()
	obs.Emit(sr.sink, obs.Event{Stage: s.Name(), Kind: obs.StageEnd, Elapsed: s.Duration()})
}

// progress adapts an internal done/total callback to StageProgress
// events, throttled to whole-percent changes so hot loops stay cheap.
func (sr *stageRunner) progress(stage string, started time.Time) func(done, total int) {
	if sr.sink == nil {
		return nil
	}
	lastPct := -1
	return func(done, total int) {
		pct := 100
		if total > 0 {
			pct = 100 * done / total
		}
		if pct == lastPct {
			return
		}
		lastPct = pct
		obs.Emit(sr.sink, obs.Event{
			Stage: stage, Kind: obs.StageProgress,
			Done: done, Total: total, Elapsed: time.Since(started),
		})
	}
}

// Generate runs the full insertion pipeline on n.
func Generate(n *Netlist, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	trace := cfg.Trace
	if trace == nil {
		trace = obs.NewTrace()
	}
	res := &Result{Base: n, Trace: trace}
	sr := &stageRunner{sink: cfg.Progress, root: trace.Start(StageGenerate)}
	defer sr.root.End()

	sp := sr.start(StageLevelize)
	if err := n.Levelize(); err != nil {
		return nil, err
	}
	sr.end(sp)

	sp = sr.start(StageRareExtract)
	rs, err := rare.Extract(n, rare.Config{
		Vectors:   cfg.RareVectors,
		Threshold: cfg.RareThreshold,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
		Progress:  sr.progress(StageRareExtract, sp.StartTime()),
	})
	if err != nil {
		return nil, err
	}
	sr.end(sp)
	res.RareSet = rs
	if rs.Len() == 0 {
		return nil, fmt.Errorf("cghti: no rare nodes at θ=%v over %d vectors",
			cfg.RareThreshold, cfg.RareVectors)
	}

	// compat.Build covers two pipeline stages (PODEM cube generation,
	// then pairwise edges); it reports their durations, which become
	// retro-recorded spans splitting the Build window.
	buildStart := time.Now()
	obs.Emit(cfg.Progress, obs.Event{Stage: StageCubeGen, Kind: obs.StageStart})
	g, err := compat.Build(n, rs, compat.BuildConfig{
		MaxBacktracks: cfg.MaxBacktracks,
		MaxNodes:      cfg.MaxRareNodes,
		Workers:       cfg.Workers,
		Progress:      sr.progress(StageCubeGen, buildStart),
	})
	if err != nil {
		return nil, err
	}
	res.Graph = g
	cubeEnd := buildStart.Add(g.CubeTime)
	sr.root.Add(StageCubeGen, buildStart, cubeEnd)
	obs.Emit(cfg.Progress, obs.Event{Stage: StageCubeGen, Kind: obs.StageEnd, Elapsed: g.CubeTime})
	obs.Emit(cfg.Progress, obs.Event{Stage: StageGraphEdges, Kind: obs.StageStart})
	sr.root.Add(StageGraphEdges, cubeEnd, cubeEnd.Add(g.EdgeTime))
	obs.Emit(cfg.Progress, obs.Event{Stage: StageGraphEdges, Kind: obs.StageEnd, Elapsed: g.EdgeTime})

	sp = sr.start(StageCliqueMine)
	// Mine a pool larger than needed, then keep the stealthiest cliques
	// (lowest estimated activation probability, largest first on ties).
	cliques := g.FindCliques(compat.MineConfig{
		MinSize:    cfg.MinTriggerNodes,
		MaxCliques: 4 * cfg.Instances,
		Attempts:   cfg.CliqueAttempts,
		Seed:       cfg.Seed,
	})
	g.SortByStealth(cliques)
	sr.end(sp)
	res.Cliques = cliques
	if len(cliques) == 0 {
		return nil, fmt.Errorf("cghti: no clique with >= %d compatible rare nodes (graph: %d vertices, %d edges)",
			cfg.MinTriggerNodes, g.NumVertices(), g.NumEdges())
	}

	sp = sr.start(StageInsert)
	instProgress := sr.progress(StageInsert, sp.StartTime())
	total := cfg.Instances
	if total > len(cliques) {
		total = len(cliques)
	}
	for i := 0; i < cfg.Instances && i < len(cliques); i++ {
		c := cliques[i]
		infected, inst, err := trojan.InsertInstance(n, c.Nodes(g), c.Cube, i, trojan.InsertSpec{
			Trigger: trojan.TriggerSpec{ActiveLow: cfg.ActiveLow, FaninK: cfg.FaninK},
			Payload: cfg.Payload,
			Seed:    cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("cghti: instance %d: %w", i, err)
		}
		res.Benchmarks = append(res.Benchmarks, Benchmark{
			Netlist:  infected,
			Instance: inst,
			Clique:   c,
		})
		if instProgress != nil {
			instProgress(i+1, total)
		}
	}
	sr.end(sp)
	sr.root.End()
	res.Times = stageTimes(trace)
	return res, nil
}

// stageTimes derives the StageTimes compatibility view from a
// pipeline trace.
func stageTimes(tr *obs.Trace) StageTimes {
	dur := func(name string) time.Duration {
		if s := tr.Find(name); s != nil {
			return s.Duration()
		}
		return 0
	}
	return StageTimes{
		Levelize:    dur(StageLevelize),
		RareExtract: dur(StageRareExtract),
		CubeGen:     dur(StageCubeGen),
		GraphEdges:  dur(StageGraphEdges),
		CliqueMine:  dur(StageCliqueMine),
		Insert:      dur(StageInsert),
		Total:       dur(StageGenerate),
	}
}

// TriggerRange reports the smallest and largest trigger-node counts over
// the emitted instances — the "trigger nodes" column of the paper's
// Table III. ok is false (and min, max are 0) when no benchmarks were
// emitted, so zeros cannot be mistaken for real trigger counts.
func (r *Result) TriggerRange() (min, max int, ok bool) {
	for i, b := range r.Benchmarks {
		q := len(b.Clique.Vertices)
		if i == 0 || q < min {
			min = q
		}
		if q > max {
			max = q
		}
	}
	return min, max, len(r.Benchmarks) > 0
}

// AreaOverhead computes the worst-case trojan area overhead percentage
// across the emitted instances under the NanGate-45-like cell model
// (Table V).
func (r *Result) AreaOverhead() (float64, error) {
	lib := area.NanGate45()
	worst := 0.0
	for _, b := range r.Benchmarks {
		o, err := lib.Overhead(r.Base, b.Netlist)
		if err != nil {
			return 0, err
		}
		if o > worst {
			worst = o
		}
	}
	return worst, nil
}

// Verify re-proves every emitted instance with three-valued simulation:
// the merged cube must drive each trigger node to its rare value. This
// is the validation the compatibility graph makes unnecessary — exposed
// so users (and tests) can confirm the guarantee.
func (r *Result) Verify() error {
	for _, b := range r.Benchmarks {
		if err := verifyBenchmark(r.Base, r.Graph, b); err != nil {
			return err
		}
	}
	return nil
}

func verifyBenchmark(base *Netlist, g *compat.Graph, b Benchmark) error {
	in := make(map[netlist.GateID]sim.V3, len(g.InputIDs))
	for pos, id := range g.InputIDs {
		if v := b.Clique.Cube.Get(pos); v != sim.V3X {
			in[id] = v
		}
	}
	vals, err := sim.Eval3(base, in)
	if err != nil {
		return err
	}
	for _, node := range b.Clique.Nodes(g) {
		if vals[node.ID] != sim.V3(node.RareValue) {
			return fmt.Errorf("cghti: instance %d: cube does not prove %s=%d",
				b.Instance.Index, base.Gates[node.ID].Name, node.RareValue)
		}
	}
	return nil
}

// Cube is a partial input assignment (re-exported from internal/atpg).
type Cube = atpg.Cube
