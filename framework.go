package cghti

import (
	"context"
	"fmt"
	"time"

	"cghti/internal/area"
	"cghti/internal/atpg"
	"cghti/internal/chaos"
	"cghti/internal/compat"
	"cghti/internal/detect"
	"cghti/internal/equiv"
	"cghti/internal/netlist"
	"cghti/internal/obs"
	"cghti/internal/rare"
	"cghti/internal/sim"
	"cghti/internal/stage"
	"cghti/internal/trojan"
)

// Stage names of the Generate pipeline, as they appear in the trace
// (children of the StageGenerate root span), in progress events, in
// Config.StageBudgets keys, and in StageError.Stage. Re-exported from
// internal/stage, the canonical home shared with the instrumented
// worker loops.
const (
	StageGenerate    = stage.Generate // root span wrapping the whole pipeline
	StageLevelize    = stage.Levelize
	StageRareExtract = stage.RareExtract
	StageCubeGen     = stage.CubeGen
	StageGraphEdges  = stage.GraphEdges
	StageCliqueMine  = stage.CliqueMine
	StageInsert      = stage.Insert
)

// StageError is the structured failure record GenerateContext (and the
// stage-instrumented worker pools below it) return: the stage name, the
// worker index when attributable, the cause (context.Canceled,
// context.DeadlineExceeded, or a panic-derived error), and — for
// pipeline-level failures — the partial span trace up to the failure.
// Unwrap exposes the cause, so errors.Is(err, context.Canceled) works
// through it.
type StageError = obs.StageError

// AsStageError unwraps err to a *StageError if one is in the chain.
func AsStageError(err error) (*StageError, bool) { return obs.AsStageError(err) }

// PipelineStages lists the six pipeline-stage span names in execution
// order (the Section IV-C time decomposition).
var PipelineStages = []string{
	StageLevelize, StageRareExtract, StageCubeGen,
	StageGraphEdges, StageCliqueMine, StageInsert,
}

// Config holds the user-defined properties of the paper's framework: the
// rare-node hyperparameters (θ_RN, |V|), the trigger-node count q, the
// instance count N, and the trojan shape.
type Config struct {
	// RareVectors is |V|, the random simulation budget of Algorithm 1
	// (default 10,000, the paper's Figure 3 choice).
	RareVectors int
	// RareThreshold is θ_RN as a fraction (default 0.20, the paper's
	// Figure 2 choice).
	RareThreshold float64
	// MinTriggerNodes is q: every instance's clique has at least this
	// many rare nodes (default 2).
	MinTriggerNodes int
	// Instances is N, the number of HT-infected netlists to emit
	// (default 1).
	Instances int
	// FaninK bounds trigger-tree gate arity (default 4).
	FaninK int
	// ActiveLow builds triggers that fire at 0 instead of 1.
	ActiveLow bool
	// Payload selects the trojan effect (default: flip a victim net).
	Payload trojan.PayloadKind
	// MaxBacktracks is the PODEM budget per rare node (default 4000).
	MaxBacktracks int
	// MaxRareNodes caps how many rare nodes get PODEM cubes (rarest
	// first; 0 = all). Bounds ATPG time on very large circuits.
	MaxRareNodes int
	// CliqueAttempts bounds the greedy clique-mining restarts (0 =
	// 40 × Instances).
	CliqueAttempts int
	// Seed makes the whole pipeline deterministic.
	Seed int64
	// Workers is the goroutine budget for the parallel stages (rare-node
	// simulation, PODEM cube generation, pairwise edges). 1 = serial,
	// 0 = GOMAXPROCS. The pipeline output is identical for any value.
	Workers int
	// Progress, if non-nil, receives stage-transition and
	// percent-complete events while Generate runs, so long runs on
	// large circuits are not silent. The default is no reporting; the
	// sink may be called from the goroutine running Generate only.
	Progress obs.Sink
	// Trace, if non-nil, receives the pipeline's spans; otherwise
	// Generate creates a fresh trace. Either way the trace is exposed
	// as Result.Trace.
	Trace *obs.Trace
	// Deadline bounds the whole pipeline: GenerateContext runs under a
	// context.WithTimeout(ctx, Deadline) and a run that exceeds it
	// fails with a *StageError wrapping context.DeadlineExceeded,
	// naming the stage that was running. 0 = no deadline.
	Deadline time.Duration
	// StageBudgets gives individual stages their own time budgets,
	// keyed by the Stage* constants. A stage that exhausts its budget
	// is cut short; stages with a usable partial result (rare_extract,
	// cube_gen, graph_edges, clique_mine, insert) degrade gracefully —
	// the pipeline continues on the best-so-far output and the expiry
	// is recorded in Result.Degraded — while the rest fail the run.
	// Only the overall Deadline (or the caller's ctx) failing aborts
	// the pipeline with an error.
	StageBudgets map[string]time.Duration
}

func (c Config) withDefaults() Config {
	if c.RareVectors <= 0 {
		c.RareVectors = rare.DefaultVectors
	}
	if c.RareThreshold <= 0 {
		c.RareThreshold = rare.DefaultThreshold
	}
	if c.MinTriggerNodes <= 0 {
		c.MinTriggerNodes = 2
	}
	if c.Instances <= 0 {
		c.Instances = 1
	}
	return c
}

// StageTimes breaks the insertion pipeline down by stage — the
// time-complexity decomposition of the paper's Section IV-C. It is a
// compatibility view derived from the span trace (Result.Trace), which
// is the authoritative record.
type StageTimes struct {
	Levelize    time.Duration // netlist levelization
	RareExtract time.Duration // Algorithm 1
	CubeGen     time.Duration // PODEM cube per rare node
	GraphEdges  time.Duration // pairwise compatibility
	CliqueMine  time.Duration // complete-subgraph mining
	Insert      time.Duration // trigger generation + splicing, all instances
	Total       time.Duration
}

// Benchmark is one emitted HT-infected netlist.
type Benchmark struct {
	// Netlist is the infected circuit (name: <base>_ht<i>).
	Netlist *Netlist
	// Instance records the trojan's structure.
	Instance *trojan.Instance
	// Clique is the trigger-node set the instance was built on.
	Clique compat.Clique
}

// ProveDormant formally verifies the stealth property of this instance:
// with the trigger net constrained to its idle value, the infected
// netlist is proven equivalent to the golden one by the miter-based
// equivalence checker (not sampled — a theorem). It returns an error if
// the proof fails or exceeds its search budget.
func (b *Benchmark) ProveDormant(golden *Netlist) error {
	idle := b.Instance.Trigger.Spec.ActivationValue() ^ 1
	res, err := equiv.Check(golden, b.Netlist, equiv.Options{
		Constraints: map[string]uint8{b.Instance.TriggerOut: idle},
	})
	if err != nil {
		return err
	}
	switch res.Verdict {
	case equiv.Equivalent:
		return nil
	case equiv.Different:
		return fmt.Errorf("cghti: instance %d NOT dormant-equivalent: output %s differs",
			b.Instance.Index, res.DiffOutput)
	default:
		return fmt.Errorf("cghti: instance %d dormant proof aborted", b.Instance.Index)
	}
}

// Target converts the benchmark into a detection-evaluation target
// against its golden netlist. It panics when the trigger net cannot be
// resolved in the infected netlist, which for benchmarks emitted by
// Generate would indicate a bug; use DetectTarget on benchmarks
// reconstructed from external input (deserialized runs, hand-edited
// netlists).
func (b *Benchmark) Target(golden *Netlist) detect.Target {
	tgt, err := b.DetectTarget(golden)
	if err != nil {
		panic(err)
	}
	return tgt
}

// DetectTarget is Target with an error return instead of a panic when
// the instance's trigger net is missing from the infected netlist.
func (b *Benchmark) DetectTarget(golden *Netlist) (detect.Target, error) {
	trig, ok := b.Netlist.Lookup(b.Instance.TriggerOut)
	if !ok {
		return detect.Target{}, fmt.Errorf("cghti: trigger net %q not found in netlist %s",
			b.Instance.TriggerOut, b.Netlist.Name)
	}
	return detect.Target{
		Golden:     golden,
		Infected:   b.Netlist,
		TriggerOut: trig,
		Activation: b.Instance.Trigger.Spec.ActivationValue(),
	}, nil
}

// Degradation records one stage that was cut short (stage budget
// expiry) but left a usable partial result the pipeline continued on.
type Degradation struct {
	// Stage is the stage that was cut short (Stage* constant).
	Stage string
	// Err is what cut it short (typically context.DeadlineExceeded
	// from the stage's budget).
	Err error
	// Done/Total report how far the stage got in its own work units
	// (vectors, candidates, adjacency rows, mining target, instances).
	Done, Total int
	// Detail is a human-readable account of what was salvaged.
	Detail string
}

// Result is the output of Generate.
type Result struct {
	// Base is the (levelized) input netlist.
	Base *Netlist
	// RareSet is the Algorithm 1 output.
	RareSet *rare.Set
	// Graph is the compatibility graph.
	Graph *compat.Graph
	// Cliques are the mined complete subgraphs (may exceed Instances;
	// instances use the first Instances of them).
	Cliques []compat.Clique
	// Benchmarks are the HT-infected netlists.
	Benchmarks []Benchmark
	// Times is the per-stage timing breakdown (derived from Trace).
	Times StageTimes
	// Trace is the pipeline's span trace: a StageGenerate root span
	// with one child per pipeline stage.
	Trace *obs.Trace
	// Degraded lists the stages that ran out of budget and fell back
	// to best-so-far output, in pipeline order. Empty on a clean run.
	// A degraded run is still a successful run: every emitted
	// benchmark is fully verified, there are just fewer (or
	// lower-quality) of them than an unbudgeted run would produce.
	Degraded []Degradation
}

// stageRunner emits progress events and records spans for one
// Generate call.
type stageRunner struct {
	sink obs.Sink
	root *obs.Span
}

func (sr *stageRunner) start(name string) *obs.Span {
	obs.Emit(sr.sink, obs.Event{Stage: name, Kind: obs.StageStart})
	return sr.root.Start(name)
}

func (sr *stageRunner) end(s *obs.Span) {
	s.End()
	obs.Emit(sr.sink, obs.Event{Stage: s.Name(), Kind: obs.StageEnd, Elapsed: s.Duration()})
}

func (sr *stageRunner) abort(s *obs.Span) {
	s.Abort()
	obs.Emit(sr.sink, obs.Event{Stage: s.Name(), Kind: obs.StageAbort, Elapsed: s.Duration()})
}

// progress adapts an internal done/total callback to StageProgress
// events, throttled to whole-percent changes so hot loops stay cheap.
func (sr *stageRunner) progress(stage string, started time.Time) func(done, total int) {
	if sr.sink == nil {
		return nil
	}
	lastPct := -1
	return func(done, total int) {
		pct := 100
		if total > 0 {
			pct = 100 * done / total
		}
		if pct == lastPct {
			return
		}
		lastPct = pct
		obs.Emit(sr.sink, obs.Event{
			Stage: stage, Kind: obs.StageProgress,
			Done: done, Total: total, Elapsed: time.Since(started),
		})
	}
}

// Generate runs the full insertion pipeline on n.
func Generate(n *Netlist, cfg Config) (*Result, error) {
	return GenerateContext(context.Background(), n, cfg)
}

// GenerateContext is Generate with cooperative cancellation and time
// budgets. The pipeline checks ctx (plus cfg.Deadline, when set)
// between and inside every stage's hot loop; cancellation or deadline
// expiry fails the run promptly with a *StageError naming the stage
// that was running and carrying the partial span trace. Per-stage
// budgets (cfg.StageBudgets) are softer: a stage that exhausts its own
// budget but produced a usable partial result degrades — the pipeline
// continues on the best-so-far output and records the expiry in
// Result.Degraded — and only stages with nothing to salvage fail the
// run. Worker panics inside any stage surface as *StageError instead
// of killing the process.
func GenerateContext(ctx context.Context, n *Netlist, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
		defer cancel()
	}
	trace := cfg.Trace
	if trace == nil {
		trace = obs.NewTrace()
	}
	res := &Result{Base: n, Trace: trace}
	sr := &stageRunner{sink: cfg.Progress, root: trace.Start(StageGenerate)}
	defer sr.root.End()

	// stageCtx derives a stage's working context from its budget (the
	// whole-pipeline ctx when it has none).
	stageCtx := func(name string) (context.Context, context.CancelFunc) {
		if d, ok := cfg.StageBudgets[name]; ok && d > 0 {
			return context.WithTimeout(ctx, d)
		}
		return ctx, func() {}
	}
	// fail converts a stage's terminal error into the pipeline's error:
	// the root span is aborted and the partial trace attached to the
	// StageError (the innermost attribution — e.g. the worker that
	// panicked — is kept when err already carries one).
	fail := func(stageName string, err error) error {
		sr.root.Abort()
		res.Times = stageTimes(trace)
		se, ok := obs.AsStageError(err)
		if !ok {
			se = &obs.StageError{Stage: stageName, Worker: -1, Err: err}
		}
		if se.Trace == nil {
			se.Trace = trace
		}
		return se
	}
	// hardStop classifies a stage interruption: pipeline-level
	// cancellation/deadline and contained worker panics always fail the
	// run; anything else (stage budget expiry, injected stage error) is
	// eligible for degradation if the stage salvaged something.
	hardStop := func(err error) bool {
		if ctx.Err() != nil {
			return true
		}
		if se, ok := obs.AsStageError(err); ok && se.PanicValue != nil {
			return true
		}
		return false
	}
	degrade := func(stageName string, err error, done, total int, detail string) {
		res.Degraded = append(res.Degraded, Degradation{
			Stage: stageName, Err: err, Done: done, Total: total, Detail: detail,
		})
	}

	// --- levelize: no partial result is possible; any interruption or
	// panic fails the run.
	sp := sr.start(StageLevelize)
	if err := ctx.Err(); err != nil {
		sr.abort(sp)
		return nil, fail(StageLevelize, err)
	}
	if err := chaos.Hit(StageLevelize, 0); err != nil {
		sr.abort(sp)
		return nil, fail(StageLevelize, err)
	}
	if err := obs.Guard(StageLevelize, -1, n.Levelize); err != nil {
		sr.abort(sp)
		return nil, fail(StageLevelize, err)
	}
	sr.end(sp)

	// --- rare extraction: an interrupted extraction with at least one
	// simulated batch degrades to the smaller sample.
	sp = sr.start(StageRareExtract)
	rctx, cancel := stageCtx(StageRareExtract)
	var rs *rare.Set
	err := obs.Guard(StageRareExtract, -1, func() (e error) {
		rs, e = rare.ExtractContext(rctx, n, rare.Config{
			Vectors:   cfg.RareVectors,
			Threshold: cfg.RareThreshold,
			Seed:      cfg.Seed,
			Workers:   cfg.Workers,
			Progress:  sr.progress(StageRareExtract, sp.StartTime()),
		})
		return e
	})
	cancel()
	if err != nil {
		if hardStop(err) || rs == nil {
			sr.abort(sp)
			return nil, fail(StageRareExtract, err)
		}
		sr.abort(sp)
		degrade(StageRareExtract, err, rs.Vectors, cfg.RareVectors,
			fmt.Sprintf("rare set thresholded over %d of %d vectors", rs.Vectors, cfg.RareVectors))
	} else {
		sr.end(sp)
	}
	res.RareSet = rs
	if rs.Len() == 0 {
		return nil, fail(StageRareExtract, fmt.Errorf("cghti: no rare nodes at θ=%v over %d vectors",
			cfg.RareThreshold, rs.Vectors))
	}

	// --- PODEM cube generation: an interrupted build keeps the cubes
	// generated so far (rarest candidates first, so the best trigger
	// material survives).
	bcfg := compat.BuildConfig{
		MaxBacktracks: cfg.MaxBacktracks,
		MaxNodes:      cfg.MaxRareNodes,
		Workers:       cfg.Workers,
	}
	sp = sr.start(StageCubeGen)
	bcfg.Progress = sr.progress(StageCubeGen, sp.StartTime())
	cctx, cancel := stageCtx(StageCubeGen)
	var g *compat.Graph
	err = obs.Guard(StageCubeGen, -1, func() (e error) {
		g, e = compat.BuildCubes(cctx, n, rs, bcfg)
		return e
	})
	cancel()
	if err != nil {
		if hardStop(err) || g == nil || len(g.Nodes) == 0 {
			sr.abort(sp)
			return nil, fail(StageCubeGen, err)
		}
		sr.abort(sp)
		degrade(StageCubeGen, err, g.CubesDone, g.CubesTotal,
			fmt.Sprintf("%d cubes from %d of %d rare-node candidates", len(g.Nodes), g.CubesDone, g.CubesTotal))
	} else {
		sr.end(sp)
	}
	res.Graph = g

	// --- pairwise edges: an interrupted pass leaves a sound
	// under-approximation (every recorded edge is a verified
	// compatibility), so mining can still proceed.
	bcfg.Progress = nil
	sp = sr.start(StageGraphEdges)
	ectx, cancel := stageCtx(StageGraphEdges)
	err = obs.Guard(StageGraphEdges, -1, func() error {
		return g.ConnectEdges(ectx, bcfg)
	})
	cancel()
	if err != nil {
		if hardStop(err) {
			sr.abort(sp)
			return nil, fail(StageGraphEdges, err)
		}
		sr.abort(sp)
		degrade(StageGraphEdges, err, g.EdgeRowsDone, g.EdgeRowsTotal,
			fmt.Sprintf("%d edges from %d of %d adjacency rows", g.NumEdges(), g.EdgeRowsDone, g.EdgeRowsTotal))
	} else {
		sr.end(sp)
	}

	// --- clique mining: every clique found before the interruption is
	// complete and maximal, so a partial list degrades cleanly. Mine a
	// pool larger than needed, then keep the stealthiest cliques
	// (lowest estimated activation probability, largest first on ties).
	sp = sr.start(StageCliqueMine)
	mctx, cancel := stageCtx(StageCliqueMine)
	var cliques []compat.Clique
	err = obs.Guard(StageCliqueMine, -1, func() (e error) {
		cliques, e = g.FindCliquesContext(mctx, compat.MineConfig{
			MinSize:    cfg.MinTriggerNodes,
			MaxCliques: 4 * cfg.Instances,
			Attempts:   cfg.CliqueAttempts,
			Seed:       cfg.Seed,
		})
		return e
	})
	cancel()
	if err != nil {
		if hardStop(err) || len(cliques) == 0 {
			sr.abort(sp)
			return nil, fail(StageCliqueMine, err)
		}
		sr.abort(sp)
		degrade(StageCliqueMine, err, len(cliques), 4*cfg.Instances,
			fmt.Sprintf("%d of %d cliques mined", len(cliques), 4*cfg.Instances))
	} else {
		sr.end(sp)
	}
	g.SortByStealth(cliques)
	res.Cliques = cliques
	if len(cliques) == 0 {
		return nil, fail(StageCliqueMine, fmt.Errorf("cghti: no clique with >= %d compatible rare nodes (graph: %d vertices, %d edges)",
			cfg.MinTriggerNodes, g.NumVertices(), g.NumEdges()))
	}

	// --- insertion: each completed instance is independently valid, so
	// an interruption after the first instance degrades to fewer
	// benchmarks.
	sp = sr.start(StageInsert)
	instProgress := sr.progress(StageInsert, sp.StartTime())
	total := cfg.Instances
	if total > len(cliques) {
		total = len(cliques)
	}
	ictx, cancel := stageCtx(StageInsert)
	aborted := false
	for i := 0; i < cfg.Instances && i < len(cliques); i++ {
		c := cliques[i]
		var (
			infected *Netlist
			inst     *trojan.Instance
		)
		err := obs.Guard(StageInsert, -1, func() (e error) {
			infected, inst, e = trojan.InsertInstanceContext(ictx, n, c.Nodes(g), c.Cube, i, trojan.InsertSpec{
				Trigger: trojan.TriggerSpec{ActiveLow: cfg.ActiveLow, FaninK: cfg.FaninK},
				Payload: cfg.Payload,
				Seed:    cfg.Seed,
			})
			return e
		})
		if err != nil {
			if hardStop(err) || len(res.Benchmarks) == 0 {
				cancel()
				sr.abort(sp)
				return nil, fail(StageInsert, fmt.Errorf("cghti: instance %d: %w", i, err))
			}
			sr.abort(sp)
			degrade(StageInsert, err, len(res.Benchmarks), total,
				fmt.Sprintf("%d of %d instances inserted", len(res.Benchmarks), total))
			aborted = true
			break
		}
		res.Benchmarks = append(res.Benchmarks, Benchmark{
			Netlist:  infected,
			Instance: inst,
			Clique:   c,
		})
		if instProgress != nil {
			instProgress(i+1, total)
		}
	}
	cancel()
	if !aborted {
		sr.end(sp)
	}
	sr.root.End()
	res.Times = stageTimes(trace)
	return res, nil
}

// stageTimes derives the StageTimes compatibility view from a
// pipeline trace.
func stageTimes(tr *obs.Trace) StageTimes {
	dur := func(name string) time.Duration {
		if s := tr.Find(name); s != nil {
			return s.Duration()
		}
		return 0
	}
	return StageTimes{
		Levelize:    dur(StageLevelize),
		RareExtract: dur(StageRareExtract),
		CubeGen:     dur(StageCubeGen),
		GraphEdges:  dur(StageGraphEdges),
		CliqueMine:  dur(StageCliqueMine),
		Insert:      dur(StageInsert),
		Total:       dur(StageGenerate),
	}
}

// TriggerRange reports the smallest and largest trigger-node counts over
// the emitted instances — the "trigger nodes" column of the paper's
// Table III. ok is false (and min, max are 0) when no benchmarks were
// emitted, so zeros cannot be mistaken for real trigger counts.
func (r *Result) TriggerRange() (min, max int, ok bool) {
	for i, b := range r.Benchmarks {
		q := len(b.Clique.Vertices)
		if i == 0 || q < min {
			min = q
		}
		if q > max {
			max = q
		}
	}
	return min, max, len(r.Benchmarks) > 0
}

// AreaOverhead computes the worst-case trojan area overhead percentage
// across the emitted instances under the NanGate-45-like cell model
// (Table V).
func (r *Result) AreaOverhead() (float64, error) {
	lib := area.NanGate45()
	worst := 0.0
	for _, b := range r.Benchmarks {
		o, err := lib.Overhead(r.Base, b.Netlist)
		if err != nil {
			return 0, err
		}
		if o > worst {
			worst = o
		}
	}
	return worst, nil
}

// Verify re-proves every emitted instance with three-valued simulation:
// the merged cube must drive each trigger node to its rare value. This
// is the validation the compatibility graph makes unnecessary — exposed
// so users (and tests) can confirm the guarantee.
func (r *Result) Verify() error {
	for _, b := range r.Benchmarks {
		if err := verifyBenchmark(r.Base, r.Graph, b); err != nil {
			return err
		}
	}
	return nil
}

func verifyBenchmark(base *Netlist, g *compat.Graph, b Benchmark) error {
	in := make(map[netlist.GateID]sim.V3, len(g.InputIDs))
	for pos, id := range g.InputIDs {
		if v := b.Clique.Cube.Get(pos); v != sim.V3X {
			in[id] = v
		}
	}
	vals, err := sim.Eval3(base, in)
	if err != nil {
		return err
	}
	for _, node := range b.Clique.Nodes(g) {
		if vals[node.ID] != sim.V3(node.RareValue) {
			return fmt.Errorf("cghti: instance %d: cube does not prove %s=%d",
				b.Instance.Index, base.Gates[node.ID].Name, node.RareValue)
		}
	}
	return nil
}

// Cube is a partial input assignment (re-exported from internal/atpg).
type Cube = atpg.Cube
