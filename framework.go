package cghti

import (
	"context"
	"fmt"
	"time"

	"cghti/internal/area"
	"cghti/internal/artifact"
	"cghti/internal/atpg"
	"cghti/internal/chaos"
	"cghti/internal/compat"
	"cghti/internal/detect"
	"cghti/internal/equiv"
	"cghti/internal/netlist"
	"cghti/internal/obs"
	"cghti/internal/pipeline"
	"cghti/internal/rare"
	"cghti/internal/sim"
	"cghti/internal/stage"
	"cghti/internal/trojan"
)

// Stage names of the Generate pipeline, as they appear in the trace
// (children of the StageGenerate root span), in progress events, in
// Config.StageBudgets keys, and in StageError.Stage. Re-exported from
// internal/stage, the canonical home shared with the instrumented
// worker loops.
const (
	StageGenerate    = stage.Generate // root span wrapping the whole pipeline
	StageLevelize    = stage.Levelize
	StageRareExtract = stage.RareExtract
	StageCubeGen     = stage.CubeGen
	StageGraphEdges  = stage.GraphEdges
	StageCliqueMine  = stage.CliqueMine
	StageInsert      = stage.Insert
)

// StageError is the structured failure record GenerateContext (and the
// stage-instrumented worker pools below it) return: the stage name, the
// worker index when attributable, the cause (context.Canceled,
// context.DeadlineExceeded, or a panic-derived error), and — for
// pipeline-level failures — the partial span trace up to the failure.
// Unwrap exposes the cause, so errors.Is(err, context.Canceled) works
// through it.
type StageError = obs.StageError

// AsStageError unwraps err to a *StageError if one is in the chain.
func AsStageError(err error) (*StageError, bool) { return obs.AsStageError(err) }

// PipelineStages lists the six pipeline-stage span names in execution
// order (the Section IV-C time decomposition).
var PipelineStages = []string{
	StageLevelize, StageRareExtract, StageCubeGen,
	StageGraphEdges, StageCliqueMine, StageInsert,
}

// ArtifactCache is the content-addressed store for intermediate
// pipeline artifacts (rare sets, compatibility graphs, clique lists):
// a bounded in-memory LRU tier plus an optional on-disk tier whose
// entries are hash-verified on every read. Construct one with NewCache
// or DirCache and share it across Generate calls (it is safe for
// concurrent use).
type ArtifactCache = artifact.Cache

// NewCache returns a memory-only artifact cache bounded by maxEntries
// entries and maxBytes payload bytes (non-positive values select the
// defaults: 128 entries, 256 MiB).
func NewCache(maxEntries int, maxBytes int64) *ArtifactCache {
	return artifact.NewCache(maxEntries, maxBytes)
}

// DirCache returns the process-wide artifact cache persisted under dir
// (created if missing). Calls with the same directory share one memory
// tier, so repeated Generate runs in one process hit memory, and runs
// across processes hit disk.
func DirCache(dir string) (*ArtifactCache, error) { return artifact.DirCache(dir) }

// Metrics is a named-counter/gauge registry a run records its work
// into. Give each concurrent Generate its own (Config.Metrics) to get
// an exact per-run account — see NewRunMetrics.
type Metrics = obs.Registry

// NewRunMetrics returns a fresh per-run metrics registry whose updates
// also mirror into the process-wide registry, so process totals (e.g. a
// daemon's /metrics endpoint) stay complete while the returned registry
// holds exactly one run's work.
func NewRunMetrics() *Metrics { return obs.NewScoped(nil) }

// Config holds the user-defined properties of the paper's framework: the
// rare-node hyperparameters (θ_RN, |V|), the trigger-node count q, the
// instance count N, and the trojan shape.
type Config struct {
	// RareVectors is |V|, the random simulation budget of Algorithm 1
	// (default 10,000, the paper's Figure 3 choice).
	RareVectors int
	// RareThreshold is θ_RN as a fraction (default 0.20, the paper's
	// Figure 2 choice).
	RareThreshold float64
	// MinTriggerNodes is q: every instance's clique has at least this
	// many rare nodes (default 2).
	MinTriggerNodes int
	// Instances is N, the number of HT-infected netlists to emit
	// (default 1).
	Instances int
	// FaninK bounds trigger-tree gate arity (default 4).
	FaninK int
	// ActiveLow builds triggers that fire at 0 instead of 1.
	ActiveLow bool
	// Payload selects the trojan effect (default: flip a victim net).
	Payload trojan.PayloadKind
	// MaxBacktracks is the PODEM budget per rare node (default 4000).
	MaxBacktracks int
	// MaxRareNodes caps how many rare nodes get PODEM cubes (rarest
	// first; 0 = all). Bounds ATPG time on very large circuits.
	MaxRareNodes int
	// CliqueAttempts bounds the greedy clique-mining restarts (0 =
	// 40 × Instances).
	CliqueAttempts int
	// Seed makes the whole pipeline deterministic.
	Seed int64
	// Workers is the goroutine budget for the parallel stages (rare-node
	// simulation, PODEM cube generation, pairwise edges). 1 = serial,
	// 0 = GOMAXPROCS. The pipeline output is identical for any value.
	Workers int
	// Partitions splits the netlist into this many fanout-cone
	// partitions for the scale path: rare extraction, PODEM cube
	// generation, and compatibility-edge construction run per-partition,
	// and the graph stores per-partition adjacency blocks plus a sparse
	// cross-partition conflict list instead of one dense V×V bitset.
	// 0 or 1 keeps the whole-netlist engines. Like Workers, the pipeline
	// output is bit-identical for any value — partitioning changes
	// memory layout and locality, never results. Worth switching on
	// from ~10⁵ gates.
	Partitions int
	// Progress, if non-nil, receives stage-transition and
	// percent-complete events while Generate runs, so long runs on
	// large circuits are not silent. The default is no reporting; the
	// sink may be called from the goroutine running Generate only.
	Progress obs.Sink
	// Trace, if non-nil, receives the pipeline's spans; otherwise
	// Generate creates a fresh trace. Either way the trace is exposed
	// as Result.Trace.
	Trace *obs.Trace
	// Metrics, if non-nil, receives this run's counter and gauge
	// updates: every instrumented hot loop the pipeline enters records
	// into it instead of (only) the process-wide registry, so a process
	// running several generations concurrently gets an exact per-run
	// account — Metrics.Snapshot() after the run needs no delta. Use
	// NewRunMetrics for a registry that also mirrors into the
	// process-wide totals. Nil keeps the previous behavior: everything
	// goes to the process default registry.
	Metrics *Metrics
	// Deadline bounds the whole pipeline: GenerateContext runs under a
	// context.WithTimeout(ctx, Deadline) and a run that exceeds it
	// fails with a *StageError wrapping context.DeadlineExceeded,
	// naming the stage that was running. 0 = no deadline.
	Deadline time.Duration
	// StageBudgets gives individual stages their own time budgets,
	// keyed by the Stage* constants. A stage that exhausts its budget
	// is cut short; stages with a usable partial result (rare_extract,
	// cube_gen, graph_edges, clique_mine, insert) degrade gracefully —
	// the pipeline continues on the best-so-far output and the expiry
	// is recorded in Result.Degraded — while the rest fail the run.
	// Only the overall Deadline (or the caller's ctx) failing aborts
	// the pipeline with an error.
	StageBudgets map[string]time.Duration
	// Cache, if non-nil, is the content-addressed artifact store the
	// pipeline consults before recomputing rare extraction, cube
	// generation, and graph edges — and fills on clean runs. Cached
	// stages record no span and emit a StageCached event; degraded
	// upstream output disables caching for the rest of that run, so a
	// partial artifact is never stored under (or served for) a full-run
	// fingerprint. Caching never changes outputs: fingerprints cover
	// the canonical netlist bytes, the stage-relevant configuration
	// (Seed included, Workers excluded) and every upstream artifact.
	Cache *ArtifactCache
	// CacheDir, if non-empty and Cache is nil, selects the process-wide
	// disk-backed cache under this directory (see DirCache).
	CacheDir string
}

// Validate rejects nonsensical configurations with a descriptive error
// instead of silently defaulting or misbehaving. Zero values mean "use
// the default" and always pass; Generate calls Validate first, so an
// invalid Config fails before any work happens.
func (c Config) Validate() error {
	bad := func(field string, format string, args ...any) error {
		return fmt.Errorf("cghti: invalid Config.%s: %s", field, fmt.Sprintf(format, args...))
	}
	if c.RareVectors < 0 {
		return bad("RareVectors", "%d is negative; want > 0 vectors (or 0 for the default %d)", c.RareVectors, rare.DefaultVectors)
	}
	if c.RareThreshold < 0 {
		return bad("RareThreshold", "%v is negative; θ_RN is a fraction in (0, 1)", c.RareThreshold)
	}
	if c.RareThreshold >= 1 {
		return bad("RareThreshold", "%v >= 1 would mark every node rare; θ_RN is a fraction in (0, 1)", c.RareThreshold)
	}
	if c.MinTriggerNodes < 0 || c.MinTriggerNodes == 1 {
		return bad("MinTriggerNodes", "%d; a trigger set needs q >= 2 rare nodes (or 0 for the default)", c.MinTriggerNodes)
	}
	if c.Instances < 0 {
		return bad("Instances", "%d is negative; want N > 0 instances (or 0 for the default 1)", c.Instances)
	}
	if c.FaninK < 0 || c.FaninK == 1 {
		return bad("FaninK", "%d; trigger-tree gates need fan-in >= 2 (or 0 for the default 4)", c.FaninK)
	}
	if c.MaxBacktracks < 0 {
		return bad("MaxBacktracks", "%d is negative; want a positive PODEM budget (or 0 for the default)", c.MaxBacktracks)
	}
	if c.MaxRareNodes < 0 {
		return bad("MaxRareNodes", "%d is negative; want a positive cap (or 0 for no cap)", c.MaxRareNodes)
	}
	if c.CliqueAttempts < 0 {
		return bad("CliqueAttempts", "%d is negative; want positive restarts (or 0 for the default)", c.CliqueAttempts)
	}
	if c.Workers < 0 {
		return bad("Workers", "%d is negative; want 1 = serial, n = n goroutines, 0 = GOMAXPROCS", c.Workers)
	}
	if c.Partitions < 0 {
		return bad("Partitions", "%d is negative; want 1 = whole netlist, n = n fanout-cone partitions, 0 = default", c.Partitions)
	}
	if c.Deadline < 0 {
		return bad("Deadline", "%v is negative; want a positive duration (or 0 for none)", c.Deadline)
	}
	for name, d := range c.StageBudgets {
		if d < 0 {
			return bad("StageBudgets", "budget %v for stage %q is negative", d, name)
		}
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.RareVectors <= 0 {
		c.RareVectors = rare.DefaultVectors
	}
	if c.RareThreshold <= 0 {
		c.RareThreshold = rare.DefaultThreshold
	}
	if c.MinTriggerNodes <= 0 {
		c.MinTriggerNodes = 2
	}
	if c.Instances <= 0 {
		c.Instances = 1
	}
	return c
}

// StageTimes breaks the insertion pipeline down by stage — the
// time-complexity decomposition of the paper's Section IV-C. It is a
// compatibility view derived from the span trace (Result.Trace), which
// is the authoritative record. A stage served from the artifact cache
// records no span and reports zero.
type StageTimes struct {
	Levelize    time.Duration // netlist levelization
	RareExtract time.Duration // Algorithm 1
	CubeGen     time.Duration // PODEM cube per rare node
	GraphEdges  time.Duration // pairwise compatibility
	CliqueMine  time.Duration // complete-subgraph mining
	Insert      time.Duration // trigger generation + splicing, all instances
	Total       time.Duration
}

// Benchmark is one emitted HT-infected netlist.
type Benchmark struct {
	// Netlist is the infected circuit (name: <base>_ht<i>).
	Netlist *Netlist
	// Instance records the trojan's structure.
	Instance *trojan.Instance
	// Clique is the trigger-node set the instance was built on.
	Clique compat.Clique
}

// ProveDormant formally verifies the stealth property of this instance:
// with the trigger net constrained to its idle value, the infected
// netlist is proven equivalent to the golden one by the miter-based
// equivalence checker (not sampled — a theorem). It returns an error if
// the proof fails or exceeds its search budget.
func (b *Benchmark) ProveDormant(golden *Netlist) error {
	idle := b.Instance.Trigger.Spec.ActivationValue() ^ 1
	res, err := equiv.Check(golden, b.Netlist, equiv.Options{
		Constraints: map[string]uint8{b.Instance.TriggerOut: idle},
	})
	if err != nil {
		return err
	}
	switch res.Verdict {
	case equiv.Equivalent:
		return nil
	case equiv.Different:
		return fmt.Errorf("cghti: instance %d NOT dormant-equivalent: output %s differs",
			b.Instance.Index, res.DiffOutput)
	default:
		return fmt.Errorf("cghti: instance %d dormant proof aborted", b.Instance.Index)
	}
}

// Target converts the benchmark into a detection-evaluation target
// against its golden netlist. It panics when the trigger net cannot be
// resolved in the infected netlist, which for benchmarks emitted by
// Generate would indicate a bug; use DetectTarget on benchmarks
// reconstructed from external input (deserialized runs, hand-edited
// netlists).
func (b *Benchmark) Target(golden *Netlist) detect.Target {
	tgt, err := b.DetectTarget(golden)
	if err != nil {
		panic(err)
	}
	return tgt
}

// DetectTarget is Target with an error return instead of a panic when
// the instance's trigger net is missing from the infected netlist.
func (b *Benchmark) DetectTarget(golden *Netlist) (detect.Target, error) {
	trig, ok := b.Netlist.Lookup(b.Instance.TriggerOut)
	if !ok {
		return detect.Target{}, fmt.Errorf("cghti: trigger net %q not found in netlist %s",
			b.Instance.TriggerOut, b.Netlist.Name)
	}
	return detect.Target{
		Golden:     golden,
		Infected:   b.Netlist,
		TriggerOut: trig,
		Activation: b.Instance.Trigger.Spec.ActivationValue(),
	}, nil
}

// Degradation records one stage that was cut short (stage budget
// expiry) but left a usable partial result the pipeline continued on.
// It is the pipeline executor's record type, re-exported.
type Degradation = pipeline.Degradation

// Result is the output of Generate.
type Result struct {
	// Base is the (levelized) input netlist.
	Base *Netlist
	// RareSet is the Algorithm 1 output.
	RareSet *rare.Set
	// Graph is the compatibility graph.
	Graph *compat.Graph
	// Cliques are the mined complete subgraphs (may exceed Instances;
	// instances use the first Instances of them).
	Cliques []compat.Clique
	// Benchmarks are the HT-infected netlists.
	Benchmarks []Benchmark
	// Times is the per-stage timing breakdown (derived from Trace).
	Times StageTimes
	// Trace is the pipeline's span trace: a StageGenerate root span
	// with one child per pipeline stage that actually ran.
	Trace *obs.Trace
	// Degraded lists the stages that ran out of budget and fell back
	// to best-so-far output, in pipeline order. Empty on a clean run.
	// A degraded run is still a successful run: every emitted
	// benchmark is fully verified, there are just fewer (or
	// lower-quality) of them than an unbudgeted run would produce.
	Degraded []Degradation
	// CachedStages lists the stages served from Config.Cache instead of
	// running, in pipeline order. Empty when caching is off or cold.
	CachedStages []string
}

// Generate runs the full insertion pipeline on n.
func Generate(n *Netlist, cfg Config) (*Result, error) {
	return GenerateContext(context.Background(), n, cfg)
}

// GenerateContext is Generate with cooperative cancellation and time
// budgets. The pipeline checks ctx (plus cfg.Deadline, when set)
// between and inside every stage's hot loop; cancellation or deadline
// expiry fails the run promptly with a *StageError naming the stage
// that was running and carrying the partial span trace. Per-stage
// budgets (cfg.StageBudgets) are softer: a stage that exhausts its own
// budget but produced a usable partial result degrades — the pipeline
// continues on the best-so-far output and records the expiry in
// Result.Degraded — and only stages with nothing to salvage fail the
// run. Worker panics inside any stage surface as *StageError instead
// of killing the process.
//
// The stage orchestration itself — spans, budgets, panic containment,
// degradation, caching — lives in internal/pipeline; this function only
// builds the stage graph and interprets its result.
func GenerateContext(ctx context.Context, n *Netlist, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.Metrics != nil {
		ctx = obs.WithRegistry(ctx, cfg.Metrics)
	}
	if cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
		defer cancel()
	}
	trace := cfg.Trace
	if trace == nil {
		trace = obs.NewTrace()
	}
	root := trace.Start(StageGenerate)
	defer root.End()

	cache := cfg.Cache
	if cache == nil && cfg.CacheDir != "" {
		c, err := artifact.DirCache(cfg.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("cghti: cache dir: %w", err)
		}
		cache = c
	}
	env := &pipeline.Env{
		Sink:    cfg.Progress,
		Trace:   trace,
		Root:    root,
		Budgets: cfg.StageBudgets,
		Cache:   cache,
	}
	if cache != nil {
		env.BaseFP = artifact.NetlistFingerprint(n)
	}

	buildCfg := compat.BuildConfig{
		MaxBacktracks: cfg.MaxBacktracks,
		MaxNodes:      cfg.MaxRareNodes,
		Workers:       cfg.Workers,
		Partitions:    cfg.Partitions,
	}

	g := pipeline.NewGraph()
	// Levelization annotates the netlist in place; no partial result is
	// possible, so any interruption or panic fails the run. Its output
	// keeps the netlist's content identity (TransparentFunc), which is
	// what lets downstream fingerprints match the standalone cached
	// helpers' recipe.
	g.Add(pipeline.TransparentFunc(StageLevelize,
		func(ctx context.Context, env *pipeline.Env, _ []pipeline.Artifact) (pipeline.Artifact, error) {
			if err := chaos.Hit(StageLevelize, 0); err != nil {
				return nil, err
			}
			if err := n.Levelize(); err != nil {
				return nil, err
			}
			return n, nil
		}))
	g.Add(rare.NewExtractStage(rare.Config{
		Vectors:    cfg.RareVectors,
		Threshold:  cfg.RareThreshold,
		Seed:       cfg.Seed,
		Workers:    cfg.Workers,
		Partitions: cfg.Partitions,
	}), StageLevelize)
	g.Add(compat.NewCubeStage(buildCfg), StageLevelize, StageRareExtract)
	g.Add(compat.NewEdgeStage(buildCfg), StageCubeGen)
	g.Add(compat.NewMineStage(compat.MineConfig{
		MinSize:    cfg.MinTriggerNodes,
		MaxCliques: 4 * cfg.Instances,
		Attempts:   cfg.CliqueAttempts,
		Seed:       cfg.Seed,
	}), StageGraphEdges)
	g.Add(trojan.NewInsertStage(trojan.InsertSpec{
		Trigger: trojan.TriggerSpec{ActiveLow: cfg.ActiveLow, FaninK: cfg.FaninK},
		Payload: cfg.Payload,
		Seed:    cfg.Seed,
	}, cfg.Instances), StageLevelize, StageGraphEdges, StageCliqueMine)

	pres, err := g.Run(ctx, env)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Base:         n,
		Trace:        trace,
		RareSet:      pres.Output(StageRareExtract).(*rare.Set),
		Graph:        pres.Output(StageGraphEdges).(*compat.Graph),
		Cliques:      pres.Output(StageCliqueMine).([]compat.Clique),
		Degraded:     pres.Degraded,
		CachedStages: pres.Cached,
	}
	for _, ins := range pres.Output(StageInsert).([]trojan.Inserted) {
		res.Benchmarks = append(res.Benchmarks, Benchmark{
			Netlist:  ins.Netlist,
			Instance: ins.Instance,
			Clique:   ins.Clique,
		})
	}
	root.End()
	res.Times = stageTimes(trace)
	return res, nil
}

// stageTimes derives the StageTimes compatibility view from a
// pipeline trace.
func stageTimes(tr *obs.Trace) StageTimes {
	dur := func(name string) time.Duration {
		if s := tr.Find(name); s != nil {
			return s.Duration()
		}
		return 0
	}
	return StageTimes{
		Levelize:    dur(StageLevelize),
		RareExtract: dur(StageRareExtract),
		CubeGen:     dur(StageCubeGen),
		GraphEdges:  dur(StageGraphEdges),
		CliqueMine:  dur(StageCliqueMine),
		Insert:      dur(StageInsert),
		Total:       dur(StageGenerate),
	}
}

// TriggerRange reports the smallest and largest trigger-node counts over
// the emitted instances — the "trigger nodes" column of the paper's
// Table III. ok is false (and min, max are 0) when no benchmarks were
// emitted, so zeros cannot be mistaken for real trigger counts.
func (r *Result) TriggerRange() (min, max int, ok bool) {
	for i, b := range r.Benchmarks {
		q := len(b.Clique.Vertices)
		if i == 0 || q < min {
			min = q
		}
		if q > max {
			max = q
		}
	}
	return min, max, len(r.Benchmarks) > 0
}

// AreaOverhead computes the worst-case trojan area overhead percentage
// across the emitted instances under the NanGate-45-like cell model
// (Table V).
func (r *Result) AreaOverhead() (float64, error) {
	lib := area.NanGate45()
	worst := 0.0
	for _, b := range r.Benchmarks {
		o, err := lib.Overhead(r.Base, b.Netlist)
		if err != nil {
			return 0, err
		}
		if o > worst {
			worst = o
		}
	}
	return worst, nil
}

// Verify re-proves every emitted instance with three-valued simulation:
// the merged cube must drive each trigger node to its rare value. This
// is the validation the compatibility graph makes unnecessary — exposed
// so users (and tests) can confirm the guarantee.
func (r *Result) Verify() error {
	for _, b := range r.Benchmarks {
		if err := verifyBenchmark(r.Base, r.Graph, b); err != nil {
			return err
		}
	}
	return nil
}

func verifyBenchmark(base *Netlist, g *compat.Graph, b Benchmark) error {
	in := make(map[netlist.GateID]sim.V3, len(g.InputIDs))
	for pos, id := range g.InputIDs {
		if v := b.Clique.Cube.Get(pos); v != sim.V3X {
			in[id] = v
		}
	}
	vals, err := sim.Eval3(base, in)
	if err != nil {
		return err
	}
	for _, node := range b.Clique.Nodes(g) {
		if vals[node.ID] != sim.V3(node.RareValue) {
			return fmt.Errorf("cghti: instance %d: cube does not prove %s=%d",
				b.Instance.Index, base.Gates[node.ID].Name, node.RareValue)
		}
	}
	return nil
}

// Cube is a partial input assignment (re-exported from internal/atpg).
type Cube = atpg.Cube
