module cghti

go 1.22
