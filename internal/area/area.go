// Package area estimates cell area and trojan area overhead (Table V).
//
// The paper synthesizes with Cadence GENUS against the NanGate 45 nm
// Open Cell Library and reports (trojan area)/(original area). That
// metric needs no placement or timing — only per-cell areas — so this
// package carries a cell-area table modeled on the NanGate 45 nm library
// (X1 drive strengths; square microns) and rolls netlists up against it.
package area

import (
	"fmt"

	"cghti/internal/netlist"
)

// Library maps gate type and fanin count to cell area in µm².
type Library struct {
	// Name identifies the library in reports.
	Name string
	// cellAreas[type][fanin] — missing fanins are composed from smaller
	// cells (a k-input gate decomposes into 2-input trees).
	cellAreas map[netlist.GateType]map[int]float64
}

// NanGate45 returns the area model of the NanGate 45 nm Open Cell
// Library (typical X1 cells; µm²).
func NanGate45() *Library {
	const site = 0.266 // one placement-site column of the 1.4 µm row
	return &Library{
		Name: "NanGate45-like",
		cellAreas: map[netlist.GateType]map[int]float64{
			netlist.Buf:  {1: 2 * site * 1.4},                                       // BUF_X1
			netlist.Not:  {1: 1 * site * 1.4},                                       // INV_X1
			netlist.Nand: {2: 2 * site * 1.4, 3: 3 * site * 1.4, 4: 4 * site * 1.4}, // NAND*_X1
			netlist.Nor:  {2: 2 * site * 1.4, 3: 3 * site * 1.4, 4: 4 * site * 1.4}, // NOR*_X1
			netlist.And:  {2: 3 * site * 1.4, 3: 4 * site * 1.4, 4: 5 * site * 1.4}, // AND*_X1
			netlist.Or:   {2: 3 * site * 1.4, 3: 4 * site * 1.4, 4: 5 * site * 1.4}, // OR*_X1
			netlist.Xor:  {2: 5 * site * 1.4},                                       // XOR2_X1
			netlist.Xnor: {2: 5 * site * 1.4},                                       // XNOR2_X1
			netlist.DFF:  {1: 17 * site * 1.4},                                      // DFF_X1
		},
	}
}

// CellArea returns the area of one gate. Wide gates without a direct
// cell decompose into a tree of the widest available cell plus 2-input
// combiners, which is how a technology mapper would cover them.
func (l *Library) CellArea(t netlist.GateType, fanin int) (float64, error) {
	switch t {
	case netlist.Input, netlist.Const0, netlist.Const1:
		return 0, nil
	}
	byFanin, ok := l.cellAreas[t]
	if !ok {
		return 0, fmt.Errorf("area: no cell for %v", t)
	}
	if a, ok := byFanin[fanin]; ok {
		return a, nil
	}
	if fanin == 1 {
		// Single-input AND/OR/etc. degenerates to a buffer.
		return l.cellAreas[netlist.Buf][1], nil
	}
	// Decompose: widest direct cell + recursive remainder through a
	// 2-input combiner of the same family.
	widest := 0
	for k := range byFanin {
		if k > widest && k <= fanin {
			widest = k
		}
	}
	if widest == 0 {
		return 0, fmt.Errorf("area: no cell for %v/%d", t, fanin)
	}
	rest, err := l.CellArea(t, fanin-widest+1)
	if err != nil {
		return 0, err
	}
	return byFanin[widest] + rest, nil
}

// NetlistArea sums the cell areas of every gate.
func (l *Library) NetlistArea(n *netlist.Netlist) (float64, error) {
	total := 0.0
	for i := range n.Gates {
		g := &n.Gates[i]
		a, err := l.CellArea(g.Type, len(g.Fanin))
		if err != nil {
			return 0, fmt.Errorf("area: gate %q: %w", g.Name, err)
		}
		total += a
	}
	return total, nil
}

// Overhead reports the trojan area overhead percentage:
// 100 · (infected − original) / original.
func (l *Library) Overhead(original, infected *netlist.Netlist) (float64, error) {
	ao, err := l.NetlistArea(original)
	if err != nil {
		return 0, err
	}
	ai, err := l.NetlistArea(infected)
	if err != nil {
		return 0, err
	}
	if ao == 0 {
		return 0, fmt.Errorf("area: original netlist has zero area")
	}
	return 100 * (ai - ao) / ao, nil
}
