package area

import (
	"testing"

	"cghti/internal/bench"
	"cghti/internal/gen"
	"cghti/internal/netlist"
)

func TestCellAreasMonotone(t *testing.T) {
	l := NanGate45()
	inv, _ := l.CellArea(netlist.Not, 1)
	nand2, _ := l.CellArea(netlist.Nand, 2)
	nand4, _ := l.CellArea(netlist.Nand, 4)
	dff, _ := l.CellArea(netlist.DFF, 1)
	if inv <= 0 || nand2 <= inv || nand4 <= nand2 || dff <= nand4 {
		t.Fatalf("areas not monotone: inv=%v nand2=%v nand4=%v dff=%v", inv, nand2, nand4, dff)
	}
}

func TestSourcesAreFree(t *testing.T) {
	l := NanGate45()
	for _, tt := range []netlist.GateType{netlist.Input, netlist.Const0, netlist.Const1} {
		a, err := l.CellArea(tt, 0)
		if err != nil || a != 0 {
			t.Fatalf("CellArea(%v) = %v, %v; want 0, nil", tt, a, err)
		}
	}
}

func TestWideGateDecomposes(t *testing.T) {
	l := NanGate45()
	n4, err := l.CellArea(netlist.Nand, 4)
	if err != nil {
		t.Fatal(err)
	}
	n7, err := l.CellArea(netlist.Nand, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n7 <= n4 {
		t.Fatalf("7-input NAND area %v not larger than 4-input %v", n7, n4)
	}
	// XOR has only a 2-input cell: a 4-input XOR = 3 cells.
	x2, _ := l.CellArea(netlist.Xor, 2)
	x4, err := l.CellArea(netlist.Xor, 4)
	if err != nil {
		t.Fatal(err)
	}
	if x4 != 3*x2 {
		t.Fatalf("XOR4 = %v, want %v", x4, 3*x2)
	}
}

func TestSingleInputDegeneratesToBuffer(t *testing.T) {
	l := NanGate45()
	b, _ := l.CellArea(netlist.Buf, 1)
	a, err := l.CellArea(netlist.And, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("AND1 = %v, want buffer area %v", a, b)
	}
}

func TestNetlistAreaC17(t *testing.T) {
	l := NanGate45()
	n := gen.C17()
	a, err := l.NetlistArea(n)
	if err != nil {
		t.Fatal(err)
	}
	nand2, _ := l.CellArea(netlist.Nand, 2)
	if want := 6 * nand2; a != want {
		t.Fatalf("c17 area = %v, want %v", a, want)
	}
}

func TestOverheadGrowsWithTrojanSize(t *testing.T) {
	l := NanGate45()
	base, err := bench.ParseString(`
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
g1 = AND(a, b)
g2 = OR(c, d)
y = XOR(g1, g2)
`, "base")
	if err != nil {
		t.Fatal(err)
	}
	small := base.Clone()
	id := small.MustAddGate("t1", netlist.And)
	small.Connect(small.MustLookup("a"), id)
	small.Connect(small.MustLookup("b"), id)
	small.MarkPO(id)

	big := small.Clone()
	id2 := big.MustAddGate("t2", netlist.Xor)
	big.Connect(big.MustLookup("g1"), id2)
	big.Connect(big.MustLookup("t1"), id2)
	big.MarkPO(id2)

	oSmall, err := l.Overhead(base, small)
	if err != nil {
		t.Fatal(err)
	}
	oBig, err := l.Overhead(base, big)
	if err != nil {
		t.Fatal(err)
	}
	if oSmall <= 0 || oBig <= oSmall {
		t.Fatalf("overheads %v, %v not increasing", oSmall, oBig)
	}
	zero, err := l.Overhead(base, base)
	if err != nil || zero != 0 {
		t.Fatalf("self overhead = %v, %v", zero, err)
	}
}

func TestOverheadShrinksWithCircuitSize(t *testing.T) {
	// The same trojan on a bigger base circuit → smaller percentage —
	// the Table V trend.
	l := NanGate45()
	small := gen.MustBenchmark("c432")
	big := gen.MustBenchmark("c5315")

	addTrojan := func(n *netlist.Netlist) *netlist.Netlist {
		c := n.Clone()
		prev := c.PIs[0]
		for i := 0; i < 30; i++ {
			g := c.MustAddGate("tg"+itoa(i), netlist.And)
			c.Connect(prev, g)
			c.Connect(c.PIs[(i+1)%len(c.PIs)], g)
			prev = g
		}
		c.MarkPO(prev)
		return c
	}
	oSmall, err := l.Overhead(small, addTrojan(small))
	if err != nil {
		t.Fatal(err)
	}
	oBig, err := l.Overhead(big, addTrojan(big))
	if err != nil {
		t.Fatal(err)
	}
	if oBig >= oSmall {
		t.Fatalf("overhead did not shrink with circuit size: %v vs %v", oSmall, oBig)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func TestUnknownGateTypeError(t *testing.T) {
	l := &Library{Name: "empty", cellAreas: map[netlist.GateType]map[int]float64{}}
	if _, err := l.CellArea(netlist.And, 2); err == nil {
		t.Fatal("empty library returned an area")
	}
}
