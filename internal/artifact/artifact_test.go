package artifact

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	e := NewEnc()
	e.Uvarint(0)
	e.Uvarint(1 << 40)
	e.Varint(-12345)
	e.Int(42)
	e.U8(0xAB)
	e.Bool(true)
	e.Bool(false)
	e.F64(math.Pi)
	e.F64(0)
	e.Bytes([]byte{1, 2, 3})
	e.Bytes(nil)
	e.String("rare_extract")
	e.String("")
	e.Words([]uint64{0, ^uint64(0), 0xDEADBEEF})
	e.Words(nil)
	data := e.Finish()

	d := NewDec(data)
	if got := d.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d, want 0", got)
	}
	if got := d.Uvarint(); got != 1<<40 {
		t.Errorf("Uvarint = %d, want %d", got, uint64(1)<<40)
	}
	if got := d.Varint(); got != -12345 {
		t.Errorf("Varint = %d, want -12345", got)
	}
	if got := d.Int(); got != 42 {
		t.Errorf("Int = %d, want 42", got)
	}
	if got := d.U8(); got != 0xAB {
		t.Errorf("U8 = %#x, want 0xAB", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.F64(); got != math.Pi {
		t.Errorf("F64 = %v, want pi", got)
	}
	if got := d.F64(); got != 0 {
		t.Errorf("F64 = %v, want 0", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := d.Bytes(); len(got) != 0 {
		t.Errorf("empty Bytes = %v", got)
	}
	if got := d.String(); got != "rare_extract" {
		t.Errorf("String = %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	w := d.Words()
	if len(w) != 3 || w[0] != 0 || w[1] != ^uint64(0) || w[2] != 0xDEADBEEF {
		t.Errorf("Words = %v", w)
	}
	if got := d.Words(); len(got) != 0 {
		t.Errorf("empty Words = %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecTruncatedAndTrailing(t *testing.T) {
	e := NewEnc()
	e.String("hello")
	data := e.Finish()

	// Truncation mid-field is a sticky error, not a panic or a huge alloc.
	d := NewDec(data[:2])
	_ = d.String()
	if d.Err() == nil {
		t.Error("truncated String: want error")
	}
	_ = d.Int() // reads after the error stay zero-valued and safe
	if d.Finish() == nil {
		t.Error("Finish after truncation: want error")
	}

	// A corrupted length prefix claiming more than remains must not allocate.
	e2 := NewEnc()
	e2.Uvarint(1 << 50)
	if got := NewDec(e2.Finish()).Words(); got != nil {
		t.Errorf("oversized Words claim decoded to %v", got)
	}

	// Unconsumed input is an error: every byte must be accounted for.
	d3 := NewDec(data)
	_ = d3.Uvarint()
	if d3.Finish() == nil {
		t.Error("Finish with trailing bytes: want error")
	}
}

func TestDeriveDistinctness(t *testing.T) {
	base := Hash([]byte("netlist"))
	other := Hash([]byte("netlist2"))
	fps := []Fingerprint{
		Derive("rare_extract", []byte{1}, base),
		Derive("rare_extract", []byte{2}, base),        // config differs
		Derive("cube_gen", []byte{1}, base),            // name differs
		Derive("rare_extract", []byte{1}, other),       // input differs
		Derive("rare_extract", []byte{1}, base, other), // input count differs
		Derive("rare_extract", nil, base),
	}
	seen := map[Fingerprint]int{}
	for i, fp := range fps {
		if fp.IsZero() {
			t.Errorf("fp %d is zero", i)
		}
		if j, dup := seen[fp]; dup {
			t.Errorf("fingerprints %d and %d collide", i, j)
		}
		seen[fp] = i
	}
	// Deterministic: same inputs, same fingerprint.
	if Derive("rare_extract", []byte{1}, base) != fps[0] {
		t.Error("Derive is not deterministic")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(3, 1<<20)
	fp := func(i byte) Fingerprint { return Hash([]byte{i}) }
	for i := byte(0); i < 4; i++ {
		c.Put(fp(i), []byte{i})
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if _, ok := c.Get(fp(0)); ok {
		t.Error("oldest entry should have been evicted")
	}
	for i := byte(1); i < 4; i++ {
		if _, ok := c.Get(fp(i)); !ok {
			t.Errorf("entry %d missing", i)
		}
	}
	// Touching 1 makes 2 the coldest.
	c.Get(fp(1))
	c.Put(fp(4), []byte{4})
	if _, ok := c.Get(fp(2)); ok {
		t.Error("LRU order not respected: 2 should have been evicted")
	}
	if _, ok := c.Get(fp(1)); !ok {
		t.Error("recently used entry 1 evicted")
	}

	// Byte-bound eviction always keeps the newest entry, even oversized.
	cb := NewCache(100, 8)
	cb.Put(fp(10), make([]byte, 100))
	if _, ok := cb.Get(fp(10)); !ok {
		t.Error("single oversized entry must stay resident")
	}
	cb.Put(fp(11), make([]byte, 100))
	if _, ok := cb.Get(fp(10)); ok {
		t.Error("byte bound not enforced")
	}

	// The zero fingerprint is refused.
	c.Put(Fingerprint{}, []byte{9})
	if _, ok := c.Get(Fingerprint{}); ok {
		t.Error("zero fingerprint stored")
	}
}

func TestCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	fp := Hash([]byte("payload-key"))
	payload := []byte("the artifact payload")

	c1 := NewCache(0, 0)
	if err := c1.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	c1.Put(fp, payload)

	// A fresh cache over the same dir sees the entry (disk round trip).
	c2 := NewCache(0, 0)
	if err := c2.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(fp)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("disk Get = %v, %v", got, ok)
	}
}

func TestCacheDiskCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	fp := Hash([]byte("poisoned"))
	c := NewCache(0, 0)
	if err := c.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	c.Put(fp, []byte("good bytes"))
	path := filepath.Join(dir, fp.String())

	// Flip a payload byte: the stored hash no longer matches.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := NewCache(0, 0)
	if err := fresh.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get(fp); ok {
		t.Fatal("corrupted entry served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupted entry not deleted")
	}

	// A file that is not an entry at all (bad magic / too short).
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get(fp); ok {
		t.Fatal("junk entry served")
	}
}

func TestDirCacheIdentity(t *testing.T) {
	dir := t.TempDir()
	a, err := DirCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DirCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("DirCache returned distinct instances for one directory")
	}
	if a.Dir() == "" {
		t.Error("DirCache instance has no disk tier")
	}
	other, err := DirCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if other == a {
		t.Error("distinct directories share an instance")
	}
}

func TestNetlistFingerprintDeterministic(t *testing.T) {
	// Structural identity only: fingerprinting the same netlist twice is
	// stable within a process (no wall-clock or map-order leakage). The
	// cross-construction property is exercised by the root cache tests.
	if Hash([]byte("x")) == Hash([]byte("y")) {
		t.Fatal("Hash collision on distinct inputs")
	}
	var zero Fingerprint
	if !zero.IsZero() {
		t.Error("zero fingerprint not IsZero")
	}
	if Hash(nil).IsZero() {
		t.Error("Hash(nil) must not be the zero fingerprint")
	}
}
