package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Enc builds the canonical binary encoding of an artifact. Integers are
// varint-encoded, floats are their IEEE-754 bit patterns, and every
// variable-length field is length-prefixed. The result depends only on
// the values written — never on map order or pointer identity — so
// equal artifacts encode to equal bytes, which is what makes the
// encodings fingerprintable.
type Enc struct{ b []byte }

// NewEnc returns an empty encoder.
func NewEnc() *Enc { return &Enc{} }

// Uvarint appends an unsigned varint.
func (e *Enc) Uvarint(x uint64) { e.b = binary.AppendUvarint(e.b, x) }

// Varint appends a zig-zag signed varint.
func (e *Enc) Varint(x int64) { e.b = binary.AppendVarint(e.b, x) }

// Int appends an int as a signed varint.
func (e *Enc) Int(x int) { e.Varint(int64(x)) }

// U8 appends one byte.
func (e *Enc) U8(x uint8) { e.b = append(e.b, x) }

// Bool appends a bool as one byte.
func (e *Enc) Bool(x bool) {
	if x {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 appends a float64 as its fixed 8-byte bit pattern.
func (e *Enc) F64(x float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(x))
}

// Bytes appends a length-prefixed byte slice.
func (e *Enc) Bytes(p []byte) {
	e.Uvarint(uint64(len(p)))
	e.b = append(e.b, p...)
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Words appends a length-prefixed []uint64 (fixed 8 bytes per word) —
// the bitset representation shared by cubes and adjacency rows.
func (e *Enc) Words(w []uint64) {
	e.Uvarint(uint64(len(w)))
	for _, x := range w {
		e.b = binary.LittleEndian.AppendUint64(e.b, x)
	}
}

// Finish returns the encoded bytes.
func (e *Enc) Finish() []byte { return e.b }

var errTruncated = errors.New("artifact: truncated encoding")

// Dec decodes an Enc-produced encoding with a sticky error: after the
// first malformed read every subsequent read returns a zero value, so
// decoders can be written straight-line and check Err (or Finish) once.
// Length prefixes are validated against the remaining input before any
// allocation, so a corrupted length cannot cause huge allocations.
type Dec struct {
	b   []byte
	err error
}

// NewDec returns a decoder over data.
func NewDec(data []byte) *Dec { return &Dec{b: data} }

func (d *Dec) fail() {
	if d.err == nil {
		d.err = errTruncated
	}
}

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return x
}

// Varint reads a zig-zag signed varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return x
}

// Int reads a signed varint as an int.
func (d *Dec) Int() int { return int(d.Varint()) }

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	x := d.b[0]
	d.b = d.b[1:]
	return x
}

// Bool reads a one-byte bool.
func (d *Dec) Bool() bool { return d.U8() != 0 }

// F64 reads a fixed 8-byte float64.
func (d *Dec) F64() float64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	x := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return math.Float64frombits(x)
}

// Bytes reads a length-prefixed byte slice (aliasing the input).
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return nil
	}
	out := d.b[:n:n]
	d.b = d.b[n:]
	return out
}

// String reads a length-prefixed string.
func (d *Dec) String() string { return string(d.Bytes()) }

// Words reads a length-prefixed []uint64.
func (d *Dec) Words() []uint64 {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)/8) {
		d.fail()
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(d.b)
		d.b = d.b[8:]
	}
	return out
}

// Err returns the first decoding error, if any.
func (d *Dec) Err() error { return d.err }

// Finish reports the first decoding error, or an error when input
// bytes remain unconsumed — a decode must account for every byte.
func (d *Dec) Finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("artifact: %d trailing bytes after decode", len(d.b))
	}
	return nil
}
