package artifact

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"cghti/internal/obs"
)

func fpN(i int) Fingerprint { return Hash([]byte(fmt.Sprintf("entry-%d", i))) }

func diskFiles(t *testing.T, dir string) int {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, de := range des {
		if !de.IsDir() {
			n++
		}
	}
	return n
}

// TestDiskEntryCap pins oldest-first eviction on the entry-count bound:
// the disk tier never exceeds its cap, the survivors are the most
// recently written entries, and each eviction is counted.
func TestDiskEntryCap(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(0, 0)
	c.SetDiskLimits(4, 0)
	if err := c.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	for i := 0; i < 10; i++ {
		c.PutCtx(ctx, fpN(i), []byte(fmt.Sprintf("payload-%d", i)))
	}
	if got := c.DiskLen(); got != 4 {
		t.Fatalf("disk entries = %d, want 4", got)
	}
	if got := diskFiles(t, dir); got != 4 {
		t.Fatalf("files on disk = %d, want 4", got)
	}
	// Oldest-first: entries 0..5 evicted, 6..9 survive.
	for i := 0; i < 6; i++ {
		if _, err := os.Stat(filepath.Join(dir, fpN(i).String())); !os.IsNotExist(err) {
			t.Fatalf("entry %d should have been evicted", i)
		}
	}
	for i := 6; i < 10; i++ {
		if _, err := os.Stat(filepath.Join(dir, fpN(i).String())); err != nil {
			t.Fatalf("entry %d should have survived: %v", i, err)
		}
	}
	if got := reg.Counter("artifact.disk_evictions").Value(); got != 6 {
		t.Fatalf("disk_evictions = %d, want 6", got)
	}
}

// TestDiskByteCap pins eviction on the byte bound, and that the most
// recent entry always survives even when it alone exceeds the bound.
func TestDiskByteCap(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(0, 0)
	c.SetDiskLimits(0, 256)
	if err := c.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0xA5}, 1024)
	c.Put(fpN(0), big)
	c.Put(fpN(1), big)
	if got := c.DiskLen(); got != 1 {
		t.Fatalf("disk entries = %d, want 1 (most recent oversized entry kept)", got)
	}
	if _, err := os.Stat(filepath.Join(dir, fpN(1).String())); err != nil {
		t.Fatalf("newest entry should survive: %v", err)
	}
	if got, want := c.DiskBytes(), int64(len(big)+entryHeaderLen); got != want {
		t.Fatalf("DiskBytes = %d, want %d", got, want)
	}
}

// TestAttachDirIndexesExisting pins that AttachDir picks up entries a
// previous process left behind — oldest-modified-first — and enforces
// the bounds immediately.
func TestAttachDirIndexesExisting(t *testing.T) {
	dir := t.TempDir()
	seed := NewCache(0, 0)
	if err := seed.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for i := 0; i < 6; i++ {
		seed.Put(fpN(i), []byte(fmt.Sprintf("old-%d", i)))
		// Spread mtimes so the scan's age ordering is deterministic.
		older := now.Add(time.Duration(i-10) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, fpN(i).String()), older, older); err != nil {
			t.Fatal(err)
		}
	}

	c := NewCache(0, 0)
	c.SetDiskLimits(3, 0)
	if err := c.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := c.DiskLen(); got != 3 {
		t.Fatalf("disk entries after attach = %d, want 3", got)
	}
	// The three most recently modified (3, 4, 5) survive.
	for i := 0; i < 3; i++ {
		if _, err := os.Stat(filepath.Join(dir, fpN(i).String())); !os.IsNotExist(err) {
			t.Fatalf("stale entry %d should have been evicted on attach", i)
		}
	}
	for i := 3; i < 6; i++ {
		if data, ok := c.Get(fpN(i)); !ok || string(data) != fmt.Sprintf("old-%d", i) {
			t.Fatalf("surviving entry %d unreadable after attach", i)
		}
	}
}

// TestAttachDirEqualMtimeDeterministic pins the scan tiebreak: when a
// whole batch of entries shares one mtime (coarse filesystem
// timestamps), eviction order falls back to fingerprint order, so every
// restart of the same directory evicts the same entries — not whatever
// ReadDir happened to enumerate first.
func TestAttachDirEqualMtimeDeterministic(t *testing.T) {
	dir := t.TempDir()
	seed := NewCache(0, 0)
	if err := seed.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	const n = 8
	fps := make([]Fingerprint, n)
	when := time.Now().Add(-time.Hour)
	for i := 0; i < n; i++ {
		fps[i] = fpN(i)
		seed.Put(fps[i], []byte(fmt.Sprintf("tied-%d", i)))
		if err := os.Chtimes(filepath.Join(dir, fps[i].String()), when, when); err != nil {
			t.Fatal(err)
		}
	}
	// With all mtimes equal, ascending-fingerprint order decides age:
	// the lexicographically smallest fingerprints rank oldest and are
	// evicted first.
	sort.Slice(fps, func(a, b int) bool { return bytes.Compare(fps[a][:], fps[b][:]) < 0 })

	survivors := func() []string {
		c := NewCache(0, 0)
		c.SetDiskLimits(3, 0)
		if err := c.AttachDir(dir); err != nil {
			t.Fatal(err)
		}
		des, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, de := range des {
			names = append(names, de.Name())
		}
		sort.Strings(names)
		return names
	}

	first := survivors()
	if len(first) != 3 {
		t.Fatalf("%d survivors, want 3", len(first))
	}
	for i, fp := range fps[n-3:] {
		if first[i] != fp.String() {
			t.Fatalf("survivor %d = %s, want the lexicographically largest fingerprints %s", i, first[i], fp)
		}
	}
	// Re-attaching what's left must be a no-op set-wise: same survivors.
	second := survivors()
	if len(second) != len(first) {
		t.Fatalf("second attach changed survivor count: %d vs %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("eviction not stable across restarts: %v vs %v", first, second)
		}
	}
}

// TestCorruptEntryDropsFromIndex pins that a corrupt disk read removes
// the entry from the index (so its size stops counting toward the
// bound) as well as from disk.
func TestCorruptEntryDropsFromIndex(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(0, 0)
	if err := c.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	c.Put(fpN(0), []byte("payload"))
	before := c.DiskLen()
	if err := os.WriteFile(filepath.Join(dir, fpN(0).String()), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Fresh cache over the same dir so the memory tier cannot answer.
	c2 := NewCache(0, 0)
	if err := c2.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	if _, ok := c2.GetCtx(ctx, fpN(0)); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if got := reg.Counter("artifact.disk_corrupt").Value(); got != 1 {
		t.Fatalf("disk_corrupt = %d, want 1", got)
	}
	if got := c2.DiskLen(); got != 0 {
		t.Fatalf("disk index len = %d, want 0 after corrupt drop", got)
	}
	if before != 1 {
		t.Fatalf("setup: disk index len = %d, want 1", before)
	}
}

// TestSetDiskLimitsEnforcesRetroactively pins that tightening the
// bounds after entries exist evicts immediately.
func TestSetDiskLimitsEnforcesRetroactively(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(0, 0)
	if err := c.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		c.Put(fpN(i), []byte(fmt.Sprintf("payload-%d", i)))
	}
	c.SetDiskLimits(2, 0)
	if got := c.DiskLen(); got != 2 {
		t.Fatalf("disk entries = %d, want 2 after tightening", got)
	}
	if got := diskFiles(t, dir); got != 2 {
		t.Fatalf("files on disk = %d, want 2 after tightening", got)
	}
}
