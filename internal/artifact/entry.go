package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// Entry framing (v2): 4-byte magic, 8-byte LE payload length, sha256 of
// the payload, payload. The hash makes every read self-verifying —
// fingerprints address the *inputs* that produced an artifact, the
// stored hash attests the artifact bytes themselves survived the round
// trip — and the explicit length distinguishes a torn entry (shorter
// than declared: power loss mid-write, or a peer connection cut
// mid-body) from bit corruption (full length, wrong hash), so the two
// failure modes are counted separately.
//
// The same framing is both the on-disk entry format of the disk tier
// and the wire format of the remote tier's peer protocol
// (GET/PUT /v1/artifacts/{fingerprint}): a peer response is verified by
// exactly the rules a local disk read is — verify before trust, with no
// second format to keep in sync. v1 entries (no length field) written
// by older processes still decode.
var (
	diskMagic   = [4]byte{'C', 'G', 'A', '2'}
	diskMagicV1 = [4]byte{'C', 'G', 'A', '1'}
)

// entryHeaderLen is the v2 entry header: magic + length + sha256.
const entryHeaderLen = 4 + 8 + sha256.Size

// MaxEntryWireBytes bounds one framed entry on the peer protocol, both
// serving and fetching: a corrupt or malicious peer must not be able to
// balloon a reader's memory with a fake length.
const MaxEntryWireBytes = 64 << 20

// Entry decode failures, distinguished so callers can count torn
// (truncated) entries separately from corrupt (wrong-byte) ones.
var (
	// ErrEntryTorn marks an entry shorter than its declared length — a
	// crashed write or a peer response cut short.
	ErrEntryTorn = errors.New("artifact: torn entry")
	// ErrEntryCorrupt marks an entry whose bytes fail verification — a
	// bad magic, extra bytes, or a payload that no longer matches its
	// stored hash.
	ErrEntryCorrupt = errors.New("artifact: corrupt entry")
)

// EncodeEntry frames payload in the v2 entry format (magic, length,
// payload hash, payload) — the bytes DecodeEntry verifies and accepts.
func EncodeEntry(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	buf := make([]byte, 0, entryHeaderLen+len(payload))
	buf = append(buf, diskMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, sum[:]...)
	buf = append(buf, payload...)
	return buf
}

// DecodeEntry parses and verifies one framed entry (v2 or legacy v1),
// returning the payload. The payload aliases raw. Failures are
// ErrEntryTorn (truncated relative to the declared length) or
// ErrEntryCorrupt (full length but wrong bytes) — a caller must treat
// either as "this entry does not exist", never trust the bytes.
func DecodeEntry(raw []byte) ([]byte, error) {
	if len(raw) < len(diskMagic) {
		return nil, ErrEntryTorn
	}
	switch [4]byte(raw[:4]) {
	case diskMagic: // v2: length field present
		if len(raw) < entryHeaderLen {
			return nil, ErrEntryTorn
		}
		want := binary.LittleEndian.Uint64(raw[4:12])
		payload := raw[entryHeaderLen:]
		if uint64(len(payload)) < want {
			return nil, ErrEntryTorn
		}
		if uint64(len(payload)) > want || sha256.Sum256(payload) != [sha256.Size]byte(raw[12:entryHeaderLen]) {
			return nil, ErrEntryCorrupt
		}
		return payload, nil
	case diskMagicV1: // v1: no length, truncation and corruption are indistinguishable
		const header = 4 + sha256.Size
		if len(raw) < header {
			return nil, ErrEntryTorn
		}
		payload := raw[header:]
		if sha256.Sum256(payload) != [sha256.Size]byte(raw[4:header]) {
			return nil, ErrEntryCorrupt
		}
		return payload, nil
	}
	return nil, ErrEntryCorrupt
}
