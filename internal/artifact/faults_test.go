package artifact

import (
	"context"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cghti/internal/iofault"
	"cghti/internal/obs"
)

// TestTornEntryCounted pins the torn/corrupt distinction: a truncated
// entry (crash mid-write) increments artifact.disk_torn — not
// disk_corrupt — and is dropped from index and disk.
func TestTornEntryCounted(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(0, 0)
	if err := c.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	c.Put(fpN(0), []byte("a payload long enough to truncate meaningfully"))
	path := filepath.Join(dir, fpN(0).String())
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-payload: header intact, declared length unmet.
	if err := os.WriteFile(path, full[:len(full)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := NewCache(0, 0)
	if err := c2.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	if _, ok := c2.GetCtx(ctx, fpN(0)); ok {
		t.Fatal("torn entry served as a hit")
	}
	if got := reg.Counter("artifact.disk_torn").Value(); got != 1 {
		t.Fatalf("disk_torn = %d, want 1", got)
	}
	if got := reg.Counter("artifact.disk_corrupt").Value(); got != 0 {
		t.Fatalf("disk_corrupt = %d, want 0 (truncation is torn, not corrupt)", got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("torn entry should be unlinked")
	}
	if got := c2.DiskLen(); got != 0 {
		t.Fatalf("disk index len = %d, want 0", got)
	}
}

// TestTornWriteNeverServesPartial drives a torn write through the
// iofault seam: the crash-shaped temp file must never become a
// servable entry (the rename is what publishes), and a later process
// reads nothing rather than garbage.
func TestTornWriteNeverServesPartial(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(0, 0)
	// Tear every .tmp write 10 bytes in: writeEntry's retries all fail.
	c.SetFS(iofault.NewFaulty(iofault.OS(),
		iofault.Spec{Op: iofault.OpWrite, Path: ".tmp", Kind: iofault.KindTorn, K: 10},
	))
	if err := c.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	c.Put(fpN(0), []byte("this payload will be torn during the write"))

	// Nothing published: a fresh cache over the dir sees no entry.
	c2 := NewCache(0, 0)
	if err := c2.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(fpN(0)); ok {
		t.Fatal("torn write published a servable entry")
	}
	if got := c2.DiskLen(); got != 0 {
		t.Fatalf("disk index len = %d, want 0", got)
	}
}

// TestWriteRetriesTransientFault pins the retry wrapper: a single
// transient write error is retried (counted in artifact.io_retries) and
// the entry still lands durably.
func TestWriteRetriesTransientFault(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(0, 0)
	boom := errors.New("transient device error")
	c.SetFS(iofault.NewFaulty(iofault.OS(),
		iofault.Spec{Op: iofault.OpWrite, Path: ".tmp", Kind: iofault.KindErr, Err: boom, OnHit: 1},
	))
	if err := c.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	c.PutCtx(ctx, fpN(0), []byte("retried payload"))

	if got := reg.Counter("artifact.io_retries").Value(); got < 1 {
		t.Fatalf("io_retries = %d, want >= 1", got)
	}
	// The entry is fully readable by a successor process.
	c2 := NewCache(0, 0)
	if err := c2.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	if data, ok := c2.Get(fpN(0)); !ok || string(data) != "retried payload" {
		t.Fatalf("entry after retried write = %q, %v", data, ok)
	}
}

// TestV1EntryStillReadable pins the format migration: a legacy CGA1
// entry (magic + sha256 + payload, no length) reads back under the v2
// store.
func TestV1EntryStillReadable(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("legacy-format payload")
	sum := sha256.Sum256(payload)
	v1 := make([]byte, 0, 4+sha256.Size+len(payload))
	v1 = append(v1, diskMagicV1[:]...)
	v1 = append(v1, sum[:]...)
	v1 = append(v1, payload...)
	if err := os.WriteFile(filepath.Join(dir, fpN(0).String()), v1, 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCache(0, 0)
	if err := c.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	if data, ok := c.Get(fpN(0)); !ok || string(data) != string(payload) {
		t.Fatalf("v1 entry read = %q, %v", data, ok)
	}
}
