// Package artifact gives the pipeline's intermediate results — rare
// sets, compatibility graphs, clique lists — a stable binary form and a
// content-addressed store, so repeated runs over the same netlist and
// configuration reuse upstream stages instead of recomputing them.
//
// Identity is structural: a stage output's Fingerprint is derived from
// the canonical netlist bytes, the slice of configuration the stage
// actually reads, and the fingerprints of its upstream artifacts
// (Derive). Anything that can change the bytes of an output changes its
// fingerprint; anything that provably cannot — worker counts, progress
// sinks, wall-clock — is excluded, preserving the determinism contract
// (identical output for any worker count).
package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"cghti/internal/bench"
	"cghti/internal/netlist"
)

// Fingerprint is a 256-bit content address.
type Fingerprint [32]byte

// String renders the fingerprint as lowercase hex — also the on-disk
// entry file name.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// IsZero reports whether f is the zero fingerprint, which carries no
// identity: the cache refuses to store under it.
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// ParseFingerprint decodes the lowercase-hex form produced by String —
// the shape fingerprints take in entry file names and peer-protocol
// URLs. Anything that is not exactly 64 hex digits is rejected.
func ParseFingerprint(s string) (Fingerprint, error) {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return Fingerprint{}, fmt.Errorf("artifact: bad fingerprint %q: %w", s, err)
	}
	if len(raw) != len(Fingerprint{}) {
		return Fingerprint{}, fmt.Errorf("artifact: bad fingerprint %q: got %d bytes, want %d", s, len(raw), len(Fingerprint{}))
	}
	var f Fingerprint
	copy(f[:], raw)
	return f, nil
}

// Hash fingerprints raw bytes directly — used to key standalone helpers
// on the content of an already-encoded artifact.
func Hash(data []byte) Fingerprint { return sha256.Sum256(data) }

// Derive computes a stage output's fingerprint from the stage name, the
// configuration slice the stage reads, and its input fingerprints.
// Every component is length-framed before hashing, so distinct
// (name, config, inputs) tuples cannot collide by concatenation.
func Derive(name string, config []byte, inputs ...Fingerprint) Fingerprint {
	h := sha256.New()
	var frame [8]byte
	writeFramed := func(b []byte) {
		binary.LittleEndian.PutUint64(frame[:], uint64(len(b)))
		h.Write(frame[:])
		h.Write(b)
	}
	writeFramed([]byte(name))
	writeFramed(config)
	for _, in := range inputs {
		writeFramed(in[:])
	}
	var f Fingerprint
	h.Sum(f[:0])
	return f
}

// NetlistFingerprint is the content identity of a netlist: the hash of
// its canonical .bench serialization (topologically ordered), so two
// structurally identical netlists fingerprint equally regardless of how
// they were built. A netlist that cannot be serialized gets the zero
// fingerprint, which disables caching rather than risking a collision.
func NetlistFingerprint(n *netlist.Netlist) Fingerprint {
	var buf bytes.Buffer
	if err := bench.Write(&buf, n); err != nil {
		return Fingerprint{}
	}
	return Hash(buf.Bytes())
}
