package artifact

import (
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"strings"
	"sync"
	"time"

	"cghti/internal/iofault"
)

// DefaultRemoteTimeout bounds one peer request end to end (dial,
// headers, body). The remote tier is an optimization over recompute, so
// a slow peer must cost strictly less than the work it would save.
const DefaultRemoteTimeout = 2 * time.Second

// defaultRemoteRetry mirrors the disk tier's policy: transient
// transport errors get two more tries with jittered backoff, permanent
// ones (the peer answered 404 — the entry does not exist there) fail
// immediately via iofault.Permanent.
var defaultRemoteRetry = iofault.RetryPolicy{Attempts: 3, Base: 10 * time.Millisecond, Jitter: 0.5}

// RemoteOptions configures NewRemote; zero values take the defaults
// above.
type RemoteOptions struct {
	// Timeout bounds one peer HTTP request (DefaultRemoteTimeout when
	// non-positive).
	Timeout time.Duration
	// Retry overrides the per-peer retry policy.
	Retry *iofault.RetryPolicy
	// Client overrides the HTTP client (tests). Timeout is ignored when
	// set.
	Client *http.Client
}

// Remote is the cache's peer-fetch tier: on a local miss it asks each
// configured peer for the entry over GET /v1/artifacts/{fingerprint},
// in order, until one returns a verifiable body. Responses are framed
// exactly like disk entries (EncodeEntry) and verified by the same
// rules — a torn or wrong-hash body is rejected and counted in
// artifact.remote_rejects, never trusted. Concurrent fetches of the
// same fingerprint collapse to one request (singleflight), so a
// thundering herd of jobs missing on the same artifact costs one peer
// round trip.
type Remote struct {
	peers  []string // normalized base URLs, e.g. "http://127.0.0.1:7070"
	client *http.Client
	retry  iofault.RetryPolicy

	mu       sync.Mutex
	inflight map[Fingerprint]*remoteFlight
}

type remoteFlight struct {
	done chan struct{}
	data []byte
	ok   bool
}

// NewRemote builds a remote tier over the given peer addresses
// (host:port or full http:// URLs; empty entries are dropped). Returns
// nil when no peers remain — callers can pass the result straight to
// Cache.SetRemote.
func NewRemote(peers []string, opts RemoteOptions) *Remote {
	var bases []string
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		bases = append(bases, strings.TrimRight(p, "/"))
	}
	if len(bases) == 0 {
		return nil
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = DefaultRemoteTimeout
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: timeout}
	}
	retry := defaultRemoteRetry
	if opts.Retry != nil {
		retry = *opts.Retry
	}
	return &Remote{
		peers:    bases,
		client:   client,
		retry:    retry,
		inflight: make(map[Fingerprint]*remoteFlight),
	}
}

// Peers returns the normalized peer base URLs (for health reporting).
func (r *Remote) Peers() []string { return append([]string(nil), r.peers...) }

// fetch resolves fp against the peers, deduplicating concurrent calls
// per fingerprint: the first caller becomes the leader and performs the
// network I/O (attributing metrics to its registry); followers block on
// the leader's result. The fetch duration — including a follower's
// wait — lands in artifact.remote_get_time.
func (r *Remote) fetch(fp Fingerprint, met *meters) ([]byte, bool) {
	start := time.Now()
	defer func() { met.remoteGetTime.Observe(time.Since(start)) }()

	r.mu.Lock()
	if fl, ok := r.inflight[fp]; ok {
		r.mu.Unlock()
		<-fl.done
		return fl.data, fl.ok
	}
	fl := &remoteFlight{done: make(chan struct{})}
	r.inflight[fp] = fl
	r.mu.Unlock()

	fl.data, fl.ok = r.fetchOnce(fp, met)

	r.mu.Lock()
	delete(r.inflight, fp)
	r.mu.Unlock()
	close(fl.done)
	return fl.data, fl.ok
}

// fetchOnce tries each peer in order with the retry policy. Every call
// that ends without a verified payload counts one remote_miss; bodies
// that arrived but failed verification additionally count one
// remote_reject per bad body, so "peer unreachable" and "peer returned
// garbage" are distinguishable on a dashboard.
func (r *Remote) fetchOnce(fp Fingerprint, met *meters) ([]byte, bool) {
	for _, peer := range r.peers {
		var payload []byte
		_, err := r.retry.Do(func() error {
			raw, gerr := r.getPeer(peer, fp)
			if gerr != nil {
				return gerr
			}
			// Verify by exactly the disk tier's rules: the framed hash
			// attests the payload bytes survived the wire. (The
			// fingerprint itself addresses the *inputs* that produced
			// the artifact, so it cannot double-check the payload.)
			p, derr := DecodeEntry(raw)
			if derr != nil {
				met.remoteRejects.Inc()
				// A bad body is worth one more try — the connection may
				// have been cut mid-transfer — but never worth trusting.
				return derr
			}
			payload = p
			return nil
		})
		if err == nil {
			met.remoteHits.Inc()
			return payload, true
		}
	}
	met.remoteMisses.Inc()
	return nil, false
}

// getPeer performs one GET against one peer, returning the raw framed
// body. A 404 wraps fs.ErrNotExist so iofault.Permanent short-circuits
// the retry loop — the peer answered authoritatively; asking again
// immediately cannot help.
func (r *Remote) getPeer(peer string, fp Fingerprint) ([]byte, error) {
	resp, err := r.client.Get(peer + "/v1/artifacts/" + fp.String())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("artifact: peer %s: %w", peer, fs.ErrNotExist)
	case resp.StatusCode != http.StatusOK:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("artifact: peer %s: unexpected status %d", peer, resp.StatusCode)
	}
	// +1 over the cap distinguishes "exactly at the bound" from
	// "oversized": a body that still has bytes left past the limit is
	// rejected rather than silently truncated into a torn-entry miss.
	raw, err := io.ReadAll(io.LimitReader(resp.Body, MaxEntryWireBytes+1))
	if err != nil {
		return nil, err
	}
	if len(raw) > MaxEntryWireBytes {
		return nil, fmt.Errorf("artifact: peer %s: entry exceeds %d-byte wire bound", peer, MaxEntryWireBytes)
	}
	return raw, nil
}
