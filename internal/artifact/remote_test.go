package artifact

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cghti/internal/iofault"
	"cghti/internal/obs"
)

// noRetry keeps the per-failure metric counts deterministic in tests:
// one attempt per peer, so one bad body = one reject.
var noRetry = iofault.RetryPolicy{Attempts: 1}

// peerServer runs an httptest peer whose GET /v1/artifacts/{fp}
// response bytes come from serve. It returns the server and a request
// counter.
func peerServer(t *testing.T, serve func(fp string) ([]byte, int)) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var reqs atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Add(1)
		fp := strings.TrimPrefix(r.URL.Path, "/v1/artifacts/")
		body, code := serve(fp)
		w.WriteHeader(code)
		w.Write(body)
	}))
	t.Cleanup(srv.Close)
	return srv, &reqs
}

func scopedCtx(t *testing.T) (context.Context, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	return obs.WithRegistry(context.Background(), reg), reg
}

// TestRemoteTierFetchAndWriteThrough pins the happy path: a local miss
// is answered by a peer, the verified payload is installed in the
// memory tier and written through to the disk tier, and the hit is
// counted as both a cache hit and a remote hit.
func TestRemoteTierFetchAndWriteThrough(t *testing.T) {
	payload := []byte("compat-graph-bytes")
	fp := Hash([]byte("some-stage-inputs"))
	srv, reqs := peerServer(t, func(got string) ([]byte, int) {
		if got != fp.String() {
			return nil, http.StatusNotFound
		}
		return EncodeEntry(payload), http.StatusOK
	})

	dir := t.TempDir()
	c := NewCache(0, 0)
	if err := c.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	c.SetRemote(NewRemote([]string{srv.URL}, RemoteOptions{Retry: &noRetry}))

	ctx, reg := scopedCtx(t)
	data, ok := c.GetCtx(ctx, fp)
	if !ok || string(data) != string(payload) {
		t.Fatalf("remote get = %q, %v; want payload hit", data, ok)
	}
	if got := reg.Counter("artifact.remote_hits").Value(); got != 1 {
		t.Fatalf("remote_hits = %d, want 1", got)
	}
	if got := reg.Counter("artifact.cache_hits").Value(); got != 1 {
		t.Fatalf("cache_hits = %d, want 1", got)
	}
	if got := reg.Counter("artifact.remote_rejects").Value(); got != 0 {
		t.Fatalf("remote_rejects = %d, want 0", got)
	}
	if reg.Histogram("artifact.remote_get_time").Snapshot().Count != 1 {
		t.Fatal("remote_get_time not observed")
	}

	// Write-through: the entry is now on local disk...
	if _, err := os.Stat(filepath.Join(dir, fp.String())); err != nil {
		t.Fatalf("fetched entry not written through to disk: %v", err)
	}
	// ...and a second lookup is a memory hit, no new peer request.
	before := reqs.Load()
	if _, ok := c.Get(fp); !ok {
		t.Fatal("second get missed")
	}
	if reqs.Load() != before {
		t.Fatal("second get hit the peer instead of the local tiers")
	}
}

// TestRemoteTierPeerDown pins degradation when the peer is unreachable:
// the lookup is a plain miss (the caller recomputes), counted as a
// remote miss but NOT a reject — nothing arrived to reject.
func TestRemoteTierPeerDown(t *testing.T) {
	// Grab a loopback port and close it so the address refuses.
	srv := httptest.NewServer(http.NotFoundHandler())
	dead := srv.URL
	srv.Close()

	c := NewCache(0, 0)
	c.SetRemote(NewRemote([]string{dead}, RemoteOptions{Retry: &noRetry}))
	ctx, reg := scopedCtx(t)
	if _, ok := c.GetCtx(ctx, Hash([]byte("x"))); ok {
		t.Fatal("dead peer produced a hit")
	}
	if got := reg.Counter("artifact.remote_misses").Value(); got != 1 {
		t.Fatalf("remote_misses = %d, want 1", got)
	}
	if got := reg.Counter("artifact.remote_rejects").Value(); got != 0 {
		t.Fatalf("remote_rejects = %d, want 0 (nothing arrived)", got)
	}
	if got := reg.Counter("artifact.cache_misses").Value(); got != 1 {
		t.Fatalf("cache_misses = %d, want 1 (degrade to recompute)", got)
	}
}

// TestRemoteTierTornBody pins rejection of a response cut short
// relative to its declared length — the peer-protocol analogue of a
// crashed disk write: counted as a reject AND a miss, never served.
func TestRemoteTierTornBody(t *testing.T) {
	full := EncodeEntry([]byte("payload-that-gets-cut"))
	srv, _ := peerServer(t, func(string) ([]byte, int) {
		return full[:len(full)-5], http.StatusOK
	})
	c := NewCache(0, 0)
	c.SetRemote(NewRemote([]string{srv.URL}, RemoteOptions{Retry: &noRetry}))
	ctx, reg := scopedCtx(t)
	if _, ok := c.GetCtx(ctx, Hash([]byte("y"))); ok {
		t.Fatal("torn peer body served as a hit")
	}
	if got := reg.Counter("artifact.remote_rejects").Value(); got != 1 {
		t.Fatalf("remote_rejects = %d, want 1", got)
	}
	if got := reg.Counter("artifact.remote_misses").Value(); got != 1 {
		t.Fatalf("remote_misses = %d, want 1", got)
	}
}

// TestRemoteTierWrongHashBody pins rejection of a full-length body
// whose payload no longer matches its framed hash — bit corruption or a
// lying peer. Verify-before-trust: reject, count, recompute.
func TestRemoteTierWrongHashBody(t *testing.T) {
	bad := EncodeEntry([]byte("honest-payload"))
	bad[len(bad)-1] ^= 0xFF // flip a payload bit, length intact
	srv, _ := peerServer(t, func(string) ([]byte, int) {
		return bad, http.StatusOK
	})
	c := NewCache(0, 0)
	c.SetRemote(NewRemote([]string{srv.URL}, RemoteOptions{Retry: &noRetry}))
	ctx, reg := scopedCtx(t)
	if _, ok := c.GetCtx(ctx, Hash([]byte("z"))); ok {
		t.Fatal("wrong-hash peer body served as a hit")
	}
	if got := reg.Counter("artifact.remote_rejects").Value(); got != 1 {
		t.Fatalf("remote_rejects = %d, want 1", got)
	}
	if got := reg.Counter("artifact.remote_misses").Value(); got != 1 {
		t.Fatalf("remote_misses = %d, want 1", got)
	}
}

// TestRemoteTierSlowPeerTimesOut pins the bounded-timeout rule: a peer
// slower than the configured timeout is a miss (not a hang, not a
// reject) and the lookup degrades to local recompute.
func TestRemoteTierSlowPeerTimesOut(t *testing.T) {
	release := make(chan struct{})
	srv, _ := peerServer(t, func(string) ([]byte, int) {
		<-release
		return nil, http.StatusNotFound
	})
	// Registered after peerServer so it runs before srv.Close (cleanups
	// are LIFO): Close waits for the parked handler, which waits on
	// release.
	t.Cleanup(func() { close(release) })
	c := NewCache(0, 0)
	c.SetRemote(NewRemote([]string{srv.URL}, RemoteOptions{
		Timeout: 50 * time.Millisecond,
		Retry:   &noRetry,
	}))
	ctx, reg := scopedCtx(t)
	start := time.Now()
	if _, ok := c.GetCtx(ctx, Hash([]byte("slow"))); ok {
		t.Fatal("slow peer produced a hit")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout not bounded: lookup took %v", elapsed)
	}
	if got := reg.Counter("artifact.remote_misses").Value(); got != 1 {
		t.Fatalf("remote_misses = %d, want 1", got)
	}
	if got := reg.Counter("artifact.remote_rejects").Value(); got != 0 {
		t.Fatalf("remote_rejects = %d, want 0", got)
	}
}

// TestRemoteTier404IsPermanent pins the retry short-circuit: a peer
// that answers 404 answered authoritatively, so even a multi-attempt
// retry policy asks exactly once.
func TestRemoteTier404IsPermanent(t *testing.T) {
	srv, reqs := peerServer(t, func(string) ([]byte, int) {
		return nil, http.StatusNotFound
	})
	c := NewCache(0, 0)
	retry := iofault.RetryPolicy{Attempts: 5}
	c.SetRemote(NewRemote([]string{srv.URL}, RemoteOptions{Retry: &retry}))
	ctx, reg := scopedCtx(t)
	if _, ok := c.GetCtx(ctx, Hash([]byte("absent"))); ok {
		t.Fatal("404 produced a hit")
	}
	if got := reqs.Load(); got != 1 {
		t.Fatalf("peer saw %d requests, want 1 (404 is permanent)", got)
	}
	if got := reg.Counter("artifact.remote_misses").Value(); got != 1 {
		t.Fatalf("remote_misses = %d, want 1", got)
	}
}

// TestRemoteTierRetriesTransient pins the opposite: a transport-level
// flake (here: a non-404 error status) is retried up to the policy
// bound.
func TestRemoteTierRetriesTransient(t *testing.T) {
	payload := []byte("eventually-served")
	var n atomic.Int64
	srv, reqs := peerServer(t, func(string) ([]byte, int) {
		if n.Add(1) < 3 {
			return nil, http.StatusInternalServerError
		}
		return EncodeEntry(payload), http.StatusOK
	})
	c := NewCache(0, 0)
	retry := iofault.RetryPolicy{Attempts: 3, Base: time.Millisecond}
	c.SetRemote(NewRemote([]string{srv.URL}, RemoteOptions{Retry: &retry}))
	ctx, reg := scopedCtx(t)
	data, ok := c.GetCtx(ctx, Hash([]byte("flaky")))
	if !ok || string(data) != string(payload) {
		t.Fatalf("get = %q, %v; want hit after retries", data, ok)
	}
	if got := reqs.Load(); got != 3 {
		t.Fatalf("peer saw %d requests, want 3", got)
	}
	if got := reg.Counter("artifact.remote_hits").Value(); got != 1 {
		t.Fatalf("remote_hits = %d, want 1", got)
	}
}

// TestRemoteTierSecondPeerAnswers pins peer fallthrough: when the
// first peer lacks the entry, the second is asked.
func TestRemoteTierSecondPeerAnswers(t *testing.T) {
	payload := []byte("on-the-second-peer")
	empty, _ := peerServer(t, func(string) ([]byte, int) { return nil, http.StatusNotFound })
	warm, _ := peerServer(t, func(string) ([]byte, int) { return EncodeEntry(payload), http.StatusOK })
	c := NewCache(0, 0)
	c.SetRemote(NewRemote([]string{empty.URL, warm.URL}, RemoteOptions{Retry: &noRetry}))
	data, ok := c.Get(Hash([]byte("roam")))
	if !ok || string(data) != string(payload) {
		t.Fatalf("get = %q, %v; want hit from second peer", data, ok)
	}
}

// TestRemoteTierSingleflight pins the thundering-herd collapse:
// concurrent fetches of one fingerprint issue one peer request, and
// every caller gets the payload.
func TestRemoteTierSingleflight(t *testing.T) {
	payload := []byte("fetched-once")
	arrived := make(chan struct{}, 1)
	release := make(chan struct{})
	srv, reqs := peerServer(t, func(string) ([]byte, int) {
		select {
		case arrived <- struct{}{}:
		default:
		}
		<-release
		return EncodeEntry(payload), http.StatusOK
	})
	r := NewRemote([]string{srv.URL}, RemoteOptions{Retry: &noRetry})
	met := newMeters(obs.NewRegistry())
	fp := Hash([]byte("herd"))

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		if data, ok := r.fetch(fp, met); !ok || string(data) != string(payload) {
			t.Errorf("leader fetch = %q, %v", data, ok)
		}
	}()
	<-arrived // leader's request is in flight and will hold until release

	const followers = 4
	var wg sync.WaitGroup
	started := make(chan struct{}, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			if data, ok := r.fetch(fp, met); !ok || string(data) != string(payload) {
				t.Errorf("follower fetch = %q, %v", data, ok)
			}
		}()
	}
	for i := 0; i < followers; i++ {
		<-started
	}
	// Give the followers a beat to reach the inflight map before the
	// leader's flight resolves.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	<-leaderDone

	if got := reqs.Load(); got != 1 {
		t.Fatalf("peer saw %d requests, want 1 (singleflight)", got)
	}
	if got := met.remoteHits.Value(); got != 1 {
		t.Fatalf("remote_hits = %d, want 1 (leader attributes the fetch)", got)
	}
}

// TestRemoteTierGetLocalNeverFetches pins the recursion guard the peer
// endpoint relies on: GetLocal consults memory and disk only, so one
// node's miss cannot ripple around the fleet.
func TestRemoteTierGetLocalNeverFetches(t *testing.T) {
	srv, reqs := peerServer(t, func(string) ([]byte, int) {
		return EncodeEntry([]byte("should-not-be-asked")), http.StatusOK
	})
	c := NewCache(0, 0)
	c.SetRemote(NewRemote([]string{srv.URL}, RemoteOptions{Retry: &noRetry}))
	if _, ok := c.GetLocal(Hash([]byte("local-only"))); ok {
		t.Fatal("GetLocal hit without local data")
	}
	if got := reqs.Load(); got != 0 {
		t.Fatalf("GetLocal issued %d peer requests, want 0", got)
	}
}

// TestNewRemoteNormalization pins address handling: bare host:port
// gains http://, blanks drop, and an all-blank list yields nil (no
// remote tier).
func TestNewRemoteNormalization(t *testing.T) {
	r := NewRemote([]string{" 127.0.0.1:7070 ", "", "http://peer:8080/"}, RemoteOptions{})
	if r == nil {
		t.Fatal("NewRemote returned nil for a non-empty peer list")
	}
	want := []string{"http://127.0.0.1:7070", "http://peer:8080"}
	got := r.Peers()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("peers = %v, want %v", got, want)
	}
	if NewRemote([]string{"", "  "}, RemoteOptions{}) != nil {
		t.Fatal("NewRemote of blanks should be nil")
	}
}

// TestParseFingerprint pins the round trip and the rejection shapes.
func TestParseFingerprint(t *testing.T) {
	fp := Hash([]byte("round-trip"))
	got, err := ParseFingerprint(fp.String())
	if err != nil || got != fp {
		t.Fatalf("ParseFingerprint(String()) = %v, %v; want identity", got, err)
	}
	for _, bad := range []string{"", "zz", "abcd", strings.Repeat("g", 64), fp.String() + "00"} {
		if _, err := ParseFingerprint(bad); err == nil {
			t.Fatalf("ParseFingerprint(%q) accepted", bad)
		}
	}
}
