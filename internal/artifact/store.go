package artifact

import (
	"bytes"
	"container/list"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cghti/internal/iofault"
	"cghti/internal/obs"
)

// meters holds the cache's metric handles, resolved per call from the
// context registry (GetCtx/PutCtx) so concurrent runs sharing one cache
// attribute their own hits and misses; the ctx-less Get/Put record into
// the process default.
type meters struct {
	hits          *obs.Counter
	misses        *obs.Counter
	diskHits      *obs.Counter
	puts          *obs.Counter
	evictions     *obs.Counter
	corrupt       *obs.Counter
	diskTorn      *obs.Counter
	ioRetries     *obs.Counter
	diskEvictions *obs.Counter
	remoteHits    *obs.Counter
	remoteMisses  *obs.Counter
	remoteRejects *obs.Counter
	getTime       *obs.Histogram
	remoteGetTime *obs.Histogram
}

func metersFor(r *obs.Registry) *meters {
	if r == nil || r == obs.Default() {
		return defaultMeters
	}
	return newMeters(r)
}

func metersCtx(ctx context.Context) *meters { return metersFor(obs.FromContext(ctx)) }

func newMeters(r *obs.Registry) *meters {
	return &meters{
		hits:          r.Counter("artifact.cache_hits"),
		misses:        r.Counter("artifact.cache_misses"),
		diskHits:      r.Counter("artifact.disk_hits"),
		puts:          r.Counter("artifact.cache_puts"),
		evictions:     r.Counter("artifact.cache_evictions"),
		corrupt:       r.Counter("artifact.disk_corrupt"),
		diskTorn:      r.Counter("artifact.disk_torn"),
		ioRetries:     r.Counter("artifact.io_retries"),
		diskEvictions: r.Counter("artifact.disk_evictions"),
		remoteHits:    r.Counter("artifact.remote_hits"),
		remoteMisses:  r.Counter("artifact.remote_misses"),
		remoteRejects: r.Counter("artifact.remote_rejects"),
		getTime:       r.Histogram("artifact.get_time"),
		remoteGetTime: r.Histogram("artifact.remote_get_time"),
	}
}

var defaultMeters = newMeters(obs.Default())

// Default memory-tier bounds applied when NewCache is given
// non-positive limits.
const (
	DefaultMaxEntries = 128
	DefaultMaxBytes   = 256 << 20
)

// Default disk-tier bounds applied when AttachDir is called without a
// preceding SetDiskLimits. Unlike the memory tier, the disk tier
// outlives the process, so an unbounded tier grows monotonically across
// runs until the filesystem fills.
const (
	DefaultDiskMaxEntries = 4096
	DefaultDiskMaxBytes   = 1 << 30
)

// Cache is a three-tier content-addressed artifact store. The memory
// tier is a bounded LRU (entry count and total payload bytes); the
// optional disk tier (AttachDir) persists entries across processes and
// is itself bounded (entry count and total file bytes) with
// oldest-written-first eviction; the optional remote tier (SetRemote)
// fetches entries other fleet nodes already computed over the peer
// protocol. Disk entries and peer responses carry a payload hash that
// is verified on every read: a corrupted, tampered, or torn entry is
// dropped and reported as a miss, never trusted. All methods are safe
// for concurrent use.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	lru        *list.List // front = most recently used
	entries    map[Fingerprint]*list.Element

	fs             iofault.FS // disk-tier filesystem seam
	dir            string
	diskMaxEntries int
	diskMaxBytes   int64
	diskBytes      int64
	diskOrder      *list.List // front = newest write, back = oldest
	diskIndex      map[Fingerprint]*list.Element

	remote *Remote // peer-fetch tier, consulted after a disk miss
}

type cacheEntry struct {
	fp   Fingerprint
	data []byte
}

type diskEntry struct {
	fp   Fingerprint
	size int64 // on-disk file size (header + payload)
}

// NewCache returns a memory-only cache bounded by maxEntries entries
// and maxBytes total payload bytes (defaults apply to non-positive
// values).
func NewCache(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxEntries:     maxEntries,
		maxBytes:       maxBytes,
		lru:            list.New(),
		entries:        make(map[Fingerprint]*list.Element),
		fs:             iofault.OS(),
		diskMaxEntries: DefaultDiskMaxEntries,
		diskMaxBytes:   DefaultDiskMaxBytes,
	}
}

// SetFS replaces the disk tier's filesystem (the real OS by default).
// A test seam: iofault.NewFaulty injects deterministic I/O failures
// under the disk tier without touching the real filesystem semantics.
func (c *Cache) SetFS(fsys iofault.FS) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fs = fsys
}

// SetDiskLimits bounds the disk tier to maxEntries entries and maxBytes
// total file bytes (non-positive values restore the defaults). When
// called after AttachDir the new bounds are enforced immediately.
func (c *Cache) SetDiskLimits(maxEntries int, maxBytes int64) {
	if maxEntries <= 0 {
		maxEntries = DefaultDiskMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultDiskMaxBytes
	}
	c.mu.Lock()
	c.diskMaxEntries = maxEntries
	c.diskMaxBytes = maxBytes
	doomed := c.evictDiskLocked(defaultMeters)
	fsys, dir := c.fs, c.dir
	c.mu.Unlock()
	removeEntries(fsys, dir, doomed)
}

// AttachDir adds the on-disk tier rooted at dir, creating it if needed.
// Pre-existing entries are indexed oldest-modified-first so eviction
// age carries across processes; entries beyond the disk bounds are
// evicted immediately.
func (c *Cache) AttachDir(dir string) error {
	c.mu.Lock()
	fsys := c.fs
	c.mu.Unlock()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	entries, err := scanDir(fsys, dir)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.dir = dir
	c.diskOrder = list.New()
	c.diskIndex = make(map[Fingerprint]*list.Element, len(entries))
	c.diskBytes = 0
	for _, e := range entries { // oldest first, so the back stays oldest
		c.diskOrder.PushFront(&diskEntry{fp: e.fp, size: e.size})
		c.diskIndex[e.fp] = c.diskOrder.Front()
		c.diskBytes += e.size
	}
	doomed := c.evictDiskLocked(defaultMeters)
	c.mu.Unlock()
	removeEntries(fsys, dir, doomed)
	return nil
}

// scanDir lists dir's valid-looking entry files sorted by ascending
// modification time, ties broken by fingerprint. The tiebreak matters:
// on filesystems with coarse mtime granularity a whole batch of writes
// can share one timestamp, and without it the oldest-first eviction
// order would depend on ReadDir's enumeration order — different across
// restarts, so two boots of the same directory could evict different
// entries. Files whose names do not parse as fingerprints (including
// leftover .tmp files) are ignored.
func scanDir(fsys iofault.FS, dir string) ([]diskEntry, error) {
	des, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type aged struct {
		diskEntry
		mtime int64
	}
	found := make([]aged, 0, len(des))
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		raw, err := hex.DecodeString(de.Name())
		if err != nil || len(raw) != len(Fingerprint{}) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		var fp Fingerprint
		copy(fp[:], raw)
		found = append(found, aged{diskEntry{fp: fp, size: info.Size()}, info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(a, b int) bool {
		if found[a].mtime != found[b].mtime {
			return found[a].mtime < found[b].mtime
		}
		return bytes.Compare(found[a].fp[:], found[b].fp[:]) < 0
	})
	out := make([]diskEntry, len(found))
	for i, f := range found {
		out[i] = f.diskEntry
	}
	return out, nil
}

// evictDiskLocked trims the disk index to the configured bounds,
// oldest-written entries first, and returns the fingerprints whose
// files the caller must unlink after releasing the mutex (filesystem
// I/O never happens under the lock). Like the memory tier, the most
// recent entry always survives so one oversized artifact still caches.
func (c *Cache) evictDiskLocked(met *meters) []Fingerprint {
	if c.diskOrder == nil {
		return nil
	}
	var doomed []Fingerprint
	for (c.diskOrder.Len() > c.diskMaxEntries || c.diskBytes > c.diskMaxBytes) && c.diskOrder.Len() > 1 {
		el := c.diskOrder.Back()
		ent := el.Value.(*diskEntry)
		c.diskOrder.Remove(el)
		delete(c.diskIndex, ent.fp)
		c.diskBytes -= ent.size
		doomed = append(doomed, ent.fp)
		met.diskEvictions.Inc()
	}
	return doomed
}

// removeEntries unlinks evicted entry files (best effort).
func removeEntries(fsys iofault.FS, dir string, fps []Fingerprint) {
	if dir == "" {
		return
	}
	for _, fp := range fps {
		fsys.Remove(filepath.Join(dir, fp.String()))
	}
}

// noteDiskWrite records a freshly written entry in the disk index and
// returns any entries evicted to make room.
func (c *Cache) noteDiskWrite(fp Fingerprint, size int64, met *meters) {
	c.mu.Lock()
	if c.diskOrder == nil {
		c.mu.Unlock()
		return
	}
	if el, ok := c.diskIndex[fp]; ok {
		ent := el.Value.(*diskEntry)
		c.diskBytes += size - ent.size
		ent.size = size
		c.diskOrder.MoveToFront(el)
	} else {
		c.diskOrder.PushFront(&diskEntry{fp: fp, size: size})
		c.diskIndex[fp] = c.diskOrder.Front()
		c.diskBytes += size
	}
	doomed := c.evictDiskLocked(met)
	fsys, dir := c.fs, c.dir
	c.mu.Unlock()
	removeEntries(fsys, dir, doomed)
}

// dropDiskEntry removes fp from the disk index after a corrupt read
// deleted its file.
func (c *Cache) dropDiskEntry(fp Fingerprint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.diskIndex[fp]; ok {
		ent := el.Value.(*diskEntry)
		c.diskOrder.Remove(el)
		delete(c.diskIndex, fp)
		c.diskBytes -= ent.size
	}
}

// Dir returns the attached disk directory ("" when memory-only).
func (c *Cache) Dir() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dir
}

// Len reports the number of entries resident in the memory tier.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// DiskLen reports the number of entries in the disk-tier index (0 when
// memory-only).
func (c *Cache) DiskLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.diskOrder == nil {
		return 0
	}
	return c.diskOrder.Len()
}

// DiskBytes reports the total file bytes tracked in the disk tier.
func (c *Cache) DiskBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.diskBytes
}

// SetRemote attaches (or, with nil, detaches) the peer-fetch tier:
// after a memory and disk miss, the cache asks the configured peers for
// the entry over the artifact peer protocol. Fetched entries are
// hash-verified before use and installed in the local tiers (including
// the disk tier, when attached), so one remote fetch warms this node
// for every later lookup.
func (c *Cache) SetRemote(r *Remote) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.remote = r
}

// Get returns the payload stored under fp, consulting the memory tier
// first, then the disk tier (promoting a verified disk entry into
// memory), then the remote tier. Metrics go to the process default
// registry; use GetCtx inside a per-run scope.
func (c *Cache) Get(fp Fingerprint) ([]byte, bool) {
	return c.get(fp, defaultMeters, false)
}

// GetCtx is Get attributing its hit/miss metrics to the registry
// carried by ctx (per-run scoping). The lookup itself is identical.
func (c *Cache) GetCtx(ctx context.Context, fp Fingerprint) ([]byte, bool) {
	return c.get(fp, metersCtx(ctx), false)
}

// GetLocal is Get restricted to the memory and disk tiers — the lookup
// the artifact peer endpoint serves, so one node's miss can never
// recurse into another peer fetch and ripple a miss around the fleet.
func (c *Cache) GetLocal(fp Fingerprint) ([]byte, bool) {
	return c.get(fp, defaultMeters, true)
}

// get resolves fp across the tiers, timing the whole lookup (memory
// hit, disk or remote fallback, or miss) into the artifact.get_time
// histogram so disk-tier and peer stalls are visible as a latency mode,
// not just a counter.
func (c *Cache) get(fp Fingerprint, met *meters, localOnly bool) ([]byte, bool) {
	start := time.Now()
	defer func() { met.getTime.Observe(time.Since(start)) }()
	c.mu.Lock()
	if el, ok := c.entries[fp]; ok {
		c.lru.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		c.mu.Unlock()
		met.hits.Inc()
		return data, true
	}
	fsys, dir, remote := c.fs, c.dir, c.remote
	c.mu.Unlock()
	if dir != "" {
		data, ok, corrupt, torn := readEntry(fsys, filepath.Join(dir, fp.String()), met)
		if torn {
			met.diskTorn.Inc()
			c.dropDiskEntry(fp)
		} else if corrupt {
			met.corrupt.Inc()
			c.dropDiskEntry(fp)
		}
		if ok {
			c.install(fp, data, met)
			met.hits.Inc()
			met.diskHits.Inc()
			return data, true
		}
	}
	if remote != nil && !localOnly {
		if data, ok := remote.fetch(fp, met); ok {
			// Write through to the local tiers: the fetch cost is paid
			// once, then this node serves the entry itself (including to
			// other peers).
			c.install(fp, data, met)
			if dir != "" {
				if size, wok := writeEntry(fsys, dir, fp.String(), data, met); wok {
					c.noteDiskWrite(fp, size, met)
				}
			}
			met.hits.Inc()
			return data, true
		}
	}
	met.misses.Inc()
	return nil, false
}

// Put stores data under fp in the memory tier and, when a disk tier is
// attached, on disk. The zero fingerprint is rejected (it carries no
// identity). The caller must not mutate data afterwards. Metrics go to
// the process default registry; use PutCtx inside a per-run scope.
func (c *Cache) Put(fp Fingerprint, data []byte) {
	c.put(fp, data, defaultMeters)
}

// PutCtx is Put attributing its metrics to the registry carried by ctx
// (per-run scoping). The store itself is identical.
func (c *Cache) PutCtx(ctx context.Context, fp Fingerprint, data []byte) {
	c.put(fp, data, metersCtx(ctx))
}

func (c *Cache) put(fp Fingerprint, data []byte, met *meters) {
	if fp.IsZero() {
		return
	}
	met.puts.Inc()
	c.install(fp, data, met)
	c.mu.Lock()
	fsys, dir := c.fs, c.dir
	c.mu.Unlock()
	if dir != "" {
		if size, ok := writeEntry(fsys, dir, fp.String(), data, met); ok {
			c.noteDiskWrite(fp, size, met)
		}
	}
}

func (c *Cache) install(fp Fingerprint, data []byte, met *meters) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[fp]; ok {
		c.lru.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		c.bytes += int64(len(data)) - int64(len(ent.data))
		ent.data = data
	} else {
		c.entries[fp] = c.lru.PushFront(&cacheEntry{fp: fp, data: data})
		c.bytes += int64(len(data))
	}
	// Evict from the cold end; always keep the most recent entry so a
	// single oversized artifact still caches.
	for (c.lru.Len() > c.maxEntries || c.bytes > c.maxBytes) && c.lru.Len() > 1 {
		el := c.lru.Back()
		ent := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.entries, ent.fp)
		c.bytes -= int64(len(ent.data))
		met.evictions.Inc()
	}
}

// diskRetry bounds the disk tier's per-operation retries: transient
// I/O errors get two more tries with jittered backoff, permanent ones
// (missing file, permission) fail immediately. Retries are counted in
// artifact.io_retries.
var diskRetry = iofault.RetryPolicy{Attempts: 3, Base: 2 * time.Millisecond, Jitter: 0.5}

// writeEntry persists one entry, returning its file size. The temp
// file is written and fsynced, renamed into place, and the parent
// directory fsynced — without the syncs, tmp+rename can surface an
// empty or torn entry after power loss. Each step gets bounded
// retries; terminal failures are silent beyond the retry counter: the
// disk tier is an optimization, and a missing entry just means
// recomputation.
func writeEntry(fsys iofault.FS, dir, name string, data []byte, met *meters) (int64, bool) {
	buf := EncodeEntry(data)
	path := filepath.Join(dir, name)
	tmp := path + ".tmp"
	retries, err := diskRetry.Do(func() error {
		f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		n, err := f.Write(buf)
		if err == nil && n != len(buf) {
			err = fmt.Errorf("artifact: short write (%d of %d bytes)", n, len(buf))
		}
		if err == nil {
			err = f.Sync()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fsys.Remove(tmp)
		}
		return err
	})
	met.ioRetries.Add(int64(retries))
	if err != nil {
		return 0, false
	}
	retries, err = diskRetry.Do(func() error { return fsys.Rename(tmp, path) })
	met.ioRetries.Add(int64(retries))
	if err != nil {
		fsys.Remove(tmp)
		return 0, false
	}
	syncDir(fsys, dir)
	return int64(len(buf)), true
}

// syncDir fsyncs a directory so a just-renamed entry's name is durable
// (best effort — a failure means the entry may vanish after power
// loss, which the read path already tolerates as a miss).
func syncDir(fsys iofault.FS, dir string) {
	d, err := fsys.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// readEntry loads and verifies one on-disk entry. A missing file is a
// plain miss; transient read errors get bounded retries. A failed
// verification is classified by DecodeEntry: torn (truncated relative
// to the declared length — a crashed write) or corrupt (full length,
// wrong bytes) — either way the file is deleted (best effort) and
// reported so the caller can count it and drop its index entry.
func readEntry(fsys iofault.FS, path string, met *meters) (data []byte, ok, corrupt, torn bool) {
	var raw []byte
	retries, err := diskRetry.Do(func() error {
		var rerr error
		raw, rerr = fsys.ReadFile(path)
		return rerr
	})
	met.ioRetries.Add(int64(retries))
	if err != nil {
		return nil, false, false, false
	}
	payload, derr := DecodeEntry(raw)
	if derr != nil {
		fsys.Remove(path)
		return nil, false, errors.Is(derr, ErrEntryCorrupt), errors.Is(derr, ErrEntryTorn)
	}
	return payload, true, false, false
}

// dirCaches deduplicates Cache instances per absolute directory, so
// every pipeline run pointed at the same cache directory shares one
// memory tier within the process.
var dirCaches sync.Map // absolute dir -> *Cache

// DirCache returns the process-wide Cache backed by dir, creating the
// directory and the instance on first use.
func DirCache(dir string) (*Cache, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if c, ok := dirCaches.Load(abs); ok {
		return c.(*Cache), nil
	}
	c := NewCache(0, 0)
	if err := c.AttachDir(abs); err != nil {
		return nil, err
	}
	actual, _ := dirCaches.LoadOrStore(abs, c)
	return actual.(*Cache), nil
}
