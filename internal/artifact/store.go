package artifact

import (
	"container/list"
	"crypto/sha256"
	"os"
	"path/filepath"
	"sync"

	"cghti/internal/obs"
)

// Observability counters (process-wide; run reports record deltas).
var (
	cntHits      = obs.NewCounter("artifact.cache_hits")
	cntMisses    = obs.NewCounter("artifact.cache_misses")
	cntDiskHits  = obs.NewCounter("artifact.disk_hits")
	cntPuts      = obs.NewCounter("artifact.cache_puts")
	cntEvictions = obs.NewCounter("artifact.cache_evictions")
	cntCorrupt   = obs.NewCounter("artifact.disk_corrupt")
)

// Default memory-tier bounds applied when NewCache is given
// non-positive limits.
const (
	DefaultMaxEntries = 128
	DefaultMaxBytes   = 256 << 20
)

// Cache is a two-tier content-addressed artifact store. The memory tier
// is a bounded LRU (entry count and total payload bytes); the optional
// disk tier (AttachDir) persists entries across processes. Disk entries
// carry a payload hash that is verified on every read: a corrupted or
// tampered entry is deleted and reported as a miss, never trusted.
// All methods are safe for concurrent use.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	lru        *list.List // front = most recently used
	entries    map[Fingerprint]*list.Element
	dir        string
}

type cacheEntry struct {
	fp   Fingerprint
	data []byte
}

// NewCache returns a memory-only cache bounded by maxEntries entries
// and maxBytes total payload bytes (defaults apply to non-positive
// values).
func NewCache(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		lru:        list.New(),
		entries:    make(map[Fingerprint]*list.Element),
	}
}

// AttachDir adds the on-disk tier rooted at dir, creating it if needed.
func (c *Cache) AttachDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	c.mu.Lock()
	c.dir = dir
	c.mu.Unlock()
	return nil
}

// Dir returns the attached disk directory ("" when memory-only).
func (c *Cache) Dir() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dir
}

// Len reports the number of entries resident in the memory tier.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Get returns the payload stored under fp, consulting the memory tier
// first and falling back to the disk tier (promoting a verified disk
// entry into memory).
func (c *Cache) Get(fp Fingerprint) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.entries[fp]; ok {
		c.lru.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		c.mu.Unlock()
		cntHits.Inc()
		return data, true
	}
	dir := c.dir
	c.mu.Unlock()
	if dir != "" {
		if data, ok := readEntry(filepath.Join(dir, fp.String())); ok {
			c.install(fp, data)
			cntHits.Inc()
			cntDiskHits.Inc()
			return data, true
		}
	}
	cntMisses.Inc()
	return nil, false
}

// Put stores data under fp in the memory tier and, when a disk tier is
// attached, on disk. The zero fingerprint is rejected (it carries no
// identity). The caller must not mutate data afterwards.
func (c *Cache) Put(fp Fingerprint, data []byte) {
	if fp.IsZero() {
		return
	}
	cntPuts.Inc()
	c.install(fp, data)
	c.mu.Lock()
	dir := c.dir
	c.mu.Unlock()
	if dir != "" {
		writeEntry(filepath.Join(dir, fp.String()), data)
	}
}

func (c *Cache) install(fp Fingerprint, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[fp]; ok {
		c.lru.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		c.bytes += int64(len(data)) - int64(len(ent.data))
		ent.data = data
	} else {
		c.entries[fp] = c.lru.PushFront(&cacheEntry{fp: fp, data: data})
		c.bytes += int64(len(data))
	}
	// Evict from the cold end; always keep the most recent entry so a
	// single oversized artifact still caches.
	for (c.lru.Len() > c.maxEntries || c.bytes > c.maxBytes) && c.lru.Len() > 1 {
		el := c.lru.Back()
		ent := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.entries, ent.fp)
		c.bytes -= int64(len(ent.data))
		cntEvictions.Inc()
	}
}

// On-disk entry format: 4-byte magic, sha256 of the payload, payload.
// The hash makes every read self-verifying — fingerprints address the
// *inputs* that produced an artifact, the stored hash attests the
// artifact bytes themselves survived the round trip.
var diskMagic = [4]byte{'C', 'G', 'A', '1'}

func writeEntry(path string, data []byte) {
	sum := sha256.Sum256(data)
	buf := make([]byte, 0, len(diskMagic)+len(sum)+len(data))
	buf = append(buf, diskMagic[:]...)
	buf = append(buf, sum[:]...)
	buf = append(buf, data...)
	// Write-then-rename so readers never observe a half-written entry.
	// Failures are silent: the disk tier is an optimization, and a
	// missing entry just means recomputation.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
	}
}

// readEntry loads and verifies one on-disk entry. A missing file is a
// plain miss; a short, mislabeled, or hash-mismatched file counts as
// corruption — deleted (best effort) and reported as a miss.
func readEntry(path string) ([]byte, bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	const header = 4 + sha256.Size
	if len(raw) < header || [4]byte(raw[:4]) != diskMagic {
		cntCorrupt.Inc()
		os.Remove(path)
		return nil, false
	}
	payload := raw[header:]
	if sha256.Sum256(payload) != [sha256.Size]byte(raw[4:header]) {
		cntCorrupt.Inc()
		os.Remove(path)
		return nil, false
	}
	return payload, true
}

// dirCaches deduplicates Cache instances per absolute directory, so
// every pipeline run pointed at the same cache directory shares one
// memory tier within the process.
var dirCaches sync.Map // absolute dir -> *Cache

// DirCache returns the process-wide Cache backed by dir, creating the
// directory and the instance on first use.
func DirCache(dir string) (*Cache, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if c, ok := dirCaches.Load(abs); ok {
		return c.(*Cache), nil
	}
	c := NewCache(0, 0)
	if err := c.AttachDir(abs); err != nil {
		return nil, err
	}
	actual, _ := dirCaches.LoadOrStore(abs, c)
	return actual.(*Cache), nil
}
