package atpg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cghti/internal/bench"
	"cghti/internal/netlist"
	"cghti/internal/sim"
)

func parse(t testing.TB, src, name string) *netlist.Netlist {
	t.Helper()
	n, err := bench.ParseString(src, name)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

const c17 = `
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func TestCubeSetGet(t *testing.T) {
	c := NewCube(130)
	c.Set(0, sim.V3One)
	c.Set(64, sim.V3Zero)
	c.Set(129, sim.V3One)
	if c.Get(0) != sim.V3One || c.Get(64) != sim.V3Zero || c.Get(129) != sim.V3One {
		t.Fatal("set/get mismatch")
	}
	if c.Get(1) != sim.V3X {
		t.Fatal("unset position not X")
	}
	if c.CareCount() != 3 {
		t.Fatalf("CareCount = %d, want 3", c.CareCount())
	}
	c.Set(64, sim.V3X)
	if c.Get(64) != sim.V3X || c.CareCount() != 2 {
		t.Fatal("clearing to X failed")
	}
}

func TestCubeConflictsAndMerge(t *testing.T) {
	a, _ := ParseCube("1X0X")
	b, _ := ParseCube("1X0X")
	if a.Conflicts(b) {
		t.Fatal("identical cubes conflict")
	}
	c, _ := ParseCube("X10X")
	if a.Conflicts(c) {
		t.Fatal("compatible cubes reported conflicting")
	}
	d, _ := ParseCube("0XXX")
	if !a.Conflicts(d) {
		t.Fatal("conflicting cubes not detected")
	}
	m := a.Clone()
	m.Merge(c)
	if m.String() != "110X" {
		t.Fatalf("merge = %s, want 110X", m.String())
	}
	// Original untouched by Clone+Merge.
	if a.String() != "1X0X" {
		t.Fatalf("clone aliased: %s", a.String())
	}
}

func TestCubeMergePanicsOnConflict(t *testing.T) {
	a, _ := ParseCube("1")
	b, _ := ParseCube("0")
	defer func() {
		if recover() == nil {
			t.Fatal("Merge of conflicting cubes did not panic")
		}
	}()
	a.Merge(b)
}

// TestCubeConflictSymmetricProperty: Conflicts is symmetric and a cube
// never conflicts with itself or with all-X.
func TestCubeConflictSymmetricProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		a, b := NewCube(n), NewCube(n)
		for i := 0; i < n; i++ {
			a.Set(i, sim.V3(rng.Intn(3)))
			b.Set(i, sim.V3(rng.Intn(3)))
		}
		if a.Conflicts(a) {
			return false
		}
		if a.Conflicts(NewCube(n)) {
			return false
		}
		return a.Conflicts(b) == b.Conflicts(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCubeFillRespectsCareBits(t *testing.T) {
	c, _ := ParseCube("1X0XX1")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		v := c.Fill(rng)
		if !v[0] || v[2] || !v[5] {
			t.Fatal("Fill changed a care bit")
		}
	}
}

func TestParseCubeErrors(t *testing.T) {
	if _, err := ParseCube("10Z"); err == nil {
		t.Fatal("ParseCube accepted Z")
	}
}

func TestJustifyTrivialInput(t *testing.T) {
	n := parse(t, c17, "c17")
	e, err := NewEngine(n)
	if err != nil {
		t.Fatal(err)
	}
	cube, res := e.Justify(n.MustLookup("2"), 1)
	if res != Success {
		t.Fatalf("justify PI: %v", res)
	}
	if cube.CareCount() != 1 {
		t.Fatalf("PI cube has %d care bits, want 1", cube.CareCount())
	}
}

// verifyJustified checks via three-valued simulation that the cube alone
// forces target to value v.
func verifyJustified(t *testing.T, n *netlist.Netlist, e *Engine, cube Cube, target netlist.GateID, v uint8) {
	t.Helper()
	in := map[netlist.GateID]sim.V3{}
	for i, id := range e.InputIDs() {
		if val := cube.Get(i); val != sim.V3X {
			in[id] = val
		}
	}
	vals, err := sim.Eval3(n, in)
	if err != nil {
		t.Fatal(err)
	}
	if vals[target] != sim.V3(v) {
		t.Fatalf("cube %s gives %s=%v, want %d",
			cube, n.Gates[target].Name, vals[target], v)
	}
}

func TestJustifyAllNodesC17(t *testing.T) {
	n := parse(t, c17, "c17")
	e, err := NewEngine(n)
	if err != nil {
		t.Fatal(err)
	}
	// Every node of c17 can be justified to both values.
	for g := range n.Gates {
		for _, v := range []uint8{0, 1} {
			cube, res := e.Justify(netlist.GateID(g), v)
			if res != Success {
				t.Fatalf("justify %s=%d: %v", n.Gates[g].Name, v, res)
			}
			verifyJustified(t, n, e, cube, netlist.GateID(g), v)
		}
	}
}

func TestJustifyUntestable(t *testing.T) {
	// y = AND(a, NOT(a)) can never be 1.
	n := parse(t, `
INPUT(a)
OUTPUT(y)
na = NOT(a)
y = AND(a, na)
`, "red")
	e, err := NewEngine(n)
	if err != nil {
		t.Fatal(err)
	}
	_, res := e.Justify(n.MustLookup("y"), 1)
	if res != Untestable {
		t.Fatalf("justify of constant-0 net to 1: %v, want untestable", res)
	}
	cube, res := e.Justify(n.MustLookup("y"), 0)
	if res != Success {
		t.Fatalf("justify to 0: %v", res)
	}
	verifyJustified(t, n, e, cube, n.MustLookup("y"), 0)
}

func TestJustifyXorParity(t *testing.T) {
	n := parse(t, `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
y = XOR(a, b, c)
`, "xor3")
	e, err := NewEngine(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint8{0, 1} {
		cube, res := e.Justify(n.MustLookup("y"), v)
		if res != Success {
			t.Fatalf("justify xor=%d: %v", v, res)
		}
		verifyJustified(t, n, e, cube, n.MustLookup("y"), v)
	}
}

func TestJustifyDeepChain(t *testing.T) {
	// 8-deep AND chain: y=1 requires all 9 inputs at 1.
	src := "INPUT(x0)\n"
	for i := 1; i <= 8; i++ {
		src += "INPUT(x" + string(rune('0'+i)) + ")\n"
	}
	src += "OUTPUT(g8)\ng1 = AND(x0, x1)\n"
	for i := 2; i <= 8; i++ {
		src += "g" + string(rune('0'+i)) + " = AND(g" + string(rune('0'+i-1)) + ", x" + string(rune('0'+i)) + ")\n"
	}
	n := parse(t, src, "chain")
	e, err := NewEngine(n)
	if err != nil {
		t.Fatal(err)
	}
	cube, res := e.Justify(n.MustLookup("g8"), 1)
	if res != Success {
		t.Fatalf("deep chain justify: %v", res)
	}
	if cube.CareCount() != 9 {
		t.Fatalf("deep chain cube has %d care bits, want 9", cube.CareCount())
	}
	verifyJustified(t, n, e, cube, n.MustLookup("g8"), 1)
}

// TestJustifyRandomCircuitsProperty: any Success cube must prove itself
// under three-valued simulation (soundness of PODEM justification).
func TestJustifyRandomCircuitsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetlist(rng, 4+rng.Intn(5), 20+rng.Intn(50))
		e, err := NewEngine(n)
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			g := netlist.GateID(rng.Intn(len(n.Gates)))
			v := uint8(rng.Intn(2))
			cube, res := e.Justify(g, v)
			if res != Success {
				continue // untestable/abort is legitimate
			}
			in := map[netlist.GateID]sim.V3{}
			for i, id := range e.InputIDs() {
				if val := cube.Get(i); val != sim.V3X {
					in[id] = val
				}
			}
			vals, err := sim.Eval3(n, in)
			if err != nil || vals[g] != sim.V3(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDetectC17AllFaults(t *testing.T) {
	n := parse(t, c17, "c17")
	e, err := NewEngine(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	// c17 is fully testable for all output stuck-at faults.
	for g := range n.Gates {
		for _, sa := range []uint8{0, 1} {
			cube, res := e.Detect(netlist.GateID(g), sa)
			if res != Success {
				t.Fatalf("detect %s s-a-%d: %v", n.Gates[g].Name, sa, res)
			}
			verifyDetects(t, n, cube, netlist.GateID(g), sa, rng)
		}
	}
}

// verifyDetects simulates the filled cube on the good circuit and on a
// copy with the fault injected, and requires an output difference.
func verifyDetects(t *testing.T, n *netlist.Netlist, cube Cube, site netlist.GateID, sa uint8, rng *rand.Rand) {
	t.Helper()
	filled := cube.Fill(rng)
	inputs := n.CombInputs()
	good := map[netlist.GateID]uint8{}
	for i, id := range inputs {
		if filled[i] {
			good[id] = 1
		} else {
			good[id] = 0
		}
	}
	gv, err := sim.Eval(n, good)
	if err != nil {
		t.Fatal(err)
	}
	fv := evalWithFault(t, n, good, site, sa)
	for _, po := range n.CombOutputs() {
		if gv[po] != fv[po] {
			return
		}
	}
	t.Fatalf("cube %s does not detect %s s-a-%d", cube, n.Gates[site].Name, sa)
}

// evalWithFault is a scalar simulation with one stuck-at fault injected.
func evalWithFault(t *testing.T, n *netlist.Netlist, in map[netlist.GateID]uint8, site netlist.GateID, sa uint8) []uint8 {
	t.Helper()
	topo, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]uint8, len(n.Gates))
	for _, id := range topo {
		g := &n.Gates[id]
		switch g.Type {
		case netlist.Input, netlist.DFF:
			vals[id] = in[id]
		default:
			buf := make([]uint8, len(g.Fanin))
			for i, f := range g.Fanin {
				buf[i] = vals[f]
			}
			vals[id] = sim.EvalGate(g.Type, buf)
		}
		if id == site {
			vals[id] = sa
		}
	}
	return vals
}

func TestDetectUndetectableRedundantFault(t *testing.T) {
	// y = OR(a, AND(a, b)): the AND output s-a-0 is undetectable
	// (absorption: y == a regardless).
	n := parse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
g = AND(a, b)
y = OR(a, g)
`, "red2")
	e, err := NewEngine(n)
	if err != nil {
		t.Fatal(err)
	}
	_, res := e.Detect(n.MustLookup("g"), 0)
	if res != Untestable {
		t.Fatalf("redundant fault: %v, want untestable", res)
	}
}

func TestDetectSequentialScan(t *testing.T) {
	// Fault effect observable only at a DFF data input (scan capture).
	n := parse(t, `
INPUT(a)
INPUT(b)
OUTPUT(q)
q = DFF(d)
d = AND(a, b)
`, "scan")
	e, err := NewEngine(n)
	if err != nil {
		t.Fatal(err)
	}
	_, res := e.Detect(n.MustLookup("d"), 0)
	if res != Success {
		t.Fatalf("scan-capture detection: %v", res)
	}
}

func TestAbortOnTinyBacktrackBudget(t *testing.T) {
	// An 18-input XOR tree with objective through reconvergent ANDs can
	// be forced to abort with a 0...1 backtrack budget. Build a circuit
	// where justification requires search: y = AND of XORs sharing
	// inputs.
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
x1 = XOR(a, b)
x2 = XOR(b, c)
x3 = XOR(c, d)
x4 = XOR(d, a)
y = AND(x1, x2, x3, x4)
`
	n := parse(t, src, "hard")
	e, err := NewEngine(n)
	if err != nil {
		t.Fatal(err)
	}
	e.MaxBacktracks = 1
	_, res := e.Justify(n.MustLookup("y"), 1)
	// y=1 needs a!=b, b!=c, c!=d, d!=a — satisfiable (e.g. 0101), but the
	// first guesses may conflict; accept success or abort, never a hang.
	if res != Success && res != Abort && res != Untestable {
		t.Fatalf("unexpected result %v", res)
	}
	if e.Stats.Calls == 0 || e.Stats.Implies == 0 {
		t.Error("stats not accumulated")
	}
}

func TestResultString(t *testing.T) {
	if Success.String() != "success" || Untestable.String() != "untestable" || Abort.String() != "abort" {
		t.Fatal("Result.String broken")
	}
}

// randomNetlist builds a small random combinational circuit (duplicated
// from sim tests; kept local to avoid exporting test helpers).
func randomNetlist(rng *rand.Rand, pis, gates int) *netlist.Netlist {
	n := netlist.New("rand")
	ids := make([]netlist.GateID, 0, pis+gates)
	for i := 0; i < pis; i++ {
		ids = append(ids, n.MustAddGate("p"+itoa(i), netlist.Input))
	}
	types := []netlist.GateType{
		netlist.And, netlist.Nand, netlist.Or, netlist.Nor,
		netlist.Xor, netlist.Xnor, netlist.Not, netlist.Buf,
	}
	for i := 0; i < gates; i++ {
		tt := types[rng.Intn(len(types))]
		arity := 2 + rng.Intn(2)
		if tt == netlist.Not || tt == netlist.Buf {
			arity = 1
		}
		id := n.MustAddGate("g"+itoa(i), tt)
		for a := 0; a < arity; a++ {
			n.Connect(ids[rng.Intn(len(ids))], id)
		}
		ids = append(ids, id)
	}
	n.MarkPO(ids[len(ids)-1])
	return n
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
