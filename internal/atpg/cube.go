// Package atpg implements test cubes over the circuit's combinational
// inputs and the PODEM (Path-Oriented DEcision Making, Goel 1981) test
// generation algorithm the paper uses to derive one excitation cube per
// rare node (Section III-C).
package atpg

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"

	"cghti/internal/sim"
)

// Cube is a partial assignment over an ordered input list (the
// netlist's CombInputs order): every position is 0, 1 or X. Cubes are
// stored as two bitsets so the pairwise compatibility test at the heart
// of the paper's Algorithm 2 is a handful of word operations.
type Cube struct {
	ones  []uint64
	zeros []uint64
	n     int
}

// NewCube returns an all-X cube over n inputs.
func NewCube(n int) Cube {
	w := (n + 63) / 64
	return Cube{ones: make([]uint64, w), zeros: make([]uint64, w), n: n}
}

// Len returns the number of input positions.
func (c Cube) Len() int { return c.n }

// Set assigns position i to v (X clears the position).
func (c Cube) Set(i int, v sim.V3) {
	w, m := i/64, uint64(1)<<uint(i%64)
	switch v {
	case sim.V3One:
		c.ones[w] |= m
		c.zeros[w] &^= m
	case sim.V3Zero:
		c.zeros[w] |= m
		c.ones[w] &^= m
	default:
		c.ones[w] &^= m
		c.zeros[w] &^= m
	}
}

// Get returns the value at position i.
func (c Cube) Get(i int) sim.V3 {
	w, m := i/64, uint64(1)<<uint(i%64)
	switch {
	case c.ones[w]&m != 0:
		return sim.V3One
	case c.zeros[w]&m != 0:
		return sim.V3Zero
	}
	return sim.V3X
}

// CareCount returns the number of non-X positions.
func (c Cube) CareCount() int {
	total := 0
	for i := range c.ones {
		total += bits.OnesCount64(c.ones[i]) + bits.OnesCount64(c.zeros[i])
	}
	return total
}

// Conflicts reports whether two cubes disagree on any care bit — the
// paper's compatibility test: "if there are no conflicts between the care
// bits of TV1 and TV2, the test vectors are considered mergeable".
func (c Cube) Conflicts(o Cube) bool {
	for i := range c.ones {
		if c.ones[i]&o.zeros[i] != 0 || c.zeros[i]&o.ones[i] != 0 {
			return true
		}
	}
	return false
}

// Merge unions o's care bits into c (receiver mutated). The caller must
// ensure the cubes do not conflict; Merge panics otherwise, because a
// silent overwrite would invalidate the validation-free guarantee. Use
// TryMerge on any path where the no-conflict invariant is not already
// proven (anything reachable from user-supplied cubes or vertex sets).
func (c Cube) Merge(o Cube) {
	if !c.TryMerge(o) {
		panic("atpg: merging conflicting cubes")
	}
}

// TryMerge unions o's care bits into c (receiver mutated) and reports
// whether the merge was performed. On a care-bit conflict it returns
// false and leaves c unchanged — the non-panicking Merge for paths
// where conflicting cubes are a data condition, not a bug.
func (c Cube) TryMerge(o Cube) bool {
	if c.Conflicts(o) {
		return false
	}
	for i := range c.ones {
		c.ones[i] |= o.ones[i]
		c.zeros[i] |= o.zeros[i]
	}
	return true
}

// Clone returns an independent copy.
func (c Cube) Clone() Cube {
	return Cube{
		ones:  append([]uint64(nil), c.ones...),
		zeros: append([]uint64(nil), c.zeros...),
		n:     c.n,
	}
}

// ForEachCare calls f for every care position in ascending order with
// its assigned value. Word-level iteration: cost scales with the care
// count, not the input count — the path cube remapping and support
// analysis take through cubes over SoC-sized input lists.
func (c Cube) ForEachCare(f func(i int, v sim.V3)) {
	for w := range c.ones {
		word := c.ones[w] | c.zeros[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			if c.ones[w]&(1<<uint(b)) != 0 {
				f(w*64+b, sim.V3One)
			} else {
				f(w*64+b, sim.V3Zero)
			}
			word &= word - 1
		}
	}
}

// CareBounds returns the first and last care positions, or (-1, -1) for
// an all-X cube. Two cubes whose [lo, hi] ranges do not overlap cannot
// conflict — the O(1) support-interval test the partitioned pairwise
// pass uses to skip cube pairs from unrelated logic cones.
func (c Cube) CareBounds() (lo, hi int) {
	lo, hi = -1, -1
	for w := range c.ones {
		if word := c.ones[w] | c.zeros[w]; word != 0 {
			lo = w*64 + bits.TrailingZeros64(word)
			break
		}
	}
	if lo < 0 {
		return -1, -1
	}
	for w := len(c.ones) - 1; w >= 0; w-- {
		if word := c.ones[w] | c.zeros[w]; word != 0 {
			hi = w*64 + 63 - bits.LeadingZeros64(word)
			break
		}
	}
	return lo, hi
}

// Equal reports whether two cubes assign identical values everywhere.
func (c Cube) Equal(o Cube) bool {
	if c.n != o.n {
		return false
	}
	for i := range c.ones {
		if c.ones[i] != o.ones[i] || c.zeros[i] != o.zeros[i] {
			return false
		}
	}
	return true
}

// String renders the cube as a 01X string, position 0 first.
func (c Cube) String() string {
	var sb strings.Builder
	sb.Grow(c.n)
	for i := 0; i < c.n; i++ {
		sb.WriteString(c.Get(i).String())
	}
	return sb.String()
}

// Fill returns a fully specified vector (one bool per input position):
// care bits keep their value, X bits are drawn from rng.
func (c Cube) Fill(rng *rand.Rand) []bool {
	out := make([]bool, c.n)
	for i := 0; i < c.n; i++ {
		switch c.Get(i) {
		case sim.V3One:
			out[i] = true
		case sim.V3Zero:
			out[i] = false
		default:
			out[i] = rng.Intn(2) == 1
		}
	}
	return out
}

// ParseCube builds a cube from a 01X string (for tests and tools).
func ParseCube(s string) (Cube, error) {
	c := NewCube(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			c.Set(i, sim.V3Zero)
		case '1':
			c.Set(i, sim.V3One)
		case 'x', 'X', '-':
			// already X
		default:
			return Cube{}, fmt.Errorf("atpg: bad cube char %q at %d", s[i], i)
		}
	}
	return c, nil
}
