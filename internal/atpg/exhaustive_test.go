package atpg

import (
	"math/rand"
	"testing"

	"cghti/internal/netlist"
	"cghti/internal/sim"
)

// exhaustiveJustifiable enumerates all input assignments of a small
// circuit and reports whether any drives target to v.
func exhaustiveJustifiable(t *testing.T, n *netlist.Netlist, target netlist.GateID, v uint8) bool {
	t.Helper()
	inputs := n.CombInputs()
	if len(inputs) > 14 {
		t.Fatalf("circuit too wide for exhaustive check: %d inputs", len(inputs))
	}
	in := map[netlist.GateID]uint8{}
	for p := 0; p < 1<<uint(len(inputs)); p++ {
		for j, id := range inputs {
			in[id] = uint8(p >> uint(j) & 1)
		}
		vals, err := sim.Eval(n, in)
		if err != nil {
			t.Fatal(err)
		}
		if vals[target] == v {
			return true
		}
	}
	return false
}

// exhaustiveDetectable enumerates all assignments and reports whether
// any detects the stuck-at fault at an observable output.
func exhaustiveDetectable(t *testing.T, n *netlist.Netlist, site netlist.GateID, sa uint8) bool {
	t.Helper()
	inputs := n.CombInputs()
	outs := n.CombOutputs()
	topo, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	in := map[netlist.GateID]uint8{}
	for p := 0; p < 1<<uint(len(inputs)); p++ {
		for j, id := range inputs {
			in[id] = uint8(p >> uint(j) & 1)
		}
		good, err := sim.Eval(n, in)
		if err != nil {
			t.Fatal(err)
		}
		// Faulty simulation.
		bad := make([]uint8, len(n.Gates))
		for _, id := range topo {
			g := &n.Gates[id]
			switch g.Type {
			case netlist.Input, netlist.DFF:
				bad[id] = in[id]
			default:
				buf := make([]uint8, len(g.Fanin))
				for i, f := range g.Fanin {
					buf[i] = bad[f]
				}
				bad[id] = sim.EvalGate(g.Type, buf)
			}
			if id == site {
				bad[id] = sa
			}
		}
		for _, o := range outs {
			if good[o] != bad[o] {
				return true
			}
		}
	}
	return false
}

// TestJustifyCompleteAgainstExhaustive: with an ample backtrack budget on
// small circuits, PODEM's Success/Untestable verdicts must match the
// ground truth from exhaustive enumeration — Success cubes must prove
// themselves and Untestable must mean no assignment exists.
func TestJustifyCompleteAgainstExhaustive(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 100))
		n := randomNetlist(rng, 4+rng.Intn(4), 12+rng.Intn(25))
		eng, err := NewEngine(n)
		if err != nil {
			t.Fatal(err)
		}
		eng.MaxBacktracks = 1 << 20 // effectively unbounded at this size
		for g := 0; g < len(n.Gates); g++ {
			for _, v := range []uint8{0, 1} {
				id := netlist.GateID(g)
				cube, res := eng.Justify(id, v)
				truth := exhaustiveJustifiable(t, n, id, v)
				switch res {
				case Success:
					if !truth {
						t.Fatalf("trial %d: PODEM justified %s=%d but no assignment exists",
							trial, n.Gates[g].Name, v)
					}
					// Cube must prove itself under 3-valued simulation.
					in := map[netlist.GateID]sim.V3{}
					for i, inputID := range eng.InputIDs() {
						if val := cube.Get(i); val != sim.V3X {
							in[inputID] = val
						}
					}
					vals, err := sim.Eval3(n, in)
					if err != nil {
						t.Fatal(err)
					}
					if vals[id] != sim.V3(v) {
						t.Fatalf("trial %d: unsound cube for %s=%d", trial, n.Gates[g].Name, v)
					}
				case Untestable:
					if truth {
						t.Fatalf("trial %d: PODEM says %s=%d untestable but an assignment exists",
							trial, n.Gates[g].Name, v)
					}
				case Abort:
					t.Fatalf("trial %d: abort with an unbounded budget on a tiny circuit", trial)
				}
			}
		}
	}
}

// TestDetectCompleteAgainstExhaustive: same completeness check for full
// stuck-at detection.
func TestDetectCompleteAgainstExhaustive(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 500))
		n := randomNetlist(rng, 4+rng.Intn(4), 10+rng.Intn(20))
		eng, err := NewEngine(n)
		if err != nil {
			t.Fatal(err)
		}
		eng.MaxBacktracks = 1 << 20
		// Sample a dozen faults per circuit (full cross product is slow).
		for k := 0; k < 12; k++ {
			site := netlist.GateID(rng.Intn(len(n.Gates)))
			sa := uint8(rng.Intn(2))
			_, res := eng.Detect(site, sa)
			truth := exhaustiveDetectable(t, n, site, sa)
			switch res {
			case Success:
				if !truth {
					t.Fatalf("trial %d: PODEM detected undetectable fault %s s-a-%d",
						trial, n.Gates[site].Name, sa)
				}
			case Untestable:
				if truth {
					t.Fatalf("trial %d: PODEM missed detectable fault %s s-a-%d",
						trial, n.Gates[site].Name, sa)
				}
			case Abort:
				t.Fatalf("trial %d: abort with unbounded budget", trial)
			}
		}
	}
}
