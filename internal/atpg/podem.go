package atpg

import (
	"fmt"

	"cghti/internal/netlist"
	"cghti/internal/obs"
	"cghti/internal/scoap"
	"cghti/internal/sim"
)

// meters holds the package's metric handles. Engine.Stats remains the
// per-engine view; these aggregate across all engines (including
// worker-pool engines) registered against the same registry — the
// process default, or a per-run scoped registry (Engine.SetRegistry),
// so concurrent runs attribute PODEM work to their own reports.
type meters struct {
	calls      *obs.Counter
	backtracks *obs.Counter
	aborts     *obs.Counter
	untestable *obs.Counter
	implies    *obs.Counter
}

func metersFor(r *obs.Registry) *meters {
	if r == nil || r == obs.Default() {
		return defaultMeters
	}
	return newMeters(r)
}

func newMeters(r *obs.Registry) *meters {
	return &meters{
		calls:      r.Counter("atpg.podem_calls"),
		backtracks: r.Counter("atpg.podem_backtracks"),
		aborts:     r.Counter("atpg.podem_aborts"),
		untestable: r.Counter("atpg.podem_untestable"),
		implies:    r.Counter("atpg.podem_implications"),
	}
}

var defaultMeters = newMeters(obs.Default())

// Result classifies the outcome of a PODEM run.
type Result int

const (
	// Success: a cube satisfying the objective was found.
	Success Result = iota
	// Untestable: the search space was exhausted — no cube exists.
	Untestable
	// Abort: the backtrack limit was hit before a conclusion.
	Abort
)

// String names the result.
func (r Result) String() string {
	switch r {
	case Success:
		return "success"
	case Untestable:
		return "untestable"
	case Abort:
		return "abort"
	}
	return fmt.Sprintf("Result(%d)", int(r))
}

// DefaultMaxBacktracks bounds the PODEM decision tree per target.
const DefaultMaxBacktracks = 4000

// Engine runs PODEM against one netlist. It precomputes SCOAP measures
// (backtrace guidance), the topological order, and the
// distance-to-observation map used to steer D-frontier selection.
//
// An Engine is not safe for concurrent use; create one per goroutine.
type Engine struct {
	n        *netlist.Netlist
	inputs   []netlist.GateID
	inputPos map[netlist.GateID]int
	topo     []netlist.GateID
	sc       *scoap.Measures
	obsDist  []int32 // min #gates to an observable net; -1 if none

	// MaxBacktracks bounds the search; DefaultMaxBacktracks if zero.
	MaxBacktracks int
	// NaiveBacktrace disables SCOAP guidance (first-X-input selection);
	// used by the ablation benchmark.
	NaiveBacktrace bool

	// scratch
	good    []sim.V3
	faulty  []sim.V3
	assign  []sim.V3 // by input position
	faninV3 []sim.V3
	relev   []bool           // gates relevant to the current target
	order   []netlist.GateID // topo order restricted to relev
	obsList []netlist.GateID // observable outputs within relev
	coneBuf []netlist.GateID // BFS scratch

	// Stats accumulates counters across calls.
	Stats Stats

	met *meters
}

// Stats counts PODEM work, for the time-complexity analysis benches.
type Stats struct {
	Calls      int64
	Backtracks int64
	Implies    int64
}

// NewEngine prepares a PODEM engine for n.
func NewEngine(n *netlist.Netlist) (*Engine, error) {
	topo, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	sc, err := scoap.Compute(n)
	if err != nil {
		return nil, err
	}
	inputs := n.CombInputs()
	pos := make(map[netlist.GateID]int, len(inputs))
	for i, id := range inputs {
		pos[id] = i
	}
	e := &Engine{
		n:             n,
		inputs:        inputs,
		inputPos:      pos,
		topo:          topo,
		sc:            sc,
		MaxBacktracks: DefaultMaxBacktracks,
		good:          make([]sim.V3, len(n.Gates)),
		faulty:        make([]sim.V3, len(n.Gates)),
		assign:        make([]sim.V3, len(inputs)),
		met:           defaultMeters,
	}
	e.computeObsDist()
	return e, nil
}

// SetRegistry points the engine's PODEM counters at r, so a per-run
// scoped registry attributes the engine's work to that run (nil or
// obs.Default() restores the process-wide handles).
func (e *Engine) SetRegistry(r *obs.Registry) { e.met = metersFor(r) }

// InputIDs returns the ordered combinational input list cubes are
// expressed over.
func (e *Engine) InputIDs() []netlist.GateID { return e.inputs }

// computeObsDist fills obsDist with the minimum number of fanout hops
// from each gate to an observable net (PO or DFF data input).
func (e *Engine) computeObsDist() {
	n := e.n
	e.obsDist = make([]int32, len(n.Gates))
	for i := range e.obsDist {
		e.obsDist[i] = -1
	}
	var queue []netlist.GateID
	push := func(id netlist.GateID, d int32) {
		if e.obsDist[id] == -1 || d < e.obsDist[id] {
			e.obsDist[id] = d
			queue = append(queue, id)
		}
	}
	for _, id := range n.CombOutputs() {
		push(id, 0)
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		d := e.obsDist[id] + 1
		for _, f := range n.Gates[id].Fanin {
			if n.Gates[id].Type == netlist.DFF {
				continue // crossing into previous cycle
			}
			if e.obsDist[f] == -1 || d < e.obsDist[f] {
				e.obsDist[f] = d
				queue = append(queue, f)
			}
		}
	}
}

// decision is one node of the PODEM decision stack.
type decision struct {
	pos     int
	val     sim.V3
	flipped bool
}

// Justify searches for a cube that sets target to value v (0/1) in the
// fault-free circuit. This is the paper's use of PODEM: the objective for
// rare node n with rare value r is phrased as a test for n stuck-at-¬r,
// whose excitation condition is exactly n=r.
func (e *Engine) Justify(target netlist.GateID, v uint8) (Cube, Result) {
	return e.run(target, v, false)
}

// Detect searches for a test cube for the stuck-at fault site/stuckAt:
// the cube excites site to ¬stuckAt and propagates the difference to an
// observable output (PO or scan capture). Used by the ND-ATPG detection
// scheme.
func (e *Engine) Detect(site netlist.GateID, stuckAt uint8) (Cube, Result) {
	return e.run(site, stuckAt^1, true)
}

func (e *Engine) run(target netlist.GateID, want uint8, propagate bool) (Cube, Result) {
	e.Stats.Calls++
	e.met.calls.Inc()
	for i := range e.assign {
		e.assign[i] = sim.V3X
	}
	wantV := sim.V3(want & 1)
	var stuck sim.V3
	if propagate {
		stuck = sim.V3(want&1) ^ 1 // faulty plane forces the stuck value
	}

	// Trivial case: the target is itself an input.
	if pos, isInput := e.inputPos[target]; isInput {
		cube := NewCube(len(e.inputs))
		cube.Set(pos, wantV)
		if !propagate {
			return cube, Success
		}
		// Propagation from an input still needs the main loop; seed the
		// assignment.
		e.assign[pos] = wantV
	}

	// Restrict implication to the target's cone: justification only
	// depends on TFI(target); detection additionally needs TFO(target)
	// and the justification cones of everything on those paths. This
	// makes each implication O(cone) instead of O(circuit).
	e.prepareCone(target, propagate)

	var stack []decision
	backtracks := 0
	maxBT := e.MaxBacktracks
	if maxBT <= 0 {
		maxBT = DefaultMaxBacktracks
	}

	for {
		e.imply(target, stuck, propagate)

		ok, failed := e.status(target, wantV, propagate)
		if ok {
			return e.cubeFromAssign(), Success
		}
		advanced := false
		if !failed {
			if objNode, objVal, found := e.objective(target, wantV, propagate); found {
				pos, val := e.backtrace(objNode, objVal)
				stack = append(stack, decision{pos: pos, val: val})
				e.assign[pos] = val
				advanced = true
			}
		}
		if advanced {
			continue
		}
		// Dead end: flip the deepest unflipped decision.
		for {
			if len(stack) == 0 {
				e.met.untestable.Inc()
				return Cube{}, Untestable
			}
			top := &stack[len(stack)-1]
			if !top.flipped {
				backtracks++
				e.Stats.Backtracks++
				e.met.backtracks.Inc()
				if backtracks > maxBT {
					e.met.aborts.Inc()
					return Cube{}, Abort
				}
				top.flipped = true
				top.val ^= 1
				e.assign[top.pos] = top.val
				break
			}
			e.assign[top.pos] = sim.V3X
			stack = stack[:len(stack)-1]
		}
	}
}

// imply recomputes the good (and, when propagate, faulty) plane from the
// current input assignment.
func (e *Engine) imply(site netlist.GateID, stuck sim.V3, propagate bool) {
	e.Stats.Implies++
	e.met.implies.Inc()
	e.evalPlane(e.good, netlist.InvalidGate, sim.V3X)
	if propagate {
		e.evalPlane(e.faulty, site, stuck)
	}
}

// prepareCone computes the relevant gate set, the restricted evaluation
// order and the in-cone observable outputs for one PODEM run.
func (e *Engine) prepareCone(target netlist.GateID, propagate bool) {
	n := e.n
	if e.relev == nil {
		e.relev = make([]bool, len(n.Gates))
	} else {
		for i := range e.relev {
			e.relev[i] = false
		}
	}
	stack := e.coneBuf[:0]
	if propagate {
		// Seed with the fault's transitive fanout; the reverse closure
		// below adds every justification cone feeding those paths.
		tfo := n.TransitiveFanout(target)
		for i, in := range tfo {
			if in {
				e.relev[i] = true
				stack = append(stack, netlist.GateID(i))
			}
		}
	} else {
		e.relev[target] = true
		stack = append(stack, target)
	}
	// Reverse closure under fanin (TFI), stopping at combinational
	// sources (DFF outputs are sources in the full-scan view).
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g := &n.Gates[id]
		if g.Type == netlist.DFF || g.Type.IsSource() {
			continue
		}
		for _, f := range g.Fanin {
			if !e.relev[f] {
				e.relev[f] = true
				stack = append(stack, f)
			}
		}
	}
	e.coneBuf = stack[:0]

	e.order = e.order[:0]
	for _, id := range e.topo {
		if e.relev[id] {
			e.order = append(e.order, id)
		}
	}
	e.obsList = e.obsList[:0]
	if propagate {
		for _, id := range e.n.CombOutputs() {
			if e.relev[id] {
				e.obsList = append(e.obsList, id)
			}
		}
	}
}

func (e *Engine) evalPlane(vals []sim.V3, site netlist.GateID, sv sim.V3) {
	gates := e.n.Gates
	for _, id := range e.order {
		g := &gates[id]
		var v sim.V3
		switch g.Type {
		case netlist.Input, netlist.DFF:
			v = e.assign[e.inputPos[id]]
		default:
			if cap(e.faninV3) < len(g.Fanin) {
				e.faninV3 = make([]sim.V3, len(g.Fanin))
			}
			in := e.faninV3[:len(g.Fanin)]
			for i, f := range g.Fanin {
				in[i] = vals[f]
			}
			v = sim.EvalGate3(g.Type, in)
		}
		if id == site {
			v = sv
		}
		vals[id] = v
	}
}

// status reports whether the objective is met (ok) or provably violated
// on this branch (failed).
func (e *Engine) status(target netlist.GateID, want sim.V3, propagate bool) (ok, failed bool) {
	gv := e.good[target]
	if !propagate {
		if gv == want {
			return true, false
		}
		if gv != sim.V3X {
			return false, true
		}
		return false, false
	}
	// Detection mode: excitation must hold (good plane shows want at the
	// site; the faulty plane is forced to the stuck value).
	if gv != sim.V3X && gv != want {
		return false, true // fault cannot be excited on this branch
	}
	if gv == want {
		// Excited; detected if any observable net differs definitely.
		for _, id := range e.obsList {
			g, f := e.good[id], e.faulty[id]
			if g != sim.V3X && f != sim.V3X && g != f {
				return true, false
			}
		}
		// Not yet detected: fail this branch if no D-frontier gate has an
		// X-path to an observable output.
		if !e.hasXPath(target) {
			return false, true
		}
	}
	return false, false
}

// dFrontier returns gates whose output is still undetermined in at least
// one plane but which have a propagating D (definite, differing planes)
// on some input.
func (e *Engine) dFrontier() []netlist.GateID {
	var out []netlist.GateID
	for _, id := range e.order {
		g := &e.n.Gates[id]
		if g.Type == netlist.DFF || g.Type.IsSource() {
			continue
		}
		if e.good[id] != sim.V3X && e.faulty[id] != sim.V3X {
			continue
		}
		for _, f := range g.Fanin {
			gv, fv := e.good[f], e.faulty[f]
			if gv != sim.V3X && fv != sim.V3X && gv != fv {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// hasXPath reports whether some D-frontier gate (or the not-yet-excited
// site itself) can still reach an observable output through gates with
// an undetermined value.
func (e *Engine) hasXPath(site netlist.GateID) bool {
	frontier := e.dFrontier()
	if len(frontier) == 0 {
		// The site itself may still carry the D forward if undetermined
		// around it.
		frontier = append(frontier, site)
	}
	observable := make(map[netlist.GateID]bool)
	for _, id := range e.obsList {
		observable[id] = true
	}
	seen := make([]bool, len(e.n.Gates))
	var stack []netlist.GateID
	for _, f := range frontier {
		stack = append(stack, f)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		if observable[id] && (e.good[id] == sim.V3X || e.faulty[id] == sim.V3X ||
			e.good[id] != e.faulty[id]) {
			return true
		}
		for _, s := range e.n.Gates[id].Fanout {
			if e.n.Gates[s].Type == netlist.DFF {
				// id feeds a scan capture point; id itself is in the
				// observable set, already handled above.
				continue
			}
			if e.good[s] == sim.V3X || e.faulty[s] == sim.V3X {
				stack = append(stack, s)
			}
		}
	}
	return false
}

// objective picks the next (node, value) goal.
func (e *Engine) objective(target netlist.GateID, want sim.V3, propagate bool) (netlist.GateID, sim.V3, bool) {
	if e.good[target] == sim.V3X {
		return target, want, true
	}
	if !propagate {
		return netlist.InvalidGate, sim.V3X, false
	}
	// Excited: advance the D-frontier gate closest to an observation
	// point that still has an assignable (X in the good plane) input,
	// setting that input toward the non-controlling value.
	frontier := e.dFrontier()
	var (
		bestInput netlist.GateID = netlist.InvalidGate
		bestVal   sim.V3
		bestDist  = int32(1 << 30)
	)
	for _, id := range frontier {
		d := e.obsDist[id]
		if d < 0 || d >= bestDist {
			continue
		}
		g := &e.n.Gates[id]
		cv, hasCtl := g.Type.ControllingValue()
		objVal := sim.V3Zero // XOR-family: any definite value propagates
		if hasCtl {
			objVal = sim.V3(cv) ^ 1 // non-controlling value
		}
		for _, f := range g.Fanin {
			if e.good[f] == sim.V3X {
				bestInput, bestVal, bestDist = f, objVal, d
				break
			}
		}
	}
	if bestInput != netlist.InvalidGate {
		return bestInput, bestVal, true
	}
	// Every frontier gate is definite in the good plane but still open
	// in the faulty plane: its faulty value hinges on inputs that do not
	// influence the good plane. Decide any remaining free input in the
	// fault's cone so implication can resolve the faulty plane; the
	// decision tree over these inputs keeps the search complete.
	for pos, id := range e.inputs {
		if e.assign[pos] == sim.V3X && e.relev[id] {
			return id, sim.V3Zero, true
		}
	}
	return netlist.InvalidGate, sim.V3X, false
}

// backtrace walks an objective back to an unassigned input, returning
// its position and the value to try first. It follows X-valued nets
// only; SCOAP controllabilities steer the choice unless NaiveBacktrace.
func (e *Engine) backtrace(node netlist.GateID, v sim.V3) (int, sim.V3) {
	n := e.n
	for {
		if pos, isInput := e.inputPos[node]; isInput {
			return pos, v
		}
		g := &n.Gates[node]
		switch g.Type {
		case netlist.Buf:
			node = g.Fanin[0]
		case netlist.Not:
			node = g.Fanin[0]
			v ^= 1
		case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
			core := v
			if g.Type.HasInversion() {
				core ^= 1
			}
			cv, _ := g.Type.ControllingValue()
			// core == ¬cv means every input must be at the
			// non-controlling value: pick the hardest X input (fail
			// fast). Otherwise one controlling input suffices: pick the
			// easiest.
			allMust := core == sim.V3(cv)^1
			node = e.pickInput(g, sim.V3(cv)^boolToV3(allMust), allMust)
			if allMust {
				v = sim.V3(cv) ^ 1
			} else {
				v = sim.V3(cv)
			}
		case netlist.Xor, netlist.Xnor:
			// Choose the cheapest X input; aim for the parity residue the
			// definite inputs leave over.
			parity := sim.V3Zero
			if g.Type == netlist.Xnor {
				parity = sim.V3One
			}
			xCount := 0
			var pick netlist.GateID = netlist.InvalidGate
			var bestCost int64 = 1 << 62
			for _, f := range g.Fanin {
				fv := e.good[f]
				if fv == sim.V3X {
					xCount++
					cost := minI64(e.sc.CC0[f], e.sc.CC1[f])
					if e.NaiveBacktrace {
						if pick == netlist.InvalidGate {
							pick = f
						}
					} else if cost < bestCost {
						bestCost, pick = cost, f
					}
				} else {
					parity ^= fv
				}
			}
			if pick == netlist.InvalidGate {
				// No X input: implication will expose the conflict; fall
				// back to the first fanin to keep the walk moving.
				pick = g.Fanin[0]
			}
			need := parity ^ v // residue this input must supply if alone
			if xCount > 1 {
				// Underdetermined: try the cheaper value first.
				if !e.NaiveBacktrace && e.sc.CC1[pick] < e.sc.CC0[pick] {
					need = sim.V3One
				} else {
					need = sim.V3Zero
				}
			}
			node, v = pick, need
		default:
			// Constants cannot be backtraced; signal by returning the
			// first input position with the requested value — implication
			// will immediately fail the branch.
			return 0, v
		}
	}
}

// pickInput selects an X-valued fanin of g; want is the value it will be
// asked for; hardest selects max-cost (all-must case) vs min-cost.
func (e *Engine) pickInput(g *netlist.Gate, want sim.V3, hardest bool) netlist.GateID {
	var pick netlist.GateID = netlist.InvalidGate
	var bestCost int64
	if hardest {
		bestCost = -1
	} else {
		bestCost = 1 << 62
	}
	for _, f := range g.Fanin {
		if e.good[f] != sim.V3X {
			continue
		}
		if e.NaiveBacktrace {
			return f
		}
		cost := e.sc.CC(f, uint8(want))
		if hardest && cost > bestCost || !hardest && cost < bestCost {
			bestCost, pick = cost, f
		}
	}
	if pick == netlist.InvalidGate {
		pick = g.Fanin[0]
	}
	return pick
}

// cubeFromAssign snapshots the current PI assignment as a cube.
func (e *Engine) cubeFromAssign() Cube {
	c := NewCube(len(e.inputs))
	for i, v := range e.assign {
		if v != sim.V3X {
			c.Set(i, v)
		}
	}
	return c
}

func boolToV3(b bool) sim.V3 {
	if b {
		return 1
	}
	return 0
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
