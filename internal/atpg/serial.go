package atpg

import (
	"fmt"

	"cghti/internal/artifact"
)

// EncodeCube appends c's canonical binary form to e: the position count
// followed by the ones/zeros bitset words. Part of the artifact-store
// serialization of compatibility graphs and cliques.
func EncodeCube(e *artifact.Enc, c Cube) {
	e.Int(c.n)
	e.Words(c.ones)
	e.Words(c.zeros)
}

// DecodeCube reads a cube written by EncodeCube, validating that the
// bitset widths match the position count so a corrupted encoding cannot
// produce a cube whose accessors index out of range.
func DecodeCube(d *artifact.Dec) (Cube, error) {
	n := d.Int()
	ones := d.Words()
	zeros := d.Words()
	if err := d.Err(); err != nil {
		return Cube{}, err
	}
	w := (n + 63) / 64
	if n < 0 || len(ones) != w || len(zeros) != w {
		return Cube{}, fmt.Errorf("atpg: cube encoding inconsistent: n=%d, %d/%d words", n, len(ones), len(zeros))
	}
	return Cube{ones: ones, zeros: zeros, n: n}, nil
}
