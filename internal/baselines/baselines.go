// Package baselines implements the three HT insertion frameworks the
// paper compares against (Tables II and III):
//
//   - Random insertion: draw random rare-node subsets and validate each
//     by searching for a co-activating vector with functional
//     simulation — the expensive validation loop the compatibility graph
//     eliminates;
//   - RL insertion: a tabular Q-learning loop in the style of Sarihi et
//     al. [4], whose per-episode simulation reward is what makes RL
//     insertion slow;
//   - Trust-Hub-style insertion: small comparator triggers (2–8 trigger
//     nodes picked by signal probability), the classic manually-crafted
//     benchmark shape.
//
// All three splice the classic comparator trigger (inverters on rare-0
// nodes + AND tree) with an XOR payload, and all three report work/time
// statistics for the insertion-time comparison.
package baselines

import (
	"fmt"
	"math/rand"
	"time"

	"cghti/internal/netlist"
	"cghti/internal/rare"
	"cghti/internal/sim"
)

// Result describes one baseline-inserted trojan.
type Result struct {
	// Infected is the HT-infected netlist (a clone of the input).
	Infected *netlist.Netlist
	// TriggerNodes are the selected trigger nodes.
	TriggerNodes []rare.Node
	// TriggerOut names the trigger net in Infected; the trojan fires
	// when it is 1.
	TriggerOut string
	// Victim names the payload net.
	Victim string
	// TriggerVector is the validated co-activating input vector
	// (CombInputs order).
	TriggerVector []bool
	// Stats records the work spent.
	Stats Stats
}

// Stats counts the work a baseline spent to insert one trojan.
type Stats struct {
	// SubsetsTried counts candidate trigger-node subsets validated.
	SubsetsTried int
	// VectorsSimulated counts validation vectors simulated.
	VectorsSimulated int64
	// Episodes counts RL training episodes (RL baseline only).
	Episodes int
	// Elapsed is wall-clock insertion time.
	Elapsed time.Duration
}

// validateSubset searches for one random vector driving every node in
// subset to its rare value, simulating up to maxVectors vectors
// (bit-parallel). It returns the vector found, the number of vectors
// simulated, and whether it succeeded.
func validateSubset(n *netlist.Netlist, subset []rare.Node, maxVectors int, rng *rand.Rand) ([]bool, int64, bool) {
	const words = 8
	p, err := sim.NewPacked(n, words)
	if err != nil {
		return nil, 0, false
	}
	inputs := n.CombInputs()
	var simulated int64
	for simulated < int64(maxVectors) {
		p.Randomize(rng)
		p.Run()
		batch := int64(p.Patterns())
		if rem := int64(maxVectors) - simulated; batch > rem {
			batch = rem
		}
		// AND together per-pattern hit masks across the subset.
		for w := 0; w < words; w++ {
			acc := ^uint64(0)
			for _, node := range subset {
				bitsv := p.Word(node.ID, w)
				if node.RareValue == 0 {
					bitsv = ^bitsv
				}
				acc &= bitsv
				if acc == 0 {
					break
				}
			}
			if acc == 0 {
				continue
			}
			for b := 0; b < 64; b++ {
				pat := w*64 + b
				if int64(pat) >= batch {
					break
				}
				if acc&(1<<uint(b)) == 0 {
					continue
				}
				v := make([]bool, len(inputs))
				for i, id := range inputs {
					v[i] = p.Bit(id, pat)
				}
				return v, simulated + int64(pat) + 1, true
			}
		}
		simulated += batch
	}
	return nil, simulated, false
}

// insertComparator splices the classic comparator trigger over the
// subset into a clone of n: NOT gates on rare-0 nodes, a k=2 AND tree,
// and an XOR payload on a loop-safe victim.
func insertComparator(n *netlist.Netlist, subset []rare.Node, prefix string, rng *rand.Rand) (*netlist.Netlist, string, string, error) {
	out := n.Clone()
	out.Name = n.Name + "_" + prefix

	lits := make([]netlist.GateID, 0, len(subset))
	gateN := 0
	newGate := func(t netlist.GateType, fanin ...netlist.GateID) netlist.GateID {
		id := out.MustAddGate(fmt.Sprintf("%s_g%d", prefix, gateN), t)
		gateN++
		for _, f := range fanin {
			out.Connect(f, id)
		}
		return id
	}
	for _, node := range subset {
		if node.RareValue == 0 {
			lits = append(lits, newGate(netlist.Not, node.ID))
		} else {
			lits = append(lits, node.ID)
		}
	}
	for len(lits) > 1 {
		var next []netlist.GateID
		for i := 0; i+1 < len(lits); i += 2 {
			next = append(next, newGate(netlist.And, lits[i], lits[i+1]))
		}
		if len(lits)%2 == 1 {
			next = append(next, lits[len(lits)-1])
		}
		lits = next
	}
	trig := lits[0]
	if trig == subset[0].ID && len(subset) == 1 && subset[0].RareValue == 1 {
		// Degenerate single-node trigger without any new gate: buffer it
		// so the trigger net is distinct from the rare node.
		trig = newGate(netlist.Buf, trig)
	}

	victim, err := chooseLoopSafeVictim(n, subset, rng)
	if err != nil {
		return nil, "", "", err
	}
	payload := out.MustAddGate(prefix+"_payload", netlist.Xor)
	fanouts := append([]netlist.GateID(nil), out.Gates[victim].Fanout...)
	for _, f := range fanouts {
		if err := out.ReplaceFanin(f, victim, payload); err != nil {
			return nil, "", "", err
		}
	}
	out.Connect(victim, payload)
	out.Connect(trig, payload)
	if out.Gates[victim].IsPO {
		if err := out.ReplacePOMarker(victim, payload); err != nil {
			return nil, "", "", err
		}
	}
	if err := out.Levelize(); err != nil {
		return nil, "", "", fmt.Errorf("baselines: insertion created a cycle: %w", err)
	}
	return out, out.Gates[trig].Name, out.Gates[victim].Name, nil
}

func chooseLoopSafeVictim(n *netlist.Netlist, subset []rare.Node, rng *rand.Rand) (netlist.GateID, error) {
	trigSet := make(map[netlist.GateID]bool, len(subset))
	for _, nd := range subset {
		trigSet[nd.ID] = true
	}
	ok := func(v netlist.GateID) bool {
		g := &n.Gates[v]
		if g.Type == netlist.DFF || g.Type.IsSource() || trigSet[v] {
			return false
		}
		if len(g.Fanout) == 0 && !g.IsPO {
			return false
		}
		tfo := n.TransitiveFanout(v)
		for id := range trigSet {
			if tfo[id] {
				return false
			}
		}
		return true
	}
	for tries := 0; tries < 64; tries++ {
		v := netlist.GateID(rng.Intn(n.NumGates()))
		if ok(v) {
			return v, nil
		}
	}
	for i := 0; i < n.NumGates(); i++ {
		if v := netlist.GateID(i); ok(v) {
			return v, nil
		}
	}
	return 0, fmt.Errorf("baselines: no loop-safe victim net")
}

func sampleSubset(nodes []rare.Node, q int, rng *rand.Rand) []rare.Node {
	idx := rng.Perm(len(nodes))[:q]
	out := make([]rare.Node, q)
	for i, j := range idx {
		out[i] = nodes[j]
	}
	return out
}
