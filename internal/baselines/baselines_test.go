package baselines

import (
	"errors"
	"math/rand"
	"testing"

	"cghti/internal/bench"
	"cghti/internal/gen"
	"cghti/internal/netlist"
	"cghti/internal/rare"
	"cghti/internal/sim"
)

// fixture returns a circuit with a healthy population of rare nodes.
func fixture(t *testing.T, seed int64) (*netlist.Netlist, *rare.Set) {
	t.Helper()
	n, err := gen.Random(gen.Spec{Name: "base", PIs: 12, POs: 6, Gates: 150, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rare.Extract(n, rare.Config{Vectors: 3000, Threshold: 0.3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() < 8 {
		t.Skipf("only %d rare nodes on this seed", rs.Len())
	}
	return n, rs
}

// checkResult verifies the invariants every baseline result must hold:
// valid netlist, trigger fires on the validated vector, payload dormant
// otherwise.
func checkResult(t *testing.T, golden *netlist.Netlist, r *Result) {
	t.Helper()
	if err := r.Infected.Validate(); err != nil {
		t.Fatalf("infected netlist invalid: %v", err)
	}
	if len(r.TriggerVector) != len(golden.CombInputs()) {
		t.Fatalf("trigger vector width %d, want %d",
			len(r.TriggerVector), len(golden.CombInputs()))
	}
	in := map[netlist.GateID]uint8{}
	for i, id := range golden.CombInputs() {
		if r.TriggerVector[i] {
			in[id] = 1
		} else {
			in[id] = 0
		}
	}
	vals, err := sim.Eval(r.Infected, in)
	if err != nil {
		t.Fatal(err)
	}
	trig := r.Infected.MustLookup(r.TriggerOut)
	if vals[trig] != 1 {
		t.Fatal("validated vector does not fire the comparator trigger")
	}
	for _, node := range r.TriggerNodes {
		if vals[node.ID] != node.RareValue {
			t.Fatalf("trigger node %s not at rare value on the validated vector",
				r.Infected.Gates[node.ID].Name)
		}
	}
}

func TestRandomInsertSmallQ(t *testing.T) {
	n, rs := fixture(t, 41)
	r, err := RandomInsert(n, rs, RandomConfig{Q: 2, ValidationVectors: 60000, MaxSubsets: 40, Seed: 1})
	if err != nil {
		var ve *ValidationError
		if errors.As(err, &ve) {
			t.Skipf("no q=2 subset validated on this seed (work: %+v)", ve.Stats)
		}
		t.Fatal(err)
	}
	checkResult(t, n, r)
	if r.Stats.SubsetsTried < 1 || r.Stats.VectorsSimulated < 1 {
		t.Fatalf("stats not recorded: %+v", r.Stats)
	}
}

func TestRandomInsertLargeQFailsWithinBudget(t *testing.T) {
	// q=12 random rare nodes essentially never co-activate within a
	// small vector budget — the validation wall the paper's Table III
	// shows. The call must terminate with a ValidationError, not hang.
	n, rs := fixture(t, 42)
	if rs.Len() < 12 {
		t.Skip("not enough rare nodes")
	}
	_, err := RandomInsert(n, rs, RandomConfig{Q: 12, ValidationVectors: 2000, MaxSubsets: 5, Seed: 2})
	var ve *ValidationError
	if err == nil {
		t.Skip("a q=12 subset validated — lucky seed")
	}
	if !errors.As(err, &ve) {
		t.Fatalf("want ValidationError, got %v", err)
	}
	if ve.Stats.SubsetsTried != 5 {
		t.Fatalf("tried %d subsets, want 5", ve.Stats.SubsetsTried)
	}
	if ve.Stats.VectorsSimulated < 5*2000 {
		t.Fatalf("simulated %d vectors, want >= 10000", ve.Stats.VectorsSimulated)
	}
}

func TestRandomInsertQTooLarge(t *testing.T) {
	n, rs := fixture(t, 43)
	if _, err := RandomInsert(n, rs, RandomConfig{Q: rs.Len() + 1}); err == nil {
		t.Fatal("q > rare-node count accepted")
	}
}

func TestRLInsert(t *testing.T) {
	n, rs := fixture(t, 44)
	r, err := RLInsert(n, rs, RLConfig{Q: 3, Episodes: 60, RewardVectors: 1024, Seed: 3})
	if err != nil {
		var ve *ValidationError
		if errors.As(err, &ve) {
			t.Skipf("RL failed to validate on this seed: %+v", ve.Stats)
		}
		t.Fatal(err)
	}
	checkResult(t, n, r)
	if r.Stats.Episodes != 60 {
		t.Fatalf("episodes = %d, want 60", r.Stats.Episodes)
	}
	if len(r.TriggerNodes) != 3 {
		t.Fatalf("q = %d, want 3", len(r.TriggerNodes))
	}
}

func TestTrustHubLike(t *testing.T) {
	n, rs := fixture(t, 45)
	r, err := TrustHubLike(n, rs, TrustHubConfig{Q: 3, Seed: 4})
	if err != nil {
		var ve *ValidationError
		if errors.As(err, &ve) {
			t.Skipf("trust-hub generator failed on this seed: %+v", ve.Stats)
		}
		t.Fatal(err)
	}
	checkResult(t, n, r)
	// Trigger nodes drawn from the mid-probability band when available.
	for _, node := range r.TriggerNodes {
		if node.Prob > 0.35 {
			t.Errorf("trust-hub node prob %v above the band", node.Prob)
		}
	}
}

func TestInsertComparatorDormantEquivalence(t *testing.T) {
	n, rs := fixture(t, 46)
	r, err := TrustHubLike(n, rs, TrustHubConfig{Q: 3, Seed: 5})
	if err != nil {
		t.Skipf("generator failed: %v", err)
	}
	trig := r.Infected.MustLookup(r.TriggerOut)
	rng := rand.New(rand.NewSource(6))
	checked := 0
	for v := 0; v < 200; v++ {
		in := map[netlist.GateID]uint8{}
		for _, id := range n.CombInputs() {
			in[id] = uint8(rng.Intn(2))
		}
		gv, err := sim.Eval(n, in)
		if err != nil {
			t.Fatal(err)
		}
		iv, err := sim.Eval(r.Infected, in)
		if err != nil {
			t.Fatal(err)
		}
		if iv[trig] == 1 {
			continue
		}
		checked++
		for i, po := range n.POs {
			if gv[po] != iv[r.Infected.POs[i]] {
				t.Fatal("dormant baseline trojan changed an output")
			}
		}
	}
	if checked == 0 {
		t.Fatal("trigger fired on every random vector")
	}
}

func TestValidateSubsetFindsEasyVector(t *testing.T) {
	// Single AND2: co-activation probability 1/4; 1000 vectors suffice.
	n, err := bench.ParseString(`
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
`, "t")
	if err != nil {
		t.Fatal(err)
	}
	subset := []rare.Node{{ID: n.MustLookup("y"), RareValue: 1, Prob: 0.25}}
	rng := rand.New(rand.NewSource(7))
	vec, simulated, ok := validateSubset(n, subset, 1000, rng)
	if !ok {
		t.Fatal("validation failed on a p=0.25 event in 1000 vectors")
	}
	if simulated < 1 || simulated > 1000 {
		t.Fatalf("simulated = %d", simulated)
	}
	if !vec[0] || !vec[1] {
		t.Fatalf("vector %v does not set a=b=1", vec)
	}
}

func TestValidateSubsetRespectsBudget(t *testing.T) {
	// An impossible condition: y=1 AND y=0 simultaneously.
	n, err := bench.ParseString(`
INPUT(a)
OUTPUT(y)
OUTPUT(z)
y = BUFF(a)
z = NOT(a)
`, "t")
	if err != nil {
		t.Fatal(err)
	}
	subset := []rare.Node{
		{ID: n.MustLookup("y"), RareValue: 1},
		{ID: n.MustLookup("z"), RareValue: 1},
	}
	rng := rand.New(rand.NewSource(8))
	_, simulated, ok := validateSubset(n, subset, 5000, rng)
	if ok {
		t.Fatal("impossible subset validated")
	}
	if simulated < 5000 {
		t.Fatalf("budget not exhausted: %d", simulated)
	}
}

func TestValidationErrorMessage(t *testing.T) {
	e := &ValidationError{Q: 10, Stats: Stats{SubsetsTried: 3, VectorsSimulated: 300}}
	msg := e.Error()
	for _, want := range []string{"q=10", "3 subsets", "300 vectors"} {
		if !contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestPickSubsetDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q := make([]float64, 20)
	for i := range q {
		q[i] = float64(i)
	}
	for trial := 0; trial < 50; trial++ {
		sel := pickSubset(q, 5, 0.5, rng)
		seen := map[int]bool{}
		for _, j := range sel {
			if seen[j] {
				t.Fatal("pickSubset returned duplicates")
			}
			seen[j] = true
		}
		if len(sel) != 5 {
			t.Fatalf("len = %d", len(sel))
		}
	}
	// Pure greedy picks the top-q by value.
	sel := pickSubset(q, 3, 0, rng)
	for _, j := range sel {
		if j < 17 {
			t.Fatalf("greedy pick %v not top-3", sel)
		}
	}
}

func TestRandomInsertNoValidation(t *testing.T) {
	n, rs := fixture(t, 47)
	r, err := RandomInsertNoValidation(n, rs, RandomConfig{Q: 12, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Infected.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(r.TriggerNodes) != 12 {
		t.Fatalf("q = %d, want 12", len(r.TriggerNodes))
	}
	if r.TriggerVector != nil {
		t.Fatal("unvalidated insertion claims a trigger vector")
	}
	// Dormant equivalence still holds on non-firing vectors.
	trig := r.Infected.MustLookup(r.TriggerOut)
	rng := rand.New(rand.NewSource(7))
	for v := 0; v < 100; v++ {
		in := map[netlist.GateID]uint8{}
		for _, id := range n.CombInputs() {
			in[id] = uint8(rng.Intn(2))
		}
		iv, err := sim.Eval(r.Infected, in)
		if err != nil {
			t.Fatal(err)
		}
		if iv[trig] == 1 {
			continue
		}
		gv, err := sim.Eval(n, in)
		if err != nil {
			t.Fatal(err)
		}
		for i, po := range n.POs {
			if gv[po] != iv[r.Infected.POs[i]] {
				t.Fatal("dormant unvalidated trojan changed an output")
			}
		}
	}
}

func TestRandomInsertNoValidationTooFewNodes(t *testing.T) {
	n, rs := fixture(t, 48)
	if _, err := RandomInsertNoValidation(n, rs, RandomConfig{Q: rs.Len() + 1}); err == nil {
		t.Fatal("q beyond rare-node count accepted")
	}
	_ = n
}
