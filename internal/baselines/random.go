package baselines

import (
	"fmt"
	"math/rand"
	"time"

	"cghti/internal/netlist"
	"cghti/internal/rare"
)

// RandomConfig parameterizes the Random HT insertion baseline.
type RandomConfig struct {
	// Q is the number of trigger nodes per trojan (the paper's random
	// baseline used 10–20).
	Q int
	// ValidationVectors is the per-subset random-simulation budget spent
	// searching for a co-activating vector.
	ValidationVectors int
	// MaxSubsets bounds how many random subsets are tried before giving
	// up.
	MaxSubsets int
	// Seed drives subset sampling and validation vectors.
	Seed int64
}

func (c RandomConfig) withDefaults() RandomConfig {
	if c.Q <= 0 {
		c.Q = 10
	}
	if c.ValidationVectors <= 0 {
		c.ValidationVectors = 100000
	}
	if c.MaxSubsets <= 0 {
		c.MaxSubsets = 50
	}
	return c
}

// RandomInsert performs one random HT insertion: sample a random
// q-subset of rare nodes, validate it by random simulation, repeat until
// a triggerable subset is found, then splice the trojan. The validation
// loop is exactly the cost the paper's Table III charges this baseline
// for: most random subsets are either mutually incompatible or need
// astronomically many vectors to co-activate.
func RandomInsert(n *netlist.Netlist, rs *rare.Set, cfg RandomConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	nodes := rs.All()
	if len(nodes) < cfg.Q {
		return nil, fmt.Errorf("baselines: only %d rare nodes, need q=%d", len(nodes), cfg.Q)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	var stats Stats
	for s := 0; s < cfg.MaxSubsets; s++ {
		subset := sampleSubset(nodes, cfg.Q, rng)
		stats.SubsetsTried++
		vec, simulated, ok := validateSubset(n, subset, cfg.ValidationVectors, rng)
		stats.VectorsSimulated += simulated
		if !ok {
			continue
		}
		infected, trig, victim, err := insertComparator(n, subset, fmt.Sprintf("rnd%d", s), rng)
		if err != nil {
			return nil, err
		}
		stats.Elapsed = time.Since(start)
		return &Result{
			Infected:      infected,
			TriggerNodes:  subset,
			TriggerOut:    trig,
			Victim:        victim,
			TriggerVector: vec,
			Stats:         stats,
		}, nil
	}
	stats.Elapsed = time.Since(start)
	return nil, &ValidationError{Stats: stats, Q: cfg.Q}
}

// RandomInsertNoValidation inserts a comparator trojan over a uniformly
// random q-subset of rare nodes without searching for an activating
// vector. This is how bulk random benchmark suites are produced when
// per-instance validation is unaffordable — and why their trojans often
// cannot be triggered at all (the low TC of the paper's Table II random
// rows).
func RandomInsertNoValidation(n *netlist.Netlist, rs *rare.Set, cfg RandomConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	nodes := rs.All()
	if len(nodes) < cfg.Q {
		return nil, fmt.Errorf("baselines: only %d rare nodes, need q=%d", len(nodes), cfg.Q)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	subset := sampleSubset(nodes, cfg.Q, rng)
	infected, trig, victim, err := insertComparator(n, subset, "rndnv", rng)
	if err != nil {
		return nil, err
	}
	return &Result{
		Infected:     infected,
		TriggerNodes: subset,
		TriggerOut:   trig,
		Victim:       victim,
		Stats:        Stats{SubsetsTried: 1, Elapsed: time.Since(start)},
	}, nil
}

// ValidationError reports a failed random insertion (no subset could be
// validated within budget) along with the work spent — the common case
// for large q, and the reason the random baseline's insertion times
// explode.
type ValidationError struct {
	Stats Stats
	Q     int
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("baselines: no co-activating vector found for any q=%d subset (%d subsets, %d vectors simulated)",
		e.Q, e.Stats.SubsetsTried, e.Stats.VectorsSimulated)
}
