package baselines

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cghti/internal/netlist"
	"cghti/internal/rare"
	"cghti/internal/scoap"
	"cghti/internal/sim"
)

// RLConfig parameterizes the Q-learning insertion baseline (the shape of
// Sarihi et al.'s "Trojan playground": rare nodes + SCOAP features as
// the action space, simulation-derived reward).
type RLConfig struct {
	// Q is the trigger-node count (the published RL-ISCAS-85 benchmark
	// caps at 5).
	Q int
	// Episodes is the training length; every episode pays for a
	// functional-simulation reward evaluation, which is why RL insertion
	// is orders of magnitude slower than the compatibility graph.
	Episodes int
	// RewardVectors is the per-episode simulation budget.
	RewardVectors int
	// Candidates caps the action space to the M rarest nodes (0 = 64).
	Candidates int
	// MinProb drops nodes whose rare value essentially never occurs
	// under random vectors (default 0.05). The published RL benchmark
	// trojans are triggered by ~100k random vectors with ~95% probability
	// (Table II of the paper), i.e. joint activation probabilities around
	// 1e-4 — node probabilities in the 0.05–0.25 band.
	// are all validated, i.e. their q=5 trigger sets do co-activate
	// within a feasible simulation budget — which requires trigger
	// nodes that are rare but not astronomically so.
	MinProb float64
	// Epsilon is the exploration rate (linearly annealed to 0.05).
	Epsilon float64
	// Alpha is the learning rate.
	Alpha float64
	// Seed drives exploration and reward simulation.
	Seed int64
}

func (c RLConfig) withDefaults() RLConfig {
	if c.Q <= 0 {
		c.Q = 5
	}
	if c.Episodes <= 0 {
		c.Episodes = 200
	}
	if c.RewardVectors <= 0 {
		c.RewardVectors = 2048
	}
	if c.Candidates <= 0 {
		c.Candidates = 64
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.6
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.2
	}
	return c
}

// RLInsert trains a tabular Q-learning agent to pick q co-activatable
// rare nodes, then splices the comparator trojan over the best subset
// found. The reward of an episode's subset is the best per-vector
// co-activation fraction observed over RewardVectors random vectors
// (plus a SCOAP-derived stealth bonus, mirroring Sarihi et al.'s use of
// SCOAP parameters); a reward of 1 means a validating vector was found.
func RLInsert(n *netlist.Netlist, rs *rare.Set, cfg RLConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	all := rs.All()
	if len(all) < cfg.Q {
		return nil, fmt.Errorf("baselines: only %d rare nodes, need q=%d", len(all), cfg.Q)
	}
	// Action space: the M rarest nodes above the feasibility floor.
	minProb := cfg.MinProb
	if minProb <= 0 {
		minProb = 0.05
	}
	feasible := make([]rare.Node, 0, len(all))
	for _, nd := range all {
		if nd.Prob >= minProb {
			feasible = append(feasible, nd)
		}
	}
	if len(feasible) >= cfg.Q {
		all = feasible
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Prob < all[b].Prob })
	cands := all
	if len(cands) > cfg.Candidates {
		// Stride-sample the action space across the rarity band instead
		// of taking only the very rarest: the agent needs some
		// easier-to-fire nodes in the mix to ever observe a reward of 1,
		// which is what lets Q-learning converge on validated subsets.
		sampled := make([]rare.Node, 0, cfg.Candidates)
		step := float64(len(cands)) / float64(cfg.Candidates)
		for i := 0; i < cfg.Candidates; i++ {
			sampled = append(sampled, cands[int(float64(i)*step)])
		}
		cands = sampled
	}
	sc, err := scoap.Compute(n)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()

	qvals := make([]float64, len(cands))
	var stats Stats
	var bestSubset []rare.Node
	var bestVec []bool
	bestReward := -1.0

	p, err := sim.NewPacked(n, 8)
	if err != nil {
		return nil, err
	}

	for ep := 0; ep < cfg.Episodes; ep++ {
		stats.Episodes++
		eps := cfg.Epsilon * (1 - float64(ep)/float64(cfg.Episodes))
		if eps < 0.05 {
			eps = 0.05
		}
		subsetIdx := pickSubset(qvals, cfg.Q, eps, rng)
		subset := make([]rare.Node, len(subsetIdx))
		for i, j := range subsetIdx {
			subset[i] = cands[j]
		}

		reward, vec := episodeReward(p, n, subset, cfg.RewardVectors, sc, rng)
		stats.VectorsSimulated += int64(cfg.RewardVectors)
		for _, j := range subsetIdx {
			qvals[j] += cfg.Alpha * (reward - qvals[j])
		}
		if reward > bestReward {
			bestReward = reward
			bestSubset = subset
			bestVec = vec
		}
		if vec != nil && bestVec == nil {
			bestSubset, bestVec = subset, vec
		}
	}

	if bestVec == nil {
		// Exploitation phase: no episode stumbled on a full
		// co-activation, so search near the learned policy — several
		// Q-value-guided subsets, each with a larger validation budget.
		for attempt := 0; attempt < 16 && bestVec == nil; attempt++ {
			idx := pickSubset(qvals, cfg.Q, 0.3, rng)
			subset := make([]rare.Node, len(idx))
			for i, j := range idx {
				subset[i] = cands[j]
			}
			vec, simulated, ok := validateSubset(n, subset, 8*cfg.RewardVectors, rng)
			stats.VectorsSimulated += simulated
			stats.SubsetsTried++
			if ok {
				bestSubset, bestVec = subset, vec
			}
		}
		if bestVec == nil {
			stats.Elapsed = time.Since(start)
			return nil, &ValidationError{Stats: stats, Q: cfg.Q}
		}
	}

	infected, trig, victim, err := insertComparator(n, bestSubset, "rl", rng)
	if err != nil {
		return nil, err
	}
	stats.Elapsed = time.Since(start)
	return &Result{
		Infected:      infected,
		TriggerNodes:  bestSubset,
		TriggerOut:    trig,
		Victim:        victim,
		TriggerVector: bestVec,
		Stats:         stats,
	}, nil
}

// pickSubset selects q distinct actions epsilon-greedily by Q-value.
func pickSubset(qvals []float64, q int, eps float64, rng *rand.Rand) []int {
	type ranked struct {
		idx int
		val float64
	}
	order := make([]ranked, len(qvals))
	for i, v := range qvals {
		order[i] = ranked{i, v}
	}
	sort.SliceStable(order, func(a, b int) bool { return order[a].val > order[b].val })
	chosen := make([]int, 0, q)
	used := make(map[int]bool, q)
	next := 0
	for len(chosen) < q {
		if rng.Float64() < eps {
			j := rng.Intn(len(qvals))
			if used[j] {
				continue
			}
			used[j] = true
			chosen = append(chosen, j)
			continue
		}
		for used[order[next].idx] {
			next++
		}
		used[order[next].idx] = true
		chosen = append(chosen, order[next].idx)
	}
	return chosen
}

// episodeReward simulates random vectors and scores the subset: the best
// per-vector fraction of nodes at their rare values, with a small SCOAP
// stealth bonus when full co-activation is found. Returns the
// co-activating vector if one was observed.
func episodeReward(p *sim.Packed, n *netlist.Netlist, subset []rare.Node, vectors int, sc *scoap.Measures, rng *rand.Rand) (float64, []bool) {
	inputs := n.CombInputs()
	best := 0.0
	var hit []bool
	remaining := vectors
	for remaining > 0 && hit == nil {
		p.Randomize(rng)
		p.Run()
		batch := p.Patterns()
		if batch > remaining {
			batch = remaining
		}
		for w := 0; w*64 < batch; w++ {
			lim := batch - w*64
			if lim > 64 {
				lim = 64
			}
			for b := 0; b < lim; b++ {
				cnt := 0
				for _, node := range subset {
					bit := p.Word(node.ID, w)&(1<<uint(b)) != 0
					if bit == (node.RareValue == 1) {
						cnt++
					}
				}
				frac := float64(cnt) / float64(len(subset))
				if frac > best {
					best = frac
				}
				if cnt == len(subset) && hit == nil {
					pat := w*64 + b
					hit = make([]bool, len(inputs))
					for i, id := range inputs {
						hit[i] = p.Bit(id, pat)
					}
				}
			}
		}
		remaining -= batch
	}
	if hit != nil {
		// Stealth bonus: harder-to-control triggers score higher
		// (normalized log of summed controllabilities), as in the
		// SCOAP-augmented reward of Sarihi et al.
		var cc int64
		for _, node := range subset {
			cc += sc.CC(node.ID, node.RareValue)
		}
		bonus := 0.1
		if cc > 0 {
			bonus = 0.1 + 0.1*float64(len(subset))/float64(cc)
		}
		return 1 + bonus, hit
	}
	return best, nil
}
