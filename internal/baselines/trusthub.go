package baselines

import (
	"fmt"
	"math/rand"
	"time"

	"cghti/internal/netlist"
	"cghti/internal/rare"
)

// TrustHubConfig parameterizes the Trust-Hub-style generator: small
// comparator triggers over moderately rare signals, the shape of the
// manually inserted gate-level Trust-Hub benchmarks.
type TrustHubConfig struct {
	// Q is the trigger-node count (Trust-Hub gate-level trojans use
	// 2–8; default 4).
	Q int
	// MinProb/MaxProb bound the signal probability of selected trigger
	// nodes (defaults 0.03–0.3: rare enough to be stealthy-looking,
	// common enough that manual validation was feasible).
	MinProb, MaxProb float64
	// ValidationVectors bounds the per-subset validation search.
	ValidationVectors int
	// MaxSubsets bounds resampling.
	MaxSubsets int
	// Seed drives all sampling.
	Seed int64
}

func (c TrustHubConfig) withDefaults() TrustHubConfig {
	if c.Q <= 0 {
		c.Q = 4
	}
	if c.MaxProb <= 0 {
		c.MaxProb = 0.3
	}
	if c.MinProb <= 0 {
		c.MinProb = 0.03
	}
	if c.ValidationVectors <= 0 {
		c.ValidationVectors = 50000
	}
	if c.MaxSubsets <= 0 {
		c.MaxSubsets = 200
	}
	return c
}

// TrustHubLike inserts one Trust-Hub-style trojan: q moderately rare
// nodes, comparator trigger, XOR payload. Because q is small and the
// nodes are only moderately rare, validation almost always succeeds
// quickly — and the same property makes these trojans partially
// detectable by logic testing, reproducing the Trust-Hub rows of
// Table II.
func TrustHubLike(n *netlist.Netlist, rs *rare.Set, cfg TrustHubConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	var pool []rare.Node
	for _, node := range rs.All() {
		if node.Prob >= cfg.MinProb && node.Prob <= cfg.MaxProb {
			pool = append(pool, node)
		}
	}
	if len(pool) < cfg.Q {
		// Fall back to the whole rare set rather than failing: small
		// circuits may not have enough mid-probability nodes.
		pool = rs.All()
	}
	if len(pool) < cfg.Q {
		return nil, fmt.Errorf("baselines: only %d candidate nodes, need q=%d", len(pool), cfg.Q)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	var stats Stats
	for s := 0; s < cfg.MaxSubsets; s++ {
		subset := sampleSubset(pool, cfg.Q, rng)
		stats.SubsetsTried++
		vec, simulated, ok := validateSubset(n, subset, cfg.ValidationVectors, rng)
		stats.VectorsSimulated += simulated
		if !ok {
			continue
		}
		infected, trig, victim, err := insertComparator(n, subset, fmt.Sprintf("th%d", s), rng)
		if err != nil {
			return nil, err
		}
		stats.Elapsed = time.Since(start)
		return &Result{
			Infected:      infected,
			TriggerNodes:  subset,
			TriggerOut:    trig,
			Victim:        victim,
			TriggerVector: vec,
			Stats:         stats,
		}, nil
	}
	stats.Elapsed = time.Since(start)
	return nil, &ValidationError{Stats: stats, Q: cfg.Q}
}
