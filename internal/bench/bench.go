// Package bench reads and writes the ISCAS .bench netlist format, the
// format in which the ISCAS85/ISCAS89 circuits the paper evaluates on are
// distributed, and in which the generated HT-infected benchmarks are
// emitted. A structural Verilog writer is provided for the synthesis/area
// flow.
//
// The accepted grammar (case-insensitive operators, '#' comments):
//
//	INPUT(a)
//	OUTPUT(z)
//	z = NAND(a, b)
//	q = DFF(d)
//	w = NOT(x)
package bench

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"cghti/internal/netlist"
)

// ParseError describes a syntax or semantic error with its source line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("bench: line %d: %s", e.Line, e.Msg)
}

// Parse reads a .bench netlist from r. The name is used as the circuit
// name (conventionally the file base name without extension).
func Parse(r io.Reader, name string) (*netlist.Netlist, error) {
	type pending struct {
		line   int
		name   string
		op     netlist.GateType
		inputs []string
	}
	var (
		inputs   []string
		outputs  []string
		assigns  []pending
		seenDefs = map[string]int{} // net name -> line defined
	)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case hasPrefixFold(line, "INPUT"):
			arg, err := parseParen(line, "INPUT")
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			if prev, dup := seenDefs[arg]; dup {
				return nil, &ParseError{lineNo, fmt.Sprintf("net %q already defined on line %d", arg, prev)}
			}
			seenDefs[arg] = lineNo
			inputs = append(inputs, arg)
		case hasPrefixFold(line, "OUTPUT"):
			arg, err := parseParen(line, "OUTPUT")
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			outputs = append(outputs, arg)
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, &ParseError{lineNo, fmt.Sprintf("expected INPUT/OUTPUT/assignment, got %q", line)}
			}
			lhs := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			if lhs == "" {
				return nil, &ParseError{lineNo, "empty left-hand side"}
			}
			op, args, err := parseCall(rhs)
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			t, ok := netlist.ParseGateType(op)
			if !ok {
				return nil, &ParseError{lineNo, fmt.Sprintf("unknown gate type %q", op)}
			}
			if t == netlist.Input {
				return nil, &ParseError{lineNo, "INPUT cannot appear on the right-hand side"}
			}
			if prev, dup := seenDefs[lhs]; dup {
				return nil, &ParseError{lineNo, fmt.Sprintf("net %q already defined on line %d", lhs, prev)}
			}
			seenDefs[lhs] = lineNo
			assigns = append(assigns, pending{lineNo, lhs, t, args})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: read: %w", err)
	}

	nl := netlist.New(name)
	for _, in := range inputs {
		if _, err := nl.AddGate(in, netlist.Input); err != nil {
			return nil, err
		}
	}
	for _, a := range assigns {
		if _, err := nl.AddGate(a.name, a.op); err != nil {
			return nil, err
		}
	}
	for _, a := range assigns {
		dst := nl.MustLookup(a.name)
		switch a.op {
		case netlist.Const0, netlist.Const1:
			if len(a.inputs) != 0 {
				return nil, &ParseError{a.line, fmt.Sprintf("%s takes no arguments", a.op)}
			}
		case netlist.Buf, netlist.Not, netlist.DFF:
			if len(a.inputs) != 1 {
				return nil, &ParseError{a.line, fmt.Sprintf("%s takes exactly 1 argument, got %d", a.op, len(a.inputs))}
			}
		default:
			if len(a.inputs) < 1 {
				return nil, &ParseError{a.line, fmt.Sprintf("%s needs at least 1 argument", a.op)}
			}
		}
		for _, in := range a.inputs {
			src, ok := nl.Lookup(in)
			if !ok {
				return nil, &ParseError{a.line, fmt.Sprintf("undefined net %q", in)}
			}
			nl.Connect(src, dst)
		}
	}
	for _, out := range outputs {
		id, ok := nl.Lookup(out)
		if !ok {
			return nil, fmt.Errorf("bench: OUTPUT(%s) references an undefined net", out)
		}
		nl.MarkPO(id)
	}
	// A parsed netlist is guaranteed structurally valid: correct
	// arities, at least one input and one output, and acyclic
	// combinational logic.
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	if err := nl.Levelize(); err != nil {
		return nil, err
	}
	return nl, nil
}

// ParseFile reads a .bench file from disk; the circuit name is derived
// from the file name.
func ParseFile(path string) (*netlist.Netlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	name = strings.TrimSuffix(name, ".bench")
	return Parse(f, name)
}

// ParseString parses a .bench netlist held in a string.
func ParseString(src, name string) (*netlist.Netlist, error) {
	return Parse(strings.NewReader(src), name)
}

func hasPrefixFold(s, prefix string) bool {
	if len(s) < len(prefix) {
		return false
	}
	return strings.EqualFold(s[:len(prefix)], prefix)
}

// parseParen extracts X from "KEYWORD(X)".
func parseParen(line, keyword string) (string, error) {
	rest := strings.TrimSpace(line[len(keyword):])
	if len(rest) < 2 || rest[0] != '(' || rest[len(rest)-1] != ')' {
		return "", fmt.Errorf("malformed %s declaration %q", keyword, line)
	}
	arg := strings.TrimSpace(rest[1 : len(rest)-1])
	if arg == "" {
		return "", fmt.Errorf("empty %s name", keyword)
	}
	return arg, nil
}

// parseCall parses "OP(a, b, c)" into OP and its arguments. "vdd"/"gnd"
// style constant assignments without parens are rejected — use
// CONST1()/CONST0().
func parseCall(rhs string) (op string, args []string, err error) {
	open := strings.IndexByte(rhs, '(')
	if open < 0 || !strings.HasSuffix(rhs, ")") {
		return "", nil, fmt.Errorf("malformed gate expression %q", rhs)
	}
	op = strings.TrimSpace(rhs[:open])
	if op == "" {
		return "", nil, fmt.Errorf("missing operator in %q", rhs)
	}
	inner := strings.TrimSpace(rhs[open+1 : len(rhs)-1])
	if inner == "" {
		return op, nil, nil
	}
	parts := strings.Split(inner, ",")
	args = make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return "", nil, fmt.Errorf("empty argument in %q", rhs)
		}
		args = append(args, p)
	}
	return op, args, nil
}

// Write emits the netlist in .bench format. Gates are written in
// topological order so the output parses back without forward
// references being an issue for humans reading it (the parser itself
// allows forward references).
func Write(w io.Writer, n *netlist.Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", n.Name)
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d DFF, %d gates\n",
		len(n.PIs), len(n.POs), len(n.DFFs), n.NumCells())
	for _, id := range n.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", n.Gates[id].Name)
	}
	for _, id := range n.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", n.Gates[id].Name)
	}
	fmt.Fprintln(bw)
	order, err := n.TopoOrder()
	if err != nil {
		// Fall back to declaration order; .bench allows forward refs.
		order = make([]netlist.GateID, len(n.Gates))
		for i := range order {
			order[i] = netlist.GateID(i)
		}
	}
	// DFFs are sources in topo order but must still be printed as
	// assignments; print them first, conventionally.
	for _, id := range n.DFFs {
		g := &n.Gates[id]
		fmt.Fprintf(bw, "%s = DFF(%s)\n", g.Name, n.Gates[g.Fanin[0]].Name)
	}
	for _, id := range order {
		g := &n.Gates[id]
		switch g.Type {
		case netlist.Input, netlist.DFF:
			continue
		case netlist.Const0, netlist.Const1:
			fmt.Fprintf(bw, "%s = %s()\n", g.Name, g.Type)
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = n.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// WriteFile writes the netlist to a .bench file.
func WriteFile(path string, n *netlist.Netlist) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, n); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// String renders the netlist as .bench text.
func String(n *netlist.Netlist) string {
	var sb strings.Builder
	_ = Write(&sb, n)
	return sb.String()
}

// SortedTypeNames returns the gate types present in n sorted by name;
// used by reporting code.
func SortedTypeNames(n *netlist.Netlist) []string {
	set := map[string]bool{}
	for i := range n.Gates {
		set[n.Gates[i].Type.String()] = true
	}
	names := make([]string, 0, len(set))
	for k := range set {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
