package bench

import (
	"strings"
	"testing"

	"cghti/internal/netlist"
)

const c17 = `
# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func TestParseC17(t *testing.T) {
	n, err := ParseString(c17, "c17")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(n.PIs) != 5 || len(n.POs) != 2 {
		t.Fatalf("got %d PIs / %d POs, want 5/2", len(n.PIs), len(n.POs))
	}
	if n.NumCells() != 6 {
		t.Fatalf("got %d cells, want 6", n.NumCells())
	}
	g22 := n.Gates[n.MustLookup("22")]
	if g22.Type != netlist.Nand || len(g22.Fanin) != 2 {
		t.Fatalf("gate 22 = %v with %d fanins", g22.Type, len(g22.Fanin))
	}
}

func TestParseSequential(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(q)
q = DFF(d)
d = XOR(a, q)
`
	n, err := ParseString(src, "toggle")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(n.DFFs) != 1 {
		t.Fatalf("got %d DFFs, want 1", len(n.DFFs))
	}
}

func TestParseForwardReference(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(y)
y = NOT(z)
z = BUFF(a)
`
	n, err := ParseString(src, "fwd")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseConst(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(y)
one = CONST1()
y = AND(a, one)
`
	n, err := ParseString(src, "const")
	if err != nil {
		t.Fatal(err)
	}
	if n.Gates[n.MustLookup("one")].Type != netlist.Const1 {
		t.Fatal("CONST1 not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"garbage", "INPUT(a)\nwhat is this", "expected"},
		{"unknownGate", "INPUT(a)\ny = FROB(a)\nOUTPUT(y)", "unknown gate type"},
		{"undefinedNet", "INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)", "undefined net"},
		{"undefinedOutput", "INPUT(a)\nOUTPUT(ghost)\ny = NOT(a)", "undefined"},
		{"duplicate", "INPUT(a)\na = NOT(a)\nOUTPUT(a)", "already defined"},
		{"badArityNot", "INPUT(a)\nINPUT(b)\ny = NOT(a, b)\nOUTPUT(y)", "exactly 1"},
		{"emptyArg", "INPUT(a)\ny = AND(a, )\nOUTPUT(y)", "empty argument"},
		{"malformedInput", "INPUT a\n", "malformed"},
		{"inputRHS", "INPUT(a)\ny = INPUT(a)\nOUTPUT(y)", "INPUT cannot"},
		{"cycle", "INPUT(a)\nx = AND(a, y)\ny = BUFF(x)\nOUTPUT(y)", "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.src, tc.name)
			if err == nil {
				t.Fatalf("parse accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseErrorLineNumber(t *testing.T) {
	_, err := ParseString("INPUT(a)\n\ny = FROB(a)\n", "x")
	var pe *ParseError
	if !asParseError(err, &pe) {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
}

func asParseError(err error, out **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*out = pe
	}
	return ok
}

func TestRoundTrip(t *testing.T) {
	orig, err := ParseString(c17, "c17")
	if err != nil {
		t.Fatal(err)
	}
	text := String(orig)
	back, err := ParseString(text, "c17")
	if err != nil {
		t.Fatalf("reparse of written netlist failed: %v\n%s", err, text)
	}
	if back.NumGates() != orig.NumGates() ||
		len(back.PIs) != len(orig.PIs) ||
		len(back.POs) != len(orig.POs) {
		t.Fatalf("round trip changed shape: %v vs %v",
			back.ComputeStats(), orig.ComputeStats())
	}
	for i := range orig.Gates {
		og := &orig.Gates[i]
		bid, ok := back.Lookup(og.Name)
		if !ok {
			t.Fatalf("round trip lost gate %q", og.Name)
		}
		bg := back.Gate(bid)
		if bg.Type != og.Type || len(bg.Fanin) != len(og.Fanin) {
			t.Fatalf("gate %q changed: %v/%d vs %v/%d",
				og.Name, bg.Type, len(bg.Fanin), og.Type, len(og.Fanin))
		}
		for j, f := range og.Fanin {
			if back.Gate(bg.Fanin[j]).Name != orig.Gates[f].Name {
				t.Fatalf("gate %q fanin %d changed", og.Name, j)
			}
		}
	}
}

func TestRoundTripSequential(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(q)
q = DFF(d)
d = XOR(a, q)
`
	orig, err := ParseString(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(String(orig), "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.DFFs) != 1 {
		t.Fatal("round trip lost the DFF")
	}
}

func TestWriteVerilog(t *testing.T) {
	n, err := ParseString(c17, "c17")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteVerilog(&sb, n); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	for _, want := range []string{"module c17", "nand", "endmodule", "output po_n22"} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q:\n%s", want, v)
		}
	}
}

func TestWriteVerilogSequentialHasDFFModule(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(a, q)\n"
	n, err := ParseString(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteVerilog(&sb, n); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "module dff") {
		t.Error("sequential verilog missing dff module")
	}
	if !strings.Contains(sb.String(), "input clk") {
		t.Error("sequential verilog missing clk port")
	}
}

func TestSanitizeID(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"22", "n22"},
		{"a.b[3]", "a_b_3_"},
		{"", "_"},
		{"ok_name", "ok_name"},
	} {
		if got := sanitizeID(tc.in); got != tc.want {
			t.Errorf("sanitizeID(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
