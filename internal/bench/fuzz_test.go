package bench

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary text at the .bench parser. Invalid input
// must come back as an error — never a panic or a hang — and any input
// that parses must survive a write/re-parse round trip, since the
// generated HT benchmarks are emitted through Write and read back by
// downstream tools.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Minimal valid circuit.
		"INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n",
		// Multi-gate with comments, blank lines, case-folded keywords.
		"# comment\nINPUT(a)\nINPUT(b)\n\nOUTPUT(z)\nz = nand(a, b)\n",
		// Forward reference and DFF feedback.
		"INPUT(d)\nOUTPUT(q)\nq = DFF(w)\nw = AND(d, q)\n",
		// Constants.
		"INPUT(a)\nOUTPUT(z)\nc = CONST1()\nz = XOR(a, c)\n",
		// Error shapes the parser must reject cleanly.
		"INPUT(a)\nOUTPUT(z)\nz = NOT(a, b)\n", // arity
		"z = BOGUS(a)\n",                       // unknown op
		"INPUT(a)\nINPUT(a)\n",                 // duplicate
		"OUTPUT(missing)\n",                    // undefined PO
		"INPUT(a)\nOUTPUT(z)\nz = AND(a,)\n",   // empty arg
		"a = AND(b)\nb = AND(a)\nOUTPUT(a)\n",  // combinational cycle
		"INPUT(\n",                             // malformed paren
		"= AND(a)\n",                           // empty lhs
		// Streaming-parser differential seed: duplicate OUTPUT decls,
		// forward references, case-folded ops and a DFF feedback loop
		// in one circuit.
		"INPUT(a)\nINPUT(b)\nOUTPUT(q)\nOUTPUT(q)\nOUTPUT(z)\ng = xnor(a, b)\nq = DFF(n)\nn = BUFF(g)\nz = nor(q, g, a)\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(strings.NewReader(src), "fuzz")
		c, serr := ParseStream(strings.NewReader(src), "fuzz")
		if err != nil {
			// The streaming parser must reject exactly the inputs the
			// in-memory parser rejects (messages may differ).
			if serr == nil {
				t.Fatalf("Parse rejected (%v) but ParseStream accepted:\n%s", err, src)
			}
			return // rejected cleanly; that is the contract
		}
		if serr != nil {
			t.Fatalf("Parse accepted but ParseStream rejected (%v):\n%s", serr, src)
		}
		sn, serr := c.ToNetlist()
		if serr != nil {
			t.Fatalf("ToNetlist failed on accepted input: %v\n%s", serr, src)
		}
		if sout := String(sn); sout != String(n) {
			t.Fatalf("streaming parse differs from in-memory parse:\n--- in-memory ---\n%s\n--- streaming ---\n%s", String(n), sout)
		}
		out := String(n)
		n2, err := ParseString(out, "fuzz")
		if err != nil {
			t.Fatalf("round trip failed: %v\noriginal:\n%s\nemitted:\n%s", err, src, out)
		}
		if len(n2.Gates) != len(n.Gates) {
			t.Fatalf("round trip changed gate count: %d -> %d\noriginal:\n%s", len(n.Gates), len(n2.Gates), src)
		}
	})
}
