package bench

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics: arbitrary byte soup must produce an error or a
// valid netlist, never a panic.
func TestParseNeverPanics(t *testing.T) {
	prop := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		n, err := ParseString(string(data), "fuzz")
		if err == nil {
			if verr := n.Validate(); verr != nil {
				t.Logf("parser accepted an invalid netlist: %v", verr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestParseNeverPanicsStructured: byte soup assembled from plausible
// .bench fragments (more likely to reach deep parser paths than raw
// random bytes).
func TestParseNeverPanicsStructured(t *testing.T) {
	fragments := []string{
		"INPUT(", "OUTPUT(", ")", "(", "=", ",", "\n", " ", "#c",
		"AND", "NAND", "DFF", "XOR", "BUFF", "CONST1", "FROB",
		"a", "b", "n1", "g2", "22",
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		var sb strings.Builder
		for i := 0; i < 3+rng.Intn(40); i++ {
			sb.WriteString(fragments[rng.Intn(len(fragments))])
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			n, err := ParseString(src, "fuzz")
			if err == nil {
				if verr := n.Validate(); verr != nil {
					t.Fatalf("parser accepted invalid netlist from %q: %v", src, verr)
				}
			}
		}()
	}
}

// TestWriteDeterministic: writing the same netlist twice yields
// byte-identical output (required for reproducible benchmark suites).
func TestWriteDeterministic(t *testing.T) {
	n, err := ParseString(c17, "c17")
	if err != nil {
		t.Fatal(err)
	}
	if String(n) != String(n) {
		t.Fatal("Write is not deterministic")
	}
}
