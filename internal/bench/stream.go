package bench

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"cghti/internal/netlist"
)

// ParseStream reads a .bench netlist from r in a single pass, producing
// the arena form (netlist.Compact) directly. Unlike Parse it never
// retains source lines or builds per-gate slices: memory is
// O(gates + wires), independent of file size, which is what makes
// 10⁶-gate SoC dumps parseable (see DESIGN.md, "Streaming parse").
//
// The accepted grammar and the resulting gate IDs are identical to
// Parse: primary inputs take IDs 0..|PI|-1 in declaration order,
// assignments follow in file order — so a netlist read by either parser
// is gate-for-gate, edge-for-edge the same, and Write emits
// byte-identical text for both.
func ParseStream(r io.Reader, name string) (*netlist.Compact, error) {
	type assign struct {
		line int32
		slot int32
		typ  netlist.GateType
		nin  int32 // fanin count; slots are contiguous in fanins
	}
	var (
		slots   = map[string]int32{} // net name -> slot (first-mention order)
		names   []string
		defLine []int32 // per slot: line where defined, 0 = only referenced
		inputs  []int32 // slots declared INPUT, declaration order
		outputs []int32 // slots named OUTPUT, declaration order
		assigns []assign
		fanins  []int32 // flattened fanin slots, assign order then port order
	)
	intern := func(s string) int32 {
		if id, ok := slots[s]; ok {
			return id
		}
		id := int32(len(names))
		slots[s] = id
		names = append(names, s)
		defLine = append(defLine, 0)
		return id
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case hasPrefixFold(line, "INPUT"):
			arg, err := parseParen(line, "INPUT")
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			s := intern(arg)
			if defLine[s] != 0 {
				return nil, &ParseError{lineNo, fmt.Sprintf("net %q already defined on line %d", arg, defLine[s])}
			}
			defLine[s] = int32(lineNo)
			inputs = append(inputs, s)
		case hasPrefixFold(line, "OUTPUT"):
			arg, err := parseParen(line, "OUTPUT")
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			outputs = append(outputs, intern(arg))
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, &ParseError{lineNo, fmt.Sprintf("expected INPUT/OUTPUT/assignment, got %q", line)}
			}
			lhs := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			if lhs == "" {
				return nil, &ParseError{lineNo, "empty left-hand side"}
			}
			op, args, err := parseCall(rhs)
			if err != nil {
				return nil, &ParseError{lineNo, err.Error()}
			}
			t, ok := netlist.ParseGateType(op)
			if !ok {
				return nil, &ParseError{lineNo, fmt.Sprintf("unknown gate type %q", op)}
			}
			if t == netlist.Input {
				return nil, &ParseError{lineNo, "INPUT cannot appear on the right-hand side"}
			}
			switch t {
			case netlist.Const0, netlist.Const1:
				if len(args) != 0 {
					return nil, &ParseError{lineNo, fmt.Sprintf("%s takes no arguments", t)}
				}
			case netlist.Buf, netlist.Not, netlist.DFF:
				if len(args) != 1 {
					return nil, &ParseError{lineNo, fmt.Sprintf("%s takes exactly 1 argument, got %d", t, len(args))}
				}
			default:
				if len(args) < 1 {
					return nil, &ParseError{lineNo, fmt.Sprintf("%s needs at least 1 argument", t)}
				}
			}
			s := intern(lhs)
			if defLine[s] != 0 {
				return nil, &ParseError{lineNo, fmt.Sprintf("net %q already defined on line %d", lhs, defLine[s])}
			}
			defLine[s] = int32(lineNo)
			for _, in := range args {
				fanins = append(fanins, intern(in))
			}
			assigns = append(assigns, assign{line: int32(lineNo), slot: s, typ: t, nin: int32(len(args))})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: read: %w", err)
	}

	// Forward references resolve at EOF: every slot must have been
	// defined by an INPUT declaration or an assignment by now.
	off := 0
	for _, a := range assigns {
		for _, fs := range fanins[off : off+int(a.nin)] {
			if defLine[fs] == 0 {
				return nil, &ParseError{int(a.line), fmt.Sprintf("undefined net %q", names[fs])}
			}
		}
		off += int(a.nin)
	}
	for _, s := range outputs {
		if defLine[s] == 0 {
			return nil, fmt.Errorf("bench: OUTPUT(%s) references an undefined net", names[s])
		}
	}

	// Final gate IDs replicate Parse's two-phase AddGate order: inputs
	// in declaration order first, then assignments in file order.
	numIn := len(inputs)
	num := numIn + len(assigns)
	slotToID := make([]netlist.GateID, len(names))
	for i, s := range inputs {
		slotToID[s] = netlist.GateID(i)
	}
	for j := range assigns {
		slotToID[assigns[j].slot] = netlist.GateID(numIn + j)
	}

	c := &netlist.Compact{
		Name:       name,
		Names:      make([]string, num),
		Types:      make([]netlist.GateType, num),
		FaninStart: make([]int32, num+1),
		Level:      make([]int32, num),
		POMask:     make([]bool, num),
		PIs:        make([]netlist.GateID, numIn),
	}
	for i, s := range inputs {
		c.Names[i] = names[s]
		c.Types[i] = netlist.Input
		c.Level[i] = -1
		c.PIs[i] = netlist.GateID(i)
	}
	var cum int32
	for j, a := range assigns {
		id := numIn + j
		c.Names[id] = names[a.slot]
		c.Types[id] = a.typ
		c.Level[id] = -1
		cum += a.nin
		c.FaninStart[id+1] = cum
		if a.typ == netlist.DFF {
			c.DFFs = append(c.DFFs, netlist.GateID(id))
		}
	}
	// Inputs precede assigns, so FaninStart[0..numIn] stays 0 and the
	// flattened fanin list is exactly the remapped token stream.
	c.FaninIdx = make([]netlist.GateID, len(fanins))
	for k, fs := range fanins {
		c.FaninIdx[k] = slotToID[fs]
	}

	// Fanout arena: count, prefix-sum, then fill in ascending consumer
	// order — the same order Parse's Connect calls append in.
	outCnt := make([]int32, num)
	for _, f := range c.FaninIdx {
		outCnt[f]++
	}
	c.FanoutStart = make([]int32, num+1)
	var tot int32
	for i := 0; i < num; i++ {
		c.FanoutStart[i] = tot
		tot += outCnt[i]
	}
	c.FanoutStart[num] = tot
	c.FanoutIdx = make([]netlist.GateID, tot)
	cursor := append([]int32(nil), c.FanoutStart[:num]...)
	for dst := numIn; dst < num; dst++ {
		for _, src := range c.FaninIdx[c.FaninStart[dst]:c.FaninStart[dst+1]] {
			c.FanoutIdx[cursor[src]] = netlist.GateID(dst)
			cursor[src]++
		}
	}

	for _, s := range outputs {
		id := slotToID[s]
		if !c.POMask[id] {
			c.POMask[id] = true
			c.POs = append(c.POs, id)
		}
	}

	// Same structural guarantees as Parse: arity (re-checked), at least
	// one input and one output, acyclic combinational logic; leaves the
	// netlist levelized.
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseFileStream reads a .bench file from disk with the streaming
// parser; the circuit name is derived from the file name.
func ParseFileStream(path string) (*netlist.Compact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	name = strings.TrimSuffix(name, ".bench")
	return ParseStream(f, name)
}
