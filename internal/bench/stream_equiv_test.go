package bench_test

// External test package: the equivalence suite walks the full built-in
// circuit catalog, and internal/gen imports internal/bench, so these
// tests cannot live in package bench itself.

import (
	"reflect"
	"strings"
	"testing"

	"cghti/internal/bench"
	"cghti/internal/gen"
)

// TestParseStreamEquivalence re-parses every bundled circuit with both
// parsers and requires identical structure and byte-identical re-emitted
// text: same gate IDs, names, types, port order, fanout order, PO/DFF
// lists and topological order.
func TestParseStreamEquivalence(t *testing.T) {
	for _, name := range gen.Names() {
		t.Run(name, func(t *testing.T) {
			orig, err := gen.Benchmark(name)
			if err != nil {
				t.Fatal(err)
			}
			text := bench.String(orig)

			want, err := bench.Parse(strings.NewReader(text), name)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			c, err := bench.ParseStream(strings.NewReader(text), name)
			if err != nil {
				t.Fatalf("ParseStream: %v", err)
			}
			got, err := c.ToNetlist()
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(got.Gates, want.Gates) {
				t.Fatal("gate tables differ between streaming and in-memory parse")
			}
			if !reflect.DeepEqual(got.PIs, want.PIs) ||
				!reflect.DeepEqual(got.POs, want.POs) ||
				!reflect.DeepEqual(got.DFFs, want.DFFs) {
				t.Fatal("PI/PO/DFF lists differ between streaming and in-memory parse")
			}
			gt, err := got.TopoOrder()
			if err != nil {
				t.Fatal(err)
			}
			wt, err := want.TopoOrder()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gt, wt) {
				t.Fatal("topological order differs between streaming and in-memory parse")
			}
			if gotText := bench.String(got); gotText != text {
				t.Fatalf("re-emitted text not byte-identical:\n--- in-memory ---\n%s\n--- streaming ---\n%s", text, gotText)
			}
		})
	}
}
