package bench

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"cghti/internal/netlist"
)

// WriteVerilog emits the netlist as structural Verilog using generic
// primitive instantiations (and/or/nand/nor/xor/xnor/not/buf and a DFF
// module). This is the hand-off format for the synthesis/area flow the
// paper runs through Cadence GENUS; here it feeds internal/area and lets
// users push generated benchmarks into real tools.
func WriteVerilog(w io.Writer, n *netlist.Netlist) error {
	bw := bufio.NewWriter(w)
	name := sanitizeID(n.Name)
	fmt.Fprintf(bw, "// generated from %s\n", n.Name)
	fmt.Fprintf(bw, "module %s (", name)

	ports := make([]string, 0, len(n.PIs)+len(n.POs)+2)
	if len(n.DFFs) > 0 {
		ports = append(ports, "clk")
	}
	for _, id := range n.PIs {
		ports = append(ports, sanitizeID(n.Gates[id].Name))
	}
	for _, id := range n.POs {
		ports = append(ports, "po_"+sanitizeID(n.Gates[id].Name))
	}
	fmt.Fprintf(bw, "%s);\n", strings.Join(ports, ", "))

	if len(n.DFFs) > 0 {
		fmt.Fprintln(bw, "  input clk;")
	}
	for _, id := range n.PIs {
		fmt.Fprintf(bw, "  input %s;\n", sanitizeID(n.Gates[id].Name))
	}
	for _, id := range n.POs {
		fmt.Fprintf(bw, "  output po_%s;\n", sanitizeID(n.Gates[id].Name))
	}
	for i := range n.Gates {
		g := &n.Gates[i]
		if g.Type == netlist.Input {
			continue
		}
		fmt.Fprintf(bw, "  wire %s;\n", sanitizeID(g.Name))
	}

	fmt.Fprintln(bw)
	inst := 0
	for i := range n.Gates {
		g := &n.Gates[i]
		out := sanitizeID(g.Name)
		ins := make([]string, len(g.Fanin))
		for j, f := range g.Fanin {
			ins[j] = sanitizeID(n.Gates[f].Name)
		}
		switch g.Type {
		case netlist.Input:
			continue
		case netlist.Const0:
			fmt.Fprintf(bw, "  assign %s = 1'b0;\n", out)
		case netlist.Const1:
			fmt.Fprintf(bw, "  assign %s = 1'b1;\n", out)
		case netlist.Buf:
			fmt.Fprintf(bw, "  buf g%d (%s, %s);\n", inst, out, ins[0])
		case netlist.Not:
			fmt.Fprintf(bw, "  not g%d (%s, %s);\n", inst, out, ins[0])
		case netlist.DFF:
			fmt.Fprintf(bw, "  dff g%d (.q(%s), .d(%s), .clk(clk));\n", inst, out, ins[0])
		default:
			prim := strings.ToLower(g.Type.String())
			fmt.Fprintf(bw, "  %s g%d (%s, %s);\n", prim, inst, out, strings.Join(ins, ", "))
		}
		inst++
	}
	for _, id := range n.POs {
		o := sanitizeID(n.Gates[id].Name)
		fmt.Fprintf(bw, "  assign po_%s = %s;\n", o, o)
	}
	fmt.Fprintln(bw, "endmodule")

	if len(n.DFFs) > 0 {
		fmt.Fprintln(bw, `
module dff (q, d, clk);
  output reg q;
  input d, clk;
  always @(posedge clk) q <= d;
endmodule`)
	}
	return bw.Flush()
}

// WriteVerilogFile writes the netlist as structural Verilog to path.
func WriteVerilogFile(path string, n *netlist.Netlist) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteVerilog(f, n); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sanitizeID maps a net name to a legal Verilog identifier.
func sanitizeID(s string) string {
	if s == "" {
		return "_"
	}
	b := []byte(s)
	for i, c := range b {
		ok := c == '_' || ('0' <= c && c <= '9') || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
		if !ok {
			b[i] = '_'
		}
	}
	if c := b[0]; '0' <= c && c <= '9' {
		return "n" + string(b)
	}
	return string(b)
}
