// Package chaos is a deterministic fault-injection hook for the
// pipeline's worker loops. Instrumented code calls Hit(stage, worker)
// at the top of each unit of work; with no injector installed (the
// production state) that costs one atomic load and a nil check, the
// same obs-style always-compiled-in pattern the counters use. Tests
// install an Injector to force a panic, a delay, or an error at an
// exact stage + worker + hit count, which is how the cancellation,
// deadline, and panic-containment paths are driven under -race.
package chaos

import (
	"fmt"
	"sync/atomic"
	"time"
)

// AnyWorker matches every worker index in a Spec.
const AnyWorker = -1

// Kind selects what an injection does.
type Kind int

const (
	// Panic makes Hit panic with a *Injected value.
	Panic Kind = iota
	// Delay makes Hit sleep for Spec.Delay, simulating a stall.
	Delay
	// Error makes Hit return Spec.Err.
	Error
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Spec is one injection rule: at the Nth matching Hit (1-based; 0
// means every matching hit), perform the action.
type Spec struct {
	// Stage matches the instrumented site's stage name.
	Stage string
	// Worker matches the worker index (AnyWorker matches all).
	Worker int
	// Kind selects panic, delay, or error.
	Kind Kind
	// Delay is the sleep for Kind == Delay.
	Delay time.Duration
	// Err is returned for Kind == Error (defaults to a generic error).
	Err error
	// OnHit fires the action only on the OnHit-th matching call
	// (1-based); 0 fires on every matching call.
	OnHit int
}

// Injected is the panic value (for Kind Panic) and the default error
// (for Kind Error); it records where the injection fired.
type Injected struct {
	Stage  string
	Worker int
	Hit    int
}

// Error implements error.
func (i *Injected) Error() string {
	return fmt.Sprintf("chaos: injected fault at %s worker %d hit %d", i.Stage, i.Worker, i.Hit)
}

type rule struct {
	spec Spec
	hits atomic.Int64
}

type injector struct {
	rules []*rule
}

// active holds the installed injector; nil in production.
var active atomic.Pointer[injector]

// Install replaces the process-wide injection rules. Tests must pair
// it with Uninstall (defer chaos.Uninstall()).
func Install(specs ...Spec) {
	in := &injector{}
	for _, s := range specs {
		in.rules = append(in.rules, &rule{spec: s})
	}
	active.Store(in)
}

// Uninstall removes every injection rule.
func Uninstall() { active.Store(nil) }

// Hit is the instrumentation point: worker loops call it once per unit
// of work. It returns a non-nil error, panics, or sleeps when an
// installed Spec matches, and is free when no injector is installed.
func Hit(stage string, worker int) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	for _, r := range in.rules {
		if r.spec.Stage != stage {
			continue
		}
		if r.spec.Worker != AnyWorker && r.spec.Worker != worker {
			continue
		}
		n := int(r.hits.Add(1))
		if r.spec.OnHit != 0 && n != r.spec.OnHit {
			continue
		}
		switch r.spec.Kind {
		case Panic:
			panic(&Injected{Stage: stage, Worker: worker, Hit: n})
		case Delay:
			time.Sleep(r.spec.Delay)
		case Error:
			if r.spec.Err != nil {
				return r.spec.Err
			}
			return &Injected{Stage: stage, Worker: worker, Hit: n}
		}
	}
	return nil
}
