package chaos

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestHitNoInjector(t *testing.T) {
	Uninstall()
	if err := Hit("any", 0); err != nil {
		t.Fatalf("Hit with no injector returned %v", err)
	}
}

func TestErrorInjection(t *testing.T) {
	want := errors.New("boom")
	Install(Spec{Stage: "s", Worker: AnyWorker, Kind: Error, Err: want})
	defer Uninstall()
	if err := Hit("s", 3); err != want {
		t.Fatalf("Hit = %v, want %v", err, want)
	}
	if err := Hit("other", 0); err != nil {
		t.Fatalf("non-matching stage returned %v", err)
	}
}

func TestErrorInjectionDefault(t *testing.T) {
	Install(Spec{Stage: "s", Worker: AnyWorker, Kind: Error})
	defer Uninstall()
	err := Hit("s", 2)
	var inj *Injected
	if !errors.As(err, &inj) {
		t.Fatalf("Hit = %v (%T), want *Injected", err, err)
	}
	if inj.Stage != "s" || inj.Worker != 2 || inj.Hit != 1 {
		t.Fatalf("Injected = %+v", inj)
	}
}

func TestWorkerMatching(t *testing.T) {
	Install(Spec{Stage: "s", Worker: 1, Kind: Error})
	defer Uninstall()
	if err := Hit("s", 0); err != nil {
		t.Fatalf("worker 0 matched a worker-1 rule: %v", err)
	}
	if err := Hit("s", 1); err == nil {
		t.Fatal("worker 1 did not match")
	}
}

func TestOnHit(t *testing.T) {
	Install(Spec{Stage: "s", Worker: AnyWorker, Kind: Error, OnHit: 3})
	defer Uninstall()
	for i := 1; i <= 2; i++ {
		if err := Hit("s", 0); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	if err := Hit("s", 0); err == nil {
		t.Fatal("hit 3 did not fire")
	}
	if err := Hit("s", 0); err != nil {
		t.Fatalf("hit 4 fired again: %v", err)
	}
}

func TestPanicInjection(t *testing.T) {
	Install(Spec{Stage: "s", Worker: AnyWorker, Kind: Panic})
	defer Uninstall()
	defer func() {
		r := recover()
		inj, ok := r.(*Injected)
		if !ok {
			t.Fatalf("panic value = %v (%T), want *Injected", r, r)
		}
		if inj.Stage != "s" {
			t.Fatalf("Injected = %+v", inj)
		}
	}()
	Hit("s", 0)
	t.Fatal("Hit did not panic")
}

func TestDelayInjection(t *testing.T) {
	Install(Spec{Stage: "s", Worker: AnyWorker, Kind: Delay, Delay: 50 * time.Millisecond})
	defer Uninstall()
	start := time.Now()
	if err := Hit("s", 0); err != nil {
		t.Fatalf("Delay returned %v", err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("Hit returned after %v, want >= 50ms", d)
	}
}

// TestConcurrentHits exercises the per-rule hit counter from many
// goroutines so the race detector can vet the atomics: exactly one of
// N concurrent hits must fire an OnHit rule.
func TestConcurrentHits(t *testing.T) {
	Install(Spec{Stage: "s", Worker: AnyWorker, Kind: Error, OnHit: 25})
	defer Uninstall()
	const n = 100
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				errs <- Hit("s", w)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	fired := 0
	for err := range errs {
		if err != nil {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("OnHit rule fired %d times across %d concurrent hits, want 1", fired, n)
	}
}

func TestUninstallStopsInjection(t *testing.T) {
	Install(Spec{Stage: "s", Worker: AnyWorker, Kind: Error})
	Uninstall()
	if err := Hit("s", 0); err != nil {
		t.Fatalf("Hit after Uninstall returned %v", err)
	}
}
