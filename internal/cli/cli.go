// Package cli holds plumbing shared by the cmd/* tools: uniform
// "tool: message" fatal error handling with a guaranteed non-zero
// exit, and opt-in pprof CPU/heap profiling behind -cpuprofile /
// -memprofile flags.
package cli

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
	"time"
)

var (
	profMu  sync.Mutex
	cpuOut  *os.File
	memPath string
)

// StartProfiles begins CPU profiling to cpuPath (if non-empty) and
// arranges for a heap profile to be written to memPath (if non-empty)
// when StopProfiles runs. Call once, right after flag parsing.
func StartProfiles(cpuPath, memPathArg string) error {
	profMu.Lock()
	defer profMu.Unlock()
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		cpuOut = f
	}
	memPath = memPathArg
	return nil
}

// StopProfiles flushes the CPU profile and writes the heap profile, if
// either was requested. Safe to call multiple times; Fatal calls it so
// profiles survive error exits (os.Exit skips defers).
func StopProfiles() {
	profMu.Lock()
	defer profMu.Unlock()
	if cpuOut != nil {
		pprof.StopCPUProfile()
		cpuOut.Close()
		cpuOut = nil
	}
	if memPath != "" {
		if f, err := os.Create(memPath); err == nil {
			runtime.GC() // get up-to-date allocation statistics
			pprof.WriteHeapProfile(f)
			f.Close()
		} else {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		}
		memPath = ""
	}
}

// Fatal prints "tool: message" to stderr, flushes any active profiles,
// and exits with status 1. Every cmd/* tool funnels errors through
// here so failure output and exit codes are uniform.
func Fatal(tool string, err error) {
	StopProfiles()
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}

// Fatalf is Fatal with formatting.
func Fatalf(tool, format string, args ...any) {
	Fatal(tool, fmt.Errorf(format, args...))
}

// Context returns a context for the tool's run: cancelled on SIGINT or
// SIGTERM (so ^C interrupts cooperatively instead of killing the
// process mid-write) and, when timeout > 0, expired after timeout. The
// returned stop function releases the signal registration and any
// timer; defer it. After the first signal the registration is dropped,
// so a second ^C falls back to the default behavior and kills a tool
// that is stuck in cleanup.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, timeout)
	return tctx, func() {
		cancel()
		stop()
	}
}
