package compat

import (
	"fmt"

	"cghti/internal/artifact"
	"cghti/internal/atpg"
	"cghti/internal/netlist"
	"cghti/internal/rare"
)

// Codec versions guard the encoding layouts; bumping one invalidates
// the corresponding cached artifacts (old entries fail to decode and
// are recomputed).
const (
	graphCodecVersion  = 1
	cliqueCodecVersion = 1
)

// EncodeGraph serializes g to the canonical binary artifact form. The
// adjacency bitset is included when present (a cube-only graph from
// BuildCubes encodes without it); construction timings are transient
// and not preserved.
func EncodeGraph(g *Graph) []byte {
	e := artifact.NewEnc()
	e.Uvarint(graphCodecVersion)
	e.Int(len(g.InputIDs))
	for _, id := range g.InputIDs {
		e.Varint(int64(id))
	}
	rare.EncodeNodes(e, g.Nodes)
	e.Int(len(g.Cubes))
	for _, c := range g.Cubes {
		atpg.EncodeCube(e, c)
	}
	e.Int(g.Dropped)
	e.Int(g.CubesDone)
	e.Int(g.CubesTotal)
	e.Int(g.EdgeRowsDone)
	e.Int(g.EdgeRowsTotal)
	if g.adj == nil {
		e.Bool(false)
	} else {
		e.Bool(true)
		e.Int(g.words)
		e.Int(len(g.adj))
		for _, row := range g.adj {
			e.Words(row)
		}
	}
	return e.Finish()
}

// DecodeGraph reverses EncodeGraph, validating every structural
// invariant (one cube per node, adjacency dimensions) so a corrupted
// encoding cannot produce a graph that indexes out of range.
func DecodeGraph(data []byte) (*Graph, error) {
	d := artifact.NewDec(data)
	if v := d.Uvarint(); v != graphCodecVersion {
		return nil, fmt.Errorf("compat: graph codec version %d, want %d", v, graphCodecVersion)
	}
	g := &Graph{}
	nIn := d.Int()
	if d.Err() == nil && (nIn < 0 || nIn > len(data)) {
		return nil, fmt.Errorf("compat: graph encoding claims %d inputs", nIn)
	}
	if d.Err() == nil {
		g.InputIDs = make([]netlist.GateID, nIn)
		for i := range g.InputIDs {
			g.InputIDs[i] = netlist.GateID(d.Varint())
		}
	}
	var err error
	if g.Nodes, err = rare.DecodeNodes(d); err != nil {
		return nil, err
	}
	nCubes := d.Int()
	if d.Err() == nil && nCubes != len(g.Nodes) {
		return nil, fmt.Errorf("compat: %d cubes for %d nodes", nCubes, len(g.Nodes))
	}
	if d.Err() == nil {
		g.Cubes = make([]atpg.Cube, 0, nCubes)
		for i := 0; i < nCubes; i++ {
			c, err := atpg.DecodeCube(d)
			if err != nil {
				return nil, err
			}
			g.Cubes = append(g.Cubes, c)
		}
	}
	g.Dropped = d.Int()
	g.CubesDone = d.Int()
	g.CubesTotal = d.Int()
	g.EdgeRowsDone = d.Int()
	g.EdgeRowsTotal = d.Int()
	if d.Bool() {
		g.words = d.Int()
		rows := d.Int()
		if d.Err() == nil && (rows != len(g.Nodes) || g.words != (len(g.Nodes)+63)/64) {
			return nil, fmt.Errorf("compat: adjacency %d rows x %d words for %d nodes", rows, g.words, len(g.Nodes))
		}
		if d.Err() == nil {
			g.adj = make([][]uint64, rows)
			for i := range g.adj {
				row := d.Words()
				if d.Err() == nil && len(row) != g.words {
					return nil, fmt.Errorf("compat: adjacency row %d has %d words, want %d", i, len(row), g.words)
				}
				g.adj[i] = row
			}
		}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return g, nil
}

// EncodeCliques serializes a mined clique list in order, preserving the
// stealth-sorted sequence the insertion stage consumes.
func EncodeCliques(cliques []Clique) []byte {
	e := artifact.NewEnc()
	e.Uvarint(cliqueCodecVersion)
	e.Int(len(cliques))
	for _, c := range cliques {
		e.Int(len(c.Vertices))
		for _, v := range c.Vertices {
			e.Int(v)
		}
		atpg.EncodeCube(e, c.Cube)
	}
	return e.Finish()
}

// DecodeCliques reverses EncodeCliques.
func DecodeCliques(data []byte) ([]Clique, error) {
	d := artifact.NewDec(data)
	if v := d.Uvarint(); v != cliqueCodecVersion {
		return nil, fmt.Errorf("compat: clique codec version %d, want %d", v, cliqueCodecVersion)
	}
	n := d.Int()
	if d.Err() == nil && (n < 0 || n > len(data)) {
		return nil, fmt.Errorf("compat: clique encoding claims %d cliques", n)
	}
	out := make([]Clique, 0, max(n, 0))
	for i := 0; i < n; i++ {
		nv := d.Int()
		if d.Err() == nil && (nv < 0 || nv > len(data)) {
			return nil, fmt.Errorf("compat: clique %d claims %d vertices", i, nv)
		}
		if d.Err() != nil {
			break
		}
		c := Clique{Vertices: make([]int, nv)}
		for j := range c.Vertices {
			c.Vertices[j] = d.Int()
		}
		var err error
		if c.Cube, err = atpg.DecodeCube(d); err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return out, nil
}
