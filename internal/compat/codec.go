package compat

import (
	"fmt"

	"cghti/internal/artifact"
	"cghti/internal/atpg"
	"cghti/internal/netlist"
	"cghti/internal/rare"
)

// Codec versions guard the encoding layouts; bumping one invalidates
// the corresponding cached artifacts (old entries fail to decode and
// are recomputed). Graph v2 added the vertex-partition list and the
// partitioned adjacency representation (adjacency kind byte instead of
// a present/absent bool).
const (
	graphCodecVersion  = 2
	cliqueCodecVersion = 1
)

// Adjacency representation tags in the graph encoding.
const (
	adjNone        = 0 // cube-only graph, no edges yet
	adjDense       = 1 // full V×V bitset rows
	adjPartitioned = 2 // per-group blocks + cross-group conflict CSR
)

// EncodeGraph serializes g to the canonical binary artifact form. The
// adjacency bitset is included when present (a cube-only graph from
// BuildCubes encodes without it); construction timings are transient
// and not preserved.
func EncodeGraph(g *Graph) []byte {
	e := artifact.NewEnc()
	e.Uvarint(graphCodecVersion)
	e.Int(len(g.InputIDs))
	for _, id := range g.InputIDs {
		e.Varint(int64(id))
	}
	rare.EncodeNodes(e, g.Nodes)
	e.Int(len(g.Cubes))
	for _, c := range g.Cubes {
		atpg.EncodeCube(e, c)
	}
	e.Int(g.Dropped)
	e.Int(g.CubesDone)
	e.Int(g.CubesTotal)
	e.Int(g.EdgeRowsDone)
	e.Int(g.EdgeRowsTotal)
	if g.vertPart == nil {
		e.Bool(false)
	} else {
		e.Bool(true)
		for _, p := range g.vertPart {
			e.Varint(int64(p))
		}
	}
	switch {
	case g.pa != nil:
		e.Uvarint(adjPartitioned)
		pa := g.pa
		e.Int(len(pa.groups))
		for _, v := range pa.vgroup {
			e.Varint(int64(v))
		}
		for _, block := range pa.blocks {
			e.Words(block)
		}
		for _, off := range pa.conflictStart {
			e.Varint(int64(off))
		}
		e.Int(len(pa.conflictIdx))
		for _, j := range pa.conflictIdx {
			e.Varint(int64(j))
		}
		e.Bool(pa.crossValid)
	case g.adj != nil:
		e.Uvarint(adjDense)
		e.Int(g.words)
		e.Int(len(g.adj))
		for _, row := range g.adj {
			e.Words(row)
		}
	default:
		e.Uvarint(adjNone)
	}
	return e.Finish()
}

// DecodeGraph reverses EncodeGraph, validating every structural
// invariant (one cube per node, adjacency dimensions) so a corrupted
// encoding cannot produce a graph that indexes out of range.
func DecodeGraph(data []byte) (*Graph, error) {
	d := artifact.NewDec(data)
	if v := d.Uvarint(); v != graphCodecVersion {
		return nil, fmt.Errorf("compat: graph codec version %d, want %d", v, graphCodecVersion)
	}
	g := &Graph{}
	nIn := d.Int()
	if d.Err() == nil && (nIn < 0 || nIn > len(data)) {
		return nil, fmt.Errorf("compat: graph encoding claims %d inputs", nIn)
	}
	if d.Err() == nil {
		g.InputIDs = make([]netlist.GateID, nIn)
		for i := range g.InputIDs {
			g.InputIDs[i] = netlist.GateID(d.Varint())
		}
	}
	var err error
	if g.Nodes, err = rare.DecodeNodes(d); err != nil {
		return nil, err
	}
	nCubes := d.Int()
	if d.Err() == nil && nCubes != len(g.Nodes) {
		return nil, fmt.Errorf("compat: %d cubes for %d nodes", nCubes, len(g.Nodes))
	}
	if d.Err() == nil {
		g.Cubes = make([]atpg.Cube, 0, nCubes)
		for i := 0; i < nCubes; i++ {
			c, err := atpg.DecodeCube(d)
			if err != nil {
				return nil, err
			}
			g.Cubes = append(g.Cubes, c)
		}
	}
	g.Dropped = d.Int()
	g.CubesDone = d.Int()
	g.CubesTotal = d.Int()
	g.EdgeRowsDone = d.Int()
	g.EdgeRowsTotal = d.Int()
	if d.Bool() && d.Err() == nil {
		g.vertPart = make([]int32, len(g.Nodes))
		for i := range g.vertPart {
			g.vertPart[i] = int32(d.Varint())
		}
	}
	switch kind := d.Uvarint(); kind {
	case adjNone:
	case adjDense:
		g.words = d.Int()
		rows := d.Int()
		if d.Err() == nil && (rows != len(g.Nodes) || g.words != (len(g.Nodes)+63)/64) {
			return nil, fmt.Errorf("compat: adjacency %d rows x %d words for %d nodes", rows, g.words, len(g.Nodes))
		}
		if d.Err() == nil {
			g.adj = make([][]uint64, rows)
			for i := range g.adj {
				row := d.Words()
				if d.Err() == nil && len(row) != g.words {
					return nil, fmt.Errorf("compat: adjacency row %d has %d words, want %d", i, len(row), g.words)
				}
				g.adj[i] = row
			}
		}
	case adjPartitioned:
		if err := decodePartAdj(d, g); err != nil {
			return nil, err
		}
	default:
		if d.Err() == nil {
			return nil, fmt.Errorf("compat: unknown adjacency kind %d", kind)
		}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return g, nil
}

// decodePartAdj reads the partitioned adjacency payload, rebuilding the
// derived structures (group membership, block geometry, other-group
// masks) from the encoded vgroup list and validating every dimension so
// a corrupted encoding cannot index out of range.
func decodePartAdj(d *artifact.Dec, g *Graph) error {
	v := len(g.Nodes)
	g.words = (v + 63) / 64
	nGroups := d.Int()
	if d.Err() == nil && (nGroups < 0 || nGroups > v || (v > 0 && nGroups == 0)) {
		return fmt.Errorf("compat: partitioned adjacency claims %d groups for %d nodes", nGroups, v)
	}
	if d.Err() != nil {
		return d.Err()
	}
	pa := &partAdj{
		groups:        make([][]int32, nGroups),
		vgroup:        make([]int32, v),
		vindex:        make([]int32, v),
		bw:            make([]int32, nGroups),
		blocks:        make([][]uint64, nGroups),
		otherMask:     make([][]uint64, nGroups),
		conflictStart: make([]int32, v+1),
	}
	for i := 0; i < v; i++ {
		gr := d.Varint()
		if d.Err() != nil {
			return d.Err()
		}
		if gr < 0 || gr >= int64(nGroups) {
			return fmt.Errorf("compat: vertex %d in group %d of %d", i, gr, nGroups)
		}
		pa.vgroup[i] = int32(gr)
		pa.vindex[i] = int32(len(pa.groups[gr]))
		pa.groups[gr] = append(pa.groups[gr], int32(i))
	}
	for gr := 0; gr < nGroups; gr++ {
		m := len(pa.groups[gr])
		pa.bw[gr] = int32((m + 63) / 64)
		pa.blocks[gr] = d.Words()
		if d.Err() == nil && len(pa.blocks[gr]) != m*int(pa.bw[gr]) {
			return fmt.Errorf("compat: group %d block has %d words, want %d", gr, len(pa.blocks[gr]), m*int(pa.bw[gr]))
		}
		mask := make([]uint64, g.words)
		for j := 0; j < v; j++ {
			if pa.vgroup[j] != int32(gr) {
				mask[j/64] |= 1 << uint(j%64)
			}
		}
		pa.otherMask[gr] = mask
	}
	prev := int64(0)
	for i := range pa.conflictStart {
		off := d.Varint()
		if d.Err() == nil && (off < prev || off > int64(v)*int64(v)) {
			return fmt.Errorf("compat: conflict offsets not monotonic at %d", i)
		}
		pa.conflictStart[i] = int32(off)
		prev = off
	}
	nc := d.Int()
	if d.Err() == nil && (nc < 0 || int32(nc) != pa.conflictStart[v]) {
		return fmt.Errorf("compat: %d conflict entries, offsets claim %d", nc, pa.conflictStart[v])
	}
	if d.Err() != nil {
		return d.Err()
	}
	pa.conflictIdx = make([]int32, nc)
	for i := range pa.conflictIdx {
		j := d.Varint()
		if d.Err() != nil {
			return d.Err()
		}
		if j < 0 || j >= int64(v) {
			return fmt.Errorf("compat: conflict entry %d references vertex %d of %d", i, j, v)
		}
		pa.conflictIdx[i] = int32(j)
	}
	pa.crossValid = d.Bool()
	g.pa = pa
	return d.Err()
}

// EncodeCliques serializes a mined clique list in order, preserving the
// stealth-sorted sequence the insertion stage consumes.
func EncodeCliques(cliques []Clique) []byte {
	e := artifact.NewEnc()
	e.Uvarint(cliqueCodecVersion)
	e.Int(len(cliques))
	for _, c := range cliques {
		e.Int(len(c.Vertices))
		for _, v := range c.Vertices {
			e.Int(v)
		}
		atpg.EncodeCube(e, c.Cube)
	}
	return e.Finish()
}

// DecodeCliques reverses EncodeCliques.
func DecodeCliques(data []byte) ([]Clique, error) {
	d := artifact.NewDec(data)
	if v := d.Uvarint(); v != cliqueCodecVersion {
		return nil, fmt.Errorf("compat: clique codec version %d, want %d", v, cliqueCodecVersion)
	}
	n := d.Int()
	if d.Err() == nil && (n < 0 || n > len(data)) {
		return nil, fmt.Errorf("compat: clique encoding claims %d cliques", n)
	}
	out := make([]Clique, 0, max(n, 0))
	for i := 0; i < n; i++ {
		nv := d.Int()
		if d.Err() == nil && (nv < 0 || nv > len(data)) {
			return nil, fmt.Errorf("compat: clique %d claims %d vertices", i, nv)
		}
		if d.Err() != nil {
			break
		}
		c := Clique{Vertices: make([]int, nv)}
		for j := range c.Vertices {
			c.Vertices[j] = d.Int()
		}
		var err error
		if c.Cube, err = atpg.DecodeCube(d); err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return out, nil
}
