package compat

import (
	"bytes"
	"context"
	"testing"

	"cghti/internal/artifact"
	"cghti/internal/rare"
)

func TestGraphCodecRoundTrip(t *testing.T) {
	_, _, g := buildGraph(t, rareCircuit, 0.3)
	if len(g.Nodes) == 0 {
		t.Fatal("test graph has no vertices")
	}
	enc := EncodeGraph(g)
	got, err := DecodeGraph(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Encode-decode-encode byte equality is the stability contract the
	// cache fingerprints rely on.
	if !bytes.Equal(EncodeGraph(got), enc) {
		t.Fatal("re-encoding a decoded graph changed the bytes")
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("decoded graph: %d vertices %d edges, want %d/%d",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	if len(got.InputIDs) != len(g.InputIDs) {
		t.Fatalf("InputIDs length %d, want %d", len(got.InputIDs), len(g.InputIDs))
	}
	for i := range g.Nodes {
		if got.Nodes[i] != g.Nodes[i] {
			t.Fatalf("node %d = %+v, want %+v", i, got.Nodes[i], g.Nodes[i])
		}
	}
	// The decoded graph must be minable: same cliques as the original.
	cfg := MineConfig{MinSize: 2, MaxCliques: 16, Seed: 7}
	orig := g.FindCliques(cfg)
	back := got.FindCliques(cfg)
	if len(orig) != len(back) {
		t.Fatalf("decoded graph mines %d cliques, original %d", len(back), len(orig))
	}
}

func TestGraphCodecCubeOnly(t *testing.T) {
	n, rs, _ := buildGraph(t, rareCircuit, 0.3)
	g, err := BuildCubes(context.Background(), n, rs, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGraph(EncodeGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != g.NumVertices() {
		t.Fatalf("vertices %d, want %d", got.NumVertices(), g.NumVertices())
	}
	if got.NumEdges() != 0 {
		t.Fatal("cube-only graph decoded with edges")
	}
}

func TestGraphCodecRejectsCorruption(t *testing.T) {
	_, _, g := buildGraph(t, rareCircuit, 0.3)
	enc := EncodeGraph(g)
	if _, err := DecodeGraph(enc[:len(enc)-3]); err == nil {
		t.Error("truncated graph decoded without error")
	}
	if _, err := DecodeGraph(append(append([]byte{}, enc...), 0x7F)); err == nil {
		t.Error("trailing bytes decoded without error")
	}
	if _, err := DecodeGraph([]byte{0x63}); err == nil {
		t.Error("version skew decoded without error")
	}
}

func TestCliqueCodecRoundTrip(t *testing.T) {
	_, _, g := buildGraph(t, rareCircuit, 0.3)
	cliques := g.FindCliques(MineConfig{MinSize: 2, MaxCliques: 16, Seed: 3})
	if len(cliques) == 0 {
		t.Skip("no cliques in test graph")
	}
	g.SortByStealth(cliques)
	enc := EncodeCliques(cliques)
	got, err := DecodeCliques(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeCliques(got), enc) {
		t.Fatal("re-encoding decoded cliques changed the bytes")
	}
	if len(got) != len(cliques) {
		t.Fatalf("decoded %d cliques, want %d", len(got), len(cliques))
	}
	for i := range cliques {
		if len(got[i].Vertices) != len(cliques[i].Vertices) {
			t.Fatalf("clique %d has %d vertices, want %d", i, len(got[i].Vertices), len(cliques[i].Vertices))
		}
		for j, v := range cliques[i].Vertices {
			if got[i].Vertices[j] != v {
				t.Fatalf("clique %d vertex %d = %d, want %d", i, j, got[i].Vertices[j], v)
			}
		}
	}
}

func TestBuildCachedMatchesBuild(t *testing.T) {
	n, rs, want := buildGraph(t, rareCircuit, 0.3)
	cache := artifact.NewCache(0, 0)
	cold, err := BuildCached(context.Background(), cache, n, rs, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := BuildCached(context.Background(), cache, n, rs, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*Graph{cold, warm} {
		if !bytes.Equal(EncodeGraph(g), EncodeGraph(want)) {
			t.Fatal("cached build differs from direct build")
		}
	}

	// A capped (mutated) rare set keys differently: content, not pointer.
	capped := &rare.Set{
		RN1: rs.RN1, Vectors: rs.Vectors, Threshold: rs.Threshold, TotalNodes: rs.TotalNodes,
	}
	gc, err := BuildCached(context.Background(), cache, n, capped, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if gc.NumVertices() == want.NumVertices() && len(rs.RN0) > 0 {
		t.Fatal("distinct rare-set content served the same cached graph")
	}
}
