// Package compat implements the paper's central contribution
// (Algorithm 2, Gen_compatibility): one PODEM excitation cube per rare
// node, a pairwise care-bit compatibility test between cubes, the
// resulting compatibility graph, and the mining of complete subgraphs
// (cliques) whose members can all be driven to their rare values by one
// merged test vector — making trigger-set validation unnecessary.
package compat

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"cghti/internal/atpg"
	"cghti/internal/chaos"
	"cghti/internal/netlist"
	"cghti/internal/obs"
	"cghti/internal/rare"
	"cghti/internal/stage"
)

// meters holds the package's metric handles, resolved per operation
// from the context registry (obs.FromContext) so concurrent runs under
// scoped registries attribute work to their own reports. Hot loops add
// in bulk — e.g. the O(V²) pairwise edge test counts once per Build,
// not per pair.
type meters struct {
	cubeSuccess    *obs.Counter
	cubeDropped    *obs.Counter
	pairChecks     *obs.Counter
	workerBatches  *obs.Counter
	cliqueAttempts *obs.Counter
	cliquesFound   *obs.Counter
	cliqueSatExits *obs.Counter
	vertices       *obs.Gauge
	edges          *obs.Gauge
}

func metersFor(r *obs.Registry) *meters {
	if r == nil || r == obs.Default() {
		return defaultMeters
	}
	return newMeters(r)
}

func metersCtx(ctx context.Context) *meters { return metersFor(obs.FromContext(ctx)) }

func newMeters(r *obs.Registry) *meters {
	return &meters{
		cubeSuccess:    r.Counter("compat.cubes_generated"),
		cubeDropped:    r.Counter("compat.cubes_dropped"),
		pairChecks:     r.Counter("compat.pair_checks"),
		workerBatches:  r.Counter("compat.worker_batches"),
		cliqueAttempts: r.Counter("compat.clique_attempts"),
		cliquesFound:   r.Counter("compat.cliques_found"),
		cliqueSatExits: r.Counter("compat.clique_saturation_exits"),
		vertices:       r.Gauge("compat.graph_vertices"),
		edges:          r.Gauge("compat.graph_edges"),
	}
}

var defaultMeters = newMeters(obs.Default())

// BuildConfig parameterizes graph construction.
type BuildConfig struct {
	// MaxBacktracks is the per-node PODEM budget
	// (atpg.DefaultMaxBacktracks if 0).
	MaxBacktracks int
	// MaxNodes caps how many rare nodes (rarest first) get cubes; 0
	// means all. Large sequential circuits can have thousands of rare
	// nodes; the cap bounds ATPG time without changing the algorithm.
	MaxNodes int
	// Workers sets the worker-goroutine count for both PODEM cube
	// generation and pairwise edge construction (1 = serial, 0 =
	// GOMAXPROCS). The result is identical for any worker count: each
	// rare node's cube is computed independently and results keep
	// rarity order, and the pairwise compatibility test is pure.
	Workers int
	// Partitions splits the netlist into fanout-cone partitions
	// (part.Build) — the scale path for SoC-sized designs. Cube
	// generation justifies each rare node inside its owning partition's
	// TFI-closed sub-netlist, and the adjacency is stored as dense
	// per-partition blocks plus a sparse cross-partition conflict list
	// instead of one dense V×V bitset. 0 or 1 keeps the whole-netlist
	// engine and dense adjacency. Like Workers, the graph — vertices,
	// cubes, edge set, and everything mined from it — is bit-identical
	// for any partition count; only the representation changes.
	Partitions int
	// Progress, if non-nil, is called with (candidates processed,
	// total candidates) as cube generation advances — per candidate on
	// the serial path, per batch on the parallel path. Always invoked
	// from the goroutine that called Build.
	Progress func(done, total int)
}

// Graph is the compatibility graph: vertex i is rare node Nodes[i] with
// excitation cube Cubes[i]; an edge joins vertices whose cubes have no
// care-bit conflict.
type Graph struct {
	// Nodes holds the rare nodes that received a PODEM cube.
	Nodes []rare.Node
	// Cubes[i] is the justification cube exciting Nodes[i] to its rare
	// value.
	Cubes []atpg.Cube
	// InputIDs is the cube coordinate system (CombInputs order).
	InputIDs []netlist.GateID
	// Dropped counts rare nodes skipped because PODEM aborted or proved
	// them unexcitable.
	Dropped int
	// CubesDone/CubesTotal report cube-generation progress: candidates
	// processed vs. candidates considered. Done < Total after an
	// interrupted BuildCubes (budget expiry or cancellation) or a
	// MaxNodes cutoff.
	CubesDone, CubesTotal int
	// EdgeRowsDone/EdgeRowsTotal report edge-construction progress in
	// adjacency rows. Done < Total after an interrupted ConnectEdges;
	// missing rows only remove edges, so every edge present is still a
	// genuine compatibility — an interrupted graph under-approximates
	// but never lies.
	EdgeRowsDone, EdgeRowsTotal int
	// CubeTime and EdgeTime break down construction time.
	CubeTime, EdgeTime time.Duration

	adj   [][]uint64 // dense bitset adjacency rows (nil when partitioned)
	words int        // words per full-width adjacency row

	// vertPart maps each vertex to the netlist partition that owns its
	// rare node (nil when cubes were built unpartitioned). Recorded by
	// the partitioned BuildCubes so ConnectEdges can group vertices
	// whose cubes share input support without re-deriving the plan.
	vertPart []int32
	// pa is the partitioned adjacency (nil when dense): dense
	// per-partition blocks plus a sparse cross-partition conflict list.
	pa *partAdj
}

// Build runs PODEM for every rare node and assembles the graph.
func Build(n *netlist.Netlist, rs *rare.Set, cfg BuildConfig) (*Graph, error) {
	return BuildContext(context.Background(), n, rs, cfg)
}

// BuildContext is Build with cooperative cancellation: BuildCubes
// followed by ConnectEdges under one context. On interruption the
// partially built graph is returned alongside the error so callers can
// degrade gracefully; a nil graph means nothing was salvageable.
func BuildContext(ctx context.Context, n *netlist.Netlist, rs *rare.Set, cfg BuildConfig) (*Graph, error) {
	g, err := BuildCubes(ctx, n, rs, cfg)
	if err != nil || g == nil {
		return g, err
	}
	return g, g.ConnectEdges(ctx, cfg)
}

// BuildCubes runs PODEM for every rare node (rarest first) and returns
// a graph with vertices and cubes but no edges yet — call ConnectEdges
// to finish it. Cancellation is checked per candidate (serial) or per
// batch (parallel); an interrupted build returns the vertices collected
// so far together with the interrupting error.
func BuildCubes(ctx context.Context, n *netlist.Netlist, rs *rare.Set, cfg BuildConfig) (*Graph, error) {
	candidates := rs.All()
	// Rarest first so a MaxNodes cap keeps the best trigger material.
	// MaxNodes bounds the number of *vertices* (successful cubes), not
	// candidates: nodes PODEM proves unexcitable or aborts on are
	// skipped and the walk continues down the rarity order.
	sort.Slice(candidates, func(a, b int) bool { return candidates[a].Prob < candidates[b].Prob })
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	if cfg.Partitions > 1 {
		g := &Graph{InputIDs: n.CombInputs(), CubesTotal: len(candidates)}
		t0 := time.Now()
		runErr := g.buildCubesPartitioned(ctx, n, candidates, cfg, workers)
		g.CubeTime = time.Since(t0)
		met := metersCtx(ctx)
		met.cubeSuccess.Add(int64(len(g.Nodes)))
		met.cubeDropped.Add(int64(g.Dropped))
		return g, runErr
	}

	eng, err := atpg.NewEngine(n)
	if err != nil {
		return nil, err
	}
	eng.SetRegistry(obs.FromContext(ctx))
	if cfg.MaxBacktracks > 0 {
		eng.MaxBacktracks = cfg.MaxBacktracks
	}

	g := &Graph{InputIDs: eng.InputIDs(), CubesTotal: len(candidates)}
	t0 := time.Now()
	var runErr error
	if workers == 1 {
		ctxDone := ctx.Done()
	serial:
		for done, node := range candidates {
			if cfg.MaxNodes > 0 && len(g.Nodes) >= cfg.MaxNodes {
				break
			}
			select {
			case <-ctxDone:
				runErr = ctx.Err()
				break serial
			default:
			}
			if err := chaos.Hit(stage.CubeGen, 0); err != nil {
				runErr = err
				break serial
			}
			cube, res := eng.Justify(node.ID, node.RareValue)
			g.CubesDone = done + 1
			if res != atpg.Success {
				g.Dropped++
				continue
			}
			g.Nodes = append(g.Nodes, node)
			g.Cubes = append(g.Cubes, cube)
			if cfg.Progress != nil {
				cfg.Progress(done+1, len(candidates))
			}
		}
	} else {
		runErr = g.buildCubesParallel(ctx, n, candidates, cfg, workers)
	}
	g.CubeTime = time.Since(t0)
	met := metersCtx(ctx)
	met.cubeSuccess.Add(int64(len(g.Nodes)))
	met.cubeDropped.Add(int64(g.Dropped))
	return g, runErr
}

// ConnectEdges fills in the pairwise compatibility edges, completing a
// graph started by BuildCubes. Cancellation is checked per adjacency
// row; an interrupted run leaves the edges found so far in place (every
// recorded edge is a real compatibility — only completeness suffers)
// and returns the interrupting error.
func (g *Graph) ConnectEdges(ctx context.Context, cfg BuildConfig) error {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Partitions > 1 && g.vertPart != nil {
		return g.connectEdgesPartitioned(ctx, workers)
	}
	t1 := time.Now()
	v := len(g.Nodes)
	g.words = (v + 63) / 64
	g.pa = nil
	g.adj = make([][]uint64, v)
	for i := range g.adj {
		g.adj[i] = make([]uint64, g.words)
	}
	g.EdgeRowsTotal = 0
	if v >= 2 {
		g.EdgeRowsTotal = v - 1
	}
	g.EdgeRowsDone = 0
	var runErr error
	if workers == 1 {
		ctxDone := ctx.Done()
	serial:
		for i := 0; i < v-1; i++ {
			select {
			case <-ctxDone:
				runErr = ctx.Err()
				break serial
			default:
			}
			if err := chaos.Hit(stage.GraphEdges, 0); err != nil {
				runErr = err
				break serial
			}
			for j := i + 1; j < v; j++ {
				if !g.Cubes[i].Conflicts(g.Cubes[j]) {
					g.setEdge(i, j)
				}
			}
			g.EdgeRowsDone++
		}
	} else {
		runErr = g.buildEdgesParallel(ctx, workers)
	}
	g.EdgeTime = time.Since(t1)
	met := metersCtx(ctx)
	met.pairChecks.Add(int64(v) * int64(v-1) / 2)
	met.vertices.Set(int64(v))
	met.edges.Set(int64(g.NumEdges()))
	return runErr
}

func (g *Graph) setEdge(i, j int) {
	g.adj[i][j/64] |= 1 << uint(j%64)
	g.adj[j][i/64] |= 1 << uint(i%64)
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Nodes) }

// row materializes vertex i's full-width adjacency row. The dense form
// returns its stored row directly (no copy); the partitioned form
// expands into buf (len g.words) and returns it. Callers must treat
// the result as read-only and consumed before the next row call on the
// same buf. Identical row content across representations is what makes
// mining bit-identical for any partition count.
func (g *Graph) row(i int, buf []uint64) []uint64 {
	if g.pa == nil {
		return g.adj[i]
	}
	g.pa.materialize(i, buf)
	return buf
}

// Compatible reports whether vertices i and j are adjacent.
func (g *Graph) Compatible(i, j int) bool {
	if g.pa != nil {
		return g.pa.compatible(i, j)
	}
	return g.adj[i][j/64]&(1<<uint(j%64)) != 0
}

// Degree returns the number of neighbours of vertex i.
func (g *Graph) Degree(i int) int {
	var row []uint64
	if g.pa != nil {
		row = g.row(i, make([]uint64, g.words))
	} else {
		row = g.adj[i]
	}
	d := 0
	for _, w := range row {
		d += bits.OnesCount64(w)
	}
	return d
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	total := 0
	if g.pa != nil {
		buf := make([]uint64, g.words)
		for i := range g.Nodes {
			for _, w := range g.row(i, buf) {
				total += bits.OnesCount64(w)
			}
		}
	} else {
		for i := range g.adj {
			total += g.Degree(i)
		}
	}
	return total / 2
}

// Clique is one complete subgraph plus its merged activation cube — the
// single test vector (cube) that triggers every member to its rare value.
type Clique struct {
	// Vertices indexes into Graph.Nodes, sorted ascending.
	Vertices []int
	// Cube is the conflict-free union of the members' cubes.
	Cube atpg.Cube
}

// Nodes resolves the clique's vertices to rare nodes.
func (c Clique) Nodes(g *Graph) []rare.Node {
	out := make([]rare.Node, len(c.Vertices))
	for i, v := range c.Vertices {
		out[i] = g.Nodes[v]
	}
	return out
}

// MergedCube unions the members' cubes (they cannot conflict by
// construction — pairwise compatibility of a clique implies a consistent
// union). Panics on a conflict, which for miner-produced vertex sets
// would indicate a bug; use MergedCubeErr for vertex sets that arrive
// from outside the miner (user input, serialized cliques).
func (g *Graph) MergedCube(vertices []int) atpg.Cube {
	cube, err := g.MergedCubeErr(vertices)
	if err != nil {
		panic(err)
	}
	return cube
}

// MergedCubeErr unions the members' cubes, reporting out-of-range
// vertices and care-bit conflicts as errors instead of panicking — the
// safe entry point for vertex sets not produced by the miner.
func (g *Graph) MergedCubeErr(vertices []int) (atpg.Cube, error) {
	cube := atpg.NewCube(len(g.InputIDs))
	for _, v := range vertices {
		if v < 0 || v >= len(g.Cubes) {
			return atpg.Cube{}, fmt.Errorf("compat: vertex %d out of range [0,%d)", v, len(g.Cubes))
		}
		if !cube.TryMerge(g.Cubes[v]) {
			return atpg.Cube{}, fmt.Errorf("compat: vertex %d's cube conflicts with the merged cube", v)
		}
	}
	return cube, nil
}

// MineConfig parameterizes clique mining.
type MineConfig struct {
	// MinSize is q: only cliques with at least this many vertices are
	// reported.
	MinSize int
	// MaxCliques is N: stop after this many distinct cliques (0 = 1000).
	MaxCliques int
	// Attempts bounds greedy restarts (0 = 40 × MaxCliques).
	Attempts int
	// MaxDupStreak stops mining after this many consecutive attempts
	// that rediscovered an already-seen clique (0 = DefaultMaxDupStreak,
	// negative = never stop early). On small or dense graphs the miner
	// saturates long before the Attempts budget — every restart lands on
	// a clique it already has — and without this exit it burns the full
	// 40×MaxCliques attempts re-proving that. A long duplicate streak is
	// strong statistical evidence the reachable clique set is exhausted.
	// Attempts that produce an undersized clique (< MinSize) neither
	// extend nor reset the streak: they say nothing about saturation.
	MaxDupStreak int
	// Seed drives the randomized expansion order.
	Seed int64
}

// DefaultMaxDupStreak is the duplicate-streak cutoff used when
// MineConfig.MaxDupStreak is 0.
const DefaultMaxDupStreak = 256

// FindCliques mines up to cfg.MaxCliques distinct maximal cliques of
// size >= cfg.MinSize using greedy randomized expansion over the bitset
// adjacency: start from a random vertex, repeatedly add a random
// candidate and intersect the candidate set with its neighbourhood.
// Every reported clique is maximal (no vertex can extend it), matching
// the paper's goal of trigger sets with as many rare nodes as possible.
func (g *Graph) FindCliques(cfg MineConfig) []Clique {
	out, _ := g.FindCliquesContext(context.Background(), cfg)
	return out
}

// FindCliquesContext is FindCliques with cooperative cancellation,
// checked once per expansion attempt. On interruption the cliques mined
// so far are returned alongside the error — each is complete and
// maximal in its own right, so a partial list is a usable (if smaller)
// result.
func (g *Graph) FindCliquesContext(ctx context.Context, cfg MineConfig) (out []Clique, err error) {
	if cfg.MinSize <= 0 {
		cfg.MinSize = 2
	}
	if cfg.MaxCliques <= 0 {
		cfg.MaxCliques = 1000
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 40 * cfg.MaxCliques
	}
	if cfg.MaxDupStreak == 0 {
		cfg.MaxDupStreak = DefaultMaxDupStreak
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := g.NumVertices()
	if v == 0 {
		return nil, nil
	}

	met := metersCtx(ctx)
	defer func() { met.cliquesFound.Add(int64(len(out))) }()
	seen := make(map[string]bool)
	cand := make([]uint64, g.words)
	rowBuf := make([]uint64, g.words) // scratch for partitioned row materialization
	ctxDone := ctx.Done()
	dupStreak := 0

	for attempt := 0; attempt < cfg.Attempts && len(out) < cfg.MaxCliques; attempt++ {
		select {
		case <-ctxDone:
			return out, ctx.Err()
		default:
		}
		if err := chaos.Hit(stage.CliqueMine, 0); err != nil {
			return out, err
		}
		met.cliqueAttempts.Inc()
		start := rng.Intn(v)
		clique := []int{start}
		copy(cand, g.row(start, rowBuf))
		for {
			pick, ok := randomSetBit(cand, rng)
			if !ok {
				break
			}
			clique = append(clique, pick)
			andInto(cand, g.row(pick, rowBuf))
		}
		if len(clique) < cfg.MinSize {
			continue
		}
		sort.Ints(clique)
		key := cliqueKey(clique)
		if seen[key] {
			// Saturation exit: once every restart lands on a clique we
			// already have, more attempts only rediscover them. Without
			// this, a saturated graph burns the whole Attempts budget.
			dupStreak++
			if cfg.MaxDupStreak > 0 && dupStreak >= cfg.MaxDupStreak {
				met.cliqueSatExits.Inc()
				return out, nil
			}
			continue
		}
		dupStreak = 0
		seen[key] = true
		out = append(out, Clique{Vertices: clique, Cube: g.MergedCube(clique)})
	}
	return out, nil
}

// EnumerateExact runs Bron–Kerbosch with pivoting and reports every
// maximal clique of size >= minSize, up to max results (0 = unlimited).
// Exponential in the worst case — use on small graphs and in tests that
// cross-check the greedy miner.
func (g *Graph) EnumerateExact(minSize, max int) []Clique {
	var out []Clique
	v := g.NumVertices()
	if v == 0 {
		return nil
	}
	// Bron–Kerbosch reads adjacency rows pervasively; densify a
	// partitioned graph first (exact enumeration is a small-graph tool,
	// so the dense blow-up is irrelevant).
	g.densify()
	r := make([]uint64, g.words)
	p := make([]uint64, g.words)
	x := make([]uint64, g.words)
	for i := 0; i < v; i++ {
		p[i/64] |= 1 << uint(i%64)
	}
	var rec func(r, p, x []uint64) bool
	rec = func(r, p, x []uint64) bool {
		if isEmpty(p) && isEmpty(x) {
			clique := setBits(r)
			if len(clique) >= minSize {
				out = append(out, Clique{Vertices: clique, Cube: g.MergedCube(clique)})
				if max > 0 && len(out) >= max {
					return true
				}
			}
			return false
		}
		// Pivot: vertex in P∪X with most neighbours in P.
		pivot, best := -1, -1
		forEachSetBit(p, func(u int) {
			if d := countAnd(p, g.adj[u]); d > best {
				best, pivot = d, u
			}
		})
		forEachSetBit(x, func(u int) {
			if d := countAnd(p, g.adj[u]); d > best {
				best, pivot = d, u
			}
		})
		ext := make([]uint64, g.words)
		copy(ext, p)
		if pivot >= 0 {
			for i := range ext {
				ext[i] &^= g.adj[pivot][i]
			}
		}
		stop := false
		forEachSetBit(ext, func(u int) {
			if stop {
				return
			}
			r2 := cloneBits(r)
			r2[u/64] |= 1 << uint(u%64)
			p2 := andBits(p, g.adj[u])
			x2 := andBits(x, g.adj[u])
			if rec(r2, p2, x2) {
				stop = true
				return
			}
			p[u/64] &^= 1 << uint(u%64)
			x[u/64] |= 1 << uint(u%64)
		})
		return stop
	}
	rec(r, p, x)
	return out
}

// --- bitset helpers ---

func andInto(dst, src []uint64) {
	for i := range dst {
		dst[i] &= src[i]
	}
}

func andBits(a, b []uint64) []uint64 {
	out := make([]uint64, len(a))
	for i := range a {
		out[i] = a[i] & b[i]
	}
	return out
}

func cloneBits(a []uint64) []uint64 { return append([]uint64(nil), a...) }

func isEmpty(a []uint64) bool {
	for _, w := range a {
		if w != 0 {
			return false
		}
	}
	return true
}

func countAnd(a, b []uint64) int {
	c := 0
	for i := range a {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

func setBits(a []uint64) []int {
	var out []int
	forEachSetBit(a, func(i int) { out = append(out, i) })
	return out
}

func forEachSetBit(a []uint64, f func(int)) {
	for w, word := range a {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			f(w*64 + b)
			word &= word - 1
		}
	}
}

// randomSetBit picks a uniformly random set bit.
func randomSetBit(a []uint64, rng *rand.Rand) (int, bool) {
	total := 0
	for _, w := range a {
		total += bits.OnesCount64(w)
	}
	if total == 0 {
		return 0, false
	}
	k := rng.Intn(total)
	for w, word := range a {
		c := bits.OnesCount64(word)
		if k >= c {
			k -= c
			continue
		}
		for ; ; k-- {
			b := bits.TrailingZeros64(word)
			if k == 0 {
				return w*64 + b, true
			}
			word &= word - 1
		}
	}
	return 0, false
}

func cliqueKey(c []int) string {
	b := make([]byte, 0, len(c)*3)
	for _, v := range c {
		b = append(b, byte(v), byte(v>>8), byte(v>>16))
	}
	return string(b)
}

// SortByStealth orders cliques stealthiest-first. The primary key is
// the merged cube's care-bit count (descending): a trigger whose
// activation condition pins many independent inputs is exponentially
// harder to hit, whereas a low naive probability product can hide a
// single correlated cone that rare-node-aware test generation (MERO)
// co-fires immediately. Ties break toward larger cliques, then toward
// lower probability product.
func (g *Graph) SortByStealth(cliques []Clique) {
	logProb := func(c Clique) float64 {
		sum := 0.0
		for _, v := range c.Vertices {
			p := g.Nodes[v].Prob
			if p <= 0 {
				p = 0.5 / float64(g.NumVertices()+1) // unseen in simulation: very rare
			}
			sum += math.Log(p)
		}
		return sum
	}
	sort.SliceStable(cliques, func(a, b int) bool {
		ca, cb := cliques[a].Cube.CareCount(), cliques[b].Cube.CareCount()
		if ca != cb {
			return ca > cb
		}
		if la, lb := len(cliques[a].Vertices), len(cliques[b].Vertices); la != lb {
			return la > lb
		}
		return logProb(cliques[a]) < logProb(cliques[b])
	})
}

// Validate cross-checks a clique: every vertex pair must be adjacent and
// the merged cube must be conflict-free. Used by tests and the htgen
// -check flag. Safe on cliques from external input: out-of-range
// vertices and cube conflicts come back as errors, not panics.
func (g *Graph) Validate(c Clique) error {
	for i := 0; i < len(c.Vertices); i++ {
		if v := c.Vertices[i]; v < 0 || v >= g.NumVertices() {
			return fmt.Errorf("compat: vertex %d out of range [0,%d)", v, g.NumVertices())
		}
		for j := i + 1; j < len(c.Vertices); j++ {
			if !g.Compatible(c.Vertices[i], c.Vertices[j]) {
				return fmt.Errorf("compat: vertices %d and %d not adjacent",
					c.Vertices[i], c.Vertices[j])
			}
		}
	}
	if _, err := g.MergedCubeErr(c.Vertices); err != nil {
		return err
	}
	return nil
}
