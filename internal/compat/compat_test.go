package compat

import (
	"math/rand"
	"sort"
	"testing"

	"cghti/internal/bench"
	"cghti/internal/gen"
	"cghti/internal/netlist"
	"cghti/internal/rare"
	"cghti/internal/sim"
)

// rareCircuit has several easily characterized rare nodes: deep AND/NOR
// structures over shared inputs.
const rareCircuit = `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
INPUT(f)
OUTPUT(y1)
OUTPUT(y2)
g1 = AND(a, b, c)
g2 = AND(d, e, f)
g3 = NOR(a, d, e)
g4 = AND(b, c, f)
y1 = OR(g1, g2)
y2 = OR(g3, g4)
`

func buildGraph(t *testing.T, src string, th float64) (*netlist.Netlist, *rare.Set, *Graph) {
	t.Helper()
	n, err := bench.ParseString(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rare.Extract(n, rare.Config{Vectors: 4000, Threshold: th, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(n, rs, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return n, rs, g
}

func TestBuildProducesCubes(t *testing.T) {
	_, rs, g := buildGraph(t, rareCircuit, 0.2)
	if rs.Len() == 0 {
		t.Fatal("no rare nodes in the crafted circuit")
	}
	if g.NumVertices() == 0 {
		t.Fatal("no cubes generated")
	}
	if g.NumVertices()+g.Dropped != rs.Len() {
		t.Fatalf("vertices %d + dropped %d != rare %d",
			g.NumVertices(), g.Dropped, rs.Len())
	}
	for i, cube := range g.Cubes {
		if cube.CareCount() == 0 {
			t.Errorf("vertex %d has an empty cube", i)
		}
	}
}

// TestCubesProveThemselves: each vertex's cube must excite its node
// (PODEM soundness feeding into the graph).
func TestCubesProveThemselves(t *testing.T) {
	n, _, g := buildGraph(t, rareCircuit, 0.2)
	for i, node := range g.Nodes {
		in := map[netlist.GateID]sim.V3{}
		for pos, id := range g.InputIDs {
			if v := g.Cubes[i].Get(pos); v != sim.V3X {
				in[id] = v
			}
		}
		vals, err := sim.Eval3(n, in)
		if err != nil {
			t.Fatal(err)
		}
		if vals[node.ID] != sim.V3(node.RareValue) {
			t.Errorf("cube %d does not prove %s=%d",
				i, n.Gates[node.ID].Name, node.RareValue)
		}
	}
}

func TestEdgesMatchCubeConflicts(t *testing.T) {
	_, _, g := buildGraph(t, rareCircuit, 0.2)
	for i := 0; i < g.NumVertices(); i++ {
		if g.Compatible(i, i) {
			t.Errorf("self-loop at %d", i)
		}
		for j := i + 1; j < g.NumVertices(); j++ {
			want := !g.Cubes[i].Conflicts(g.Cubes[j])
			if g.Compatible(i, j) != want {
				t.Errorf("edge (%d,%d) = %v, cube conflict says %v",
					i, j, g.Compatible(i, j), want)
			}
			if g.Compatible(i, j) != g.Compatible(j, i) {
				t.Errorf("adjacency not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestDegreeAndEdgeCount(t *testing.T) {
	_, _, g := buildGraph(t, rareCircuit, 0.2)
	sum := 0
	for i := 0; i < g.NumVertices(); i++ {
		sum += g.Degree(i)
	}
	if sum != 2*g.NumEdges() {
		t.Fatalf("degree sum %d != 2*edges %d", sum, 2*g.NumEdges())
	}
}

// TestCliquesValidationFree is the paper's core claim: the merged cube
// of any mined clique drives every member to its rare value — proven by
// three-valued simulation, with no search.
func TestCliquesValidationFree(t *testing.T) {
	n, _, g := buildGraph(t, rareCircuit, 0.25)
	cliques := g.FindCliques(MineConfig{MinSize: 2, MaxCliques: 50, Seed: 3})
	if len(cliques) == 0 {
		t.Fatal("no cliques found")
	}
	for _, c := range cliques {
		if err := g.Validate(c); err != nil {
			t.Fatal(err)
		}
		in := map[netlist.GateID]sim.V3{}
		for pos, id := range g.InputIDs {
			if v := c.Cube.Get(pos); v != sim.V3X {
				in[id] = v
			}
		}
		vals, err := sim.Eval3(n, in)
		if err != nil {
			t.Fatal(err)
		}
		for _, node := range c.Nodes(g) {
			if vals[node.ID] != sim.V3(node.RareValue) {
				t.Fatalf("clique %v: merged cube fails to trigger %s=%d",
					c.Vertices, n.Gates[node.ID].Name, node.RareValue)
			}
		}
	}
}

func TestGreedyCliquesAreMaximal(t *testing.T) {
	_, _, g := buildGraph(t, rareCircuit, 0.25)
	cliques := g.FindCliques(MineConfig{MinSize: 2, MaxCliques: 30, Seed: 7})
	for _, c := range cliques {
		inClique := map[int]bool{}
		for _, v := range c.Vertices {
			inClique[v] = true
		}
		for u := 0; u < g.NumVertices(); u++ {
			if inClique[u] {
				continue
			}
			extends := true
			for _, v := range c.Vertices {
				if !g.Compatible(u, v) {
					extends = false
					break
				}
			}
			if extends {
				t.Fatalf("clique %v not maximal: vertex %d extends it", c.Vertices, u)
			}
		}
	}
}

func TestGreedyAgreesWithExact(t *testing.T) {
	_, _, g := buildGraph(t, rareCircuit, 0.25)
	exact := g.EnumerateExact(2, 0)
	if len(exact) == 0 {
		t.Skip("graph has no cliques of size 2 at this threshold")
	}
	exactSet := map[string]bool{}
	for _, c := range exact {
		exactSet[cliqueKey(c.Vertices)] = true
	}
	greedy := g.FindCliques(MineConfig{MinSize: 2, MaxCliques: 100, Seed: 11})
	for _, c := range greedy {
		if !exactSet[cliqueKey(c.Vertices)] {
			t.Fatalf("greedy clique %v not in the exact maximal set", c.Vertices)
		}
	}
}

func TestCliquesDistinct(t *testing.T) {
	_, _, g := buildGraph(t, rareCircuit, 0.25)
	cliques := g.FindCliques(MineConfig{MinSize: 2, MaxCliques: 100, Seed: 5})
	seen := map[string]bool{}
	for _, c := range cliques {
		if !sort.IntsAreSorted(c.Vertices) {
			t.Fatal("clique vertices not sorted")
		}
		k := cliqueKey(c.Vertices)
		if seen[k] {
			t.Fatalf("duplicate clique %v", c.Vertices)
		}
		seen[k] = true
	}
}

func TestMinSizeRespected(t *testing.T) {
	_, _, g := buildGraph(t, rareCircuit, 0.25)
	for _, c := range g.FindCliques(MineConfig{MinSize: 3, MaxCliques: 50, Seed: 2}) {
		if len(c.Vertices) < 3 {
			t.Fatalf("clique %v smaller than MinSize", c.Vertices)
		}
	}
}

func TestMaxCliquesRespected(t *testing.T) {
	_, _, g := buildGraph(t, rareCircuit, 0.3)
	got := g.FindCliques(MineConfig{MinSize: 1, MaxCliques: 2, Seed: 2})
	if len(got) > 2 {
		t.Fatalf("got %d cliques, cap was 2", len(got))
	}
}

func TestEmptyGraph(t *testing.T) {
	n, err := bench.ParseString("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n", "buf")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rare.Extract(n, rare.Config{Vectors: 1000, Threshold: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(n, rs, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.FindCliques(MineConfig{MinSize: 1, MaxCliques: 5, Seed: 1}); got != nil {
		t.Fatalf("cliques from empty graph: %v", got)
	}
	if got := g.EnumerateExact(1, 0); got != nil {
		t.Fatalf("exact cliques from empty graph: %v", got)
	}
}

func TestMaxNodesCapKeepsRarest(t *testing.T) {
	n, err := bench.ParseString(rareCircuit, "t")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rare.Extract(n, rare.Config{Vectors: 4000, Threshold: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() < 3 {
		t.Skip("not enough rare nodes to exercise the cap")
	}
	g, err := Build(n, rs, BuildConfig{MaxNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices()+g.Dropped > 2 {
		t.Fatalf("cap ignored: %d vertices + %d dropped", g.NumVertices(), g.Dropped)
	}
}

// TestOnGeneratedCircuit runs the whole graph flow on a gen.Random
// circuit, asserting the validation-free property at scale.
func TestOnGeneratedCircuit(t *testing.T) {
	n, err := gen.Random(gen.Spec{Name: "r", PIs: 16, POs: 8, Gates: 250, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rare.Extract(n, rare.Config{Vectors: 4000, Threshold: 0.2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() == 0 {
		t.Fatal("generated circuit has no rare nodes at θ=0.2")
	}
	g, err := Build(n, rs, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cliques := g.FindCliques(MineConfig{MinSize: 2, MaxCliques: 20, Seed: 3})
	if len(cliques) == 0 {
		t.Skip("no size-2 cliques on this seed")
	}
	for _, c := range cliques {
		in := map[netlist.GateID]sim.V3{}
		for pos, id := range g.InputIDs {
			if v := c.Cube.Get(pos); v != sim.V3X {
				in[id] = v
			}
		}
		vals, err := sim.Eval3(n, in)
		if err != nil {
			t.Fatal(err)
		}
		for _, node := range c.Nodes(g) {
			if vals[node.ID] != sim.V3(node.RareValue) {
				t.Fatalf("validation-free property violated on generated circuit")
			}
		}
	}
}

func TestRandomSetBitUniformIsh(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bits := []uint64{0b1010, 0, 1 << 63}
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		b, ok := randomSetBit(bits, rng)
		if !ok {
			t.Fatal("no set bit found")
		}
		counts[b]++
	}
	if len(counts) != 3 {
		t.Fatalf("picked %d distinct bits, want 3 (%v)", len(counts), counts)
	}
	for b, c := range counts {
		if c < 700 {
			t.Errorf("bit %d picked only %d/3000 times", b, c)
		}
	}
	if _, ok := randomSetBit([]uint64{0, 0}, rng); ok {
		t.Fatal("randomSetBit found a bit in an empty set")
	}
}
