package compat

import (
	"context"
	"testing"

	"cghti/internal/obs"
)

// TestDupStreakEarlyExit pins the clique miner's saturation exit: on a
// small graph whose reachable clique set is exhausted almost
// immediately, the miner must stop after the duplicate streak instead
// of burning the whole 40×MaxCliques attempt budget.
func TestDupStreakEarlyExit(t *testing.T) {
	_, _, g := buildGraph(t, rareCircuit, 0.2)
	if g.NumVertices() < 2 {
		t.Fatal("graph too small to mine")
	}
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	cfg := MineConfig{MinSize: 2, MaxCliques: 100000, Attempts: 4000000, MaxDupStreak: 64, Seed: 7}
	out, err := g.FindCliquesContext(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no cliques mined")
	}
	attempts := reg.Counter("compat.clique_attempts").Value()
	// The tiny graph has only a handful of distinct maximal cliques, so
	// the exit must trigger long before the 4M attempt budget.
	if budget := int64(cfg.Attempts); attempts >= budget {
		t.Fatalf("miner burned the full attempt budget (%d)", attempts)
	}
	if max := int64(len(out)+1) * int64(cfg.MaxDupStreak+1); attempts > max {
		t.Fatalf("attempts = %d, want <= %d (cliques %d, streak %d)",
			attempts, max, len(out), cfg.MaxDupStreak)
	}
	if got := reg.Counter("compat.clique_saturation_exits").Value(); got != 1 {
		t.Fatalf("saturation exits = %d, want 1", got)
	}
}

// TestDupStreakFindsSameCliques verifies the early exit loses nothing:
// a bounded-streak run finds the same clique set as a disabled-streak
// run over the same seed, because the streak only fires after the
// reachable set is exhausted.
func TestDupStreakFindsSameCliques(t *testing.T) {
	_, _, g := buildGraph(t, rareCircuit, 0.2)
	base := MineConfig{MinSize: 2, MaxCliques: 1000, Attempts: 100000, Seed: 3}

	unbounded := base
	unbounded.MaxDupStreak = -1
	want := g.FindCliques(unbounded)

	bounded := base
	bounded.MaxDupStreak = DefaultMaxDupStreak
	got := g.FindCliques(bounded)

	if len(got) != len(want) {
		t.Fatalf("bounded run found %d cliques, unbounded %d", len(got), len(want))
	}
	for i := range got {
		if cliqueKey(got[i].Vertices) != cliqueKey(want[i].Vertices) {
			t.Fatalf("clique %d differs between bounded and unbounded runs", i)
		}
	}
}

// TestDupStreakDisabled pins that a negative MaxDupStreak never exits
// early — the attempt budget is consumed in full.
func TestDupStreakDisabled(t *testing.T) {
	_, _, g := buildGraph(t, rareCircuit, 0.2)
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	cfg := MineConfig{MinSize: 2, MaxCliques: 100000, Attempts: 5000, MaxDupStreak: -1, Seed: 7}
	if _, err := g.FindCliquesContext(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("compat.clique_attempts").Value(); got != int64(cfg.Attempts) {
		t.Fatalf("attempts = %d, want the full budget %d", got, cfg.Attempts)
	}
	if got := reg.Counter("compat.clique_saturation_exits").Value(); got != 0 {
		t.Fatalf("saturation exits = %d, want 0", got)
	}
}
