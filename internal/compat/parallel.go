package compat

import (
	"runtime"
	"sync"

	"cghti/internal/atpg"
	"cghti/internal/netlist"
	"cghti/internal/rare"
)

// buildCubesParallel runs PODEM justification for the candidates over a
// worker pool. Results are identical to the serial path for any worker
// count: cubes are collected in candidate (rarity) order, and the
// MaxNodes cutoff is the index of the MaxNodes-th success in that order,
// exactly as the serial loop would have stopped.
func (g *Graph) buildCubesParallel(n *netlist.Netlist, candidates []rare.Node, cfg BuildConfig, workers int) error {
	type outcome struct {
		cube atpg.Cube
		ok   bool
	}
	results := make([]outcome, len(candidates))

	// Process in batches so a MaxNodes cutoff does not pay for the whole
	// candidate list.
	batch := workers * 32
	if cfg.MaxNodes <= 0 {
		batch = len(candidates)
	}
	if batch == 0 {
		return nil
	}

	var initErr error
	var initOnce sync.Once
	processed := 0
	for processed < len(candidates) {
		hi := processed + batch
		if hi > len(candidates) {
			hi = len(candidates)
		}
		var wg sync.WaitGroup
		next := make(chan int, hi-processed)
		for i := processed; i < hi; i++ {
			next <- i
		}
		close(next)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				eng, err := atpg.NewEngine(n)
				if err != nil {
					initOnce.Do(func() { initErr = err })
					return
				}
				if cfg.MaxBacktracks > 0 {
					eng.MaxBacktracks = cfg.MaxBacktracks
				}
				for i := range next {
					node := candidates[i]
					cube, res := eng.Justify(node.ID, node.RareValue)
					results[i] = outcome{cube: cube, ok: res == atpg.Success}
				}
			}()
		}
		wg.Wait()
		if initErr != nil {
			return initErr
		}
		processed = hi
		cntWorkerBatches.Inc()
		if cfg.Progress != nil {
			cfg.Progress(processed, len(candidates))
		}
		if cfg.MaxNodes > 0 {
			successes := 0
			for i := 0; i < processed; i++ {
				if results[i].ok {
					successes++
				}
			}
			if successes >= cfg.MaxNodes {
				break
			}
		}
	}

	// Collect in candidate order up to the cutoff the serial loop would
	// have used.
	for i := 0; i < processed; i++ {
		if cfg.MaxNodes > 0 && len(g.Nodes) >= cfg.MaxNodes {
			break
		}
		if !results[i].ok {
			g.Dropped++
			continue
		}
		g.Nodes = append(g.Nodes, candidates[i])
		g.Cubes = append(g.Cubes, results[i].cube)
	}
	return nil
}

// DefaultWorkers reports the worker count used when BuildConfig.Workers
// is zero.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }
