package compat

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cghti/internal/atpg"
	"cghti/internal/netlist"
	"cghti/internal/rare"
)

// buildCubesParallel runs PODEM justification for the candidates over a
// worker pool. Results are identical to the serial path for any worker
// count: cubes are collected in candidate (rarity) order, and the
// MaxNodes cutoff is the index of the MaxNodes-th success in that order,
// exactly as the serial loop would have stopped.
func (g *Graph) buildCubesParallel(n *netlist.Netlist, candidates []rare.Node, cfg BuildConfig, workers int) error {
	type outcome struct {
		cube atpg.Cube
		ok   bool
	}
	results := make([]outcome, len(candidates))

	// Process in batches so a MaxNodes cutoff does not pay for the whole
	// candidate list.
	batch := workers * 32
	if cfg.MaxNodes <= 0 {
		batch = len(candidates)
	}
	if batch == 0 {
		return nil
	}

	var initErr error
	var initOnce sync.Once
	processed := 0
	for processed < len(candidates) {
		hi := processed + batch
		if hi > len(candidates) {
			hi = len(candidates)
		}
		var wg sync.WaitGroup
		next := make(chan int, hi-processed)
		for i := processed; i < hi; i++ {
			next <- i
		}
		close(next)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				eng, err := atpg.NewEngine(n)
				if err != nil {
					initOnce.Do(func() { initErr = err })
					return
				}
				if cfg.MaxBacktracks > 0 {
					eng.MaxBacktracks = cfg.MaxBacktracks
				}
				for i := range next {
					node := candidates[i]
					cube, res := eng.Justify(node.ID, node.RareValue)
					results[i] = outcome{cube: cube, ok: res == atpg.Success}
				}
			}()
		}
		wg.Wait()
		if initErr != nil {
			return initErr
		}
		processed = hi
		cntWorkerBatches.Inc()
		if cfg.Progress != nil {
			cfg.Progress(processed, len(candidates))
		}
		if cfg.MaxNodes > 0 {
			successes := 0
			for i := 0; i < processed; i++ {
				if results[i].ok {
					successes++
				}
			}
			if successes >= cfg.MaxNodes {
				break
			}
		}
	}

	// Collect in candidate order up to the cutoff the serial loop would
	// have used.
	for i := 0; i < processed; i++ {
		if cfg.MaxNodes > 0 && len(g.Nodes) >= cfg.MaxNodes {
			break
		}
		if !results[i].ok {
			g.Dropped++
			continue
		}
		g.Nodes = append(g.Nodes, candidates[i])
		g.Cubes = append(g.Cubes, results[i].cube)
	}
	return nil
}

// DefaultWorkers reports the worker count used when BuildConfig.Workers
// is zero.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// buildEdgesParallel fills the bitset adjacency by sharding the
// upper-triangle pair list row-wise over a worker pool. Workers pull
// rows from an atomic cursor and record hits into per-worker edge
// buffers; the buffers are folded into the shared bitsets afterwards,
// single-threaded. The resulting adjacency is identical to the serial
// double loop for any worker count — the pair test is pure and bitset
// unions commute.
func (g *Graph) buildEdgesParallel(workers int) {
	v := len(g.Nodes)
	if v < 2 {
		return
	}
	type edge struct{ i, j int32 }
	found := make([][]edge, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []edge
			for {
				i := int(cursor.Add(1)) - 1
				if i >= v-1 {
					break
				}
				for j := i + 1; j < v; j++ {
					if !g.Cubes[i].Conflicts(g.Cubes[j]) {
						local = append(local, edge{int32(i), int32(j)})
					}
				}
			}
			found[w] = local
		}(w)
	}
	wg.Wait()
	for _, local := range found {
		for _, e := range local {
			g.setEdge(int(e.i), int(e.j))
		}
	}
}
