package compat

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"cghti/internal/atpg"
	"cghti/internal/chaos"
	"cghti/internal/netlist"
	"cghti/internal/obs"
	"cghti/internal/rare"
	"cghti/internal/stage"
)

// buildCubesParallel runs PODEM justification for the candidates over a
// worker pool. Results are identical to the serial path for any worker
// count: cubes are collected in candidate (rarity) order, and the
// MaxNodes cutoff is the index of the MaxNodes-th success in that order,
// exactly as the serial loop would have stopped.
//
// Each worker runs under obs.Guard, so a panic inside PODEM surfaces as
// a *obs.StageError instead of killing the process. On cancellation or
// a worker error the batches completed so far are still collected into
// the graph (partial result) and the error is returned.
func (g *Graph) buildCubesParallel(ctx context.Context, n *netlist.Netlist, candidates []rare.Node, cfg BuildConfig, workers int) error {
	type outcome struct {
		cube atpg.Cube
		ok   bool
	}
	results := make([]outcome, len(candidates))

	// Process in batches so a MaxNodes cutoff does not pay for the whole
	// candidate list.
	batch := workers * 32
	if cfg.MaxNodes <= 0 {
		batch = len(candidates)
	}
	if batch == 0 {
		return nil
	}

	met := metersCtx(ctx)
	var runErr error
	var errOnce sync.Once
	setErr := func(err error) {
		if err != nil {
			errOnce.Do(func() { runErr = err })
		}
	}
	ctxDone := ctx.Done()
	processed := 0
	for processed < len(candidates) {
		select {
		case <-ctxDone:
			setErr(ctx.Err())
		default:
		}
		if runErr != nil {
			break
		}
		hi := processed + batch
		if hi > len(candidates) {
			hi = len(candidates)
		}
		var wg sync.WaitGroup
		next := make(chan int, hi-processed)
		for i := processed; i < hi; i++ {
			next <- i
		}
		close(next)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				setErr(obs.Guard(stage.CubeGen, w, func() error {
					eng, err := atpg.NewEngine(n)
					if err != nil {
						return err
					}
					eng.SetRegistry(obs.FromContext(ctx))
					if cfg.MaxBacktracks > 0 {
						eng.MaxBacktracks = cfg.MaxBacktracks
					}
					for i := range next {
						select {
						case <-ctxDone:
							return ctx.Err()
						default:
						}
						if err := chaos.Hit(stage.CubeGen, w); err != nil {
							return err
						}
						node := candidates[i]
						cube, res := eng.Justify(node.ID, node.RareValue)
						results[i] = outcome{cube: cube, ok: res == atpg.Success}
					}
					return nil
				}))
			}(w)
		}
		wg.Wait()
		if runErr != nil {
			// The interrupted batch is discarded wholesale: some of its
			// results may be filled and some not, and collecting a
			// partially filled batch would misreport misses as PODEM
			// drops.
			break
		}
		processed = hi
		met.workerBatches.Inc()
		if cfg.Progress != nil {
			cfg.Progress(processed, len(candidates))
		}
		if cfg.MaxNodes > 0 {
			successes := 0
			for i := 0; i < processed; i++ {
				if results[i].ok {
					successes++
				}
			}
			if successes >= cfg.MaxNodes {
				break
			}
		}
	}

	// Collect in candidate order up to the cutoff the serial loop would
	// have used.
	g.CubesDone = processed
	for i := 0; i < processed; i++ {
		if cfg.MaxNodes > 0 && len(g.Nodes) >= cfg.MaxNodes {
			break
		}
		if !results[i].ok {
			g.Dropped++
			continue
		}
		g.Nodes = append(g.Nodes, candidates[i])
		g.Cubes = append(g.Cubes, results[i].cube)
	}
	return runErr
}

// DefaultWorkers reports the worker count used when BuildConfig.Workers
// is zero.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// buildEdgesParallel fills the bitset adjacency by sharding the
// upper-triangle pair list row-wise over a worker pool. Workers pull
// rows from an atomic cursor and record hits into per-worker edge
// buffers; the buffers are folded into the shared bitsets afterwards,
// single-threaded. The resulting adjacency is identical to the serial
// double loop for any worker count — the pair test is pure and bitset
// unions commute.
//
// Workers run under obs.Guard and check ctx per row. On interruption
// the rows completed so far are still folded in (an edge recorded is an
// edge verified) and the error is returned.
func (g *Graph) buildEdgesParallel(ctx context.Context, workers int) error {
	v := len(g.Nodes)
	if v < 2 {
		return nil
	}
	type edge struct{ i, j int32 }
	found := make([][]edge, workers)
	var cursor atomic.Int64
	var rowsDone atomic.Int64
	var runErr error
	var errOnce sync.Once
	setErr := func(err error) {
		if err != nil {
			errOnce.Do(func() { runErr = err })
		}
	}
	ctxDone := ctx.Done()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []edge
			setErr(obs.Guard(stage.GraphEdges, w, func() error {
				for {
					select {
					case <-ctxDone:
						return ctx.Err()
					default:
					}
					if err := chaos.Hit(stage.GraphEdges, w); err != nil {
						return err
					}
					i := int(cursor.Add(1)) - 1
					if i >= v-1 {
						return nil
					}
					for j := i + 1; j < v; j++ {
						if !g.Cubes[i].Conflicts(g.Cubes[j]) {
							local = append(local, edge{int32(i), int32(j)})
						}
					}
					rowsDone.Add(1)
				}
			}))
			found[w] = local
		}(w)
	}
	wg.Wait()
	for _, local := range found {
		for _, e := range local {
			g.setEdge(int(e.i), int(e.j))
		}
	}
	g.EdgeRowsDone = int(rowsDone.Load())
	return runErr
}
