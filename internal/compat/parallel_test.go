package compat

import (
	"testing"

	"cghti/internal/gen"
	"cghti/internal/rare"
)

// TestParallelBuildMatchesSerial: the worker count must not change the
// result — same vertices, same cubes, same dropped count.
func TestParallelBuildMatchesSerial(t *testing.T) {
	n, err := gen.Random(gen.Spec{Name: "p", PIs: 16, POs: 8, Gates: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rare.Extract(n, rare.Config{Vectors: 3000, Threshold: 0.25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, maxNodes := range []int{0, 7} {
		serial, err := Build(n, rs, BuildConfig{Workers: 1, MaxNodes: maxNodes})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			par, err := Build(n, rs, BuildConfig{Workers: workers, MaxNodes: maxNodes})
			if err != nil {
				t.Fatal(err)
			}
			if par.NumVertices() != serial.NumVertices() {
				t.Fatalf("maxNodes=%d workers=%d: %d vertices vs serial %d",
					maxNodes, workers, par.NumVertices(), serial.NumVertices())
			}
			if par.Dropped != serial.Dropped {
				t.Fatalf("maxNodes=%d workers=%d: dropped %d vs serial %d",
					maxNodes, workers, par.Dropped, serial.Dropped)
			}
			for i := range serial.Nodes {
				if par.Nodes[i].ID != serial.Nodes[i].ID {
					t.Fatalf("vertex %d differs: %v vs %v", i, par.Nodes[i], serial.Nodes[i])
				}
				if !par.Cubes[i].Equal(serial.Cubes[i]) {
					t.Fatalf("cube %d differs between serial and %d workers", i, workers)
				}
			}
			if par.NumEdges() != serial.NumEdges() {
				t.Fatalf("edge count differs: %d vs %d", par.NumEdges(), serial.NumEdges())
			}
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}
