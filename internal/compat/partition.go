package compat

import (
	"context"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cghti/internal/atpg"
	"cghti/internal/chaos"
	"cghti/internal/netlist"
	"cghti/internal/obs"
	"cghti/internal/part"
	"cghti/internal/rare"
	"cghti/internal/sim"
	"cghti/internal/stage"
)

// This file is the BuildConfig.Partitions > 1 path of graph
// construction — the scale path for SoC-sized netlists.
//
// Cube generation: each rare node is justified inside the TFI-closed
// sub-netlist of the partition that owns it. PODEM's justify mode is
// TFI-local (the objective never leaves the target's fanin cone, and
// the SCOAP controllabilities backtrace consults are forward measures
// over that same cone), so the per-partition cube — remapped from the
// sub-netlist's input positions to the global CombInputs coordinate
// system — is bit-for-bit the cube the whole-netlist engine would have
// produced. Block-sized engines also make construction cheap: engine
// setup is linear in the sub-netlist, not the SoC.
//
// Adjacency: instead of one dense V×V bitset, vertices are grouped by
// owning partition. Within a group the adjacency is a dense bitset
// block (cubes over the same cone conflict often — dense pays off);
// across groups only CONFLICTS are stored, as a sorted per-vertex list
// (cubes from different cones have near-disjoint input support, so
// conflicts are the rare case and compatibility is the default). A
// support-interval test (atpg.CareBounds) skips most cross pairs in
// O(1). Interruption stays sound in both halves: missing intra bits
// under-approximate directly, and the complement-coded cross half is
// gated by crossValid — an incomplete conflict list is never consulted,
// cross pairs simply report incompatible.

// partAdj is the partitioned adjacency representation.
type partAdj struct {
	groups [][]int32  // group -> member vertices, ascending
	vgroup []int32    // vertex -> group
	vindex []int32    // vertex -> index within its group block
	bw     []int32    // group -> words per block row
	blocks [][]uint64 // group -> dense intra-group bitset, rows concatenated

	// otherMask[g] is the full-width bitset of every vertex outside
	// group g — the starting point for row materialization under the
	// compatible-by-default cross coding.
	otherMask [][]uint64

	// conflictStart/conflictIdx form a per-vertex CSR of cross-group
	// conflicts, each list sorted ascending; symmetric (a conflict
	// appears in both endpoints' lists). Only meaningful when
	// crossValid; an interrupted cross pass leaves crossValid false and
	// every cross pair reports incompatible (sound under-approximation).
	conflictStart []int32
	conflictIdx   []int32
	crossValid    bool
}

func (pa *partAdj) blockRow(i int) []uint64 {
	g := pa.vgroup[i]
	w := int(pa.bw[g])
	off := int(pa.vindex[i]) * w
	return pa.blocks[g][off : off+w]
}

func (pa *partAdj) compatible(i, j int) bool {
	if pa.vgroup[i] == pa.vgroup[j] {
		k := pa.vindex[j]
		return pa.blockRow(i)[k/64]&(1<<uint(k%64)) != 0
	}
	if !pa.crossValid {
		return false
	}
	lst := pa.conflictIdx[pa.conflictStart[i]:pa.conflictStart[i+1]]
	x := sort.Search(len(lst), func(k int) bool { return lst[k] >= int32(j) })
	return x >= len(lst) || lst[x] != int32(j)
}

// materialize expands vertex i's adjacency into the full-width bitset
// buf. The content equals the dense representation's row exactly — the
// contract g.row depends on.
func (pa *partAdj) materialize(i int, buf []uint64) {
	g := pa.vgroup[i]
	if pa.crossValid {
		copy(buf, pa.otherMask[g])
		for _, j := range pa.conflictIdx[pa.conflictStart[i]:pa.conflictStart[i+1]] {
			buf[j/64] &^= 1 << uint(j%64)
		}
	} else {
		for k := range buf {
			buf[k] = 0
		}
	}
	members := pa.groups[g]
	for wi, word := range pa.blockRow(i) {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			j := members[wi*64+b]
			buf[j/64] |= 1 << uint(j%64)
			word &= word - 1
		}
	}
}

// densify converts a partitioned graph to the dense representation in
// place (no-op when already dense). Row content is preserved exactly.
func (g *Graph) densify() {
	if g.pa == nil {
		return
	}
	v := len(g.Nodes)
	adj := make([][]uint64, v)
	for i := 0; i < v; i++ {
		adj[i] = make([]uint64, g.words)
		g.pa.materialize(i, adj[i])
	}
	g.adj = adj
	g.pa = nil
}

// buildCubesPartitioned justifies every candidate inside its owning
// partition's sub-netlist. It mirrors buildCubesParallel's batch
// structure — rarity-ordered batches of workers×32 candidates when
// MaxNodes caps the vertex count, so a cap never pays for the whole
// candidate list — but within a batch the work unit is the partition:
// one worker owns all of a partition's batch candidates, reusing that
// partition's engine (built lazily on first touch and kept across
// batches; the batch join is the cross-batch happens-before). Results
// are identical to the serial path for any partition and worker count:
// cubes are collected in candidate order with the same MaxNodes cutoff,
// and an interrupted batch is discarded wholesale (collecting a
// partially filled batch would misreport misses as PODEM drops) while
// completed batches still land in the graph as a partial result.
func (g *Graph) buildCubesPartitioned(ctx context.Context, n *netlist.Netlist, candidates []rare.Node, cfg BuildConfig, workers int) error {
	if err := n.Levelize(); err != nil {
		return err
	}
	c := netlist.CompactOf(n)
	plan, err := part.Build(c, cfg.Partitions)
	if err != nil {
		return err
	}

	// Global cube coordinate of each input gate.
	globalPos := make([]int32, c.NumGates())
	for i := range globalPos {
		globalPos[i] = -1
	}
	for i, id := range g.InputIDs {
		globalPos[id] = int32(i)
	}

	type outcome struct {
		cube atpg.Cube
		ok   bool
	}
	results := make([]outcome, len(candidates))

	batch := workers * 32
	if cfg.MaxNodes <= 0 {
		batch = len(candidates)
	}
	if batch == 0 {
		return nil
	}

	// Per-partition engines and sub→global input position maps, built
	// lazily on a partition's first batch appearance and reused for the
	// rest of the run. Within a batch exactly one worker touches a
	// partition; across batches the wg.Wait join publishes the state.
	engines := make([]*atpg.Engine, plan.Parts)
	posMaps := make([][]int32, plan.Parts)
	engineFor := func(ctx context.Context, p int) (*atpg.Engine, []int32, error) {
		if engines[p] != nil {
			return engines[p], posMaps[p], nil
		}
		s := plan.Subs[p]
		sn, err := s.C.ToNetlist()
		if err != nil {
			return nil, nil, err
		}
		eng, err := atpg.NewEngine(sn)
		if err != nil {
			return nil, nil, err
		}
		eng.SetRegistry(obs.FromContext(ctx))
		if cfg.MaxBacktracks > 0 {
			eng.MaxBacktracks = cfg.MaxBacktracks
		}
		subIn := eng.InputIDs()
		posMap := make([]int32, len(subIn))
		for k, li := range subIn {
			posMap[k] = globalPos[s.ToGlobal[li]]
		}
		engines[p], posMaps[p] = eng, posMap
		return eng, posMap, nil
	}

	met := metersCtx(ctx)
	var runErr error
	var errOnce sync.Once
	setErr := func(err error) {
		if err != nil {
			errOnce.Do(func() { runErr = err })
		}
	}
	ctxDone := ctx.Done()
	processed := 0
	byPart := make([][]int, plan.Parts)
	for processed < len(candidates) {
		select {
		case <-ctxDone:
			setErr(ctx.Err())
		default:
		}
		if runErr != nil {
			break
		}
		hi := processed + batch
		if hi > len(candidates) {
			hi = len(candidates)
		}
		// Group this batch's candidates by owning partition, ascending
		// candidate order within each.
		var active []int32
		for i := processed; i < hi; i++ {
			p := plan.Owner[candidates[i].ID]
			if len(byPart[p]) == 0 {
				active = append(active, p)
			}
			byPart[p] = append(byPart[p], i)
		}
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < min(workers, len(active)); w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				setErr(obs.Guard(stage.CubeGen, w, func() error {
					for {
						a := int(cursor.Add(1)) - 1
						if a >= len(active) {
							return nil
						}
						p := int(active[a])
						s := plan.Subs[p]
						eng, posMap, err := engineFor(ctx, p)
						if err != nil {
							return err
						}
						for _, ci := range byPart[p] {
							select {
							case <-ctxDone:
								return ctx.Err()
							default:
							}
							if err := chaos.Hit(stage.CubeGen, w); err != nil {
								return err
							}
							node := candidates[ci]
							li, ok := s.Local(node.ID)
							if !ok {
								return fmt.Errorf("compat: partition %d lacks its owned node %d", p, node.ID)
							}
							cube, res := eng.Justify(li, node.RareValue)
							if res != atpg.Success {
								continue
							}
							gc := atpg.NewCube(len(g.InputIDs))
							mapped := true
							cube.ForEachCare(func(k int, v sim.V3) {
								if posMap[k] < 0 {
									mapped = false
									return
								}
								gc.Set(int(posMap[k]), v)
							})
							if !mapped {
								return fmt.Errorf("compat: partition %d produced a care bit outside the global input list", p)
							}
							results[ci] = outcome{cube: gc, ok: true}
						}
					}
				}))
			}(w)
		}
		wg.Wait()
		for _, p := range active {
			byPart[p] = byPart[p][:0]
		}
		if runErr != nil {
			break
		}
		processed = hi
		met.workerBatches.Inc()
		if cfg.Progress != nil {
			cfg.Progress(processed, len(candidates))
		}
		if cfg.MaxNodes > 0 {
			successes := 0
			for i := 0; i < processed; i++ {
				if results[i].ok {
					successes++
				}
			}
			if successes >= cfg.MaxNodes {
				break
			}
		}
	}

	g.CubesDone = processed
	for i := 0; i < processed; i++ {
		if cfg.MaxNodes > 0 && len(g.Nodes) >= cfg.MaxNodes {
			break
		}
		if !results[i].ok {
			g.Dropped++
			continue
		}
		g.Nodes = append(g.Nodes, candidates[i])
		g.Cubes = append(g.Cubes, results[i].cube)
		g.vertPart = append(g.vertPart, plan.Owner[candidates[i].ID])
	}
	return runErr
}

// connectEdgesPartitioned fills the partitioned adjacency: dense intra-
// group blocks (work unit: group), then the sparse cross-group conflict
// pass (work unit: vertex row). Progress units are group blocks plus
// cross rows. The edge SET equals the dense path's exactly; only the
// storage differs.
func (g *Graph) connectEdgesPartitioned(ctx context.Context, workers int) error {
	t1 := time.Now()
	v := len(g.Nodes)
	g.adj = nil
	g.words = (v + 63) / 64

	// Compact the (possibly sparse) partition ids into dense group
	// numbers, preserving numeric order.
	seen := map[int32]bool{}
	var ids []int32
	for _, p := range g.vertPart {
		if !seen[p] {
			seen[p] = true
			ids = append(ids, p)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	gid := make(map[int32]int32, len(ids))
	for i, p := range ids {
		gid[p] = int32(i)
	}
	nGroups := len(ids)

	pa := &partAdj{
		groups:        make([][]int32, nGroups),
		vgroup:        make([]int32, v),
		vindex:        make([]int32, v),
		bw:            make([]int32, nGroups),
		blocks:        make([][]uint64, nGroups),
		otherMask:     make([][]uint64, nGroups),
		conflictStart: make([]int32, v+1),
	}
	for i := 0; i < v; i++ {
		gr := gid[g.vertPart[i]]
		pa.vgroup[i] = gr
		pa.vindex[i] = int32(len(pa.groups[gr]))
		pa.groups[gr] = append(pa.groups[gr], int32(i))
	}
	for gr := 0; gr < nGroups; gr++ {
		m := len(pa.groups[gr])
		pa.bw[gr] = int32((m + 63) / 64)
		pa.blocks[gr] = make([]uint64, m*int(pa.bw[gr]))
		mask := make([]uint64, g.words)
		for j := 0; j < v; j++ {
			if pa.vgroup[j] != int32(gr) {
				mask[j/64] |= 1 << uint(j%64)
			}
		}
		pa.otherMask[gr] = mask
	}
	g.pa = pa

	g.EdgeRowsTotal = nGroups + v
	g.EdgeRowsDone = 0

	// Support intervals for the O(1) cross-pair skip.
	type bound struct{ lo, hi int32 }
	bnd := make([]bound, v)
	for i := range g.Cubes {
		lo, hi := g.Cubes[i].CareBounds()
		bnd[i] = bound{int32(lo), int32(hi)}
	}

	met := metersCtx(ctx)
	var runErr error
	var errOnce sync.Once
	setErr := func(err error) {
		if err != nil {
			errOnce.Do(func() { runErr = err })
		}
	}
	ctxDone := ctx.Done()
	var unitsDone atomic.Int64

	// Phase 1: intra-group dense blocks. Each group is one work unit —
	// a single worker owns the whole block, so the symmetric bit pair
	// needs no synchronization. An interrupted block keeps the rows set
	// so far; unset bits only hide edges (sound).
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			setErr(obs.Guard(stage.GraphEdges, w, func() error {
				for {
					select {
					case <-ctxDone:
						return ctx.Err()
					default:
					}
					if err := chaos.Hit(stage.GraphEdges, w); err != nil {
						return err
					}
					gr := int(cursor.Add(1)) - 1
					if gr >= nGroups {
						return nil
					}
					members := pa.groups[gr]
					bwg := int(pa.bw[gr])
					block := pa.blocks[gr]
					for r := 0; r < len(members); r++ {
						for q := r + 1; q < len(members); q++ {
							if !g.Cubes[members[r]].Conflicts(g.Cubes[members[q]]) {
								block[r*bwg+q/64] |= 1 << uint(q%64)
								block[q*bwg+r/64] |= 1 << uint(r%64)
							}
						}
					}
					unitsDone.Add(1)
				}
			}))
		}(w)
	}
	wg.Wait()

	// Phase 2: cross-group conflicts. Skipped entirely after a phase-1
	// error — crossValid stays false and cross pairs report
	// incompatible, the sound default.
	if runErr == nil && v > 0 {
		found := make([][][2]int32, workers)
		var rowCursor atomic.Int64
		var rowsDone atomic.Int64
		var wg2 sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg2.Add(1)
			go func(w int) {
				defer wg2.Done()
				var local [][2]int32
				setErr(obs.Guard(stage.GraphEdges, w, func() error {
					for {
						select {
						case <-ctxDone:
							return ctx.Err()
						default:
						}
						if err := chaos.Hit(stage.GraphEdges, w); err != nil {
							return err
						}
						i := int(rowCursor.Add(1)) - 1
						if i >= v {
							return nil
						}
						bi := bnd[i]
						if bi.lo >= 0 {
							gi := pa.vgroup[i]
							ci := g.Cubes[i]
							for j := i + 1; j < v; j++ {
								if pa.vgroup[j] == gi {
									continue
								}
								bj := bnd[j]
								// Disjoint input support cannot conflict.
								if bj.lo < 0 || bi.hi < bj.lo || bj.hi < bi.lo {
									continue
								}
								if ci.Conflicts(g.Cubes[j]) {
									local = append(local, [2]int32{int32(i), int32(j)})
								}
							}
						}
						rowsDone.Add(1)
						unitsDone.Add(1)
					}
				}))
				found[w] = local
			}(w)
		}
		wg2.Wait()
		if runErr == nil && int(rowsDone.Load()) == v {
			// Fold the per-worker conflict pairs into the symmetric
			// per-vertex CSR, each list sorted for deterministic
			// encoding and binary-search lookup.
			counts := make([]int32, v+1)
			total := 0
			for _, local := range found {
				for _, e := range local {
					counts[e[0]+1]++
					counts[e[1]+1]++
					total += 2
				}
			}
			for i := 0; i < v; i++ {
				counts[i+1] += counts[i]
			}
			copy(pa.conflictStart, counts)
			pa.conflictIdx = make([]int32, total)
			fill := make([]int32, v)
			add := func(a, b int32) {
				pa.conflictIdx[counts[a]+fill[a]] = b
				fill[a]++
			}
			for _, local := range found {
				for _, e := range local {
					add(e[0], e[1])
					add(e[1], e[0])
				}
			}
			for i := 0; i < v; i++ {
				lst := pa.conflictIdx[pa.conflictStart[i]:pa.conflictStart[i+1]]
				sort.Slice(lst, func(a, b int) bool { return lst[a] < lst[b] })
			}
			pa.crossValid = true
		}
	}

	g.EdgeRowsDone = int(unitsDone.Load())
	g.EdgeTime = time.Since(t1)
	met.pairChecks.Add(int64(v) * int64(v-1) / 2)
	met.vertices.Set(int64(v))
	met.edges.Set(int64(g.NumEdges()))
	return runErr
}
