package compat

import (
	"reflect"
	"testing"

	"cghti/internal/gen"
	"cghti/internal/rare"
)

// socGraphFixture builds a hierarchical SoC, extracts rare nodes, and
// returns the inputs for partition-determinism tests.
func socGraphFixture(t *testing.T, gates int, seed int64) (ref *Graph, build func(cfg BuildConfig) *Graph) {
	t.Helper()
	n, err := gen.SoC(gen.SoCSpec{Gates: gates, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rare.Extract(n, rare.Config{Vectors: 3000, Threshold: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() < 8 {
		t.Skip("too few rare nodes on this seed")
	}
	build = func(cfg BuildConfig) *Graph {
		t.Helper()
		g, err := Build(n, rs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	ref = build(BuildConfig{Workers: 1})
	return ref, build
}

// TestBuildPartitionsIdentical is the scale-path determinism contract:
// for any partition count the graph has identical vertices, cubes, and
// edge relation — only the adjacency storage differs.
func TestBuildPartitionsIdentical(t *testing.T) {
	ref, build := socGraphFixture(t, 3000, 21)
	for _, parts := range []int{2, 6} {
		got := build(BuildConfig{Partitions: parts, Workers: 4})
		if got.pa == nil || got.adj != nil {
			t.Fatalf("partitions=%d: expected partitioned adjacency representation", parts)
		}
		if got.NumVertices() != ref.NumVertices() {
			t.Fatalf("partitions=%d: %d vertices, want %d", parts, got.NumVertices(), ref.NumVertices())
		}
		if got.Dropped != ref.Dropped {
			t.Fatalf("partitions=%d: %d dropped, want %d", parts, got.Dropped, ref.Dropped)
		}
		for i := 0; i < ref.NumVertices(); i++ {
			if got.Nodes[i] != ref.Nodes[i] {
				t.Fatalf("partitions=%d: vertex %d = %+v, want %+v", parts, i, got.Nodes[i], ref.Nodes[i])
			}
			if !got.Cubes[i].Equal(ref.Cubes[i]) {
				t.Fatalf("partitions=%d: cube %d = %s, want %s", parts, i, got.Cubes[i], ref.Cubes[i])
			}
			for j := i + 1; j < ref.NumVertices(); j++ {
				if got.Compatible(i, j) != ref.Compatible(i, j) {
					t.Fatalf("partitions=%d: edge (%d,%d) = %v, want %v",
						parts, i, j, got.Compatible(i, j), ref.Compatible(i, j))
				}
			}
		}
		if got.NumEdges() != ref.NumEdges() {
			t.Fatalf("partitions=%d: %d edges, want %d", parts, got.NumEdges(), ref.NumEdges())
		}
	}
}

// TestPartitionedRowsMatchDense pins the row-materialization contract
// mining depends on: a partitioned graph's expanded rows equal the
// dense representation's rows word for word, and densify converts in
// place without changing any row.
func TestPartitionedRowsMatchDense(t *testing.T) {
	ref, build := socGraphFixture(t, 3000, 21)
	got := build(BuildConfig{Partitions: 4, Workers: 2})
	buf := make([]uint64, got.words)
	for i := 0; i < ref.NumVertices(); i++ {
		if !reflect.DeepEqual(got.row(i, buf), ref.adj[i]) {
			t.Fatalf("materialized row %d differs from dense row", i)
		}
	}
	got.densify()
	if got.pa != nil || len(got.adj) != ref.NumVertices() {
		t.Fatal("densify did not convert the representation")
	}
	for i := range got.adj {
		if !reflect.DeepEqual(got.adj[i], ref.adj[i]) {
			t.Fatalf("densified row %d differs from dense row", i)
		}
	}
}

// TestPartitionedMiningIdentical runs the randomized miner and the
// exact enumerator on dense and partitioned graphs built from the same
// inputs: identical seeds must yield identical cliques.
func TestPartitionedMiningIdentical(t *testing.T) {
	ref, build := socGraphFixture(t, 3000, 21)
	got := build(BuildConfig{Partitions: 5, Workers: 4})

	mcfg := MineConfig{Seed: 77, MaxCliques: 16, Attempts: 400}
	refCl := ref.FindCliques(mcfg)
	gotCl := got.FindCliques(mcfg)
	if !reflect.DeepEqual(gotCl, refCl) {
		t.Fatalf("randomized mining differs: %d cliques vs %d", len(gotCl), len(refCl))
	}

	refEx := ref.EnumerateExact(2, 16)
	gotEx := got.EnumerateExact(2, 16)
	if !reflect.DeepEqual(gotEx, refEx) {
		t.Fatalf("exact enumeration differs: %d cliques vs %d", len(gotEx), len(refEx))
	}
}

// TestPartitionedGraphCodecRoundTrip round-trips a partitioned graph
// through the v2 codec and checks the decoded adjacency answers exactly
// like the original.
func TestPartitionedGraphCodecRoundTrip(t *testing.T) {
	_, build := socGraphFixture(t, 3000, 21)
	g := build(BuildConfig{Partitions: 4, Workers: 2})
	dec, err := DecodeGraph(EncodeGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	if dec.pa == nil {
		t.Fatal("decoded graph lost its partitioned adjacency")
	}
	if !reflect.DeepEqual(dec.vertPart, g.vertPart) {
		t.Fatal("decoded vertPart differs")
	}
	if dec.NumVertices() != g.NumVertices() || dec.NumEdges() != g.NumEdges() {
		t.Fatalf("decoded graph %d vertices / %d edges, want %d / %d",
			dec.NumVertices(), dec.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for i := 0; i < g.NumVertices(); i++ {
		for j := i + 1; j < g.NumVertices(); j++ {
			if dec.Compatible(i, j) != g.Compatible(i, j) {
				t.Fatalf("decoded edge (%d,%d) differs", i, j)
			}
		}
	}
}
