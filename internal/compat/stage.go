package compat

import (
	"context"
	"fmt"

	"cghti/internal/artifact"
	"cghti/internal/atpg"
	"cghti/internal/netlist"
	"cghti/internal/pipeline"
	"cghti/internal/rare"
	"cghti/internal/stage"
)

// CubeStage adapts PODEM cube generation (the vertex half of
// Algorithm 2) to the pipeline stage graph. Inputs: the levelized
// netlist, the rare set. Output: a *Graph with vertices and cubes but
// no edges.
type CubeStage struct {
	Cfg BuildConfig
}

// NewCubeStage returns the cube-generation stage adapter.
func NewCubeStage(cfg BuildConfig) *CubeStage { return &CubeStage{Cfg: cfg} }

// Name implements pipeline.Stage.
func (s *CubeStage) Name() string { return stage.CubeGen }

// Run implements pipeline.Stage.
func (s *CubeStage) Run(ctx context.Context, env *pipeline.Env, inputs []pipeline.Artifact) (pipeline.Artifact, error) {
	n := inputs[0].(*netlist.Netlist)
	rs := inputs[1].(*rare.Set)
	cfg := s.Cfg
	cfg.Progress = env.Progress(stage.CubeGen)
	return BuildCubes(ctx, n, rs, cfg)
}

// Salvage implements pipeline.Degradable: an interrupted build keeps
// the cubes generated so far (rarest candidates first, so the best
// trigger material survives); no vertices means nothing to mine.
func (s *CubeStage) Salvage(out pipeline.Artifact) (done, total int, detail string, ok bool) {
	g, _ := out.(*Graph)
	if g == nil || len(g.Nodes) == 0 {
		return 0, 0, "", false
	}
	return g.CubesDone, g.CubesTotal,
		fmt.Sprintf("%d cubes from %d of %d rare-node candidates", len(g.Nodes), g.CubesDone, g.CubesTotal), true
}

// CacheConfig implements pipeline.Cacheable. Workers and Partitions
// are excluded (identical output for any count — partitioning changes
// only the adjacency representation, and both representations decode
// from the v2 codec); the effective PODEM budget is normalized so 0
// and the explicit default fingerprint equally. The v2 tag reflects
// the serialized form change (graph codec v2), not a semantic change.
func (s *CubeStage) CacheConfig() []byte {
	maxBT := s.Cfg.MaxBacktracks
	if maxBT <= 0 {
		maxBT = atpg.DefaultMaxBacktracks
	}
	e := artifact.NewEnc()
	e.String("compat.cubes.v2")
	e.Int(maxBT)
	e.Int(s.Cfg.MaxNodes)
	return e.Finish()
}

// Encode implements pipeline.Cacheable.
func (s *CubeStage) Encode(out pipeline.Artifact) ([]byte, error) {
	return EncodeGraph(out.(*Graph)), nil
}

// Decode implements pipeline.Cacheable.
func (s *CubeStage) Decode(data []byte) (pipeline.Artifact, error) {
	return DecodeGraph(data)
}

// EdgeStage adapts pairwise edge construction (the edge half of
// Algorithm 2) to the pipeline stage graph. Input: the cube graph from
// CubeStage. Output: the same *Graph, now with adjacency.
type EdgeStage struct {
	Cfg BuildConfig
}

// NewEdgeStage returns the edge-construction stage adapter.
func NewEdgeStage(cfg BuildConfig) *EdgeStage { return &EdgeStage{Cfg: cfg} }

// Name implements pipeline.Stage.
func (s *EdgeStage) Name() string { return stage.GraphEdges }

// Run implements pipeline.Stage.
func (s *EdgeStage) Run(ctx context.Context, env *pipeline.Env, inputs []pipeline.Artifact) (pipeline.Artifact, error) {
	g := inputs[0].(*Graph)
	cfg := s.Cfg
	cfg.Progress = nil
	return g, g.ConnectEdges(ctx, cfg)
}

// Salvage implements pipeline.Degradable: an interrupted pass leaves a
// sound under-approximation (every recorded edge is a verified
// compatibility), so mining can always proceed.
func (s *EdgeStage) Salvage(out pipeline.Artifact) (done, total int, detail string, ok bool) {
	g, _ := out.(*Graph)
	if g == nil {
		return 0, 0, "", false
	}
	return g.EdgeRowsDone, g.EdgeRowsTotal,
		fmt.Sprintf("%d edges from %d of %d adjacency rows", g.NumEdges(), g.EdgeRowsDone, g.EdgeRowsTotal), true
}

// CacheConfig implements pipeline.Cacheable: edge construction reads no
// configuration beyond its input cubes (Workers and Partitions are both
// determinism-neutral — a cached dense graph satisfies a partitioned
// request and vice versa, since mining sees identical rows). The v2 tag
// tracks the graph codec bump.
func (s *EdgeStage) CacheConfig() []byte {
	e := artifact.NewEnc()
	e.String("compat.edges.v2")
	return e.Finish()
}

// Encode implements pipeline.Cacheable.
func (s *EdgeStage) Encode(out pipeline.Artifact) ([]byte, error) {
	return EncodeGraph(out.(*Graph)), nil
}

// Decode implements pipeline.Cacheable.
func (s *EdgeStage) Decode(data []byte) (pipeline.Artifact, error) {
	return DecodeGraph(data)
}

// MineStage adapts clique mining to the pipeline stage graph. Input:
// the complete compatibility graph. Output: the stealth-sorted []Clique.
type MineStage struct {
	Cfg MineConfig

	g *Graph // the graph mined, recorded by Run for Validate's message
}

// NewMineStage returns the clique-mining stage adapter.
func NewMineStage(cfg MineConfig) *MineStage { return &MineStage{Cfg: cfg} }

// Name implements pipeline.Stage.
func (s *MineStage) Name() string { return stage.CliqueMine }

// Run implements pipeline.Stage. The clique list is stealth-sorted even
// on the interrupted path, so a salvaged partial list has the same
// ordering contract as a complete one.
func (s *MineStage) Run(ctx context.Context, env *pipeline.Env, inputs []pipeline.Artifact) (pipeline.Artifact, error) {
	g := inputs[0].(*Graph)
	s.g = g
	cliques, err := g.FindCliquesContext(ctx, s.Cfg)
	g.SortByStealth(cliques)
	return cliques, err
}

// Salvage implements pipeline.Degradable: every clique found before an
// interruption is complete and maximal in its own right.
func (s *MineStage) Salvage(out pipeline.Artifact) (done, total int, detail string, ok bool) {
	cliques, _ := out.([]Clique)
	if len(cliques) == 0 {
		return 0, 0, "", false
	}
	target := s.Cfg.MaxCliques
	return len(cliques), target, fmt.Sprintf("%d of %d cliques mined", len(cliques), target), true
}

// Validate implements pipeline.Validator: no clique of the required
// size means no trigger set exists in the mined graph.
func (s *MineStage) Validate(out pipeline.Artifact) error {
	cliques := out.([]Clique)
	if len(cliques) == 0 {
		nv, ne := 0, 0
		if s.g != nil {
			nv, ne = s.g.NumVertices(), s.g.NumEdges()
		}
		return fmt.Errorf("cghti: no clique with >= %d compatible rare nodes (graph: %d vertices, %d edges)",
			s.Cfg.MinSize, nv, ne)
	}
	return nil
}

// CacheConfig implements pipeline.Cacheable, with the mining bounds
// normalized the same way FindCliquesContext normalizes them so 0 and
// the effective default fingerprint equally.
func (s *MineStage) CacheConfig() []byte {
	cfg := s.Cfg
	if cfg.MinSize <= 0 {
		cfg.MinSize = 2
	}
	if cfg.MaxCliques <= 0 {
		cfg.MaxCliques = 1000
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 40 * cfg.MaxCliques
	}
	if cfg.MaxDupStreak == 0 {
		cfg.MaxDupStreak = DefaultMaxDupStreak
	}
	e := artifact.NewEnc()
	e.String("compat.mine.v2")
	e.Int(cfg.MinSize)
	e.Int(cfg.MaxCliques)
	e.Int(cfg.Attempts)
	e.Int(cfg.MaxDupStreak)
	e.Varint(cfg.Seed)
	return e.Finish()
}

// Encode implements pipeline.Cacheable.
func (s *MineStage) Encode(out pipeline.Artifact) ([]byte, error) {
	return EncodeCliques(out.([]Clique)), nil
}

// Decode implements pipeline.Cacheable.
func (s *MineStage) Decode(data []byte) (pipeline.Artifact, error) {
	return DecodeCliques(data)
}

// BuildCached is BuildContext behind cache: a hit returns the stored
// complete graph (cubes and edges) without running PODEM or the
// pairwise pass; a clean miss stores the fresh graph. The rare set is
// keyed by the content hash of its encoding — sweeps that re-derive,
// cap, or re-threshold sets still key correctly. A nil cache, an
// unserializable netlist, or an interrupted build degrade to plain
// BuildContext behavior.
func BuildCached(ctx context.Context, c *artifact.Cache, n *netlist.Netlist, rs *rare.Set, cfg BuildConfig) (*Graph, error) {
	if c == nil {
		return BuildContext(ctx, n, rs, cfg)
	}
	base := artifact.NetlistFingerprint(n)
	if base.IsZero() {
		return BuildContext(ctx, n, rs, cfg)
	}
	cubeStage := NewCubeStage(cfg)
	edgeStage := NewEdgeStage(cfg)
	rsFP := artifact.Hash(rare.EncodeSet(rs))
	cubeFP := artifact.Derive(stage.CubeGen, cubeStage.CacheConfig(), base, rsFP)
	edgeFP := artifact.Derive(stage.GraphEdges, edgeStage.CacheConfig(), cubeFP)
	if data, ok := c.GetCtx(ctx, edgeFP); ok {
		if g, err := DecodeGraph(data); err == nil {
			return g, nil
		}
	}
	g, err := BuildContext(ctx, n, rs, cfg)
	if err == nil && g != nil {
		c.PutCtx(ctx, edgeFP, EncodeGraph(g))
	}
	return g, err
}
