package compat

import (
	"testing"

	"cghti/internal/gen"
	"cghti/internal/rare"
)

// TestBuildWorkersIdentical checks that the parallel cube and edge
// phases reproduce the serial graph exactly: same vertices, same cubes,
// same adjacency.
func TestBuildWorkersIdentical(t *testing.T) {
	n, err := gen.Random(gen.Spec{Name: "wk", PIs: 14, POs: 7, Gates: 220, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rare.Extract(n, rare.Config{Vectors: 3000, Threshold: 0.25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() < 3 {
		t.Skip("too few rare nodes on this seed")
	}
	ref, err := Build(n, rs, BuildConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := Build(n, rs, BuildConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.NumVertices() != ref.NumVertices() {
			t.Fatalf("workers=%d: %d vertices, want %d", workers, got.NumVertices(), ref.NumVertices())
		}
		if got.NumEdges() != ref.NumEdges() {
			t.Fatalf("workers=%d: %d edges, want %d", workers, got.NumEdges(), ref.NumEdges())
		}
		for i := 0; i < ref.NumVertices(); i++ {
			if got.Nodes[i] != ref.Nodes[i] {
				t.Fatalf("workers=%d: vertex %d = %+v, want %+v", workers, i, got.Nodes[i], ref.Nodes[i])
			}
			if got.Cubes[i].String() != ref.Cubes[i].String() {
				t.Fatalf("workers=%d: cube %d = %s, want %s", workers, i, got.Cubes[i], ref.Cubes[i])
			}
			for j := i + 1; j < ref.NumVertices(); j++ {
				if got.Compatible(i, j) != ref.Compatible(i, j) {
					t.Fatalf("workers=%d: edge (%d,%d) = %v, want %v",
						workers, i, j, got.Compatible(i, j), ref.Compatible(i, j))
				}
			}
		}
	}
}
