package detect

import (
	"context"
	"errors"
	"testing"
	"time"

	"cghti/internal/chaos"
	"cghti/internal/obs"
	"cghti/internal/rare"
	"cghti/internal/stage"
)

// cancelFixture builds the rare set the schemes need.
func cancelFixture(t *testing.T) (tgt Target, rs *rare.Set) {
	t.Helper()
	tgt, rs, _, _ = fixture(t, 1)
	return tgt, rs
}

func TestEvaluateContextCancelled(t *testing.T) {
	tgt, _ := cancelFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ts := RandomTestSet(tgt.Golden, 5000, 1)
	_, err := EvaluateContext(ctx, tgt, ts, EvalConfig{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("EvaluateContext = %v, want context.Canceled", err)
	}
}

func TestMEROContextCancelledMidRun(t *testing.T) {
	tgt, rs := cancelFixture(t)
	chaos.Install(chaos.Spec{
		Stage: stage.MERO, Worker: chaos.AnyWorker,
		Kind: chaos.Delay, Delay: 200 * time.Millisecond, OnHit: 1,
	})
	defer chaos.Uninstall()
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(20*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	ts, err := MEROContext(ctx, tgt.Golden, rs, MEROConfig{N: 50, RandomVectors: 5000, Seed: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MEROContext = %v, want context.Canceled", err)
	}
	// The partial test set (possibly empty) must still be usable.
	if ts != nil && ts.Len() > 0 && len(ts.Inputs) == 0 {
		t.Fatal("partial MERO test set has vectors but no input map")
	}
}

func TestNDATPGContextCancelled(t *testing.T) {
	tgt, rs := cancelFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NDATPGContext(ctx, tgt.Golden, rs, NDATPGConfig{N: 2, Seed: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("NDATPGContext = %v, want context.Canceled", err)
	}
}

func TestNDATPGWorkerPanicContained(t *testing.T) {
	tgt, rs := cancelFixture(t)
	chaos.Install(chaos.Spec{
		Stage: stage.NDATPG, Worker: chaos.AnyWorker,
		Kind: chaos.Panic, OnHit: 1,
	})
	defer chaos.Uninstall()
	_, err := NDATPG(tgt.Golden, rs, NDATPGConfig{N: 2, Seed: 3, Workers: 2})
	if err == nil {
		t.Fatal("injected worker panic did not surface as an error")
	}
	se, ok := obs.AsStageError(err)
	if !ok || se.PanicValue == nil || se.Stage != stage.NDATPG {
		t.Fatalf("err = %v, want a panic-derived StageError for %s", err, stage.NDATPG)
	}
}
