package detect

import (
	"math"
	"sort"

	"cghti/internal/netlist"
	"cghti/internal/scoap"
)

// COTDConfig parameterizes the structural SCOAP-outlier analysis (in the
// spirit of Salmani's COTD, IEEE TIFS 2017: trojan signals separate from
// functional signals in controllability/observability space).
//
// This scheme is an extension beyond the paper's evaluation — the paper
// only pits its benchmarks against logic testing. Running COTD against
// the generated trojans shows the flip side of the design: a trigger
// tree over dozens of hard-to-control nets is nearly impossible to
// *activate*, but its summed controllabilities make it stand out
// *structurally*.
type COTDConfig struct {
	// PercentileRef is the reference percentile of the score
	// distribution (default 99).
	PercentileRef float64
	// Mult flags gates whose score exceeds Mult × the reference
	// percentile (default 2).
	Mult float64
}

func (c COTDConfig) withDefaults() COTDConfig {
	if c.PercentileRef <= 0 || c.PercentileRef >= 100 {
		c.PercentileRef = 99
	}
	if c.Mult <= 0 {
		c.Mult = 2
	}
	return c
}

// COTDReport is the structural-analysis verdict.
type COTDReport struct {
	// Flagged is true when at least one net scored past the outlier
	// threshold.
	Flagged bool
	// Suspicious lists outlier nets, highest score first.
	Suspicious []netlist.GateID
	// Scores holds every gate's score (max finite controllability).
	Scores []float64
	// Threshold is the cutoff that was applied.
	Threshold float64
}

// COTD computes SCOAP controllabilities and flags combinational nets
// whose worst-case controllability is an extreme outlier of the
// netlist's own score distribution. No golden model is needed.
func COTD(n *netlist.Netlist, cfg COTDConfig) (*COTDReport, error) {
	cfg = cfg.withDefaults()
	m, err := scoap.Compute(n)
	if err != nil {
		return nil, err
	}
	rep := &COTDReport{Scores: make([]float64, len(n.Gates))}
	var finite []float64
	for i := range n.Gates {
		g := &n.Gates[i]
		if g.Type.IsSource() || g.Type == netlist.DFF {
			continue
		}
		cc := m.CC0[i]
		if m.CC1[i] > cc {
			cc = m.CC1[i]
		}
		if cc >= scoap.Inf {
			// Structurally constant logic: untestable, not a trojan
			// signature by this analysis.
			continue
		}
		s := float64(cc)
		rep.Scores[i] = s
		finite = append(finite, s)
	}
	if len(finite) == 0 {
		return rep, nil
	}
	sort.Float64s(finite)
	idx := int(math.Ceil(cfg.PercentileRef/100*float64(len(finite)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(finite) {
		idx = len(finite) - 1
	}
	rep.Threshold = cfg.Mult * finite[idx]
	type scored struct {
		id netlist.GateID
		s  float64
	}
	var out []scored
	for i, s := range rep.Scores {
		if s > rep.Threshold {
			out = append(out, scored{netlist.GateID(i), s})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].s > out[b].s })
	for _, o := range out {
		rep.Suspicious = append(rep.Suspicious, o.id)
	}
	rep.Flagged = len(rep.Suspicious) > 0
	return rep, nil
}
