package detect

import (
	"testing"

	"cghti/internal/compat"
	"cghti/internal/gen"
	"cghti/internal/netlist"
	"cghti/internal/rare"
	"cghti/internal/trojan"
)

func TestCOTDCleanCircuitUnflagged(t *testing.T) {
	for _, name := range []string{"c432", "c880", "s344"} {
		n := gen.MustBenchmark(name)
		rep, err := COTD(n, COTDConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Flagged {
			t.Errorf("%s: clean circuit flagged (%d suspicious nets, threshold %.0f)",
				name, len(rep.Suspicious), rep.Threshold)
		}
	}
}

func TestCOTDFlagsLargeTrigger(t *testing.T) {
	// Build a CG trojan with a large clique; its trigger tree sums
	// dozens of already-extreme controllabilities and must stand out.
	n := gen.MustBenchmark("c880")
	rs, err := rare.Extract(n, rare.Config{Vectors: 3000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	g, err := compat.Build(n, rs, compat.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cliques := g.FindCliques(compat.MineConfig{MinSize: 10, MaxCliques: 20, Seed: 4})
	if len(cliques) == 0 {
		t.Skip("no big clique on this seed")
	}
	g.SortByStealth(cliques)
	infected, inst, err := trojan.InsertInstance(n, cliques[0].Nodes(g), cliques[0].Cube, 0, trojan.InsertSpec{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := COTD(infected, COTDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Flagged {
		t.Fatalf("COTD missed a q=%d trigger tree (threshold %.0f)",
			len(cliques[0].Vertices), rep.Threshold)
	}
	// The top suspicious net should be part of the trojan.
	added := map[string]bool{}
	for _, name := range inst.AddedGates {
		added[name] = true
	}
	hit := false
	for _, id := range rep.Suspicious {
		if added[infected.Gates[id].Name] {
			hit = true
			break
		}
	}
	if !hit {
		t.Error("no trojan gate among the suspicious nets")
	}
}

func TestCOTDEmptyishCircuit(t *testing.T) {
	n := netlist.New("tiny")
	a := n.MustAddGate("a", netlist.Input)
	y := n.MustAddGate("y", netlist.Buf)
	n.Connect(a, y)
	n.MarkPO(y)
	rep, err := COTD(n, COTDConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flagged {
		t.Fatal("buffer flagged")
	}
}

func TestCOTDDefaults(t *testing.T) {
	c := COTDConfig{}.withDefaults()
	if c.PercentileRef != 99 || c.Mult != 2 {
		t.Fatalf("defaults = %+v", c)
	}
}
