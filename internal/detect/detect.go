// Package detect implements the three logic-testing HT detection schemes
// the paper evaluates against (Section IV-B) — random patterns, MERO
// (Chakraborty et al., CHES 2009) and ND-ATPG (Jayasena & Mishra, IEEE
// TCAD 2023) — plus the Trigger Coverage / Detection Coverage evaluator
// that produces Table II.
package detect

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"

	"cghti/internal/chaos"
	"cghti/internal/netlist"
	"cghti/internal/obs"
	"cghti/internal/sim"
	"cghti/internal/stage"
)

// meters holds the detection schemes' metric handles, resolved per
// operation from the context registry (obs.FromContext) so concurrent
// runs under scoped registries attribute work to their own reports.
type meters struct {
	randomVectors   *obs.Counter
	meroPoolVectors *obs.Counter
	meroVectors     *obs.Counter
	ndatpgVectors   *obs.Counter
	evaluations     *obs.Counter
}

func metersFor(r *obs.Registry) *meters {
	if r == nil || r == obs.Default() {
		return defaultMeters
	}
	return newMeters(r)
}

func metersCtx(ctx context.Context) *meters { return metersFor(obs.FromContext(ctx)) }

func newMeters(r *obs.Registry) *meters {
	return &meters{
		randomVectors:   r.Counter("detect.random_vectors"),
		meroPoolVectors: r.Counter("detect.mero_pool_vectors"),
		meroVectors:     r.Counter("detect.mero_vectors"),
		ndatpgVectors:   r.Counter("detect.ndatpg_vectors"),
		evaluations:     r.Counter("detect.evaluations"),
	}
}

var defaultMeters = newMeters(obs.Default())

// TestSet is an ordered list of fully specified test vectors over a
// circuit's combinational inputs (CombInputs order).
type TestSet struct {
	// Inputs is the coordinate system (golden netlist CombInputs).
	Inputs []netlist.GateID
	// Vectors holds one bool per input per vector.
	Vectors [][]bool
}

// Len returns the number of vectors.
func (ts *TestSet) Len() int { return len(ts.Vectors) }

// Add appends a vector (copied).
func (ts *TestSet) Add(v []bool) {
	ts.Vectors = append(ts.Vectors, append([]bool(nil), v...))
}

// RandomTestSet draws count uniform vectors — the paper's "Random"
// detection scheme.
func RandomTestSet(n *netlist.Netlist, count int, seed int64) *TestSet {
	return RandomTestSetContext(context.Background(), n, count, seed)
}

// RandomTestSetContext is RandomTestSet attributing its vector count to
// the registry carried by ctx (per-run scoping); the draw itself is
// pure and uninterruptible.
func RandomTestSetContext(ctx context.Context, n *netlist.Netlist, count int, seed int64) *TestSet {
	rng := rand.New(rand.NewSource(seed))
	inputs := n.CombInputs()
	ts := &TestSet{Inputs: inputs}
	for i := 0; i < count; i++ {
		v := make([]bool, len(inputs))
		for j := range v {
			v[j] = rng.Intn(2) == 1
		}
		ts.Vectors = append(ts.Vectors, v)
	}
	metersCtx(ctx).randomVectors.Add(int64(count))
	return ts
}

// Target couples a golden netlist with one HT-infected netlist for
// evaluation. TriggerOut/Activation identify the trigger condition so
// Trigger Coverage can be measured exactly.
type Target struct {
	Golden   *netlist.Netlist
	Infected *netlist.Netlist
	// TriggerOut is the trigger net in Infected.
	TriggerOut netlist.GateID
	// Activation is the TriggerOut value that fires the payload.
	Activation uint8
}

// Outcome reports one target against one test set.
type Outcome struct {
	// Triggered: some vector drove TriggerOut to Activation (the paper's
	// TC event).
	Triggered bool
	// Detected: some vector produced an output difference between golden
	// and infected (the paper's DC event). Detected implies the payload
	// fired and propagated.
	Detected bool
	// FirstTrigger / FirstDetect are vector indices (-1 if never).
	FirstTrigger, FirstDetect int
}

// EvalConfig parameterizes Evaluate.
type EvalConfig struct {
	// Workers is the simulation goroutine budget per circuit (1 =
	// serial, 0 = GOMAXPROCS). The outcome is bit-identical for any
	// worker count.
	Workers int
	// BatchWords is the per-batch word count (64 patterns per word);
	// 8 words = 512 vectors per batch if 0. FirstDetect scans outputs
	// batch-by-batch, so keep the batch size fixed when comparing runs.
	BatchWords int
}

// Evaluate simulates the test set on both circuits (64-wide
// bit-parallel) and reports trigger/detection coverage. Outputs are
// compared positionally over the golden circuit's combinational outputs
// (primary outputs plus scan captures), which is how logic-testing
// detection compares a suspect chip against its golden model.
func Evaluate(tgt Target, ts *TestSet) (Outcome, error) {
	return EvaluateConfig(tgt, ts, EvalConfig{Workers: 1})
}

// EvaluateConfig is Evaluate with an explicit worker/batch budget. The
// golden and infected engines are recycled through the sim engine pool,
// so sweeps that evaluate many targets against one golden circuit stop
// reallocating per-gate word arrays.
func EvaluateConfig(tgt Target, ts *TestSet, cfg EvalConfig) (Outcome, error) {
	return EvaluateContext(context.Background(), tgt, ts, cfg)
}

// EvaluateContext is EvaluateConfig with cooperative cancellation,
// checked once per simulation batch. On cancellation the outcome
// reflects the vectors evaluated so far (a vector that already
// triggered or detected stays recorded) and ctx's error is returned.
func EvaluateContext(ctx context.Context, tgt Target, ts *TestSet, cfg EvalConfig) (Outcome, error) {
	reg := obs.FromContext(ctx)
	metersFor(reg).evaluations.Inc()
	out := Outcome{FirstTrigger: -1, FirstDetect: -1}
	if len(ts.Vectors) == 0 {
		return out, nil
	}
	words := cfg.BatchWords
	if words <= 0 {
		words = 8 // 512 vectors per batch
	}
	goldenOuts := tgt.Golden.CombOutputs()
	infectedOuts := tgt.Infected.CombOutputs()
	nOuts := len(goldenOuts)
	if len(infectedOuts) < nOuts {
		return out, fmt.Errorf("detect: infected netlist has fewer outputs than golden")
	}

	// The golden and infected circuits go through the context's
	// simulation service as two blocks per batch. Each Read copies only
	// the words the comparison needs (output drivers and the trigger
	// net), masked to the batch's live patterns, so the outcome is
	// byte-identical no matter where the blocks execute or what stale
	// lanes sit beside them in a shared engine.
	svc := sim.ServiceFor(ctx)
	gOut := make([]uint64, nOuts*words)
	iOut := make([]uint64, nOuts*words)
	trig := make([]uint64, words)

	batch := 64 * words
	ctxDone := ctx.Done()
	for base := 0; base < len(ts.Vectors); base += batch {
		select {
		case <-ctxDone:
			return out, ctx.Err()
		default:
		}
		if err := chaos.Hit(stage.Evaluate, 0); err != nil {
			return out, err
		}
		count := len(ts.Vectors) - base
		if count > batch {
			count = batch
		}
		cw := (count + 63) / 64 // live words this batch
		tailMask := ^uint64(0)
		if rem := count % 64; rem != 0 {
			tailMask = (uint64(1) << uint(rem)) - 1
		}
		mask := func(w int, word uint64) uint64 {
			if w == cw-1 {
				return word & tailMask
			}
			return word
		}
		// Inputs load identically into both circuits: the infected
		// netlist shares IDs with golden for all original gates.
		fill := func(b sim.Block) {
			for j, id := range ts.Inputs {
				for w := 0; w < cw; w++ {
					var word uint64
					lim := count - w*64
					if lim > 64 {
						lim = 64
					}
					for p := 0; p < lim; p++ {
						if ts.Vectors[base+w*64+p][j] {
							word |= 1 << uint(p)
						}
					}
					b.SetWord(id, w, word)
				}
			}
		}
		if err := svc.Simulate(ctx, &sim.Request{
			Netlist: tgt.Golden, Words: words, Workers: cfg.Workers,
			Fill: fill,
			Read: func(b sim.Block) {
				for k, g := range goldenOuts {
					for w := 0; w < cw; w++ {
						gOut[k*words+w] = mask(w, b.Word(g, w))
					}
				}
			},
		}); err != nil {
			return out, err
		}
		if err := svc.Simulate(ctx, &sim.Request{
			Netlist: tgt.Infected, Words: words, Workers: cfg.Workers,
			Fill: fill,
			Read: func(b sim.Block) {
				for k := 0; k < nOuts; k++ {
					i := infectedOuts[k]
					for w := 0; w < cw; w++ {
						iOut[k*words+w] = mask(w, b.Word(i, w))
					}
				}
				for w := 0; w < cw; w++ {
					trig[w] = mask(w, b.Word(tgt.TriggerOut, w))
				}
			},
		}); err != nil {
			return out, err
		}

		if !out.Triggered {
			for p := 0; p < count; p++ {
				bit := trig[p/64]&(1<<uint(p%64)) != 0
				if (bit && tgt.Activation == 1) || (!bit && tgt.Activation == 0) {
					out.Triggered = true
					out.FirstTrigger = base + p
					break
				}
			}
		}
		if !out.Detected {
		scan:
			for k := 0; k < nOuts; k++ {
				for w := 0; w < cw; w++ {
					diff := gOut[k*words+w] ^ iOut[k*words+w]
					if diff == 0 {
						continue
					}
					out.Detected = true
					out.FirstDetect = base + w*64 + bits.TrailingZeros64(diff)
					break scan
				}
			}
		}
		if out.Triggered && out.Detected {
			break
		}
	}
	return out, nil
}

// Coverage aggregates outcomes over a set of infected netlists, as a
// percentage of netlists (the unit Table II reports).
type Coverage struct {
	Netlists  int
	Triggered int
	Detected  int
}

// Accumulate folds one outcome in.
func (c *Coverage) Accumulate(o Outcome) {
	c.Netlists++
	if o.Triggered {
		c.Triggered++
	}
	if o.Detected {
		c.Detected++
	}
}

// TCPercent returns trigger coverage as a percentage.
func (c Coverage) TCPercent() float64 {
	if c.Netlists == 0 {
		return 0
	}
	return 100 * float64(c.Triggered) / float64(c.Netlists)
}

// DCPercent returns detection coverage as a percentage.
func (c Coverage) DCPercent() float64 {
	if c.Netlists == 0 {
		return 0
	}
	return 100 * float64(c.Detected) / float64(c.Netlists)
}
