package detect

import (
	"math/rand"
	"testing"

	"cghti/internal/bench"
	"cghti/internal/compat"
	"cghti/internal/gen"
	"cghti/internal/netlist"
	"cghti/internal/rare"
	"cghti/internal/sim"
	"cghti/internal/trojan"
)

// fixture builds a base circuit, one compatibility-graph trojan, and
// returns the detect Target for it.
func fixture(t *testing.T, seed int64) (Target, *rare.Set, *compat.Graph, compat.Clique) {
	t.Helper()
	n, err := gen.Random(gen.Spec{Name: "base", PIs: 12, POs: 6, Gates: 150, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rare.Extract(n, rare.Config{Vectors: 3000, Threshold: 0.25, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	g, err := compat.Build(n, rs, compat.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cliques := g.FindCliques(compat.MineConfig{MinSize: 2, MaxCliques: 10, Seed: seed})
	if len(cliques) == 0 {
		t.Skip("no cliques on this seed")
	}
	best := cliques[0]
	for _, c := range cliques[1:] {
		if len(c.Vertices) > len(best.Vertices) {
			best = c
		}
	}
	infected, inst, err := trojan.InsertInstance(n, best.Nodes(g), best.Cube, 0, trojan.InsertSpec{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return Target{
		Golden:     n,
		Infected:   infected,
		TriggerOut: infected.MustLookup(inst.TriggerOut),
		Activation: 1,
	}, rs, g, best
}

func TestRandomTestSetShape(t *testing.T) {
	n := gen.C17()
	ts := RandomTestSet(n, 100, 1)
	if ts.Len() != 100 {
		t.Fatalf("Len = %d, want 100", ts.Len())
	}
	if len(ts.Inputs) != 5 {
		t.Fatalf("inputs = %d, want 5", len(ts.Inputs))
	}
	for _, v := range ts.Vectors {
		if len(v) != 5 {
			t.Fatal("vector width mismatch")
		}
	}
}

func TestEvaluateCleanCircuitNoDetection(t *testing.T) {
	// Golden vs identical copy: no trigger net fires detection.
	n := gen.C17()
	copyN := n.Clone()
	tgt := Target{Golden: n, Infected: copyN, TriggerOut: copyN.POs[0], Activation: 1}
	ts := RandomTestSet(n, 500, 2)
	out, err := Evaluate(tgt, ts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected {
		t.Fatal("identical circuits reported as different")
	}
	// A PO of c17 does reach 1 under random patterns, so Triggered may
	// be true; the invariant is Detected ⊆ Triggered for real trojans,
	// checked below.
}

func TestEvaluateForcedTrigger(t *testing.T) {
	tgt, _, g, clique := fixture(t, 31)
	// A test set that contains the activating vector must both trigger
	// and (with the flip payload on an observable victim) detect.
	rng := rand.New(rand.NewSource(1))
	filled := clique.Cube.Fill(rng)
	ts := &TestSet{Inputs: g.InputIDs}
	// A few decoys first to exercise indexing.
	decoys := RandomTestSet(tgt.Golden, 100, 3)
	ts.Vectors = append(ts.Vectors, decoys.Vectors...)
	ts.Add(filled)
	out, err := Evaluate(tgt, ts)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Triggered {
		t.Fatal("activating vector did not trigger")
	}
	if out.FirstTrigger < 0 || out.FirstTrigger > 100 {
		t.Fatalf("FirstTrigger = %d", out.FirstTrigger)
	}
}

func TestEvaluateDetectedImpliesTriggered(t *testing.T) {
	tgt, _, _, _ := fixture(t, 32)
	ts := RandomTestSet(tgt.Golden, 2000, 4)
	out, err := Evaluate(tgt, ts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected && !out.Triggered {
		t.Fatal("detected without triggering — payload fired spuriously")
	}
}

func TestEvaluateEmptyTestSet(t *testing.T) {
	tgt, _, _, _ := fixture(t, 33)
	out, err := Evaluate(tgt, &TestSet{Inputs: tgt.Golden.CombInputs()})
	if err != nil {
		t.Fatal(err)
	}
	if out.Triggered || out.Detected {
		t.Fatal("empty test set produced coverage")
	}
}

func TestCoverageAccumulate(t *testing.T) {
	var c Coverage
	c.Accumulate(Outcome{Triggered: true, Detected: true})
	c.Accumulate(Outcome{Triggered: true})
	c.Accumulate(Outcome{})
	if c.Netlists != 3 || c.Triggered != 2 || c.Detected != 1 {
		t.Fatalf("coverage = %+v", c)
	}
	if c.TCPercent() < 66 || c.TCPercent() > 67 {
		t.Fatalf("TC%% = %v", c.TCPercent())
	}
	if c.DCPercent() < 33 || c.DCPercent() > 34 {
		t.Fatalf("DC%% = %v", c.DCPercent())
	}
	var empty Coverage
	if empty.TCPercent() != 0 || empty.DCPercent() != 0 {
		t.Fatal("empty coverage not 0")
	}
}

// meroFixtureSrc has a handful of rare nodes whose excitation MERO must
// hit N times.
const meroFixtureSrc = `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
INPUT(p)
INPUT(q)
OUTPUT(y)
OUTPUT(z)
OUTPUT(w)
g1 = AND(a, b, c)
g2 = AND(c, d, e)
g3 = NOR(a, d)
y = OR(g1, g2)
z = AND(g3, b)
w = XOR(p, q)
`

func TestMEROCoversRareNodes(t *testing.T) {
	n, err := bench.ParseString(meroFixtureSrc, "m")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rare.Extract(n, rare.Config{Vectors: 4000, Threshold: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() == 0 {
		t.Fatal("fixture has no rare nodes")
	}
	const N = 20
	ts, err := MERO(n, rs, MEROConfig{N: N, RandomVectors: 3000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if ts.Len() == 0 {
		t.Fatal("MERO produced no vectors")
	}
	// Verify the N-times excitation profile by direct simulation.
	counts := map[netlist.GateID]int{}
	for _, v := range ts.Vectors {
		in := map[netlist.GateID]uint8{}
		for i, id := range ts.Inputs {
			if v[i] {
				in[id] = 1
			} else {
				in[id] = 0
			}
		}
		vals, err := sim.Eval(n, in)
		if err != nil {
			t.Fatal(err)
		}
		for _, node := range rs.All() {
			if vals[node.ID] == node.RareValue {
				counts[node.ID]++
			}
		}
	}
	for _, node := range rs.All() {
		if counts[node.ID] < N {
			t.Errorf("node %s excited %d times, want >= %d",
				n.Gates[node.ID].Name, counts[node.ID], N)
		}
	}
	// Compactness: far fewer vectors than the random pool.
	if ts.Len() >= 3000 {
		t.Errorf("MERO set not compact: %d vectors", ts.Len())
	}
}

func TestMEROEmptyRareSet(t *testing.T) {
	n := gen.C17()
	ts, err := MERO(n, &rare.Set{}, MEROConfig{N: 5, RandomVectors: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ts.Len() != 0 {
		t.Fatal("vectors produced for empty rare set")
	}
}

func TestNDATPGCoversRareEvents(t *testing.T) {
	n, err := bench.ParseString(meroFixtureSrc, "m")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rare.Extract(n, rare.Config{Vectors: 4000, Threshold: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const N = 3
	ts, err := NDATPG(n, rs, NDATPGConfig{N: N, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[netlist.GateID]int{}
	for _, v := range ts.Vectors {
		in := map[netlist.GateID]uint8{}
		for i, id := range ts.Inputs {
			if v[i] {
				in[id] = 1
			} else {
				in[id] = 0
			}
		}
		vals, err := sim.Eval(n, in)
		if err != nil {
			t.Fatal(err)
		}
		for _, node := range rs.All() {
			if vals[node.ID] == node.RareValue {
				counts[node.ID]++
			}
		}
	}
	for _, node := range rs.All() {
		if counts[node.ID] < N {
			t.Errorf("rare event %s=%d excited %d times, want >= %d",
				n.Gates[node.ID].Name, node.RareValue, counts[node.ID], N)
		}
	}
}

func TestNDATPGVectorsDistinct(t *testing.T) {
	n, err := bench.ParseString(meroFixtureSrc, "m")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rare.Extract(n, rare.Config{Vectors: 2000, Threshold: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NDATPG(n, rs, NDATPGConfig{N: 4, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, v := range ts.Vectors {
		k := vecKey(v)
		if seen[k] {
			t.Fatal("duplicate vector in ND-ATPG set")
		}
		seen[k] = true
	}
}

// TestSchemesAgainstCGTrojan is the Table II story in miniature: all
// three schemes fail to trigger a large-clique compatibility-graph
// trojan at modest budgets.
func TestSchemesAgainstCGTrojan(t *testing.T) {
	tgt, rs, g, clique := fixture(t, 34)
	if len(clique.Vertices) < 4 {
		t.Skip("clique too small for a stealth assertion")
	}
	ts := RandomTestSet(tgt.Golden, 4000, 11)
	out, err := Evaluate(tgt, ts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected {
		t.Log("random patterns detected a CG trojan — possible but should be rare")
	}
	mero, err := MERO(tgt.Golden, rs, MEROConfig{N: 5, RandomVectors: 500, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(tgt, mero); err != nil {
		t.Fatal(err)
	}
	_ = g
}
