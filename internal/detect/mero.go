package detect

import (
	"context"
	"math/bits"
	"math/rand"
	"sort"

	"cghti/internal/chaos"
	"cghti/internal/netlist"
	"cghti/internal/obs"
	"cghti/internal/rare"
	"cghti/internal/sim"
	"cghti/internal/stage"
)

// MEROConfig parameterizes the MERO test generation algorithm
// (Chakraborty, Wolff, Paul, Papachristou, Bhunia — CHES 2009).
type MEROConfig struct {
	// N is the target number of times each rare node must be driven to
	// its rare value (the paper's N-detect parameter; MERO used 1000).
	N int
	// RandomVectors is the size of the initial random vector pool
	// (MERO's paper used 100k; scale down for small circuits).
	RandomVectors int
	// Seed drives vector generation.
	Seed int64
	// Workers is the goroutine budget for scoring the random pool with
	// the bit-parallel engine (1 = serial, 0 = GOMAXPROCS). The
	// emitted test set is bit-identical for any worker count; the
	// greedy mutation phase stays event-driven and serial.
	Workers int
}

func (c MEROConfig) withDefaults() MEROConfig {
	if c.N <= 0 {
		c.N = 1000
	}
	if c.RandomVectors <= 0 {
		c.RandomVectors = 100000
	}
	return c
}

// MERO implements the CHES'09 algorithm:
//
//  1. draw a pool of random vectors and sort it by how many rare nodes
//     each vector drives to its rare value (descending);
//  2. for each vector, flip one input bit at a time, keeping a flip only
//     if it increases the number of rare nodes at their rare values
//     (event-driven simulation makes each flip cheap);
//  3. keep the mutated vector in the compact set if it improves the
//     cumulative N-times excitation profile; stop once every rare node
//     has been excited N times.
//
// The returned set is the compact MERO test set.
func MERO(n *netlist.Netlist, rs *rare.Set, cfg MEROConfig) (*TestSet, error) {
	return MEROContext(context.Background(), n, rs, cfg)
}

// MEROContext is MERO with cooperative cancellation, checked per
// scoring batch in phase 1 and per pool candidate in the mutation
// phase. On cancellation during mutation the vectors accumulated so far
// form a valid (smaller) MERO set and are returned alongside ctx's
// error; cancellation during pool scoring returns a nil set.
func MEROContext(ctx context.Context, n *netlist.Netlist, rs *rare.Set, cfg MEROConfig) (*TestSet, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	inputs := n.CombInputs()
	nodes := rs.All()
	ts := &TestSet{Inputs: inputs}
	if len(nodes) == 0 {
		return ts, nil
	}

	met := metersCtx(ctx)
	ev, err := sim.NewEvent(n)
	if err != nil {
		return nil, err
	}
	ev.SetRegistry(obs.FromContext(ctx))

	// Rare-hit bookkeeping is incremental: after each Propagate only the
	// changed gates are re-examined, which turns the per-bit-flip cost
	// from O(#rare nodes) into O(#changed gates). The full rescan is
	// only needed when a whole new vector is applied.
	rareVal := make(map[netlist.GateID]uint8, len(nodes))
	for _, node := range nodes {
		rareVal[node.ID] = node.RareValue
	}
	atRare := make(map[netlist.GateID]bool, len(nodes))
	hits := 0
	rescanHits := func() {
		hits = 0
		for _, node := range nodes {
			at := ev.Val(node.ID) == node.RareValue
			atRare[node.ID] = at
			if at {
				hits++
			}
		}
	}
	updateHits := func() {
		for _, id := range ev.Changed() {
			rv, ok := rareVal[id]
			if !ok {
				continue
			}
			now := ev.Val(id) == rv
			if now != atRare[id] {
				atRare[id] = now
				if now {
					hits++
				} else {
					hits--
				}
			}
		}
	}
	apply := func(v []bool) {
		for i, id := range inputs {
			var b uint8
			if v[i] {
				b = 1
			}
			ev.SetInput(id, b)
		}
		ev.Propagate()
		updateHits()
	}

	// Phase 1: random pool, scored 64 vectors at a time with the
	// bit-parallel engine (the event simulator scores one vector per
	// propagation; the packed engine scores a whole word per popcount).
	type scored struct {
		v    []bool
		hits int
	}
	met.meroPoolVectors.Add(int64(cfg.RandomVectors))
	vecs := make([][]bool, cfg.RandomVectors)
	for i := range vecs {
		v := make([]bool, len(inputs))
		for j := range v {
			v[j] = rng.Intn(2) == 1
		}
		vecs[i] = v
	}
	poolHits, err := scorePool(ctx, n, nodes, inputs, vecs, cfg.Workers)
	if err != nil {
		return nil, err
	}
	pool := make([]scored, len(vecs))
	for i, v := range vecs {
		pool[i] = scored{v: v, hits: poolHits[i]}
	}
	sort.SliceStable(pool, func(a, b int) bool { return pool[a].hits > pool[b].hits })

	// Phase 2+3: mutate and accumulate.
	counts := make(map[netlist.GateID]int, len(nodes))
	satisfied := 0
	need := len(nodes)
	done := func() bool { return satisfied >= need }

	ctxDone := ctx.Done()
	for _, cand := range pool {
		if done() {
			break
		}
		select {
		case <-ctxDone:
			return ts, ctx.Err()
		default:
		}
		if err := chaos.Hit(stage.MERO, 0); err != nil {
			return ts, err
		}
		v := cand.v
		apply(v)
		rescanHits()
		best := hits
		// Per-bit greedy mutation (incremental hit updates per flip).
		for j, id := range inputs {
			var b uint8
			if !v[j] {
				b = 1
			}
			ev.SetInput(id, b)
			ev.Propagate()
			updateHits()
			if hits > best {
				best = hits
				v[j] = !v[j]
			} else {
				ev.SetInput(id, b^1)
				ev.Propagate()
				updateHits()
			}
		}
		// Does the mutated vector improve the cumulative profile?
		apply(v)
		improves := false
		for _, node := range nodes {
			if ev.Val(node.ID) == node.RareValue && counts[node.ID] < cfg.N {
				improves = true
				break
			}
		}
		if !improves {
			continue
		}
		for _, node := range nodes {
			if ev.Val(node.ID) == node.RareValue {
				counts[node.ID]++
				if counts[node.ID] == cfg.N {
					satisfied++
				}
			}
		}
		ts.Add(v)
	}
	met.meroVectors.Add(int64(ts.Len()))
	return ts, nil
}

// meroScoreWords is the packed batch size for pool scoring: 32 words =
// 2048 vectors per Run, enough room for worker sharding.
const meroScoreWords = 32

// scorePool counts, for every vector, how many rare nodes it drives to
// their rare values, submitting 2048-vector blocks to the context's
// simulation service. The counts are exactly those the event-driven
// scorer produced (same vectors, same semantics), just 64 per word
// instead of one per propagation — and bit-identical whether the blocks
// run on a private pooled engine or packed into a shared one, because
// each block reads back only the word window it loaded.
func scorePool(ctx context.Context, n *netlist.Netlist, nodes []rare.Node, inputs []netlist.GateID, vecs [][]bool, workers int) ([]int, error) {
	hits := make([]int, len(vecs))
	svc := sim.ServiceFor(ctx)
	batch := 64 * meroScoreWords
	ctxDone := ctx.Done()
	for base := 0; base < len(vecs); base += batch {
		select {
		case <-ctxDone:
			return nil, ctx.Err()
		default:
		}
		if err := chaos.Hit(stage.MERO, 0); err != nil {
			return nil, err
		}
		count := len(vecs) - base
		if count > batch {
			count = batch
		}
		base := base
		req := &sim.Request{
			Netlist: n,
			Words:   meroScoreWords,
			Workers: workers,
			Fill: func(b sim.Block) {
				for j, id := range inputs {
					for w := 0; w*64 < count; w++ {
						var word uint64
						lim := count - w*64
						if lim > 64 {
							lim = 64
						}
						for p := 0; p < lim; p++ {
							if vecs[base+w*64+p][j] {
								word |= 1 << uint(p)
							}
						}
						b.SetWord(id, w, word)
					}
				}
			},
			Read: func(b sim.Block) {
				for _, node := range nodes {
					for w := 0; w*64 < count; w++ {
						word := b.Word(node.ID, w)
						if node.RareValue == 0 {
							word = ^word
						}
						if lim := count - w*64; lim < 64 {
							word &= (uint64(1) << uint(lim)) - 1
						}
						for word != 0 {
							hits[base+w*64+bits.TrailingZeros64(word)]++
							word &= word - 1
						}
					}
				}
			},
		}
		if err := svc.Simulate(ctx, req); err != nil {
			return nil, err
		}
	}
	return hits, nil
}
