package detect

import (
	"math/rand"

	"cghti/internal/atpg"
	"cghti/internal/netlist"
	"cghti/internal/rare"
)

// NDATPGConfig parameterizes the ND-ATPG scheme (Jayasena & Mishra,
// "Scalable Detection of Hardware Trojans Using ATPG-Based Activation of
// Rare Events", IEEE TCAD 2023).
type NDATPGConfig struct {
	// N is the number of test vectors generated per rare event (the
	// N-detect principle; the scheme's quality/time knob).
	N int
	// MaxBacktracks bounds each PODEM run.
	MaxBacktracks int
	// Seed drives the random completion of don't-care bits.
	Seed int64
}

func (c NDATPGConfig) withDefaults() NDATPGConfig {
	if c.N <= 0 {
		c.N = 5
	}
	return c
}

// NDATPG converts every rare event (rare node n at rare value r) into
// the stuck-at-¬r fault at n, runs ATPG to obtain a detecting cube, and
// emits N distinct vectors per event by re-filling the cube's don't-care
// bits. Events whose fault is redundant fall back to pure excitation
// (justification); unexcitable events are skipped.
func NDATPG(n *netlist.Netlist, rs *rare.Set, cfg NDATPGConfig) (*TestSet, error) {
	cfg = cfg.withDefaults()
	eng, err := atpg.NewEngine(n)
	if err != nil {
		return nil, err
	}
	if cfg.MaxBacktracks > 0 {
		eng.MaxBacktracks = cfg.MaxBacktracks
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ts := &TestSet{Inputs: eng.InputIDs()}
	seen := make(map[string]bool)

	for _, node := range rs.All() {
		cube, res := eng.Detect(node.ID, node.RareValue^1)
		if res != atpg.Success {
			// Redundant or aborted propagation: excitation alone still
			// drives the rare event, which is what trojan triggering
			// needs.
			cube, res = eng.Justify(node.ID, node.RareValue)
			if res != atpg.Success {
				continue
			}
		}
		// Emit N distinct completions of the cube. A completion already
		// in the set (shared with another rare event) still counts
		// toward this event's N — the vector excites it either way.
		// Narrow cubes may have fewer than N completions; emit what
		// exists.
		eventSeen := make(map[string]bool, cfg.N)
		for attempt := 0; attempt < 8*cfg.N && len(eventSeen) < cfg.N; attempt++ {
			v := cube.Fill(rng)
			key := vecKey(v)
			if eventSeen[key] {
				continue
			}
			eventSeen[key] = true
			if !seen[key] {
				seen[key] = true
				ts.Add(v)
			}
		}
	}
	cntNDATPGVectors.Add(int64(ts.Len()))
	return ts, nil
}

func vecKey(v []bool) string {
	b := make([]byte, (len(v)+7)/8)
	for i, bit := range v {
		if bit {
			b[i/8] |= 1 << uint(i%8)
		}
	}
	return string(b)
}
