package detect

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"cghti/internal/atpg"
	"cghti/internal/chaos"
	"cghti/internal/netlist"
	"cghti/internal/obs"
	"cghti/internal/rare"
	"cghti/internal/stage"
)

// NDATPGConfig parameterizes the ND-ATPG scheme (Jayasena & Mishra,
// "Scalable Detection of Hardware Trojans Using ATPG-Based Activation of
// Rare Events", IEEE TCAD 2023).
type NDATPGConfig struct {
	// N is the number of test vectors generated per rare event (the
	// N-detect principle; the scheme's quality/time knob).
	N int
	// MaxBacktracks bounds each PODEM run.
	MaxBacktracks int
	// Seed drives the random completion of don't-care bits. Each rare
	// event fills its cube from its own Seed-derived stream, so the
	// emitted set does not depend on how the ATPG runs were scheduled.
	Seed int64
	// Workers is the ATPG worker-goroutine count (1 = serial, 0 =
	// GOMAXPROCS). The test set is identical for any worker count:
	// every event's cube is computed independently and vectors are
	// collected in rare-set order.
	Workers int
}

func (c NDATPGConfig) withDefaults() NDATPGConfig {
	if c.N <= 0 {
		c.N = 5
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// NDATPG converts every rare event (rare node n at rare value r) into
// the stuck-at-¬r fault at n, runs ATPG to obtain a detecting cube, and
// emits N distinct vectors per event by re-filling the cube's don't-care
// bits. Events whose fault is redundant fall back to pure excitation
// (justification); unexcitable events are skipped.
//
// The expensive ATPG runs are sharded across Workers goroutines (each
// with its own engine); don't-care filling and dedup then walk the
// results serially in rare-set order, so the output is deterministic.
func NDATPG(n *netlist.Netlist, rs *rare.Set, cfg NDATPGConfig) (*TestSet, error) {
	return NDATPGContext(context.Background(), n, rs, cfg)
}

// NDATPGContext is NDATPG with cooperative cancellation (checked per
// rare event inside the ATPG worker pool) and panic containment (a
// panicking worker surfaces as a *obs.StageError instead of killing the
// process). Cancellation returns a nil set with ctx's error: vectors
// are only assembled after every event's cube is known.
func NDATPGContext(ctx context.Context, n *netlist.Netlist, rs *rare.Set, cfg NDATPGConfig) (*TestSet, error) {
	cfg = cfg.withDefaults()
	events := rs.All()
	cubes, err := ndatpgCubes(ctx, n, events, cfg)
	if err != nil {
		return nil, err
	}

	ts := &TestSet{}
	{
		eng, err := atpg.NewEngine(n)
		if err != nil {
			return nil, err
		}
		ts.Inputs = eng.InputIDs()
	}
	seen := make(map[string]bool)
	for i := range events {
		if !cubes[i].ok {
			continue
		}
		cube := cubes[i].cube
		// Emit N distinct completions of the cube, each event drawing
		// from its own deterministic stream. A completion already in
		// the set (shared with another rare event) still counts toward
		// this event's N — the vector excites it either way. Narrow
		// cubes may have fewer than N completions; emit what exists.
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i+1)*0x9e3779b9))
		eventSeen := make(map[string]bool, cfg.N)
		for attempt := 0; attempt < 8*cfg.N && len(eventSeen) < cfg.N; attempt++ {
			v := cube.Fill(rng)
			key := vecKey(v)
			if eventSeen[key] {
				continue
			}
			eventSeen[key] = true
			if !seen[key] {
				seen[key] = true
				ts.Add(v)
			}
		}
	}
	metersCtx(ctx).ndatpgVectors.Add(int64(ts.Len()))
	return ts, nil
}

type ndCube struct {
	cube atpg.Cube
	ok   bool
}

// ndatpgCubes runs the per-event ATPG (detection first, excitation
// fallback) over a worker pool, each worker owning one engine. Workers
// run under obs.Guard and check ctx per event.
func ndatpgCubes(ctx context.Context, n *netlist.Netlist, events []rare.Node, cfg NDATPGConfig) ([]ndCube, error) {
	out := make([]ndCube, len(events))
	workers := cfg.Workers
	if workers > len(events) {
		workers = len(events)
	}
	if workers < 1 {
		workers = 1
	}
	var runErr error
	var errOnce sync.Once
	setErr := func(err error) {
		if err != nil {
			errOnce.Do(func() { runErr = err })
		}
	}
	ctxDone := ctx.Done()
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			setErr(obs.Guard(stage.NDATPG, w, func() error {
				eng, err := atpg.NewEngine(n)
				if err != nil {
					return err
				}
				eng.SetRegistry(obs.FromContext(ctx))
				if cfg.MaxBacktracks > 0 {
					eng.MaxBacktracks = cfg.MaxBacktracks
				}
				for {
					select {
					case <-ctxDone:
						return ctx.Err()
					default:
					}
					if err := chaos.Hit(stage.NDATPG, w); err != nil {
						return err
					}
					i := int(cursor.Add(1)) - 1
					if i >= len(events) {
						return nil
					}
					node := events[i]
					cube, res := eng.Detect(node.ID, node.RareValue^1)
					if res != atpg.Success {
						// Redundant or aborted propagation: excitation alone
						// still drives the rare event, which is what trojan
						// triggering needs.
						cube, res = eng.Justify(node.ID, node.RareValue)
						if res != atpg.Success {
							continue
						}
					}
					out[i] = ndCube{cube: cube, ok: true}
				}
			}))
		}(w)
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	return out, nil
}

func vecKey(v []bool) string {
	b := make([]byte, (len(v)+7)/8)
	for i, bit := range v {
		if bit {
			b[i/8] |= 1 << uint(i%8)
		}
	}
	return string(b)
}
