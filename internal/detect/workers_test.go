package detect

import (
	"testing"
)

// sameTestSet reports whether two test sets carry identical vectors in
// identical order.
func sameTestSet(t *testing.T, label string, a, b *TestSet) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: %d vectors, want %d", label, b.Len(), a.Len())
	}
	for i := range a.Vectors {
		for j := range a.Vectors[i] {
			if a.Vectors[i][j] != b.Vectors[i][j] {
				t.Fatalf("%s: vector %d bit %d differs", label, i, j)
			}
		}
	}
}

// TestMEROWorkersIdentical checks the pool-scoring parallelism does not
// change the emitted compact test set.
func TestMEROWorkersIdentical(t *testing.T) {
	tgt, rs, _, _ := fixture(t, 21)
	cfg := MEROConfig{N: 4, RandomVectors: 600, Seed: 9, Workers: 1}
	ref, err := MERO(tgt.Golden, rs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		got, err := MERO(tgt.Golden, rs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sameTestSet(t, "mero", ref, got)
	}
}

// TestNDATPGWorkersIdentical checks the sharded ATPG runs emit the same
// vectors in the same order for any worker count.
func TestNDATPGWorkersIdentical(t *testing.T) {
	tgt, rs, _, _ := fixture(t, 22)
	cfg := NDATPGConfig{N: 3, Seed: 9, Workers: 1}
	ref, err := NDATPG(tgt.Golden, rs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		got, err := NDATPG(tgt.Golden, rs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sameTestSet(t, "ndatpg", ref, got)
	}
}

// TestEvaluateWorkersIdentical checks trigger/detection coverage and the
// first-hit indices are worker-count-invariant.
func TestEvaluateWorkersIdentical(t *testing.T) {
	tgt, _, _, _ := fixture(t, 23)
	ts := RandomTestSet(tgt.Golden, 2000, 5)
	ref, err := EvaluateConfig(tgt, ts, EvalConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := EvaluateConfig(tgt, ts, EvalConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("workers=%d: outcome %+v, want %+v", workers, got, ref)
		}
	}
}
