// Package equiv is a combinational equivalence checker built on the
// repository's own ATPG engine: it constructs a miter (XOR of matched
// outputs, OR-reduced to a single net) over two netlists and asks PODEM
// to justify miter=1. A Success cube is a counterexample; Untestable is
// a proof of equivalence — exact, not sampled.
//
// Uses in this repository:
//
//   - proving that the optimization passes in internal/opt preserve
//     functionality (exact, complements their randomized tests);
//   - proving the trojan stealth property formally: an HT-infected
//     netlist with the trigger forced idle is equivalent to its golden
//     netlist (Check with a constraint on the trigger net);
//   - disproving equivalence of the armed circuit (the returned
//     counterexample is an activating vector).
package equiv

import (
	"fmt"

	"cghti/internal/atpg"
	"cghti/internal/netlist"
	"cghti/internal/opt"
	"cghti/internal/sim"
)

// Verdict is the outcome of an equivalence check.
type Verdict int

const (
	// Equivalent: proven equal on all inputs (subject to constraints).
	Equivalent Verdict = iota
	// Different: a counterexample vector was found.
	Different
	// Unknown: the ATPG search aborted within its backtrack budget.
	Unknown
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Equivalent:
		return "equivalent"
	case Different:
		return "different"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Result carries the verdict and, for Different, a counterexample over
// the shared combinational inputs (golden CombInputs order).
type Result struct {
	Verdict Verdict
	// Counterexample is a full input vector on which some matched
	// output differs (nil unless Different).
	Counterexample []bool
	// DiffOutput names the first differing output (empty unless
	// Different).
	DiffOutput string
}

// Options configures the check.
type Options struct {
	// MaxBacktracks bounds the PODEM proof (default 200,000 — an
	// equivalence proof is a single hard query, so the budget is much
	// larger than per-rare-node justification).
	MaxBacktracks int
	// Constraints force named nets of netlist B to fixed values during
	// the check — e.g. {"ht0_trig4": 0} proves dormant equivalence of an
	// infected netlist. Nets are constrained by value injection in the
	// miter construction (the net's fanouts see the constant).
	Constraints map[string]uint8
	// MatchInputsByPosition pairs the two circuits' combinational inputs
	// by position instead of by name — for netlists whose tools renamed
	// nets (e.g. a Verilog round trip). Input counts must then match.
	MatchInputsByPosition bool
}

// Check proves or refutes equivalence of a and b. The two netlists must
// have identical primary-input name sets and identical PO counts
// (matched positionally, as Clone-derived netlists are) — DFFs are
// treated as free pseudo-inputs and must match by name too.
func Check(a, b *netlist.Netlist, opts Options) (Result, error) {
	miter, inputs, err := buildMiter(a, b, opts)
	if err != nil {
		return Result{}, err
	}
	// Structural reduction first (the front end of every real CEC
	// engine): shared logic between the two sides dedups away, per-PO
	// XOR(x, x) comparisons cancel to constants, and what remains is
	// only the real functional difference for PODEM to decide.
	miter, _, err = opt.Simplify(miter)
	if err != nil {
		return Result{}, err
	}
	out, ok := miter.Lookup(miterOutName)
	if !ok {
		return Result{}, fmt.Errorf("equiv: miter output lost in reduction")
	}
	switch miter.Gates[out].Type {
	case netlist.Const0:
		return Result{Verdict: Equivalent}, nil
	case netlist.Const1:
		// Constantly different; any vector is a counterexample. Fall
		// through to the simulation below with an empty cube.
	}
	eng, err := atpg.NewEngine(miter)
	if err != nil {
		return Result{}, err
	}
	if opts.MaxBacktracks > 0 {
		eng.MaxBacktracks = opts.MaxBacktracks
	} else {
		eng.MaxBacktracks = 200000
	}
	cube, res := eng.Justify(out, 1)
	switch res {
	case atpg.Untestable:
		return Result{Verdict: Equivalent}, nil
	case atpg.Abort:
		return Result{Verdict: Unknown}, nil
	}
	// Counterexample: fill the cube deterministically (X bits -> 0) and
	// identify the differing output by simulation.
	vec := make([]bool, len(inputs))
	in := map[netlist.GateID]uint8{}
	for i, id := range eng.InputIDs() {
		v := cube.Get(i)
		bit := v == sim.V3One
		in[id] = 0
		if bit {
			in[id] = 1
		}
		_ = id
		vec[i] = bit
	}
	vals, err := sim.Eval(miter, in)
	if err != nil {
		return Result{}, err
	}
	diff := ""
	for i := range a.POs {
		x, ok := miter.Lookup(fmt.Sprintf("xor_po_%d", i))
		if !ok {
			continue // comparison reduced away (that PO pair is equal)
		}
		if vals[x] == 1 {
			diff = a.Gates[a.POs[i]].Name
			break
		}
	}
	return Result{Verdict: Different, Counterexample: vec, DiffOutput: diff}, nil
}

const miterOutName = "miter_out"

// buildMiter constructs a single netlist containing both circuits
// (gates prefixed A_/B_), shared primary inputs, per-PO XORs and an OR
// reduction. DFFs are lifted to ordinary shared inputs (full-scan
// equivalence). Constrained nets of B are replaced by constants.
func buildMiter(a, b *netlist.Netlist, opts Options) (*netlist.Netlist, []string, error) {
	constraints := opts.Constraints
	if len(a.POs) != len(b.POs) {
		return nil, nil, fmt.Errorf("equiv: PO counts differ (%d vs %d)", len(a.POs), len(b.POs))
	}
	m := netlist.New("miter_" + a.Name)

	// Shared inputs. By name (default): union of both circuits'
	// combinational inputs, so one-sided extra state (e.g. a time-bomb
	// counter) becomes a free input. By position: pairwise zip, for
	// tool-renamed netlists.
	var inputNames []string
	inputKey := func(src *netlist.Netlist, pos int, name string) string {
		if opts.MatchInputsByPosition {
			return fmt.Sprintf("pos%d", pos)
		}
		return name
	}
	if opts.MatchInputsByPosition && len(a.CombInputs()) != len(b.CombInputs()) {
		return nil, nil, fmt.Errorf("equiv: input counts differ (%d vs %d) under positional matching",
			len(a.CombInputs()), len(b.CombInputs()))
	}
	seen := map[string]bool{}
	for _, src := range []*netlist.Netlist{a, b} {
		for pos, id := range src.CombInputs() {
			key := inputKey(src, pos, src.Gates[id].Name)
			if !seen[key] {
				seen[key] = true
				inputNames = append(inputNames, key)
			}
		}
	}
	for _, name := range inputNames {
		if _, err := m.AddGate("in_"+name, netlist.Input); err != nil {
			return nil, nil, err
		}
	}

	// inputPosOf maps a gate ID to its CombInputs position per side.
	posOf := map[*netlist.Netlist]map[netlist.GateID]int{}
	for _, src := range []*netlist.Netlist{a, b} {
		mp := map[netlist.GateID]int{}
		for pos, id := range src.CombInputs() {
			mp[id] = pos
		}
		posOf[src] = mp
	}

	copyCircuit := func(src *netlist.Netlist, prefix string, constrained map[string]uint8) error {
		topo, err := src.TopoOrder()
		if err != nil {
			return err
		}
		// Declare gates.
		for _, id := range topo {
			g := &src.Gates[id]
			switch g.Type {
			case netlist.Input, netlist.DFF:
				continue // mapped to shared inputs
			}
			if v, ok := constrained[g.Name]; ok {
				t := netlist.Const0
				if v == 1 {
					t = netlist.Const1
				}
				if _, err := m.AddGate(prefix+g.Name, t); err != nil {
					return err
				}
				continue
			}
			if _, err := m.AddGate(prefix+g.Name, g.Type); err != nil {
				return err
			}
		}
		// Connect.
		resolve := func(id netlist.GateID) netlist.GateID {
			g := &src.Gates[id]
			if g.Type == netlist.Input || g.Type == netlist.DFF {
				return m.MustLookup("in_" + inputKey(src, posOf[src][id], g.Name))
			}
			return m.MustLookup(prefix + g.Name)
		}
		for _, id := range topo {
			g := &src.Gates[id]
			switch g.Type {
			case netlist.Input, netlist.DFF:
				continue
			}
			if _, ok := constrained[g.Name]; ok {
				continue // constants take no fanin
			}
			dst := m.MustLookup(prefix + g.Name)
			for _, f := range g.Fanin {
				m.Connect(resolve(f), dst)
			}
		}
		return nil
	}
	if err := copyCircuit(a, "A_", nil); err != nil {
		return nil, nil, err
	}
	if err := copyCircuit(b, "B_", constraints); err != nil {
		return nil, nil, err
	}

	// Per-PO XORs and the OR reduction.
	resolvePO := func(src *netlist.Netlist, prefix string, id netlist.GateID) netlist.GateID {
		g := &src.Gates[id]
		if g.Type == netlist.Input || g.Type == netlist.DFF {
			return m.MustLookup("in_" + inputKey(src, posOf[src][id], g.Name))
		}
		return m.MustLookup(prefix + g.Name)
	}
	var xors []netlist.GateID
	for i := range a.POs {
		x, err := m.AddGate(fmt.Sprintf("xor_po_%d", i), netlist.Xor)
		if err != nil {
			return nil, nil, err
		}
		m.Connect(resolvePO(a, "A_", a.POs[i]), x)
		m.Connect(resolvePO(b, "B_", b.POs[i]), x)
		xors = append(xors, x)
	}
	out, err := m.AddGate(miterOutName, netlist.Or)
	if err != nil {
		return nil, nil, err
	}
	if len(xors) == 0 {
		return nil, nil, fmt.Errorf("equiv: no outputs to compare")
	}
	for _, x := range xors {
		m.Connect(x, out)
	}
	m.MarkPO(out)
	if err := m.Levelize(); err != nil {
		return nil, nil, err
	}
	return m, inputNames, nil
}
