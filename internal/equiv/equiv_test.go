package equiv

import (
	"testing"

	"cghti/internal/bench"
	"cghti/internal/compat"
	"cghti/internal/gen"
	"cghti/internal/netlist"
	"cghti/internal/opt"
	"cghti/internal/rare"
	"cghti/internal/sim"
	"cghti/internal/trojan"
)

func TestIdenticalCircuitsEquivalent(t *testing.T) {
	a := gen.C17()
	b := a.Clone()
	res, err := Check(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent {
		t.Fatalf("verdict = %v, want equivalent", res.Verdict)
	}
}

func TestFunctionallyEquivalentDifferentStructure(t *testing.T) {
	// De Morgan: NAND(a,b) == OR(NOT a, NOT b).
	a, err := bench.ParseString(`
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
`, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bench.ParseString(`
INPUT(a)
INPUT(b)
OUTPUT(y)
na = NOT(a)
nb = NOT(b)
y = OR(na, nb)
`, "b")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent {
		t.Fatalf("De Morgan pair judged %v", res.Verdict)
	}
}

func TestDifferentCircuitsCounterexample(t *testing.T) {
	a, _ := bench.ParseString("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "a")
	b, _ := bench.ParseString("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n", "b")
	res, err := Check(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Different {
		t.Fatalf("verdict = %v, want different", res.Verdict)
	}
	if res.DiffOutput != "y" {
		t.Fatalf("diff output = %q, want y", res.DiffOutput)
	}
	// Verify the counterexample by direct simulation.
	in := map[netlist.GateID]uint8{}
	for i, id := range a.CombInputs() {
		if res.Counterexample[i] {
			in[id] = 1
		} else {
			in[id] = 0
		}
	}
	va, _ := sim.Eval(a, in)
	vb, _ := sim.Eval(b, in)
	if va[a.POs[0]] == vb[b.POs[0]] {
		t.Fatal("counterexample does not distinguish the circuits")
	}
}

// TestOptPassesProvedEquivalent upgrades the opt package's sampled
// equivalence tests to proofs.
func TestOptPassesProvedEquivalent(t *testing.T) {
	orig := gen.MustBenchmark("c432")
	for _, pass := range []struct {
		name string
		run  func(*netlist.Netlist) (*netlist.Netlist, opt.Result, error)
	}{
		{"sweep", func(n *netlist.Netlist) (*netlist.Netlist, opt.Result, error) { return opt.Sweep(n.Clone()) }},
		{"constprop", opt.ConstProp},
		{"dedup", opt.Dedup},
	} {
		out, _, err := pass.run(orig)
		if err != nil {
			t.Fatalf("%s: %v", pass.name, err)
		}
		res, err := Check(orig, out, Options{})
		if err != nil {
			t.Fatalf("%s: %v", pass.name, err)
		}
		if res.Verdict != Equivalent {
			t.Fatalf("%s: verdict %v (counterexample %v at %s)",
				pass.name, res.Verdict, res.Counterexample, res.DiffOutput)
		}
	}
}

// trojanFixture builds golden + infected circuits.
func trojanFixture(t *testing.T) (*netlist.Netlist, *netlist.Netlist, *trojan.Instance) {
	t.Helper()
	n := gen.MustBenchmark("c432")
	rs, err := rare.Extract(n, rare.Config{Vectors: 2000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := compat.Build(n, rs, compat.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cliques := g.FindCliques(compat.MineConfig{MinSize: 6, MaxCliques: 5, Seed: 2})
	if len(cliques) == 0 {
		t.Skip("no clique")
	}
	infected, inst, err := trojan.InsertInstance(n, cliques[0].Nodes(g), cliques[0].Cube, 0, trojan.InsertSpec{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return n, infected, inst
}

// TestTrojanCounterexampleIsActivation: the equivalence checker used as
// a trojan detector — the counterexample it returns is an activating
// vector for the trigger.
func TestTrojanCounterexampleIsActivation(t *testing.T) {
	golden, infected, inst := trojanFixture(t)
	res, err := Check(golden, infected, Options{MaxBacktracks: 1 << 21})
	if err != nil {
		t.Fatal(err)
	}
	switch res.Verdict {
	case Different:
		in := map[netlist.GateID]uint8{}
		for i, id := range golden.CombInputs() {
			if res.Counterexample[i] {
				in[id] = 1
			} else {
				in[id] = 0
			}
		}
		iv, err := sim.Eval(infected, in)
		if err != nil {
			t.Fatal(err)
		}
		if iv[infected.MustLookup(inst.TriggerOut)] != 1 {
			t.Fatal("counterexample does not fire the trigger")
		}
	case Unknown:
		t.Skip("proof aborted within budget — acceptable for a deep trigger")
	default:
		t.Fatalf("infected judged %v", res.Verdict)
	}
}

// TestDormantEquivalenceProof: with the trigger net constrained to 0,
// the infected netlist is PROVEN equivalent to the golden one — the
// stealth property as a theorem instead of a sampling argument.
func TestDormantEquivalenceProof(t *testing.T) {
	golden, infected, inst := trojanFixture(t)
	res, err := Check(golden, infected, Options{
		Constraints: map[string]uint8{inst.TriggerOut: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent {
		t.Fatalf("dormant trojan judged %v (diff at %s)", res.Verdict, res.DiffOutput)
	}
}

func TestPOCountMismatch(t *testing.T) {
	a, _ := bench.ParseString("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "a")
	b, _ := bench.ParseString("INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = NOT(a)\nz = BUFF(a)\n", "b")
	if _, err := Check(a, b, Options{}); err == nil {
		t.Fatal("PO mismatch accepted")
	}
}

func TestVerdictString(t *testing.T) {
	if Equivalent.String() != "equivalent" || Different.String() != "different" || Unknown.String() != "unknown" {
		t.Fatal("Verdict.String broken")
	}
}

func TestSequentialFullScanEquivalence(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(q)
q = DFF(d)
d = XOR(a, q)
`
	a, err := bench.ParseString(src, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bench.ParseString(src, "b")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent {
		t.Fatalf("identical sequential circuits judged %v", res.Verdict)
	}
}
