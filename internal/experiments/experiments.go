// Package experiments regenerates every figure and table of the paper's
// evaluation section (Section IV). Each experiment has a generator that
// returns structured data (consumed by the root benchmark suite and by
// tests) and a printer that renders the same rows/series the paper
// reports (consumed by cmd/htbench).
//
// Two scales are supported: the default "quick" scale finishes in
// minutes on a laptop; Options.Full switches to the paper's parameters
// (10,000 rare-node vectors, 100 instances per circuit, MERO N=1000,
// 100k random detection patterns).
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"cghti/internal/artifact"
	"cghti/internal/compat"
	"cghti/internal/gen"
	"cghti/internal/netlist"
	"cghti/internal/rare"
)

// Options selects experiment scale and scope.
type Options struct {
	// Circuits to run on; nil = the paper's eight.
	Circuits []string
	// Full switches to paper-scale parameters.
	Full bool
	// Seed drives every random choice.
	Seed int64
	// Workers is the simulation/ATPG goroutine budget passed through to
	// every stage (1 = serial, 0 = GOMAXPROCS). The tables are identical
	// for any value; only the wall-clock changes.
	Workers int
	// Cache, if non-nil, is the content-addressed artifact store the
	// experiment generators route rare extraction, graph construction,
	// and Generate runs through, so sweeps that revisit a circuit with
	// identical upstream parameters (Table 2/3/4/5 all re-extract the
	// same rare sets) reuse the work. Results are identical either way.
	Cache *artifact.Cache
	// Out receives the printed table (nil = suppress printing).
	Out io.Writer
}

// extractRare is the cache-routed rare extraction every experiment
// generator shares.
func (o Options) extractRare(n *netlist.Netlist, cfg rare.Config) (*rare.Set, error) {
	return rare.ExtractCached(context.Background(), o.Cache, n, cfg)
}

// buildGraph is the cache-routed compatibility-graph construction every
// experiment generator shares.
func (o Options) buildGraph(n *netlist.Netlist, rs *rare.Set, cfg compat.BuildConfig) (*compat.Graph, error) {
	return compat.BuildCached(context.Background(), o.Cache, n, rs, cfg)
}

func (o Options) withDefaults() Options {
	if len(o.Circuits) == 0 {
		o.Circuits = gen.PaperCircuits()
	}
	return o
}

// scale returns quick when !Full, else full.
func (o Options) scale(quick, full int) int {
	if o.Full {
		return full
	}
	return quick
}

// loadCircuit resolves a circuit name through the generator catalog.
func loadCircuit(name string) (*netlist.Netlist, error) {
	return gen.Benchmark(name)
}

// capRareSet keeps only the rarest max nodes (preserving the RN1/RN0
// split). Detection schemes and cube generation on the biggest
// sequential circuits are capped this way at quick scale; the paper's
// own tooling applies the same kind of cap through its rareness
// threshold.
func capRareSet(rs *rare.Set, max int) *rare.Set {
	if max <= 0 || rs.Len() <= max {
		return rs
	}
	all := rs.All()
	sort.Slice(all, func(a, b int) bool { return all[a].Prob < all[b].Prob })
	all = all[:max]
	capped := &rare.Set{
		Vectors:    rs.Vectors,
		Threshold:  rs.Threshold,
		TotalNodes: rs.TotalNodes,
		Ones:       rs.Ones,
	}
	for _, n := range all {
		if n.RareValue == 1 {
			capped.RN1 = append(capped.RN1, n)
		} else {
			capped.RN0 = append(capped.RN0, n)
		}
	}
	return capped
}

// tabw builds a tabwriter over the options' output (or a discard writer).
func tabw(o Options) (*tabwriter.Writer, bool) {
	if o.Out == nil {
		return nil, false
	}
	return tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0), true
}

func header(o Options, format string, args ...any) {
	if o.Out != nil {
		fmt.Fprintf(o.Out, format, args...)
	}
}
