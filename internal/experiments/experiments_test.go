package experiments

import (
	"strings"
	"testing"

	"cghti/internal/netlist"
	"cghti/internal/rare"
)

// quick limits experiments tests to two small circuits.
func quick(seed int64) Options {
	return Options{Circuits: []string{"c432", "s298"}, Seed: seed}
}

func TestFig2(t *testing.T) {
	res, err := Fig2(quick(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Thresholds) != 5 {
		t.Fatalf("shape: %d rows, %d thresholds", len(res.Rows), len(res.Thresholds))
	}
	for _, row := range res.Rows {
		if len(row.Counts) != 5 {
			t.Fatalf("%s has %d counts", row.Circuit, len(row.Counts))
		}
		// Monotone non-decreasing with threshold (Figure 2's trend).
		for i := 1; i < len(row.Counts); i++ {
			if row.Counts[i] < row.Counts[i-1] {
				t.Fatalf("%s: counts not monotone: %v", row.Circuit, row.Counts)
			}
		}
		if row.TotalNodes <= 0 {
			t.Fatalf("%s: no nodes", row.Circuit)
		}
	}
	// Average rare share grows with threshold.
	for i := 1; i < len(res.AvgPercent); i++ {
		if res.AvgPercent[i] < res.AvgPercent[i-1] {
			t.Fatalf("avg%% not monotone: %v", res.AvgPercent)
		}
	}
}

func TestFig2Print(t *testing.T) {
	var sb strings.Builder
	o := quick(1)
	o.Out = &sb
	if _, err := Fig2(o); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 2", "c432", "θ=20%", "avg % rare"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig3(t *testing.T) {
	res, err := Fig3(quick(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Counts) != len(res.VectorCounts) {
			t.Fatalf("%s: %d counts for %d budgets", row.Circuit, len(row.Counts), len(res.VectorCounts))
		}
		// The paper's convergence claim: the curve is flat at the tail.
		if !row.Converged(0.10) {
			t.Errorf("%s: not converged: %v", row.Circuit, row.Counts)
		}
	}
}

func TestTable2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("table2 in -short mode")
	}
	var sb strings.Builder
	// Use circuits with enough combinational inputs that stealth is
	// physically possible (s298's 17 inputs make every trigger condition
	// enumerable by 5000 random vectors).
	o := Options{Circuits: []string{"c432", "c880"}, Seed: 3, Out: &sb}
	res, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	// Proposed netlists exist for every circuit.
	for _, c := range res.Circuits {
		if res.Generated[FamilyProposed][c] == 0 {
			t.Errorf("no proposed instances for %s", c)
		}
		if res.Generated[FamilyRandom][c] == 0 {
			t.Errorf("no random instances for %s", c)
		}
	}
	// The headline shape: the proposed family evades random-pattern
	// testing at least as well as the easily-triggered Trust-Hub family.
	propTC := res.CoveragePercent(FamilyProposed, SchemeRandom, false)
	thTC := res.CoveragePercent(FamilyTrustHub, SchemeRandom, false)
	if res.CoveragePercent(FamilyTrustHub, SchemeRandom, false) > 0 && propTC > thTC {
		t.Errorf("proposed TC %.1f%% not below Trust-Hub TC %.1f%%", propTC, thTC)
	}
	// DC never exceeds TC in any cell.
	for _, f := range res.Families {
		for _, s := range res.Schemes {
			for _, c := range res.Circuits {
				cov := res.Cov[f][s][c]
				if cov.Detected > cov.Triggered {
					t.Errorf("%s/%s/%s: DC %d > TC %d", f, s, c, cov.Detected, cov.Triggered)
				}
			}
		}
	}
	if !strings.Contains(sb.String(), "Table II") {
		t.Error("printout missing header")
	}
}

func TestTable3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("table3 in -short mode")
	}
	// Quick-scale rows finish in single-digit milliseconds, so one noisy
	// scheduler preemption can flip the speedup comparison. Measure up
	// to three times and keep each row's best observation; a real
	// regression fails all attempts.
	const attempts = 3
	best := map[string]float64{}
	var res *Table3Result
	for a := 0; a < attempts; a++ {
		var err error
		res, err = Table3(quick(4))
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for _, row := range res.Rows {
			if s := row.SpeedupVsRandom(); s > best[row.Circuit] {
				best[row.Circuit] = s
			}
			if best[row.Circuit] < 1 {
				ok = false
			}
		}
		if ok {
			break
		}
	}
	for _, row := range res.Rows {
		if row.Instances == 0 {
			t.Errorf("%s: proposed framework emitted no instances", row.Circuit)
		}
		if row.ProposedTime <= 0 || row.RandomTime <= 0 {
			t.Errorf("%s: missing timings: %+v", row.Circuit, row)
		}
		// The paper's core claim — proposed is much faster per instance
		// than the random baseline (which mostly burns its validation
		// budget).
		if s := best[row.Circuit]; s < 1 {
			t.Errorf("%s: proposed not faster than random baseline (%.2fx)", row.Circuit, s)
		}
	}
}

func TestTable4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("table4 in -short mode")
	}
	res, err := Table4(quick(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Subgraphs == 0 {
			t.Errorf("%s: no complete subgraphs", row.Circuit)
		}
		if row.Vertices == 0 || row.RareNodes < row.Vertices {
			t.Errorf("%s: vertex bookkeeping off: %+v", row.Circuit, row)
		}
		if row.GenerateTime <= 0 {
			t.Errorf("%s: no generation time", row.Circuit)
		}
		if row.MaxSize < row.MinSize {
			t.Errorf("%s: size range inverted", row.Circuit)
		}
	}
}

func TestTable5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("table5 in -short mode")
	}
	res, err := Table5(quick(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.OverheadPct <= 0 || row.OverheadPct > 60 {
			t.Errorf("%s: overhead %.2f%% implausible", row.Circuit, row.OverheadPct)
		}
		if row.TriggerNodes < 2 {
			t.Errorf("%s: trigger nodes = %d", row.Circuit, row.TriggerNodes)
		}
	}
	// Table V trend: the bigger circuit has the smaller relative
	// overhead when trigger sizes are comparable. Only assert when the
	// trigger is not dramatically larger on the bigger circuit.
	small, big := res.Rows[0], res.Rows[1]
	if small.Circuit != "c432" {
		small, big = big, small
	}
	if big.TriggerNodes <= 2*small.TriggerNodes && big.OverheadPct > 2*small.OverheadPct {
		t.Errorf("overhead did not shrink with circuit size: %+v vs %+v", small, big)
	}
}

func TestCapRareSet(t *testing.T) {
	rs := &rare.Set{}
	for i := 0; i < 10; i++ {
		node := rare.Node{ID: netlist.GateID(i), RareValue: uint8(i % 2), Prob: float64(i) / 100}
		if node.RareValue == 1 {
			rs.RN1 = append(rs.RN1, node)
		} else {
			rs.RN0 = append(rs.RN0, node)
		}
	}
	capped := capRareSet(rs, 4)
	if capped.Len() != 4 {
		t.Fatalf("capped to %d, want 4", capped.Len())
	}
	// Keeps the rarest (lowest prob) nodes.
	for _, n := range capped.All() {
		if n.Prob > 0.03 {
			t.Fatalf("kept node with prob %v", n.Prob)
		}
	}
	// No-op cases.
	if got := capRareSet(rs, 0); got != rs {
		t.Fatal("cap 0 should be a no-op")
	}
	if got := capRareSet(rs, 100); got != rs {
		t.Fatal("cap above size should be a no-op")
	}
}
