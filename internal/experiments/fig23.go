package experiments

import (
	"fmt"
	"time"

	"cghti/internal/rare"
)

// Fig2Row is one circuit's series in Figure 2 (#rare nodes vs θ_RN).
type Fig2Row struct {
	Circuit    string
	TotalNodes int
	// Counts[i] is the rare-node count at Thresholds[i].
	Counts []int
}

// Fig2Result is the Figure 2 dataset.
type Fig2Result struct {
	Thresholds []float64
	Rows       []Fig2Row
	// AvgPercent[i] is the average share of nodes marked rare at
	// Thresholds[i] (the paper quotes 6.35/11.63/16.88/24.19/38.12%).
	AvgPercent []float64
	Elapsed    time.Duration
}

// Fig2 sweeps the rareness threshold θ_RN ∈ {5,10,15,20,30}% and counts
// rare nodes per circuit. One simulation per circuit is shared across
// thresholds (only the cutoff changes), exactly as the figure's data
// demands.
func Fig2(o Options) (*Fig2Result, error) {
	o = o.withDefaults()
	start := time.Now()
	res := &Fig2Result{Thresholds: []float64{0.05, 0.10, 0.15, 0.20, 0.30}}
	vectors := o.scale(2000, rare.DefaultVectors)

	for _, name := range o.Circuits {
		n, err := loadCircuit(name)
		if err != nil {
			return nil, err
		}
		// Extract once at the largest threshold; re-threshold downward.
		base, err := o.extractRare(n, rare.Config{Vectors: vectors, Threshold: 0.30, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		row := Fig2Row{Circuit: name, TotalNodes: base.TotalNodes}
		for _, th := range res.Thresholds {
			s := rare.Rethreshold(n, base, th)
			row.Counts = append(row.Counts, s.Len())
		}
		res.Rows = append(res.Rows, row)
	}
	res.AvgPercent = make([]float64, len(res.Thresholds))
	for i := range res.Thresholds {
		sum := 0.0
		for _, row := range res.Rows {
			sum += 100 * float64(row.Counts[i]) / float64(row.TotalNodes)
		}
		res.AvgPercent[i] = sum / float64(len(res.Rows))
	}
	res.Elapsed = time.Since(start)

	if w, ok := tabw(o); ok {
		header(o, "Figure 2: number of rare nodes vs rareness threshold (|V|=%d)\n", vectors)
		fmt.Fprint(w, "circuit\tnodes")
		for _, th := range res.Thresholds {
			fmt.Fprintf(w, "\tθ=%.0f%%", th*100)
		}
		fmt.Fprintln(w)
		for _, row := range res.Rows {
			fmt.Fprintf(w, "%s\t%d", row.Circuit, row.TotalNodes)
			for _, c := range row.Counts {
				fmt.Fprintf(w, "\t%d", c)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprint(w, "avg % rare\t")
		for _, p := range res.AvgPercent {
			fmt.Fprintf(w, "\t%.2f%%", p)
		}
		fmt.Fprintln(w)
		w.Flush()
	}
	return res, nil
}

// Fig3Row is one circuit's series in Figure 3 (#rare nodes vs |V|).
type Fig3Row struct {
	Circuit string
	Counts  []int
}

// Fig3Result is the Figure 3 dataset.
type Fig3Result struct {
	VectorCounts []int
	Rows         []Fig3Row
	Elapsed      time.Duration
}

// Fig3 sweeps the random vector budget at θ_RN = 20% and shows the
// rare-node count stabilizing (the paper picks |V| = 10,000 because the
// curve is flat from there on).
func Fig3(o Options) (*Fig3Result, error) {
	o = o.withDefaults()
	start := time.Now()
	res := &Fig3Result{}
	if o.Full {
		res.VectorCounts = []int{1000, 2000, 5000, 10000, 15000, 20000}
	} else {
		res.VectorCounts = []int{250, 500, 1000, 2000, 4000, 8000}
	}
	for _, name := range o.Circuits {
		n, err := loadCircuit(name)
		if err != nil {
			return nil, err
		}
		row := Fig3Row{Circuit: name}
		for _, v := range res.VectorCounts {
			s, err := o.extractRare(n, rare.Config{Vectors: v, Threshold: rare.DefaultThreshold, Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			row.Counts = append(row.Counts, s.Len())
		}
		res.Rows = append(res.Rows, row)
	}
	res.Elapsed = time.Since(start)

	if w, ok := tabw(o); ok {
		header(o, "Figure 3: number of rare nodes vs |V| (θ_RN=20%%)\n")
		fmt.Fprint(w, "circuit")
		for _, v := range res.VectorCounts {
			fmt.Fprintf(w, "\t|V|=%d", v)
		}
		fmt.Fprintln(w)
		for _, row := range res.Rows {
			fmt.Fprint(w, row.Circuit)
			for _, c := range row.Counts {
				fmt.Fprintf(w, "\t%d", c)
			}
			fmt.Fprintln(w)
		}
		w.Flush()
	}
	return res, nil
}

// Converged reports whether a Figure 3 row's final two samples agree
// within tol (fraction); used by tests to assert the paper's
// "stable from 10k vectors" observation.
func (r Fig3Row) Converged(tol float64) bool {
	k := len(r.Counts)
	if k < 2 {
		return false
	}
	a, b := float64(r.Counts[k-2]), float64(r.Counts[k-1])
	if a == 0 && b == 0 {
		return true
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	max := a
	if b > max {
		max = b
	}
	return diff/max <= tol
}
