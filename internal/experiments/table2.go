package experiments

import (
	"errors"
	"fmt"
	"time"

	"cghti/internal/baselines"
	"cghti/internal/compat"
	"cghti/internal/detect"
	"cghti/internal/netlist"
	"cghti/internal/rare"
	"cghti/internal/trojan"
)

// Family names an HT insertion framework row group of Table II.
type Family string

// The four benchmark families of Table II.
const (
	FamilyRandom   Family = "Random"
	FamilyRL       Family = "RL"
	FamilyTrustHub Family = "Trust-Hub"
	FamilyProposed Family = "Proposed"
)

// Scheme names a detection scheme column group of Table II.
type Scheme string

// The three detection schemes of Table II.
const (
	SchemeRandom Scheme = "Random"
	SchemeMERO   Scheme = "MERO"
	SchemeNDATPG Scheme = "ND-ATPG"
)

// Table2Result is the detection-analysis dataset.
type Table2Result struct {
	Circuits []string
	Families []Family
	Schemes  []Scheme
	// Cov[family][scheme][circuit] carries both trigger and detection
	// counts for that cell.
	Cov map[Family]map[Scheme]map[string]detect.Coverage
	// Generated[family][circuit] counts the infected netlists built.
	Generated map[Family]map[string]int
	Elapsed   time.Duration
}

// Coverage returns the aggregated percentage across circuits.
func (r *Table2Result) CoveragePercent(f Family, s Scheme, detected bool) float64 {
	var total, hit int
	for _, c := range r.Circuits {
		cov := r.Cov[f][s][c]
		total += cov.Netlists
		if detected {
			hit += cov.Detected
		} else {
			hit += cov.Triggered
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(hit) / float64(total)
}

// Table2 generates K infected netlists per circuit per insertion family
// and evaluates all of them against the three detection schemes.
func Table2(o Options) (*Table2Result, error) {
	o = o.withDefaults()
	start := time.Now()
	res := &Table2Result{
		Circuits:  o.Circuits,
		Families:  []Family{FamilyRandom, FamilyRL, FamilyTrustHub, FamilyProposed},
		Schemes:   []Scheme{SchemeRandom, SchemeMERO, SchemeNDATPG},
		Cov:       map[Family]map[Scheme]map[string]detect.Coverage{},
		Generated: map[Family]map[string]int{},
	}
	for _, f := range res.Families {
		res.Cov[f] = map[Scheme]map[string]detect.Coverage{}
		res.Generated[f] = map[string]int{}
		for _, s := range res.Schemes {
			res.Cov[f][s] = map[string]detect.Coverage{}
		}
	}

	instances := o.scale(5, 100)
	rareVectors := o.scale(2000, rare.DefaultVectors)
	rareCap := o.scale(500, 1500)
	randomPatterns := o.scale(5000, 100000)
	meroN := o.scale(5, 1000)
	meroPool := o.scale(400, 100000)
	ndN := o.scale(2, 5)
	proposedQ := o.scale(8, 25)
	maxBT := o.scale(600, 4000)

	for _, name := range o.Circuits {
		n, err := loadCircuit(name)
		if err != nil {
			return nil, err
		}
		rs, err := o.extractRare(n, rare.Config{Vectors: rareVectors, Threshold: rare.DefaultThreshold, Seed: o.Seed, Workers: o.Workers})
		if err != nil {
			return nil, err
		}
		capped := capRareSet(rs, rareCap)

		// Build the three detection test sets once per circuit.
		randomTS := detect.RandomTestSet(n, randomPatterns, o.Seed+1)
		meroTS, err := detect.MERO(n, capped, detect.MEROConfig{N: meroN, RandomVectors: meroPool, Seed: o.Seed + 2, Workers: o.Workers})
		if err != nil {
			return nil, err
		}
		ndTS, err := detect.NDATPG(n, capped, detect.NDATPGConfig{N: ndN, MaxBacktracks: maxBT, Seed: o.Seed + 3, Workers: o.Workers})
		if err != nil {
			return nil, err
		}
		schemeTS := map[Scheme]*detect.TestSet{
			SchemeRandom: randomTS,
			SchemeMERO:   meroTS,
			SchemeNDATPG: ndTS,
		}

		targets, err := buildFamilies(o, n, rs, capped, instances, proposedQ, maxBT)
		if err != nil {
			return nil, err
		}
		for fam, list := range targets {
			res.Generated[fam][name] = len(list)
			for _, s := range res.Schemes {
				cov := detect.Coverage{}
				for _, tgt := range list {
					out, err := detect.EvaluateConfig(tgt, schemeTS[s], detect.EvalConfig{Workers: o.Workers})
					if err != nil {
						return nil, err
					}
					cov.Accumulate(out)
				}
				res.Cov[fam][s][name] = cov
			}
		}
	}
	res.Elapsed = time.Since(start)
	printTable2(o, res)
	return res, nil
}

// buildFamilies produces the per-family infected netlists for one
// circuit.
func buildFamilies(o Options, n *netlist.Netlist, rs, capped *rare.Set, instances, proposedQ, maxBT int) (map[Family][]detect.Target, error) {
	seed, workers := o.Seed, o.Workers
	out := map[Family][]detect.Target{}

	mkTarget := func(infected *netlist.Netlist, trigName string, activation uint8) (detect.Target, error) {
		trig, ok := infected.Lookup(trigName)
		if !ok {
			return detect.Target{}, fmt.Errorf("experiments: trigger net %q not found in %s", trigName, infected.Name)
		}
		return detect.Target{
			Golden:     n,
			Infected:   infected,
			TriggerOut: trig,
			Activation: activation,
		}, nil
	}

	// Random family: q ∈ [10,20], inserted without validation (the bulk
	// random-benchmark recipe).
	for i := 0; i < instances; i++ {
		q := 10 + int(seed+int64(i))%11
		if q > rs.Len() {
			break
		}
		r, err := baselines.RandomInsertNoValidation(n, rs, baselines.RandomConfig{Q: q, Seed: seed + int64(i)})
		if err != nil {
			return nil, err
		}
		tgt, err := mkTarget(r.Infected, r.TriggerOut, 1)
		if err != nil {
			return nil, err
		}
		out[FamilyRandom] = append(out[FamilyRandom], tgt)
	}

	// RL family: q=5 over the rarest candidates, small training budget.
	for i := 0; i < instances; i++ {
		r, err := baselines.RLInsert(n, rs, baselines.RLConfig{
			Q: 5, Episodes: 30, RewardVectors: 1024, Candidates: 48, Seed: seed + 100 + int64(i),
		})
		if err != nil {
			if isValidation(err) {
				continue
			}
			return nil, err
		}
		tgt, err := mkTarget(r.Infected, r.TriggerOut, 1)
		if err != nil {
			return nil, err
		}
		out[FamilyRL] = append(out[FamilyRL], tgt)
	}

	// Trust-Hub family: q ∈ [2,8] mid-probability comparators.
	for i := 0; i < instances; i++ {
		q := 2 + int(seed+int64(i))%7
		r, err := baselines.TrustHubLike(n, rs, baselines.TrustHubConfig{Q: q, Seed: seed + 200 + int64(i)})
		if err != nil {
			if isValidation(err) {
				continue
			}
			return nil, err
		}
		tgt, err := mkTarget(r.Infected, r.TriggerOut, 1)
		if err != nil {
			return nil, err
		}
		out[FamilyTrustHub] = append(out[FamilyTrustHub], tgt)
	}

	// Proposed family: compatibility-graph trojans with large q.
	g, err := o.buildGraph(n, capped, compat.BuildConfig{MaxBacktracks: maxBT, Workers: workers})
	if err != nil {
		return nil, err
	}
	cliques := g.FindCliques(compat.MineConfig{MinSize: proposedQ, MaxCliques: 4 * instances, Seed: seed + 300})
	if len(cliques) == 0 {
		// Fall back to the largest cliques available rather than none.
		cliques = g.FindCliques(compat.MineConfig{MinSize: 2, MaxCliques: 4 * instances, Seed: seed + 301})
	}
	g.SortByStealth(cliques)
	if len(cliques) > instances {
		cliques = cliques[:instances]
	}
	for i, c := range cliques {
		infected, inst, err := trojan.InsertInstance(n, c.Nodes(g), c.Cube, i, trojan.InsertSpec{Seed: seed + 400})
		if err != nil {
			return nil, err
		}
		tgt, err := mkTarget(infected, inst.TriggerOut, 1)
		if err != nil {
			return nil, err
		}
		out[FamilyProposed] = append(out[FamilyProposed], tgt)
	}
	return out, nil
}

func isValidation(err error) bool {
	var ve *baselines.ValidationError
	return errors.As(err, &ve)
}

func printTable2(o Options, res *Table2Result) {
	w, ok := tabw(o)
	if !ok {
		return
	}
	header(o, "Table II: detection analysis (TC/DC %% of generated netlists)\n")
	fmt.Fprint(w, "family\tscheme\tmeasure")
	for _, c := range res.Circuits {
		fmt.Fprintf(w, "\t%s", c)
	}
	fmt.Fprintln(w, "\toverall%")
	for _, f := range res.Families {
		for _, s := range res.Schemes {
			for _, detected := range []bool{false, true} {
				label := "TC"
				if detected {
					label = "DC"
				}
				fmt.Fprintf(w, "%s\t%s\t%s", f, s, label)
				for _, c := range res.Circuits {
					cov := res.Cov[f][s][c]
					if detected {
						fmt.Fprintf(w, "\t%.0f", cov.DCPercent())
					} else {
						fmt.Fprintf(w, "\t%.0f", cov.TCPercent())
					}
				}
				fmt.Fprintf(w, "\t%.2f\n", res.CoveragePercent(f, s, detected))
			}
		}
	}
	w.Flush()
}
