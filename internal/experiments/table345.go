package experiments

import (
	"fmt"
	"time"

	"cghti"
	"cghti/internal/area"
	"cghti/internal/baselines"
	"cghti/internal/compat"
	"cghti/internal/rare"
	"cghti/internal/trojan"
)

// Table3Row is one circuit's insertion-time comparison.
type Table3Row struct {
	Circuit string

	// Random baseline: measured time and success count for the attempted
	// insertions (q ∈ [10,20], simulation-validated).
	RandomTime      time.Duration
	RandomAttempted int
	RandomSucceeded int

	// RL baseline: measured time and success count.
	RLTime      time.Duration
	RLAttempted int
	RLSucceeded int

	// Proposed framework: time to generate Instances trojans and the
	// trigger-node range of the emitted instances.
	ProposedTime time.Duration
	ProposedQMin int
	ProposedQMax int
	Instances    int
}

// Table3Result is the insertion-time dataset.
type Table3Result struct {
	Rows    []Table3Row
	Elapsed time.Duration
}

// SpeedupVsRandom returns the per-instance speedup of the proposed
// framework over the random baseline on this row (0 when either side has
// no data). Failed baseline attempts still count as spent time —
// exactly the cost the paper's Table III charges.
func (r Table3Row) SpeedupVsRandom() float64 {
	if r.ProposedTime <= 0 || r.Instances == 0 || r.RandomAttempted == 0 {
		return 0
	}
	perProposed := float64(r.ProposedTime) / float64(r.Instances)
	perRandom := float64(r.RandomTime) / float64(max(r.RandomSucceeded, 1))
	return perRandom / perProposed
}

// SpeedupVsRL is the analogous RL comparison.
func (r Table3Row) SpeedupVsRL() float64 {
	if r.ProposedTime <= 0 || r.Instances == 0 || r.RLAttempted == 0 {
		return 0
	}
	perProposed := float64(r.ProposedTime) / float64(r.Instances)
	perRL := float64(r.RLTime) / float64(max(r.RLSucceeded, 1))
	return perRL / perProposed
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Table3 measures trojan insertion time for the Random, RL and proposed
// frameworks on each circuit.
func Table3(o Options) (*Table3Result, error) {
	o = o.withDefaults()
	start := time.Now()
	res := &Table3Result{}

	instances := o.scale(10, 100)
	rareVectors := o.scale(2000, rare.DefaultVectors)
	rareCap := o.scale(500, 1500)
	randomAttempts := o.scale(2, 10)
	randomBudget := o.scale(40000, 400000)
	rlAttempts := o.scale(1, 5)
	proposedQ := o.scale(8, 25)
	maxBT := o.scale(600, 4000)

	for _, name := range o.Circuits {
		n, err := loadCircuit(name)
		if err != nil {
			return nil, err
		}
		rs, err := o.extractRare(n, rare.Config{Vectors: rareVectors, Threshold: rare.DefaultThreshold, Seed: o.Seed, Workers: o.Workers})
		if err != nil {
			return nil, err
		}
		row := Table3Row{Circuit: name}

		// Random baseline: each attempt draws subsets of q ∈ [10,20] and
		// pays for validation whether or not it succeeds.
		t0 := time.Now()
		for i := 0; i < randomAttempts; i++ {
			q := 10 + int(o.Seed+int64(i))%11
			if q > rs.Len() {
				q = rs.Len()
			}
			row.RandomAttempted++
			_, err := baselines.RandomInsert(n, rs, baselines.RandomConfig{
				Q: q, ValidationVectors: randomBudget, MaxSubsets: 4, Seed: o.Seed + int64(i),
			})
			if err == nil {
				row.RandomSucceeded++
			} else if !isValidation(err) {
				return nil, err
			}
		}
		row.RandomTime = time.Since(t0)

		// RL baseline.
		t1 := time.Now()
		for i := 0; i < rlAttempts; i++ {
			row.RLAttempted++
			_, err := baselines.RLInsert(n, rs, baselines.RLConfig{
				Q: 5, Episodes: o.scale(50, 400), RewardVectors: 2048,
				Candidates: 48, Seed: o.Seed + 50 + int64(i),
			})
			if err == nil {
				row.RLSucceeded++
			} else if !isValidation(err) {
				return nil, err
			}
		}
		row.RLTime = time.Since(t1)

		// Proposed framework.
		t2 := time.Now()
		gen, err := cghti.Generate(n, cghti.Config{
			RareVectors:     rareVectors,
			MinTriggerNodes: proposedQ,
			Instances:       instances,
			MaxBacktracks:   maxBT,
			MaxRareNodes:    rareCap,
			Seed:            o.Seed,
			Cache:           o.Cache,
		})
		if err != nil {
			// Retry with the largest cliques available.
			gen, err = cghti.Generate(n, cghti.Config{
				RareVectors:   rareVectors,
				Instances:     instances,
				MaxBacktracks: maxBT,
				MaxRareNodes:  rareCap,
				Seed:          o.Seed,
				Cache:         o.Cache,
			})
			if err != nil {
				return nil, fmt.Errorf("table3 %s: %w", name, err)
			}
		}
		row.ProposedTime = time.Since(t2)
		row.Instances = len(gen.Benchmarks)
		row.ProposedQMin, row.ProposedQMax, _ = gen.TriggerRange()
		res.Rows = append(res.Rows, row)
	}
	res.Elapsed = time.Since(start)
	printTable3(o, res)
	return res, nil
}

func printTable3(o Options, res *Table3Result) {
	w, ok := tabw(o)
	if !ok {
		return
	}
	header(o, "Table III: trojan insertion time comparison\n")
	fmt.Fprintln(w, "circuit\trandom time\t(ok/try)\tRL time\t(ok/try)\tproposed time\tq range\tinstances\tspeedup vs random\tspeedup vs RL")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%s\t%v\t%d/%d\t%v\t%d/%d\t%v\t%d-%d\t%d\t%.1fx\t%.1fx\n",
			r.Circuit,
			r.RandomTime.Round(time.Millisecond), r.RandomSucceeded, r.RandomAttempted,
			r.RLTime.Round(time.Millisecond), r.RLSucceeded, r.RLAttempted,
			r.ProposedTime.Round(time.Millisecond), r.ProposedQMin, r.ProposedQMax,
			r.Instances, r.SpeedupVsRandom(), r.SpeedupVsRL())
	}
	w.Flush()
}

// Table4Row is one circuit's complete-subgraph statistics.
type Table4Row struct {
	Circuit      string
	RareNodes    int
	Vertices     int // rare nodes that received a PODEM cube
	Edges        int
	Subgraphs    int
	MinSize      int
	MaxSize      int
	GenerateTime time.Duration // cube + edge + mining time
}

// Table4Result is the scalability dataset.
type Table4Result struct {
	Rows    []Table4Row
	Elapsed time.Duration
}

// Table4 builds the compatibility graph per circuit and mines as many
// complete subgraphs as the scale allows, reporting counts and
// generation time.
func Table4(o Options) (*Table4Result, error) {
	o = o.withDefaults()
	start := time.Now()
	res := &Table4Result{}
	rareVectors := o.scale(2000, rare.DefaultVectors)
	rareCap := o.scale(500, 1500)
	maxCliques := o.scale(500, 20000)
	minSize := o.scale(4, 10)
	maxBT := o.scale(600, 4000)

	for _, name := range o.Circuits {
		n, err := loadCircuit(name)
		if err != nil {
			return nil, err
		}
		rs, err := o.extractRare(n, rare.Config{Vectors: rareVectors, Threshold: rare.DefaultThreshold, Seed: o.Seed, Workers: o.Workers})
		if err != nil {
			return nil, err
		}
		capped := capRareSet(rs, rareCap)
		t0 := time.Now()
		g, err := o.buildGraph(n, capped, compat.BuildConfig{MaxBacktracks: maxBT, Workers: o.Workers})
		if err != nil {
			return nil, err
		}
		cliques := g.FindCliques(compat.MineConfig{MinSize: minSize, MaxCliques: maxCliques, Seed: o.Seed})
		if len(cliques) == 0 {
			cliques = g.FindCliques(compat.MineConfig{MinSize: 2, MaxCliques: maxCliques, Seed: o.Seed + 1})
		}
		elapsed := time.Since(t0)
		row := Table4Row{
			Circuit:      name,
			RareNodes:    rs.Len(),
			Vertices:     g.NumVertices(),
			Edges:        g.NumEdges(),
			Subgraphs:    len(cliques),
			GenerateTime: elapsed,
		}
		for i, c := range cliques {
			sz := len(c.Vertices)
			if i == 0 || sz < row.MinSize {
				row.MinSize = sz
			}
			if sz > row.MaxSize {
				row.MaxSize = sz
			}
		}
		res.Rows = append(res.Rows, row)
	}
	res.Elapsed = time.Since(start)

	if w, ok := tabw(o); ok {
		header(o, "Table IV: number of complete subgraphs and generation time\n")
		fmt.Fprintln(w, "circuit\trare nodes\tvertices\tedges\tsubgraphs\tsize range\tgeneration time")
		for _, r := range res.Rows {
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d-%d\t%v\n",
				r.Circuit, r.RareNodes, r.Vertices, r.Edges, r.Subgraphs,
				r.MinSize, r.MaxSize, r.GenerateTime.Round(time.Millisecond))
		}
		w.Flush()
	}
	return res, nil
}

// Table5Row is one circuit's worst-case area overhead.
type Table5Row struct {
	Circuit      string
	TriggerNodes int
	OverheadPct  float64
}

// Table5Result is the area-overhead dataset.
type Table5Result struct {
	Rows    []Table5Row
	Elapsed time.Duration
}

// Table5 inserts the largest-clique trojan per circuit (worst case, as
// the paper does) and reports the NanGate-45-like area overhead.
func Table5(o Options) (*Table5Result, error) {
	o = o.withDefaults()
	start := time.Now()
	res := &Table5Result{}
	lib := area.NanGate45()
	rareVectors := o.scale(2000, rare.DefaultVectors)
	rareCap := o.scale(500, 1500)
	maxBT := o.scale(600, 4000)

	for _, name := range o.Circuits {
		n, err := loadCircuit(name)
		if err != nil {
			return nil, err
		}
		rs, err := o.extractRare(n, rare.Config{Vectors: rareVectors, Threshold: rare.DefaultThreshold, Seed: o.Seed, Workers: o.Workers})
		if err != nil {
			return nil, err
		}
		capped := capRareSet(rs, rareCap)
		g, err := o.buildGraph(n, capped, compat.BuildConfig{MaxBacktracks: maxBT, Workers: o.Workers})
		if err != nil {
			return nil, err
		}
		cliques := g.FindCliques(compat.MineConfig{MinSize: 2, MaxCliques: o.scale(100, 1000), Seed: o.Seed})
		if len(cliques) == 0 {
			return nil, fmt.Errorf("table5 %s: no cliques", name)
		}
		best := cliques[0]
		for _, c := range cliques[1:] {
			if len(c.Vertices) > len(best.Vertices) {
				best = c
			}
		}
		infected, _, err := trojan.InsertInstance(n, best.Nodes(g), best.Cube, 0, trojan.InsertSpec{Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		pct, err := lib.Overhead(n, infected)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table5Row{
			Circuit:      name,
			TriggerNodes: len(best.Vertices),
			OverheadPct:  pct,
		})
	}
	res.Elapsed = time.Since(start)

	if w, ok := tabw(o); ok {
		header(o, "Table V: worst-case area overhead of generated trojans\n")
		fmt.Fprintln(w, "circuit\ttrigger nodes\tarea overhead %")
		for _, r := range res.Rows {
			fmt.Fprintf(w, "%s\t%d\t%.2f\n", r.Circuit, r.TriggerNodes, r.OverheadPct)
		}
		w.Flush()
	}
	return res, nil
}
