package faultsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"cghti/internal/chaos"
	"cghti/internal/gen"
	"cghti/internal/obs"
	"cghti/internal/stage"
)

func cancelVectors(n int, width int) [][]bool {
	vs := make([][]bool, n)
	for i := range vs {
		v := make([]bool, width)
		for j := range v {
			v[j] = (i+j)%2 == 0
		}
		vs[i] = v
	}
	return vs
}

func TestRunContextPreCancelled(t *testing.T) {
	n := gen.C17()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, n, cancelVectors(64, len(n.PIs)), nil, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
}

func TestRunContextCancelledMidRun(t *testing.T) {
	n := gen.C17()
	chaos.Install(chaos.Spec{
		Stage: stage.FaultSim, Worker: chaos.AnyWorker,
		Kind: chaos.Delay, Delay: 200 * time.Millisecond, OnHit: 1,
	})
	defer chaos.Uninstall()
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(20*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	// Enough vectors for several batches, so there is a later
	// cancellation point after the injected stall.
	cov, err := RunContext(ctx, n, cancelVectors(4096, len(n.PIs)), nil, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	// The partial coverage must stay internally consistent.
	if cov.Detected > cov.Total {
		t.Fatalf("partial coverage inconsistent: %+v", cov)
	}
}

func TestRunWorkerPanicContained(t *testing.T) {
	n := gen.C17()
	for name, workers := range map[string]int{"serial": 1, "parallel": 2} {
		t.Run(name, func(t *testing.T) {
			chaos.Install(chaos.Spec{
				Stage: stage.FaultSim, Worker: chaos.AnyWorker,
				Kind: chaos.Panic, OnHit: 1,
			})
			defer chaos.Uninstall()
			_, err := RunWorkers(n, cancelVectors(64, len(n.PIs)), nil, workers)
			if err == nil {
				t.Fatal("injected panic did not surface as an error")
			}
			se, ok := obs.AsStageError(err)
			if !ok || se.PanicValue == nil || se.Stage != stage.FaultSim {
				t.Fatalf("err = %v, want a panic-derived StageError for %s", err, stage.FaultSim)
			}
		})
	}
}
