// Package faultsim provides stuck-at fault simulation: fault-list
// construction, parallel-pattern single-fault simulation, and fault
// coverage of a test set.
//
// It rounds out the ATPG substrate the paper's tooling sits on: MERO's
// original formulation and the ND-ATPG scheme both reason in terms of
// stuck-at fault detection, and fault coverage is the standard metric
// for judging the quality of the test sets the detection schemes emit.
// cmd/htdetect exposes it through -faultcov.
package faultsim

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"cghti/internal/chaos"
	"cghti/internal/netlist"
	"cghti/internal/obs"
	"cghti/internal/sim"
	"cghti/internal/stage"
)

// Fault is a single stuck-at fault on a gate output net.
type Fault struct {
	// Site is the gate whose output net is faulty.
	Site netlist.GateID
	// StuckAt is the faulty value (0 or 1).
	StuckAt uint8
}

// String renders "net s-a-v".
func (f Fault) String() string { return fmt.Sprintf("gate %d s-a-%d", f.Site, f.StuckAt) }

// FullFaultList returns both stuck-at faults for every net that can
// carry one (all gates except constants; PIs and DFF outputs included —
// their nets are observable circuit nodes).
func FullFaultList(n *netlist.Netlist) []Fault {
	out := make([]Fault, 0, 2*len(n.Gates))
	for i := range n.Gates {
		switch n.Gates[i].Type {
		case netlist.Const0, netlist.Const1:
			continue
		}
		out = append(out, Fault{Site: netlist.GateID(i), StuckAt: 0})
		out = append(out, Fault{Site: netlist.GateID(i), StuckAt: 1})
	}
	return out
}

// Simulator runs parallel-pattern single-fault propagation: for each
// fault, the good value image is reused and only the fault's downstream
// cone is re-evaluated with the fault injected, 64 patterns at a time.
type Simulator struct {
	n     *netlist.Netlist
	topo  []netlist.GateID
	outs  []netlist.GateID
	words int

	good  []uint64 // good-circuit image
	bad   []uint64 // per-fault scratch image
	inTFO []bool   // scratch: fault's transitive fanout
}

// NewSimulator builds a fault simulator with the given pattern-word
// count (64 patterns per word).
func NewSimulator(n *netlist.Netlist, words int) (*Simulator, error) {
	if words < 1 {
		return nil, fmt.Errorf("faultsim: words must be >= 1")
	}
	topo, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	return &Simulator{
		n:     n,
		topo:  topo,
		outs:  n.CombOutputs(),
		words: words,
		good:  make([]uint64, len(n.Gates)*words),
		bad:   make([]uint64, len(n.Gates)*words),
		inTFO: make([]bool, len(n.Gates)),
	}, nil
}

// Patterns returns the number of patterns per batch.
func (s *Simulator) Patterns() int { return 64 * s.words }

// Fork returns a simulator that shares this one's good-circuit image
// (read-only) but owns its own faulty-image and fanout scratch, so
// DetectMask can run concurrently on the parent and all forks. Forks
// must not call SetInputs; reload patterns on the parent only, while no
// fork is simulating.
func (s *Simulator) Fork() *Simulator {
	return &Simulator{
		n:     s.n,
		topo:  s.topo,
		outs:  s.outs,
		words: s.words,
		good:  s.good,
		bad:   make([]uint64, len(s.n.Gates)*s.words),
		inTFO: make([]bool, len(s.n.Gates)),
	}
}

// SetInputs loads up to Patterns() vectors (each one bool per
// combinational input, CombInputs order) and simulates the good
// circuit. It returns the number of patterns loaded.
func (s *Simulator) SetInputs(vectors [][]bool) int {
	inputs := s.n.CombInputs()
	count := len(vectors)
	if count > s.Patterns() {
		count = s.Patterns()
	}
	for j, id := range inputs {
		base := int(id) * s.words
		for w := 0; w < s.words; w++ {
			s.good[base+w] = 0
		}
		for p := 0; p < count; p++ {
			if vectors[p][j] {
				s.good[base+p/64] |= 1 << uint(p%64)
			}
		}
	}
	s.evalGood()
	return count
}

func (s *Simulator) evalGood() {
	evalImage(s.n, s.topo, s.words, s.good, nil)
}

// setInputsService is SetInputs with the good-circuit image computed
// through the context's simulation service instead of the local
// evalImage walk: the pattern load and the full post-simulation image
// are shuttled through one Block, so under the serving daemon the
// good-image runs of many concurrent coverage jobs share wide engines.
// Input words beyond the loaded count are zeroed exactly as SetInputs
// zeroes them, and the packed kernels compute the same two-valued
// logic evalImage computes, so the resulting image — and every
// DetectMask derived from it — is byte-identical to the local path.
func (s *Simulator) setInputsService(ctx context.Context, svc sim.Service, vectors [][]bool) (int, error) {
	inputs := s.n.CombInputs()
	count := len(vectors)
	if count > s.Patterns() {
		count = s.Patterns()
	}
	W := s.words
	err := svc.Simulate(ctx, &sim.Request{
		Netlist: s.n,
		Words:   W,
		Fill: func(b sim.Block) {
			for j, id := range inputs {
				for w := 0; w < W; w++ {
					var word uint64
					for p := w * 64; p < count && p < (w+1)*64; p++ {
						if vectors[p][j] {
							word |= 1 << uint(p%64)
						}
					}
					b.SetWord(id, w, word)
				}
			}
		},
		Read: func(b sim.Block) {
			for g := range s.n.Gates {
				base := g * W
				for w := 0; w < W; w++ {
					s.good[base+w] = b.Word(netlist.GateID(g), w)
				}
			}
		},
	})
	if err != nil {
		return 0, err
	}
	return count, nil
}

// DetectMask simulates one fault against the currently loaded patterns
// and returns a bitmask word list: bit p set means pattern p detects the
// fault (some combinational output differs from the good circuit).
func (s *Simulator) DetectMask(f Fault) []uint64 {
	n := s.n
	W := s.words

	// Mark the fault's transitive fanout; only those gates need
	// re-evaluation, everything else keeps its good value.
	for i := range s.inTFO {
		s.inTFO[i] = false
	}
	stack := []netlist.GateID{f.Site}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.inTFO[id] {
			continue
		}
		s.inTFO[id] = true
		for _, o := range n.Gates[id].Fanout {
			if n.Gates[o].Type == netlist.DFF {
				continue
			}
			stack = append(stack, o)
		}
	}

	// Faulty image: copy good values for fanin reads; re-evaluate the
	// cone with the fault forced.
	copy(s.bad, s.good)
	var fill uint64
	if f.StuckAt == 1 {
		fill = ^uint64(0)
	}
	base := int(f.Site) * W
	for w := 0; w < W; w++ {
		s.bad[base+w] = fill
	}
	evalImage(n, s.topo, W, s.bad, func(id netlist.GateID) bool {
		return s.inTFO[id] && id != f.Site
	})

	mask := make([]uint64, W)
	for _, out := range s.outs {
		ob := int(out) * W
		for w := 0; w < W; w++ {
			mask[w] |= s.good[ob+w] ^ s.bad[ob+w]
		}
	}
	return mask
}

// evalImage evaluates gates in topological order into vals. If filter is
// non-nil, only gates for which it returns true are re-evaluated (their
// fanins read whatever vals already holds).
func evalImage(n *netlist.Netlist, topo []netlist.GateID, W int, vals []uint64, filter func(netlist.GateID) bool) {
	for _, id := range topo {
		if filter != nil && !filter(id) {
			continue
		}
		g := &n.Gates[id]
		base := int(id) * W
		switch g.Type {
		case netlist.Input, netlist.DFF:
			// state, already loaded
		case netlist.Const0:
			for w := 0; w < W; w++ {
				vals[base+w] = 0
			}
		case netlist.Const1:
			for w := 0; w < W; w++ {
				vals[base+w] = ^uint64(0)
			}
		case netlist.Buf:
			src := int(g.Fanin[0]) * W
			copy(vals[base:base+W], vals[src:src+W])
		case netlist.Not:
			src := int(g.Fanin[0]) * W
			for w := 0; w < W; w++ {
				vals[base+w] = ^vals[src+w]
			}
		case netlist.And, netlist.Nand:
			for w := 0; w < W; w++ {
				acc := ^uint64(0)
				for _, f := range g.Fanin {
					acc &= vals[int(f)*W+w]
				}
				if g.Type == netlist.Nand {
					acc = ^acc
				}
				vals[base+w] = acc
			}
		case netlist.Or, netlist.Nor:
			for w := 0; w < W; w++ {
				var acc uint64
				for _, f := range g.Fanin {
					acc |= vals[int(f)*W+w]
				}
				if g.Type == netlist.Nor {
					acc = ^acc
				}
				vals[base+w] = acc
			}
		case netlist.Xor, netlist.Xnor:
			for w := 0; w < W; w++ {
				var acc uint64
				for _, f := range g.Fanin {
					acc ^= vals[int(f)*W+w]
				}
				if g.Type == netlist.Xnor {
					acc = ^acc
				}
				vals[base+w] = acc
			}
		}
	}
}

// Coverage is the result of a fault-coverage run.
type Coverage struct {
	// Total is the fault-list size.
	Total int
	// Detected counts faults some vector detected.
	Detected int
	// PerFault maps each detected fault to the index of the first
	// detecting vector.
	PerFault map[Fault]int
}

// Percent returns detected/total as a percentage.
func (c Coverage) Percent() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Detected) / float64(c.Total)
}

// Run measures stuck-at fault coverage of the vectors over the fault
// list (FullFaultList if faults is nil). Detected faults are dropped
// from later batches (fault dropping), the standard speedup.
func Run(n *netlist.Netlist, vectors [][]bool, faults []Fault) (Coverage, error) {
	return RunWorkers(n, vectors, faults, 1)
}

// RunWorkers is Run with an explicit simulation goroutine budget (1 =
// serial, 0 = GOMAXPROCS). Each batch shards the live fault list over
// forked simulators that share the good-circuit image; per-fault
// detection results are folded back in fault-list order, so the
// coverage (including first-detecting-vector indices and fault
// dropping) is identical for any worker count.
func RunWorkers(n *netlist.Netlist, vectors [][]bool, faults []Fault, workers int) (Coverage, error) {
	return RunContext(context.Background(), n, vectors, faults, workers)
}

// RunContext is RunWorkers with cooperative cancellation (checked per
// pattern batch on the coordinator and per fault inside the workers)
// and panic containment (a panicking worker surfaces as a
// *obs.StageError instead of killing the process). On cancellation the
// coverage accumulated over completed batches is returned alongside
// ctx's error — detections already recorded are real, only later
// vectors go unmeasured.
func RunContext(ctx context.Context, n *netlist.Netlist, vectors [][]bool, faults []Fault, workers int) (Coverage, error) {
	if faults == nil {
		faults = FullFaultList(n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cov := Coverage{Total: len(faults), PerFault: make(map[Fault]int)}
	if len(vectors) == 0 || len(faults) == 0 {
		return cov, nil
	}
	const words = 8
	s, err := NewSimulator(n, words)
	if err != nil {
		return cov, err
	}
	sims := []*Simulator{s}
	for len(sims) < workers {
		sims = append(sims, s.Fork())
	}
	svc := sim.ServiceFor(ctx)
	ctxDone := ctx.Done()
	firsts := make([]int, len(faults))
	remaining := append([]Fault(nil), faults...)
	// The whole batch loop runs under a coordinator-level Guard so a
	// panic on the coordinator path (not just inside a worker) also
	// surfaces as a *obs.StageError; cov is accumulated per completed
	// batch, so the partial coverage survives an early return.
	loopErr := obs.Guard(stage.FaultSim, 0, func() error {
		for base := 0; base < len(vectors) && len(remaining) > 0; base += s.Patterns() {
			select {
			case <-ctxDone:
				return ctx.Err()
			default:
			}
			if err := chaos.Hit(stage.FaultSim, 0); err != nil {
				return err
			}
			hi := base + s.Patterns()
			if hi > len(vectors) {
				hi = len(vectors)
			}
			count, err := s.setInputsService(ctx, svc, vectors[base:hi])
			if err != nil {
				return err
			}
			if workers == 1 || len(remaining) < 2 {
				for i, f := range remaining {
					firsts[i] = firstSetBit(s.DetectMask(f), count)
				}
			} else {
				var runErr error
				var errOnce sync.Once
				var cursor atomic.Int64
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int, sw *Simulator) {
						defer wg.Done()
						if err := obs.Guard(stage.FaultSim, w, func() error {
							for {
								select {
								case <-ctxDone:
									return ctx.Err()
								default:
								}
								if err := chaos.Hit(stage.FaultSim, w); err != nil {
									return err
								}
								i := int(cursor.Add(1)) - 1
								if i >= len(remaining) {
									return nil
								}
								firsts[i] = firstSetBit(sw.DetectMask(remaining[i]), count)
							}
						}); err != nil {
							errOnce.Do(func() { runErr = err })
						}
					}(w, sims[w])
				}
				wg.Wait()
				if runErr != nil {
					// The batch is incomplete: some faults were never
					// simulated this round, so its detections cannot be
					// folded in without misordering first-detect indices.
					return runErr
				}
			}
			alive := remaining[:0]
			for i, f := range remaining {
				if firsts[i] < 0 {
					alive = append(alive, f)
					continue
				}
				cov.Detected++
				cov.PerFault[f] = base + firsts[i]
			}
			remaining = alive
		}
		return nil
	})
	return cov, loopErr
}

func firstSetBit(mask []uint64, limit int) int {
	for w, word := range mask {
		if word == 0 {
			continue
		}
		p := w*64 + bits.TrailingZeros64(word)
		if p >= limit {
			return -1
		}
		return p
	}
	return -1
}
