package faultsim

import (
	"math/rand"
	"testing"

	"cghti/internal/bench"
	"cghti/internal/gen"
	"cghti/internal/netlist"
	"cghti/internal/sim"
)

const c17 = `
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

func parse(t testing.TB, src string) *netlist.Netlist {
	t.Helper()
	n, err := bench.ParseString(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func randomVectors(n *netlist.Netlist, count int, seed int64) [][]bool {
	rng := rand.New(rand.NewSource(seed))
	inputs := n.CombInputs()
	out := make([][]bool, count)
	for i := range out {
		v := make([]bool, len(inputs))
		for j := range v {
			v[j] = rng.Intn(2) == 1
		}
		out[i] = v
	}
	return out
}

func TestFullFaultList(t *testing.T) {
	n := parse(t, c17)
	faults := FullFaultList(n)
	// 11 nets (5 PI + 6 gates) × 2 faults.
	if len(faults) != 22 {
		t.Fatalf("fault list has %d entries, want 22", len(faults))
	}
}

func TestFullFaultListSkipsConstants(t *testing.T) {
	n := parse(t, "INPUT(a)\nOUTPUT(y)\nz = CONST1()\ny = AND(a, z)\n")
	for _, f := range FullFaultList(n) {
		if tt := n.Gates[f.Site].Type; tt == netlist.Const0 || tt == netlist.Const1 {
			t.Fatal("fault list includes a constant net")
		}
	}
}

func TestC17ExhaustiveFullCoverage(t *testing.T) {
	// c17 is fully testable: all 22 faults detected by exhaustive
	// patterns.
	n := parse(t, c17)
	var vectors [][]bool
	for p := 0; p < 32; p++ {
		v := make([]bool, 5)
		for j := 0; j < 5; j++ {
			v[j] = p>>uint(j)&1 == 1
		}
		vectors = append(vectors, v)
	}
	cov, err := Run(n, vectors, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Detected != cov.Total {
		t.Fatalf("coverage %d/%d, want full", cov.Detected, cov.Total)
	}
	if cov.Percent() != 100 {
		t.Fatalf("Percent = %v", cov.Percent())
	}
}

func TestRedundantFaultNeverDetected(t *testing.T) {
	// y = OR(a, AND(a,b)): AND-output s-a-0 is undetectable.
	n := parse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
g = AND(a, b)
y = OR(a, g)
`)
	fault := Fault{Site: n.MustLookup("g"), StuckAt: 0}
	var vectors [][]bool
	for p := 0; p < 4; p++ {
		vectors = append(vectors, []bool{p&1 == 1, p&2 == 2})
	}
	cov, err := Run(n, vectors, []Fault{fault})
	if err != nil {
		t.Fatal(err)
	}
	if cov.Detected != 0 {
		t.Fatal("redundant fault reported detected")
	}
}

// evalWithFault is the scalar reference: full simulation with one fault
// injected.
func evalWithFault(t *testing.T, n *netlist.Netlist, in map[netlist.GateID]uint8, site netlist.GateID, sa uint8) []uint8 {
	t.Helper()
	topo, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]uint8, len(n.Gates))
	for _, id := range topo {
		g := &n.Gates[id]
		switch g.Type {
		case netlist.Input, netlist.DFF:
			vals[id] = in[id]
		default:
			buf := make([]uint8, len(g.Fanin))
			for i, f := range g.Fanin {
				buf[i] = vals[f]
			}
			vals[id] = sim.EvalGate(g.Type, buf)
		}
		if id == site {
			vals[id] = sa
		}
	}
	return vals
}

// TestDetectMaskMatchesScalarReference cross-checks the cone-limited
// parallel fault simulation against full scalar fault injection on
// random circuits, faults and patterns.
func TestDetectMaskMatchesScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 8; trial++ {
		n, err := gen.Random(gen.Spec{
			Name: "r", PIs: 8, POs: 4, DFFs: 2, Gates: 60,
			Seed: int64(trial + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSimulator(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		vectors := randomVectors(n, 64, int64(trial))
		s.SetInputs(vectors)
		inputs := n.CombInputs()
		outs := n.CombOutputs()
		faults := FullFaultList(n)
		for trial2 := 0; trial2 < 20; trial2++ {
			f := faults[rng.Intn(len(faults))]
			mask := s.DetectMask(f)
			for p := 0; p < 8; p++ {
				pat := rng.Intn(64)
				in := map[netlist.GateID]uint8{}
				for j, id := range inputs {
					if vectors[pat][j] {
						in[id] = 1
					} else {
						in[id] = 0
					}
				}
				good, err := sim.Eval(n, in)
				if err != nil {
					t.Fatal(err)
				}
				bad := evalWithFault(t, n, in, f.Site, f.StuckAt)
				wantDetect := false
				for _, o := range outs {
					if good[o] != bad[o] {
						wantDetect = true
						break
					}
				}
				gotDetect := mask[pat/64]&(1<<uint(pat%64)) != 0
				if gotDetect != wantDetect {
					t.Fatalf("circuit %d fault %v pattern %d: mask says %v, reference says %v",
						trial, f, pat, gotDetect, wantDetect)
				}
			}
		}
	}
}

func TestRunFirstDetectingVectorIndex(t *testing.T) {
	// y = AND(a,b); a s-a-0 detected only by a=1,b=1.
	n := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")
	vectors := [][]bool{
		{false, false},
		{true, false},
		{true, true}, // first detecting vector for a s-a-0
		{true, true},
	}
	f := Fault{Site: n.MustLookup("a"), StuckAt: 0}
	cov, err := Run(n, vectors, []Fault{f})
	if err != nil {
		t.Fatal(err)
	}
	if got := cov.PerFault[f]; got != 2 {
		t.Fatalf("first detecting vector = %d, want 2", got)
	}
}

func TestRunEmptyInputs(t *testing.T) {
	n := parse(t, c17)
	cov, err := Run(n, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Detected != 0 || cov.Total == 0 {
		t.Fatalf("unexpected coverage %+v", cov)
	}
	if _, err := NewSimulator(n, 0); err == nil {
		t.Fatal("words=0 accepted")
	}
}

func TestRunMultiBatchFaultDropping(t *testing.T) {
	// More vectors than one batch (512) forces the multi-batch path.
	n := gen.MustBenchmark("c432")
	vectors := randomVectors(n, 1100, 3)
	cov, err := Run(n, vectors, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Detected == 0 {
		t.Fatal("random vectors detected nothing on c432")
	}
	// Detection indices must be within range and consistent.
	for f, idx := range cov.PerFault {
		if idx < 0 || idx >= len(vectors) {
			t.Fatalf("fault %v first-detect index %d out of range", f, idx)
		}
	}
	if cov.Percent() <= 0 || cov.Percent() > 100 {
		t.Fatalf("Percent = %v", cov.Percent())
	}
}

func TestScanCaptureObservesFault(t *testing.T) {
	// Fault observable only through a DFF data input.
	n := parse(t, `
INPUT(a)
INPUT(b)
OUTPUT(q)
q = DFF(d)
d = AND(a, b)
`)
	f := Fault{Site: n.MustLookup("d"), StuckAt: 0}
	cov, err := Run(n, [][]bool{{true, true, false}}, []Fault{f})
	if err != nil {
		t.Fatal(err)
	}
	if cov.Detected != 1 {
		t.Fatal("scan capture did not observe the fault")
	}
}

func TestFaultString(t *testing.T) {
	f := Fault{Site: 3, StuckAt: 1}
	if f.String() != "gate 3 s-a-1" {
		t.Fatalf("String = %q", f.String())
	}
}
