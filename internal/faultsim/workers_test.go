package faultsim

import (
	"testing"

	"cghti/internal/gen"
)

// TestRunWorkersIdentical checks the forked-simulator parallel path
// reproduces the serial coverage exactly, including per-fault first
// detecting-vector indices and fault dropping across batches.
func TestRunWorkersIdentical(t *testing.T) {
	for _, name := range []string{"c432", "c880"} {
		n, err := gen.Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		vectors := randomVectors(n, 1500, 13)
		ref, err := RunWorkers(n, vectors, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			got, err := RunWorkers(n, vectors, nil, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got.Total != ref.Total || got.Detected != ref.Detected {
				t.Fatalf("%s workers=%d: %d/%d detected, want %d/%d",
					name, workers, got.Detected, got.Total, ref.Detected, ref.Total)
			}
			if len(got.PerFault) != len(ref.PerFault) {
				t.Fatalf("%s workers=%d: %d per-fault entries, want %d",
					name, workers, len(got.PerFault), len(ref.PerFault))
			}
			for f, first := range ref.PerFault {
				if got.PerFault[f] != first {
					t.Fatalf("%s workers=%d: fault %v first detect %d, want %d",
						name, workers, f, got.PerFault[f], first)
				}
			}
		}
	}
}
