// Package features extracts per-net functional and structural features
// of the kind the MIMIC framework (Cruz et al., 2022 — discussed in the
// paper's Section II) trains its trojan-generation models on: signal
// probability, switching activity, SCOAP testability, fan-in/fan-out,
// logic level and distances to the circuit interface.
//
// The extractor exists so generated benchmark suites can feed
// ML-detection research directly: `netlistinfo -features out.csv` dumps
// the matrix for any netlist, infected or golden.
package features

import (
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"os"
	"strconv"

	"cghti/internal/netlist"
	"cghti/internal/scoap"
	"cghti/internal/sim"
)

// Vector is one net's feature vector.
type Vector struct {
	// Name is the net name.
	Name string
	// GateType is the driving cell type.
	GateType netlist.GateType
	// Prob1 is the simulated probability of logic 1.
	Prob1 float64
	// Switching is the simulated per-vector toggle probability
	// (2·p·(1−p) under temporal independence; measured directly from
	// consecutive random vectors here).
	Switching float64
	// CC0, CC1, CO are SCOAP measures (saturated at scoap.Inf).
	CC0, CC1, CO int64
	// FanIn and FanOut are the local connectivity counts.
	FanIn, FanOut int
	// Level is the logic level (distance from inputs).
	Level int32
	// DistToPO is the minimum fanout distance to an observable output
	// (-1 if unreachable).
	DistToPO int32
	// MinFaninDepth is the shortest path back to a combinational input.
	MinFaninDepth int32
}

// Config parameterizes extraction.
type Config struct {
	// Vectors is the simulation budget for probability/switching
	// estimation (default 4096).
	Vectors int
	// Seed drives the random vectors.
	Seed int64
}

// Extract computes the feature matrix for every net (gate output) of n,
// indexed by GateID.
func Extract(n *netlist.Netlist, cfg Config) ([]Vector, error) {
	if cfg.Vectors <= 0 {
		cfg.Vectors = 4096
	}
	m, err := scoap.Compute(n)
	if err != nil {
		return nil, err
	}
	if err := n.Levelize(); err != nil {
		return nil, err
	}

	// Simulated probability and switching activity.
	const words = 8
	p, err := sim.NewPacked(n, words)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ones := make([]int64, n.NumGates())
	toggles := make([]int64, n.NumGates())
	prev := make([]uint64, n.NumGates())
	havePrev := false
	simulated := 0
	for simulated < cfg.Vectors {
		p.Randomize(rng)
		p.Run()
		batch := p.Patterns()
		if batch > cfg.Vectors-simulated {
			batch = cfg.Vectors - simulated
		}
		p.CountOnes(ones, batch)
		// Toggle counting: XOR adjacent patterns within the batch plus
		// the seam against the previous batch's last pattern.
		for g := 0; g < n.NumGates(); g++ {
			var last uint64
			for w := 0; w*64 < batch; w++ {
				word := p.Word(netlist.GateID(g), w)
				lim := batch - w*64
				if lim > 64 {
					lim = 64
				}
				shifted := word<<1 | last
				if w == 0 {
					if havePrev {
						shifted = word<<1 | prev[g]
					} else {
						shifted = word<<1 | word&1 // no toggle for the very first pattern
					}
				}
				diff := (word ^ shifted) & maskBits(lim)
				toggles[g] += int64(bits.OnesCount64(diff))
				last = word >> 63
			}
			prev[g] = last
		}
		havePrev = true
		simulated += batch
	}

	// Distance to observable output and shortest input depth.
	distPO := distanceToOutputs(n)
	depth := minFaninDepths(n)

	out := make([]Vector, n.NumGates())
	for i := range n.Gates {
		g := &n.Gates[i]
		v := Vector{
			Name:      g.Name,
			GateType:  g.Type,
			Prob1:     float64(ones[i]) / float64(cfg.Vectors),
			Switching: float64(toggles[i]) / float64(cfg.Vectors),
			CC0:       m.CC0[i],
			CC1:       m.CC1[i],
			CO:        m.CO[i],
			FanIn:     len(g.Fanin),
			FanOut:    len(g.Fanout),
			Level:     g.Level,
			DistToPO:  distPO[i],
		}
		v.MinFaninDepth = depth[i]
		out[i] = v
	}
	return out, nil
}

func maskBits(k int) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(k)) - 1
}

// distanceToOutputs is a reverse BFS from the combinational outputs.
func distanceToOutputs(n *netlist.Netlist) []int32 {
	dist := make([]int32, n.NumGates())
	for i := range dist {
		dist[i] = -1
	}
	var queue []netlist.GateID
	for _, id := range n.CombOutputs() {
		if dist[id] == -1 {
			dist[id] = 0
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if n.Gates[id].Type == netlist.DFF {
			continue
		}
		for _, f := range n.Gates[id].Fanin {
			if dist[f] == -1 {
				dist[f] = dist[id] + 1
				queue = append(queue, f)
			}
		}
	}
	return dist
}

// minFaninDepths computes, for every gate, the shortest backward path to
// any combinational input (dynamic program over the topological order).
func minFaninDepths(n *netlist.Netlist) []int32 {
	topo, _ := n.TopoOrder()
	depth := make([]int32, n.NumGates())
	for _, id := range topo {
		g := &n.Gates[id]
		if g.Type == netlist.DFF || g.Type.IsSource() {
			depth[id] = 0
			continue
		}
		best := int32(1 << 30)
		for _, f := range g.Fanin {
			if depth[f] < best {
				best = depth[f]
			}
		}
		depth[id] = best + 1
	}
	return depth
}

// WriteCSV dumps the feature matrix with a header row.
func WriteCSV(w io.Writer, vectors []Vector) error {
	if _, err := fmt.Fprintln(w,
		"name,type,prob1,switching,cc0,cc1,co,fanin,fanout,level,dist_to_po,min_fanin_depth"); err != nil {
		return err
	}
	for _, v := range vectors {
		_, err := fmt.Fprintf(w, "%s,%s,%.6f,%.6f,%s,%s,%s,%d,%d,%d,%d,%d\n",
			v.Name, v.GateType,
			v.Prob1, v.Switching,
			satStr(v.CC0), satStr(v.CC1), satStr(v.CO),
			v.FanIn, v.FanOut, v.Level, v.DistToPO, v.MinFaninDepth)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVFile writes the matrix to a file.
func WriteCSVFile(path string, vectors []Vector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, vectors); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// satStr renders a SCOAP value, using "inf" for the saturation value.
func satStr(v int64) string {
	if v >= scoap.Inf {
		return "inf"
	}
	return strconv.FormatInt(v, 10)
}
