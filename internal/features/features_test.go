package features

import (
	"math"
	"strings"
	"testing"

	"cghti/internal/bench"
	"cghti/internal/gen"
	"cghti/internal/netlist"
)

func extract(t *testing.T, src string) (*netlist.Netlist, []Vector) {
	t.Helper()
	n, err := bench.ParseString(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	v, err := Extract(n, Config{Vectors: 8192, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return n, v
}

const fixture = `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
OUTPUT(w)
y = AND(a, b, c, d)
w = BUFF(a)
`

func TestProbabilities(t *testing.T) {
	n, v := extract(t, fixture)
	a := v[n.MustLookup("a")]
	if math.Abs(a.Prob1-0.5) > 0.03 {
		t.Errorf("PI prob1 = %v, want ~0.5", a.Prob1)
	}
	y := v[n.MustLookup("y")]
	if math.Abs(y.Prob1-1.0/16) > 0.02 {
		t.Errorf("AND4 prob1 = %v, want ~0.0625", y.Prob1)
	}
}

func TestSwitchingActivity(t *testing.T) {
	n, v := extract(t, fixture)
	// Uniform random consecutive vectors: PI toggles with p=0.5;
	// AND4 toggles with 2·p·(1−p) ≈ 0.117.
	a := v[n.MustLookup("a")]
	if math.Abs(a.Switching-0.5) > 0.03 {
		t.Errorf("PI switching = %v, want ~0.5", a.Switching)
	}
	y := v[n.MustLookup("y")]
	want := 2 * (1.0 / 16) * (15.0 / 16)
	if math.Abs(y.Switching-want) > 0.02 {
		t.Errorf("AND4 switching = %v, want ~%v", y.Switching, want)
	}
}

func TestStructuralFeatures(t *testing.T) {
	n, v := extract(t, fixture)
	y := v[n.MustLookup("y")]
	if y.FanIn != 4 || y.Level != 1 || y.DistToPO != 0 || y.MinFaninDepth != 1 {
		t.Errorf("AND4 structural features wrong: %+v", y)
	}
	a := v[n.MustLookup("a")]
	if a.FanOut != 2 || a.DistToPO != 1 || a.MinFaninDepth != 0 {
		t.Errorf("PI structural features wrong: %+v", a)
	}
	if y.CC1 != 5 { // 4×1 + 1
		t.Errorf("AND4 CC1 = %d, want 5", y.CC1)
	}
}

func TestCSVOutput(t *testing.T) {
	_, v := extract(t, fixture)
	var sb strings.Builder
	if err := WriteCSV(&sb, v); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(v)+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), len(v)+1)
	}
	if !strings.HasPrefix(lines[0], "name,type,prob1") {
		t.Fatalf("bad header %q", lines[0])
	}
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != 11 {
			t.Fatalf("row %q has %d commas, want 11", line, got)
		}
	}
}

func TestUnobservableNetMarkedInf(t *testing.T) {
	n, err := bench.ParseString(`
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
dead = OR(a, b)
deader = NOT(dead)
`, "t")
	if err != nil {
		t.Fatal(err)
	}
	// Make "deader" a PO-less dangling net via direct construction:
	// parser keeps it; CO should saturate.
	v, err := Extract(n, Config{Vectors: 512, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := v[n.MustLookup("deader")]
	if d.DistToPO != -1 {
		t.Errorf("dangling net DistToPO = %d, want -1", d.DistToPO)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, v); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "inf") {
		t.Error("CSV does not mark saturated SCOAP values as inf")
	}
}

func TestExtractOnGeneratedCircuit(t *testing.T) {
	n := gen.MustBenchmark("c432")
	v, err := Extract(n, Config{Vectors: 2048, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != n.NumGates() {
		t.Fatalf("feature rows %d, want %d", len(v), n.NumGates())
	}
	for _, f := range v {
		if f.Prob1 < 0 || f.Prob1 > 1 {
			t.Fatalf("%s: prob1 %v out of range", f.Name, f.Prob1)
		}
		if f.Switching < 0 || f.Switching > 1 {
			t.Fatalf("%s: switching %v out of range", f.Name, f.Switching)
		}
		// Switching activity is bounded by 2·p·(1−p) + sampling noise.
		bound := 2*f.Prob1*(1-f.Prob1) + 0.06
		if f.Switching > bound {
			t.Fatalf("%s: switching %v exceeds bound %v (p=%v)",
				f.Name, f.Switching, bound, f.Prob1)
		}
	}
}
