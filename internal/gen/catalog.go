// Package gen produces the benchmark circuits the experiments run on.
//
// The paper evaluates on ISCAS85/ISCAS89 netlists. Those files are not
// redistributable inside this offline workspace, so gen provides
// structurally faithful stand-ins (see DESIGN.md, "Substitutions"):
//
//   - C17 and S27 are the exact published circuits (they are tiny and
//     fully reproduced from their textbook descriptions);
//   - c6288-class circuits are real n×n array multipliers (c6288 *is* a
//     16×16 multiplier), built gate-for-gate in multiplier.go;
//   - every other ISCAS name maps to a seeded pseudo-random
//     cone-structured circuit matched to the published PI/PO/DFF/gate
//     counts (random.go).
//
// All generators are deterministic: the same name always yields the same
// circuit, so experiment tables are reproducible run to run.
package gen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cghti/internal/bench"
	"cghti/internal/netlist"
)

// c17Bench is the exact ISCAS85 c17 netlist (6 NAND gates).
const c17Bench = `
# c17 (exact ISCAS85 circuit)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`

// s27Bench is the exact ISCAS89 s27 netlist (10 gates, 3 DFFs).
const s27Bench = `
# s27 (exact ISCAS89 circuit)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

// C17 returns the exact ISCAS85 c17 circuit.
func C17() *netlist.Netlist {
	n, err := bench.ParseString(c17Bench, "c17")
	if err != nil {
		panic(err) // embedded text; cannot fail
	}
	return n
}

// S27 returns the exact ISCAS89 s27 circuit.
func S27() *netlist.Netlist {
	n, err := bench.ParseString(s27Bench, "s27")
	if err != nil {
		panic(err)
	}
	return n
}

// profile describes the published shape of an ISCAS circuit.
type profile struct {
	pis, pos, dffs, gates int
	mult                  int // if > 0, build a real mult×mult array multiplier instead
}

// catalog holds the published PI/PO/DFF/gate counts of the ISCAS
// circuits the paper uses (plus a few smaller ones for tests/examples).
var catalog = map[string]profile{
	"c432":   {pis: 36, pos: 7, gates: 160},
	"c880":   {pis: 60, pos: 26, gates: 383},
	"c1355":  {pis: 41, pos: 32, gates: 546},
	"c1908":  {pis: 33, pos: 25, gates: 880},
	"c2670":  {pis: 233, pos: 140, gates: 1193},
	"c3540":  {pis: 50, pos: 22, gates: 1669},
	"c5315":  {pis: 178, pos: 123, gates: 2307},
	"c6288":  {pis: 32, pos: 32, gates: 2416, mult: 16},
	"c7552":  {pis: 207, pos: 108, gates: 3512},
	"s298":   {pis: 3, pos: 6, dffs: 14, gates: 119},
	"s344":   {pis: 9, pos: 11, dffs: 15, gates: 160},
	"s1423":  {pis: 17, pos: 5, dffs: 74, gates: 657},
	"s5378":  {pis: 35, pos: 49, dffs: 179, gates: 2779},
	"s9234":  {pis: 36, pos: 39, dffs: 211, gates: 5597},
	"s13207": {pis: 62, pos: 152, dffs: 638, gates: 7951},
	"s15850": {pis: 77, pos: 150, dffs: 534, gates: 9772},
	"s35932": {pis: 35, pos: 320, dffs: 1728, gates: 16065},
}

// Names returns every circuit name Benchmark accepts, sorted.
func Names() []string {
	names := []string{"c17", "s27"}
	for k := range catalog {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// PaperCircuits returns the eight circuit names used in the paper's
// evaluation (Tables II–V), in the paper's column order.
func PaperCircuits() []string {
	return []string{"c2670", "c3540", "c5315", "c6288", "s1423", "s13207", "s15850", "s35932"}
}

// Benchmark returns the circuit with the given ISCAS name. c17 and s27
// are exact; c6288 is a real 16×16 array multiplier; all other names are
// deterministic seeded stand-ins matched to the published shape. The
// pattern "soc:<gates>" (optionally "soc:<gates>:<seed>", seed default
// 1) builds a hierarchical synthetic SoC of that size — the scale-path
// test subject, accepted anywhere a circuit name is (htgen -circuit,
// netlistinfo -circuit).
func Benchmark(name string) (*netlist.Netlist, error) {
	switch name {
	case "c17":
		return C17(), nil
	case "s27":
		return S27(), nil
	}
	if rest, ok := strings.CutPrefix(name, "soc:"); ok {
		gatesStr, seedStr, hasSeed := strings.Cut(rest, ":")
		gates, err := strconv.Atoi(gatesStr)
		if err != nil {
			return nil, fmt.Errorf("gen: bad soc gate count %q (want soc:<gates>[:<seed>])", gatesStr)
		}
		seed := int64(1)
		if hasSeed {
			if seed, err = strconv.ParseInt(seedStr, 10, 64); err != nil {
				return nil, fmt.Errorf("gen: bad soc seed %q (want soc:<gates>[:<seed>])", seedStr)
			}
		}
		return SoC(SoCSpec{Name: strings.ReplaceAll(name, ":", "_"), Gates: gates, Seed: seed})
	}
	p, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("gen: unknown benchmark %q (have %v)", name, Names())
	}
	if p.mult > 0 {
		m := Multiplier(p.mult)
		m.Name = name
		return m, nil
	}
	return Random(Spec{
		Name:     name,
		PIs:      p.pis,
		POs:      p.pos,
		DFFs:     p.dffs,
		Gates:    p.gates,
		MaxFanin: 4,
		Seed:     seedFor(name),
	})
}

// MustBenchmark is Benchmark that panics on error; for tests and benches
// where the name is a compile-time constant.
func MustBenchmark(name string) *netlist.Netlist {
	n, err := Benchmark(name)
	if err != nil {
		panic(err)
	}
	return n
}

// seedFor derives a stable per-name seed (FNV-1a).
func seedFor(name string) int64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}
