package gen

import (
	"math/rand"
	"testing"

	"cghti/internal/netlist"
	"cghti/internal/sim"
)

func TestC17Exact(t *testing.T) {
	n := C17()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := n.ComputeStats()
	if s.PIs != 5 || s.POs != 2 || s.Cells != 6 {
		t.Fatalf("c17 stats wrong: %v", s)
	}
	// Every cell is a NAND in c17.
	if s.ByType[netlist.Nand] != 6 {
		t.Fatalf("c17 has %d NANDs, want 6", s.ByType[netlist.Nand])
	}
}

func TestS27Exact(t *testing.T) {
	n := S27()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := n.ComputeStats()
	if s.PIs != 4 || s.POs != 1 || s.DFFs != 3 {
		t.Fatalf("s27 stats wrong: %v", s)
	}
	if s.Cells != 13 { // 10 logic gates + 3 DFFs
		t.Fatalf("s27 cells = %d, want 13", s.Cells)
	}
}

func TestMultiplierCorrectness(t *testing.T) {
	// 4x4 multiplier: exhaustive check of all 256 products.
	n := Multiplier(4)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 16; x++ {
		for y := 0; y < 16; y++ {
			in := map[netlist.GateID]uint8{}
			for i := 0; i < 4; i++ {
				in[n.MustLookup("a"+itoa(i))] = uint8(x >> uint(i) & 1)
				in[n.MustLookup("b"+itoa(i))] = uint8(y >> uint(i) & 1)
			}
			vals, err := sim.Eval(n, in)
			if err != nil {
				t.Fatal(err)
			}
			got := 0
			for k := 0; k < 8; k++ {
				if vals[n.MustLookup("p"+itoa(k))] == 1 {
					got |= 1 << uint(k)
				}
			}
			if got != x*y {
				t.Fatalf("%d * %d = %d, circuit says %d", x, y, x*y, got)
			}
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func TestMultiplier16Shape(t *testing.T) {
	n := Multiplier(16)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := n.ComputeStats()
	if s.PIs != 32 || s.POs != 32 {
		t.Fatalf("16x16 multiplier: %d PI / %d PO, want 32/32", s.PIs, s.POs)
	}
	// c6288 has 2416 gates; the XOR/AND/OR array form lands in the same
	// class (within ~25%).
	if s.Cells < 1800 || s.Cells > 3100 {
		t.Fatalf("16x16 multiplier cells = %d, want c6288-class (~2400)", s.Cells)
	}
	if s.Depth < 20 {
		t.Fatalf("16x16 multiplier depth = %d, suspiciously shallow", s.Depth)
	}
}

func TestMultiplierRandomVsArithmetic(t *testing.T) {
	n := Multiplier(8)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		x, y := rng.Intn(256), rng.Intn(256)
		in := map[netlist.GateID]uint8{}
		for i := 0; i < 8; i++ {
			in[n.MustLookup("a"+itoa(i))] = uint8(x >> uint(i) & 1)
			in[n.MustLookup("b"+itoa(i))] = uint8(y >> uint(i) & 1)
		}
		vals, err := sim.Eval(n, in)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for k := 0; k < 16; k++ {
			if vals[n.MustLookup("p"+itoa(k))] == 1 {
				got |= 1 << uint(k)
			}
		}
		if got != x*y {
			t.Fatalf("%d * %d: got %d", x, y, got)
		}
	}
}

func TestRandomSpecShape(t *testing.T) {
	n, err := Random(Spec{Name: "r1", PIs: 20, POs: 10, DFFs: 5, Gates: 300, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := n.ComputeStats()
	if s.PIs != 20 || s.DFFs != 5 {
		t.Fatalf("shape mismatch: %v", s)
	}
	if s.POs < 10 {
		t.Fatalf("POs = %d, want >= 10", s.POs)
	}
	if s.Cells != 300+5 {
		t.Fatalf("cells = %d, want 305", s.Cells)
	}
	if s.Depth < 5 {
		t.Fatalf("depth = %d, generator produced a too-flat circuit", s.Depth)
	}
}

func TestRandomDeterministic(t *testing.T) {
	spec := Spec{Name: "d", PIs: 10, POs: 5, Gates: 100, Seed: 7}
	a, err := Random(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumGates() != b.NumGates() {
		t.Fatal("same seed, different gate count")
	}
	for i := range a.Gates {
		ga, gb := &a.Gates[i], &b.Gates[i]
		if ga.Name != gb.Name || ga.Type != gb.Type || len(ga.Fanin) != len(gb.Fanin) {
			t.Fatalf("gate %d differs between identical specs", i)
		}
		for j := range ga.Fanin {
			if ga.Fanin[j] != gb.Fanin[j] {
				t.Fatalf("gate %d fanin %d differs", i, j)
			}
		}
	}
}

func TestRandomNoDanglingLogic(t *testing.T) {
	n, err := Random(Spec{Name: "d2", PIs: 15, POs: 8, DFFs: 4, Gates: 200, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for i := range n.Gates {
		g := &n.Gates[i]
		if g.Type == netlist.Input || g.Type == netlist.DFF {
			continue
		}
		if len(g.Fanout) == 0 && !g.IsPO {
			t.Fatalf("gate %s dangles (no fanout, not a PO)", g.Name)
		}
	}
}

func TestRandomSpecErrors(t *testing.T) {
	if _, err := Random(Spec{Gates: 10}); err == nil {
		t.Error("Random accepted 0 PIs")
	}
	if _, err := Random(Spec{PIs: 3}); err == nil {
		t.Error("Random accepted 0 gates")
	}
}

func TestBenchmarkCatalog(t *testing.T) {
	for _, name := range []string{"c17", "s27", "c432", "s298"} {
		n, err := Benchmark(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n.Name != name {
			t.Fatalf("circuit name %q, want %q", n.Name, name)
		}
	}
	if _, err := Benchmark("c9999"); err == nil {
		t.Error("Benchmark accepted an unknown name")
	}
}

func TestBenchmarkMatchesPublishedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("large circuits in -short mode")
	}
	for name, p := range catalog {
		n, err := Benchmark(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := n.ComputeStats()
		if s.PIs != p.pis {
			t.Errorf("%s: %d PIs, want %d", name, s.PIs, p.pis)
		}
		if s.DFFs != p.dffs {
			t.Errorf("%s: %d DFFs, want %d", name, s.DFFs, p.dffs)
		}
		if p.mult == 0 && s.POs < p.pos {
			t.Errorf("%s: %d POs, want >= %d", name, s.POs, p.pos)
		}
		if p.mult == 0 {
			wantCells := p.gates + p.dffs
			if s.Cells != wantCells {
				t.Errorf("%s: %d cells, want %d", name, s.Cells, wantCells)
			}
		}
	}
}

func TestPaperCircuitsAllResolvable(t *testing.T) {
	if testing.Short() {
		t.Skip("large circuits in -short mode")
	}
	for _, name := range PaperCircuits() {
		if _, err := Benchmark(name); err != nil {
			t.Errorf("paper circuit %s: %v", name, err)
		}
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != len(catalog)+2 {
		t.Fatalf("Names() returned %d entries, want %d", len(names), len(catalog)+2)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %q >= %q", names[i-1], names[i])
		}
	}
}

func TestSeedForStable(t *testing.T) {
	if seedFor("c2670") != seedFor("c2670") {
		t.Fatal("seedFor not deterministic")
	}
	if seedFor("c2670") == seedFor("c3540") {
		t.Fatal("seedFor collides on different names")
	}
}
