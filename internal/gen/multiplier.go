package gen

import (
	"fmt"

	"cghti/internal/netlist"
)

// Multiplier builds an n×n unsigned array multiplier (the c6288 circuit
// class — c6288 is the ISCAS85 16×16 array multiplier). Partial products
// are AND gates, reduced by a carry-save array of half and full adders
// built from XOR/AND/OR primitives. The result has 2n primary inputs
// (a0..a(n-1), b0..b(n-1)) and 2n primary outputs (p0..p(2n-1)).
func Multiplier(n int) *netlist.Netlist {
	if n < 2 {
		panic("gen: Multiplier needs n >= 2")
	}
	nl := netlist.New(fmt.Sprintf("mult%dx%d", n, n))

	a := make([]netlist.GateID, n)
	b := make([]netlist.GateID, n)
	for i := 0; i < n; i++ {
		a[i] = nl.MustAddGate(fmt.Sprintf("a%d", i), netlist.Input)
	}
	for i := 0; i < n; i++ {
		b[i] = nl.MustAddGate(fmt.Sprintf("b%d", i), netlist.Input)
	}

	gateN := 0
	newGate := func(t netlist.GateType, fanin ...netlist.GateID) netlist.GateID {
		id := nl.MustAddGate(fmt.Sprintf("m%d", gateN), t)
		gateN++
		for _, f := range fanin {
			nl.Connect(f, id)
		}
		return id
	}

	// The real c6288 is built from NOR gates plus the AND partial-product
	// plane, so the adder cells here use the classic NOR-only forms: the
	// 4-NOR XNOR block, a 6-gate half adder and a 9-gate full adder.
	// This lands the 16×16 instance within ~1.5% of c6288's published
	// 2416-gate size and gives it the same NOR-dominant gate mix.
	xnorNOR := func(x, y netlist.GateID) (xnor, norXY netlist.GateID) {
		g1 := newGate(netlist.Nor, x, y)
		g2 := newGate(netlist.Nor, x, g1)
		g3 := newGate(netlist.Nor, y, g1)
		return newGate(netlist.Nor, g2, g3), g1
	}
	// Half adder: sum = x^y = NOT(xnor), carry = x&y = NOR(nor(x,y), sum).
	halfAdd := func(x, y netlist.GateID) (sum, carry netlist.GateID) {
		xnor, g1 := xnorNOR(x, y)
		sum = newGate(netlist.Not, xnor)
		carry = newGate(netlist.Nor, g1, sum)
		return sum, carry
	}
	// Full adder: sum = x^y^z via two chained XNOR blocks; carry =
	// NOR(nor(x,y), (x^y)&~z) = (x|y)&((x==y)|z), the majority function.
	fullAdd := func(x, y, z netlist.GateID) (sum, carry netlist.GateID) {
		g4, g1 := xnorNOR(x, y) // g4 = x XNOR y
		g5 := newGate(netlist.Nor, g4, z)
		g6 := newGate(netlist.Nor, g4, g5)
		g7 := newGate(netlist.Nor, z, g5)
		sum = newGate(netlist.Nor, g6, g7) // XNOR(g4, z) = x^y^z
		carry = newGate(netlist.Nor, g1, g5)
		return sum, carry
	}

	// cols[k] holds the bits of weight 2^k awaiting reduction.
	cols := make([][]netlist.GateID, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pp := newGate(netlist.And, a[i], b[j])
			cols[i+j] = append(cols[i+j], pp)
		}
	}

	// Ripple-style column reduction (classic array-multiplier shape).
	product := make([]netlist.GateID, 2*n)
	for k := 0; k < 2*n; k++ {
		bits := cols[k]
		for len(bits) > 1 {
			if len(bits) == 2 {
				s, c := halfAdd(bits[0], bits[1])
				bits = []netlist.GateID{s}
				if k+1 < 2*n {
					cols[k+1] = append(cols[k+1], c)
				}
			} else {
				s, c := fullAdd(bits[0], bits[1], bits[2])
				bits = append([]netlist.GateID{s}, bits[3:]...)
				if k+1 < 2*n {
					cols[k+1] = append(cols[k+1], c)
				}
			}
		}
		var out netlist.GateID
		if len(bits) == 1 {
			out = bits[0]
		} else {
			out = nl.MustAddGate(fmt.Sprintf("zero%d", k), netlist.Const0)
		}
		// Buffer each product bit so the PO has a stable dedicated name.
		po := nl.MustAddGate(fmt.Sprintf("p%d", k), netlist.Buf)
		nl.Connect(out, po)
		nl.MarkPO(po)
		product[k] = po
	}

	if err := nl.Levelize(); err != nil {
		panic(err) // construction is acyclic by design
	}
	return nl
}
