package gen

import (
	"fmt"
	"math/rand"

	"cghti/internal/netlist"
)

// Spec describes the shape of a generated pseudo-random circuit.
type Spec struct {
	// Name names the circuit.
	Name string
	// PIs, POs, DFFs and Gates are the target counts. Gates counts
	// combinational cells (DFFs excluded). POs is a minimum: leftover
	// fanout-free nets that cannot be folded back into the logic are
	// promoted to outputs so no logic dangles.
	PIs, POs, DFFs, Gates int
	// MaxFanin bounds gate arity (default 4; minimum 2).
	MaxFanin int
	// Seed makes the circuit deterministic.
	Seed int64
}

// Random generates a cone-structured pseudo-random circuit.
//
// The generator is tuned so generated circuits have the statistical
// properties the paper's algorithms depend on: real logic depth (fanins
// are biased toward recently created nets, which grows chains instead of
// a flat two-level soup), mixed gate arity with a tail of 3- and 4-input
// AND/OR-family gates (which create low-probability nets, i.e. rare-node
// candidates), and full-scan DFF state (DFF outputs are pseudo-PIs).
func Random(spec Spec) (*netlist.Netlist, error) {
	if spec.PIs < 1 {
		return nil, fmt.Errorf("gen: spec needs at least 1 PI")
	}
	if spec.Gates < 1 {
		return nil, fmt.Errorf("gen: spec needs at least 1 gate")
	}
	if spec.MaxFanin < 2 {
		spec.MaxFanin = 4
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	n := netlist.New(spec.Name)

	// Sources: PIs then DFFs (data inputs wired at the end).
	for i := 0; i < spec.PIs; i++ {
		n.MustAddGate(fmt.Sprintf("pi%d", i), netlist.Input)
	}
	for i := 0; i < spec.DFFs; i++ {
		n.MustAddGate(fmt.Sprintf("ff%d", i), netlist.DFF)
	}

	// signals lists every net that can drive a fanin, in creation order.
	signals := make([]netlist.GateID, 0, spec.PIs+spec.DFFs+spec.Gates)
	for i := range n.Gates {
		signals = append(signals, netlist.GateID(i))
	}

	pickFanin := func(count int) []netlist.GateID {
		picked := make([]netlist.GateID, 0, count)
		used := map[netlist.GateID]bool{}
		for len(picked) < count {
			var cand netlist.GateID
			switch {
			case rng.Float64() < 0.40 && len(signals) > 8:
				// Locality: bias toward the most recent half of nets,
				// building depth.
				lo := len(signals) / 2
				cand = signals[lo+rng.Intn(len(signals)-lo)]
			case rng.Float64() < 0.5:
				// Prefer a net that is still unused so logic does not dangle.
				cand = signals[rng.Intn(len(signals))]
				for tries := 0; tries < 4; tries++ {
					if len(n.Gates[cand].Fanout) == 0 {
						break
					}
					cand = signals[rng.Intn(len(signals))]
				}
			default:
				cand = signals[rng.Intn(len(signals))]
			}
			if used[cand] {
				continue
			}
			used[cand] = true
			picked = append(picked, cand)
		}
		return picked
	}

	for i := 0; i < spec.Gates; i++ {
		t, arity := randomGate(rng, spec.MaxFanin)
		id := n.MustAddGate(fmt.Sprintf("g%d", i), t)
		for _, f := range pickFanin(arity) {
			n.Connect(f, id)
		}
		signals = append(signals, id)
	}

	// Wire DFF data inputs, preferring unused nets at decent depth.
	logicStart := spec.PIs + spec.DFFs
	pickLogic := func(preferUnused bool) netlist.GateID {
		for tries := 0; tries < 16; tries++ {
			cand := signals[logicStart+rng.Intn(len(signals)-logicStart)]
			if !preferUnused || len(n.Gates[cand].Fanout) == 0 {
				return cand
			}
		}
		return signals[logicStart+rng.Intn(len(signals)-logicStart)]
	}
	for i := 0; i < spec.DFFs; i++ {
		d := n.MustLookup(fmt.Sprintf("ff%d", i))
		n.Connect(pickLogic(true), d)
	}

	// Primary outputs: fanout-free nets first (deepest first), then —
	// if the circuit is "too connected" — random logic nets.
	var unused []netlist.GateID
	for _, id := range signals[logicStart:] {
		if len(n.Gates[id].Fanout) == 0 && !n.Gates[id].IsPO {
			unused = append(unused, id)
		}
	}
	rng.Shuffle(len(unused), func(a, b int) { unused[a], unused[b] = unused[b], unused[a] })
	pos := 0
	for _, id := range unused {
		if pos >= spec.POs {
			break
		}
		n.MarkPO(id)
		pos++
	}
	for pos < spec.POs {
		id := pickLogic(false)
		if !n.Gates[id].IsPO {
			n.MarkPO(id)
			pos++
		}
	}
	// Remaining fanout-free nets are folded back into the logic as extra
	// fanins of strictly deeper gates (keeps PO count at the published
	// value and keeps every cone alive). Only nets with no deeper
	// consumer available are promoted to extra POs.
	if err := n.Levelize(); err != nil {
		return nil, err
	}
	var wideable []netlist.GateID
	for _, id := range signals[logicStart:] {
		switch n.Gates[id].Type {
		case netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor:
			if len(n.Gates[id].Fanin) <= spec.MaxFanin {
				wideable = append(wideable, id)
			}
		}
	}
	for _, id := range unused {
		if len(n.Gates[id].Fanout) > 0 || n.Gates[id].IsPO {
			continue
		}
		attached := false
		lvl := n.Gates[id].Level
		for tries := 0; tries < 32 && len(wideable) > 0; tries++ {
			g := wideable[rng.Intn(len(wideable))]
			if n.Gates[g].Level > lvl && len(n.Gates[g].Fanin) <= spec.MaxFanin {
				n.Connect(id, g)
				attached = true
				break
			}
		}
		if !attached {
			n.MarkPO(id)
		}
	}

	if err := n.Levelize(); err != nil {
		return nil, err
	}
	return n, nil
}

// randomGate draws a gate type and arity. The distribution approximates
// ISCAS gate mixes: NAND/NOR-heavy with a tail of wide AND/OR gates and
// some XOR/inverters.
func randomGate(rng *rand.Rand, maxFanin int) (netlist.GateType, int) {
	// Inverting 2-input gates (NAND/NOR) pull signal probabilities back
	// toward 0.5 along a path, which is what keeps real ISCAS circuits
	// at ~24% rare nodes (θ=20%); wide AND/OR gates create the rare
	// tail. The mix below reproduces that balance on the generated
	// stand-ins (see EXPERIMENTS.md, Figure 2).
	r := rng.Float64()
	var t netlist.GateType
	switch {
	case r < 0.30:
		t = netlist.Nand
	case r < 0.38:
		t = netlist.And
	case r < 0.60:
		t = netlist.Nor
	case r < 0.66:
		t = netlist.Or
	case r < 0.78:
		t = netlist.Not
	case r < 0.90:
		t = netlist.Xor
	case r < 0.96:
		t = netlist.Xnor
	default:
		t = netlist.Buf
	}
	switch t {
	case netlist.Not, netlist.Buf:
		return t, 1
	}
	arity := 2
	a := rng.Float64()
	switch {
	case a < 0.88:
		arity = 2
	case a < 0.97:
		arity = 3
	default:
		arity = 4
	}
	if arity > maxFanin {
		arity = maxFanin
	}
	return t, arity
}
