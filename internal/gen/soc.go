package gen

import (
	"fmt"
	"math/rand"

	"cghti/internal/netlist"
)

// SoCSpec describes a hierarchical synthetic SoC: a tree of modules
// whose leaves are cone-structured logic blocks, wired together by
// parent-level glue logic. This is the 10⁵–10⁷-gate regime of
// industrial-scale trojan insertion (Popryho et al.), where a design is
// hundreds of blocks with mostly block-local logic and a thinner
// cross-block interconnect.
type SoCSpec struct {
	// Name names the circuit ("soc1m" etc.).
	Name string
	// Gates is the total combinational cell target across all blocks,
	// including glue logic (DFFs excluded).
	Gates int
	// Blocks is the leaf block count (0 = derived from Gates, roughly
	// one block per 4096 gates, clamped to [2, 4096]).
	Blocks int
	// PIs is the top-level primary input count (0 = derived).
	PIs int
	// POs is the minimum primary output count (0 = derived). Dangling
	// nets are always promoted to outputs, so the real count can be
	// higher.
	POs int
	// DFFRatio is the per-block flip-flop count as a fraction of the
	// block's gate count (default 0.08).
	DFFRatio float64
	// MaxFanin bounds gate arity (default 4; minimum 2).
	MaxFanin int
	// Seed makes the SoC deterministic: the same spec always produces
	// the identical netlist, gate for gate.
	Seed int64
}

func (s SoCSpec) withDefaults() SoCSpec {
	if s.Name == "" {
		s.Name = fmt.Sprintf("soc%d", s.Gates)
	}
	if s.Blocks <= 0 {
		s.Blocks = s.Gates / 4096
		if s.Blocks < 2 {
			s.Blocks = 2
		}
		if s.Blocks > 4096 {
			s.Blocks = 4096
		}
	}
	if s.PIs <= 0 {
		s.PIs = s.Gates / 1024
		if s.PIs < 16 {
			s.PIs = 16
		}
	}
	if s.POs <= 0 {
		s.POs = s.Gates / 2048
		if s.POs < 8 {
			s.POs = 8
		}
	}
	if s.DFFRatio <= 0 {
		s.DFFRatio = 0.08
	}
	if s.MaxFanin < 2 {
		s.MaxFanin = 4
	}
	return s
}

// blockPath renders the leaf's position in the module tree (branching
// factor 8) as a hierarchical instance path, e.g. block 37 of 244 →
// "u0_u4_b37". The path is cosmetic — the structural hierarchy is the
// wiring locality — but it keeps generated names readable and mirrors
// how a flattened industrial netlist carries its module tree in net
// names.
func blockPath(i, total int) string {
	path := ""
	for span := total; span > 8; span = (span + 7) / 8 {
		group := i * 8 / span // this level's branch index, 0..7
		path += fmt.Sprintf("u%d_", group)
		// Descend into the group's span.
		lo := group * span / 8
		i -= lo
		span = (group+1)*span/8 - lo
		if span <= 8 {
			break
		}
	}
	return path
}

// SoC generates a hierarchical synthetic SoC netlist. Blocks are
// generated in order; each draws its external inputs from top-level
// PIs and the exported ports of earlier (mostly adjacent) blocks, so
// logic cones are overwhelmingly block-local with a sparse forward
// interconnect — the structure fanout-cone partitioning exploits.
// Generation is single-pass and deterministic in Seed.
func SoC(spec SoCSpec) (*netlist.Netlist, error) {
	spec = spec.withDefaults()
	if spec.Gates < 64 {
		return nil, fmt.Errorf("gen: SoC needs at least 64 gates, got %d", spec.Gates)
	}
	if spec.Blocks*8 > spec.Gates {
		spec.Blocks = spec.Gates / 8
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	n := netlist.New(spec.Name)
	// One up-front allocation for the whole design: growing the gate
	// array incrementally is the dominant cost at 10⁶ gates.
	n.Grow(spec.PIs + spec.Gates + int(float64(spec.Gates)*spec.DFFRatio) + spec.Blocks*4)

	for i := 0; i < spec.PIs; i++ {
		n.MustAddGate(fmt.Sprintf("pi%d", i), netlist.Input)
	}

	// exported collects the nets visible outside their block: top PIs,
	// block output ports, glue nets. Blocks pick external inputs from
	// the most recent window, giving the interconnect its locality.
	exported := make([]netlist.GateID, 0, spec.PIs+spec.Blocks*8)
	for i := 0; i < spec.PIs; i++ {
		exported = append(exported, netlist.GateID(i))
	}

	// Split the gate budget: ~6% goes to parent-level glue logic.
	glueBudget := spec.Gates * 6 / 100
	blockBudget := spec.Gates - glueBudget
	glueEvery := 0
	if glueBudget > 0 {
		glueEvery = glueBudget / spec.Blocks
	}

	pickExported := func() netlist.GateID {
		// 75%: recent window (the previous ~2 blocks' ports), else any.
		if w := len(exported); w > 32 && rng.Float64() < 0.75 {
			return exported[w-1-rng.Intn(32)]
		}
		return exported[rng.Intn(len(exported))]
	}

	for b := 0; b < spec.Blocks; b++ {
		nGates := blockBudget / spec.Blocks
		if b < blockBudget%spec.Blocks {
			nGates++
		}
		nDFFs := int(float64(nGates) * spec.DFFRatio)
		prefix := blockPath(b, spec.Blocks) + fmt.Sprintf("b%d", b)

		// External input ports for this block.
		nIn := nGates / 16
		if nIn < 4 {
			nIn = 4
		}
		ext := make([]netlist.GateID, 0, nIn)
		for len(ext) < nIn {
			ext = append(ext, pickExported())
		}

		ports := genBlock(n, rng, prefix, nGates, nDFFs, ext, spec.MaxFanin)
		exported = append(exported, ports...)

		// Parent glue: combine ports of recent blocks into a few extra
		// nets, modelling the parent module's arbitration/merge logic.
		for j := 0; j < glueEvery && len(exported) >= 2; j++ {
			t, arity := randomGate(rng, spec.MaxFanin)
			id := n.MustAddGate(fmt.Sprintf("%s_glue%d", prefix, j), t)
			for k := 0; k < arity; k++ {
				n.Connect(pickExported(), id)
			}
			exported = append(exported, id)
		}
	}

	// Outputs: every dangling net becomes a PO (no logic dangles), then
	// random exported nets are promoted until the minimum is met.
	for i := range n.Gates {
		g := &n.Gates[i]
		if g.Type == netlist.Input || g.Type == netlist.DFF {
			continue
		}
		if len(g.Fanout) == 0 && !g.IsPO {
			n.MarkPO(netlist.GateID(i))
		}
	}
	for tries := 0; len(n.POs) < spec.POs && tries < 4*spec.POs; tries++ {
		id := exported[rng.Intn(len(exported))]
		if g := &n.Gates[id]; g.Type != netlist.Input && g.Type != netlist.DFF && !g.IsPO {
			n.MarkPO(id)
		}
	}

	if err := n.Levelize(); err != nil {
		return nil, err
	}
	return n, nil
}

// genBlock generates one leaf block: ~nGates combinational cells and
// nDFFs flip-flops under the given name prefix, drawing external
// signals from ext and keeping ~90% of fanin picks block-local.
//
// Block outputs are REGISTERED: the returned ports are DFF nets, so
// every cross-block path crosses a state element. That bounds
// combinational depth at the per-block depth (blocks would otherwise
// chain into multi-thousand-level cones) and — the property fanout-cone
// partitioning depends on — keeps every combinational cone inside its
// block plus a thin glue fringe.
func genBlock(n *netlist.Netlist, rng *rand.Rand, prefix string, nGates, nDFFs int, ext []netlist.GateID, maxFanin int) []netlist.GateID {
	// Reserve a slice of the budget for the fold-back sinks that soak up
	// dangling nets at the end.
	nSink := nGates / 16
	nGates -= nSink
	local := make([]netlist.GateID, 0, nDFFs+nGates+nSink)
	for i := 0; i < nDFFs; i++ {
		local = append(local, n.MustAddGate(fmt.Sprintf("%s_ff%d", prefix, i), netlist.DFF))
	}
	logicStart := len(local)

	pickLocal := func() netlist.GateID {
		// Bias toward the recent half for depth, and toward unused nets
		// so little logic dangles — same tuning as Random.
		switch {
		case rng.Float64() < 0.40 && len(local) > 8:
			lo := len(local) / 2
			return local[lo+rng.Intn(len(local)-lo)]
		case rng.Float64() < 0.5:
			cand := local[rng.Intn(len(local))]
			for tries := 0; tries < 4 && len(n.Gates[cand].Fanout) > 0; tries++ {
				cand = local[rng.Intn(len(local))]
			}
			return cand
		default:
			return local[rng.Intn(len(local))]
		}
	}

	var picked [8]netlist.GateID
	for i := 0; i < nGates; i++ {
		t, arity := randomGate(rng, maxFanin)
		id := n.MustAddGate(fmt.Sprintf("%s_g%d", prefix, i), t)
		got := 0
		for tries := 0; got < arity && tries < 8*arity; tries++ {
			var cand netlist.GateID
			if len(local) == 0 || rng.Float64() < 0.10 {
				cand = ext[rng.Intn(len(ext))]
			} else {
				cand = pickLocal()
			}
			dup := false
			for _, p := range picked[:got] {
				if p == cand {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			picked[got] = cand
			got++
		}
		for _, f := range picked[:got] {
			n.Connect(f, id)
		}
		local = append(local, id)
	}

	// Dangling nets (fanout-free logic, creation order) feed the DFF
	// data inputs first — the state registers ARE the consumers of the
	// block's deepest cones — then fold into XOR reduction sinks
	// (parity/checksum-style logic). Whatever still dangles afterwards
	// is promoted to a primary output by the caller.
	var dangling []netlist.GateID
	for _, id := range local[logicStart:] {
		if len(n.Gates[id].Fanout) == 0 {
			dangling = append(dangling, id)
		}
	}
	di := 0
	for i := 0; i < nDFFs; i++ {
		var src netlist.GateID
		if di < len(dangling) {
			src = dangling[di]
			di++
		} else {
			src = local[logicStart+rng.Intn(len(local)-logicStart)]
		}
		n.Connect(src, local[i])
	}
	rem := dangling[di:]
	for s := 0; s < nSink && len(rem) >= 2; s++ {
		arity := maxFanin
		if arity > len(rem) {
			arity = len(rem)
		}
		id := n.MustAddGate(fmt.Sprintf("%s_x%d", prefix, s), netlist.Xor)
		for _, f := range rem[:arity] {
			n.Connect(f, id)
		}
		rem = append(rem[arity:], id)
		local = append(local, id)
	}

	// Registered output ports: a spread of the block's DFFs. Fall back
	// to logic nets only for blocks too small to carry state.
	nPorts := nGates / 32
	if nPorts < 2 {
		nPorts = 2
	}
	if nPorts > nDFFs && nDFFs > 0 {
		nPorts = nDFFs
	}
	ports := make([]netlist.GateID, 0, nPorts)
	if nDFFs > 0 {
		for i := 0; i < nPorts; i++ {
			ports = append(ports, local[i*nDFFs/nPorts])
		}
	} else {
		for len(ports) < nPorts {
			ports = append(ports, local[logicStart+rng.Intn(len(local)-logicStart)])
		}
	}
	return ports
}
