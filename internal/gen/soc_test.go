package gen

import (
	"reflect"
	"testing"

	"cghti/internal/netlist"
)

func TestSoCDeterministic(t *testing.T) {
	spec := SoCSpec{Gates: 3000, Seed: 11}
	a, err := SoC(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SoC(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Gates, b.Gates) {
		t.Fatal("same spec produced different gate arrays")
	}
	if !reflect.DeepEqual(a.PIs, b.PIs) || !reflect.DeepEqual(a.POs, b.POs) || !reflect.DeepEqual(a.DFFs, b.DFFs) {
		t.Fatal("same spec produced different port lists")
	}

	c, err := SoC(SoCSpec{Gates: 3000, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Gates, c.Gates) {
		t.Fatal("different seeds produced identical netlists")
	}
}

func TestSoCValidAndSized(t *testing.T) {
	spec := SoCSpec{Gates: 20000, Seed: 5}
	n, err := SoC(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := n.ComputeStats()
	// Logic cell target is approximate: the fold-back sink reserve
	// (1/16 per block) is only spent as needed.
	logic := s.Cells - s.DFFs
	if logic < spec.Gates*88/100 || logic > spec.Gates {
		t.Fatalf("logic cells = %d, want ~%d", logic, spec.Gates)
	}
	if s.DFFs == 0 {
		t.Fatal("SoC has no flip-flops")
	}
	if s.POs < 8 {
		t.Fatalf("only %d POs", s.POs)
	}
	// A 20k-gate SoC should split into multiple blocks with real depth.
	if s.Depth < 10 {
		t.Fatalf("depth = %d, suspiciously shallow for %d gates", s.Depth, spec.Gates)
	}
	// No dangling logic: every fanout-free cell must be a PO.
	for i := range n.Gates {
		g := &n.Gates[i]
		if g.Type == netlist.Input || g.Type == netlist.DFF {
			continue
		}
		if len(g.Fanout) == 0 && !g.IsPO {
			t.Fatalf("gate %s dangles", g.Name)
		}
	}
}

func TestSoCBlockKnobs(t *testing.T) {
	n, err := SoC(SoCSpec{Gates: 4000, Blocks: 7, PIs: 40, POs: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(n.PIs) != 40 {
		t.Fatalf("PIs = %d, want 40", len(n.PIs))
	}
	if len(n.POs) < 25 {
		t.Fatalf("POs = %d, want >= 25", len(n.POs))
	}
	// Names carry the block hierarchy.
	if _, ok := n.Lookup("b0_g0"); !ok {
		t.Fatal("expected block-prefixed gate names: b0_g0 missing")
	}
	if _, ok := n.Lookup("b6_g0"); !ok {
		t.Fatal("expected 7 blocks: b6_g0 missing")
	}
}

func TestSoCRejectsTiny(t *testing.T) {
	if _, err := SoC(SoCSpec{Gates: 10}); err == nil {
		t.Fatal("expected error for tiny gate budget")
	}
}
