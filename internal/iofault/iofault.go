// Package iofault is the filesystem seam under the durability-critical
// I/O paths (the job journal and the artifact disk tier). Production
// code takes an FS and is handed the real OS implementation; tests hand
// in a Faulty wrapper that injects deterministic failures — plain
// errors, short writes, torn writes cut at an exact byte offset, and
// lying fsyncs — at an exact operation + path + hit count, in the
// spirit of internal/chaos. The package also provides the bounded
// retry/backoff policy the artifact store wraps its disk reads and
// writes in.
package iofault

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FS is the set of filesystem operations the journal and the artifact
// disk tier perform. Directories are opened with OpenFile (read-only)
// so their entries can be fsynced after a rename.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm fs.FileMode) error
}

// File is the per-handle subset: sequential writes, fsync, close.
type File interface {
	io.Writer
	io.Closer
	Sync() error
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}

// Op identifies the operation a Spec matches.
type Op uint8

const (
	OpOpen Op = iota
	OpWrite
	OpSync
	OpClose
	OpRead
	OpReadDir
	OpRename
	OpRemove
	OpMkdirAll
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpClose:
		return "close"
	case OpRead:
		return "read"
	case OpReadDir:
		return "readdir"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpMkdirAll:
		return "mkdirall"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Kind selects what an injection does.
type Kind uint8

const (
	// KindErr fails the operation with Spec.Err without performing it.
	KindErr Kind = iota
	// KindShortWrite (OpWrite only) writes the first K bytes and
	// returns io.ErrShortWrite.
	KindShortWrite
	// KindTorn (OpWrite only) writes the first K bytes to the
	// underlying file — they are durable — then fails the call with
	// Spec.Err, simulating a crash mid-write.
	KindTorn
	// KindFsyncLie (OpSync only) reports success without syncing.
	KindFsyncLie
)

// Spec is one injection rule: on the OnHit-th operation matching
// Op+Path (1-based; 0 means every match), perform the Kind action.
type Spec struct {
	Op   Op
	Path string // substring match against the operation's path; "" matches all
	Kind Kind
	// K is the byte offset a torn or short write cuts at.
	K int
	// Err is the failure returned for KindErr and KindTorn (a generic
	// *Injected when nil).
	Err error
	// OnHit fires the action only on the OnHit-th matching call
	// (1-based); 0 fires on every matching call.
	OnHit int
}

// Injected is the default injected error; it records where the
// injection fired.
type Injected struct {
	Op   Op
	Path string
	Hit  int
}

// Error implements error.
func (i *Injected) Error() string {
	return fmt.Sprintf("iofault: injected %s fault on %s (hit %d)", i.Op, i.Path, i.Hit)
}

type faultRule struct {
	spec Spec
	hits atomic.Int64
}

// Faulty wraps an FS with deterministic fault injection. Operations not
// matched by any Spec pass through unchanged.
type Faulty struct {
	inner FS
	rules []*faultRule
}

// NewFaulty wraps inner with the given injection rules.
func NewFaulty(inner FS, specs ...Spec) *Faulty {
	f := &Faulty{inner: inner}
	for _, s := range specs {
		f.rules = append(f.rules, &faultRule{spec: s})
	}
	return f
}

// match returns the first firing rule for op+path, counting hits on
// every matching rule.
func (f *Faulty) match(op Op, path string) *faultRule {
	var fired *faultRule
	for _, r := range f.rules {
		if r.spec.Op != op {
			continue
		}
		if r.spec.Path != "" && !strings.Contains(path, r.spec.Path) {
			continue
		}
		n := int(r.hits.Add(1))
		if r.spec.OnHit != 0 && n != r.spec.OnHit {
			continue
		}
		if fired == nil {
			fired = r
		}
	}
	return fired
}

func (f *Faulty) err(r *faultRule, op Op, path string) error {
	if r.spec.Err != nil {
		return r.spec.Err
	}
	return &Injected{Op: op, Path: path, Hit: int(r.hits.Load())}
}

func (f *Faulty) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if r := f.match(OpOpen, name); r != nil && r.spec.Kind == KindErr {
		return nil, f.err(r, OpOpen, name)
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{inner: inner, fs: f, path: name}, nil
}

func (f *Faulty) ReadFile(name string) ([]byte, error) {
	if r := f.match(OpRead, name); r != nil && r.spec.Kind == KindErr {
		return nil, f.err(r, OpRead, name)
	}
	return f.inner.ReadFile(name)
}

func (f *Faulty) ReadDir(name string) ([]fs.DirEntry, error) {
	if r := f.match(OpReadDir, name); r != nil && r.spec.Kind == KindErr {
		return nil, f.err(r, OpReadDir, name)
	}
	return f.inner.ReadDir(name)
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	if r := f.match(OpRename, newpath); r != nil && r.spec.Kind == KindErr {
		return f.err(r, OpRename, newpath)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Faulty) Remove(name string) error {
	if r := f.match(OpRemove, name); r != nil && r.spec.Kind == KindErr {
		return f.err(r, OpRemove, name)
	}
	return f.inner.Remove(name)
}

func (f *Faulty) MkdirAll(path string, perm fs.FileMode) error {
	if r := f.match(OpMkdirAll, path); r != nil && r.spec.Kind == KindErr {
		return f.err(r, OpMkdirAll, path)
	}
	return f.inner.MkdirAll(path, perm)
}

// faultyFile applies write/sync/close rules to one handle.
type faultyFile struct {
	inner File
	fs    *Faulty
	path  string
}

func (f *faultyFile) Write(p []byte) (int, error) {
	r := f.fs.match(OpWrite, f.path)
	if r == nil {
		return f.inner.Write(p)
	}
	switch r.spec.Kind {
	case KindErr:
		return 0, f.fs.err(r, OpWrite, f.path)
	case KindShortWrite, KindTorn:
		k := r.spec.K
		if k > len(p) {
			k = len(p)
		}
		n, err := f.inner.Write(p[:k])
		if err != nil {
			return n, err
		}
		if r.spec.Kind == KindShortWrite {
			return n, io.ErrShortWrite
		}
		return n, f.fs.err(r, OpWrite, f.path)
	}
	return f.inner.Write(p)
}

func (f *faultyFile) Sync() error {
	if r := f.fs.match(OpSync, f.path); r != nil {
		switch r.spec.Kind {
		case KindErr:
			return f.fs.err(r, OpSync, f.path)
		case KindFsyncLie:
			return nil // report success without syncing
		}
	}
	return f.inner.Sync()
}

func (f *faultyFile) Close() error {
	if r := f.fs.match(OpClose, f.path); r != nil && r.spec.Kind == KindErr {
		f.inner.Close()
		return f.fs.err(r, OpClose, f.path)
	}
	return f.inner.Close()
}

// RetryPolicy is a bounded exponential backoff with jitter. The zero
// value retries nothing; callers configure attempts explicitly so every
// retry loop's bound is visible at the call site.
type RetryPolicy struct {
	// Attempts is the total number of tries (1 = no retry).
	Attempts int
	// Base is the first retry's backoff; each subsequent retry doubles
	// it.
	Base time.Duration
	// Jitter is the fraction of each backoff randomized (0..1): the
	// actual sleep is backoff * (1 - Jitter/2 + Jitter*rand).
	Jitter float64
}

// jitterRand is the policy sleep jitter source; seeded once, guarded
// because math/rand.Rand is not concurrency-safe.
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func (p RetryPolicy) sleep(attempt int) {
	if p.Base <= 0 {
		return
	}
	d := p.Base << uint(attempt)
	if p.Jitter > 0 {
		jitterMu.Lock()
		f := 1 - p.Jitter/2 + p.Jitter*jitterRand.Float64()
		jitterMu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	time.Sleep(d)
}

// Do runs op up to Attempts times, sleeping the jittered backoff
// between tries, and returns the number of retries performed (0 when
// the first try succeeded) plus the final error. Errors matched by
// Permanent are returned immediately without retrying.
func (p RetryPolicy) Do(op func() error) (retries int, err error) {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	for i := 0; i < attempts; i++ {
		if i > 0 {
			p.sleep(i - 1)
			retries++
		}
		if err = op(); err == nil || Permanent(err) {
			return retries, err
		}
	}
	return retries, err
}

// Permanent reports whether err is not worth retrying: a missing file
// or a permission failure will not heal on a second try, while a
// transient device error might.
func Permanent(err error) bool {
	return errors.Is(err, fs.ErrNotExist) || errors.Is(err, fs.ErrPermission)
}
