package iofault

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeVia opens path through fsys, writes p, syncs and closes,
// returning the first error.
func writeVia(fsys FS, path string, p []byte) error {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(p); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TestOSPassthrough pins that the real FS round-trips bytes.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := writeVia(OS(), path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := OS().ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
}

// TestKindErr pins that a KindErr spec fails the matching op without
// performing it, and unmatched ops pass through.
func TestKindErr(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("boom")
	fsys := NewFaulty(OS(), Spec{Op: OpWrite, Path: "target", Kind: KindErr, Err: boom})

	// Unmatched path: passes through.
	if err := writeVia(fsys, filepath.Join(dir, "other"), []byte("x")); err != nil {
		t.Fatalf("unmatched write failed: %v", err)
	}
	// Matched path: fails with the configured error.
	if err := writeVia(fsys, filepath.Join(dir, "target"), []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("matched write err = %v, want boom", err)
	}
}

// TestTornWrite pins KindTorn semantics: exactly K bytes land on disk,
// the call errors, and the error identifies the injection.
func TestTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn")
	fsys := NewFaulty(OS(), Spec{Op: OpWrite, Kind: KindTorn, K: 3})
	err := writeVia(fsys, path, []byte("abcdef"))
	var inj *Injected
	if !errors.As(err, &inj) {
		t.Fatalf("err = %v, want *Injected", err)
	}
	if inj.Op != OpWrite {
		t.Fatalf("injected op = %v, want write", inj.Op)
	}
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(data) != "abc" {
		t.Fatalf("on-disk bytes = %q, want first 3 bytes durable", data)
	}
}

// TestShortWrite pins KindShortWrite: K bytes written, io.ErrShortWrite
// returned with the short count.
func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "short")
	fsys := NewFaulty(OS(), Spec{Op: OpWrite, Kind: KindShortWrite, K: 2})
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := f.Write([]byte("abcdef"))
	if n != 2 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Write = (%d, %v), want (2, ErrShortWrite)", n, err)
	}
}

// TestOnHit pins that OnHit fires the rule on exactly the n-th matching
// call — the determinism the journal torn-tail tests rely on.
func TestOnHit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	fsys := NewFaulty(OS(), Spec{Op: OpWrite, Kind: KindErr, OnHit: 2})
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatalf("first write failed: %v", err)
	}
	if _, err := f.Write([]byte("two")); err == nil {
		t.Fatal("second write should have failed")
	}
	if _, err := f.Write([]byte("three")); err != nil {
		t.Fatalf("third write failed: %v", err)
	}
}

// TestFsyncLie pins that KindFsyncLie reports success (the torn-write
// crash simulations depend on the caller believing the sync).
func TestFsyncLie(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaulty(OS(), Spec{Op: OpSync, Kind: KindFsyncLie})
	f, err := fsys.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("lying sync returned %v, want nil", err)
	}
}

// TestRetryPolicy pins Do's counting: transient errors retry up to the
// bound, successes stop early, permanent errors short-circuit.
func TestRetryPolicy(t *testing.T) {
	p := RetryPolicy{Attempts: 3, Base: time.Microsecond}

	// Succeeds on attempt 2: one retry.
	calls := 0
	retries, err := p.Do(func() error {
		calls++
		if calls < 2 {
			return errors.New("transient")
		}
		return nil
	})
	if retries != 1 || err != nil || calls != 2 {
		t.Fatalf("Do = (%d, %v) after %d calls, want (1, nil) after 2", retries, err, calls)
	}

	// Never succeeds: exhausts the bound.
	calls = 0
	retries, err = p.Do(func() error { calls++; return errors.New("transient") })
	if retries != 2 || err == nil || calls != 3 {
		t.Fatalf("Do = (%d, %v) after %d calls, want (2, err) after 3", retries, err, calls)
	}

	// Permanent: no retry at all.
	calls = 0
	retries, err = p.Do(func() error { calls++; return fs.ErrNotExist })
	if retries != 0 || !errors.Is(err, fs.ErrNotExist) || calls != 1 {
		t.Fatalf("Do = (%d, %v) after %d calls, want (0, ErrNotExist) after 1", retries, err, calls)
	}
}

// TestPermanent pins the non-retryable classification.
func TestPermanent(t *testing.T) {
	if !Permanent(fs.ErrNotExist) || !Permanent(fs.ErrPermission) {
		t.Fatal("ErrNotExist and ErrPermission must be permanent")
	}
	if Permanent(errors.New("device hiccup")) {
		t.Fatal("generic errors must be retryable")
	}
}
