package journal

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzJournalReplay feeds arbitrary segment bytes to the replay path.
// Contract under any input — truncations, bit flips, hostile lengths:
// never panic, be deterministic (same bytes, same state), and recover
// exactly the longest valid frame prefix (the consumed prefix reparses
// to the same records with no tear).
func FuzzJournalReplay(f *testing.F) {
	// Seed with a well-formed segment...
	var seg bytes.Buffer
	seg.WriteString(segMagic)
	for _, r := range []Record{
		{Type: EvSubmitted, Job: "job-1", Kind: "generate", Key: "k", Payload: []byte(`{"bench":"x"}`), Time: 1},
		{Type: EvStarted, Job: "job-1", Attempt: 1, Time: 2},
		{Type: EvCompleted, Job: "job-1", Result: "fp", Time: 3},
	} {
		seg.Write(frame(encode(r)))
	}
	good := seg.Bytes()
	f.Add(good)
	// ...its truncations and simple corruptions...
	f.Add(good[:len(good)-3])
	f.Add(good[:segMagicLen+3])
	flipped := append([]byte(nil), good...)
	flipped[segMagicLen+10] ^= 0xFF
	f.Add(flipped)
	// ...and degenerate inputs.
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add([]byte("CGXX junk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, consumed, torn := parseSegment(data)
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d outside [0, %d]", consumed, len(data))
		}
		// The consumed prefix must reparse cleanly to the same records:
		// that is what "longest valid prefix" means.
		if consumed > 0 {
			again, c2, torn2 := parseSegment(data[:consumed])
			if torn2 || c2 != consumed || !reflect.DeepEqual(again, recs) {
				t.Fatalf("valid prefix did not reparse: torn=%v consumed=%d vs %d", torn2, c2, consumed)
			}
		}
		// A fully consumed, untorn segment and a torn one are exclusive.
		if !torn && consumed != len(data) && len(data) > 0 {
			t.Fatalf("untorn parse stopped at %d of %d", consumed, len(data))
		}
		// Replay determinism over the same bytes.
		st1 := ReplaySegments([][]byte{data})
		st2 := ReplaySegments([][]byte{data})
		if !reflect.DeepEqual(st1, st2) {
			t.Fatal("replay of identical bytes diverged")
		}
		if st1.Records != len(recs) {
			t.Fatalf("state records %d != parsed %d", st1.Records, len(recs))
		}
	})
}
