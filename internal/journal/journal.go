// Package journal is the daemon's write-ahead log: an append-only,
// length-framed, checksummed record stream of job lifecycle events.
// Every accepted job is journaled (with its full request payload)
// before the client sees the 202, fsynced, so a crash — including
// kill -9 mid-burst — loses no accepted work: on restart the daemon
// replays the journal and re-enqueues everything that was queued or
// running.
//
// Layout: the journal directory holds numbered segment files
// (journal-00000001.wal, ...). Each segment starts with a 4-byte magic
// and contains frames of [4-byte LE payload length][4-byte LE CRC-32C]
// [payload]; payloads are artifact-codec encodings of Record. Every
// process opens a fresh segment (never appends to a predecessor's, so
// a torn tail from a crash can never swallow new records), rotates by
// size, and compacts terminal jobs away on demand.
//
// Fsync discipline: Submitted and terminal records are fsynced before
// Append returns — the submit acknowledgement and the result are
// durable. Started records are buffered (the OS flushes them; losing
// one to a power cut merely replays the job from scratch, which is
// idempotent). Rotation syncs the outgoing segment before opening the
// next.
//
// Replay is a pure, byte-deterministic fold over the segment frames:
// the same segment bytes always produce the same recovered state. A
// torn or corrupted frame ends that segment's replay — the longest
// valid prefix wins — and is counted, never trusted.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cghti/internal/artifact"
	"cghti/internal/iofault"
	"cghti/internal/obs"
)

// Journal-wide metrics (process default registry: the journal is
// process infrastructure, not per-job work).
var (
	cntAppends     = obs.NewCounter("journal.appends")
	cntFsyncs      = obs.NewCounter("journal.fsyncs")
	cntAppendErrs  = obs.NewCounter("journal.append_errors")
	cntReplayed    = obs.NewCounter("journal.replayed_records")
	cntTornSegs    = obs.NewCounter("journal.torn_segments")
	cntRotations   = obs.NewCounter("journal.rotations")
	cntCompactions = obs.NewCounter("journal.compactions")
)

const (
	// segMagicLen-byte segment header; a file without it replays empty.
	segMagic    = "CGJ1"
	segMagicLen = 4
	// frameHeaderLen frames every record: 4-byte length + 4-byte CRC.
	frameHeaderLen = 8
	// maxRecordBytes caps a frame's declared payload length, so a
	// corrupted length field cannot drive a huge allocation.
	maxRecordBytes = 16 << 20

	// DefaultSegmentBytes is the rotation threshold.
	DefaultSegmentBytes = 4 << 20
)

// crcTable is CRC-32C (Castagnoli), the usual WAL checksum.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EventType is a job lifecycle event.
type EventType uint8

const (
	// EvSubmitted records an accepted job with its full request
	// payload and idempotency key. Fsynced.
	EvSubmitted EventType = 1
	// EvStarted records an execution attempt (1-based). Buffered.
	EvStarted EventType = 2
	// EvCompleted records success with the result fingerprint. Fsynced.
	EvCompleted EventType = 3
	// EvFailed records a failed run. Fsynced.
	EvFailed EventType = 4
	// EvCanceled records a drain- or rejection-canceled job. Fsynced.
	EvCanceled EventType = 5
	// EvPoisoned marks a job that kept crashing the process: after N
	// recovery attempts it is terminal and never re-enqueued. Fsynced.
	EvPoisoned EventType = 6
)

// Record is one journal entry. Only the fields meaningful for the
// event type are encoded (see encode).
type Record struct {
	Type EventType
	Job  string // job ID
	Time int64  // event time, unix nanoseconds

	Kind    string // EvSubmitted: "generate" | "detect"
	Key     string // EvSubmitted: idempotency key ("" if none)
	Payload []byte // EvSubmitted: request JSON

	Attempt int // EvStarted: 1-based attempt number

	Err    string // EvFailed / EvCanceled / EvPoisoned: error text
	Result string // EvCompleted: result fingerprint (hex)
}

// encode renders r with the artifact codec conventions: varints,
// length-prefixed strings, deterministic field order.
func encode(r Record) []byte {
	e := artifact.NewEnc()
	e.U8(uint8(r.Type))
	e.String(r.Job)
	e.Varint(r.Time)
	switch r.Type {
	case EvSubmitted:
		e.String(r.Kind)
		e.String(r.Key)
		e.Bytes(r.Payload)
	case EvStarted:
		e.Int(r.Attempt)
	case EvCompleted:
		e.String(r.Result)
	case EvFailed, EvCanceled, EvPoisoned:
		e.String(r.Err)
	}
	return e.Finish()
}

// decode parses one frame payload; the error covers truncated,
// trailing, or unknown-type payloads.
func decode(p []byte) (Record, error) {
	d := artifact.NewDec(p)
	var r Record
	r.Type = EventType(d.U8())
	r.Job = d.String()
	r.Time = d.Varint()
	switch r.Type {
	case EvSubmitted:
		r.Kind = d.String()
		r.Key = d.String()
		// Copy: the decoder aliases the segment buffer.
		if b := d.Bytes(); len(b) > 0 {
			r.Payload = append([]byte(nil), b...)
		}
	case EvStarted:
		r.Attempt = d.Int()
	case EvCompleted:
		r.Result = d.String()
	case EvFailed, EvCanceled, EvPoisoned:
		r.Err = d.String()
	default:
		return Record{}, fmt.Errorf("journal: unknown event type %d", r.Type)
	}
	if err := d.Finish(); err != nil {
		return Record{}, err
	}
	return r, nil
}

// frame wraps an encoded record payload in the on-disk frame.
func frame(payload []byte) []byte {
	buf := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// Options parameterizes Open.
type Options struct {
	// FS is the filesystem seam (the real OS when nil).
	FS iofault.FS
	// SegmentBytes is the rotation threshold (DefaultSegmentBytes
	// if 0).
	SegmentBytes int64
}

// Journal is an open write-ahead log. All methods are safe for
// concurrent use; appends are serialized.
type Journal struct {
	dir      string
	fs       iofault.FS
	segBytes int64

	mu   sync.Mutex
	f    iofault.File // active segment, nil after Close
	seq  int          // active segment sequence number
	size int64        // bytes written to the active segment
}

// Open creates (or reuses) the journal directory and starts a fresh
// segment after any existing ones. Existing segments are left for
// Replay; Open never appends to them, so a predecessor's torn tail
// cannot swallow this process's records.
func Open(dir string, opt Options) (*Journal, error) {
	if opt.FS == nil {
		opt.FS = iofault.OS()
	}
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if err := opt.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	seqs, err := listSegments(opt.FS, dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if len(seqs) > 0 {
		next = seqs[len(seqs)-1] + 1
	}
	j := &Journal{dir: dir, fs: opt.FS, segBytes: opt.SegmentBytes}
	if err := j.openSegment(next); err != nil {
		return nil, err
	}
	return j, nil
}

// segName renders a segment sequence number as its file name.
func segName(seq int) string { return fmt.Sprintf("journal-%08d.wal", seq) }

// listSegments returns the existing segment sequence numbers in
// ascending order.
func listSegments(fsys iofault.FS, dir string) ([]int, error) {
	des, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(de.Name(), "journal-%08d.wal", &seq); err == nil && segName(seq) == de.Name() {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// openSegment starts segment seq: the file is created with the magic
// header written and synced, so an empty segment is still well-formed.
// Callers hold j.mu (or are the constructor).
func (j *Journal) openSegment(seq int) error {
	f, err := j.fs.OpenFile(filepath.Join(j.dir, segName(seq)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := writeAll(f, []byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	j.f, j.seq, j.size = f, seq, segMagicLen
	return nil
}

// writeAll writes p fully, turning a silent short write into an error.
func writeAll(f iofault.File, p []byte) error {
	n, err := f.Write(p)
	if err != nil {
		return err
	}
	if n != len(p) {
		return fmt.Errorf("journal: short write (%d of %d bytes)", n, len(p))
	}
	return nil
}

// synced reports whether records of type t are fsynced by Append.
func synced(t EventType) bool { return t != EvStarted }

// Append journals one record. Submitted and terminal records are
// durable (fsynced) when Append returns. A write failure abandons the
// current segment — its tail may be torn, and appending after a torn
// frame would hide every later record from replay — rotates to a fresh
// one, and retries the record once.
func (j *Journal) Append(r Record) error {
	if r.Time == 0 {
		r.Time = time.Now().UnixNano()
	}
	buf := frame(encode(r))
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		cntAppendErrs.Inc()
		return fmt.Errorf("journal: closed")
	}
	if j.size+int64(len(buf)) > j.segBytes && j.size > segMagicLen {
		if err := j.rotateLocked(); err != nil {
			cntAppendErrs.Inc()
			return err
		}
	}
	if err := j.writeLocked(buf, synced(r.Type)); err != nil {
		// The active segment may now end in a torn frame. Start a
		// fresh segment and retry once; if that fails too, give up.
		if rerr := j.rotateLocked(); rerr != nil {
			cntAppendErrs.Inc()
			return err
		}
		if err := j.writeLocked(buf, synced(r.Type)); err != nil {
			cntAppendErrs.Inc()
			return err
		}
	}
	cntAppends.Inc()
	return nil
}

// writeLocked appends one framed record to the active segment,
// fsyncing when sync is set. Callers hold j.mu.
func (j *Journal) writeLocked(buf []byte, sync bool) error {
	if err := writeAll(j.f, buf); err != nil {
		return err
	}
	j.size += int64(len(buf))
	if sync {
		if err := j.f.Sync(); err != nil {
			return err
		}
		cntFsyncs.Inc()
	}
	return nil
}

// rotateLocked closes the active segment (best-effort sync) and opens
// the next one. Callers hold j.mu.
func (j *Journal) rotateLocked() error {
	j.f.Sync()
	j.f.Close()
	j.f = nil
	if err := j.openSegment(j.seq + 1); err != nil {
		return err
	}
	cntRotations.Inc()
	return nil
}

// Sync fsyncs the active segment.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	cntFsyncs.Inc()
	return nil
}

// Close syncs and closes the active segment. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	j.f.Sync()
	err := j.f.Close()
	j.f = nil
	return err
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Segments returns the number of segment files currently on disk.
func (j *Journal) Segments() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	seqs, err := listSegments(j.fs, j.dir)
	if err != nil {
		return 0
	}
	return len(seqs)
}

// Status is a job's journal-derived lifecycle state. The string values
// match internal/serve's statuses so the daemon maps them 1:1.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
	StatusPoisoned Status = "poisoned"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	switch s {
	case StatusDone, StatusFailed, StatusCanceled, StatusPoisoned:
		return true
	}
	return false
}

// JobState is one job's replayed state.
type JobState struct {
	ID      string
	Kind    string
	Key     string
	Payload []byte
	Status  Status
	// Attempts is the number of Started records seen (the highest
	// attempt number, so compacted journals replay identically).
	Attempts    int
	Err         string
	Result      string // completed-result fingerprint
	SubmittedAt int64  // unix nanoseconds
	FinishedAt  int64  // unix nanoseconds, 0 while live
}

// State is the journal's replayed aggregate.
type State struct {
	// Jobs maps job ID to state; Order lists IDs in first-submitted
	// order.
	Jobs  map[string]*JobState
	Order []string
	// Records is the number of valid frames folded in.
	Records int
	// TornSegments counts segments whose replay ended early at a
	// torn or corrupt frame (the valid prefix was kept).
	TornSegments int
}

func newState() *State { return &State{Jobs: make(map[string]*JobState)} }

// apply folds one record into the state. The fold is tolerant of the
// duplicates a crash during compaction can produce: a second Submitted
// for a known job is ignored, attempts take the maximum, and terminal
// events are last-write-wins.
func (st *State) apply(r Record) {
	js, ok := st.Jobs[r.Job]
	if !ok {
		js = &JobState{ID: r.Job, Status: StatusQueued}
		st.Jobs[r.Job] = js
		st.Order = append(st.Order, r.Job)
	}
	switch r.Type {
	case EvSubmitted:
		if js.Kind == "" {
			js.Kind, js.Key, js.Payload = r.Kind, r.Key, r.Payload
			js.SubmittedAt = r.Time
		}
	case EvStarted:
		if !js.Status.Terminal() {
			js.Status = StatusRunning
		}
		if r.Attempt > js.Attempts {
			js.Attempts = r.Attempt
		}
	case EvCompleted:
		js.Status, js.Result, js.Err, js.FinishedAt = StatusDone, r.Result, "", r.Time
	case EvFailed:
		js.Status, js.Err, js.FinishedAt = StatusFailed, r.Err, r.Time
	case EvCanceled:
		js.Status, js.Err, js.FinishedAt = StatusCanceled, r.Err, r.Time
	case EvPoisoned:
		js.Status, js.Err, js.FinishedAt = StatusPoisoned, r.Err, r.Time
	}
}

// parseSegment reads frames from one segment's bytes, returning the
// decoded records, the byte offset of the first invalid frame (== the
// consumed length when the whole segment is valid), and whether the
// segment was torn. It never panics on arbitrary input — a missing
// magic, an over-long or truncated frame, a CRC mismatch, or an
// undecodable payload all just end the parse at the longest valid
// prefix.
func parseSegment(data []byte) (recs []Record, consumed int, torn bool) {
	if len(data) < segMagicLen || string(data[:segMagicLen]) != segMagic {
		return nil, 0, len(data) > 0
	}
	off := segMagicLen
	for {
		if off == len(data) {
			return recs, off, false
		}
		if len(data)-off < frameHeaderLen {
			return recs, off, true
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordBytes || n > len(data)-off-frameHeaderLen {
			return recs, off, true
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return recs, off, true
		}
		r, err := decode(payload)
		if err != nil {
			return recs, off, true
		}
		recs = append(recs, r)
		off += frameHeaderLen + n
	}
}

// ReplaySegments folds segment byte slices (in segment order) into a
// State. It is a pure function of its input: the same bytes always
// produce the same state, and arbitrary (truncated, bit-flipped)
// input never panics — each segment contributes its longest valid
// prefix.
func ReplaySegments(segments [][]byte) *State {
	st := newState()
	for _, seg := range segments {
		recs, _, torn := parseSegment(seg)
		if torn {
			st.TornSegments++
		}
		for _, r := range recs {
			st.apply(r)
		}
		st.Records += len(recs)
	}
	return st
}

// Replay reads every segment on disk (including the active one) and
// folds it into a State.
func (j *Journal) Replay() (*State, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.replayLocked()
}

func (j *Journal) replayLocked() (*State, error) {
	seqs, err := listSegments(j.fs, j.dir)
	if err != nil {
		return nil, err
	}
	segs := make([][]byte, 0, len(seqs))
	for _, seq := range seqs {
		data, err := j.fs.ReadFile(filepath.Join(j.dir, segName(seq)))
		if err != nil {
			if iofault.Permanent(err) {
				continue // raced a compaction's unlink
			}
			return nil, err
		}
		segs = append(segs, data)
	}
	st := ReplaySegments(segs)
	cntReplayed.Add(int64(st.Records))
	cntTornSegs.Add(int64(st.TornSegments))
	return st, nil
}

// Compact rewrites the journal to the minimal record set: every
// non-terminal job keeps its Submitted (and a summarizing Started),
// and a terminal job survives only when keep says so — the daemon
// passes its retention set, so long-forgotten jobs stop costing disk.
// The compacted records are written to a fresh segment and synced
// before the old segments are unlinked; a crash in between merely
// leaves duplicates, which replay folds idempotently.
func (j *Journal) Compact(keep func(*JobState) bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	// Flush the active segment so replay sees every appended record.
	if err := j.f.Sync(); err != nil {
		return err
	}
	st, err := j.replayLocked()
	if err != nil {
		return err
	}
	oldSeqs, err := listSegments(j.fs, j.dir)
	if err != nil {
		return err
	}

	// Retire the active segment and write the compacted records into
	// the next one.
	j.f.Close()
	j.f = nil
	if err := j.openSegment(j.seq + 1); err != nil {
		return err
	}
	for _, id := range st.Order {
		js := st.Jobs[id]
		if js.Status.Terminal() && keep != nil && !keep(js) {
			continue
		}
		for _, r := range compactRecords(js) {
			if err := j.writeLocked(frame(encode(r)), false); err != nil {
				return err
			}
		}
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	cntFsyncs.Inc()

	// The compacted segment is durable; the originals can go.
	for _, seq := range oldSeqs {
		if seq < j.seq {
			j.fs.Remove(filepath.Join(j.dir, segName(seq)))
		}
	}
	cntCompactions.Inc()
	return nil
}

// compactRecords renders a job's state as the minimal record sequence
// that replays back to it.
func compactRecords(js *JobState) []Record {
	recs := []Record{{
		Type: EvSubmitted, Job: js.ID, Time: js.SubmittedAt,
		Kind: js.Kind, Key: js.Key, Payload: js.Payload,
	}}
	if js.Attempts > 0 {
		recs = append(recs, Record{Type: EvStarted, Job: js.ID, Time: js.SubmittedAt, Attempt: js.Attempts})
	}
	switch js.Status {
	case StatusDone:
		recs = append(recs, Record{Type: EvCompleted, Job: js.ID, Time: js.FinishedAt, Result: js.Result})
	case StatusFailed:
		recs = append(recs, Record{Type: EvFailed, Job: js.ID, Time: js.FinishedAt, Err: js.Err})
	case StatusCanceled:
		recs = append(recs, Record{Type: EvCanceled, Job: js.ID, Time: js.FinishedAt, Err: js.Err})
	case StatusPoisoned:
		recs = append(recs, Record{Type: EvPoisoned, Job: js.ID, Time: js.FinishedAt, Err: js.Err})
	}
	return recs
}
