package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cghti/internal/iofault"
)

// submitRec is a convenience EvSubmitted record.
func submitRec(job string, payload string) Record {
	return Record{Type: EvSubmitted, Job: job, Kind: "generate", Key: "k-" + job, Payload: []byte(payload), Time: 1}
}

// TestRoundTrip pins that appended records replay back to the same job
// states through a close/reopen cycle.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		submitRec("job-1", `{"bench":"x"}`),
		{Type: EvStarted, Job: "job-1", Attempt: 1, Time: 2},
		{Type: EvCompleted, Job: "job-1", Result: "fp1", Time: 3},
		submitRec("job-2", `{"bench":"y"}`),
		{Type: EvStarted, Job: "job-2", Attempt: 1, Time: 5},
		submitRec("job-3", `{"bench":"z"}`),
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen (fresh segment) and replay everything.
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st, err := j2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if st.TornSegments != 0 {
		t.Fatalf("torn segments = %d, want 0", st.TornSegments)
	}
	if got := st.Order; !reflect.DeepEqual(got, []string{"job-1", "job-2", "job-3"}) {
		t.Fatalf("order = %v", got)
	}
	j1 := st.Jobs["job-1"]
	if j1.Status != StatusDone || j1.Result != "fp1" || j1.Attempts != 1 || j1.Key != "k-job-1" {
		t.Fatalf("job-1 state = %+v", j1)
	}
	if string(j1.Payload) != `{"bench":"x"}` {
		t.Fatalf("job-1 payload = %q", j1.Payload)
	}
	if st.Jobs["job-2"].Status != StatusRunning {
		t.Fatalf("job-2 status = %s, want running", st.Jobs["job-2"].Status)
	}
	if st.Jobs["job-3"].Status != StatusQueued {
		t.Fatalf("job-3 status = %s, want queued", st.Jobs["job-3"].Status)
	}
}

// TestRotation pins that appends rotate segments at the size threshold
// and replay spans all of them.
func TestRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 50; i++ {
		if err := j.Append(submitRec(fmt.Sprintf("job-%d", i), "payload-payload-payload")); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.Segments(); got < 2 {
		t.Fatalf("segments = %d, want rotation to have happened", got)
	}
	st, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Jobs) != 50 {
		t.Fatalf("replayed jobs = %d, want 50", len(st.Jobs))
	}
}

// TestCompaction pins that Compact drops unkept terminal jobs, keeps
// live and kept ones, shrinks to one segment, and replays identically.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("job-%d", i)
		j.Append(submitRec(id, "p"))
		j.Append(Record{Type: EvStarted, Job: id, Attempt: 1})
		j.Append(Record{Type: EvCompleted, Job: id, Result: "fp"})
	}
	j.Append(submitRec("live", "p"))
	j.Append(Record{Type: EvStarted, Job: "live", Attempt: 2})

	keepID := "job-7"
	if err := j.Compact(func(js *JobState) bool { return js.ID == keepID }); err != nil {
		t.Fatal(err)
	}
	if got := j.Segments(); got != 1 {
		t.Fatalf("segments after compact = %d, want 1", got)
	}
	st, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Jobs) != 2 {
		t.Fatalf("jobs after compact = %d, want 2 (kept + live)", len(st.Jobs))
	}
	if st.Jobs[keepID] == nil || st.Jobs[keepID].Status != StatusDone {
		t.Fatalf("kept job missing or wrong: %+v", st.Jobs[keepID])
	}
	live := st.Jobs["live"]
	if live == nil || live.Status != StatusRunning || live.Attempts != 2 {
		t.Fatalf("live job state = %+v, want running with 2 attempts", live)
	}

	// Appends continue on the compacted journal.
	if err := j.Append(Record{Type: EvCompleted, Job: "live", Result: "fp2"}); err != nil {
		t.Fatal(err)
	}
	st2, _ := j.Replay()
	if st2.Jobs["live"].Status != StatusDone {
		t.Fatal("append after compact not replayed")
	}
}

// TestDuplicateTolerance pins the crash-during-compaction contract:
// replaying the same records twice (old segment not yet unlinked) folds
// to the same state as once.
func TestDuplicateTolerance(t *testing.T) {
	recs := []Record{
		submitRec("job-1", "p"),
		{Type: EvStarted, Job: "job-1", Attempt: 1, Time: 2},
		{Type: EvFailed, Job: "job-1", Err: "boom", Time: 3},
	}
	once := newState()
	for _, r := range recs {
		once.apply(r)
	}
	twice := newState()
	for _, r := range recs {
		twice.apply(r)
	}
	for _, r := range recs {
		twice.apply(r)
	}
	if !reflect.DeepEqual(once.Jobs["job-1"], twice.Jobs["job-1"]) {
		t.Fatalf("duplicated fold diverged:\nonce:  %+v\ntwice: %+v", once.Jobs["job-1"], twice.Jobs["job-1"])
	}
}

// TestTornTailDeterminism pins the tentpole's byte-determinism claim
// under injected torn writes: a crash mid-frame leaves a tail that
// replay cuts at the longest valid prefix, the same way every time, and
// a new process's records (fresh segment) are unaffected.
func TestTornTailDeterminism(t *testing.T) {
	dir := t.TempDir()
	// Two good appends pass; the third record's frame is torn 5 bytes in.
	fsys := iofault.NewFaulty(iofault.OS(),
		iofault.Spec{Op: iofault.OpWrite, Path: ".wal", Kind: iofault.KindTorn, K: 5, OnHit: 4},
	)
	j, err := Open(dir, Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(submitRec("job-1", "p"))                                        // hit 2 (magic was hit 1)
	j.Append(Record{Type: EvCompleted, Job: "job-1", Result: "fp", Time: 2}) // hit 3
	// Hit 4: torn mid-frame. Append rotates and retries, so the record
	// still lands (in the next segment) and Append succeeds.
	if err := j.Append(submitRec("job-2", "q")); err != nil {
		t.Fatalf("append after torn write should rotate and succeed: %v", err)
	}
	j.Close()

	// The first segment ends in a torn frame; replay must cut it and
	// still see job-2 from the follow-up segment.
	readSegs := func() [][]byte {
		seqs, err := listSegments(iofault.OS(), dir)
		if err != nil {
			t.Fatal(err)
		}
		var segs [][]byte
		for _, seq := range seqs {
			data, err := os.ReadFile(filepath.Join(dir, segName(seq)))
			if err != nil {
				t.Fatal(err)
			}
			segs = append(segs, data)
		}
		return segs
	}
	st1 := ReplaySegments(readSegs())
	st2 := ReplaySegments(readSegs())
	if !reflect.DeepEqual(st1, st2) {
		t.Fatal("replay of identical bytes diverged")
	}
	if st1.TornSegments != 1 {
		t.Fatalf("torn segments = %d, want 1", st1.TornSegments)
	}
	if st1.Jobs["job-1"] == nil || st1.Jobs["job-1"].Status != StatusDone {
		t.Fatalf("job-1 lost or wrong after torn tail: %+v", st1.Jobs["job-1"])
	}
	if st1.Jobs["job-2"] == nil || st1.Jobs["job-2"].Status != StatusQueued {
		t.Fatalf("job-2 (post-rotation) lost: %+v", st1.Jobs["job-2"])
	}
}

// TestAppendAfterClose pins the closed-journal error.
func TestAppendAfterClose(t *testing.T) {
	j, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(submitRec("job-1", "p")); err == nil {
		t.Fatal("append after close should fail")
	}
}

// TestOpenNeverAppendsToOldSegment pins the fresh-segment-per-process
// rule: reopening creates a new file rather than appending, so a torn
// tail can never swallow a successor's records.
func TestOpenNeverAppendsToOldSegment(t *testing.T) {
	dir := t.TempDir()
	j1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j1.Append(submitRec("job-1", "p"))
	j1.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Segments(); got != 2 {
		t.Fatalf("segments after reopen = %d, want 2", got)
	}
}

// TestReplayEmptyDir pins that a journal with no history replays empty.
func TestReplayEmptyDir(t *testing.T) {
	j, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	st, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Jobs) != 0 || st.TornSegments != 0 {
		t.Fatalf("fresh journal replayed %d jobs, %d torn", len(st.Jobs), st.TornSegments)
	}
}

// TestAppendErrRotates pins that a plain write error mid-append
// abandons the segment and retries on a fresh one rather than failing
// the append.
func TestAppendErrRotates(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("disk hiccup")
	fsys := iofault.NewFaulty(iofault.OS(),
		iofault.Spec{Op: iofault.OpWrite, Path: ".wal", Kind: iofault.KindErr, Err: boom, OnHit: 2},
	)
	j, err := Open(dir, Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(submitRec("job-1", "p")); err != nil {
		t.Fatalf("append should survive one write error via rotation: %v", err)
	}
	st, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs["job-1"] == nil {
		t.Fatal("record lost after rotate-retry")
	}
}
