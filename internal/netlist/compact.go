package netlist

import "fmt"

// Compact is the arena (struct-of-arrays / CSR) form of a netlist. Where
// Netlist spends two slice headers and two backing arrays per gate,
// Compact stores every gate's fanin and fanout in two shared index
// arenas addressed by per-gate offset ranges. At a million gates this
// is the difference between a cache-hostile pointer chase per edge and
// four flat arrays the prefetcher can stream, and it cuts resident
// memory by roughly 3x (see DESIGN.md, "Compact netlist memory
// layout").
//
// GateIDs are shared with the pointer form: CompactOf preserves IDs, so
// per-gate data computed against one form indexes directly into the
// other. The streaming .bench parser (internal/bench.ParseStream)
// produces a Compact directly, without ever materializing per-gate
// slices.
type Compact struct {
	// Name is the circuit name.
	Name string
	// Names[g] is gate g's net name.
	Names []string
	// Types[g] is gate g's primitive function.
	Types []GateType
	// FaninStart has len NumGates+1; gate g's fanins are
	// FaninIdx[FaninStart[g]:FaninStart[g+1]], in port order.
	FaninStart []int32
	FaninIdx   []GateID
	// FanoutStart/FanoutIdx mirror the fanin arenas for consumers.
	FanoutStart []int32
	FanoutIdx   []GateID
	// Level[g] is the logic level assigned by Levelize (-1 before).
	Level []int32
	// PIs, POs and DFFs list the special gates in declaration order,
	// exactly as in Netlist.
	PIs, POs, DFFs []GateID
	// POMask[g] reports whether gate g drives a primary output.
	POMask []bool

	topo      []GateID
	levelized bool
}

// CompactOf converts the pointer form to the arena form, preserving
// gate IDs, port order, fanout insertion order and (when n is already
// levelized) the cached levels and topological order.
func CompactOf(n *Netlist) *Compact {
	num := len(n.Gates)
	c := &Compact{
		Name:        n.Name,
		Names:       make([]string, num),
		Types:       make([]GateType, num),
		FaninStart:  make([]int32, num+1),
		FanoutStart: make([]int32, num+1),
		Level:       make([]int32, num),
		PIs:         append([]GateID(nil), n.PIs...),
		POs:         append([]GateID(nil), n.POs...),
		DFFs:        append([]GateID(nil), n.DFFs...),
		POMask:      make([]bool, num),
	}
	var nin, nout int32
	for i := range n.Gates {
		g := &n.Gates[i]
		c.Names[i] = g.Name
		c.Types[i] = g.Type
		c.Level[i] = g.Level
		c.POMask[i] = g.IsPO
		c.FaninStart[i] = nin
		c.FanoutStart[i] = nout
		nin += int32(len(g.Fanin))
		nout += int32(len(g.Fanout))
	}
	c.FaninStart[num] = nin
	c.FanoutStart[num] = nout
	c.FaninIdx = make([]GateID, 0, nin)
	c.FanoutIdx = make([]GateID, 0, nout)
	for i := range n.Gates {
		c.FaninIdx = append(c.FaninIdx, n.Gates[i].Fanin...)
		c.FanoutIdx = append(c.FanoutIdx, n.Gates[i].Fanout...)
	}
	if n.levelized && n.topo != nil {
		c.topo = append([]GateID(nil), n.topo...)
		c.levelized = true
	}
	return c
}

// NumGates returns the number of gates (including PIs, constants, DFFs).
func (c *Compact) NumGates() int { return len(c.Types) }

// NumEdges returns the number of wires (fanin arena length).
func (c *Compact) NumEdges() int { return len(c.FaninIdx) }

// FaninOf returns gate id's fanin list (a view into the arena; do not
// modify).
func (c *Compact) FaninOf(id GateID) []GateID {
	return c.FaninIdx[c.FaninStart[id]:c.FaninStart[id+1]]
}

// FanoutOf returns gate id's fanout list (a view into the arena).
func (c *Compact) FanoutOf(id GateID) []GateID {
	return c.FanoutIdx[c.FanoutStart[id]:c.FanoutStart[id+1]]
}

// TypeOf returns gate id's primitive function.
func (c *Compact) TypeOf(id GateID) GateType { return c.Types[id] }

// NameOf returns gate id's net name.
func (c *Compact) NameOf(id GateID) string { return c.Names[id] }

// IsPO reports whether gate id drives a primary output.
func (c *Compact) IsPO(id GateID) bool { return c.POMask[id] }

// CombInputs returns the combinational (full-scan) inputs: PIs followed
// by DFF outputs, matching Netlist.CombInputs.
func (c *Compact) CombInputs() []GateID {
	out := make([]GateID, 0, len(c.PIs)+len(c.DFFs))
	out = append(out, c.PIs...)
	out = append(out, c.DFFs...)
	return out
}

// CombOutputs returns the combinational outputs: PO drivers followed by
// DFF data drivers, matching Netlist.CombOutputs.
func (c *Compact) CombOutputs() []GateID {
	out := append([]GateID(nil), c.POs...)
	for _, d := range c.DFFs {
		out = append(out, c.FaninOf(d)...)
	}
	return out
}

// Levelize assigns logic levels and caches a topological order with the
// same semantics (and the same resulting order) as Netlist.Levelize:
// Kahn's algorithm with a FIFO queue seeded in ascending gate order,
// DFFs and sources at level 0.
func (c *Compact) Levelize() error {
	if c.levelized && c.topo != nil {
		return nil
	}
	num := c.NumGates()
	indeg := make([]int32, num)
	for i := 0; i < num; i++ {
		t := c.Types[i]
		if t == DFF || t.IsSource() {
			continue
		}
		indeg[i] = c.FaninStart[i+1] - c.FaninStart[i]
	}
	// One backing array serves as both the FIFO and the resulting topo
	// order: pushed gates are never removed, only a head index advances.
	topo := make([]GateID, 0, num)
	for i := 0; i < num; i++ {
		if indeg[i] == 0 {
			topo = append(topo, GateID(i))
		}
	}
	for head := 0; head < len(topo); head++ {
		id := topo[head]
		t := c.Types[id]
		if t == DFF || t.IsSource() {
			c.Level[id] = 0
		} else {
			var lvl int32
			for _, f := range c.FaninOf(id) {
				fl := c.Level[f]
				if ft := c.Types[f]; ft == DFF || ft.IsSource() {
					fl = 0
				}
				if fl >= lvl {
					lvl = fl
				}
			}
			c.Level[id] = lvl + 1
		}
		for _, s := range c.FanoutOf(id) {
			if st := c.Types[s]; st == DFF || st.IsSource() {
				continue
			}
			indeg[s]--
			if indeg[s] == 0 {
				topo = append(topo, s)
			}
		}
	}
	if len(topo) != num {
		return fmt.Errorf("netlist %q: combinational cycle detected (%d of %d gates ordered)",
			c.Name, len(topo), num)
	}
	c.topo = topo
	c.levelized = true
	return nil
}

// TopoOrder returns the cached topological order, levelizing first if
// needed. The returned slice must not be modified.
func (c *Compact) TopoOrder() ([]GateID, error) {
	if err := c.Levelize(); err != nil {
		return nil, err
	}
	return c.topo, nil
}

// MaxLevel returns the largest logic level. The netlist must be
// levelized.
func (c *Compact) MaxLevel() int32 {
	var m int32
	for _, l := range c.Level {
		if l > m {
			m = l
		}
	}
	return m
}

// LevelHistogram returns the gate count per logic level (index = level),
// levelizing first if needed. Returns nil on a cyclic netlist.
func (c *Compact) LevelHistogram() []int {
	if err := c.Levelize(); err != nil {
		return nil
	}
	hist := make([]int, c.MaxLevel()+1)
	for _, l := range c.Level {
		hist[l]++
	}
	return hist
}

// EstimatedBytes estimates the resident memory of the arena form:
// backing arrays plus name bytes. Slice headers and allocator slack are
// not counted.
func (c *Compact) EstimatedBytes() int64 {
	var names int64
	for _, s := range c.Names {
		names += int64(len(s)) + 16 // string header
	}
	num := int64(c.NumGates())
	edges := int64(len(c.FaninIdx) + len(c.FanoutIdx))
	ids := int64(len(c.PIs) + len(c.POs) + len(c.DFFs) + len(c.topo))
	return names +
		num + // Types
		2*4*(num+1) + // FaninStart + FanoutStart
		4*edges + // FaninIdx + FanoutIdx
		4*num + // Level
		num + // POMask
		4*ids
}

// Validate checks the structural invariants the pointer form's Validate
// enforces, minus the edge-mirroring check (arena construction
// guarantees it): arity per gate type, index ranges, PI/output
// presence, PO list consistency, and acyclicity.
func (c *Compact) Validate() error {
	num := c.NumGates()
	for i := 0; i < num; i++ {
		fanins := int(c.FaninStart[i+1] - c.FaninStart[i])
		t := c.Types[i]
		switch t {
		case Input, Const0, Const1:
			if fanins != 0 {
				return fmt.Errorf("netlist %q invalid: %s %q has %d fanins, want 0", c.Name, t, c.Names[i], fanins)
			}
		case Buf, Not, DFF:
			if fanins != 1 {
				return fmt.Errorf("netlist %q invalid: %s %q has %d fanins, want 1", c.Name, t, c.Names[i], fanins)
			}
		case And, Nand, Or, Nor, Xor, Xnor:
			if fanins < 1 {
				return fmt.Errorf("netlist %q invalid: %s %q has no fanins", c.Name, t, c.Names[i])
			}
		default:
			return fmt.Errorf("netlist %q invalid: gate %q has unknown type %d", c.Name, c.Names[i], t)
		}
	}
	for _, f := range c.FaninIdx {
		if f < 0 || int(f) >= num {
			return fmt.Errorf("netlist %q invalid: fanin ID %d out of range", c.Name, f)
		}
	}
	if len(c.PIs) == 0 {
		return fmt.Errorf("netlist %q invalid: no primary inputs", c.Name)
	}
	if len(c.POs) == 0 && len(c.DFFs) == 0 {
		return fmt.Errorf("netlist %q invalid: no outputs (primary or pseudo)", c.Name)
	}
	for _, id := range c.POs {
		if id < 0 || int(id) >= num || !c.POMask[id] {
			return fmt.Errorf("netlist %q invalid: PO list inconsistent at %d", c.Name, id)
		}
	}
	return c.Levelize()
}

// ToNetlist expands the arena form back to the pointer form (fresh
// per-gate slices, rebuilt name index), carrying over cached levels and
// topological order. Use when an API needs *Netlist; large netlists
// should stay Compact as long as possible.
func (c *Compact) ToNetlist() (*Netlist, error) {
	num := c.NumGates()
	n := &Netlist{
		Name:   c.Name,
		Gates:  make([]Gate, num),
		PIs:    append([]GateID(nil), c.PIs...),
		POs:    append([]GateID(nil), c.POs...),
		DFFs:   append([]GateID(nil), c.DFFs...),
		byName: make(map[string]GateID, num),
	}
	for i := 0; i < num; i++ {
		name := c.Names[i]
		if prev, dup := n.byName[name]; dup {
			return nil, fmt.Errorf("netlist %q: gates %d and %d share name %q", c.Name, prev, i, name)
		}
		n.byName[name] = GateID(i)
		n.Gates[i] = Gate{
			Name:   name,
			Type:   c.Types[i],
			Fanin:  append([]GateID(nil), c.FaninOf(GateID(i))...),
			Fanout: append([]GateID(nil), c.FanoutOf(GateID(i))...),
			Level:  c.Level[i],
			IsPO:   c.POMask[i],
		}
	}
	if c.levelized && c.topo != nil {
		n.topo = append([]GateID(nil), c.topo...)
		n.levelized = true
	}
	return n, nil
}
