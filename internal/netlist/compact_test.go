package netlist

import (
	"fmt"
	"reflect"
	"testing"
)

// buildTestNetlist wires a small sequential circuit exercising every
// structural feature: multi-fanout PIs, a DFF, constants, a PO that
// also has fanout.
func buildTestNetlist(t testing.TB) *Netlist {
	t.Helper()
	n := New("compact_test")
	a := n.MustAddGate("a", Input)
	b := n.MustAddGate("b", Input)
	d := n.MustAddGate("ff", DFF)
	one := n.MustAddGate("one", Const1)
	g1 := n.MustAddGate("g1", Nand)
	g2 := n.MustAddGate("g2", Or)
	g3 := n.MustAddGate("g3", Not)
	n.Connect(a, g1)
	n.Connect(b, g1)
	n.Connect(g1, g2)
	n.Connect(d, g2)
	n.Connect(one, g2)
	n.Connect(g2, g3)
	n.Connect(g2, d) // DFF data input
	n.MarkPO(g2)
	n.MarkPO(g3)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

// chainNetlist builds a deep chain with fanout, sized for the
// allocation benchmark.
func chainNetlist(gates int) *Netlist {
	n := New("chain")
	prev := n.MustAddGate("in", Input)
	first := prev
	for i := 0; i < gates; i++ {
		g := n.MustAddGate(fmt.Sprintf("g%d", i), Nand)
		n.Connect(prev, g)
		n.Connect(first, g)
		prev = g
	}
	n.MarkPO(prev)
	return n
}

func TestLevelizeAllocs(t *testing.T) {
	n := chainNetlist(2000)
	if err := n.Levelize(); err != nil {
		t.Fatal(err)
	}
	// Re-levelizing from scratch must allocate exactly the in-degree
	// array and the topo array — the FIFO rides on the topo backing
	// array. The old queue = queue[1:] pattern passed this too (same
	// two allocations) but retained the full queue array during the
	// walk; the head-index form is what keeps this bound meaningful as
	// a regression fence if the queue ever becomes a separate
	// reallocating slice.
	allocs := testing.AllocsPerRun(20, func() {
		n.invalidate()
		if err := n.Levelize(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("Levelize allocates %.1f times per run, want <= 2", allocs)
	}
}

func TestCompactOfRoundTrip(t *testing.T) {
	n := buildTestNetlist(t)
	if err := n.Levelize(); err != nil {
		t.Fatal(err)
	}
	c := CompactOf(n)
	if c.NumGates() != n.NumGates() {
		t.Fatalf("NumGates: got %d want %d", c.NumGates(), n.NumGates())
	}
	wantEdges := 0
	for i := range n.Gates {
		wantEdges += len(n.Gates[i].Fanin)
	}
	if c.NumEdges() != wantEdges {
		t.Fatalf("NumEdges: got %d want %d", c.NumEdges(), wantEdges)
	}
	for i := range n.Gates {
		id := GateID(i)
		g := &n.Gates[i]
		if c.NameOf(id) != g.Name || c.TypeOf(id) != g.Type || c.IsPO(id) != g.IsPO {
			t.Fatalf("gate %d metadata mismatch", i)
		}
		if got := c.FaninOf(id); !equalIDs(got, g.Fanin) {
			t.Fatalf("gate %d fanin: got %v want %v", i, got, g.Fanin)
		}
		if got := c.FanoutOf(id); !equalIDs(got, g.Fanout) {
			t.Fatalf("gate %d fanout: got %v want %v", i, got, g.Fanout)
		}
		if c.Level[i] != g.Level {
			t.Fatalf("gate %d level: got %d want %d", i, c.Level[i], g.Level)
		}
	}
	if !reflect.DeepEqual(c.CombInputs(), n.CombInputs()) {
		t.Fatal("CombInputs mismatch")
	}
	if !reflect.DeepEqual(c.CombOutputs(), n.CombOutputs()) {
		t.Fatal("CombOutputs mismatch")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	back, err := c.ToNetlist()
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Gates, n.Gates) {
		t.Fatal("ToNetlist gates differ from original")
	}
	if !reflect.DeepEqual(back.PIs, n.PIs) || !reflect.DeepEqual(back.POs, n.POs) ||
		!reflect.DeepEqual(back.DFFs, n.DFFs) {
		t.Fatal("ToNetlist special gate lists differ")
	}
	for i := range n.Gates {
		if got := back.MustLookup(n.Gates[i].Name); got != GateID(i) {
			t.Fatalf("name index: %q -> %d, want %d", n.Gates[i].Name, got, i)
		}
	}
}

func TestCompactLevelizeMatchesNetlist(t *testing.T) {
	for _, build := range []func() *Netlist{
		func() *Netlist { return buildTestNetlist(t) },
		func() *Netlist { return chainNetlist(300) },
	} {
		n := build()
		c := CompactOf(n) // before levelization: Compact levelizes itself
		if c.levelized {
			t.Fatal("CompactOf of an unlevelized netlist should not be levelized")
		}
		if err := n.Levelize(); err != nil {
			t.Fatal(err)
		}
		if err := c.Levelize(); err != nil {
			t.Fatal(err)
		}
		for i := range n.Gates {
			if c.Level[i] != n.Gates[i].Level {
				t.Fatalf("gate %d level: compact %d, netlist %d", i, c.Level[i], n.Gates[i].Level)
			}
		}
		ct, _ := c.TopoOrder()
		nt, _ := n.TopoOrder()
		if !equalIDs(ct, nt) {
			t.Fatalf("topo order differs:\ncompact %v\nnetlist %v", ct, nt)
		}
	}
}

func TestCompactLevelizeCycle(t *testing.T) {
	n := New("cycle")
	n.MustAddGate("in", Input)
	x := n.MustAddGate("x", Nand)
	y := n.MustAddGate("y", Nand)
	n.Connect(x, y)
	n.Connect(y, x)
	n.MarkPO(y)
	c := CompactOf(n)
	if err := c.Levelize(); err == nil {
		t.Fatal("expected cycle error")
	}
	if err := c.Validate(); err == nil {
		t.Fatal("expected Validate to reject a cyclic netlist")
	}
}

func TestCompactValidateRejects(t *testing.T) {
	n := buildTestNetlist(t)
	c := CompactOf(n)
	c.PIs = nil
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for missing PIs")
	}
	c = CompactOf(n)
	c.POs, c.DFFs = nil, nil
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for missing outputs")
	}
	c = CompactOf(n)
	c.Types[c.PIs[0]] = Not // Input with 0 fanins becomes NOT with 0 fanins
	if err := c.Validate(); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestCompactLevelHistogramAndBytes(t *testing.T) {
	n := buildTestNetlist(t)
	c := CompactOf(n)
	hist := c.LevelHistogram()
	if hist == nil {
		t.Fatal("LevelHistogram returned nil on an acyclic netlist")
	}
	total := 0
	for _, count := range hist {
		total += count
	}
	if total != c.NumGates() {
		t.Fatalf("histogram sums to %d, want %d", total, c.NumGates())
	}
	// 4 sources (a, b, ff, one) at level 0.
	if hist[0] != 4 {
		t.Fatalf("level 0 count: got %d want 4", hist[0])
	}
	if c.EstimatedBytes() <= 0 {
		t.Fatal("EstimatedBytes must be positive")
	}
	if n.EstimatedBytes() <= c.EstimatedBytes() {
		t.Fatalf("pointer form (%d B) should estimate larger than arena form (%d B)",
			n.EstimatedBytes(), c.EstimatedBytes())
	}
}

func equalIDs(a, b []GateID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
