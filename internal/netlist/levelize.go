package netlist

import "fmt"

// Levelize assigns logic levels in the combinational (full-scan) view and
// caches a topological order. Sources (PIs, constants, DFF outputs) get
// level 0; every other gate gets 1 + max(level of fanins). It returns an
// error if the combinational view contains a cycle.
//
// Levelization is the first step of the paper's insertion flow
// (Section IV-C lists "levelizing the netlist" as step one) and everything
// downstream — simulation, SCOAP, PODEM — consumes the cached order.
func (n *Netlist) Levelize() error {
	if n.levelized && n.topo != nil {
		return nil
	}
	num := len(n.Gates)
	indeg := make([]int32, num)
	for i := range n.Gates {
		g := &n.Gates[i]
		if g.Type == DFF || g.Type.IsSource() {
			// Combinational sources: their fanin edges (DFF data input)
			// do not count toward in-degree.
			continue
		}
		indeg[i] = int32(len(g.Fanin))
	}
	// The topo slice doubles as the FIFO: pushed gates are never
	// removed, a head index advances instead. The old
	// `queue = queue[1:]` form kept the whole backing array reachable
	// while repeatedly shrinking the window — one allocation-free array
	// serves both roles (see TestLevelizeAllocs).
	topo := make([]GateID, 0, num)
	for i := range n.Gates {
		if indeg[i] == 0 {
			topo = append(topo, GateID(i))
		}
	}
	for head := 0; head < len(topo); head++ {
		id := topo[head]
		g := &n.Gates[id]
		if g.Type == DFF || g.Type.IsSource() {
			g.Level = 0
		} else {
			var lvl int32
			for _, f := range g.Fanin {
				if fl := n.Gates[f].levelForFanout(); fl >= lvl {
					lvl = fl
				}
			}
			g.Level = lvl + 1
		}
		for _, s := range g.Fanout {
			sg := &n.Gates[s]
			if sg.Type == DFF || sg.Type.IsSource() {
				continue // edge into a DFF does not gate its readiness
			}
			indeg[s]--
			if indeg[s] == 0 {
				topo = append(topo, s)
			}
		}
	}
	if len(topo) != num {
		return fmt.Errorf("netlist %q: combinational cycle detected (%d of %d gates ordered)",
			n.Name, len(topo), num)
	}
	n.topo = topo
	n.levelized = true
	return nil
}

// levelForFanout is the level a fanout consumer should see. DFF outputs
// behave like level-0 sources.
func (g *Gate) levelForFanout() int32 {
	if g.Type == DFF || g.Type.IsSource() {
		return 0
	}
	return g.Level
}

// TopoOrder returns the cached topological order of the combinational
// view, levelizing first if needed. The returned slice must not be
// modified.
func (n *Netlist) TopoOrder() ([]GateID, error) {
	if err := n.Levelize(); err != nil {
		return nil, err
	}
	return n.topo, nil
}

// MaxLevel returns the largest logic level (circuit depth). The netlist
// must be levelized.
func (n *Netlist) MaxLevel() int32 {
	var m int32
	for i := range n.Gates {
		if n.Gates[i].Level > m {
			m = n.Gates[i].Level
		}
	}
	return m
}

// TransitiveFanin returns the set of gates (as a bitset keyed by GateID)
// in the transitive fanin of start, in the combinational view. start
// itself is included. DFF boundaries stop the traversal (their data cone
// belongs to the previous cycle).
func (n *Netlist) TransitiveFanin(start GateID) []bool {
	seen := make([]bool, len(n.Gates))
	stack := []GateID{start}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		g := &n.Gates[id]
		if g.Type == DFF || g.Type.IsSource() {
			continue
		}
		stack = append(stack, g.Fanin...)
	}
	return seen
}

// TransitiveFanout returns the set of gates in the transitive fanout of
// start (combinational view; DFFs terminate paths). start is included.
func (n *Netlist) TransitiveFanout(start GateID) []bool {
	seen := make([]bool, len(n.Gates))
	stack := []GateID{start}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		g := &n.Gates[id]
		for _, s := range g.Fanout {
			if n.Gates[s].Type == DFF {
				seen[s] = true // note the DFF but do not cross it
				continue
			}
			stack = append(stack, s)
		}
	}
	return seen
}
