// Package netlist provides the gate-level netlist data structures used by
// every other package in this repository.
//
// A netlist is stored as a directed acyclic graph (DAG) of gates, exactly
// as Section III-A of the paper describes: each vertex is a logic gate (or
// a primary input, or a D flip-flop) and each edge is a wire between
// gates. Sequential circuits are handled in full-scan style: the output of
// a DFF is treated as a pseudo primary input and its data input as a
// pseudo primary output, which is the standard assumption in the
// rare-node / ATPG literature the paper builds on (MERO, ND-ATPG,
// ATTRITION all do the same).
package netlist

import (
	"fmt"
	"sort"
	"unsafe"
)

// GateID identifies a gate within one Netlist. IDs are dense: valid IDs
// are 0..len(Gates)-1, so slices indexed by GateID are the idiomatic way
// to attach per-gate data.
type GateID int32

// InvalidGate is returned by lookups that fail.
const InvalidGate GateID = -1

// GateType enumerates the primitive cell types supported by the framework.
// The set matches the ISCAS .bench format plus constant generators.
type GateType uint8

const (
	// Input is a primary input; it has no fanin.
	Input GateType = iota
	// Buf is a non-inverting buffer (BUFF in .bench).
	Buf
	// Not is an inverter.
	Not
	// And is a k-input AND gate, k >= 1.
	And
	// Nand is a k-input NAND gate.
	Nand
	// Or is a k-input OR gate.
	Or
	// Nor is a k-input NOR gate.
	Nor
	// Xor is a k-input XOR gate (odd parity).
	Xor
	// Xnor is a k-input XNOR gate (even parity).
	Xnor
	// DFF is a D flip-flop. In the combinational (full-scan) view its
	// output is a pseudo primary input and its single fanin is a pseudo
	// primary output.
	DFF
	// Const0 drives constant logic 0. No fanin.
	Const0
	// Const1 drives constant logic 1. No fanin.
	Const1

	numGateTypes
)

var gateTypeNames = [numGateTypes]string{
	Input:  "INPUT",
	Buf:    "BUFF",
	Not:    "NOT",
	And:    "AND",
	Nand:   "NAND",
	Or:     "OR",
	Nor:    "NOR",
	Xor:    "XOR",
	Xnor:   "XNOR",
	DFF:    "DFF",
	Const0: "CONST0",
	Const1: "CONST1",
}

// String returns the .bench-style name of the gate type.
func (t GateType) String() string {
	if int(t) < len(gateTypeNames) {
		return gateTypeNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// ParseGateType converts a .bench-style operator name ("AND", "nand",
// "BUFF", "BUF", ...) to a GateType.
func ParseGateType(s string) (GateType, bool) {
	switch upper(s) {
	case "INPUT":
		return Input, true
	case "BUF", "BUFF":
		return Buf, true
	case "NOT", "INV":
		return Not, true
	case "AND":
		return And, true
	case "NAND":
		return Nand, true
	case "OR":
		return Or, true
	case "NOR":
		return Nor, true
	case "XOR":
		return Xor, true
	case "XNOR":
		return Xnor, true
	case "DFF", "FF":
		return DFF, true
	case "CONST0", "GND", "ZERO":
		return Const0, true
	case "CONST1", "VDD", "ONE":
		return Const1, true
	}
	return 0, false
}

func upper(s string) string {
	b := []byte(s)
	changed := false
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(b)
}

// IsSource reports whether the gate type has no fanin in the
// combinational view (primary inputs and constants). DFFs are sources in
// the combinational view but still carry their data fanin edge.
func (t GateType) IsSource() bool {
	return t == Input || t == Const0 || t == Const1
}

// HasInversion reports whether the gate inverts the reduced function of
// its inputs (NOT, NAND, NOR, XNOR).
func (t GateType) HasInversion() bool {
	switch t {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// ControllingValue returns the controlling input value of the gate (the
// value which on any single input fixes the output) and whether the gate
// type has one. AND/NAND are controlled by 0; OR/NOR by 1. XOR/XNOR,
// buffers and inverters have none.
func (t GateType) ControllingValue() (v uint8, ok bool) {
	switch t {
	case And, Nand:
		return 0, true
	case Or, Nor:
		return 1, true
	}
	return 0, false
}

// Gate is one vertex of the netlist DAG.
type Gate struct {
	// Name is the net name the gate drives (unique within the netlist).
	Name string
	// Type is the primitive function.
	Type GateType
	// Fanin lists the driving gates, in port order.
	Fanin []GateID
	// Fanout lists the driven gates. Order is insertion order.
	Fanout []GateID
	// Level is the logic level assigned by Levelize: sources are level 0
	// and every other gate is 1 + max(level of fanins). -1 before
	// levelization.
	Level int32
	// IsPO marks gates whose net is a primary output of the circuit.
	IsPO bool
}

// Netlist is a gate-level circuit.
//
// The zero value is an empty netlist ready for AddGate calls.
type Netlist struct {
	// Name is the circuit name (e.g. "c2670").
	Name string
	// Gates holds every gate; GateID indexes into it.
	Gates []Gate
	// PIs lists primary-input gate IDs in declaration order.
	PIs []GateID
	// POs lists the IDs of gates that drive primary outputs, in
	// declaration order. A gate may appear here and still have fanout.
	POs []GateID
	// DFFs lists flip-flop gate IDs in declaration order.
	DFFs []GateID

	byName    map[string]GateID
	levelized bool
	topo      []GateID // cached topological order (combinational view)
}

// New returns an empty netlist with the given name.
func New(name string) *Netlist {
	return &Netlist{Name: name, byName: make(map[string]GateID)}
}

// NumGates returns the number of gates (including PIs, constants, DFFs).
func (n *Netlist) NumGates() int { return len(n.Gates) }

// NumCells returns the number of logic cells, i.e. gates that are neither
// primary inputs nor constants. DFFs count as cells.
func (n *Netlist) NumCells() int {
	c := 0
	for i := range n.Gates {
		if !n.Gates[i].Type.IsSource() {
			c++
		}
	}
	return c
}

// Lookup returns the gate ID with the given net name.
func (n *Netlist) Lookup(name string) (GateID, bool) {
	id, ok := n.byName[name]
	return id, ok
}

// MustLookup is Lookup that panics on a missing name; for tests and
// generators where the name is known to exist.
func (n *Netlist) MustLookup(name string) GateID {
	id, ok := n.byName[name]
	if !ok {
		panic(fmt.Sprintf("netlist %q: no gate named %q", n.Name, name))
	}
	return id
}

// Gate returns a pointer to the gate with the given ID.
func (n *Netlist) Gate(id GateID) *Gate { return &n.Gates[id] }

// AddGate appends a gate with the given name and type and no connections
// yet. It returns an error if the name is already taken.
func (n *Netlist) AddGate(name string, t GateType) (GateID, error) {
	if n.byName == nil {
		n.byName = make(map[string]GateID)
	}
	if _, dup := n.byName[name]; dup {
		return InvalidGate, fmt.Errorf("netlist %q: duplicate gate name %q", n.Name, name)
	}
	id := GateID(len(n.Gates))
	n.Gates = append(n.Gates, Gate{Name: name, Type: t, Level: -1})
	n.byName[name] = id
	switch t {
	case Input:
		n.PIs = append(n.PIs, id)
	case DFF:
		n.DFFs = append(n.DFFs, id)
	}
	n.invalidate()
	return id, nil
}

// MustAddGate is AddGate that panics on error; for generators.
func (n *Netlist) MustAddGate(name string, t GateType) GateID {
	id, err := n.AddGate(name, t)
	if err != nil {
		panic(err)
	}
	return id
}

// Grow preallocates capacity for at least extra additional gates. Bulk
// constructors (the SoC generator) call it once up front: growing the
// Gates array incrementally past the 10⁵-gate mark re-zeroes ever-larger
// backing arrays, which dominates construction time.
func (n *Netlist) Grow(extra int) {
	if n.byName == nil {
		n.byName = make(map[string]GateID, len(n.Gates)+extra)
	}
	if cap(n.Gates)-len(n.Gates) >= extra {
		return
	}
	g := make([]Gate, len(n.Gates), len(n.Gates)+extra)
	copy(g, n.Gates)
	n.Gates = g
}

// Connect appends src to dst's fanin (in port order) and dst to src's
// fanout.
func (n *Netlist) Connect(src, dst GateID) {
	n.Gates[dst].Fanin = append(n.Gates[dst].Fanin, src)
	n.Gates[src].Fanout = append(n.Gates[src].Fanout, dst)
	n.invalidate()
}

// MarkPO records that the gate's net is a primary output.
func (n *Netlist) MarkPO(id GateID) {
	if !n.Gates[id].IsPO {
		n.Gates[id].IsPO = true
		n.POs = append(n.POs, id)
	}
}

// ReplaceFanin rewires dst's fanin port from oldSrc to newSrc, updating
// both fanout lists. It returns an error if oldSrc is not a fanin of dst.
func (n *Netlist) ReplaceFanin(dst, oldSrc, newSrc GateID) error {
	found := false
	for i, f := range n.Gates[dst].Fanin {
		if f == oldSrc {
			n.Gates[dst].Fanin[i] = newSrc
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("netlist %q: %s is not a fanin of %s",
			n.Name, n.Gates[oldSrc].Name, n.Gates[dst].Name)
	}
	// Remove one occurrence of dst from oldSrc's fanout.
	fo := n.Gates[oldSrc].Fanout
	for i, g := range fo {
		if g == dst {
			n.Gates[oldSrc].Fanout = append(fo[:i:i], fo[i+1:]...)
			break
		}
	}
	n.Gates[newSrc].Fanout = append(n.Gates[newSrc].Fanout, dst)
	n.invalidate()
	return nil
}

// ReplacePOMarker moves the primary-output marker from old to new
// (payload splicing: the trojan's payload gate takes over the victim
// net's output role). It returns an error if old is not a PO.
func (n *Netlist) ReplacePOMarker(old, new GateID) error {
	if !n.Gates[old].IsPO {
		return fmt.Errorf("netlist %q: %s is not a PO", n.Name, n.Gates[old].Name)
	}
	n.Gates[old].IsPO = false
	n.Gates[new].IsPO = true
	for i, id := range n.POs {
		if id == old {
			n.POs[i] = new
			return nil
		}
	}
	return fmt.Errorf("netlist %q: PO list inconsistent for %s", n.Name, n.Gates[old].Name)
}

func (n *Netlist) invalidate() {
	n.levelized = false
	n.topo = nil
}

// Clone returns a deep copy of the netlist.
func (n *Netlist) Clone() *Netlist {
	c := &Netlist{
		Name:      n.Name,
		Gates:     make([]Gate, len(n.Gates)),
		PIs:       append([]GateID(nil), n.PIs...),
		POs:       append([]GateID(nil), n.POs...),
		DFFs:      append([]GateID(nil), n.DFFs...),
		byName:    make(map[string]GateID, len(n.byName)),
		levelized: n.levelized,
	}
	for i := range n.Gates {
		g := n.Gates[i]
		g.Fanin = append([]GateID(nil), g.Fanin...)
		g.Fanout = append([]GateID(nil), g.Fanout...)
		c.Gates[i] = g
	}
	for k, v := range n.byName {
		c.byName[k] = v
	}
	if n.topo != nil {
		c.topo = append([]GateID(nil), n.topo...)
	}
	return c
}

// CombInputs returns the inputs of the combinational (full-scan) view:
// primary inputs followed by DFF outputs (pseudo-PIs), in stable order.
func (n *Netlist) CombInputs() []GateID {
	out := make([]GateID, 0, len(n.PIs)+len(n.DFFs))
	out = append(out, n.PIs...)
	out = append(out, n.DFFs...)
	return out
}

// CombOutputs returns the outputs of the combinational view: gates
// driving primary outputs followed by the gates driving DFF data inputs
// (pseudo-POs).
func (n *Netlist) CombOutputs() []GateID {
	out := append([]GateID(nil), n.POs...)
	for _, d := range n.DFFs {
		for _, f := range n.Gates[d].Fanin {
			out = append(out, f)
		}
	}
	return out
}

// EstimatedBytes estimates the resident memory of the pointer form:
// the gate structs, their per-gate fanin/fanout backing arrays, name
// bytes and the name index. Allocator slack is not counted; the byName
// entries use a flat per-entry estimate. Compare with
// Compact.EstimatedBytes to see what the arena form saves.
func (n *Netlist) EstimatedBytes() int64 {
	total := int64(unsafe.Sizeof(*n))
	gateSize := int64(unsafe.Sizeof(Gate{}))
	for i := range n.Gates {
		g := &n.Gates[i]
		total += gateSize + int64(len(g.Name)) + 4*int64(cap(g.Fanin)+cap(g.Fanout))
		// byName entry: key string header + shared name bytes already
		// counted; ~48 B covers the header, GateID value and bucket
		// overhead.
		total += 48
	}
	total += 4 * int64(len(n.PIs)+len(n.POs)+len(n.DFFs)+len(n.topo))
	return total
}

// GateIDsByName returns all gate IDs sorted by name; handy for
// deterministic iteration in tests and reports.
func (n *Netlist) GateIDsByName() []GateID {
	ids := make([]GateID, len(n.Gates))
	for i := range ids {
		ids[i] = GateID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		return n.Gates[ids[a]].Name < n.Gates[ids[b]].Name
	})
	return ids
}
