package netlist

import (
	"strings"
	"testing"
)

// buildSmall constructs: out = AND(a, NOT(b)) with out as PO.
func buildSmall(t *testing.T) (*Netlist, GateID, GateID, GateID, GateID) {
	t.Helper()
	n := New("small")
	a := n.MustAddGate("a", Input)
	b := n.MustAddGate("b", Input)
	inv := n.MustAddGate("inv", Not)
	out := n.MustAddGate("out", And)
	n.Connect(b, inv)
	n.Connect(a, out)
	n.Connect(inv, out)
	n.MarkPO(out)
	return n, a, b, inv, out
}

func TestAddGateDuplicate(t *testing.T) {
	n := New("x")
	if _, err := n.AddGate("a", Input); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGate("a", And); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestLookup(t *testing.T) {
	n, a, _, _, _ := buildSmall(t)
	id, ok := n.Lookup("a")
	if !ok || id != a {
		t.Fatalf("Lookup(a) = %d,%v; want %d,true", id, ok, a)
	}
	if _, ok := n.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) succeeded")
	}
}

func TestMustLookupPanics(t *testing.T) {
	n, _, _, _, _ := buildSmall(t)
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup on a missing name did not panic")
		}
	}()
	n.MustLookup("nope")
}

func TestLevelize(t *testing.T) {
	n, a, b, inv, out := buildSmall(t)
	if err := n.Levelize(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		id   GateID
		want int32
	}{{a, 0}, {b, 0}, {inv, 1}, {out, 2}} {
		if got := n.Gates[tc.id].Level; got != tc.want {
			t.Errorf("level(%s) = %d, want %d", n.Gates[tc.id].Name, got, tc.want)
		}
	}
	if n.MaxLevel() != 2 {
		t.Errorf("MaxLevel = %d, want 2", n.MaxLevel())
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	n, _, _, _, _ := buildSmall(t)
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[GateID]int)
	for i, id := range order {
		pos[id] = i
	}
	for i := range n.Gates {
		g := &n.Gates[i]
		if g.Type == DFF || g.Type.IsSource() {
			continue
		}
		for _, f := range g.Fanin {
			if pos[f] >= pos[GateID(i)] {
				t.Errorf("fanin %s not before %s in topo order", n.Gates[f].Name, g.Name)
			}
		}
	}
}

func TestCycleDetection(t *testing.T) {
	n := New("cyc")
	a := n.MustAddGate("a", Input)
	g1 := n.MustAddGate("g1", And)
	g2 := n.MustAddGate("g2", And)
	n.Connect(a, g1)
	n.Connect(g2, g1)
	n.Connect(g1, g2)
	n.Connect(a, g2)
	n.MarkPO(g2)
	if err := n.Levelize(); err == nil {
		t.Fatal("Levelize accepted a combinational cycle")
	}
	if err := n.Validate(); err == nil {
		t.Fatal("Validate accepted a combinational cycle")
	}
}

func TestDFFBreaksCycle(t *testing.T) {
	// A feedback loop through a DFF is sequential, not combinational.
	n := New("seq")
	a := n.MustAddGate("a", Input)
	ff := n.MustAddGate("ff", DFF)
	g := n.MustAddGate("g", Xor)
	n.Connect(a, g)
	n.Connect(ff, g)
	n.Connect(g, ff)
	n.MarkPO(g)
	if err := n.Levelize(); err != nil {
		t.Fatalf("sequential loop rejected: %v", err)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := n.Gates[ff].Level; got != 0 {
		t.Errorf("DFF level = %d, want 0", got)
	}
}

func TestReplaceFanin(t *testing.T) {
	n, a, b, inv, out := buildSmall(t)
	// Rewire out's 'a' input to 'b'.
	if err := n.ReplaceFanin(out, a, b); err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := n.Gates[out].Fanin[0]; got != b {
		t.Errorf("fanin[0] = %v, want %v", got, b)
	}
	if containsID(n.Gates[a].Fanout, out) {
		t.Error("old source still lists dst in fanout")
	}
	if !containsID(n.Gates[b].Fanout, out) {
		t.Error("new source missing dst in fanout")
	}
	if err := n.ReplaceFanin(out, inv, a); err != nil {
		t.Fatal(err)
	}
	if err := n.ReplaceFanin(out, inv, a); err == nil {
		t.Error("ReplaceFanin with non-fanin oldSrc should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	n, a, _, _, out := buildSmall(t)
	c := n.Clone()
	extra := c.MustAddGate("extra", Or)
	c.Connect(a, extra)
	c.Connect(out, extra)
	if n.NumGates() == c.NumGates() {
		t.Fatal("clone shares gate storage with original")
	}
	if _, ok := n.Lookup("extra"); ok {
		t.Fatal("clone shares name index with original")
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("original corrupted by clone mutation: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
}

func TestValidateCatchesArity(t *testing.T) {
	n := New("bad")
	n.MustAddGate("a", Input)
	n.MustAddGate("inv", Not) // no fanin connected
	n.MarkPO(n.MustLookup("inv"))
	err := n.Validate()
	if err == nil {
		t.Fatal("Validate accepted NOT with 0 fanins")
	}
	if !strings.Contains(err.Error(), "fanins") {
		t.Errorf("error %q does not mention fanins", err)
	}
}

func TestValidateEmpty(t *testing.T) {
	n := New("empty")
	if err := n.Validate(); err == nil {
		t.Fatal("Validate accepted an empty netlist")
	}
}

func TestCombInputsOutputs(t *testing.T) {
	n := New("seq2")
	a := n.MustAddGate("a", Input)
	ff := n.MustAddGate("ff", DFF)
	g := n.MustAddGate("g", And)
	n.Connect(a, g)
	n.Connect(ff, g)
	n.Connect(g, ff)
	n.MarkPO(g)

	in := n.CombInputs()
	if len(in) != 2 || in[0] != a || in[1] != ff {
		t.Errorf("CombInputs = %v, want [%v %v]", in, a, ff)
	}
	out := n.CombOutputs()
	if len(out) != 2 || out[0] != g || out[1] != g {
		t.Errorf("CombOutputs = %v, want [g g]", out)
	}
}

func TestTransitiveFaninFanout(t *testing.T) {
	n, a, b, inv, out := buildSmall(t)
	tfi := n.TransitiveFanin(out)
	for _, id := range []GateID{a, b, inv, out} {
		if !tfi[id] {
			t.Errorf("TFI(out) missing %s", n.Gates[id].Name)
		}
	}
	tfo := n.TransitiveFanout(b)
	if !tfo[inv] || !tfo[out] {
		t.Error("TFO(b) should include inv and out")
	}
	if tfo[a] {
		t.Error("TFO(b) should not include a")
	}
}

func TestGateTypeParsing(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want GateType
	}{
		{"AND", And}, {"nand", Nand}, {"Or", Or}, {"NOR", Nor},
		{"XOR", Xor}, {"xnor", Xnor}, {"NOT", Not}, {"INV", Not},
		{"BUF", Buf}, {"BUFF", Buf}, {"DFF", DFF}, {"INPUT", Input},
		{"CONST0", Const0}, {"VDD", Const1},
	} {
		got, ok := ParseGateType(tc.s)
		if !ok || got != tc.want {
			t.Errorf("ParseGateType(%q) = %v,%v; want %v,true", tc.s, got, ok, tc.want)
		}
	}
	if _, ok := ParseGateType("FROB"); ok {
		t.Error("ParseGateType accepted FROB")
	}
}

func TestControllingValue(t *testing.T) {
	for _, tc := range []struct {
		t  GateType
		v  uint8
		ok bool
	}{
		{And, 0, true}, {Nand, 0, true}, {Or, 1, true}, {Nor, 1, true},
		{Xor, 0, false}, {Not, 0, false}, {Buf, 0, false},
	} {
		v, ok := tc.t.ControllingValue()
		if ok != tc.ok || (ok && v != tc.v) {
			t.Errorf("ControllingValue(%v) = %d,%v; want %d,%v", tc.t, v, ok, tc.v, tc.ok)
		}
	}
}

func TestStats(t *testing.T) {
	n, _, _, _, _ := buildSmall(t)
	s := n.ComputeStats()
	if s.Gates != 4 || s.Cells != 2 || s.PIs != 2 || s.POs != 1 || s.Depth != 2 {
		t.Errorf("unexpected stats: %+v", s)
	}
	if !strings.Contains(s.String(), "small") {
		t.Errorf("Stats.String() = %q", s.String())
	}
}
