package netlist

import (
	"fmt"
	"strings"
)

// Validate checks structural invariants of the netlist:
//
//   - gate names are unique and non-empty (enforced at AddGate, re-checked);
//   - fanin arity matches the gate type (sources have none, BUF/NOT/DFF
//     exactly one, logic gates at least one);
//   - every fanin/fanout edge is mirrored on the other side;
//   - all gate IDs are in range;
//   - the combinational view is acyclic;
//   - the circuit has at least one primary input and one output
//     (primary or pseudo).
//
// It returns a single error that joins every violation found.
func (n *Netlist) Validate() error {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	seen := make(map[string]GateID, len(n.Gates))
	for i := range n.Gates {
		id := GateID(i)
		g := &n.Gates[i]
		if g.Name == "" {
			addf("gate %d has empty name", i)
		} else if prev, dup := seen[g.Name]; dup {
			addf("gates %d and %d share name %q", prev, i, g.Name)
		} else {
			seen[g.Name] = id
		}
		if got, want := n.byName[g.Name], id; got != want {
			addf("name index for %q points to %d, want %d", g.Name, got, want)
		}

		switch g.Type {
		case Input, Const0, Const1:
			if len(g.Fanin) != 0 {
				addf("%s %q has %d fanins, want 0", g.Type, g.Name, len(g.Fanin))
			}
		case Buf, Not, DFF:
			if len(g.Fanin) != 1 {
				addf("%s %q has %d fanins, want 1", g.Type, g.Name, len(g.Fanin))
			}
		case And, Nand, Or, Nor, Xor, Xnor:
			if len(g.Fanin) < 1 {
				addf("%s %q has no fanins", g.Type, g.Name)
			}
		default:
			addf("gate %q has unknown type %d", g.Name, g.Type)
		}

		for _, f := range g.Fanin {
			if f < 0 || int(f) >= len(n.Gates) {
				addf("gate %q fanin ID %d out of range", g.Name, f)
				continue
			}
			if !containsID(n.Gates[f].Fanout, id) {
				addf("edge %s->%s missing from fanout list", n.Gates[f].Name, g.Name)
			}
		}
		for _, s := range g.Fanout {
			if s < 0 || int(s) >= len(n.Gates) {
				addf("gate %q fanout ID %d out of range", g.Name, s)
				continue
			}
			if !containsID(n.Gates[s].Fanin, id) {
				addf("edge %s->%s missing from fanin list", g.Name, n.Gates[s].Name)
			}
		}
	}

	if len(n.PIs) == 0 {
		addf("no primary inputs")
	}
	if len(n.POs) == 0 && len(n.DFFs) == 0 {
		addf("no outputs (primary or pseudo)")
	}
	for _, id := range n.POs {
		if id < 0 || int(id) >= len(n.Gates) {
			addf("PO ID %d out of range", id)
		} else if !n.Gates[id].IsPO {
			addf("PO list contains %q but IsPO is false", n.Gates[id].Name)
		}
	}

	if len(problems) == 0 {
		// Cycle check only when structure is otherwise sound.
		probe := n.Clone()
		if err := probe.Levelize(); err != nil {
			addf("%v", err)
		}
	}

	if len(problems) > 0 {
		const maxShow = 20
		if len(problems) > maxShow {
			problems = append(problems[:maxShow],
				fmt.Sprintf("... and %d more", len(problems)-maxShow))
		}
		return fmt.Errorf("netlist %q invalid:\n  %s", n.Name, strings.Join(problems, "\n  "))
	}
	return nil
}

func containsID(s []GateID, id GateID) bool {
	for _, v := range s {
		if v == id {
			return true
		}
	}
	return false
}

// Stats summarizes a netlist for reports and the netlistinfo CLI.
type Stats struct {
	Name     string
	Gates    int // total vertices
	Cells    int // logic cells (non-source)
	PIs      int
	POs      int
	DFFs     int
	Depth    int32 // max logic level
	ByType   map[GateType]int
	MaxFanin int
}

// ComputeStats levelizes (if possible) and tallies the netlist.
func (n *Netlist) ComputeStats() Stats {
	s := Stats{
		Name:   n.Name,
		Gates:  len(n.Gates),
		Cells:  n.NumCells(),
		PIs:    len(n.PIs),
		POs:    len(n.POs),
		DFFs:   len(n.DFFs),
		ByType: make(map[GateType]int),
	}
	if err := n.Levelize(); err == nil {
		s.Depth = n.MaxLevel()
	}
	for i := range n.Gates {
		g := &n.Gates[i]
		s.ByType[g.Type]++
		if len(g.Fanin) > s.MaxFanin {
			s.MaxFanin = len(g.Fanin)
		}
	}
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d gates (%d cells), %d PI, %d PO, %d DFF, depth %d, max fanin %d",
		s.Name, s.Gates, s.Cells, s.PIs, s.POs, s.DFFs, s.Depth, s.MaxFanin)
}

// NumEdges returns the total fanin edge count (each connection counted
// once; the fanout mirror is not double-counted).
func (n *Netlist) NumEdges() int {
	total := 0
	for i := range n.Gates {
		total += len(n.Gates[i].Fanin)
	}
	return total
}
