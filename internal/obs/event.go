package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// EventKind classifies a progress event.
type EventKind int

const (
	// StageStart: a pipeline stage began.
	StageStart EventKind = iota
	// StageProgress: a running stage reports completion state.
	StageProgress
	// StageEnd: a pipeline stage finished.
	StageEnd
	// StageAbort: a pipeline stage was cut short (cancellation,
	// deadline/budget expiry, or a contained panic). Degraded stages
	// emit StageAbort instead of StageEnd.
	StageAbort
	// StageCached: a pipeline stage was served from the artifact cache
	// instead of running. Emitted in place of the start/end pair.
	StageCached
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case StageStart:
		return "start"
	case StageProgress:
		return "progress"
	case StageEnd:
		return "end"
	case StageAbort:
		return "abort"
	case StageCached:
		return "cached"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one progress notification from a pipeline run. Done/Total
// carry percent-complete information when the stage knows its work
// size (Total > 0); Elapsed is the time since the stage started (zero
// on StageStart).
type Event struct {
	Stage   string
	Kind    EventKind
	Done    int
	Total   int
	Elapsed time.Duration
}

// Sink consumes progress events. Implementations must tolerate
// concurrent Emit calls: stages may report from worker goroutines.
type Sink interface {
	Emit(Event)
}

// FuncSink adapts a function to the Sink interface.
type FuncSink func(Event)

// Emit calls the function.
func (f FuncSink) Emit(e Event) { f(e) }

// Emit sends e to s if s is non-nil. Instrumented code calls this so a
// missing sink costs a single branch.
func Emit(s Sink, e Event) {
	if s != nil {
		s.Emit(e)
	}
}

// TextSink returns a sink that renders events as human-readable lines
// on w — the htgen -v progress stream. Safe for concurrent use.
func TextSink(w io.Writer) Sink {
	return &textSink{w: w}
}

type textSink struct {
	mu sync.Mutex
	w  io.Writer
}

func (t *textSink) Emit(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch e.Kind {
	case StageStart:
		fmt.Fprintf(t.w, "[%s] start\n", e.Stage)
	case StageProgress:
		if e.Total > 0 {
			fmt.Fprintf(t.w, "[%s] %d/%d (%d%%) %v%s\n",
				e.Stage, e.Done, e.Total, 100*e.Done/e.Total, e.Elapsed.Round(time.Millisecond), rateSuffix(e))
		} else {
			fmt.Fprintf(t.w, "[%s] %d done %v%s\n", e.Stage, e.Done, e.Elapsed.Round(time.Millisecond), rateSuffix(e))
		}
	case StageEnd:
		fmt.Fprintf(t.w, "[%s] done in %v\n", e.Stage, e.Elapsed.Round(time.Millisecond))
	case StageAbort:
		fmt.Fprintf(t.w, "[%s] aborted after %v\n", e.Stage, e.Elapsed.Round(time.Millisecond))
	case StageCached:
		fmt.Fprintf(t.w, "[%s] served from cache\n", e.Stage)
	}
}

// rateSuffix renders the items/sec throughput of a progress event
// (" (1234/s)"), so -v runs on large circuits show whether a stage is
// crawling or flying; empty when no time has elapsed yet.
func rateSuffix(e Event) string {
	secs := e.Elapsed.Seconds()
	if secs <= 0 || e.Done <= 0 {
		return ""
	}
	rate := float64(e.Done) / secs
	if rate >= 10 {
		return fmt.Sprintf(" (%.0f/s)", rate)
	}
	return fmt.Sprintf(" (%.1f/s)", rate)
}
