package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumHistogramBuckets is the fixed bucket count of every Histogram.
// Buckets 0..NumHistogramBuckets-2 have log-spaced inclusive upper
// bounds of 1µs<<i (1µs, 2µs, 4µs, ... ≈76h); the last bucket is the
// overflow (+Inf) bucket. A fixed power-of-two layout keeps Observe a
// couple of atomic adds with no per-histogram configuration, gives
// every scrape a stable bucket schema, and bounds the quantile error to
// one octave (halved again by in-bucket interpolation).
const NumHistogramBuckets = 40

// HistogramBound returns bucket i's inclusive upper bound. The last
// bucket is unbounded (+Inf) and returns -1.
func HistogramBound(i int) time.Duration {
	if i >= NumHistogramBuckets-1 {
		return -1
	}
	return time.Microsecond << uint(i)
}

// bucketIndex maps a duration to its bucket: the smallest i with
// d <= 1µs<<i, clamped into the overflow bucket. Non-positive durations
// land in bucket 0.
func bucketIndex(d time.Duration) int {
	n := d.Nanoseconds()
	if n <= 1000 {
		return 0
	}
	i := bits.Len64(uint64(n-1) / 1000)
	if i > NumHistogramBuckets-1 {
		return NumHistogramBuckets - 1
	}
	return i
}

// Histogram is a lock-free log-bucketed latency distribution, safe for
// concurrent Observe from hot paths: one atomic add on the bucket plus
// one on the nanosecond sum (doubled per ancestor registry when the
// histogram is scoped — same mirroring rule as Counter).
type Histogram struct {
	name    string
	mirror  *Histogram // same-named histogram in the parent registry, if scoped
	sum     atomic.Int64
	buckets [NumHistogramBuckets]atomic.Uint64
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketIndex(d)].Add(1)
	h.sum.Add(d.Nanoseconds())
	if h.mirror != nil {
		h.mirror.Observe(d)
	}
}

// Snapshot captures the distribution. The observation count is derived
// from the bucket reads (not a separate atomic), so Count always equals
// the bucket total even when Observe calls race the snapshot — the
// invariant Prometheus exposition relies on (+Inf cumulative bucket ==
// count). Sum may trail the buckets by in-flight observations.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Count += c
	}
	s.Sum = time.Duration(h.sum.Load())
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Count is the total observation count (sum over Buckets).
	Count uint64
	// Sum is the total of all observed durations.
	Sum time.Duration
	// Buckets holds per-bucket (non-cumulative) counts; bucket bounds
	// come from HistogramBound.
	Buckets [NumHistogramBuckets]uint64
}

// Quantile estimates the q-quantile (0..1) by locating the target rank's
// bucket and interpolating linearly inside it.
//
// Edge cases are defined, not accidental:
//   - An empty snapshot returns 0 — there is no data to make any claim
//     about, and 0 cannot be mistaken for a measured latency.
//   - q is clamped into [0,1]: q < 0 behaves as 0 (the first observed
//     bucket's rank-1 estimate), q > 1 behaves as 1 (the maximum). A NaN
//     q clamps to 0, the most conservative well-defined request.
//   - Mass in the overflow (+Inf) bucket reports that bucket's lower
//     bound (HistogramBound(NumHistogramBuckets-2)) — the strongest
//     claim the data supports, never a fabricated larger value.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	// !(q > 0) catches both q <= 0 and NaN, which would otherwise slip
	// through ordered comparisons and poison rank below.
	if !(q > 0) {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := time.Duration(0)
			if i > 0 {
				lo = HistogramBound(i - 1)
			}
			hi := HistogramBound(i)
			if hi < 0 {
				return lo
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += c
	}
	return 0
}

// Delta subtracts base bucket-wise. moved reports whether any bucket
// changed, so registry deltas can drop histograms that saw no
// observations in the window.
func (s HistogramSnapshot) Delta(base HistogramSnapshot) (out HistogramSnapshot, moved bool) {
	for i := range s.Buckets {
		d := s.Buckets[i] - base.Buckets[i]
		out.Buckets[i] = d
		out.Count += d
	}
	out.Sum = s.Sum - base.Sum
	return out, out.Count != 0
}
