package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketIndexBounds pins the bucket layout: every duration lands in
// the bucket whose inclusive upper bound is the smallest one >= d.
func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{2*time.Microsecond + 1, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{100 * time.Hour, NumHistogramBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.d); got != tc.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
	for i := 0; i < NumHistogramBuckets-1; i++ {
		b := HistogramBound(i)
		if got := bucketIndex(b); got != i {
			t.Errorf("bound %v maps to bucket %d, want %d (bounds must be inclusive)", b, got, i)
		}
		if got := bucketIndex(b + 1); got != i+1 && i+1 < NumHistogramBuckets {
			t.Errorf("bound %v+1ns maps to bucket %d, want %d", b, got, i+1)
		}
	}
}

// TestHistogramConcurrentExact hammers one histogram from many
// goroutines and checks the exact invariants: Count equals the number
// of observations, Sum equals the exact nanosecond total, and the
// buckets account for every observation. Run under -race in make ci.
func TestHistogramConcurrentExact(t *testing.T) {
	h := NewRegistry().Histogram("t.concurrent")
	const goroutines = 8
	const perG = 2000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				h.Observe(time.Duration(g*perG+k+1) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()

	snap := h.Snapshot()
	const n = goroutines * perG
	if snap.Count != n {
		t.Fatalf("count = %d, want %d", snap.Count, n)
	}
	wantSum := time.Duration(n) * time.Duration(n+1) / 2 * time.Microsecond
	if snap.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", snap.Sum, wantSum)
	}
	var bucketTotal uint64
	for _, c := range snap.Buckets {
		bucketTotal += c
	}
	if bucketTotal != n {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, n)
	}
}

// TestHistogramScopedMirror pins the scoped-registry rule for
// histograms: an Observe on a scoped histogram lands in both the scoped
// registry (exactly the run's own observations) and the parent
// (whole-process totals).
func TestHistogramScopedMirror(t *testing.T) {
	parent := NewRegistry()
	parent.Histogram("t.mirror").Observe(time.Millisecond) // pre-existing process history

	scoped := NewScoped(parent)
	for i := 0; i < 3; i++ {
		scoped.Histogram("t.mirror").Observe(time.Duration(i+1) * time.Millisecond)
	}

	if got := scoped.Histogram("t.mirror").Snapshot(); got.Count != 3 {
		t.Fatalf("scoped count = %d, want 3 (exactly the run's own work)", got.Count)
	}
	ps := parent.Histogram("t.mirror").Snapshot()
	if ps.Count != 4 {
		t.Fatalf("parent count = %d, want 4 (mirror broken)", ps.Count)
	}
	if want := 7 * time.Millisecond; ps.Sum != want {
		t.Fatalf("parent sum = %v, want %v", ps.Sum, want)
	}
}

// TestHistogramQuantile observes a known uniform distribution and
// checks the interpolated percentiles stay within one bucket octave of
// the true values.
func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	snap := h.Snapshot()

	p50 := snap.Quantile(0.50)
	if p50 < 400*time.Microsecond || p50 > 600*time.Microsecond {
		t.Fatalf("p50 = %v, want ~500µs", p50)
	}
	p99 := snap.Quantile(0.99)
	if p99 < 900*time.Microsecond || p99 > 1024*time.Microsecond {
		t.Fatalf("p99 = %v, want ~990µs (within the 1024µs bucket bound)", p99)
	}
	if q := snap.Quantile(1.0); q > 1024*time.Microsecond {
		t.Fatalf("p100 = %v, beyond the top populated bucket bound", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

// TestHistogramQuantileEdgeCases pins the documented results for the
// inputs that used to return misleading durations: out-of-range q
// (including NaN), an empty snapshot at every q, and a distribution
// whose whole mass sits in the overflow (+Inf) bucket.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	nan := math.NaN()

	// Empty snapshot: 0 for every q, in range or not.
	var empty HistogramSnapshot
	for _, q := range []float64{-1, 0, 0.5, 1, 2, nan} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}

	// Out-of-range q clamps: q < 0 and NaN behave as 0, q > 1 as 1.
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	snap := h.Snapshot()
	if got, want := snap.Quantile(-3), snap.Quantile(0); got != want {
		t.Fatalf("Quantile(-3) = %v, want the q=0 value %v", got, want)
	}
	if got, want := snap.Quantile(nan), snap.Quantile(0); got != want {
		t.Fatalf("Quantile(NaN) = %v, want the q=0 value %v", got, want)
	}
	if got, want := snap.Quantile(7), snap.Quantile(1); got != want {
		t.Fatalf("Quantile(7) = %v, want the q=1 value %v", got, want)
	}
	if got := snap.Quantile(nan); got < 0 || got > 128*time.Microsecond {
		t.Fatalf("Quantile(NaN) = %v, outside the observed range", got)
	}

	// All mass in the overflow bucket: every quantile reports the
	// bucket's lower bound — the strongest supportable claim — rather
	// than 0 or a fabricated larger value.
	var inf Histogram
	infLo := HistogramBound(NumHistogramBuckets - 2)
	for i := 0; i < 10; i++ {
		inf.Observe(infLo * 4)
	}
	isnap := inf.Snapshot()
	if isnap.Buckets[NumHistogramBuckets-1] != 10 {
		t.Fatalf("setup: mass not in the overflow bucket: %v", isnap.Buckets)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1, -1, 2, nan} {
		if got := isnap.Quantile(q); got != infLo {
			t.Fatalf("overflow-only Quantile(%v) = %v, want the +Inf lower bound %v", q, got, infLo)
		}
	}
}

// TestSnapshotDeltaHistograms pins histogram behavior in Snapshot.Delta:
// moved histograms subtract bucket-wise, unmoved ones are dropped.
func TestSnapshotDeltaHistograms(t *testing.T) {
	r := NewRegistry()
	r.Histogram("t.moves").Observe(time.Microsecond)
	r.Histogram("t.static").Observe(time.Second)
	base := r.Snapshot()

	r.Histogram("t.moves").Observe(5 * time.Microsecond)
	r.Histogram("t.moves").Observe(3 * time.Second)
	delta := r.Snapshot().Delta(base)

	if _, ok := delta.Histograms["t.static"]; ok {
		t.Fatal("unmoved histogram survived the delta")
	}
	d, ok := delta.Histograms["t.moves"]
	if !ok {
		t.Fatal("moved histogram missing from the delta")
	}
	if d.Count != 2 {
		t.Fatalf("delta count = %d, want 2", d.Count)
	}
	if want := 5*time.Microsecond + 3*time.Second; d.Sum != want {
		t.Fatalf("delta sum = %v, want %v", d.Sum, want)
	}
}

// TestReportHistogramStats pins the report form: NewReport summarizes
// snapshot histograms into count/sum/percentiles and the JSON
// round-trips.
func TestReportHistogramStats(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 10; i++ {
		r.Histogram("t.report").Observe(time.Millisecond)
	}
	rep := NewReport("test", nil, r.Snapshot())
	st, ok := rep.Histograms["t.report"]
	if !ok {
		t.Fatal("report has no histogram stats")
	}
	if st.Count != 10 || st.SumNS != (10*time.Millisecond).Nanoseconds() {
		t.Fatalf("stats = %+v, want count 10 sum 10ms", st)
	}
	if st.P50NS <= 0 || st.P50 == "" {
		t.Fatalf("stats missing percentiles: %+v", st)
	}

	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Histograms["t.report"].Count != 10 {
		t.Fatalf("round-tripped count = %d, want 10", back.Histograms["t.report"].Count)
	}
}

// TestTextSinkRate pins the items/sec suffix on progress lines.
func TestTextSinkRate(t *testing.T) {
	var buf strings.Builder
	sink := TextSink(&buf)
	sink.Emit(Event{Stage: "rare_extract", Kind: StageProgress, Done: 500, Total: 1000, Elapsed: 2 * time.Second})
	line := buf.String()
	if !strings.Contains(line, "(250/s)") {
		t.Fatalf("progress line %q missing items/sec rate", line)
	}
	buf.Reset()
	sink.Emit(Event{Stage: "mine", Kind: StageProgress, Done: 3, Total: 0, Elapsed: 2 * time.Second})
	if line := buf.String(); !strings.Contains(line, "(1.5/s)") {
		t.Fatalf("totalless progress line %q missing items/sec rate", line)
	}
	buf.Reset()
	sink.Emit(Event{Stage: "mine", Kind: StageProgress, Done: 1, Total: 10})
	if line := buf.String(); strings.Contains(line, "/s)") {
		t.Fatalf("zero-elapsed progress line %q must not claim a rate", line)
	}
}
