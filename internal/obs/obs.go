// Package obs is the pipeline-wide observability layer: hierarchical
// timed spans, named counters/gauges/latency-histograms cheap enough
// for hot paths, progress-event sinks, JSON run reports, and a
// Prometheus text-exposition writer.
//
// The package uses only the standard library, and every primitive is
// cheap enough to stay compiled in unconditionally: incrementing a
// counter is one atomic add, a span is a pair of time.Now calls, and
// progress events go through a nil-safe Emit that costs a branch when
// no sink is installed. Instrumented packages declare their counters as
// package-level vars (obs.NewCounter registers in the process-wide
// default registry); one-shot run reports snapshot the registry before
// and after a run and record the delta.
//
// Per-run scoping: a process that executes several runs concurrently (a
// job-serving daemon) cannot attribute work by snapshot deltas of the
// shared registry — concurrent runs would bleed increments into each
// other's reports. Such callers give each run its own NewScoped
// registry, carried to the instrumented hot loops via WithRegistry /
// FromContext. Scoped metrics mirror every increment into the parent,
// so the process-wide registry still reports whole-process totals while
// each run's registry holds exactly that run's work.
package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric, safe for concurrent
// use from hot paths (one atomic add per Inc, plus one per ancestor
// registry when the counter is scoped).
type Counter struct {
	name   string
	v      atomic.Int64
	mirror *Counter // same-named counter in the parent registry, if scoped
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Bulk-adding once per batch is the preferred pattern for
// very hot loops (e.g. one Add per simulation run, not per vector).
func (c *Counter) Add(n int64) {
	c.v.Add(n)
	if c.mirror != nil {
		c.mirror.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins metric (e.g. graph vertex count), safe
// for concurrent use.
type Gauge struct {
	name   string
	v      atomic.Int64
	mirror *Gauge // same-named gauge in the parent registry, if scoped
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set records the value. A scoped gauge also sets the parent's gauge;
// concurrent runs racing on a shared parent gauge are last-write-wins,
// which is the gauge contract — each run's own registry stays exact.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	if g.mirror != nil {
		g.mirror.Set(v)
	}
}

// Value returns the last value set.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry holds named counters, gauges and histograms. Registration
// is get-or-create by name, so multiple packages (or repeated test
// runs) asking for the same name share one metric.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	parent     *Registry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// NewScoped returns an empty registry whose metrics mirror into parent:
// every Counter.Add (and Gauge.Set) applies to both the scoped metric
// and the same-named metric in parent. A run given its own scoped
// registry therefore produces an isolated, exact account of its work —
// Snapshot needs no delta — while the parent keeps whole-process
// totals. A nil parent mirrors into the default registry.
func NewScoped(parent *Registry) *Registry {
	if parent == nil {
		parent = defaultRegistry
	}
	r := NewRegistry()
	r.parent = parent
	return r
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		if r.parent != nil {
			c.mirror = r.parent.Counter(name)
		}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		if r.parent != nil {
			g.mirror = r.parent.Gauge(name)
		}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// if needed. Scoped registries mirror histograms exactly like counters:
// every Observe applies to both the scoped histogram and the same-named
// histogram in the parent, so a per-run registry holds that run's exact
// latency distribution while the parent keeps whole-process totals.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{name: name}
		if r.parent != nil {
			h.mirror = r.parent.Histogram(name)
		}
		r.histograms[name] = h
	}
	return h
}

// Names returns the registered counter names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters))
	for name := range r.counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Snapshot is a point-in-time copy of a registry's metric values.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Delta subtracts base from s counter-wise (and bucket-wise for
// histograms), dropping metrics that did not move, so a run report
// attributes only the work of that run. Gauges are last-value metrics
// and are kept as-is.
func (s Snapshot) Delta(base Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		if d := v - base.Counters[name]; d != 0 {
			out.Counters[name] = d
		}
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		if d, moved := h.Delta(base.Histograms[name]); moved {
			out.Histograms[name] = d
		}
	}
	return out
}

// defaultRegistry is the process-wide registry package-level metrics
// register with.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// NewCounter registers (or finds) a counter in the default registry.
// Intended for package-level vars in instrumented packages.
func NewCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// NewGauge registers (or finds) a gauge in the default registry.
func NewGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// NewHistogram registers (or finds) a histogram in the default registry.
func NewHistogram(name string) *Histogram { return defaultRegistry.Histogram(name) }

// registryKey carries the per-run registry through a context.
type registryKey struct{}

// WithRegistry returns a context that carries r to the instrumented hot
// loops downstream: code that resolves its metric handles through
// FromContext records work in r (and, for a scoped registry, mirrored
// into its parent) instead of the process-wide default. A nil r returns
// ctx unchanged.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey{}, r)
}

// FromContext returns the registry carried by ctx, or the default
// registry when none is installed — callers never need a nil check.
func FromContext(ctx context.Context) *Registry {
	if r, ok := ctx.Value(registryKey{}).(*Registry); ok && r != nil {
		return r
	}
	return defaultRegistry
}
