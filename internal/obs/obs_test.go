package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.hits")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if r.Counter("test.hits") != c {
		t.Fatal("re-registration must return the same counter")
	}
}

func TestGaugeLastValueWins(t *testing.T) {
	g := NewRegistry().Gauge("test.level")
	g.Set(7)
	g.Set(3)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("a")
	b := r.Counter("b")
	a.Add(5)
	b.Add(2)
	base := r.Snapshot()
	a.Add(10)
	d := r.Snapshot().Delta(base)
	if d.Counters["a"] != 10 {
		t.Fatalf("delta a = %d, want 10", d.Counters["a"])
	}
	if _, ok := d.Counters["b"]; ok {
		t.Fatal("unmoved counter b must be dropped from the delta")
	}
}

func TestSpanNestingAndMonotonicity(t *testing.T) {
	tr := NewTrace()
	root := tr.Start("root")
	c1 := root.Start("child1")
	time.Sleep(time.Millisecond)
	c1.End()
	c2 := root.Start("child2")
	c2.End()
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name() != "root" {
		t.Fatalf("roots = %v", roots)
	}
	kids := roots[0].Children()
	if len(kids) != 2 || kids[0].Name() != "child1" || kids[1].Name() != "child2" {
		t.Fatalf("children = %v", kids)
	}
	// Timing monotonicity: children start no earlier than the parent,
	// start in order, and every duration is non-negative with child1's
	// sleep visible.
	if kids[0].StartTime().Before(roots[0].StartTime()) {
		t.Fatal("child1 starts before root")
	}
	if kids[1].StartTime().Before(kids[0].StartTime()) {
		t.Fatal("child2 starts before child1")
	}
	if d := kids[0].Duration(); d < time.Millisecond {
		t.Fatalf("child1 duration %v < 1ms", d)
	}
	if root.Duration() < kids[0].Duration() {
		t.Fatal("root shorter than its child")
	}
	if tr.Find("child2") != kids[1] {
		t.Fatal("Find(child2) missed")
	}
	if tr.Find("nope") != nil {
		t.Fatal("Find(nope) should be nil")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTrace()
	s := tr.Start("s")
	s.End()
	d := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if got := s.Duration(); got != d {
		t.Fatalf("second End changed duration: %v -> %v", d, got)
	}
}

func TestRetroSpans(t *testing.T) {
	tr := NewTrace()
	base := time.Now()
	root := tr.Add("root", base, base.Add(10*time.Millisecond))
	root.Add("phase", base, base.Add(4*time.Millisecond))
	if d := tr.Find("phase").Duration(); d != 4*time.Millisecond {
		t.Fatalf("retro child duration = %v, want 4ms", d)
	}
	recs := tr.Records()
	if len(recs) != 1 || recs[0].DurationNS != int64(10*time.Millisecond) {
		t.Fatalf("records = %+v", recs)
	}
}

func TestReportRoundTrip(t *testing.T) {
	tr := NewTrace()
	base := time.Now()
	root := tr.Add("generate", base, base.Add(8*time.Millisecond))
	root.Add("levelize", base, base.Add(time.Millisecond))
	rep := NewReport("htgen", tr, Snapshot{
		Counters: map[string]int64{"atpg.podem_backtracks": 42},
		Gauges:   map[string]int64{"compat.graph_vertices": 7},
	})
	rep.Args = []string{"-circuit", "c2670"}
	rep.Extra = map[string]any{"circuit": "c2670"}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "htgen" || len(got.Args) != 2 {
		t.Fatalf("tool/args lost: %+v", got)
	}
	if got.Counters["atpg.podem_backtracks"] != 42 || got.Gauges["compat.graph_vertices"] != 7 {
		t.Fatalf("metrics lost: %+v", got)
	}
	sp := got.Span("levelize")
	if sp == nil || sp.DurationNS != int64(time.Millisecond) {
		t.Fatalf("levelize span lost: %+v", sp)
	}
	if got.Span("generate") == nil {
		t.Fatal("root span lost")
	}
	if !got.Start.Equal(rep.Start) || !got.End.Equal(rep.End) {
		t.Fatalf("window lost: %v-%v vs %v-%v", got.Start, got.End, rep.Start, rep.End)
	}
	if got.Extra["circuit"] != "c2670" {
		t.Fatalf("extra lost: %+v", got.Extra)
	}
}

func TestEmitNilSink(t *testing.T) {
	Emit(nil, Event{Stage: "x", Kind: StageStart}) // must not panic
	var calls int
	Emit(FuncSink(func(Event) { calls++ }), Event{Stage: "x", Kind: StageEnd})
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestTextSink(t *testing.T) {
	var buf bytes.Buffer
	s := TextSink(&buf)
	s.Emit(Event{Stage: "rare_extract", Kind: StageStart})
	s.Emit(Event{Stage: "rare_extract", Kind: StageProgress, Done: 5000, Total: 10000, Elapsed: time.Second})
	s.Emit(Event{Stage: "rare_extract", Kind: StageEnd, Elapsed: 2 * time.Second})
	out := buf.String()
	for _, want := range []string{"[rare_extract] start", "5000/10000 (50%)", "done in 2s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output %q missing %q", out, want)
		}
	}
}

func TestEventKindString(t *testing.T) {
	if StageStart.String() != "start" || StageProgress.String() != "progress" || StageEnd.String() != "end" {
		t.Fatal("kind names wrong")
	}
	if EventKind(9).String() != "EventKind(9)" {
		t.Fatal("unknown kind name wrong")
	}
}
