// Package obstest holds test-only helpers for validating telemetry
// output. It lives outside the _test.go files so the obs and serve test
// suites can share one Prometheus text-format checker instead of each
// pinning a drifting copy of the grammar.
package obstest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Prometheus text-format (0.0.4) line shapes.
var (
	helpRE   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	typeRE   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="([^"]+)"\})? (-?[0-9.eE+-]+|\+Inf)$`)
)

// ValidatePrometheusText checks a full exposition body against the
// text-format grammar plus the histogram invariants a scraper relies
// on: every sample is preceded by a TYPE for its family, bucket series
// carry le labels with strictly increasing bounds and non-decreasing
// cumulative counts, the "+Inf" bucket equals _count, and each
// histogram has a _sum and a _count. It returns the number of histogram
// families seen and a list of human-readable problems (empty when the
// body is valid).
func ValidatePrometheusText(body string) (histograms int, problems []string) {
	type family struct {
		typ        string
		lastCum    uint64
		lastLe     float64
		sawInf     bool
		infVal     uint64
		count      uint64
		sawSum     bool
		sawCount   bool
		bucketSeen bool
	}
	families := map[string]*family{}
	errf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	// base maps a histogram series name (_bucket/_sum/_count suffixed)
	// back to its family name.
	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(name, suf); trimmed != name {
				if f, ok := families[trimmed]; ok && f.typ == "histogram" {
					return trimmed
				}
			}
		}
		return name
	}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP"):
			if !helpRE.MatchString(line) {
				errf("line %d: malformed HELP: %q", ln+1, line)
			}
		case strings.HasPrefix(line, "# TYPE"):
			m := typeRE.FindStringSubmatch(line)
			if m == nil {
				errf("line %d: malformed TYPE: %q", ln+1, line)
				continue
			}
			families[m[1]] = &family{typ: m[2]}
		default:
			m := sampleRE.FindStringSubmatch(line)
			if m == nil {
				errf("line %d: malformed sample: %q", ln+1, line)
				continue
			}
			fam := families[base(m[1])]
			if fam == nil {
				errf("line %d: sample %q has no preceding TYPE", ln+1, m[1])
				continue
			}
			if fam.typ != "histogram" {
				if m[2] != "" {
					errf("line %d: le label on non-histogram sample: %q", ln+1, line)
				}
				continue
			}
			val, verr := strconv.ParseUint(m[4], 10, 64)
			switch {
			case strings.HasSuffix(m[1], "_bucket"):
				if m[2] == "" {
					errf("line %d: bucket sample without le label: %q", ln+1, line)
					continue
				}
				if verr != nil {
					errf("line %d: non-integer bucket count: %q", ln+1, line)
					continue
				}
				if m[3] == "+Inf" {
					fam.sawInf, fam.infVal = true, val
					continue
				}
				le, err := strconv.ParseFloat(m[3], 64)
				if err != nil {
					errf("line %d: bad le %q", ln+1, m[3])
					continue
				}
				if fam.bucketSeen && le <= fam.lastLe {
					errf("line %d: le bounds not increasing (%v after %v)", ln+1, le, fam.lastLe)
				}
				if val < fam.lastCum {
					errf("line %d: bucket counts not cumulative (%d after %d)", ln+1, val, fam.lastCum)
				}
				fam.lastLe, fam.lastCum, fam.bucketSeen = le, val, true
			case strings.HasSuffix(m[1], "_sum"):
				fam.sawSum = true
			case strings.HasSuffix(m[1], "_count"):
				if verr != nil {
					errf("line %d: non-integer count: %q", ln+1, line)
					continue
				}
				fam.sawCount, fam.count = true, val
			default:
				errf("line %d: histogram family sample with unknown suffix: %q", ln+1, line)
			}
		}
	}
	for name, fam := range families {
		if fam.typ != "histogram" {
			continue
		}
		histograms++
		if !fam.sawInf {
			errf("histogram %s: missing +Inf bucket", name)
		}
		if !fam.sawSum || !fam.sawCount {
			errf("histogram %s: missing _sum or _count", name)
		}
		if fam.infVal != fam.count {
			errf("histogram %s: +Inf bucket %d != _count %d", name, fam.infVal, fam.count)
		}
		if fam.lastCum > fam.count {
			errf("histogram %s: finite bucket %d exceeds _count %d", name, fam.lastCum, fam.count)
		}
	}
	return histograms, problems
}
