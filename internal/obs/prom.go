package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format, version 0.0.4 (the format every Prometheus-family
// scraper understands; serve it with Content-Type
// "text/plain; version=0.0.4"). Hand-rolled on the standard library:
//
//   - metric names are sanitized to [a-zA-Z_:][a-zA-Z0-9_:]* (the
//     registry's dotted names map '.' to '_', and the original name is
//     kept in the HELP line),
//   - counters and gauges emit one HELP/TYPE pair and one sample,
//   - histograms emit cumulative le-labeled _bucket series (trailing
//     all-zero buckets elided, "+Inf" always equal to _count), plus
//     _sum and _count. Durations are converted to base-unit seconds and
//     the exposition name gains a _seconds suffix, per Prometheus
//     naming convention.
//
// Metrics of each kind are emitted in sorted name order so the output
// is deterministic for a given snapshot.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		fmt.Fprintf(&b, "# HELP %s cghti counter %s\n# TYPE %s counter\n%s %d\n",
			pn, promEscape(name), pn, pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		fmt.Fprintf(&b, "# HELP %s cghti gauge %s\n# TYPE %s gauge\n%s %d\n",
			pn, promEscape(name), pn, pn, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name) + "_seconds"
		fmt.Fprintf(&b, "# HELP %s cghti histogram %s (seconds)\n# TYPE %s histogram\n",
			pn, promEscape(name), pn)
		last := -1
		for i, c := range h.Buckets {
			if c > 0 {
				last = i
			}
		}
		var cum uint64
		for i := 0; i <= last && i < NumHistogramBuckets-1; i++ {
			cum += h.Buckets[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pn, promSeconds(float64(HistogramBound(i))/1e9), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(&b, "%s_sum %s\n%s_count %d\n", pn, promSeconds(h.Sum.Seconds()), pn, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// promName sanitizes a registry metric name into the Prometheus metric
// name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*; every invalid byte becomes
// '_' (so the dotted registry names stay readable and distinct in
// practice).
func promName(s string) string {
	if s == "" {
		return "_"
	}
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// promEscape escapes a HELP docstring (backslash and newline, per the
// exposition format).
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promSeconds formats a seconds value the shortest way that round-trips
// as a float64 — the form Prometheus uses for both sample values and le
// labels.
func promSeconds(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
