package obs_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cghti/internal/obs"
	"cghti/internal/obs/obstest"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// promSnapshot builds a deterministic snapshot exercising every metric
// kind: counters, gauges, and a histogram with observations spread
// across several buckets (including one in the overflow bucket).
func promSnapshot() obs.Snapshot {
	r := obs.NewRegistry()
	r.Counter("rare.extractions").Add(3)
	r.Counter("serve.jobs_done").Add(42)
	r.Gauge("serve.jobs_queued").Set(2)
	h := r.Histogram("serve.queue_wait")
	h.Observe(500 * time.Nanosecond)  // bucket 0 (le 1µs)
	h.Observe(3 * time.Microsecond)   // bucket 2 (le 4µs)
	h.Observe(3 * time.Microsecond)   // bucket 2 again
	h.Observe(900 * time.Microsecond) // bucket 10 (le ~1.024ms)
	h.Observe(100 * time.Hour)        // overflow bucket (+Inf only)
	return r.Snapshot()
}

// TestWritePrometheusGolden pins the exposition byte-for-byte. Run with
// -update to regenerate testdata/prom.golden after a deliberate format
// change.
func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := obs.WritePrometheus(&b, promSnapshot()); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusGrammar validates the exposition against the text
// format grammar and the histogram invariants, and pins a few exact
// samples: cumulative bucket counts and the overflow observation
// appearing only in +Inf.
func TestWritePrometheusGrammar(t *testing.T) {
	var b strings.Builder
	if err := obs.WritePrometheus(&b, promSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	histograms, problems := obstest.ValidatePrometheusText(out)
	for _, p := range problems {
		t.Error(p)
	}
	if histograms != 1 {
		t.Errorf("histogram families = %d, want 1", histograms)
	}
	for _, want := range []string{
		`serve_queue_wait_seconds_bucket{le="1e-06"} 1`,
		`serve_queue_wait_seconds_bucket{le="4e-06"} 3`,
		`serve_queue_wait_seconds_bucket{le="+Inf"} 5`,
		"serve_queue_wait_seconds_count 5",
		"# TYPE serve_jobs_done counter",
		"# TYPE serve_jobs_queued gauge",
		"serve_jobs_done 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestValidatorRejectsBadExposition makes sure the shared grammar
// checker actually fails on malformed bodies — a validator that passes
// everything would make the serve-side /metrics test meaningless.
func TestValidatorRejectsBadExposition(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "orphan_metric 3\n",
		"broken +Inf invariant": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"non-cumulative buckets": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"0.2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"bad metric name": "# HELP 1bad x\n# TYPE 1bad counter\n1bad 1\n",
	}
	for name, body := range cases {
		if _, problems := obstest.ValidatePrometheusText(body); len(problems) == 0 {
			t.Errorf("%s: validator accepted malformed exposition:\n%s", name, body)
		}
	}
}
