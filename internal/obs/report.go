package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// SpanRecord is the JSON form of a span. Durations appear twice: as
// integer nanoseconds for machines (jq arithmetic) and as a
// human-readable string.
type SpanRecord struct {
	Name       string       `json:"name"`
	Start      time.Time    `json:"start"`
	DurationNS int64        `json:"duration_ns"`
	Duration   string       `json:"duration"`
	Aborted    bool         `json:"aborted,omitempty"`
	Children   []SpanRecord `json:"children,omitempty"`
}

// Records converts the trace to its JSON form. Open spans are measured
// up to now.
func (t *Trace) Records() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return recordSpans(t.roots)
}

func recordSpans(spans []*Span) []SpanRecord {
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanRecord, len(spans))
	for i, s := range spans {
		d := time.Since(s.start)
		if s.ended {
			d = s.end.Sub(s.start)
		}
		out[i] = SpanRecord{
			Name:       s.name,
			Start:      s.start,
			DurationNS: d.Nanoseconds(),
			Duration:   d.String(),
			Aborted:    s.aborted,
			Children:   recordSpans(s.children),
		}
	}
	return out
}

// Report is one run's serialized observability record: the span tree
// plus the metric deltas attributed to the run. Extra carries
// tool-specific summary fields (circuit name, result sizes, ...).
type Report struct {
	Tool     string           `json:"tool,omitempty"`
	Args     []string         `json:"args,omitempty"`
	Start    time.Time        `json:"start"`
	End      time.Time        `json:"end"`
	Spans    []SpanRecord     `json:"spans"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
	Extra    map[string]any   `json:"extra,omitempty"`
}

// NewReport assembles a report from a trace and a metrics snapshot
// (normally a Delta attributing only this run's work). Start/End are
// derived from the trace's span window; an empty trace gets a
// zero-width window at now.
func NewReport(tool string, tr *Trace, metrics Snapshot) *Report {
	rep := &Report{
		Tool:     tool,
		Counters: metrics.Counters,
		Gauges:   metrics.Gauges,
	}
	if tr != nil {
		rep.Spans = tr.Records()
	}
	if len(rep.Spans) == 0 {
		now := time.Now()
		rep.Start, rep.End = now, now
		return rep
	}
	rep.Start = rep.Spans[0].Start
	for _, s := range rep.Spans {
		if s.Start.Before(rep.Start) {
			rep.Start = s.Start
		}
		if end := s.Start.Add(time.Duration(s.DurationNS)); end.After(rep.End) {
			rep.End = end
		}
	}
	return rep
}

// Span returns the first span record named name in depth-first order,
// or nil.
func (r *Report) Span(name string) *SpanRecord {
	var walk func(spans []SpanRecord) *SpanRecord
	walk = func(spans []SpanRecord) *SpanRecord {
		for i := range spans {
			if spans[i].Name == name {
				return &spans[i]
			}
			if hit := walk(spans[i].Children); hit != nil {
				return hit
			}
		}
		return nil
	}
	return walk(r.Spans)
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path as indented JSON.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write %s: %w", path, err)
	}
	return f.Close()
}

// ReadReport parses a report written by WriteJSON.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("obs: parse report: %w", err)
	}
	return &rep, nil
}
