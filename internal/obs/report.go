package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// SpanRecord is the JSON form of a span. Durations appear twice: as
// integer nanoseconds for machines (jq arithmetic) and as a
// human-readable string.
type SpanRecord struct {
	Name       string       `json:"name"`
	Start      time.Time    `json:"start"`
	DurationNS int64        `json:"duration_ns"`
	Duration   string       `json:"duration"`
	Aborted    bool         `json:"aborted,omitempty"`
	Children   []SpanRecord `json:"children,omitempty"`
}

// Records converts the trace to its JSON form. Open spans are measured
// up to now.
func (t *Trace) Records() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return recordSpans(t.roots)
}

func recordSpans(spans []*Span) []SpanRecord {
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanRecord, len(spans))
	for i, s := range spans {
		d := time.Since(s.start)
		if s.ended {
			d = s.end.Sub(s.start)
		}
		out[i] = SpanRecord{
			Name:       s.name,
			Start:      s.start,
			DurationNS: d.Nanoseconds(),
			Duration:   d.String(),
			Aborted:    s.aborted,
			Children:   recordSpans(s.children),
		}
	}
	return out
}

// HistogramStats is the JSON form of a latency histogram: the exact
// count/sum plus interpolated percentiles, each duration appearing as
// integer nanoseconds for machines and a human-readable string (the
// SpanRecord convention).
type HistogramStats struct {
	Count uint64 `json:"count"`
	SumNS int64  `json:"sum_ns"`
	Sum   string `json:"sum"`
	P50NS int64  `json:"p50_ns"`
	P50   string `json:"p50"`
	P90NS int64  `json:"p90_ns"`
	P90   string `json:"p90"`
	P99NS int64  `json:"p99_ns"`
	P99   string `json:"p99"`
}

// Stats summarizes a histogram snapshot for reports.
func (s HistogramSnapshot) Stats() HistogramStats {
	p50, p90, p99 := s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99)
	return HistogramStats{
		Count: s.Count,
		SumNS: s.Sum.Nanoseconds(), Sum: s.Sum.String(),
		P50NS: p50.Nanoseconds(), P50: p50.String(),
		P90NS: p90.Nanoseconds(), P90: p90.String(),
		P99NS: p99.Nanoseconds(), P99: p99.String(),
	}
}

// Report is one run's serialized observability record: the span tree
// plus the metric deltas attributed to the run. Extra carries
// tool-specific summary fields (circuit name, result sizes, ...).
type Report struct {
	Tool       string                    `json:"tool,omitempty"`
	Args       []string                  `json:"args,omitempty"`
	Start      time.Time                 `json:"start"`
	End        time.Time                 `json:"end"`
	Spans      []SpanRecord              `json:"spans"`
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
	Extra      map[string]any            `json:"extra,omitempty"`
}

// NewReport assembles a report from a trace and a metrics snapshot
// (normally a Delta attributing only this run's work). Start/End are
// derived from the trace's span window; an empty trace gets a
// zero-width window at now.
func NewReport(tool string, tr *Trace, metrics Snapshot) *Report {
	rep := &Report{
		Tool:     tool,
		Counters: metrics.Counters,
		Gauges:   metrics.Gauges,
	}
	if len(metrics.Histograms) > 0 {
		rep.Histograms = make(map[string]HistogramStats, len(metrics.Histograms))
		for name, h := range metrics.Histograms {
			rep.Histograms[name] = h.Stats()
		}
	}
	if tr != nil {
		rep.Spans = tr.Records()
	}
	if len(rep.Spans) == 0 {
		now := time.Now()
		rep.Start, rep.End = now, now
		return rep
	}
	rep.Start = rep.Spans[0].Start
	for _, s := range rep.Spans {
		if s.Start.Before(rep.Start) {
			rep.Start = s.Start
		}
		if end := s.Start.Add(time.Duration(s.DurationNS)); end.After(rep.End) {
			rep.End = end
		}
	}
	return rep
}

// Span returns the first span record named name in depth-first order,
// or nil.
func (r *Report) Span(name string) *SpanRecord {
	var walk func(spans []SpanRecord) *SpanRecord
	walk = func(spans []SpanRecord) *SpanRecord {
		for i := range spans {
			if spans[i].Name == name {
				return &spans[i]
			}
			if hit := walk(spans[i].Children); hit != nil {
				return hit
			}
		}
		return nil
	}
	return walk(r.Spans)
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path as indented JSON.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write %s: %w", path, err)
	}
	return f.Close()
}

// ReadReport parses a report written by WriteJSON.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("obs: parse report: %w", err)
	}
	return &rep, nil
}
