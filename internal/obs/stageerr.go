package obs

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// StageError is the structured failure record of one pipeline stage: a
// cancellation, deadline expiry, injected fault, or recovered worker
// panic, attributed to the stage (and worker) it happened in. The
// framework attaches the partial span trace before returning it, so a
// caller that gets an error still sees how far the run progressed.
type StageError struct {
	// Stage is the canonical stage name (internal/stage constants).
	Stage string
	// Worker is the worker-goroutine index the failure occurred on, or
	// -1 when the failure is not attributable to a specific worker.
	Worker int
	// Err is the cause: context.Canceled, context.DeadlineExceeded, a
	// chaos-injected error, or a panic-derived error.
	Err error
	// PanicValue is the recovered panic value when the failure was a
	// panic, nil otherwise.
	PanicValue any
	// Stack is the panicking goroutine's stack when PanicValue is
	// non-nil.
	Stack string
	// Trace is the partial span trace up to the failure (set by the
	// framework; nil for errors surfaced below the framework layer).
	Trace *Trace
}

// Error renders "stage <name>[ worker <i>]: <cause>".
func (e *StageError) Error() string {
	who := fmt.Sprintf("stage %s", e.Stage)
	if e.Worker >= 0 {
		who = fmt.Sprintf("%s worker %d", who, e.Worker)
	}
	if e.PanicValue != nil {
		return fmt.Sprintf("%s: panic: %v", who, e.PanicValue)
	}
	return fmt.Sprintf("%s: %v", who, e.Err)
}

// Unwrap exposes the cause, so errors.Is(err, context.Canceled) and
// friends see through the stage attribution.
func (e *StageError) Unwrap() error { return e.Err }

// AsStageError unwraps err to a *StageError if one is in the chain.
func AsStageError(err error) (*StageError, bool) {
	var se *StageError
	ok := errors.As(err, &se)
	return se, ok
}

// Stagef wraps err in a StageError for the given stage, unless err is
// already a StageError (the innermost attribution — the worker that
// actually failed — wins). A nil err returns nil.
func Stagef(stageName string, err error) error {
	if err == nil {
		return nil
	}
	if _, ok := AsStageError(err); ok {
		return err
	}
	return &StageError{Stage: stageName, Worker: -1, Err: err}
}

// Guard runs f, converting a panic into a *StageError that records the
// stage, worker index, panic value, and stack. Worker goroutines wrap
// their loop bodies in Guard so a panic in one worker becomes a
// structured error on the collecting goroutine instead of killing the
// process. A panic value that is already a *StageError (a nested guard)
// passes through unchanged.
func Guard(stageName string, worker int, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(*StageError); ok {
				err = se
				return
			}
			err = &StageError{
				Stage:      stageName,
				Worker:     worker,
				Err:        fmt.Errorf("panic: %v", r),
				PanicValue: r,
				Stack:      string(debug.Stack()),
			}
		}
	}()
	return f()
}
