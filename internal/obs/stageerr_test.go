package obs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestStageErrorRendering(t *testing.T) {
	se := &StageError{Stage: "cube_gen", Worker: -1, Err: context.Canceled}
	if got := se.Error(); got != "stage cube_gen: context canceled" {
		t.Fatalf("Error() = %q", got)
	}
	se.Worker = 3
	if got := se.Error(); got != "stage cube_gen worker 3: context canceled" {
		t.Fatalf("Error() = %q", got)
	}
	se.PanicValue = "kaboom"
	if got := se.Error(); got != "stage cube_gen worker 3: panic: kaboom" {
		t.Fatalf("Error() = %q", got)
	}
}

func TestStageErrorUnwrap(t *testing.T) {
	se := &StageError{Stage: "s", Worker: -1, Err: fmt.Errorf("wrapped: %w", context.DeadlineExceeded)}
	if !errors.Is(se, context.DeadlineExceeded) {
		t.Fatal("errors.Is did not see through StageError")
	}
	got, ok := AsStageError(fmt.Errorf("outer: %w", se))
	if !ok || got != se {
		t.Fatalf("AsStageError = %v, %v", got, ok)
	}
	if _, ok := AsStageError(errors.New("plain")); ok {
		t.Fatal("AsStageError matched a plain error")
	}
}

func TestStagefInnermostWins(t *testing.T) {
	if Stagef("s", nil) != nil {
		t.Fatal("Stagef(nil) != nil")
	}
	inner := &StageError{Stage: "inner", Worker: 2, Err: context.Canceled}
	if got := Stagef("outer", inner); got != inner {
		t.Fatalf("Stagef rewrapped an existing StageError: %v", got)
	}
	wrapped := Stagef("outer", context.Canceled)
	se, ok := AsStageError(wrapped)
	if !ok || se.Stage != "outer" || se.Worker != -1 {
		t.Fatalf("Stagef = %+v", se)
	}
}

func TestGuardPassesThroughError(t *testing.T) {
	want := errors.New("plain failure")
	if got := Guard("s", 0, func() error { return want }); got != want {
		t.Fatalf("Guard = %v, want %v", got, want)
	}
	if got := Guard("s", 0, func() error { return nil }); got != nil {
		t.Fatalf("Guard = %v, want nil", got)
	}
}

func TestGuardConvertsPanic(t *testing.T) {
	err := Guard("cube_gen", 7, func() error { panic("exploded") })
	se, ok := AsStageError(err)
	if !ok {
		t.Fatalf("Guard returned %T, want *StageError", err)
	}
	if se.Stage != "cube_gen" || se.Worker != 7 {
		t.Fatalf("attribution = %s/%d", se.Stage, se.Worker)
	}
	if se.PanicValue != "exploded" {
		t.Fatalf("PanicValue = %v", se.PanicValue)
	}
	if !strings.Contains(se.Stack, "stageerr_test.go") {
		t.Fatalf("Stack does not point at the panic site:\n%s", se.Stack)
	}
}

func TestGuardNestedStageErrorPassesThrough(t *testing.T) {
	inner := &StageError{Stage: "inner", Worker: 1, Err: context.Canceled}
	err := Guard("outer", 0, func() error { panic(inner) })
	se, ok := AsStageError(err)
	if !ok || se != inner {
		t.Fatalf("nested StageError did not pass through: %v", err)
	}
}

func TestSpanAbort(t *testing.T) {
	tr := NewTrace()
	root := tr.Start("root")
	child := root.Start("child")
	child.Abort()
	if !child.Aborted() {
		t.Fatal("Aborted() = false after Abort")
	}
	d := child.Duration()
	child.End() // End after Abort must not clear the mark or restart the clock
	if !child.Aborted() || child.Duration() != d {
		t.Fatal("End after Abort changed the span")
	}
	root.End()
	if root.Aborted() {
		t.Fatal("root span wrongly marked aborted")
	}
	rec := tr.Records()
	if len(rec) != 1 || len(rec[0].Children) != 1 {
		t.Fatalf("records = %+v", rec)
	}
	if !rec[0].Children[0].Aborted || rec[0].Aborted {
		t.Fatalf("Aborted flags wrong in records: %+v", rec)
	}
}
