package obs

import (
	"sync"
	"time"
)

// Trace records the hierarchical timed spans of one run. All methods
// are safe for concurrent use; spans started from different goroutines
// simply attach to whatever parent they were started from.
type Trace struct {
	mu    sync.Mutex
	roots []*Span
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Span is one timed region of a trace. A span is open until End (or
// Abort) is called; Duration on an open span measures up to now.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	end      time.Time
	ended    bool
	aborted  bool
	children []*Span
}

// Start opens a new root span.
func (t *Trace) Start(name string) *Span {
	s := &Span{tr: t, name: name, start: time.Now()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Add retro-records a root span from externally measured times (used
// when a callee reports its own phase durations).
func (t *Trace) Add(name string, start, end time.Time) *Span {
	s := &Span{tr: t, name: name, start: start, end: end, ended: true}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Start opens a child span.
func (s *Span) Start(name string) *Span {
	c := &Span{tr: s.tr, name: name, start: time.Now()}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// Add retro-records a child span from externally measured times.
func (s *Span) Add(name string, start, end time.Time) *Span {
	c := &Span{tr: s.tr, name: name, start: start, end: end, ended: true}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// End closes the span. Idempotent: only the first call sets the end
// time.
func (s *Span) End() {
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.end = time.Now()
	}
	s.tr.mu.Unlock()
}

// Abort closes the span and marks it aborted: the stage was cut short
// by cancellation, a deadline/budget expiry, or a contained panic. Like
// End it is idempotent on the end time, but the aborted mark sticks
// even if End already ran.
func (s *Span) Abort() {
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.end = time.Now()
	}
	s.aborted = true
	s.tr.mu.Unlock()
}

// Aborted reports whether the span was cut short.
func (s *Span) Aborted() bool {
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.aborted
}

// Name returns the span's name.
func (s *Span) Name() string { return s.name }

// StartTime returns when the span was opened.
func (s *Span) StartTime() time.Time { return s.start }

// Duration returns end-start for a closed span, or the time elapsed so
// far for an open one.
func (s *Span) Duration() time.Duration {
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.ended {
		return s.end.Sub(s.start)
	}
	return time.Since(s.start)
}

// Children returns the child spans in start order.
func (s *Span) Children() []*Span {
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Roots returns the trace's root spans in start order.
func (t *Trace) Roots() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Find returns the first span named name in depth-first order, or nil.
func (t *Trace) Find(name string) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	var walk func(spans []*Span) *Span
	walk = func(spans []*Span) *Span {
		for _, s := range spans {
			if s.name == name {
				return s
			}
			if hit := walk(s.children); hit != nil {
				return hit
			}
		}
		return nil
	}
	return walk(t.roots)
}
