// Package opt provides netlist cleanup and light resynthesis passes:
// constant propagation, dangling-logic sweep, buffer chain collapsing
// and structural deduplication (common-subexpression sharing).
//
// Two roles in this repository. First, hygiene: parsed third-party
// netlists often carry dead cones and constant nets, and rare-node
// analysis is cleaner without them (a structurally constant net is
// "rare" by Algorithm 1's counting but unexcitable — PODEM then proves
// it untestable the hard way). Second, trojan blending: re-running
// deduplication after insertion shares trigger leaves with functional
// logic, which is the classic counter-move against structural detection
// of the TRIT/COTD kind.
package opt

import (
	"fmt"
	"sort"
	"strings"

	"cghti/internal/netlist"
)

// Result summarizes what a pass changed.
type Result struct {
	// RemovedGates counts gates deleted from the netlist.
	RemovedGates int
	// FoldedConstants counts gates replaced by constant drivers.
	FoldedConstants int
	// SharedGates counts gates merged by structural deduplication.
	SharedGates int
	// CollapsedBuffers counts BUF gates bypassed.
	CollapsedBuffers int
}

// String summarizes the result.
func (r Result) String() string {
	return fmt.Sprintf("removed %d, folded %d constants, shared %d, collapsed %d buffers",
		r.RemovedGates, r.FoldedConstants, r.SharedGates, r.CollapsedBuffers)
}

// Sweep removes gates that reach no output (primary or pseudo):
// repeated removal of fanout-free non-PO logic. The input netlist is
// rebuilt in place semantics-preserving; gate IDs are NOT stable across
// this call — use names to re-find nets.
func Sweep(n *netlist.Netlist) (*netlist.Netlist, Result, error) {
	keep := make([]bool, n.NumGates())
	// Mark everything reachable backwards from the outputs and the DFF
	// data cones.
	var stack []netlist.GateID
	for _, id := range n.CombOutputs() {
		stack = append(stack, id)
	}
	for _, id := range n.POs {
		stack = append(stack, id)
	}
	for _, id := range n.DFFs {
		stack = append(stack, id)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if keep[id] {
			continue
		}
		keep[id] = true
		stack = append(stack, n.Gates[id].Fanin...)
	}
	// Primary inputs always survive (they are the circuit's interface).
	for _, id := range n.PIs {
		keep[id] = true
	}
	removed := 0
	for i := range keep {
		if !keep[i] {
			removed++
		}
	}
	if removed == 0 {
		return n, Result{}, nil
	}
	out, err := rebuild(n, keep, nil)
	if err != nil {
		return nil, Result{}, err
	}
	return out, Result{RemovedGates: removed}, nil
}

// ConstProp folds constants through the netlist: gates whose output is
// structurally fixed (e.g. AND with a constant-0 input, XOR of a net
// with itself) become Const0/Const1 drivers, and single-survivor gates
// collapse to buffers. Repeats to a fixed point, then sweeps.
func ConstProp(n *netlist.Netlist) (*netlist.Netlist, Result, error) {
	work := n.Clone()
	res := Result{}
	for {
		changed, folded, err := constPropOnce(work)
		if err != nil {
			return nil, Result{}, err
		}
		res.FoldedConstants += folded
		if !changed {
			break
		}
	}
	swept, sres, err := Sweep(work)
	if err != nil {
		return nil, Result{}, err
	}
	res.RemovedGates = sres.RemovedGates
	return swept, res, nil
}

// constKind classifies a gate's current structural value.
func constKind(g *netlist.Gate) (uint8, bool) {
	switch g.Type {
	case netlist.Const0:
		return 0, true
	case netlist.Const1:
		return 1, true
	}
	return 0, false
}

func constPropOnce(n *netlist.Netlist) (bool, int, error) {
	topo, err := n.TopoOrder()
	if err != nil {
		return false, 0, err
	}
	folded := 0
	changed := false
	for _, id := range topo {
		g := &n.Gates[id]
		if g.Type.IsSource() || g.Type == netlist.DFF || len(g.Fanin) == 0 {
			continue
		}
		newType, mutated := foldGate(n, g)
		if !mutated {
			continue
		}
		changed = true
		if newType == netlist.Const0 || newType == netlist.Const1 {
			folded++
			// Disconnect any remaining fanins.
			for _, f := range g.Fanin {
				dropFanout(n, f, id)
			}
			g.Fanin = nil
		}
		g.Type = newType
	}
	return changed, folded, nil
}

// foldGate decides whether g can be simplified given constant fanins,
// mutating g's fanin list when constant inputs are dropped. It returns
// the replacement type and whether anything changed (type or fanins).
func foldGate(n *netlist.Netlist, g *netlist.Gate) (netlist.GateType, bool) {
	cv, hasCtl := g.Type.ControllingValue()
	inv := g.Type.HasInversion()
	if hasCtl {
		// Algebraic rules first: idempotence (drop duplicate fanins) and
		// complement (x together with NOT(x) forces the controlling
		// value: AND → 0, OR → 1).
		if dropDuplicateFanins(n, g) {
			if len(g.Fanin) == 1 {
				if inv {
					return netlist.Not, true
				}
				return netlist.Buf, true
			}
			return g.Type, true
		}
		for _, f := range g.Fanin {
			fg := &n.Gates[f]
			if fg.Type != netlist.Not {
				continue
			}
			for _, other := range g.Fanin {
				if other == fg.Fanin[0] {
					out := cv
					if inv {
						out ^= 1
					}
					if out == 0 {
						return netlist.Const0, true
					}
					return netlist.Const1, true
				}
			}
		}
		// AND/NAND/OR/NOR: a controlling constant fixes the output.
		nonConstant := g.Fanin[:0:0]
		for _, f := range g.Fanin {
			if v, isC := constKind(&n.Gates[f]); isC {
				if v == cv {
					// A controlling constant fixes the output.
					out := cv
					if inv {
						out ^= 1
					}
					if out == 0 {
						return netlist.Const0, true
					}
					return netlist.Const1, true
				}
				// Non-controlling constant: drop the input.
				continue
			}
			nonConstant = append(nonConstant, f)
		}
		if len(nonConstant) == 0 {
			// All inputs were non-controlling constants.
			out := cv ^ 1
			if inv {
				out ^= 1
			}
			if out == 0 {
				return netlist.Const0, true
			}
			return netlist.Const1, true
		}
		if len(nonConstant) < len(g.Fanin) {
			// Rewire without the constant inputs.
			for _, f := range g.Fanin {
				if v, isC := constKind(&n.Gates[f]); isC && v != cv {
					dropFanout(n, f, gateID(n, g))
				}
			}
			g.Fanin = append(g.Fanin[:0], nonConstant...)
			if len(g.Fanin) == 1 {
				if inv {
					return netlist.Not, true
				}
				return netlist.Buf, true
			}
			return g.Type, true
		}
		return g.Type, false
	}
	// XOR/XNOR: cancel equal-fanin pairs (x^x = 0), then fold constant
	// inputs into the parity.
	if g.Type == netlist.Xor || g.Type == netlist.Xnor {
		parity := uint8(0)
		if g.Type == netlist.Xnor {
			parity = 1
		}
		sawPair := cancelXorPairs(n, g)
		rest := g.Fanin[:0:0]
		sawConst := false
		for _, f := range g.Fanin {
			if v, isC := constKind(&n.Gates[f]); isC {
				parity ^= v
				sawConst = true
				dropFanout(n, f, gateID(n, g))
				continue
			}
			rest = append(rest, f)
		}
		if !sawConst && !sawPair {
			return g.Type, false
		}
		g.Fanin = append(g.Fanin[:0], rest...)
		switch {
		case len(g.Fanin) == 0:
			if parity == 1 {
				return netlist.Const1, true
			}
			return netlist.Const0, true
		case len(g.Fanin) == 1:
			if parity == 1 {
				return netlist.Not, true
			}
			return netlist.Buf, true
		default:
			if parity == 1 {
				return netlist.Xnor, true
			}
			return netlist.Xor, true
		}
	}
	// BUF/NOT of a constant.
	if g.Type == netlist.Buf || g.Type == netlist.Not {
		if v, isC := constKind(&n.Gates[g.Fanin[0]]); isC {
			if g.Type == netlist.Not {
				v ^= 1
			}
			dropFanout(n, g.Fanin[0], gateID(n, g))
			g.Fanin = nil
			if v == 1 {
				return netlist.Const1, true
			}
			return netlist.Const0, true
		}
	}
	return g.Type, false
}

// dropDuplicateFanins removes repeated fanins of an idempotent gate
// (AND/NAND/OR/NOR), reporting whether anything changed.
func dropDuplicateFanins(n *netlist.Netlist, g *netlist.Gate) bool {
	seen := make(map[netlist.GateID]bool, len(g.Fanin))
	rest := g.Fanin[:0:0]
	changed := false
	for _, f := range g.Fanin {
		if seen[f] {
			dropFanout(n, f, gateID(n, g))
			changed = true
			continue
		}
		seen[f] = true
		rest = append(rest, f)
	}
	if changed {
		g.Fanin = append(g.Fanin[:0], rest...)
	}
	return changed
}

// cancelXorPairs removes pairs of identical fanins from an XOR/XNOR
// (x ^ x = 0 drops out of the parity), reporting whether it changed
// anything. An odd survivor of each value stays.
func cancelXorPairs(n *netlist.Netlist, g *netlist.Gate) bool {
	count := make(map[netlist.GateID]int, len(g.Fanin))
	for _, f := range g.Fanin {
		count[f]++
	}
	changed := false
	rest := g.Fanin[:0:0]
	emitted := make(map[netlist.GateID]int, len(count))
	for _, f := range g.Fanin {
		keep := count[f] % 2 // odd count: keep exactly one
		if emitted[f] < keep {
			emitted[f]++
			rest = append(rest, f)
			continue
		}
		dropFanout(n, f, gateID(n, g))
		changed = true
	}
	if changed {
		g.Fanin = append(g.Fanin[:0], rest...)
	}
	return changed
}

// gateID recovers the ID of a gate pointer (gates are stored densely).
func gateID(n *netlist.Netlist, g *netlist.Gate) netlist.GateID {
	// Pointer arithmetic-free: the gate's name is unique.
	return n.MustLookup(g.Name)
}

func dropFanout(n *netlist.Netlist, src, dst netlist.GateID) {
	fo := n.Gates[src].Fanout
	for i, s := range fo {
		if s == dst {
			n.Gates[src].Fanout = append(fo[:i:i], fo[i+1:]...)
			return
		}
	}
}

// CollapseBuffers bypasses BUF gates: every consumer of a buffer is
// rewired to the buffer's driver. Buffers that are primary outputs stay
// (their net name is the interface); everything else is swept.
func CollapseBuffers(n *netlist.Netlist) (*netlist.Netlist, Result, error) {
	work := n.Clone()
	res := Result{}
	topo, err := work.TopoOrder()
	if err != nil {
		return nil, Result{}, err
	}
	for _, id := range topo {
		g := &work.Gates[id]
		if g.Type != netlist.Buf || len(g.Fanin) != 1 {
			continue
		}
		src := g.Fanin[0]
		// The driver may itself have been a collapsed buffer already
		// (topo order guarantees src is final).
		for _, s := range append([]netlist.GateID(nil), g.Fanout...) {
			if err := work.ReplaceFanin(s, id, src); err != nil {
				return nil, Result{}, err
			}
		}
		res.CollapsedBuffers++
	}
	swept, sres, err := Sweep(work)
	if err != nil {
		return nil, Result{}, err
	}
	res.RemovedGates = sres.RemovedGates
	return swept, res, nil
}

// Simplify chains ConstProp, CollapseBuffers and Dedup to a fixed
// point — the structural-reduction front end an equivalence check or a
// technology-independent cleanup wants.
func Simplify(n *netlist.Netlist) (*netlist.Netlist, Result, error) {
	work := n
	total := Result{}
	for round := 0; round < 8; round++ {
		before := work.NumGates()
		cp, r1, err := ConstProp(work)
		if err != nil {
			return nil, Result{}, err
		}
		cb, r2, err := CollapseBuffers(cp)
		if err != nil {
			return nil, Result{}, err
		}
		dd, r3, err := Dedup(cb)
		if err != nil {
			return nil, Result{}, err
		}
		total.FoldedConstants += r1.FoldedConstants
		total.CollapsedBuffers += r2.CollapsedBuffers
		total.SharedGates += r3.SharedGates
		total.RemovedGates += r1.RemovedGates + r2.RemovedGates + r3.RemovedGates
		work = dd
		if work.NumGates() == before {
			break
		}
	}
	return work, total, nil
}

// Dedup merges structurally identical gates (same type, same ordered
// fanin list) so each unique function is computed once, then sweeps.
func Dedup(n *netlist.Netlist) (*netlist.Netlist, Result, error) {
	work := n.Clone()
	res := Result{}
	dead := make([]bool, work.NumGates())
	for {
		topo, err := work.TopoOrder()
		if err != nil {
			return nil, Result{}, err
		}
		canon := map[string]netlist.GateID{}
		replaced := 0
		for _, id := range topo {
			g := &work.Gates[id]
			if dead[id] || g.Type.IsSource() || g.Type == netlist.DFF {
				continue
			}
			key := structKey(g)
			prev, ok := canon[key]
			if !ok || prev == id {
				canon[key] = id
				continue
			}
			// Re-point every consumer of id to prev, then neutralize id
			// so it can never match again: POs become a buffer of the
			// canonical gate (the name must survive); everything else is
			// disconnected and marked dead for the sweep.
			for _, s := range append([]netlist.GateID(nil), g.Fanout...) {
				if err := work.ReplaceFanin(s, id, prev); err != nil {
					return nil, Result{}, err
				}
			}
			for _, f := range g.Fanin {
				dropFanout(work, f, id)
			}
			g.Fanin = nil
			if g.IsPO {
				g.Type = netlist.Buf
				work.Connect(prev, id)
			} else {
				g.Type = netlist.Buf
				work.Connect(prev, id)
				dead[id] = true // unreferenced; Sweep removes it
			}
			replaced++
		}
		res.SharedGates += replaced
		if replaced == 0 {
			break
		}
	}
	swept, sres, err := Sweep(work)
	if err != nil {
		return nil, Result{}, err
	}
	res.RemovedGates = sres.RemovedGates
	return swept, res, nil
}

// structKey is the structural hash key of a gate: type + sorted fanins
// for commutative gates.
func structKey(g *netlist.Gate) string {
	ids := make([]int, len(g.Fanin))
	for i, f := range g.Fanin {
		ids[i] = int(f)
	}
	switch g.Type {
	case netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor:
		sort.Ints(ids)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:", g.Type)
	for _, v := range ids {
		fmt.Fprintf(&sb, "%d,", v)
	}
	return sb.String()
}

// rebuild reconstructs the netlist keeping only the marked gates,
// preserving names, types, PO markers and connection order. rename, if
// non-nil, maps old names to new ones.
func rebuild(n *netlist.Netlist, keep []bool, rename map[string]string) (*netlist.Netlist, error) {
	out := netlist.New(n.Name)
	name := func(old string) string {
		if rename != nil {
			if nn, ok := rename[old]; ok {
				return nn
			}
		}
		return old
	}
	// Two passes: declare, then connect (order preserved by iterating
	// original IDs ascending, which respects .bench-style declarations).
	for i := range n.Gates {
		if !keep[i] {
			continue
		}
		g := &n.Gates[i]
		if _, err := out.AddGate(name(g.Name), g.Type); err != nil {
			return nil, err
		}
	}
	for i := range n.Gates {
		if !keep[i] {
			continue
		}
		g := &n.Gates[i]
		dst := out.MustLookup(name(g.Name))
		for _, f := range g.Fanin {
			if !keep[f] {
				return nil, fmt.Errorf("opt: kept gate %q feeds from removed gate %q",
					g.Name, n.Gates[f].Name)
			}
			out.Connect(out.MustLookup(name(n.Gates[f].Name)), dst)
		}
	}
	// Preserve the PO list order (equivalence checking and .bench
	// round-trips compare outputs positionally).
	for _, po := range n.POs {
		out.MarkPO(out.MustLookup(name(n.Gates[po].Name)))
	}
	if err := out.Levelize(); err != nil {
		return nil, err
	}
	return out, nil
}
