package opt

import (
	"math/rand"
	"testing"

	"cghti/internal/bench"
	"cghti/internal/gen"
	"cghti/internal/netlist"
	"cghti/internal/sim"
)

func parse(t *testing.T, src string) *netlist.Netlist {
	t.Helper()
	n, err := bench.ParseString(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// assertEquivalent checks functional equivalence of two netlists over
// random vectors, matching outputs by PO name.
func assertEquivalent(t *testing.T, a, b *netlist.Netlist, vectors int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for v := 0; v < vectors; v++ {
		inA := map[netlist.GateID]uint8{}
		inB := map[netlist.GateID]uint8{}
		for _, id := range a.CombInputs() {
			val := uint8(rng.Intn(2))
			inA[id] = val
			bid, ok := b.Lookup(a.Gates[id].Name)
			if !ok {
				t.Fatalf("input %q missing after pass", a.Gates[id].Name)
			}
			inB[bid] = val
		}
		va, err := sim.Eval(a, inA)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := sim.Eval(b, inB)
		if err != nil {
			t.Fatal(err)
		}
		for _, po := range a.POs {
			name := a.Gates[po].Name
			bid, ok := b.Lookup(name)
			if !ok {
				t.Fatalf("PO %q missing after pass", name)
			}
			if va[po] != vb[bid] {
				t.Fatalf("vector %d: PO %q differs after pass", v, name)
			}
		}
	}
}

func TestSweepRemovesDeadCone(t *testing.T) {
	n := parse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
dead1 = OR(a, b)
dead2 = NOT(dead1)
`)
	out, res, err := Sweep(n)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedGates != 2 {
		t.Fatalf("removed %d, want 2", res.RemovedGates)
	}
	if _, ok := out.Lookup("dead2"); ok {
		t.Fatal("dead gate survived")
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, n, out, 16, 1)
}

func TestSweepKeepsEverythingLive(t *testing.T) {
	n := gen.C17()
	out, res, err := Sweep(n)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedGates != 0 || out.NumGates() != n.NumGates() {
		t.Fatalf("sweep changed a fully live netlist: %+v", res)
	}
}

func TestConstPropFoldsControllingConstant(t *testing.T) {
	n := parse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
zero = CONST0()
g = AND(a, zero)
y = OR(g, b)
`)
	out, res, err := ConstProp(n)
	if err != nil {
		t.Fatal(err)
	}
	if res.FoldedConstants == 0 {
		t.Fatal("no constants folded")
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, n, out, 16, 2)
}

func TestConstPropDropsNonControllingConstant(t *testing.T) {
	// AND(a, 1) -> BUF(a); XOR(a, 1) -> NOT(a).
	n := parse(t, `
INPUT(a)
OUTPUT(y)
OUTPUT(z)
one = CONST1()
y = AND(a, one)
z = XOR(a, one)
`)
	out, _, err := ConstProp(n)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Gates[out.MustLookup("y")].Type; got != netlist.Buf {
		t.Fatalf("AND(a,1) folded to %v, want BUF", got)
	}
	if got := out.Gates[out.MustLookup("z")].Type; got != netlist.Not {
		t.Fatalf("XOR(a,1) folded to %v, want NOT", got)
	}
	assertEquivalent(t, n, out, 4, 3)
}

func TestConstPropCascades(t *testing.T) {
	// Constants must propagate through multiple levels.
	n := parse(t, `
INPUT(a)
OUTPUT(y)
zero = CONST0()
g1 = OR(zero, zero)
g2 = NOT(g1)
g3 = AND(g2, g2)
y = XOR(a, g3)
`)
	out, _, err := ConstProp(n)
	if err != nil {
		t.Fatal(err)
	}
	// y = XOR(a, 1) = NOT(a).
	if got := out.Gates[out.MustLookup("y")].Type; got != netlist.Not {
		t.Fatalf("y folded to %v, want NOT", got)
	}
	assertEquivalent(t, n, out, 4, 4)
}

func TestDedupSharesIdenticalGates(t *testing.T) {
	n := parse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(z)
g1 = AND(a, b)
g2 = AND(b, a)
y = NOT(g1)
z = NOT(g2)
`)
	out, res, err := Dedup(n)
	if err != nil {
		t.Fatal(err)
	}
	// g1/g2 merge (commutative), then y/z merge... z is a PO so it
	// stays as a buffer of the canonical NOT.
	if res.SharedGates < 1 {
		t.Fatalf("nothing shared: %+v", res)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, n, out, 16, 5)
}

func TestDedupPreservesPONames(t *testing.T) {
	n := parse(t, `
INPUT(a)
OUTPUT(y)
OUTPUT(z)
y = NOT(a)
z = NOT(a)
`)
	out, _, err := Dedup(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"y", "z"} {
		id, ok := out.Lookup(name)
		if !ok || !out.Gates[id].IsPO {
			t.Fatalf("PO %q lost", name)
		}
	}
	assertEquivalent(t, n, out, 4, 6)
}

// TestPassesEquivalenceOnGeneratedCircuits is the big property: all
// passes preserve functional behaviour on realistic circuits.
func TestPassesEquivalenceOnGeneratedCircuits(t *testing.T) {
	for _, name := range []string{"c432", "s298", "c880"} {
		orig := gen.MustBenchmark(name)
		swept, _, err := Sweep(orig.Clone())
		if err != nil {
			t.Fatalf("%s sweep: %v", name, err)
		}
		assertEquivalent(t, orig, swept, 64, 7)

		cp, _, err := ConstProp(orig)
		if err != nil {
			t.Fatalf("%s constprop: %v", name, err)
		}
		assertEquivalent(t, orig, cp, 64, 8)

		dd, res, err := Dedup(orig)
		if err != nil {
			t.Fatalf("%s dedup: %v", name, err)
		}
		assertEquivalent(t, orig, dd, 64, 9)
		if dd.NumGates() > orig.NumGates() {
			t.Fatalf("%s: dedup grew the netlist (%+v)", name, res)
		}
	}
}

func TestResultString(t *testing.T) {
	r := Result{RemovedGates: 1, FoldedConstants: 2, SharedGates: 3, CollapsedBuffers: 4}
	if r.String() == "" {
		t.Fatal("empty Result string")
	}
}

func TestSweepSequentialKeepsStateCones(t *testing.T) {
	n := parse(t, `
INPUT(a)
OUTPUT(q)
q = DFF(d)
d = XOR(a, q)
`)
	out, res, err := Sweep(n)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedGates != 0 {
		t.Fatalf("sweep removed live sequential logic: %+v", res)
	}
	if len(out.DFFs) != 1 {
		t.Fatal("DFF lost")
	}
}
