// Package part partitions a netlist into fanout-cone regions so the
// per-gate stages of the pipeline — rare-node counting, PODEM cube
// generation, compatibility edge construction — can run on block-sized
// sub-netlists instead of the whole design. This is what takes the
// framework from ISCAS-sized benchmarks to million-gate SoCs: the dense
// O(n²) structures shrink to O((n/P)²) per partition, and each
// partition's work is independent, so it lands directly on the existing
// worker pool.
//
// The plan assigns every gate an owning partition and materializes, per
// partition, the transitive-fanin closure of its owned gates as a
// self-contained netlist.Compact (full-scan view: closure stops at PIs
// and DFFs). Because the closure is complete, simulating or justifying
// inside a partition gives bit-identical values to the global netlist —
// partitioning changes the schedule, never the results.
package part

import (
	"fmt"
	"sort"

	"cghti/internal/netlist"
)

// Sub is one partition's self-contained sub-netlist: the gates the
// partition owns plus their transitive fanin, with gate IDs remapped to
// a dense local space.
type Sub struct {
	// Index is the partition number in [0, Plan.Parts).
	Index int
	// C is the sub-netlist in arena form, levelized.
	C *netlist.Compact
	// ToGlobal maps local gate IDs to global ones; it is sorted
	// ascending (local order preserves global order).
	ToGlobal []netlist.GateID
	// Owned marks, per local gate, whether this partition owns it (the
	// rest is replicated fanin context shared with other partitions).
	Owned []bool
	// NumOwned counts the true entries of Owned.
	NumOwned int
}

// Local maps a global gate ID to this partition's local ID.
func (s *Sub) Local(g netlist.GateID) (netlist.GateID, bool) {
	i := sort.Search(len(s.ToGlobal), func(i int) bool { return s.ToGlobal[i] >= g })
	if i < len(s.ToGlobal) && s.ToGlobal[i] == g {
		return netlist.GateID(i), true
	}
	return netlist.InvalidGate, false
}

// Plan is a complete partitioning of a netlist.
type Plan struct {
	// Parts is the effective partition count (requests are clamped to
	// the seed count, so tiny circuits may get fewer than asked).
	Parts int
	// Owner maps every global gate to its owning partition.
	Owner []int32
	// Subs holds the per-partition sub-netlists, indexed by partition.
	Subs []*Sub
}

// Build computes a partition plan for c. Partitioning is seeded by the
// combinational outputs (PO drivers, then DFF data drivers — the cone
// roots of the full-scan view), split into parts contiguous blocks;
// every other gate joins the minimum-numbered partition among its
// fanout consumers, walking in reverse topological order. Gates on no
// output cone fall to partition 0. The assignment is a pure function of
// the netlist and parts — no RNG, no goroutine scheduling — so plans
// are deterministic.
func Build(c *netlist.Compact, parts int) (*Plan, error) {
	topo, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	num := c.NumGates()
	if num == 0 {
		return nil, fmt.Errorf("part: empty netlist")
	}
	seeds := c.CombOutputs()
	if parts < 1 {
		parts = 1
	}
	if parts > len(seeds) {
		parts = len(seeds)
	}
	if parts < 1 {
		parts = 1
	}

	const unowned = int32(-1)
	owner := make([]int32, num)
	for i := range owner {
		owner[i] = unowned
	}
	// Seed assignment: contiguous blocks over the CombOutputs order, so
	// adjacent cone roots (which share logic) land together. A gate
	// seeding twice (PO that also feeds a DFF) keeps its first — lowest
	// — partition.
	for p := 0; p < parts; p++ {
		lo, hi := p*len(seeds)/parts, (p+1)*len(seeds)/parts
		for _, s := range seeds[lo:hi] {
			if owner[s] == unowned {
				owner[s] = int32(p)
			}
		}
	}
	// Reverse-topo propagation: each unowned gate joins the lowest
	// partition among its non-DFF consumers (DFF edges cross a register
	// boundary and belong to the next cycle's cone).
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		if owner[id] != unowned {
			continue
		}
		min := unowned
		for _, f := range c.FanoutOf(id) {
			if c.TypeOf(f) == netlist.DFF {
				continue
			}
			if o := owner[f]; o != unowned && (min == unowned || o < min) {
				min = o
			}
		}
		if min == unowned {
			min = 0
		}
		owner[id] = min
	}

	plan := &Plan{Parts: parts, Owner: owner, Subs: make([]*Sub, parts)}
	for p := 0; p < parts; p++ {
		plan.Subs[p] = extractSub(c, owner, p)
	}
	return plan, nil
}

// extractSub materializes partition p: its owned gates plus their
// transitive fanin closure (stopping at PIs and DFFs, the full-scan
// sources), as a dense local-ID Compact. Local IDs preserve ascending
// global order. DFF data edges are kept only when the driver is itself
// a member; partitions never pull in another cone just to record a
// register's input.
func extractSub(c *netlist.Compact, owner []int32, p int) *Sub {
	num := c.NumGates()
	member := make([]bool, num)
	stack := make([]netlist.GateID, 0, 256)
	owned := 0
	for g := 0; g < num; g++ {
		if owner[g] == int32(p) {
			member[g] = true
			owned++
			stack = append(stack, netlist.GateID(g))
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t := c.TypeOf(id); t == netlist.DFF || t.IsSource() {
			continue // full-scan source: the cone stops here
		}
		for _, f := range c.FaninOf(id) {
			if !member[f] {
				member[f] = true
				stack = append(stack, f)
			}
		}
	}

	// Local IDs in ascending global order.
	toGlobal := make([]netlist.GateID, 0, owned)
	local := make([]netlist.GateID, num)
	for g := 0; g < num; g++ {
		if member[g] {
			local[g] = netlist.GateID(len(toGlobal))
			toGlobal = append(toGlobal, netlist.GateID(g))
		}
	}
	n := len(toGlobal)

	sub := &netlist.Compact{
		Name:        fmt.Sprintf("%s.part%d", c.Name, p),
		Names:       make([]string, n),
		Types:       make([]netlist.GateType, n),
		FaninStart:  make([]int32, n+1),
		FanoutStart: make([]int32, n+1),
		Level:       make([]int32, n),
		POMask:      make([]bool, n),
	}
	// Fanin arena (counting DFF edges only when the driver is present).
	var nin int32
	for li, g := range toGlobal {
		sub.Names[li] = c.NameOf(g)
		sub.Types[li] = c.TypeOf(g)
		sub.Level[li] = -1
		sub.FaninStart[li] = nin
		switch t := c.TypeOf(g); {
		case t == netlist.Input:
		case t == netlist.DFF:
			if f := c.FaninOf(g); len(f) > 0 && member[f[0]] {
				nin++
			}
		default:
			nin += int32(len(c.FaninOf(g)))
		}
	}
	sub.FaninStart[n] = nin
	sub.FaninIdx = make([]netlist.GateID, 0, nin)
	for _, g := range toGlobal {
		switch t := c.TypeOf(g); {
		case t == netlist.Input:
		case t == netlist.DFF:
			if f := c.FaninOf(g); len(f) > 0 && member[f[0]] {
				sub.FaninIdx = append(sub.FaninIdx, local[f[0]])
			}
		default:
			for _, f := range c.FaninOf(g) {
				sub.FaninIdx = append(sub.FaninIdx, local[f])
			}
		}
	}
	// Fanout arena, derived from the local fanin edges: counting pass,
	// prefix sum, then a fill in ascending consumer order (the same
	// order Connect would have inserted them).
	counts := make([]int32, n+1)
	for _, f := range sub.FaninIdx {
		counts[f+1]++
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	copy(sub.FanoutStart, counts)
	sub.FanoutIdx = make([]netlist.GateID, nin)
	fill := make([]int32, n)
	for li := 0; li < n; li++ {
		for _, f := range sub.FaninIdx[sub.FaninStart[li]:sub.FaninStart[li+1]] {
			sub.FanoutIdx[counts[f]+fill[f]] = netlist.GateID(li)
			fill[f]++
		}
	}
	// Port lists, ascending global order.
	for li, g := range toGlobal {
		switch c.TypeOf(g) {
		case netlist.Input:
			sub.PIs = append(sub.PIs, netlist.GateID(li))
		case netlist.DFF:
			sub.DFFs = append(sub.DFFs, netlist.GateID(li))
		}
		if c.IsPO(g) {
			sub.POMask[li] = true
			sub.POs = append(sub.POs, netlist.GateID(li))
		}
	}
	if err := sub.Levelize(); err != nil {
		// The subnet is an induced subgraph of an acyclic netlist, so
		// this cannot happen for any plan Build produces.
		panic(fmt.Sprintf("part: subnet levelize: %v", err))
	}

	s := &Sub{
		Index:    p,
		C:        sub,
		ToGlobal: toGlobal,
		Owned:    make([]bool, n),
		NumOwned: owned,
	}
	for li, g := range toGlobal {
		s.Owned[li] = owner[g] == int32(p)
	}
	return s
}
