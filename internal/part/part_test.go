package part

import (
	"math/rand"
	"reflect"
	"testing"

	"cghti/internal/gen"
	"cghti/internal/netlist"
	"cghti/internal/sim"
)

func socCompact(t *testing.T, gates int, seed int64) *netlist.Compact {
	t.Helper()
	n, err := gen.SoC(gen.SoCSpec{Gates: gates, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return netlist.CompactOf(n)
}

func TestPlanInvariants(t *testing.T) {
	c := socCompact(t, 5000, 9)
	plan, err := Build(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Parts != 4 {
		t.Fatalf("Parts = %d, want 4", plan.Parts)
	}
	totalOwned := 0
	for _, s := range plan.Subs {
		totalOwned += s.NumOwned
	}
	if totalOwned != c.NumGates() {
		t.Fatalf("owned gates sum to %d, want %d", totalOwned, c.NumGates())
	}
	for g := 0; g < c.NumGates(); g++ {
		if o := plan.Owner[g]; o < 0 || int(o) >= plan.Parts {
			t.Fatalf("gate %d owner %d out of range", g, o)
		}
	}
	for _, s := range plan.Subs {
		for li := 0; li < s.C.NumGates(); li++ {
			g := s.ToGlobal[li]
			// Local/global roundtrip and owned-flag consistency.
			if back, ok := s.Local(g); !ok || back != netlist.GateID(li) {
				t.Fatalf("part %d: Local(%d) = %d,%v, want %d", s.Index, g, back, ok, li)
			}
			if s.Owned[li] != (plan.Owner[g] == int32(s.Index)) {
				t.Fatalf("part %d gate %d: Owned flag disagrees with plan", s.Index, g)
			}
			if s.C.TypeOf(netlist.GateID(li)) != c.TypeOf(g) {
				t.Fatalf("part %d gate %d: type mismatch", s.Index, g)
			}
			// Closure: every non-source member carries its full global
			// fanin, remapped.
			if typ := c.TypeOf(g); typ != netlist.Input && typ != netlist.DFF {
				gf := c.FaninOf(g)
				lf := s.C.FaninOf(netlist.GateID(li))
				if len(gf) != len(lf) {
					t.Fatalf("part %d gate %d: fanin %d, want %d", s.Index, g, len(lf), len(gf))
				}
				for k := range gf {
					if s.ToGlobal[lf[k]] != gf[k] {
						t.Fatalf("part %d gate %d: fanin %d maps to %d, want %d",
							s.Index, g, k, s.ToGlobal[lf[k]], gf[k])
					}
				}
			}
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	c := socCompact(t, 3000, 2)
	a, err := Build(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two builds of the same plan differ")
	}
}

func TestPlanClampAndSinglePartition(t *testing.T) {
	c := netlist.CompactOf(gen.C17())
	plan, err := Build(c, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Parts > len(c.CombOutputs()) {
		t.Fatalf("Parts = %d exceeds seed count %d", plan.Parts, len(c.CombOutputs()))
	}

	one, err := Build(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Parts != 1 || one.Subs[0].C.NumGates() != c.NumGates() {
		t.Fatalf("single partition should hold the whole netlist: parts=%d gates=%d/%d",
			one.Parts, one.Subs[0].C.NumGates(), c.NumGates())
	}
	for g, o := range one.Owner {
		if o != 0 {
			t.Fatalf("gate %d owner %d with parts=1", g, o)
		}
	}
}

// TestPartitionedSimMatchesGlobal is the core soundness check: loading a
// partition's sub-netlist with the same input words the global engine
// drew and running it must reproduce the global simulation bit for bit
// on every member gate — owned and replicated alike.
func TestPartitionedSimMatchesGlobal(t *testing.T) {
	c := socCompact(t, 3000, 7)
	const words = 4
	global, err := sim.NewPackedCompact(c, words, 1)
	if err != nil {
		t.Fatal(err)
	}
	global.Randomize(rand.New(rand.NewSource(21)))
	global.Run()

	for _, parts := range []int{2, 5} {
		plan, err := Build(c, parts)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range plan.Subs {
			eng, err := sim.NewPackedCompact(s.C, words, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, li := range s.C.CombInputs() {
				for w := 0; w < words; w++ {
					eng.SetWord(li, w, global.Word(s.ToGlobal[li], w))
				}
			}
			eng.Run()
			for li := 0; li < s.C.NumGates(); li++ {
				for w := 0; w < words; w++ {
					if a, b := eng.Word(netlist.GateID(li), w), global.Word(s.ToGlobal[li], w); a != b {
						t.Fatalf("parts=%d part=%d gate %d word %d: %x vs global %x",
							parts, s.Index, s.ToGlobal[li], w, a, b)
					}
				}
			}
		}
	}
}
