// Package pipeline is the typed stage-graph executor behind Generate.
// A Stage is one pipeline step; a Graph wires stages into a DAG; Run
// executes them in dependency order and owns — once, uniformly — the
// cross-cutting machinery every stage needs: span start/end/abort,
// per-stage soft time budgets, panic containment (obs.Guard), progress
// events, per-stage latency histograms (hit vs miss) in the context
// registry, the hard-stop vs graceful-degradation classification, and
// content-addressed artifact caching.
//
// Failure semantics (identical to the hand-rolled pipeline this package
// replaced): pipeline-level cancellation/deadline expiry and contained
// panics always fail the run with a *obs.StageError naming the stage
// (innermost attribution preserved) and carrying the partial trace with
// aborted spans marked. Any other stage interruption — a budget expiry,
// an injected error — degrades instead of failing when the stage
// salvaged a usable partial result (Degradable), and the run continues
// on the best-so-far output with a Degradation record.
//
// Caching: a Cacheable stage with an available cache and untainted
// inputs may be replaced wholesale by a stored artifact. Cache hits
// record no span (the trace shows exactly what ran) and emit a
// StageCached event. A degraded stage taints its output and everything
// downstream of it for the rest of the run: tainted stages neither read
// nor write the cache, so partial results can never be stored under —
// or served for — a full-run fingerprint.
package pipeline

import (
	"context"
	"time"

	"cghti/internal/artifact"
	"cghti/internal/obs"
)

// Artifact is a stage output. Stages downcast their inputs to the
// concrete types their upstream stages produce; the graph definition is
// what guarantees the positions line up.
type Artifact = any

// Stage is one pipeline step. Run receives its dependencies' outputs in
// the order they were declared to Graph.Add. On interruption a stage
// should return its partial output alongside the error — whether that
// partial is usable is judged by the optional Degradable interface.
type Stage interface {
	Name() string
	Run(ctx context.Context, env *Env, inputs []Artifact) (Artifact, error)
}

// Degradable lets a stage declare that an interrupted Run left a usable
// partial result. Salvage inspects the partial output and reports
// progress in the stage's own work units plus a human-readable account;
// ok=false means nothing was salvageable and the run must fail.
type Degradable interface {
	Salvage(out Artifact) (done, total int, detail string, ok bool)
}

// Validator lets a stage assert a post-condition on its (possibly
// degraded) output. A validation failure fails the run with stage
// attribution; it runs after degradation handling, so "ran fine but
// produced nothing" surfaces as the stage's own descriptive error.
type Validator interface {
	Validate(out Artifact) error
}

// Cacheable lets a stage participate in content-addressed caching.
// CacheConfig returns the canonical encoding of exactly the
// configuration the stage's output depends on — determinism-neutral
// knobs like worker counts must be excluded. Encode/Decode round-trip
// the output artifact through the stable binary form.
type Cacheable interface {
	CacheConfig() []byte
	Encode(out Artifact) ([]byte, error)
	Decode(data []byte) (Artifact, error)
}

// Transparent marks a single-input stage whose output has the same
// content identity as its input (e.g. levelization, which annotates the
// netlist in place without changing its structure). Its fingerprint
// passes through unchanged, so downstream fingerprints match those
// computed directly from the input by standalone cached helpers.
type Transparent interface {
	CacheTransparent() bool
}

// Env carries the per-run context stages and the executor share.
type Env struct {
	// Sink receives stage progress events; nil disables reporting.
	Sink obs.Sink
	// Trace receives the stage spans (created by Run when nil).
	Trace *obs.Trace
	// Root is the parent span for stage spans (created by Run when nil).
	Root *obs.Span
	// Budgets gives stages individual soft time budgets by stage name.
	Budgets map[string]time.Duration
	// Cache, when non-nil, lets Cacheable stages skip recomputation.
	Cache *artifact.Cache
	// BaseFP seeds the fingerprint chain (the input netlist identity).
	// Zero disables caching even when Cache is set.
	BaseFP artifact.Fingerprint
}

// Progress returns a done/total callback that emits StageProgress
// events, throttled to whole-percent changes so hot loops stay cheap,
// or nil when no sink is configured. Elapsed is measured from the call
// (stages call this as they start running).
func (e *Env) Progress(stageName string) func(done, total int) {
	if e.Sink == nil {
		return nil
	}
	started := time.Now()
	lastPct := -1
	return func(done, total int) {
		pct := 100
		if total > 0 {
			pct = 100 * done / total
		}
		if pct == lastPct {
			return
		}
		lastPct = pct
		obs.Emit(e.Sink, obs.Event{
			Stage: stageName, Kind: obs.StageProgress,
			Done: done, Total: total, Elapsed: time.Since(started),
		})
	}
}

// Degradation records one stage that was cut short but left a usable
// partial result the pipeline continued on.
type Degradation struct {
	// Stage is the stage that was cut short.
	Stage string
	// Err is what cut it short (typically context.DeadlineExceeded
	// from the stage's budget).
	Err error
	// Done/Total report how far the stage got in its own work units.
	Done, Total int
	// Detail is a human-readable account of what was salvaged.
	Detail string
}

// Result is a completed pipeline run.
type Result struct {
	outputs map[string]Artifact
	// Degraded lists the stages that were cut short and salvaged, in
	// pipeline order. Empty on a clean run.
	Degraded []Degradation
	// Cached lists the stages served from the artifact cache, in
	// pipeline order.
	Cached []string
}

// Output returns the named stage's output (nil if the stage is unknown).
func (r *Result) Output(name string) Artifact { return r.outputs[name] }

type node struct {
	stage Stage
	deps  []int
}

// Graph is a stage DAG under construction. Stages are appended with
// Add; because a dependency must already be present when it is named,
// the graph is acyclic by construction and insertion order is a
// topological order.
type Graph struct {
	nodes  []node
	byName map[string]int
}

// NewGraph returns an empty stage graph.
func NewGraph() *Graph { return &Graph{byName: make(map[string]int)} }

// Add appends a stage whose inputs are the outputs of the named,
// previously added stages (in that order). It panics on a duplicate
// stage name or an unknown dependency — both are bugs in the graph
// definition, not runtime conditions.
func (g *Graph) Add(s Stage, deps ...string) {
	name := s.Name()
	if _, dup := g.byName[name]; dup {
		panic("pipeline: duplicate stage " + name)
	}
	n := node{stage: s}
	for _, d := range deps {
		i, ok := g.byName[d]
		if !ok {
			panic("pipeline: stage " + name + " depends on unknown stage " + d)
		}
		n.deps = append(n.deps, i)
	}
	g.byName[name] = len(g.nodes)
	g.nodes = append(g.nodes, n)
}

// Run executes the graph in insertion (topological) order.
func (g *Graph) Run(ctx context.Context, env *Env) (*Result, error) {
	if env == nil {
		env = &Env{}
	}
	if env.Trace == nil {
		env.Trace = obs.NewTrace()
	}
	ownRoot := env.Root == nil
	if ownRoot {
		env.Root = env.Trace.Start("pipeline")
	}

	res := &Result{outputs: make(map[string]Artifact, len(g.nodes))}
	outputs := make([]Artifact, len(g.nodes))
	fps := make([]artifact.Fingerprint, len(g.nodes))
	tainted := make([]bool, len(g.nodes))

	// Stage latency lands in the context registry (the per-run scoped
	// registry under a daemon, the process default otherwise), split by
	// how the stage was satisfied: pipeline.stage_time.<stage> for
	// executed stages, pipeline.cache_hit_time.<stage> for cache hits —
	// the hit-vs-miss wall-time distributions a serving fleet tunes its
	// cache against.
	reg := obs.FromContext(ctx)

	// fail converts a stage's terminal error into the pipeline's error:
	// the root span is aborted and the partial trace attached to the
	// StageError (the innermost attribution — e.g. the worker that
	// panicked — is kept when err already carries one).
	fail := func(stageName string, err error) error {
		env.Root.Abort()
		se, ok := obs.AsStageError(err)
		if !ok {
			se = &obs.StageError{Stage: stageName, Worker: -1, Err: err}
		}
		if se.Trace == nil {
			se.Trace = env.Trace
		}
		return se
	}
	abort := func(sp *obs.Span) {
		sp.Abort()
		obs.Emit(env.Sink, obs.Event{Stage: sp.Name(), Kind: obs.StageAbort, Elapsed: sp.Duration()})
	}

	for idx := range g.nodes {
		nd := &g.nodes[idx]
		st := nd.stage
		name := st.Name()

		inputs := make([]Artifact, len(nd.deps))
		taint := false
		for k, dep := range nd.deps {
			inputs[k] = outputs[dep]
			taint = taint || tainted[dep]
		}

		// Fingerprint chain: hash(name, stage config, input fps), with
		// the netlist identity seeding stages that have no dependencies.
		cacheable, canCache := st.(Cacheable)
		caching := env.Cache != nil && !env.BaseFP.IsZero()
		if caching {
			inFPs := make([]artifact.Fingerprint, 0, len(nd.deps)+1)
			for _, dep := range nd.deps {
				inFPs = append(inFPs, fps[dep])
			}
			if len(inFPs) == 0 {
				inFPs = append(inFPs, env.BaseFP)
			}
			if t, ok := st.(Transparent); ok && t.CacheTransparent() && len(inFPs) == 1 {
				fps[idx] = inFPs[0]
			} else {
				var cfgBytes []byte
				if canCache {
					cfgBytes = cacheable.CacheConfig()
				}
				fps[idx] = artifact.Derive(name, cfgBytes, inFPs...)
			}
		}

		// Warm path: an untainted cache hit replaces the stage — no span
		// is recorded (the trace shows exactly what ran) and a
		// StageCached event tells progress listeners why it is silent.
		// An undecodable entry falls through to recomputation.
		if caching && canCache && !taint {
			lookup := time.Now()
			if data, ok := env.Cache.GetCtx(ctx, fps[idx]); ok {
				if out, err := cacheable.Decode(data); err == nil {
					reg.Histogram("pipeline.cache_hit_time." + name).Observe(time.Since(lookup))
					outputs[idx] = out
					res.outputs[name] = out
					res.Cached = append(res.Cached, name)
					obs.Emit(env.Sink, obs.Event{Stage: name, Kind: obs.StageCached})
					continue
				}
			}
		}

		sp := env.Root.Start(name)
		obs.Emit(env.Sink, obs.Event{Stage: name, Kind: obs.StageStart})
		if err := ctx.Err(); err != nil {
			abort(sp)
			return nil, fail(name, err)
		}
		sctx, cancel := ctx, context.CancelFunc(func() {})
		if d, ok := env.Budgets[name]; ok && d > 0 {
			sctx, cancel = context.WithTimeout(ctx, d)
		}
		var out Artifact
		runErr := obs.Guard(name, -1, func() (e error) {
			out, e = st.Run(sctx, env, inputs)
			return e
		})
		cancel()

		if runErr != nil {
			// hardStop: pipeline-level cancellation/deadline and
			// contained panics always fail the run; anything else is
			// eligible for degradation if the stage salvaged something.
			hard := ctx.Err() != nil
			if se, ok := obs.AsStageError(runErr); ok && se.PanicValue != nil {
				hard = true
			}
			var done, total int
			var detail string
			salvaged := false
			if !hard {
				if dg, ok := st.(Degradable); ok {
					done, total, detail, salvaged = dg.Salvage(out)
				}
			}
			abort(sp)
			if hard || !salvaged {
				return nil, fail(name, runErr)
			}
			res.Degraded = append(res.Degraded, Degradation{
				Stage: name, Err: runErr, Done: done, Total: total, Detail: detail,
			})
			tainted[idx] = true
		} else {
			sp.End()
			reg.Histogram("pipeline.stage_time." + name).Observe(sp.Duration())
			obs.Emit(env.Sink, obs.Event{Stage: name, Kind: obs.StageEnd, Elapsed: sp.Duration()})
		}
		tainted[idx] = tainted[idx] || taint
		outputs[idx] = out
		res.outputs[name] = out

		// Post-condition check, after degradation handling: a degraded
		// stage that salvaged nothing usable downstream still fails with
		// its own descriptive error. The stage span keeps its recorded
		// state; only the root is marked aborted.
		if v, ok := st.(Validator); ok {
			if err := v.Validate(out); err != nil {
				return nil, fail(name, err)
			}
		}

		// Only clean, validated, untainted outputs are stored.
		if caching && canCache && runErr == nil && !tainted[idx] {
			if data, err := cacheable.Encode(out); err == nil {
				env.Cache.PutCtx(ctx, fps[idx], data)
			}
		}
	}
	if ownRoot {
		env.Root.End()
	}
	return res, nil
}

// Func adapts a bare function to the Stage interface, for steps that
// need no configuration struct of their own.
func Func(name string, fn func(ctx context.Context, env *Env, inputs []Artifact) (Artifact, error)) Stage {
	return funcStage{name: name, fn: fn}
}

// TransparentFunc is Func for a stage whose output keeps its single
// input's content identity (see Transparent).
func TransparentFunc(name string, fn func(ctx context.Context, env *Env, inputs []Artifact) (Artifact, error)) Stage {
	return transparentFuncStage{funcStage{name: name, fn: fn}}
}

type funcStage struct {
	name string
	fn   func(ctx context.Context, env *Env, inputs []Artifact) (Artifact, error)
}

func (s funcStage) Name() string { return s.name }
func (s funcStage) Run(ctx context.Context, env *Env, inputs []Artifact) (Artifact, error) {
	return s.fn(ctx, env, inputs)
}

type transparentFuncStage struct{ funcStage }

func (transparentFuncStage) CacheTransparent() bool { return true }
