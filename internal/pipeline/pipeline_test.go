package pipeline

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"cghti/internal/artifact"
	"cghti/internal/obs"
)

// countStage is a configurable Cacheable/Degradable/Validator stage used
// throughout the executor tests.
type countStage struct {
	name     string
	runs     int
	fn       func(inputs []Artifact) (Artifact, error)
	salvage  func(out Artifact) (int, int, string, bool)
	validate func(out Artifact) error
}

func (s *countStage) Name() string { return s.name }
func (s *countStage) Run(ctx context.Context, env *Env, inputs []Artifact) (Artifact, error) {
	s.runs++
	return s.fn(inputs)
}
func (s *countStage) Salvage(out Artifact) (int, int, string, bool) {
	if s.salvage == nil {
		return 0, 0, "", false
	}
	return s.salvage(out)
}
func (s *countStage) Validate(out Artifact) error {
	if s.validate == nil {
		return nil
	}
	return s.validate(out)
}
func (s *countStage) CacheConfig() []byte { return []byte(s.name) }
func (s *countStage) Encode(out Artifact) ([]byte, error) {
	return []byte(out.(string)), nil
}
func (s *countStage) Decode(data []byte) (Artifact, error) {
	return string(data), nil
}

func TestGraphChaining(t *testing.T) {
	g := NewGraph()
	g.Add(Func("a", func(ctx context.Context, env *Env, in []Artifact) (Artifact, error) {
		return "A", nil
	}))
	g.Add(Func("b", func(ctx context.Context, env *Env, in []Artifact) (Artifact, error) {
		return in[0].(string) + "B", nil
	}), "a")
	g.Add(Func("c", func(ctx context.Context, env *Env, in []Artifact) (Artifact, error) {
		return in[0].(string) + in[1].(string) + "C", nil
	}), "a", "b")

	res, err := g.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Output("c"); got != "AABC" {
		t.Fatalf("c output = %v, want AABC", got)
	}
	if len(res.Degraded) != 0 || len(res.Cached) != 0 {
		t.Fatalf("clean run reported Degraded=%v Cached=%v", res.Degraded, res.Cached)
	}
}

func TestAddPanicsOnBadGraph(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	g := NewGraph()
	g.Add(Func("a", nil))
	mustPanic("duplicate", func() { g.Add(Func("a", nil)) })
	mustPanic("unknown dep", func() { g.Add(Func("b", nil), "nope") })
}

func TestCacheHitSkipsRun(t *testing.T) {
	cache := artifact.NewCache(0, 0)
	base := artifact.Hash([]byte("netlist"))
	st := &countStage{name: "s", fn: func([]Artifact) (Artifact, error) { return "out", nil }}

	run := func() *Result {
		g := NewGraph()
		g.Add(st)
		res, err := g.Run(context.Background(), &Env{Cache: cache, BaseFP: base})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := run(); len(res.Cached) != 0 {
		t.Fatalf("cold run reported cached stages %v", res.Cached)
	}
	res := run()
	if st.runs != 1 {
		t.Fatalf("stage ran %d times, want 1 (warm run must hit the cache)", st.runs)
	}
	if got := res.Output("s"); got != "out" {
		t.Fatalf("warm output = %v", got)
	}
	if len(res.Cached) != 1 || res.Cached[0] != "s" {
		t.Fatalf("Cached = %v, want [s]", res.Cached)
	}
}

func TestCacheHitRecordsNoSpanButEmitsEvent(t *testing.T) {
	cache := artifact.NewCache(0, 0)
	base := artifact.Hash([]byte("netlist"))
	st := &countStage{name: "s", fn: func([]Artifact) (Artifact, error) { return "out", nil }}

	run := func() (*obs.Span, []obs.Event) {
		var events []obs.Event
		sink := obs.FuncSink(func(e obs.Event) { events = append(events, e) })
		trace := obs.NewTrace()
		root := trace.Start("root")
		g := NewGraph()
		g.Add(st)
		if _, err := g.Run(context.Background(), &Env{Sink: sink, Trace: trace, Root: root, Cache: cache, BaseFP: base}); err != nil {
			t.Fatal(err)
		}
		root.End()
		return root, events
	}
	root, _ := run()
	if n := len(root.Children()); n != 1 {
		t.Fatalf("cold run recorded %d stage spans, want 1", n)
	}
	root, events := run()
	if n := len(root.Children()); n != 0 { // the hit is silent
		t.Fatalf("warm run recorded %d stage spans, want 0", n)
	}
	var cached int
	for _, e := range events {
		if e.Kind == obs.StageCached && e.Stage == "s" {
			cached++
		}
		if e.Kind == obs.StageStart {
			t.Error("warm run emitted StageStart")
		}
	}
	if cached != 1 {
		t.Fatalf("warm run emitted %d StageCached events, want 1", cached)
	}
}

func TestDegradedStageTaintsDownstreamCache(t *testing.T) {
	cache := artifact.NewCache(0, 0)
	base := artifact.Hash([]byte("netlist"))
	softErr := errors.New("interrupted")

	up := &countStage{
		name:    "up",
		fn:      func([]Artifact) (Artifact, error) { return "partial", softErr },
		salvage: func(out Artifact) (int, int, string, bool) { return 1, 2, "half done", true },
	}
	down := &countStage{name: "down", fn: func(in []Artifact) (Artifact, error) {
		return in[0].(string) + "+down", nil
	}}
	g := NewGraph()
	g.Add(up)
	g.Add(down, "up")
	res, err := g.Run(context.Background(), &Env{Cache: cache, BaseFP: base})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degraded) != 1 || res.Degraded[0].Stage != "up" || !errors.Is(res.Degraded[0].Err, softErr) {
		t.Fatalf("Degraded = %+v", res.Degraded)
	}
	if d := res.Degraded[0]; d.Done != 1 || d.Total != 2 || d.Detail != "half done" {
		t.Fatalf("Degradation fields = %+v", d)
	}
	if got := res.Output("down"); got != "partial+down" {
		t.Fatalf("down output = %v", got)
	}
	// Nothing may have been stored: partial results never land under
	// full-run fingerprints, for the degraded stage or anything below it.
	if cache.Len() != 0 {
		t.Fatalf("cache holds %d entries after a degraded run", cache.Len())
	}
}

func TestUnsalvageableSoftErrorFails(t *testing.T) {
	softErr := errors.New("broken")
	st := &countStage{name: "s", fn: func([]Artifact) (Artifact, error) { return nil, softErr }}
	g := NewGraph()
	g.Add(st)
	_, err := g.Run(context.Background(), nil)
	if !errors.Is(err, softErr) {
		t.Fatalf("err = %v", err)
	}
	se, ok := obs.AsStageError(err)
	if !ok || se.Stage != "s" {
		t.Fatalf("no stage attribution: %v", err)
	}
	if se.Trace == nil {
		t.Error("partial trace not attached")
	}
}

func TestValidatorFailureFailsRun(t *testing.T) {
	st := &countStage{
		name:     "s",
		fn:       func([]Artifact) (Artifact, error) { return "empty", nil },
		validate: func(out Artifact) error { return fmt.Errorf("nothing usable in %v", out) },
	}
	g := NewGraph()
	g.Add(st)
	_, err := g.Run(context.Background(), nil)
	if err == nil {
		t.Fatal("validator failure did not fail the run")
	}
	se, ok := obs.AsStageError(err)
	if !ok || se.Stage != "s" {
		t.Fatalf("no stage attribution: %v", err)
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := &countStage{name: "s", fn: func([]Artifact) (Artifact, error) { return "out", nil }}
	g := NewGraph()
	g.Add(st)
	_, err := g.Run(ctx, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.runs != 0 {
		t.Error("stage ran under a pre-cancelled context")
	}
}

func TestPanicIsHardStop(t *testing.T) {
	st := &countStage{
		name:    "s",
		fn:      func([]Artifact) (Artifact, error) { panic("boom") },
		salvage: func(out Artifact) (int, int, string, bool) { return 1, 1, "", true },
	}
	g := NewGraph()
	g.Add(st)
	_, err := g.Run(context.Background(), nil)
	if err == nil {
		t.Fatal("panic did not fail the run")
	}
	se, ok := obs.AsStageError(err)
	if !ok || se.PanicValue == nil {
		t.Fatalf("panic not surfaced as StageError: %v", err)
	}
	// Salvage must not have been consulted: panics never degrade.
}

// decodeFailStage rejects every cache entry, forcing recomputation.
type decodeFailStage struct{ countStage }

func (s *decodeFailStage) Decode(data []byte) (Artifact, error) {
	return nil, errors.New("undecodable")
}

func TestUndecodableEntryFallsThrough(t *testing.T) {
	cache := artifact.NewCache(0, 0)
	base := artifact.Hash([]byte("netlist"))
	st := &decodeFailStage{countStage{name: "s", fn: func([]Artifact) (Artifact, error) { return "fresh", nil }}}
	fp := artifact.Derive("s", st.CacheConfig(), base)
	cache.Put(fp, []byte("stale"))

	g := NewGraph()
	g.Add(st)
	res, err := g.Run(context.Background(), &Env{Cache: cache, BaseFP: base})
	if err != nil {
		t.Fatal(err)
	}
	if st.runs != 1 {
		t.Fatal("undecodable entry was trusted instead of recomputed")
	}
	if got := res.Output("s"); got != "fresh" {
		t.Fatalf("output = %v", got)
	}
	if len(res.Cached) != 0 {
		t.Fatalf("Cached = %v after a decode failure", res.Cached)
	}
}

func TestTransparentStagePassesFingerprintThrough(t *testing.T) {
	cache := artifact.NewCache(0, 0)
	base := artifact.Hash([]byte("netlist"))
	st := &countStage{name: "real", fn: func(in []Artifact) (Artifact, error) { return "out", nil }}

	g := NewGraph()
	g.Add(TransparentFunc("prep", func(ctx context.Context, env *Env, in []Artifact) (Artifact, error) {
		return "prepped", nil
	}))
	g.Add(st, "prep")
	if _, err := g.Run(context.Background(), &Env{Cache: cache, BaseFP: base}); err != nil {
		t.Fatal(err)
	}
	// The entry must be keyed as if "real" consumed the base fingerprint
	// directly — the contract standalone cached helpers rely on.
	fp := artifact.Derive("real", st.CacheConfig(), base)
	if _, ok := cache.Get(fp); !ok {
		t.Fatal("transparent stage altered the downstream fingerprint chain")
	}
}
