// Package prob computes analytic signal probabilities — the probability
// each net carries logic 1 under uniform random inputs — by a single
// topological pass assuming fanin independence (the classic first-order
// Parker–McCluskey approximation).
//
// Signal probability is the insertion criterion of the TRIT and
// ATTRITION frameworks the paper compares against (Table I), and the
// analytic estimate is the cheap screen: exact on trees, optimistic on
// reconvergent logic, three orders of magnitude faster than simulation.
// internal/rare remains the ground truth for trigger selection; this
// package provides the cross-check and the screening pass.
package prob

import (
	"fmt"

	"cghti/internal/netlist"
)

// Config parameterizes the propagation.
type Config struct {
	// InputProb is the probability of 1 at primary inputs and scan state
	// (default 0.5).
	InputProb float64
}

// Compute returns P(net = 1) for every gate, indexed by GateID.
func Compute(n *netlist.Netlist, cfg Config) ([]float64, error) {
	p1 := cfg.InputProb
	if p1 <= 0 || p1 >= 1 {
		p1 = 0.5
	}
	topo, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	p := make([]float64, n.NumGates())
	for _, id := range topo {
		g := &n.Gates[id]
		switch g.Type {
		case netlist.Input, netlist.DFF:
			p[id] = p1
		case netlist.Const0:
			p[id] = 0
		case netlist.Const1:
			p[id] = 1
		case netlist.Buf:
			p[id] = p[g.Fanin[0]]
		case netlist.Not:
			p[id] = 1 - p[g.Fanin[0]]
		case netlist.And, netlist.Nand:
			acc := 1.0
			for _, f := range g.Fanin {
				acc *= p[f]
			}
			if g.Type == netlist.Nand {
				acc = 1 - acc
			}
			p[id] = acc
		case netlist.Or, netlist.Nor:
			acc := 1.0
			for _, f := range g.Fanin {
				acc *= 1 - p[f]
			}
			if g.Type == netlist.Or {
				acc = 1 - acc
			}
			p[id] = acc
		case netlist.Xor, netlist.Xnor:
			acc := 0.0
			for _, f := range g.Fanin {
				q := p[f]
				acc = acc*(1-q) + q*(1-acc)
			}
			if g.Type == netlist.Xnor {
				acc = 1 - acc
			}
			p[id] = acc
		default:
			return nil, fmt.Errorf("prob: unsupported gate type %v", g.Type)
		}
	}
	return p, nil
}

// RareCandidate is a net whose analytic probability of some value falls
// below a threshold.
type RareCandidate struct {
	// ID is the gate driving the net.
	ID netlist.GateID
	// RareValue is the unlikely logic value.
	RareValue uint8
	// Prob is the analytic probability of RareValue.
	Prob float64
}

// ScreenRare returns the nets whose analytic probability of 0 or 1 is
// below threshold — the cheap pre-filter before simulation-based
// extraction on very large designs. PIs, constants and scan state are
// excluded, mirroring internal/rare's default.
func ScreenRare(n *netlist.Netlist, threshold float64, cfg Config) ([]RareCandidate, error) {
	p, err := Compute(n, cfg)
	if err != nil {
		return nil, err
	}
	var out []RareCandidate
	for i := range n.Gates {
		switch n.Gates[i].Type {
		case netlist.Input, netlist.DFF, netlist.Const0, netlist.Const1:
			continue
		}
		id := netlist.GateID(i)
		switch {
		case p[i] <= threshold:
			out = append(out, RareCandidate{ID: id, RareValue: 1, Prob: p[i]})
		case 1-p[i] <= threshold:
			out = append(out, RareCandidate{ID: id, RareValue: 0, Prob: 1 - p[i]})
		}
	}
	return out, nil
}
