package prob

import (
	"math"
	"testing"

	"cghti/internal/bench"
	"cghti/internal/netlist"
	"cghti/internal/rare"
)

func parse(t *testing.T, src string) *netlist.Netlist {
	t.Helper()
	n, err := bench.ParseString(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestTreeExact(t *testing.T) {
	// A fanout-free tree: the independence assumption is exact.
	n := parse(t, `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
g1 = AND(a, b)
g2 = OR(c, d)
y = XOR(g1, g2)
`)
	p, err := Compute(n, Config{})
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, want float64) {
		t.Helper()
		got := p[n.MustLookup(name)]
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("P(%s=1) = %v, want %v", name, got, want)
		}
	}
	check("g1", 0.25)
	check("g2", 0.75)
	// XOR: 0.25·0.25 + 0.75·0.75 = 0.625 for p⊕q with p=.25,q=.75:
	// p(1-q)+q(1-p) = .25*.25 + .75*.75 = 0.625.
	check("y", 0.625)
}

func TestGateFormulas(t *testing.T) {
	n := parse(t, `
INPUT(a)
INPUT(b)
OUTPUT(o1)
OUTPUT(o2)
OUTPUT(o3)
OUTPUT(o4)
OUTPUT(o5)
OUTPUT(o6)
o1 = NAND(a, b)
o2 = NOR(a, b)
o3 = XNOR(a, b)
o4 = NOT(a)
o5 = BUFF(a)
one = CONST1()
o6 = AND(a, one)
`)
	p, err := Compute(n, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		"o1": 0.75, "o2": 0.25, "o3": 0.5, "o4": 0.5, "o5": 0.5, "o6": 0.5, "one": 1,
	} {
		if got := p[n.MustLookup(name)]; math.Abs(got-want) > 1e-12 {
			t.Errorf("P(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestCustomInputProb(t *testing.T) {
	n := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")
	p, err := Compute(n, Config{InputProb: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if got := p[n.MustLookup("y")]; math.Abs(got-0.81) > 1e-12 {
		t.Errorf("P(y) = %v, want 0.81", got)
	}
}

func TestScreenRare(t *testing.T) {
	n := parse(t, `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
OUTPUT(z)
y = AND(a, b, c, d)
z = NAND(a, b, c, d)
`)
	cands, err := ScreenRare(n, 0.1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]uint8{}
	for _, c := range cands {
		found[n.Gates[c.ID].Name] = c.RareValue
		if c.Prob > 0.1 {
			t.Errorf("candidate %s with prob %v above threshold", n.Gates[c.ID].Name, c.Prob)
		}
	}
	if v, ok := found["y"]; !ok || v != 1 {
		t.Error("AND4 not screened rare-1")
	}
	if v, ok := found["z"]; !ok || v != 0 {
		t.Error("NAND4 not screened rare-0")
	}
}

// TestAgreesWithSimulationOnTrees: on fanout-free logic, the analytic
// estimate matches simulation-based extraction within sampling noise.
func TestAgreesWithSimulationOnTrees(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
INPUT(f)
OUTPUT(y)
g1 = AND(a, b, c)
g2 = NOR(d, e)
g3 = OR(g1, g2)
y = AND(g3, f)
`
	n := parse(t, src)
	p, err := Compute(n, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rare.Extract(n, rare.Config{Vectors: 20000, Threshold: 0.45, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for g := range n.Gates {
		if n.Gates[g].Type == netlist.Input {
			continue
		}
		sim1 := float64(rs.Ones[g]) / 20000
		if math.Abs(sim1-p[g]) > 0.02 {
			t.Errorf("%s: analytic %v vs simulated %v", n.Gates[g].Name, p[g], sim1)
		}
	}
}

// TestReconvergenceBias documents the known limitation: reconvergent
// fanout breaks the independence assumption. y = AND(a, NOT(a)) is
// constantly 0 but the analytic estimate says 0.25.
func TestReconvergenceBias(t *testing.T) {
	n := parse(t, `
INPUT(a)
OUTPUT(y)
na = NOT(a)
y = AND(a, na)
`)
	p, err := Compute(n, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p[n.MustLookup("y")]; math.Abs(got-0.25) > 1e-12 {
		t.Errorf("analytic estimate changed: %v (document the new behaviour)", got)
	}
}
