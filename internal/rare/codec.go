package rare

import (
	"fmt"

	"cghti/internal/artifact"
	"cghti/internal/netlist"
)

// setCodecVersion guards the encoding layout: bumping it invalidates
// every cached rare set (the version participates in the bytes, so old
// entries simply fail to decode and are recomputed).
const setCodecVersion = 1

// EncodeSet serializes s to the canonical binary artifact form.
func EncodeSet(s *Set) []byte {
	e := artifact.NewEnc()
	e.Uvarint(setCodecVersion)
	e.Int(s.Vectors)
	e.Varint(s.Threshold)
	e.Int(s.TotalNodes)
	EncodeNodes(e, s.RN1)
	EncodeNodes(e, s.RN0)
	e.Int(len(s.Ones))
	for _, v := range s.Ones {
		e.Varint(v)
	}
	return e.Finish()
}

// DecodeSet reverses EncodeSet. Any structural mismatch — version skew,
// truncation, trailing bytes — is an error, never a partial set.
func DecodeSet(data []byte) (*Set, error) {
	d := artifact.NewDec(data)
	if v := d.Uvarint(); v != setCodecVersion {
		return nil, fmt.Errorf("rare: set codec version %d, want %d", v, setCodecVersion)
	}
	s := &Set{
		Vectors:    d.Int(),
		Threshold:  d.Varint(),
		TotalNodes: d.Int(),
	}
	var err error
	if s.RN1, err = DecodeNodes(d); err != nil {
		return nil, err
	}
	if s.RN0, err = DecodeNodes(d); err != nil {
		return nil, err
	}
	nOnes := d.Int()
	if d.Err() == nil && (nOnes < 0 || nOnes > len(data)) {
		return nil, fmt.Errorf("rare: set encoding claims %d ones counts", nOnes)
	}
	if d.Err() == nil && nOnes > 0 {
		s.Ones = make([]int64, nOnes)
		for i := range s.Ones {
			s.Ones[i] = d.Varint()
		}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}

// EncodeNodes appends a rare-node list; shared with the compatibility
// graph codec, whose vertices are rare nodes.
func EncodeNodes(e *artifact.Enc, nodes []Node) {
	e.Int(len(nodes))
	for _, n := range nodes {
		e.Varint(int64(n.ID))
		e.U8(n.RareValue)
		e.Varint(n.Count)
		e.F64(n.Prob)
	}
}

// DecodeNodes reverses EncodeNodes.
func DecodeNodes(d *artifact.Dec) ([]Node, error) {
	n := d.Int()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n < 0 {
		return nil, fmt.Errorf("rare: node list length %d", n)
	}
	out := make([]Node, 0, min(n, 1<<16))
	for i := 0; i < n; i++ {
		node := Node{
			ID:        netlist.GateID(d.Varint()),
			RareValue: d.U8(),
			Count:     d.Varint(),
			Prob:      d.F64(),
		}
		if err := d.Err(); err != nil {
			return nil, err
		}
		out = append(out, node)
	}
	return out, nil
}
