package rare

import (
	"bytes"
	"testing"
)

func testSet() *Set {
	return &Set{
		RN1: []Node{
			{ID: 3, RareValue: 1, Count: 12, Prob: 0.012},
			{ID: 9, RareValue: 1, Count: 40, Prob: 0.04},
		},
		RN0: []Node{
			{ID: 5, RareValue: 0, Count: 7, Prob: 0.007},
		},
		Vectors:    1000,
		Threshold:  200,
		TotalNodes: 42,
		Ones:       []int64{0, 999, 12, 40, 7, 500},
	}
}

func TestSetCodecRoundTrip(t *testing.T) {
	s := testSet()
	enc := EncodeSet(s)
	got, err := DecodeSet(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Encode-decode-encode must reproduce the exact bytes: the encoding
	// is the content identity BuildCached hashes, so any instability
	// would silently split cache entries.
	if !bytes.Equal(EncodeSet(got), enc) {
		t.Fatal("re-encoding a decoded set changed the bytes")
	}
	if got.Len() != s.Len() || got.Vectors != s.Vectors || got.Threshold != s.Threshold ||
		got.TotalNodes != s.TotalNodes || len(got.Ones) != len(s.Ones) {
		t.Fatalf("decoded set = %+v", got)
	}
	for i, n := range got.RN1 {
		if n != s.RN1[i] {
			t.Fatalf("RN1[%d] = %+v, want %+v", i, n, s.RN1[i])
		}
	}
	for i, n := range got.RN0 {
		if n != s.RN0[i] {
			t.Fatalf("RN0[%d] = %+v, want %+v", i, n, s.RN0[i])
		}
	}
}

func TestSetCodecRejectsGarbage(t *testing.T) {
	if _, err := DecodeSet([]byte{0xFF, 0x01, 0x02}); err == nil {
		t.Error("garbage decoded without error")
	}
	enc := EncodeSet(testSet())
	if _, err := DecodeSet(enc[:len(enc)/2]); err == nil {
		t.Error("truncated encoding decoded without error")
	}
	if _, err := DecodeSet(append(append([]byte{}, enc...), 0x00)); err == nil {
		t.Error("trailing bytes decoded without error")
	}
}
