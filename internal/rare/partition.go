package rare

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"cghti/internal/chaos"
	"cghti/internal/netlist"
	"cghti/internal/obs"
	"cghti/internal/part"
	"cghti/internal/sim"
	"cghti/internal/stage"
)

// extractPartitioned is the Config.Partitions > 1 path of
// ExtractContext: the netlist is split into fanout-cone partitions and
// each batch is simulated per-partition on the worker pool.
//
// Bit-identity with the single-engine path rests on two invariants:
//
//  1. Vector draw. The whole-netlist engine's Randomize fills
//     CombInputs in order, word-ascending, one rng.Uint64 per word.
//     Here the same sequence is drawn once into a global buffer per
//     batch and copied into each partition verbatim, so the vector set
//     is a function of Seed alone — never of the partition count.
//  2. Counting. Each gate's one-count is folded from exactly its
//     owning partition. Replicated fanin context is simulated (it must
//     be, to make owned values correct) but never counted twice, and a
//     partition's simulation of its sub-netlist is bit-identical to
//     the global simulation restricted to its members (the sub-netlist
//     is TFI-closed).
//
// Cancellation is batch-atomic: partitions join between batches, so an
// interrupt either keeps a batch's counts everywhere or drops them
// everywhere, and the partial sample stays a valid smaller |V|.
func extractPartitioned(ctx context.Context, n *netlist.Netlist, cfg Config) (*Set, error) {
	if err := n.Levelize(); err != nil {
		return nil, err
	}
	c := netlist.CompactOf(n)
	plan, err := part.Build(c, cfg.Partitions)
	if err != nil {
		return nil, err
	}
	reg := obs.FromContext(ctx)
	met := metersFor(reg)
	met.extractions.Inc()

	W := cfg.BatchWords
	engines := make([]*sim.Packed, plan.Parts)
	counts := make([][]int64, plan.Parts)
	for p, s := range plan.Subs {
		eng, err := sim.NewPackedCompact(s.C, W, 1)
		if err != nil {
			return nil, err
		}
		eng.SetRegistry(reg)
		engines[p] = eng
		counts[p] = make([]int64, s.C.NumGates())
	}

	// Global input rows: row[g] is gate g's word offset in the per-batch
	// draw buffer, laid out in CombInputs order.
	inputs := c.CombInputs()
	row := make([]int32, c.NumGates())
	for i := range row {
		row[i] = -1
	}
	for i, id := range inputs {
		row[id] = int32(i)
	}
	buf := make([]uint64, len(inputs)*W)

	// fold collects the per-gate counts from each gate's owning
	// partition. Called exactly once, when the batch loop ends.
	fold := func() []int64 {
		ones := make([]int64, c.NumGates())
		for p, s := range plan.Subs {
			cnt := counts[p]
			for li, g := range s.ToGlobal {
				if s.Owned[li] {
					ones[g] += cnt[li]
				}
			}
		}
		return ones
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > plan.Parts {
		workers = plan.Parts
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	done := ctx.Done()
	remaining := cfg.Vectors
	for remaining > 0 {
		select {
		case <-done:
			return partialSet(n, cfg, fold(), cfg.Vectors-remaining, met), ctx.Err()
		default:
		}
		if err := chaos.Hit(stage.RareExtract, 0); err != nil {
			return partialSet(n, cfg, fold(), cfg.Vectors-remaining, met), err
		}
		batch := 64 * W
		if batch > remaining {
			batch = remaining
		}
		// Identical draw sequence to Packed.Randomize on the whole
		// netlist: input-major, word-ascending.
		for i := 0; i < len(inputs); i++ {
			for w := 0; w < W; w++ {
				buf[i*W+w] = rng.Uint64()
			}
		}
		runBatch(plan, engines, counts, buf, row, W, batch, workers)
		remaining -= batch
		met.vectors.Add(int64(batch))
		if cfg.Progress != nil {
			cfg.Progress(cfg.Vectors-remaining, cfg.Vectors)
		}
	}
	s := buildSet(n, cfg, fold())
	met.rareNodes.Set(int64(s.Len()))
	return s, nil
}

// runBatch simulates one batch in every partition, spreading partitions
// across the worker goroutines, and joins before returning. A panic in
// a partition goroutine is re-raised on the caller's goroutine, where
// stage-level containment can demote it to an error.
func runBatch(plan *part.Plan, engines []*sim.Packed, counts [][]int64, buf []uint64, row []int32, W, batch, workers int) {
	var next int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			for {
				p := int(atomic.AddInt64(&next, 1)) - 1
				if p >= plan.Parts {
					return
				}
				s := plan.Subs[p]
				eng := engines[p]
				for _, li := range s.C.CombInputs() {
					base := int(row[s.ToGlobal[li]]) * W
					for w := 0; w < W; w++ {
						eng.SetWord(li, w, buf[base+w])
					}
				}
				eng.Run()
				eng.CountOnes(counts[p], batch)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
