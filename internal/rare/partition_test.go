package rare

import (
	"testing"

	"cghti/internal/gen"
	"cghti/internal/netlist"
)

// TestExtractPartitionsIdentical is the determinism contract for the
// partitioned scale path: the extracted rare-node set (membership, rare
// values, probabilities, raw one-counts) is identical for any partition
// count, on both benchmark circuits and a hierarchical SoC with state.
func TestExtractPartitionsIdentical(t *testing.T) {
	circuits := map[string]*netlist.Netlist{}
	for _, name := range []string{"c432", "c880"} {
		n, err := gen.Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		circuits[name] = n
	}
	soc, err := gen.SoC(gen.SoCSpec{Gates: 4000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	circuits["soc4000"] = soc

	for name, n := range circuits {
		base := Config{Vectors: 4000, Threshold: 0.2, Seed: 11, Workers: 1}
		ref, err := Extract(n, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, parts := range []int{2, 7} {
			cfg := base
			cfg.Partitions = parts
			cfg.Workers = 4
			got, err := Extract(n, cfg)
			if err != nil {
				t.Fatal(err)
			}
			refNodes, gotNodes := ref.All(), got.All()
			if len(gotNodes) != len(refNodes) {
				t.Fatalf("%s partitions=%d: %d rare nodes, want %d", name, parts, len(gotNodes), len(refNodes))
			}
			for i := range refNodes {
				if gotNodes[i] != refNodes[i] {
					t.Fatalf("%s partitions=%d: node %d = %+v, want %+v",
						name, parts, i, gotNodes[i], refNodes[i])
				}
			}
			for i := range ref.Ones {
				if got.Ones[i] != ref.Ones[i] {
					t.Fatalf("%s partitions=%d: ones[%d] = %d, want %d",
						name, parts, i, got.Ones[i], ref.Ones[i])
				}
			}
		}
	}
}

// TestExtractPartitionsIncludeInputs pins the fold path for source
// nodes: PIs and DFFs are members of several partitions but owned by
// exactly one, so their counts must not double.
func TestExtractPartitionsIncludeInputs(t *testing.T) {
	n, err := gen.SoC(gen.SoCSpec{Gates: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Vectors: 2000, Threshold: 0.2, Seed: 5, IncludeInputs: true}
	ref, err := Extract(n, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Partitions = 5
	got, err := Extract(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalNodes != ref.TotalNodes || got.Len() != ref.Len() {
		t.Fatalf("partitioned: %d/%d nodes, want %d/%d", got.Len(), got.TotalNodes, ref.Len(), ref.TotalNodes)
	}
	for i := range ref.Ones {
		if got.Ones[i] != ref.Ones[i] {
			t.Fatalf("ones[%d] = %d, want %d", i, got.Ones[i], ref.Ones[i])
		}
	}
}
