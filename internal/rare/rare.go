// Package rare implements the paper's Algorithm 1 (Extraction_RN):
// functional simulation of a random vector set V over the netlist,
// per-node counting of logic-0/logic-1 occurrences, and thresholding at
// θ_RN to produce the RN0/RN1 rare-node sets that seed the compatibility
// graph.
package rare

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"cghti/internal/chaos"
	"cghti/internal/netlist"
	"cghti/internal/obs"
	"cghti/internal/sim"
	"cghti/internal/stage"
)

// meters holds the package's metric handles, resolved per extraction
// from the context registry (obs.FromContext) so concurrent runs under
// scoped registries attribute work to their own reports.
type meters struct {
	extractions *obs.Counter
	vectors     *obs.Counter
	rareNodes   *obs.Gauge
}

func metersFor(r *obs.Registry) *meters {
	if r == nil || r == obs.Default() {
		return defaultMeters
	}
	return newMeters(r)
}

func newMeters(r *obs.Registry) *meters {
	return &meters{
		extractions: r.Counter("rare.extractions"),
		vectors:     r.Counter("rare.vectors_simulated"),
		rareNodes:   r.Gauge("rare.nodes"),
	}
}

var defaultMeters = newMeters(obs.Default())

// DefaultVectors is the paper's chosen |V| (Figure 3 shows the rare-node
// count is stable from 10,000 vectors on).
const DefaultVectors = 10000

// DefaultThreshold is the paper's chosen θ_RN of 20% (Figure 2 marks
// ~24% of all nodes rare at this setting).
const DefaultThreshold = 0.20

// DefaultBatchWords is the per-batch word count (64 patterns per word)
// used when Config.BatchWords is 0: 16 words = 1024 patterns.
const DefaultBatchWords = 16

// Config parameterizes the extraction.
type Config struct {
	// Vectors is |V|; DefaultVectors if 0.
	Vectors int
	// Threshold is θ_RN as a fraction of |V| (0 < θ < 1);
	// DefaultThreshold if 0.
	Threshold float64
	// Seed drives the random vector set.
	Seed int64
	// Workers is the simulation goroutine budget (1 = serial, 0 =
	// GOMAXPROCS). The extracted set is bit-identical for any worker
	// count: the random vector set depends only on Seed, and each
	// pattern word is simulated by the same kernels regardless of
	// sharding.
	Workers int
	// BatchWords is the number of 64-pattern words simulated per batch
	// (DefaultBatchWords if 0). Larger batches give the worker shards
	// more room; note that changing the batch size changes which random
	// vectors are drawn, so keep it fixed when reproducing a run.
	BatchWords int
	// Partitions splits the netlist into fanout-cone partitions
	// (part.Build) simulated as independent sub-netlists, the scale path
	// for SoC-sized designs. 0 or 1 keeps the single whole-netlist
	// engine. The extracted set is bit-identical for any partition
	// count: every partition is loaded with the same globally-drawn
	// vector words, and each gate's count is folded from exactly its
	// owning partition.
	Partitions int
	// IncludeInputs also scores primary inputs and DFF outputs as
	// rare-node candidates. Off by default: the paper's trigger nodes
	// are internal nets (gate outputs), and PIs have probability ~0.5
	// under random vectors anyway.
	IncludeInputs bool
	// Progress, if non-nil, is called after each simulation batch with
	// (vectors done, total vectors).
	Progress func(done, total int)
}

func (c Config) withDefaults() Config {
	if c.Vectors <= 0 {
		c.Vectors = DefaultVectors
	}
	if c.Threshold <= 0 {
		c.Threshold = DefaultThreshold
	}
	if c.BatchWords <= 0 {
		c.BatchWords = DefaultBatchWords
	}
	return c
}

// Node is one rare node: a net plus the value it rarely assumes.
type Node struct {
	// ID is the gate driving the net.
	ID netlist.GateID
	// RareValue is the logic value the node rarely reaches (0 or 1).
	RareValue uint8
	// Count is how many of the |V| vectors produced the rare value.
	Count int64
	// Prob is Count normalized by |V| — the estimated signal
	// probability of the rare value.
	Prob float64
}

// Set is the extraction result.
type Set struct {
	// RN1 holds nodes whose rare value is 1; RN0 those whose rare value
	// is 0 (the paper's RN1/RN0 lists). Both sorted by ascending Prob.
	RN1, RN0 []Node
	// Vectors is the |V| actually simulated.
	Vectors int
	// Threshold is the absolute count cutoff used (θ_RN · |V|).
	Threshold int64
	// TotalNodes is the number of candidate nodes scored.
	TotalNodes int
	// Ones[g] is the number of vectors on which gate g evaluated to 1
	// (for every gate, not just rare ones) — the raw data behind
	// Figures 2 and 3.
	Ones []int64
}

// All returns RN1 and RN0 concatenated (RN1 first), freshly allocated.
func (s *Set) All() []Node {
	out := make([]Node, 0, len(s.RN1)+len(s.RN0))
	out = append(out, s.RN1...)
	out = append(out, s.RN0...)
	return out
}

// Len returns the total number of rare nodes.
func (s *Set) Len() int { return len(s.RN1) + len(s.RN0) }

// Extract runs Algorithm 1 on n.
func Extract(n *netlist.Netlist, cfg Config) (*Set, error) {
	return ExtractContext(context.Background(), n, cfg)
}

// ExtractContext is Extract with cooperative cancellation, checked
// once per simulation batch. When ctx expires mid-extraction the
// vectors simulated so far are still a valid (smaller) sample, so the
// set built from them is returned alongside ctx.Err(): callers that
// treat a budget expiry as graceful degradation re-threshold over the
// partial sample, callers that treat it as fatal ignore the set. When
// no whole batch completed the returned set is nil.
func ExtractContext(ctx context.Context, n *netlist.Netlist, cfg Config) (*Set, error) {
	cfg = cfg.withDefaults()
	if cfg.Threshold >= 1 {
		return nil, fmt.Errorf("rare: threshold %v must be a fraction < 1", cfg.Threshold)
	}
	if cfg.Partitions > 1 {
		return extractPartitioned(ctx, n, cfg)
	}
	// Pattern blocks go through the context's simulation service: the
	// default Exclusive service reproduces the dedicated-engine path
	// exactly, while under the serving daemon the blocks of many
	// concurrent extractions share wide engines. Bit-identical either
	// way: the vector draw order is fixed here (FillRandom walks
	// CombInputs order, word-ascending, per block) and each block only
	// ever sees its own word window.
	svc := sim.ServiceFor(ctx)
	inputs := n.CombInputs()
	reg := obs.FromContext(ctx)
	met := metersFor(reg)
	met.extractions.Inc()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ones := make([]int64, n.NumGates())
	done := ctx.Done()
	remaining := cfg.Vectors
	for remaining > 0 {
		select {
		case <-done:
			return partialSet(n, cfg, ones, cfg.Vectors-remaining, met), ctx.Err()
		default:
		}
		if err := chaos.Hit(stage.RareExtract, 0); err != nil {
			return partialSet(n, cfg, ones, cfg.Vectors-remaining, met), err
		}
		batch := 64 * cfg.BatchWords
		if batch > remaining {
			batch = remaining
		}
		count := batch
		req := &sim.Request{
			Netlist: n,
			Words:   cfg.BatchWords,
			Workers: cfg.Workers,
			Fill:    func(b sim.Block) { sim.FillRandom(b, inputs, rng) },
			Read:    func(b sim.Block) { b.CountOnes(ones, count) },
		}
		if err := svc.Simulate(ctx, req); err != nil {
			return partialSet(n, cfg, ones, cfg.Vectors-remaining, met), err
		}
		remaining -= batch
		met.vectors.Add(int64(batch))
		if cfg.Progress != nil {
			cfg.Progress(cfg.Vectors-remaining, cfg.Vectors)
		}
	}
	s := buildSet(n, cfg, ones)
	met.rareNodes.Set(int64(s.Len()))
	return s, nil
}

// partialSet thresholds an interrupted extraction over the vectors
// actually simulated; nil when no batch completed.
func partialSet(n *netlist.Netlist, cfg Config, ones []int64, vectorsDone int, met *meters) *Set {
	if vectorsDone <= 0 {
		return nil
	}
	cfg.Vectors = vectorsDone
	s := buildSet(n, cfg, ones)
	met.rareNodes.Set(int64(s.Len()))
	return s
}

// buildSet applies the θ_RN cutoff to the per-node counts. Split out so
// the Figure 2/3 sweeps can re-threshold one simulation's counts.
func buildSet(n *netlist.Netlist, cfg Config, ones []int64) *Set {
	cutoff := int64(cfg.Threshold * float64(cfg.Vectors))
	s := &Set{
		Vectors:   cfg.Vectors,
		Threshold: cutoff,
		Ones:      ones,
	}
	total := int64(cfg.Vectors)
	for i := range n.Gates {
		g := &n.Gates[i]
		switch g.Type {
		case netlist.Const0, netlist.Const1:
			continue
		case netlist.Input, netlist.DFF:
			if !cfg.IncludeInputs {
				continue
			}
		}
		s.TotalNodes++
		id := netlist.GateID(i)
		c1 := ones[i]
		c0 := total - c1
		// Algorithm 1: count_C1 <= θ → RN1; else count_C0 <= θ → RN0.
		if c1 <= cutoff {
			s.RN1 = append(s.RN1, Node{ID: id, RareValue: 1, Count: c1, Prob: float64(c1) / float64(total)})
		} else if c0 <= cutoff {
			s.RN0 = append(s.RN0, Node{ID: id, RareValue: 0, Count: c0, Prob: float64(c0) / float64(total)})
		}
	}
	sort.Slice(s.RN1, func(a, b int) bool { return s.RN1[a].Count < s.RN1[b].Count })
	sort.Slice(s.RN0, func(a, b int) bool { return s.RN0[a].Count < s.RN0[b].Count })
	return s
}

// Rethreshold reapplies a different θ_RN to an existing extraction
// (reusing its simulation counts). Used by the Figure 2 sweep, where only
// the threshold varies.
func Rethreshold(n *netlist.Netlist, s *Set, threshold float64) *Set {
	cfg := Config{Vectors: s.Vectors, Threshold: threshold}
	return buildSet(n, cfg.withDefaults(), s.Ones)
}

// CountAtVectors re-thresholds using only the first v vectors' worth of
// scale. Approximation used by the Figure 3 sweep when reusing counts is
// not desired; prefer running Extract with cfg.Vectors = v for exact
// replication.
func CountAtVectors(n *netlist.Netlist, cfg Config, v int) (int, error) {
	cfg.Vectors = v
	s, err := Extract(n, cfg)
	if err != nil {
		return 0, err
	}
	return s.Len(), nil
}
