package rare

import (
	"math"
	"testing"

	"cghti/internal/bench"
	"cghti/internal/netlist"
)

func parse(t *testing.T, src string) *netlist.Netlist {
	t.Helper()
	n, err := bench.ParseString(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// and4: y=1 with probability 1/16 ≈ 0.0625 — rare at θ=0.2, not at θ=0.01.
const and4 = `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
y = AND(a, b, c, d)
`

func TestExtractAnd4(t *testing.T) {
	n := parse(t, and4)
	s, err := Extract(n, Config{Vectors: 10000, Threshold: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.RN1) != 1 || len(s.RN0) != 0 {
		t.Fatalf("RN1=%d RN0=%d, want 1/0", len(s.RN1), len(s.RN0))
	}
	node := s.RN1[0]
	if node.ID != n.MustLookup("y") || node.RareValue != 1 {
		t.Fatalf("wrong rare node: %+v", node)
	}
	if math.Abs(node.Prob-1.0/16) > 0.02 {
		t.Fatalf("estimated prob %v, want ~0.0625", node.Prob)
	}
}

func TestExtractNand4RareZero(t *testing.T) {
	n := parse(t, `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
y = NAND(a, b, c, d)
`)
	s, err := Extract(n, Config{Vectors: 8000, Threshold: 0.2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.RN0) != 1 || len(s.RN1) != 0 {
		t.Fatalf("RN0=%d RN1=%d, want 1/0", len(s.RN0), len(s.RN1))
	}
	if s.RN0[0].RareValue != 0 {
		t.Fatal("NAND output should be rare at 0")
	}
}

func TestThresholdMonotone(t *testing.T) {
	// More permissive thresholds can only add rare nodes (Figure 2's
	// monotone trend).
	n := parse(t, `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
OUTPUT(z)
g1 = AND(a, b)
g2 = AND(c, d)
y = AND(g1, g2)
z = OR(a, b, c)
`)
	base, err := Extract(n, Config{Vectors: 10000, Threshold: 0.30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for _, th := range []float64{0.05, 0.10, 0.15, 0.20, 0.30} {
		s := Rethreshold(n, base, th)
		if s.Len() < prev {
			t.Fatalf("rare count decreased at θ=%v: %d < %d", th, s.Len(), prev)
		}
		prev = s.Len()
	}
}

func TestRethresholdMatchesDirectExtract(t *testing.T) {
	n := parse(t, and4)
	cfg := Config{Vectors: 5000, Threshold: 0.30, Seed: 9}
	s, err := Extract(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	re := Rethreshold(n, s, 0.05)
	cfg2 := cfg
	cfg2.Threshold = 0.05
	direct, err := Extract(n, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != direct.Len() {
		t.Fatalf("rethreshold %d nodes, direct %d", re.Len(), direct.Len())
	}
}

func TestExcludesInputsByDefault(t *testing.T) {
	n := parse(t, and4)
	s, err := Extract(n, Config{Vectors: 2000, Threshold: 0.45, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range s.All() {
		if n.Gates[node.ID].Type == netlist.Input {
			t.Fatalf("PI %s in rare set", n.Gates[node.ID].Name)
		}
	}
	s2, err := Extract(n, Config{Vectors: 2000, Threshold: 0.45, Seed: 4, IncludeInputs: true})
	if err != nil {
		t.Fatal(err)
	}
	if s2.TotalNodes != s.TotalNodes+4 {
		t.Fatalf("IncludeInputs scored %d nodes, want %d", s2.TotalNodes, s.TotalNodes+4)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	n := parse(t, and4)
	cfg := Config{Vectors: 3000, Threshold: 0.2, Seed: 7}
	a, err := Extract(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Extract(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() || a.RN1[0].Count != b.RN1[0].Count {
		t.Fatal("same seed produced different extractions")
	}
}

func TestSortedByRarity(t *testing.T) {
	n := parse(t, `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(y)
OUTPUT(z)
g1 = AND(a, b)
y = AND(g1, c, d, e)
z = AND(a, b, c)
`)
	s, err := Extract(n, Config{Vectors: 10000, Threshold: 0.26, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.RN1); i++ {
		if s.RN1[i-1].Count > s.RN1[i].Count {
			t.Fatal("RN1 not sorted by ascending count")
		}
	}
	if s.Len() < 3 {
		t.Fatalf("expected at least 3 rare nodes, got %d", s.Len())
	}
}

func TestVectorCountRespected(t *testing.T) {
	n := parse(t, and4)
	// Non-multiple of the 1024-pattern batch: counts must still be
	// bounded by |V|.
	s, err := Extract(n, Config{Vectors: 1500, Threshold: 0.2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for g, c := range s.Ones {
		if c < 0 || c > 1500 {
			t.Fatalf("gate %d count %d out of range", g, c)
		}
	}
	y := n.MustLookup("y")
	if s.Ones[y] == 0 {
		t.Fatal("AND4 never fired over 1500 vectors — suspicious")
	}
}

func TestBadThreshold(t *testing.T) {
	n := parse(t, and4)
	if _, err := Extract(n, Config{Vectors: 100, Threshold: 1.5}); err == nil {
		t.Fatal("threshold >= 1 accepted")
	}
}

func TestDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Vectors != DefaultVectors || c.Threshold != DefaultThreshold {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestSequentialFullScan(t *testing.T) {
	// DFF state is randomized per vector: d = AND(q1, q2, a) is rare-1.
	n := parse(t, `
INPUT(a)
OUTPUT(q1)
q1 = DFF(d)
q2 = DFF(d)
d = AND(q1, q2, a)
`)
	s, err := Extract(n, Config{Vectors: 8000, Threshold: 0.2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, node := range s.RN1 {
		if node.ID == n.MustLookup("d") {
			found = true
			if math.Abs(node.Prob-0.125) > 0.02 {
				t.Fatalf("d prob = %v, want ~0.125", node.Prob)
			}
		}
	}
	if !found {
		t.Fatal("AND3 of scan state not marked rare")
	}
}
