package rare

import (
	"context"
	"fmt"

	"cghti/internal/artifact"
	"cghti/internal/netlist"
	"cghti/internal/pipeline"
	"cghti/internal/stage"
)

// ExtractStage adapts Algorithm 1 to the pipeline stage graph. Input 0
// is the levelized netlist; the output is the *Set.
type ExtractStage struct {
	Cfg Config
}

// NewExtractStage returns the stage adapter with cfg's defaults
// applied, so the salvage accounting and cache fingerprint see the
// effective values.
func NewExtractStage(cfg Config) *ExtractStage {
	return &ExtractStage{Cfg: cfg.withDefaults()}
}

// Name implements pipeline.Stage.
func (s *ExtractStage) Name() string { return stage.RareExtract }

// Run implements pipeline.Stage. On interruption the partial set (nil
// when no batch completed) is returned alongside the error for the
// executor's salvage judgment.
func (s *ExtractStage) Run(ctx context.Context, env *pipeline.Env, inputs []pipeline.Artifact) (pipeline.Artifact, error) {
	n := inputs[0].(*netlist.Netlist)
	cfg := s.Cfg
	cfg.Progress = env.Progress(stage.RareExtract)
	return ExtractContext(ctx, n, cfg)
}

// Salvage implements pipeline.Degradable: an interrupted extraction
// with at least one simulated batch degrades to the smaller sample.
func (s *ExtractStage) Salvage(out pipeline.Artifact) (done, total int, detail string, ok bool) {
	rs, _ := out.(*Set)
	if rs == nil {
		return 0, 0, "", false
	}
	return rs.Vectors, s.Cfg.Vectors,
		fmt.Sprintf("rare set thresholded over %d of %d vectors", rs.Vectors, s.Cfg.Vectors), true
}

// Validate implements pipeline.Validator: a circuit with no rare nodes
// at the configured threshold cannot seed the compatibility graph.
func (s *ExtractStage) Validate(out pipeline.Artifact) error {
	rs := out.(*Set)
	if rs.Len() == 0 {
		return fmt.Errorf("cghti: no rare nodes at θ=%v over %d vectors", s.Cfg.Threshold, rs.Vectors)
	}
	return nil
}

// CacheConfig implements pipeline.Cacheable: exactly the knobs the
// extracted set depends on. Workers and Partitions are
// determinism-neutral (identical output for any count — the partitioned
// path draws the same vector sequence and folds each gate from exactly
// its owning partition) and excluded; BatchWords changes which random
// vectors are drawn and is included. The rare codec and this tag stay
// at v1: the serialized Set is unchanged by partitioning.
func (s *ExtractStage) CacheConfig() []byte {
	e := artifact.NewEnc()
	e.String("rare.extract.v1")
	e.Int(s.Cfg.Vectors)
	e.F64(s.Cfg.Threshold)
	e.Varint(s.Cfg.Seed)
	e.Int(s.Cfg.BatchWords)
	e.Bool(s.Cfg.IncludeInputs)
	return e.Finish()
}

// Encode implements pipeline.Cacheable.
func (s *ExtractStage) Encode(out pipeline.Artifact) ([]byte, error) {
	return EncodeSet(out.(*Set)), nil
}

// Decode implements pipeline.Cacheable.
func (s *ExtractStage) Decode(data []byte) (pipeline.Artifact, error) {
	return DecodeSet(data)
}

// ExtractCached is ExtractContext behind cache: a hit returns the
// stored set without simulating; a clean miss stores the fresh set.
// A nil cache, an unserializable netlist, or an interrupted extraction
// all degrade to plain ExtractContext behavior. The fingerprint recipe
// matches the pipeline executor's, so Generate runs and standalone
// extractions (htdetect, the experiment sweeps) share entries.
func ExtractCached(ctx context.Context, c *artifact.Cache, n *netlist.Netlist, cfg Config) (*Set, error) {
	if c == nil {
		return ExtractContext(ctx, n, cfg)
	}
	st := NewExtractStage(cfg)
	base := artifact.NetlistFingerprint(n)
	if base.IsZero() {
		return ExtractContext(ctx, n, cfg)
	}
	fp := artifact.Derive(stage.RareExtract, st.CacheConfig(), base)
	if data, ok := c.GetCtx(ctx, fp); ok {
		if rs, err := DecodeSet(data); err == nil {
			return rs, nil
		}
	}
	rs, err := ExtractContext(ctx, n, st.Cfg)
	if err == nil && rs != nil {
		c.PutCtx(ctx, fp, EncodeSet(rs))
	}
	return rs, err
}
