package rare

import (
	"testing"

	"cghti/internal/gen"
)

// TestExtractWorkersIdentical is the determinism contract for the
// parallel engine: the extracted rare-node set (membership, rare
// values, probabilities, raw one-counts) is identical for any worker
// count on real benchmark circuits.
func TestExtractWorkersIdentical(t *testing.T) {
	for _, name := range []string{"c432", "c880"} {
		n, err := gen.Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		base := Config{Vectors: 4000, Threshold: 0.2, Seed: 11, Workers: 1}
		ref, err := Extract(n, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			cfg := base
			cfg.Workers = workers
			got, err := Extract(n, cfg)
			if err != nil {
				t.Fatal(err)
			}
			refNodes, gotNodes := ref.All(), got.All()
			if len(gotNodes) != len(refNodes) {
				t.Fatalf("%s workers=%d: %d rare nodes, want %d", name, workers, len(gotNodes), len(refNodes))
			}
			for i := range refNodes {
				if gotNodes[i] != refNodes[i] {
					t.Fatalf("%s workers=%d: node %d = %+v, want %+v",
						name, workers, i, gotNodes[i], refNodes[i])
				}
			}
			for i := range ref.Ones {
				if got.Ones[i] != ref.Ones[i] {
					t.Fatalf("%s workers=%d: ones[%d] = %d, want %d",
						name, workers, i, got.Ones[i], ref.Ones[i])
				}
			}
		}
	}
}
