// Package scoap computes SCOAP (Sandia Controllability/Observability
// Analysis Program, Goldstein & Thigpen 1980) testability measures:
// CC0/CC1 — the effort to set a net to 0/1 — and CO — the effort to
// observe it at an output.
//
// Two consumers in this repository: PODEM's backtrace heuristic (pick
// easy-to-control paths for objectives, hard-to-control inputs when every
// input must be justified) and the RL insertion baseline, whose feature
// vector mirrors Sarihi et al.'s SCOAP-augmented state.
//
// Sequential circuits use full-scan semantics: DFF outputs cost like
// primary inputs (CC=1) and DFF data inputs observe like primary outputs
// (CO=0).
package scoap

import (
	"fmt"

	"cghti/internal/netlist"
)

// Inf is the saturation value for uncontrollable/unobservable nets
// (e.g. CC1 of a constant-0).
const Inf = int64(1) << 40

// Measures holds SCOAP values for every gate, indexed by GateID.
type Measures struct {
	CC0, CC1, CO []int64
}

// sat adds with saturation at Inf.
func sat(a, b int64) int64 {
	s := a + b
	if s >= Inf || s < 0 {
		return Inf
	}
	return s
}

// Compute calculates SCOAP measures for the combinational (full-scan)
// view of n. The computation itself runs over the arena form — see
// ComputeCompact, which callers holding a netlist.Compact should use
// directly to skip the conversion.
func Compute(n *netlist.Netlist) (*Measures, error) {
	if err := n.Levelize(); err != nil {
		return nil, err
	}
	return ComputeCompact(netlist.CompactOf(n))
}

// ComputeCompact calculates SCOAP measures over the arena form. Both
// passes stream through the flat type and fanin arrays, which is what
// keeps the measure computation cache-friendly at SoC scale.
func ComputeCompact(c *netlist.Compact) (*Measures, error) {
	topo, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	num := c.NumGates()
	m := &Measures{
		CC0: make([]int64, num),
		CC1: make([]int64, num),
		CO:  make([]int64, num),
	}

	// Controllability: forward pass.
	for _, id := range topo {
		typ := c.TypeOf(id)
		fanin := c.FaninOf(id)
		switch typ {
		case netlist.Input, netlist.DFF:
			m.CC0[id], m.CC1[id] = 1, 1
		case netlist.Const0:
			m.CC0[id], m.CC1[id] = 0, Inf
		case netlist.Const1:
			m.CC0[id], m.CC1[id] = Inf, 0
		case netlist.Buf:
			f := fanin[0]
			m.CC0[id] = sat(m.CC0[f], 1)
			m.CC1[id] = sat(m.CC1[f], 1)
		case netlist.Not:
			f := fanin[0]
			m.CC0[id] = sat(m.CC1[f], 1)
			m.CC1[id] = sat(m.CC0[f], 1)
		case netlist.And:
			m.CC1[id] = sat(sumCC(m.CC1, fanin), 1)
			m.CC0[id] = sat(minCC(m.CC0, fanin), 1)
		case netlist.Nand:
			m.CC0[id] = sat(sumCC(m.CC1, fanin), 1)
			m.CC1[id] = sat(minCC(m.CC0, fanin), 1)
		case netlist.Or:
			m.CC0[id] = sat(sumCC(m.CC0, fanin), 1)
			m.CC1[id] = sat(minCC(m.CC1, fanin), 1)
		case netlist.Nor:
			m.CC1[id] = sat(sumCC(m.CC0, fanin), 1)
			m.CC0[id] = sat(minCC(m.CC1, fanin), 1)
		case netlist.Xor, netlist.Xnor:
			even, odd := parityCosts(m, fanin)
			if typ == netlist.Xor {
				m.CC0[id] = sat(even, 1)
				m.CC1[id] = sat(odd, 1)
			} else {
				m.CC0[id] = sat(odd, 1)
				m.CC1[id] = sat(even, 1)
			}
		default:
			return nil, fmt.Errorf("scoap: unsupported gate type %v", typ)
		}
	}

	// Observability: reverse pass. A net's CO is the min over its
	// fanout branches; POs and DFF data inputs observe for free.
	for i := range m.CO {
		m.CO[i] = Inf
	}
	for _, id := range c.POs {
		m.CO[id] = 0
	}
	for _, d := range c.DFFs {
		for _, f := range c.FaninOf(d) {
			m.CO[f] = 0
		}
	}
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		co := m.CO[id]
		if co == Inf {
			continue
		}
		fanin := c.FaninOf(id)
		switch c.TypeOf(id) {
		case netlist.Buf, netlist.Not:
			relax(m, fanin[0], sat(co, 1))
		case netlist.And, netlist.Nand:
			for j, f := range fanin {
				relax(m, f, sat(co, sat(sumExcept(m.CC1, fanin, j), 1)))
			}
		case netlist.Or, netlist.Nor:
			for j, f := range fanin {
				relax(m, f, sat(co, sat(sumExcept(m.CC0, fanin, j), 1)))
			}
		case netlist.Xor, netlist.Xnor:
			for j, f := range fanin {
				var others int64
				for k, o := range fanin {
					if k != j {
						others = sat(others, min64(m.CC0[o], m.CC1[o]))
					}
				}
				relax(m, f, sat(co, sat(others, 1)))
			}
		}
	}
	return m, nil
}

// relax lowers CO[id] to v if smaller.
func relax(m *Measures, id netlist.GateID, v int64) {
	if v < m.CO[id] {
		m.CO[id] = v
	}
}

func sumCC(cc []int64, fanin []netlist.GateID) int64 {
	var s int64
	for _, f := range fanin {
		s = sat(s, cc[f])
	}
	return s
}

func sumExcept(cc []int64, fanin []netlist.GateID, skip int) int64 {
	var s int64
	for j, f := range fanin {
		if j != skip {
			s = sat(s, cc[f])
		}
	}
	return s
}

func minCC(cc []int64, fanin []netlist.GateID) int64 {
	m := Inf
	for _, f := range fanin {
		if cc[f] < m {
			m = cc[f]
		}
	}
	return m
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// parityCosts computes, over the fanin set, the cheapest input
// assignment cost yielding even and odd parity of ones (dynamic program
// over the fanin list). This generalizes the textbook 2-input XOR SCOAP
// rule to k inputs.
func parityCosts(m *Measures, fanin []netlist.GateID) (even, odd int64) {
	even, odd = 0, Inf
	for _, f := range fanin {
		e2 := min64(sat(even, m.CC0[f]), sat(odd, m.CC1[f]))
		o2 := min64(sat(even, m.CC1[f]), sat(odd, m.CC0[f]))
		even, odd = e2, o2
	}
	return even, odd
}

// CC returns the controllability of id to value v.
func (m *Measures) CC(id netlist.GateID, v uint8) int64 {
	if v == 0 {
		return m.CC0[id]
	}
	return m.CC1[id]
}
