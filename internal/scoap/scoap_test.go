package scoap

import (
	"testing"

	"cghti/internal/bench"
	"cghti/internal/netlist"
)

func parse(t *testing.T, src string) *netlist.Netlist {
	t.Helper()
	n, err := bench.ParseString(src, "t")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAndGate(t *testing.T) {
	n := parse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
`)
	m, err := Compute(n)
	if err != nil {
		t.Fatal(err)
	}
	a, b, y := n.MustLookup("a"), n.MustLookup("b"), n.MustLookup("y")
	if m.CC0[a] != 1 || m.CC1[a] != 1 {
		t.Errorf("PI controllability = %d/%d, want 1/1", m.CC0[a], m.CC1[a])
	}
	if m.CC1[y] != 3 { // 1+1+1
		t.Errorf("CC1(y) = %d, want 3", m.CC1[y])
	}
	if m.CC0[y] != 2 { // min(1,1)+1
		t.Errorf("CC0(y) = %d, want 2", m.CC0[y])
	}
	if m.CO[y] != 0 {
		t.Errorf("CO(y) = %d, want 0", m.CO[y])
	}
	if m.CO[a] != 2 { // CO(y) + CC1(b) + 1
		t.Errorf("CO(a) = %d, want 2", m.CO[a])
	}
	_ = b
}

func TestChainDepthGrowsCost(t *testing.T) {
	n := parse(t, `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
g1 = AND(a, b)
g2 = AND(g1, c)
y = AND(g2, d)
`)
	m, err := Compute(n)
	if err != nil {
		t.Fatal(err)
	}
	// CC1 accumulates along the AND chain: g1=3, g2=3+1+1=5, y=5+1+1=7.
	if got := m.CC1[n.MustLookup("y")]; got != 7 {
		t.Errorf("CC1(y) = %d, want 7", got)
	}
	// Observing 'a' requires b,c,d all 1: 0 + (1)+1 + (1)+1 + (1)+1 = 6.
	if got := m.CO[n.MustLookup("a")]; got != 6 {
		t.Errorf("CO(a) = %d, want 6", got)
	}
}

func TestInverterSwaps(t *testing.T) {
	n := parse(t, `
INPUT(a)
OUTPUT(y)
y = NOT(a)
`)
	m, err := Compute(n)
	if err != nil {
		t.Fatal(err)
	}
	y := n.MustLookup("y")
	if m.CC0[y] != 2 || m.CC1[y] != 2 {
		t.Errorf("inverter CC = %d/%d, want 2/2", m.CC0[y], m.CC1[y])
	}
}

func TestXor2Standard(t *testing.T) {
	n := parse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = XOR(a, b)
`)
	m, err := Compute(n)
	if err != nil {
		t.Fatal(err)
	}
	y := n.MustLookup("y")
	// CC1 = min(CC1a+CC0b, CC0a+CC1b)+1 = 3; CC0 = min(both same, both diff)+1 = 3.
	if m.CC1[y] != 3 || m.CC0[y] != 3 {
		t.Errorf("XOR CC = %d/%d, want 3/3", m.CC0[y], m.CC1[y])
	}
	// CO(a) = CO(y) + min(CC0b, CC1b) + 1 = 2.
	if got := m.CO[n.MustLookup("a")]; got != 2 {
		t.Errorf("CO(a) = %d, want 2", got)
	}
}

func TestConstSaturates(t *testing.T) {
	n := parse(t, `
INPUT(a)
OUTPUT(y)
z = CONST0()
y = OR(a, z)
`)
	m, err := Compute(n)
	if err != nil {
		t.Fatal(err)
	}
	z := n.MustLookup("z")
	if m.CC0[z] != 0 {
		t.Errorf("CC0(const0) = %d, want 0", m.CC0[z])
	}
	if m.CC1[z] != Inf {
		t.Errorf("CC1(const0) = %d, want Inf", m.CC1[z])
	}
	// y can still be controlled both ways through a.
	y := n.MustLookup("y")
	if m.CC1[y] >= Inf || m.CC0[y] >= Inf {
		t.Errorf("CC(y) saturated: %d/%d", m.CC0[y], m.CC1[y])
	}
}

func TestScanDFFSemantics(t *testing.T) {
	n := parse(t, `
INPUT(a)
OUTPUT(q)
q = DFF(d)
d = XOR(a, q)
`)
	m, err := Compute(n)
	if err != nil {
		t.Fatal(err)
	}
	q, d := n.MustLookup("q"), n.MustLookup("d")
	if m.CC0[q] != 1 || m.CC1[q] != 1 {
		t.Errorf("scan FF output CC = %d/%d, want 1/1", m.CC0[q], m.CC1[q])
	}
	if m.CO[d] != 0 {
		t.Errorf("scan FF data input CO = %d, want 0", m.CO[d])
	}
}

func TestFanoutStemTakesMin(t *testing.T) {
	n := parse(t, `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y1)
OUTPUT(y2)
y1 = BUFF(a)
y2 = AND(a, b, c)
`)
	m, err := Compute(n)
	if err != nil {
		t.Fatal(err)
	}
	// a is observable through the buffer (cost 1) and the AND (cost 3);
	// the stem takes the min.
	if got := m.CO[n.MustLookup("a")]; got != 1 {
		t.Errorf("CO(a) = %d, want 1", got)
	}
}

func TestCCAccessor(t *testing.T) {
	n := parse(t, "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
	m, err := Compute(n)
	if err != nil {
		t.Fatal(err)
	}
	a := n.MustLookup("a")
	if m.CC(a, 0) != m.CC0[a] || m.CC(a, 1) != m.CC1[a] {
		t.Error("CC accessor inconsistent")
	}
}

func TestUnobservableDangling(t *testing.T) {
	// A net with no path to any output keeps CO = Inf.
	n := netlist.New("dangle")
	a := n.MustAddGate("a", netlist.Input)
	b := n.MustAddGate("b", netlist.Input)
	y := n.MustAddGate("y", netlist.And)
	dead := n.MustAddGate("dead", netlist.Not)
	n.Connect(a, y)
	n.Connect(b, y)
	n.Connect(a, dead)
	n.MarkPO(y)
	m, err := Compute(n)
	if err != nil {
		t.Fatal(err)
	}
	if m.CO[dead] != Inf {
		t.Errorf("CO(dead) = %d, want Inf", m.CO[dead])
	}
}
