package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cghti/internal/obs"
)

// mixedJob is one unit of the batch-smoke workload: a generate or
// detect request, identified by a stable tag so the serial and
// concurrent runs can be matched up.
type mixedJob struct {
	tag    string
	path   string // "/v1/generate" | "/v1/detect"
	body   any
	result string // canonical result JSON, filled per run
}

// canonicalResult reduces a finished job's result to the byte sequence
// that must be identical between a serial exclusive-engine run and a
// concurrent batched run. For detect jobs that is the whole result; for
// generate jobs the emitted benchmarks (CachedStages legitimately
// differs with artifact-cache timing under concurrency).
func canonicalResult(t *testing.T, kind string, result any) string {
	t.Helper()
	raw, err := json.Marshal(result)
	if err != nil {
		t.Fatal(err)
	}
	if kind == "generate" {
		var res GenerateResult
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatal(err)
		}
		res.CachedStages = nil
		raw, err = json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
	}
	return string(raw)
}

// runMixed submits every job against ts (concurrently when parallel)
// and fills each job's canonical result.
func runMixed(t *testing.T, ts *httptest.Server, jobs []*mixedJob, parallel bool) {
	t.Helper()
	run := func(j *mixedJob) {
		resp := postJSON(t, ts, j.path, j.body)
		if resp.StatusCode != http.StatusAccepted {
			t.Errorf("%s: submit status = %d, want 202", j.tag, resp.StatusCode)
			resp.Body.Close()
			return
		}
		sub := decodeBody[submitResponse](t, resp)
		view := pollJob(t, ts, sub.ID)
		if view.Status != StatusDone {
			t.Errorf("%s: job status = %s (err %q), want done", j.tag, view.Status, view.Error)
			return
		}
		j.result = canonicalResult(t, view.Kind, view.Result)
	}
	if !parallel {
		for _, j := range jobs {
			run(j)
		}
		return
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			run(j)
		}()
	}
	wg.Wait()
}

// TestBatchSmoke is the CI batchsmoke gate: 8 concurrent mixed jobs
// (generate + detect over two base circuits) on a daemon whose
// simulation blocks multiplex onto shared batched engines must produce
// byte-identical results to the same jobs run one at a time on a daemon
// with exclusive per-block engines. It also pins that the batched run
// actually exercised the shared path (sim.batch_* counters moved) and
// that the new metrics reach the Prometheus exposition.
func TestBatchSmoke(t *testing.T) {
	c17 := benchText(t, "c17")
	c432 := benchText(t, "c432")

	// Seed infected netlists for the detect jobs: one generate per
	// circuit, run on a throwaway serial server so both phases get
	// identical detect inputs.
	prep := New(Config{Workers: 1, QueueDepth: 8, SimBatchWords: -1})
	prep.Start()
	pts := httptest.NewServer(prep.Handler())
	infected := map[string]GeneratedBench{}
	for _, c := range []struct{ name, bench string }{{"c17", c17}, {"c432", c432}} {
		req := genRequest(7)
		req.Name, req.Bench = c.name, c.bench
		if c.name == "c432" {
			req.RareVectors, req.RareThreshold = 500, 0.2
		}
		resp := postJSON(t, pts, "/v1/generate", req)
		sub := decodeBody[submitResponse](t, resp)
		view := pollJob(t, pts, sub.ID)
		if view.Status != StatusDone {
			t.Fatalf("prep generate %s: %s (%s)", c.name, view.Status, view.Error)
		}
		raw, _ := json.Marshal(view.Result)
		var res GenerateResult
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatal(err)
		}
		if len(res.Benchmarks) == 0 {
			t.Fatalf("prep generate %s produced no benchmarks", c.name)
		}
		infected[c.name] = res.Benchmarks[0]
	}
	pts.Close()
	prep.Drain(context.Background())

	mkJobs := func() []*mixedJob {
		var jobs []*mixedJob
		for _, c := range []struct {
			name, bench string
			vectors     int
			theta       float64
		}{{"c17", c17, 200, 0.4}, {"c432", c432, 500, 0.2}} {
			for _, seed := range []int64{1, 2} {
				req := genRequest(seed)
				req.Name, req.Bench = c.name, c.bench
				req.RareVectors, req.RareThreshold = c.vectors, c.theta
				jobs = append(jobs, &mixedJob{
					tag: "gen-" + c.name + "-" + string(rune('0'+seed)), path: "/v1/generate", body: req,
				})
				inf := infected[c.name]
				jobs = append(jobs, &mixedJob{
					tag: "det-" + c.name + "-" + string(rune('0'+seed)), path: "/v1/detect",
					body: DetectRequest{
						Golden: c.bench, Infected: inf.Bench, Trigger: inf.Trigger,
						Scheme: "random", Patterns: 2000, Seed: seed,
					},
				})
			}
		}
		return jobs
	}

	// Phase A: serial baseline — one worker, batching disabled.
	serial := New(Config{Workers: 1, QueueDepth: 16, SimBatchWords: -1})
	serial.Start()
	sts := httptest.NewServer(serial.Handler())
	baseline := mkJobs()
	runMixed(t, sts, baseline, false)
	sts.Close()
	serial.Drain(context.Background())

	// Phase B: 8 concurrent jobs multiplexed onto shared engines.
	fill0 := obs.Default().Counter("sim.batch_fill").Value()
	cap0 := obs.Default().Counter("sim.batch_capacity").Value()
	runs0 := obs.Default().Counter("sim.batch_runs").Value()
	batched := New(Config{Workers: 8, QueueDepth: 16})
	batched.Start()
	bts := httptest.NewServer(batched.Handler())
	concurrent := mkJobs()
	runMixed(t, bts, concurrent, true)

	if t.Failed() {
		t.FailNow()
	}
	for i, want := range baseline {
		got := concurrent[i]
		if got.result != want.result {
			t.Errorf("%s: batched result differs from serial baseline\nserial:  %s\nbatched: %s",
				want.tag, want.result, got.result)
		}
	}

	fill := obs.Default().Counter("sim.batch_fill").Value() - fill0
	capacity := obs.Default().Counter("sim.batch_capacity").Value() - cap0
	runs := obs.Default().Counter("sim.batch_runs").Value() - runs0
	if runs == 0 || fill == 0 {
		t.Errorf("batched run never used the shared path: runs=%d fill=%d", runs, fill)
	}
	if fill > capacity {
		t.Errorf("batch fill %d exceeds capacity %d", fill, capacity)
	}

	// The utilization metrics must reach the Prometheus exposition.
	resp, err := http.Get(bts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{"sim_batch_fill", "sim_batch_capacity", "sim_shared_program_hits", "sim_block_wait_seconds"} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("/metrics is missing %s", metric)
		}
	}
	bts.Close()
	batched.Drain(context.Background())
}
