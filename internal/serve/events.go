package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"cghti/internal/obs"
)

// Per-job event-feed bounds. The ring holds the most recent events for
// replay to late subscribers (a whole-percent-throttled pipeline run
// emits well under this on the paper circuits); the subscriber buffer
// is how far a live consumer may lag before events are dropped rather
// than blocking the worker goroutine that emits them.
const (
	feedRingSize = 256
	subBufSize   = 64
)

// feedEvent is one entry in a job's event feed and, marshaled as JSON,
// the SSE data payload. Stage events carry Stage/Done/Total/ElapsedMS;
// the terminal "result" event carries Status/Error; the synthetic
// "dropped" event (Seq -1, never stored in the ring) carries Dropped.
type feedEvent struct {
	Seq       int64  `json:"seq"`
	Event     string `json:"event"` // start|progress|end|abort|cached|result|dropped
	Stage     string `json:"stage,omitempty"`
	Done      int    `json:"done,omitempty"`
	Total     int    `json:"total,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
	Status    Status `json:"status,omitempty"`
	Error     string `json:"error,omitempty"`
	Dropped   int64  `json:"dropped,omitempty"`
}

// subscriber is one attached SSE consumer: a buffered live channel plus
// a drop counter. The publisher never blocks on ch — when the buffer is
// full it counts a drop instead, and the consumer surfaces the count as
// an explicit "dropped" event once it catches up.
type subscriber struct {
	ch      chan feedEvent
	dropped atomic.Int64
}

// eventFeed is a job's progress-event hub: it implements obs.Sink (the
// job's pipeline emits into it from worker goroutines), retains the
// last feedRingSize events for replay-on-connect, and fans live events
// out to subscribers without ever blocking the emitting worker. Closing
// the feed appends the terminal "result" event and closes every
// subscriber channel, which is what ends the SSE streams.
type eventFeed struct {
	mu      sync.Mutex
	ring    []feedEvent // oldest first, at most feedRingSize
	nextSeq int64
	subs    map[*subscriber]struct{}
	closed  bool
	final   *feedEvent // the terminal result event, once closed
}

func newEventFeed() *eventFeed {
	return &eventFeed{subs: make(map[*subscriber]struct{})}
}

// Emit implements obs.Sink: stage progress events from the job's run
// fan into the feed. Safe for concurrent use.
func (f *eventFeed) Emit(e obs.Event) {
	f.publish(feedEvent{
		Event:     e.Kind.String(),
		Stage:     e.Stage,
		Done:      e.Done,
		Total:     e.Total,
		ElapsedMS: e.Elapsed.Milliseconds(),
	})
}

func (f *eventFeed) publish(ev feedEvent) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.append(ev)
}

// append assigns the next sequence number, stores ev in the ring and
// offers it to every subscriber. Callers hold f.mu.
func (f *eventFeed) append(ev feedEvent) {
	ev.Seq = f.nextSeq
	f.nextSeq++
	f.ring = append(f.ring, ev)
	if len(f.ring) > feedRingSize {
		f.ring = f.ring[len(f.ring)-feedRingSize:]
	}
	for sub := range f.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
		}
	}
}

// closeFinal appends the terminal "result" event and closes the feed:
// subscriber channels are closed (after a best-effort offer of the
// final event) and later publishes are no-ops. The SSE writer
// guarantees final-event delivery even to a consumer whose buffer was
// full — see streamFeed. Idempotent.
func (f *eventFeed) closeFinal(status Status, errMsg string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	ev := feedEvent{Event: "result", Status: status, Error: errMsg}
	f.append(ev)
	stored := f.ring[len(f.ring)-1] // ev with its assigned Seq
	f.final = &stored
	f.closed = true
	for sub := range f.subs {
		close(sub.ch)
	}
	f.subs = make(map[*subscriber]struct{})
}

// subscribe returns a copy of the retained events for replay plus a
// live subscriber registered for everything published afterwards — the
// two are split atomically, so a consumer replaying then tailing sees
// every retained event exactly once, in order. On an already-closed
// feed the replay includes the final event and the channel comes back
// closed.
func (f *eventFeed) subscribe() ([]feedEvent, *subscriber) {
	f.mu.Lock()
	defer f.mu.Unlock()
	replay := append([]feedEvent(nil), f.ring...)
	sub := &subscriber{ch: make(chan feedEvent, subBufSize)}
	if f.closed {
		close(sub.ch)
	} else {
		f.subs[sub] = struct{}{}
	}
	return replay, sub
}

func (f *eventFeed) unsubscribe(sub *subscriber) {
	f.mu.Lock()
	delete(f.subs, sub)
	f.mu.Unlock()
}

func (f *eventFeed) finalEvent() *feedEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.final
}

// handleJobEvents streams a job's event feed as Server-Sent Events:
// replay of the retained ring first, then the live tail, terminated by
// the final "result" event when the job completes (or immediately after
// replay if it already has). A consumer that cannot keep up loses
// events but is told so with an explicit "dropped" event carrying the
// count.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + id})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, sub := j.feed.subscribe()
	defer j.feed.unsubscribe(sub)
	streamFeed(r.Context(), w, fl, j.feed, replay, sub)
}

// streamFeed writes replayed then live events until the feed closes or
// the client goes away. The final "result" event is delivered even when
// the subscriber buffer overflowed before the close: the closed channel
// is drained first, then the feed's stored final event is emitted if it
// was never seen.
func streamFeed(ctx context.Context, w io.Writer, fl http.Flusher, feed *eventFeed, replay []feedEvent, sub *subscriber) {
	last := int64(-1)
	for _, ev := range replay {
		writeSSE(w, ev)
		last = ev.Seq
	}
	fl.Flush()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.ch:
			if !ok {
				writeDropped(w, sub)
				if fin := feed.finalEvent(); fin != nil && fin.Seq > last {
					writeSSE(w, *fin)
				}
				fl.Flush()
				return
			}
			writeDropped(w, sub)
			writeSSE(w, ev)
			last = ev.Seq
			fl.Flush()
			if ev.Event == "result" {
				return
			}
		}
	}
}

// writeDropped surfaces accumulated publish-side drops as one explicit
// event, so a slow consumer knows its view has a gap (and how wide).
func writeDropped(w io.Writer, sub *subscriber) {
	if n := sub.dropped.Swap(0); n > 0 {
		writeSSE(w, feedEvent{Seq: -1, Event: "dropped", Dropped: n})
	}
}

// writeSSE renders one event in SSE wire form: the sequence number as
// the SSE id (omitted for synthetic events), the kind as the event
// name, and the JSON payload as data.
func writeSSE(w io.Writer, ev feedEvent) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	if ev.Seq >= 0 {
		fmt.Fprintf(w, "id: %d\n", ev.Seq)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Event, data)
}
