package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"cghti/internal/chaos"
	"cghti/internal/stage"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	ID    int64 // -1 when the event carried no id line
	Event string
	Data  feedEvent
}

// parseSSE decodes an SSE stream body into events.
func parseSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var out []sseEvent
	for _, block := range strings.Split(body, "\n\n") {
		if strings.TrimSpace(block) == "" {
			continue
		}
		ev := sseEvent{ID: -1}
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "id: "):
				id, err := strconv.ParseInt(line[len("id: "):], 10, 64)
				if err != nil {
					t.Fatalf("bad SSE id line %q: %v", line, err)
				}
				ev.ID = id
			case strings.HasPrefix(line, "event: "):
				ev.Event = line[len("event: "):]
			case strings.HasPrefix(line, "data: "):
				if err := json.Unmarshal([]byte(line[len("data: "):]), &ev.Data); err != nil {
					t.Fatalf("bad SSE data line %q: %v", line, err)
				}
			default:
				t.Fatalf("unexpected SSE line %q", line)
			}
		}
		out = append(out, ev)
	}
	return out
}

// TestSSEReplayAfterCompletion connects to the event stream only after
// the job has finished: the stream must replay the retained ring —
// stage events in order — and terminate with the final "result" event.
func TestSSEReplayAfterCompletion(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := genRequest(7)
	req.Bench = benchText(t, "c17")
	resp := postJSON(t, ts, "/v1/generate", req)
	id := decodeBody[submitResponse](t, resp).ID
	if view := pollJob(t, ts, id); view.Status != StatusDone {
		t.Fatalf("job status = %s, want done", view.Status)
	}

	es, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	if ct := es.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	raw, err := io.ReadAll(es.Body) // stream terminates itself after "result"
	if err != nil {
		t.Fatal(err)
	}
	events := parseSSE(t, string(raw))
	if len(events) < 3 {
		t.Fatalf("replay too short (%d events):\n%s", len(events), raw)
	}
	lastSeq := int64(-1)
	sawStage := false
	for _, ev := range events {
		if ev.ID <= lastSeq {
			t.Fatalf("sequence ids not increasing: %d after %d", ev.ID, lastSeq)
		}
		lastSeq = ev.ID
		if ev.Data.Stage == stage.RareExtract {
			sawStage = true
		}
	}
	if !sawStage {
		t.Errorf("replay has no %s stage event", stage.RareExtract)
	}
	final := events[len(events)-1]
	if final.Event != "result" || final.Data.Status != StatusDone {
		t.Fatalf("stream did not terminate with a done result: %+v", final)
	}
}

// TestSSELiveTail connects while the job is still running (the first
// pipeline stage is chaos-stalled) and reads the live feed to its
// terminal event, proving workers publish without waiting for the
// consumer and the stream ends exactly when the job does.
func TestSSELiveTail(t *testing.T) {
	chaos.Install(chaos.Spec{
		Stage: stage.RareExtract, Worker: chaos.AnyWorker,
		Kind: chaos.Delay, Delay: 100 * time.Millisecond,
	})
	defer chaos.Uninstall()

	s := New(Config{Workers: 1, QueueDepth: 2})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := genRequest(8)
	req.Bench = benchText(t, "c17")
	resp := postJSON(t, ts, "/v1/generate", req)
	id := decodeBody[submitResponse](t, resp).ID

	es, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()

	// Read incrementally: events must arrive while the job is running,
	// not in one burst after it finishes.
	sc := bufio.NewScanner(es.Body)
	var kinds []string
	var final feedEvent
	var block []string
	flush := func() {
		if len(block) == 0 {
			return
		}
		for _, line := range block {
			if strings.HasPrefix(line, "event: ") {
				kinds = append(kinds, line[len("event: "):])
			}
			if strings.HasPrefix(line, "data: ") && kinds[len(kinds)-1] == "result" {
				if err := json.Unmarshal([]byte(line[len("data: "):]), &final); err != nil {
					t.Errorf("bad result payload: %v", err)
				}
			}
		}
		block = block[:0]
	}
	for sc.Scan() {
		if sc.Text() == "" {
			flush()
			continue
		}
		block = append(block, sc.Text())
	}
	flush()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(kinds) == 0 || kinds[len(kinds)-1] != "result" {
		t.Fatalf("live tail did not end with result: %v", kinds)
	}
	if final.Status != StatusDone {
		t.Fatalf("final status = %s, want done", final.Status)
	}
	sawStart := false
	for _, k := range kinds {
		if k == "start" {
			sawStart = true
		}
	}
	if !sawStart {
		t.Errorf("live tail saw no stage start events: %v", kinds)
	}
}

// TestSSEUnknownJob pins the 404 on a bogus id.
func TestSSEUnknownJob(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestSSESlowConsumerDrop drives the stream writer directly against a
// subscriber whose buffer overflowed: the publisher must never block,
// the consumer must be told how many events it lost via an explicit
// "dropped" event, and the final "result" event must still arrive even
// though the live channel never had room for it.
func TestSSESlowConsumerDrop(t *testing.T) {
	feed := newEventFeed()
	_, sub := feed.subscribe()

	// Overfill: subBufSize live slots, everything after is dropped. The
	// publisher side must not block regardless.
	const published = subBufSize + 40
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < published; i++ {
			feed.publish(feedEvent{Event: "progress", Stage: "mine", Done: i})
		}
		feed.closeFinal(StatusDone, "")
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a slow consumer")
	}

	rec := httptest.NewRecorder() // implements http.Flusher
	streamFeed(context.Background(), rec, rec, feed, nil, sub)

	events := parseSSE(t, rec.Body.String())
	var droppedTotal, delivered int64
	var final *sseEvent
	for i := range events {
		switch events[i].Event {
		case "dropped":
			droppedTotal += events[i].Data.Dropped
			if events[i].ID != -1 {
				t.Errorf("synthetic dropped event has an id: %+v", events[i])
			}
		case "result":
			final = &events[i]
		default:
			delivered++
		}
	}
	if droppedTotal == 0 {
		t.Fatal("no dropped event despite overflow")
	}
	// closeFinal appends the result too; every published event either
	// arrived or was counted as dropped.
	if got := delivered + droppedTotal; got != published+1 {
		t.Fatalf("delivered %d + dropped %d = %d, want %d accounted for",
			delivered, droppedTotal, delivered+droppedTotal, published+1)
	}
	if final == nil || final.Data.Status != StatusDone {
		t.Fatalf("slow consumer never received the final result event: %+v", final)
	}
	if final != &events[len(events)-1] {
		t.Fatal("result is not the last event in the stream")
	}
}

// TestSSEDrainCancelsQueued pins that a queued job flushed by Drain
// closes its feed with a canceled result, so attached streams end
// rather than hang.
func TestSSEDrainCancelsQueued(t *testing.T) {
	chaos.Install(chaos.Spec{
		Stage: stage.RareExtract, Worker: chaos.AnyWorker,
		Kind: chaos.Delay, Delay: 50 * time.Millisecond,
	})
	defer chaos.Uninstall()

	s := New(Config{Workers: 1, QueueDepth: 2})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := genRequest(9)
	req.Bench = benchText(t, "c17")
	var ids []string
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts, "/v1/generate", req)
		ids = append(ids, decodeBody[submitResponse](t, resp).ID)
	}

	// Stream the queued job's feed while draining.
	type result struct {
		events []sseEvent
		err    error
	}
	ch := make(chan result, 1)
	go func() {
		es, err := http.Get(ts.URL + "/v1/jobs/" + ids[1] + "/events")
		if err != nil {
			ch <- result{err: err}
			return
		}
		defer es.Body.Close()
		raw, err := io.ReadAll(es.Body)
		if err != nil {
			ch <- result{err: err}
			return
		}
		ch <- result{events: parseSSE(t, string(raw))}
	}()

	if rep := s.Drain(context.Background()); rep == nil {
		t.Fatal("first Drain returned no report")
	}
	select {
	case res := <-ch:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if len(res.events) == 0 {
			t.Fatal("queued job stream ended with no events")
		}
		final := res.events[len(res.events)-1]
		if final.Event != "result" {
			t.Fatalf("queued job stream did not end with result: %+v", final)
		}
		// The queued job either got canceled by the drain or squeezed in
		// before it; both are legitimate terminal results.
		if st := final.Data.Status; st != StatusCanceled && st != StatusDone {
			t.Fatalf("queued job final status = %s, want canceled or done", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued job stream never terminated after drain")
	}
}
