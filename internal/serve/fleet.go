package serve

import (
	"bytes"
	"io"
	"net/http"

	"cghti/internal/artifact"
)

// Fleet protocol headers.
const (
	// forwardedHeader marks a submission already proxied once: the
	// receiver executes locally whatever the ring says, so a stale or
	// disagreeing ring can bounce a job at most one hop, never loop it.
	forwardedHeader = "X-Cghti-Forwarded"
	// OwnerHeader names the node a forwarded job actually lives on. Job
	// IDs are per-node, so a client that submitted here must poll the
	// owner for status, events, and results. Exported for clients
	// (htload's fleet mode awaits at the advertised owner).
	OwnerHeader = "X-Cghti-Owner"
)

// forwardIfRemote applies the sharding decision to one submission: when
// fleet mode is on, the request has not been forwarded already, and the
// ring places fp on another node, the submission is proxied there —
// preserving Idempotency-Key, so identical submissions entering
// anywhere in the fleet dedupe against the owner's journal — and the
// owner's response is relayed verbatim (plus OwnerHeader). Returns true
// when the response has been written.
//
// Degrade, never reject: a forward that fails at the transport level
// (owner down, timeout) falls back to local execution — the job runs
// twice in the worst case, it does not get lost. A response from the
// owner, whatever its status, is relayed rather than second-guessed:
// the owner answered authoritatively (its 429 means the *owner* is
// backpressured; retrying locally would silently split the dedup
// domain).
func (s *Server) forwardIfRemote(w http.ResponseWriter, r *http.Request, fp artifact.Fingerprint, payload []byte) bool {
	if s.ring == nil || r.Header.Get(forwardedHeader) != "" {
		return false
	}
	owner := s.ring.owner(fp)
	if owner == "" || owner == s.ring.self {
		return false
	}

	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, "http://"+owner+r.URL.Path, bytes.NewReader(payload))
	if err != nil {
		cntFallbacks.Inc()
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, "1")
	if key := r.Header.Get("Idempotency-Key"); key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := s.forward.Do(req)
	if err != nil {
		cntFallbacks.Inc()
		return false
	}
	defer resp.Body.Close()
	cntForwarded.Inc()

	for _, h := range []string{"Content-Type", "Idempotency-Replayed", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(OwnerHeader, owner)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// handleArtifactGet serves one cache entry to a peer in the framed
// (CGA2) wire form — the same bytes the disk tier stores, verified by
// the same rules on the fetching side. The lookup is local-tiers-only:
// answering a peer's miss must never trigger this node's own remote
// fetch, or one cold fingerprint would ricochet around the fleet.
func (s *Server) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	fp, err := artifact.ParseFingerprint(r.PathValue("fp"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	data, ok := s.cfg.Cache.GetLocal(fp)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no artifact " + fp.String()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(artifact.EncodeEntry(data))
}

// handleArtifactPut accepts one framed entry pushed by a peer (or a
// warm-up tool), verifying it before storing — the remote tier's
// verify-before-trust rule holds in both directions.
func (s *Server) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	fp, err := artifact.ParseFingerprint(r.PathValue("fp"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, artifact.MaxEntryWireBytes))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: "artifact body: " + err.Error()})
		return
	}
	payload, err := artifact.DecodeEntry(raw)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	s.cfg.Cache.Put(fp, payload)
	w.WriteHeader(http.StatusNoContent)
}
