package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"cghti/internal/artifact"
	"cghti/internal/obs"
)

// TestRingOwnershipDeterministic pins the sharding contract: every node
// configured with the same member set (in any order, any address
// spelling) computes the same owner for every fingerprint.
func TestRingOwnershipDeterministic(t *testing.T) {
	a := newRing("10.0.0.1:7070", []string{"10.0.0.2:7070", "10.0.0.3:7070"})
	b := newRing("10.0.0.2:7070", []string{"http://10.0.0.3:7070/", " 10.0.0.1:7070 "})
	c := newRing("", []string{"10.0.0.3:7070", "10.0.0.1:7070", "10.0.0.2:7070"})

	owned := make(map[string]int)
	for i := 0; i < 1000; i++ {
		fp := artifact.Hash([]byte(fmt.Sprintf("netlist-%d", i)))
		oa, ob, oc := a.owner(fp), b.owner(fp), c.owner(fp)
		if oa != ob || oa != oc {
			t.Fatalf("ring disagreement for %s: %q vs %q vs %q", fp, oa, ob, oc)
		}
		owned[oa]++
	}
	if len(owned) != 3 {
		t.Fatalf("ownership spread over %d members, want 3: %v", len(owned), owned)
	}
	// Virtual nodes should keep the split roughly even; a collapsed ring
	// (one member owning nearly everything) is the bug this guards.
	for addr, n := range owned {
		if n < 100 {
			t.Fatalf("member %s owns only %d/1000 keys — ring badly unbalanced: %v", addr, n, owned)
		}
	}
	if got := a.owner(artifact.Fingerprint{}); got != "" {
		t.Fatalf("zero fingerprint owned by %q, want nobody", got)
	}
	if got := len(a.members()); got != 3 {
		t.Fatalf("members() = %d entries, want 3", got)
	}
}

// TestRetryAfterSeconds pins the 429 backoff derivation: cold daemon
// 1s, mid-load the p50 queue wait rounded up, pathological waits
// clamped at 30.
func TestRetryAfterSeconds(t *testing.T) {
	var empty obs.HistogramSnapshot
	if got := retryAfterSeconds(empty); got != 1 {
		t.Fatalf("empty snapshot Retry-After = %d, want 1", got)
	}

	var fast obs.Histogram
	for i := 0; i < 100; i++ {
		fast.Observe(5 * time.Millisecond)
	}
	if got := retryAfterSeconds(fast.Snapshot()); got != 1 {
		t.Fatalf("fast-queue Retry-After = %d, want 1 (floor)", got)
	}

	var loaded obs.Histogram
	for i := 0; i < 100; i++ {
		loaded.Observe(5 * time.Second)
	}
	got := retryAfterSeconds(loaded.Snapshot())
	if got <= 1 || got > 30 {
		t.Fatalf("loaded-queue Retry-After = %d, want in (1, 30]", got)
	}

	var swamped obs.Histogram
	for i := 0; i < 100; i++ {
		swamped.Observe(10 * time.Minute)
	}
	if got := retryAfterSeconds(swamped.Snapshot()); got != 30 {
		t.Fatalf("swamped-queue Retry-After = %d, want the 30s clamp", got)
	}
}

// TestRetryAfterScalesWithQueueDepth is the HTTP regression for the
// hardcoded `Retry-After: 1`: once the observed queue waits grow, a
// 429's header must grow with them (and stay within the clamp).
func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	s := New(Config{QueueDepth: 2}) // never Started: the queue only fills
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := genRequest(1)
	body.Bench = benchText(t, "c17")
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts, "/v1/generate", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill submit status = %d, want 202", resp.StatusCode)
		}
	}

	// histQueueWait is process-global; drown whatever small waits other
	// tests contributed under a decisive slow-queue signal.
	for i := 0; i < 50000; i++ {
		histQueueWait.Observe(20 * time.Second)
	}

	resp := postJSON(t, ts, "/v1/generate", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit status = %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	if secs < 10 || secs > 30 {
		t.Fatalf("Retry-After = %d, want a p50-derived value in [10, 30] under 20s queue waits", secs)
	}
}

// fleetNode is one in-process fleet member: a full Server on a real
// loopback listener (peers dial each other over TCP, as in production).
type fleetNode struct {
	s    *Server
	addr string // host:port, the ring member identity
	url  string // http://host:port
}

// startFleet boots n nodes, each advertising itself with the others as
// peers. Listeners are bound before any Server is built so every node
// knows the full member set up front.
func startFleet(t *testing.T, n int) []*fleetNode {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*fleetNode, n)
	for i := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		s := New(Config{Workers: 2, QueueDepth: 8, Peers: peers, Advertise: addrs[i]})
		s.Start()
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(lns[i])
		t.Cleanup(func() {
			hs.Close()
			s.Drain(context.Background())
		})
		nodes[i] = &fleetNode{s: s, addr: addrs[i], url: "http://" + addrs[i]}
	}
	return nodes
}

// postJSONTo posts a JSON body to an arbitrary base URL with optional
// extra headers.
func postJSONTo(t *testing.T, url, path string, body any, headers map[string]string) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// pollJobAt polls base+/v1/jobs/{id} until terminal.
func pollJobAt(t *testing.T, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("GET %s/v1/jobs/%s = %d", base, id, resp.StatusCode)
		}
		view := decodeBody[jobView](t, resp)
		if view.Status.Terminal() {
			return view
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s at %s never reached a terminal status", id, base)
	return jobView{}
}

// TestFleetDedupAcrossNodes pins the tentpole's sharding claim: the
// same Idempotency-Key submitted to BOTH nodes of a two-node fleet
// executes once. The non-owner proxies to the owner (preserving the
// key), the owner's journal dedupes, and the duplicate comes back
// Idempotency-Replayed with the owner's identity attached.
func TestFleetDedupAcrossNodes(t *testing.T) {
	nodes := startFleet(t, 2)

	req := genRequest(7)
	req.Bench = benchText(t, "c17")
	_, fp, err := nodes[0].s.generateJob(req)
	if err != nil {
		t.Fatal(err)
	}
	owner := nodes[0].s.ring.owner(fp)
	var ownerNode, otherNode *fleetNode
	for _, n := range nodes {
		if n.addr == owner {
			ownerNode = n
		} else {
			otherNode = n
		}
	}
	if ownerNode == nil || otherNode == nil {
		t.Fatalf("owner %q is not one of the fleet nodes", owner)
	}

	forwardedBefore := cntForwarded.Value()
	idemBefore := cntIdemHits.Value()

	// First submission to the owner: executes there.
	const key = "fleet-dedup-key"
	resp1 := postJSONTo(t, ownerNode.url, "/v1/generate", req, map[string]string{"Idempotency-Key": key})
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("owner submit status = %d, want 202", resp1.StatusCode)
	}
	sub1 := decodeBody[submitResponse](t, resp1)

	// Second submission, same key, to the OTHER node: must proxy to the
	// owner and dedupe there, not run a second copy.
	resp2 := postJSONTo(t, otherNode.url, "/v1/generate", req, map[string]string{"Idempotency-Key": key})
	sub2 := decodeBody[submitResponse](t, resp2)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("duplicate submit status = %d, want 200 (replayed)", resp2.StatusCode)
	}
	if resp2.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatal("duplicate submit missing Idempotency-Replayed")
	}
	if got := resp2.Header.Get(OwnerHeader); got != owner {
		t.Fatalf("duplicate submit %s = %q, want owner %q", OwnerHeader, got, owner)
	}
	if sub2.ID != sub1.ID {
		t.Fatalf("duplicate submit returned job %s, want the original %s", sub2.ID, sub1.ID)
	}
	if got := cntForwarded.Value() - forwardedBefore; got != 1 {
		t.Fatalf("forwarded_jobs delta = %d, want 1", got)
	}
	if got := cntIdemHits.Value() - idemBefore; got != 1 {
		t.Fatalf("idempotent_hits delta = %d, want 1 (single execution)", got)
	}

	// The one job completes on the owner.
	view := pollJobAt(t, ownerNode.url, sub1.ID)
	if view.Status != StatusDone {
		t.Fatalf("job status = %s (err %q), want done", view.Status, view.Error)
	}
}

// TestFleetForwardFallback pins degrade-never-reject: a node whose ring
// says "someone else owns this" but cannot reach that someone runs the
// job itself. Advertise is empty and the only peer is dead, so every
// submission takes the forward-then-fallback path deterministically.
func TestFleetForwardFallback(t *testing.T) {
	// A dead peer: bind a port, then close it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	s := New(Config{
		Workers: 2, QueueDepth: 8,
		Peers:          []string{deadAddr},
		ForwardTimeout: 500 * time.Millisecond,
	})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fallbacksBefore := cntFallbacks.Value()

	req := genRequest(11)
	req.Bench = benchText(t, "c17")
	resp := postJSON(t, ts, "/v1/generate", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fallback submit status = %d, want 202 (local execution)", resp.StatusCode)
	}
	if got := resp.Header.Get(OwnerHeader); got != "" {
		t.Fatalf("fallback response claims owner %q, want none (ran locally)", got)
	}
	sub := decodeBody[submitResponse](t, resp)
	if got := cntFallbacks.Value() - fallbacksBefore; got != 1 {
		t.Fatalf("forward_fallbacks delta = %d, want 1", got)
	}

	view := pollJobAt(t, ts.URL, sub.ID)
	if view.Status != StatusDone {
		t.Fatalf("fallback job status = %s (err %q), want done", view.Status, view.Error)
	}
}

// TestFleetRemoteArtifactHit pins the tentpole's caching claim: a cold
// node running a job a warm peer already computed pulls the peer's
// artifacts over the remote tier instead of recomputing. Both
// submissions carry the forwarded marker so each node executes locally
// and only the artifact tier crosses the network.
func TestFleetRemoteArtifactHit(t *testing.T) {
	nodes := startFleet(t, 2)
	forced := map[string]string{forwardedHeader: "1"}

	req := genRequest(23)
	req.Bench = benchText(t, "c17")

	// Warm node 0.
	resp := postJSONTo(t, nodes[0].url, "/v1/generate", req, forced)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("warm submit status = %d, want 202", resp.StatusCode)
	}
	sub := decodeBody[submitResponse](t, resp)
	if view := pollJobAt(t, nodes[0].url, sub.ID); view.Status != StatusDone {
		t.Fatalf("warm job status = %s (err %q), want done", view.Status, view.Error)
	}

	hitsBefore := obs.NewCounter("artifact.remote_hits").Value()

	// Cold node 1, identical request: its local tiers miss, the remote
	// tier must serve node 0's artifacts.
	resp = postJSONTo(t, nodes[1].url, "/v1/generate", req, forced)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cold submit status = %d, want 202", resp.StatusCode)
	}
	sub = decodeBody[submitResponse](t, resp)
	view := pollJobAt(t, nodes[1].url, sub.ID)
	if view.Status != StatusDone {
		t.Fatalf("cold job status = %s (err %q), want done", view.Status, view.Error)
	}

	if got := obs.NewCounter("artifact.remote_hits").Value() - hitsBefore; got == 0 {
		t.Fatal("cold node completed without a single remote artifact hit")
	}
	// The job itself should report reused upstream stages.
	result, ok := view.Result.(map[string]any)
	if !ok {
		t.Fatalf("result has unexpected shape %T", view.Result)
	}
	cached, _ := result["cached_stages"].([]any)
	if len(cached) == 0 {
		t.Fatalf("cold job reports no cached stages: %v", result)
	}
}

// TestArtifactPeerEndpoints pins the wire protocol: GET serves framed
// entries (and 404s cleanly), PUT verifies before storing, and both
// reject garbage fingerprints.
func TestArtifactPeerEndpoints(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fp := artifact.Hash([]byte("endpoint-entry"))
	payload := []byte("the-artifact-bytes")

	// Miss before the entry exists.
	resp, err := http.Get(ts.URL + "/v1/artifacts/" + fp.String())
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET before PUT = %d, want 404", resp.StatusCode)
	}

	// Bad fingerprint shapes.
	for _, bad := range []string{"zz", "0123"} {
		resp, err := http.Get(ts.URL + "/v1/artifacts/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET bad fp %q = %d, want 400", bad, resp.StatusCode)
		}
	}

	put := func(body []byte) int {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/artifacts/"+fp.String(), bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Unverifiable bodies are rejected, never stored.
	if code := put([]byte("not-a-framed-entry")); code != http.StatusBadRequest {
		t.Fatalf("PUT garbage = %d, want 400", code)
	}
	framed := artifact.EncodeEntry(payload)
	if code := put(framed[:len(framed)-3]); code != http.StatusBadRequest {
		t.Fatalf("PUT torn entry = %d, want 400", code)
	}
	if _, ok := s.cfg.Cache.GetLocal(fp); ok {
		t.Fatal("rejected PUT bodies reached the cache")
	}

	// A verified PUT stores; GET round-trips the framed form.
	if code := put(framed); code != http.StatusNoContent {
		t.Fatalf("PUT framed entry = %d, want 204", code)
	}
	resp, err = http.Get(ts.URL + "/v1/artifacts/" + fp.String())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after PUT = %d, want 200", resp.StatusCode)
	}
	got, err := artifact.DecodeEntry(raw)
	if err != nil {
		t.Fatalf("GET body does not verify: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("round-tripped payload = %q, want %q", got, payload)
	}
}

// TestHealthzFleetMembership pins /healthz's fleet section: ring
// membership (self plus peers) is visible to probes.
func TestHealthzFleetMembership(t *testing.T) {
	s := New(Config{Peers: []string{"10.0.0.2:7070"}, Advertise: "10.0.0.1:7070"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := decodeBody[map[string]any](t, resp)
	fleet, ok := body["fleet"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no fleet section: %v", body)
	}
	if fleet["advertise"] != "10.0.0.1:7070" {
		t.Fatalf("advertise = %v, want 10.0.0.1:7070", fleet["advertise"])
	}
	members, _ := fleet["members"].([]any)
	if len(members) != 2 {
		t.Fatalf("members = %v, want both nodes", fleet["members"])
	}
}
