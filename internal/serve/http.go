package serve

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"cghti/internal/obs"
)

// routes wires the daemon's endpoints. Method-qualified patterns and
// PathValue need go1.22's ServeMux, which the module already requires.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	mux.HandleFunc("POST /v1/detect", s.handleDetect)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/artifacts/{fp}", s.handleArtifactGet)
	mux.HandleFunc("PUT /v1/artifacts/{fp}", s.handleArtifactPut)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetricsProm)
	mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	return timed(mux)
}

// timed observes each request's handler wall time into the process-wide
// serve.handler_time histogram. SSE streams are excluded: their
// lifetime is the client's choice (or the job's), and folding
// minutes-long streams into the handler distribution would bury the
// request-latency signal the histogram exists for.
func timed(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		next.ServeHTTP(w, r)
		histHandler.Observe(time.Since(start))
	})
}

// maxRequestBytes bounds request bodies (netlists are text; the largest
// paper circuit is well under 1 MiB).
const maxRequestBytes = 16 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// submitResponse acknowledges an accepted job.
type submitResponse struct {
	ID     string `json:"id"`
	Status Status `json:"status"`
}

// decodeRequest parses a JSON request body into v.
func decodeRequest(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
		return false
	}
	return true
}

// retryAfterSeconds derives a 429's Retry-After from the observed
// queue-wait distribution: the p50 submit-to-start wait, rounded up to
// whole seconds and clamped to [1, 30]. A lightly loaded queue keeps
// the old eager 1s; a backed-up queue tells clients the truth, so
// retry storms thin out in proportion to the actual backlog instead of
// hammering a saturated node once per second. The clamp bounds both
// ends: an empty histogram (cold daemon) stays at 1, and a
// pathologically slow day never tells a client to go away for minutes.
func retryAfterSeconds(snap obs.HistogramSnapshot) int {
	secs := int(math.Ceil(snap.Quantile(0.5).Seconds()))
	if secs < 1 {
		return 1
	}
	if secs > 30 {
		return 30
	}
	return secs
}

// respondSubmit maps submit outcomes to HTTP: fresh jobs get 202, an
// idempotent replay gets 200 with the original job's current status
// (plus an Idempotency-Replayed header so clients can tell), a full
// queue gets 429 with a load-derived Retry-After (backpressure — the
// client should resubmit, nothing was registered), a draining server
// gets 503 (terminal for this process — resubmitting here won't help),
// and a journal write failure gets 500 (the accept could not be made
// durable).
func (s *Server) respondSubmit(w http.ResponseWriter, j *Job, replayed bool, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(histQueueWait.Snapshot())))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	case replayed:
		s.mu.Lock()
		status := j.Status
		s.mu.Unlock()
		w.Header().Set("Idempotency-Replayed", "true")
		writeJSON(w, http.StatusOK, submitResponse{ID: j.ID, Status: status})
	default:
		// Report the status as of submit time: a worker may already be
		// flipping the job to running, and j.Status is mutex-guarded.
		writeJSON(w, http.StatusAccepted, submitResponse{ID: j.ID, Status: StatusQueued})
	}
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	// Parse at submit so a malformed netlist is the client's 400, not a
	// failed job discovered by polling.
	run, fp, err := s.generateJob(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	// Re-marshal the validated request as the journal payload: Recover
	// rebuilds the run closure from exactly these bytes.
	payload, _ := json.Marshal(req)
	if s.forwardIfRemote(w, r, fp, payload) {
		return
	}
	j, replayed, err := s.submit("generate", r.Header.Get("Idempotency-Key"), payload, run)
	s.respondSubmit(w, j, replayed, err)
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	var req DetectRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	run, fp, err := s.detectJob(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	payload, _ := json.Marshal(req)
	if s.forwardIfRemote(w, r, fp, payload) {
		return
	}
	j, replayed, err := s.submit("detect", r.Header.Get("Idempotency-Key"), payload, run)
	s.respondSubmit(w, j, replayed, err)
}

// jobView is the wire form of a job's state.
type jobView struct {
	ID        string      `json:"id"`
	Kind      string      `json:"kind"`
	Status    Status      `json:"status"`
	Submitted string      `json:"submitted"`
	Started   string      `json:"started,omitempty"`
	Finished  string      `json:"finished,omitempty"`
	Attempts  int         `json:"attempts,omitempty"`
	Error     string      `json:"error,omitempty"`
	Result    any         `json:"result,omitempty"`
	ResultFP  string      `json:"result_fp,omitempty"`
	Report    *obs.Report `json:"report,omitempty"`
}

const timeLayout = "2006-01-02T15:04:05.000Z07:00"

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var view jobView
	if ok {
		view = jobView{
			ID:        j.ID,
			Kind:      j.Kind,
			Status:    j.Status,
			Submitted: j.Submitted.Format(timeLayout),
			Attempts:  j.Attempts,
			Error:     j.Err,
			Result:    j.Result,
			ResultFP:  j.ResultFP,
			Report:    j.Report,
		}
		if !j.Started.IsZero() {
			view.Started = j.Started.Format(timeLayout)
		}
		if !j.Finished.IsZero() {
			view.Finished = j.Finished.Format(timeLayout)
		}
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// jobSummary is one row of the GET /v1/jobs listing: lifecycle state
// without result bodies or reports, so the listing stays cheap however
// large the results are.
type jobSummary struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	Status    Status `json:"status"`
	Submitted string `json:"submitted"`
	Finished  string `json:"finished,omitempty"`
	Attempts  int    `json:"attempts,omitempty"`
	Error     string `json:"error,omitempty"`
}

// jobsListMaxLimit bounds a listing page however large the client asks.
const jobsListMaxLimit = 1000

// handleJobs lists retained jobs, oldest-submitted first. Query
// parameters: status=<queued|running|done|failed|canceled|poisoned>
// filters; limit=<n> bounds the page (default 100, capped at 1000).
// The response carries total (matching jobs before truncation) so a
// truncated page is detectable.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	statusFilter := Status(r.URL.Query().Get("status"))
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad limit " + v})
			return
		}
		limit = n
	}
	if limit > jobsListMaxLimit {
		limit = jobsListMaxLimit
	}

	s.mu.Lock()
	matched := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if statusFilter != "" && j.Status != statusFilter {
			continue
		}
		matched = append(matched, j)
	}
	sort.Slice(matched, func(a, b int) bool {
		if !matched[a].Submitted.Equal(matched[b].Submitted) {
			return matched[a].Submitted.Before(matched[b].Submitted)
		}
		return matched[a].ID < matched[b].ID
	})
	total := len(matched)
	if len(matched) > limit {
		matched = matched[:limit]
	}
	views := make([]jobSummary, 0, len(matched))
	for _, j := range matched {
		v := jobSummary{
			ID:        j.ID,
			Kind:      j.Kind,
			Status:    j.Status,
			Submitted: j.Submitted.Format(timeLayout),
			Attempts:  j.Attempts,
			Error:     j.Err,
		}
		if !j.Finished.IsZero() {
			v.Finished = j.Finished.Format(timeLayout)
		}
		views = append(views, v)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views, "total": total})
}

// handleHealthz distinguishes "idle" from "saturated", not just
// "up" from "draining": probes get the queue occupancy and busy-worker
// count alongside the status, so a load balancer can stop preferring a
// node whose queue is full before it starts returning 429s.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	busy := s.countRunningLocked()
	s.mu.Unlock()
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	body := map[string]any{
		"status": status,
		"queue": map[string]int{
			"depth":    len(s.queue),
			"capacity": cap(s.queue),
		},
		"workers": map[string]int64{
			"busy":  busy,
			"total": int64(s.cfg.Workers),
		},
	}
	if s.ring != nil {
		body["fleet"] = map[string]any{
			"advertise": s.ring.self,
			"members":   s.ring.members(),
		}
	}
	writeJSON(w, code, body)
}

// handleMetricsProm serves the process-wide registry (scoped per-job
// registries mirror into it, so these are complete totals) in
// Prometheus text exposition format. The queue gauges are refreshed at
// scrape time so a scraper sees current occupancy, not the value as of
// the last submit.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	gaugeQueued.Set(int64(len(s.queue)))
	s.mu.Lock()
	busy := s.countRunningLocked()
	s.mu.Unlock()
	gaugeRunning.Set(busy)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w, obs.Default().Snapshot())
}

// handleMetricsJSON is the pre-Prometheus JSON metrics body, kept at
// /metrics.json so consumers of the original /metrics shape keep
// working (histograms are deliberately absent — this is the legacy
// shape, verbatim).
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	snap := obs.Default().Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"counters": snap.Counters,
		"gauges":   snap.Gauges,
		"queue": map[string]int{
			"depth":    len(s.queue),
			"capacity": cap(s.queue),
		},
	})
}
