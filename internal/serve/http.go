package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"

	"cghti/internal/obs"
)

// routes wires the daemon's endpoints. Method-qualified patterns and
// PathValue need go1.22's ServeMux, which the module already requires.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	mux.HandleFunc("POST /v1/detect", s.handleDetect)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetricsProm)
	mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	return timed(mux)
}

// timed observes each request's handler wall time into the process-wide
// serve.handler_time histogram. SSE streams are excluded: their
// lifetime is the client's choice (or the job's), and folding
// minutes-long streams into the handler distribution would bury the
// request-latency signal the histogram exists for.
func timed(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		next.ServeHTTP(w, r)
		histHandler.Observe(time.Since(start))
	})
}

// maxRequestBytes bounds request bodies (netlists are text; the largest
// paper circuit is well under 1 MiB).
const maxRequestBytes = 16 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// submitResponse acknowledges an accepted job.
type submitResponse struct {
	ID     string `json:"id"`
	Status Status `json:"status"`
}

// decodeRequest parses a JSON request body into v.
func decodeRequest(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
		return false
	}
	return true
}

// respondSubmit maps submit outcomes to HTTP: accepted jobs get 202, a
// full queue gets 429 with Retry-After (backpressure — the client
// should resubmit, nothing was registered), and a draining server gets
// 503 (terminal for this process — resubmitting here won't help).
func respondSubmit(w http.ResponseWriter, j *Job, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	default:
		// Report the status as of submit time: a worker may already be
		// flipping the job to running, and j.Status is mutex-guarded.
		writeJSON(w, http.StatusAccepted, submitResponse{ID: j.ID, Status: StatusQueued})
	}
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	// Parse at submit so a malformed netlist is the client's 400, not a
	// failed job discovered by polling.
	run, err := s.generateJob(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	j, err := s.submit("generate", run)
	respondSubmit(w, j, err)
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	var req DetectRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	run, err := s.detectJob(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	j, err := s.submit("detect", run)
	respondSubmit(w, j, err)
}

// jobView is the wire form of a job's state.
type jobView struct {
	ID        string      `json:"id"`
	Kind      string      `json:"kind"`
	Status    Status      `json:"status"`
	Submitted string      `json:"submitted"`
	Started   string      `json:"started,omitempty"`
	Finished  string      `json:"finished,omitempty"`
	Error     string      `json:"error,omitempty"`
	Result    any         `json:"result,omitempty"`
	Report    *obs.Report `json:"report,omitempty"`
}

const timeLayout = "2006-01-02T15:04:05.000Z07:00"

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var view jobView
	if ok {
		view = jobView{
			ID:        j.ID,
			Kind:      j.Kind,
			Status:    j.Status,
			Submitted: j.Submitted.Format(timeLayout),
			Error:     j.Err,
			Result:    j.Result,
			Report:    j.Report,
		}
		if !j.Started.IsZero() {
			view.Started = j.Started.Format(timeLayout)
		}
		if !j.Finished.IsZero() {
			view.Finished = j.Finished.Format(timeLayout)
		}
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleHealthz distinguishes "idle" from "saturated", not just
// "up" from "draining": probes get the queue occupancy and busy-worker
// count alongside the status, so a load balancer can stop preferring a
// node whose queue is full before it starts returning 429s.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	busy := s.countRunningLocked()
	s.mu.Unlock()
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status": status,
		"queue": map[string]int{
			"depth":    len(s.queue),
			"capacity": cap(s.queue),
		},
		"workers": map[string]int64{
			"busy":  busy,
			"total": int64(s.cfg.Workers),
		},
	})
}

// handleMetricsProm serves the process-wide registry (scoped per-job
// registries mirror into it, so these are complete totals) in
// Prometheus text exposition format. The queue gauges are refreshed at
// scrape time so a scraper sees current occupancy, not the value as of
// the last submit.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	gaugeQueued.Set(int64(len(s.queue)))
	s.mu.Lock()
	busy := s.countRunningLocked()
	s.mu.Unlock()
	gaugeRunning.Set(busy)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w, obs.Default().Snapshot())
}

// handleMetricsJSON is the pre-Prometheus JSON metrics body, kept at
// /metrics.json so consumers of the original /metrics shape keep
// working (histograms are deliberately absent — this is the legacy
// shape, verbatim).
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	snap := obs.Default().Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"counters": snap.Counters,
		"gauges":   snap.Gauges,
		"queue": map[string]int{
			"depth":    len(s.queue),
			"capacity": cap(s.queue),
		},
	})
}
